//! The multi-standard terminal: runtime reconfiguration (Fig. 10) plus
//! time-sliced scheduling of both standards over one array (Fig. 11).
//!
//! Run with: `cargo run --release --example multistandard`

use xpp_sdr::dsp::Cplx;
use xpp_sdr::ofdm::channel::WlanChannel;
use xpp_sdr::ofdm::params::rate;
use xpp_sdr::ofdm::tx::Transmitter;
use xpp_sdr::ofdm::xpp_map::ReconfigurableFrontend;
use xpp_sdr::platform::scheduler::{schedule_edf, Job};
use xpp_sdr::platform::SdrPlatform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Fig. 10: search, detect, reconfigure ------------------------
    let mut fe = ReconfigurableFrontend::new(2)?;
    println!(
        "search mode: config 1 (downsampler + FFT64) + 2a (detector) resident; free RAM-PAEs: {}",
        fe.array().free_resources().ram
    );

    // A WLAN frame arrives at the 40 Msps ADC (sample-and-hold 2x).
    let r = rate(12).expect("standard rate");
    let bits: Vec<u8> = (0..96).map(|i| (i % 2) as u8).collect();
    let frame = Transmitter::new(r).transmit(&bits);
    let rx20 = WlanChannel {
        leading_gap: 64,
        ..Default::default()
    }
    .run(&frame.samples);
    let mut rx40 = Vec::with_capacity(rx20.len() * 2);
    for s in &rx20 {
        rx40.push(*s);
        rx40.push(*s);
    }
    let metric = fe.search(&rx40[..rx40.len().min(3000)])?;
    let peak = *metric.iter().max().expect("metric nonempty");
    let hit = metric
        .iter()
        .position(|&m| m > peak / 2)
        .expect("preamble present");
    println!("preamble detected at downsampled index {hit} (metric peak {peak})");

    fe.switch_to_demodulation()?;
    println!("after the 2a->2b swap:");
    for e in fe.events() {
        println!("  [{:>5} cfg-cycles] {}", e.config_cycles, e.action);
    }

    // Demodulate some derotated symbols through 2b.
    let symbols: Vec<Cplx<i32>> = (0..48)
        .map(|k| Cplx::new(if k % 2 == 0 { 900 } else { -900 }, 300))
        .collect();
    let weights = vec![Cplx::new(512, 0); 48];
    let bits2b = fe.demodulate(&symbols, &weights)?;
    println!(
        "2b demodulated 48 subcarriers; first pairs: {:?}",
        &bits2b[..4]
    );

    // ---- Fig. 11: time-sliced scheduling ------------------------------
    let platform = SdrPlatform::evaluation_board();
    let clock = platform.clock_hz;
    let slot = (clock * 2560.0 / 3.84e6) as u64;
    let jobs = vec![
        Job::new("wcdma-rake (2 BTS x 3 paths)", 2560 * 6, slot),
        Job::new("wlan-preamble-search", 2000, slot / 4),
    ];
    let report = schedule_edf(&jobs, 20 * slot);
    println!(
        "time-sliced schedule at {:.2} MHz: utilization {:.3}, feasible: {}",
        clock / 1e6,
        report.utilization(),
        report.feasible()
    );
    Ok(())
}
