//! Time-sliced multi-standard scheduling.
//!
//! "A multi-standard, multi-link wireless terminal must provide the
//! capability of handling at least these protocols simultaneously. By
//! time-slicing the processing of both protocols over the same hardware, a
//! large savings in the resources required can be achieved" (paper §3).
//!
//! The scheduler is a preemptive earliest-deadline-first simulator over
//! periodic jobs measured in array clock cycles; the experiments feed it
//! the *measured* kernel cycle counts from the array simulator.

/// A periodic processing job (e.g. "one W-CDMA slot of rake processing",
/// "one OFDM symbol through the FFT").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Job {
    /// Job name.
    pub name: String,
    /// Execution demand per period, in cycles.
    pub cycles: u64,
    /// Release period (= relative deadline), in cycles.
    pub period: u64,
}

impl Job {
    /// Creates a job.
    ///
    /// # Panics
    ///
    /// Panics if the period is zero or the demand exceeds the period is
    /// allowed (it will simply miss deadlines).
    pub fn new(name: impl Into<String>, cycles: u64, period: u64) -> Self {
        assert!(period > 0, "job period must be positive");
        Job {
            name: name.into(),
            cycles,
            period,
        }
    }

    /// The job's long-run utilization share.
    pub fn utilization(&self) -> f64 {
        self.cycles as f64 / self.period as f64
    }
}

/// One contiguous execution slice in the schedule timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Slice {
    /// Index into the job set.
    pub job: usize,
    /// Start cycle.
    pub start: u64,
    /// Length in cycles.
    pub len: u64,
}

/// A missed deadline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlineMiss {
    /// Index into the job set.
    pub job: usize,
    /// Which period instance missed.
    pub instance: u64,
    /// Cycles of work still outstanding at the deadline.
    pub remaining: u64,
}

/// The outcome of a scheduling run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleReport {
    /// Simulated horizon in cycles.
    pub horizon: u64,
    /// Busy cycles.
    pub busy: u64,
    /// Execution timeline.
    pub timeline: Vec<Slice>,
    /// Deadline misses (empty = schedulable over the horizon).
    pub misses: Vec<DeadlineMiss>,
}

impl ScheduleReport {
    /// Fraction of the horizon spent executing.
    pub fn utilization(&self) -> f64 {
        if self.horizon == 0 {
            0.0
        } else {
            self.busy as f64 / self.horizon as f64
        }
    }

    /// True if no deadline was missed.
    pub fn feasible(&self) -> bool {
        self.misses.is_empty()
    }
}

/// Simulates preemptive EDF over `horizon` cycles.
///
/// # Panics
///
/// Panics if the job set is empty.
pub fn schedule_edf(jobs: &[Job], horizon: u64) -> ScheduleReport {
    assert!(!jobs.is_empty(), "schedule_edf: empty job set");
    #[derive(Debug)]
    struct Active {
        job: usize,
        deadline: u64,
        remaining: u64,
        instance: u64,
    }
    let mut active: Vec<Active> = Vec::new();
    let mut next_release: Vec<u64> = vec![0; jobs.len()];
    let mut next_instance: Vec<u64> = vec![0; jobs.len()];
    let mut timeline: Vec<Slice> = Vec::new();
    let mut misses = Vec::new();
    let mut busy = 0u64;
    let mut t = 0u64;

    while t < horizon {
        // Release any jobs due at or before t.
        for (j, job) in jobs.iter().enumerate() {
            while next_release[j] <= t {
                active.push(Active {
                    job: j,
                    deadline: next_release[j] + job.period,
                    remaining: job.cycles,
                    instance: next_instance[j],
                });
                next_release[j] += job.period;
                next_instance[j] += 1;
            }
        }
        // Earliest deadline first.
        active.sort_by_key(|a| a.deadline);
        let next_event = next_release
            .iter()
            .copied()
            .min()
            .unwrap_or(horizon)
            .min(horizon);
        if let Some(current) = active.first_mut() {
            // Run until completion, the next release, or the deadline.
            let slice_end = next_event.min(current.deadline).min(t + current.remaining);
            let len = slice_end.saturating_sub(t);
            if len > 0 {
                current.remaining -= len;
                busy += len;
                match timeline.last_mut() {
                    Some(last) if last.job == current.job && last.start + last.len == t => {
                        last.len += len;
                    }
                    _ => timeline.push(Slice {
                        job: current.job,
                        start: t,
                        len,
                    }),
                }
                t = slice_end;
            }
            if current.remaining == 0 {
                active.remove(0);
            } else if t >= current.deadline {
                misses.push(DeadlineMiss {
                    job: current.job,
                    instance: current.instance,
                    remaining: current.remaining,
                });
                active.remove(0); // drop the overrun instance
            }
        } else {
            t = next_event; // idle until the next release
        }
    }
    ScheduleReport {
        horizon,
        busy,
        timeline,
        misses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_job_fills_its_share() {
        let jobs = vec![Job::new("rake", 300, 1000)];
        let r = schedule_edf(&jobs, 10_000);
        assert!(r.feasible());
        assert!((r.utilization() - 0.3).abs() < 0.01);
    }

    #[test]
    fn two_jobs_interleave_feasibly() {
        // Combined utilization 0.85 < 1 → EDF schedules it.
        let jobs = vec![
            Job::new("umts-slot", 500, 1000),
            Job::new("wlan-symbol", 70, 200),
        ];
        let r = schedule_edf(&jobs, 20_000);
        assert!(r.feasible(), "misses: {:?}", r.misses);
        assert!((r.utilization() - 0.85).abs() < 0.02);
        // Both jobs actually appear in the timeline.
        assert!(r.timeline.iter().any(|s| s.job == 0));
        assert!(r.timeline.iter().any(|s| s.job == 1));
    }

    #[test]
    fn overload_misses_deadlines() {
        let jobs = vec![Job::new("a", 800, 1000), Job::new("b", 500, 1000)];
        let r = schedule_edf(&jobs, 10_000);
        assert!(!r.feasible());
        assert!(!r.misses.is_empty());
    }

    #[test]
    fn utilization_sum_predicts_feasibility_at_boundary() {
        let jobs = vec![Job::new("a", 500, 1000), Job::new("b", 250, 500)];
        let total: f64 = jobs.iter().map(Job::utilization).sum();
        assert!((total - 1.0).abs() < 1e-12);
        let r = schedule_edf(&jobs, 50_000);
        assert!(
            r.feasible(),
            "EDF schedules exactly-full sets: {:?}",
            r.misses
        );
        assert!(r.utilization() > 0.99);
    }

    #[test]
    fn timeline_slices_are_contiguous_and_ordered() {
        let jobs = vec![Job::new("a", 3, 10), Job::new("b", 4, 7)];
        let r = schedule_edf(&jobs, 1_000);
        for w in r.timeline.windows(2) {
            assert!(w[0].start + w[0].len <= w[1].start);
        }
        let busy: u64 = r.timeline.iter().map(|s| s.len).sum();
        assert_eq!(busy, r.busy);
    }

    #[test]
    #[should_panic]
    fn empty_job_set_rejected() {
        schedule_edf(&[], 100);
    }
}
