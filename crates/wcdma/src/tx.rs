//! Downlink transmitter: the base-station side of the link.
//!
//! The paper evaluates the terminal-side rake receiver; the transmitter here
//! is the standard-conformant signal source that replaces the live UMTS
//! network (DESIGN.md §2). Each cell transmits a common pilot channel
//! (CPICH, SF 256 / code 0) plus one dedicated physical channel (DPCH)
//! carrying QPSK data, all spread with OVSF codes, summed, and scrambled
//! with the cell's downlink Gold code. In a soft-handover scenario several
//! cells transmit the *same* DPCH bits under different scrambling codes.

use crate::ovsf::ovsf;
use crate::scrambling::ScramblingCode;
use crate::symbols::{cpich_antenna2, qpsk_map_bits, sttd_encode, CPICH_SYMBOL};
use sdr_dsp::Cplx;

/// Spreading factor of the common pilot channel.
pub const CPICH_SF: usize = 256;

/// Chips per slot (2560) — every downlink SF divides this.
pub const SLOT_CHIPS: usize = 2560;

/// Configuration of the dedicated physical channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DpchConfig {
    /// Spreading factor, 4..=512.
    pub sf: usize,
    /// OVSF code index (must not collide with the CPICH's code 0 subtree).
    pub code_index: usize,
    /// Linear amplitude relative to unit chip power.
    pub amplitude: f64,
    /// Enable space-time transmit diversity.
    pub sttd: bool,
}

impl Default for DpchConfig {
    fn default() -> Self {
        DpchConfig {
            sf: 128,
            code_index: 17,
            amplitude: 1.0,
            sttd: false,
        }
    }
}

/// Configuration of one cell (base station).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellConfig {
    /// Downlink scrambling code number.
    pub scrambling_code: u32,
    /// CPICH amplitude.
    pub cpich_amplitude: f64,
    /// The data channel.
    pub dpch: DpchConfig,
}

impl Default for CellConfig {
    fn default() -> Self {
        CellConfig {
            scrambling_code: 0,
            cpich_amplitude: 0.5,
            dpch: DpchConfig::default(),
        }
    }
}

/// Baseband output of one cell: chips per antenna.
#[derive(Debug, Clone, PartialEq)]
pub struct TxSignal {
    /// Antenna 1 chips.
    pub ant1: Vec<Cplx<f64>>,
    /// Antenna 2 chips (present when STTD is enabled).
    pub ant2: Option<Vec<Cplx<f64>>>,
}

impl TxSignal {
    /// Number of chips.
    pub fn len(&self) -> usize {
        self.ant1.len()
    }

    /// True if no chips were produced.
    pub fn is_empty(&self) -> bool {
        self.ant1.is_empty()
    }
}

/// One cell's downlink modulator.
///
/// # Example
///
/// ```
/// use sdr_wcdma::tx::{CellConfig, CellTransmitter};
///
/// let mut tx = CellTransmitter::new(CellConfig::default());
/// let bits: Vec<u8> = (0..40).map(|i| (i % 2) as u8).collect();
/// let signal = tx.transmit(&bits);
/// assert_eq!(signal.len(), 20 * 128); // 20 QPSK symbols at SF 128
/// ```
#[derive(Debug, Clone)]
pub struct CellTransmitter {
    config: CellConfig,
    code: ScramblingCode,
    dpch_code: Vec<i32>,
    cpich_code: Vec<i32>,
    /// Absolute chip position within the frame (wraps at 38400).
    chip_pos: usize,
}

impl CellTransmitter {
    /// Creates a transmitter for one cell.
    ///
    /// # Panics
    ///
    /// Panics if the DPCH configuration is invalid (bad SF or code index, or
    /// OVSF code 0 which the CPICH occupies).
    pub fn new(config: CellConfig) -> Self {
        assert!(
            config.dpch.code_index != 0,
            "OVSF code 0 is reserved for the CPICH"
        );
        let dpch_code = ovsf(config.dpch.sf, config.dpch.code_index);
        let cpich_code = ovsf(CPICH_SF, 0);
        CellTransmitter {
            code: ScramblingCode::downlink(config.scrambling_code),
            config,
            dpch_code,
            cpich_code,
            chip_pos: 0,
        }
    }

    /// The cell configuration.
    pub fn config(&self) -> &CellConfig {
        &self.config
    }

    /// The cell's scrambling code (shared with the receiver under test).
    pub fn scrambling_code(&self) -> &ScramblingCode {
        &self.code
    }

    /// Current chip position within the frame.
    pub fn chip_position(&self) -> usize {
        self.chip_pos
    }

    /// Modulates DPCH bits into scrambled baseband chips, advancing the
    /// frame position. The number of chips is `bits/2 × SF`.
    ///
    /// # Panics
    ///
    /// Panics if the bit count is odd, or (with STTD) if the symbol count is
    /// odd.
    pub fn transmit(&mut self, bits: &[u8]) -> TxSignal {
        let symbols = qpsk_map_bits(bits);
        let sf = self.config.dpch.sf;
        let n_chips = symbols.len() * sf;
        let amp = self.config.dpch.amplitude;
        let pilot_amp = self.config.cpich_amplitude;

        let (dpch1, dpch2) = if self.config.dpch.sttd {
            assert!(
                symbols.len().is_multiple_of(2),
                "STTD needs an even number of symbols"
            );
            let (a1, a2) = sttd_encode(&symbols);
            (a1, Some(a2))
        } else {
            (symbols, None)
        };

        let mut ant1 = Vec::with_capacity(n_chips);
        let mut ant2 = dpch2.as_ref().map(|_| Vec::with_capacity(n_chips));
        for i in 0..n_chips {
            let pos = self.chip_pos + i;
            let scramble = self.code.chip(pos).to_f64();
            let dpch_chip = self.dpch_code[pos % sf] as f64;
            let cpich_chip = self.cpich_code[pos % CPICH_SF] as f64;
            let sym_idx = i / sf;
            let cpich_idx = pos / CPICH_SF;

            let d1 = dpch1[sym_idx].to_f64();
            let p1 = CPICH_SYMBOL.to_f64();
            let bb1 = Cplx::new(
                amp * d1.re * dpch_chip + pilot_amp * p1.re * cpich_chip,
                amp * d1.im * dpch_chip + pilot_amp * p1.im * cpich_chip,
            );
            ant1.push(bb1 * scramble);

            if let (Some(a2), Some(d2s)) = (ant2.as_mut(), dpch2.as_ref()) {
                let d2 = d2s[sym_idx].to_f64();
                let p2 = cpich_antenna2(cpich_idx).to_f64();
                let bb2 = Cplx::new(
                    amp * d2.re * dpch_chip + pilot_amp * p2.re * cpich_chip,
                    amp * d2.im * dpch_chip + pilot_amp * p2.im * cpich_chip,
                );
                a2.push(bb2 * scramble);
            }
        }
        self.chip_pos = (self.chip_pos + n_chips) % crate::scrambling::FRAME_CHIPS;
        TxSignal { ant1, ant2 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rake::finger::{descramble, despread};

    fn digitize(chips: &[Cplx<f64>], gain: f64) -> Vec<Cplx<i32>> {
        chips
            .iter()
            .map(|c| Cplx::new((c.re * gain).round() as i32, (c.im * gain).round() as i32))
            .collect()
    }

    #[test]
    fn chip_count_matches_symbols() {
        let mut tx = CellTransmitter::new(CellConfig::default());
        let signal = tx.transmit(&[0, 1, 1, 0]);
        assert_eq!(signal.len(), 2 * 128);
        assert!(signal.ant2.is_none());
    }

    #[test]
    fn sttd_produces_second_antenna() {
        let mut cfg = CellConfig::default();
        cfg.dpch.sttd = true;
        let mut tx = CellTransmitter::new(cfg);
        let signal = tx.transmit(&[0, 1, 1, 0]);
        assert!(signal.ant2.is_some());
        assert_eq!(signal.ant2.unwrap().len(), signal.ant1.len());
    }

    #[test]
    #[should_panic]
    fn rejects_cpich_code_collision() {
        let mut cfg = CellConfig::default();
        cfg.dpch.code_index = 0;
        CellTransmitter::new(cfg);
    }

    #[test]
    fn loopback_recovers_symbols_on_clean_channel() {
        // TX → digitize → descramble/despread recovers the QPSK symbols.
        let mut cfg = CellConfig::default();
        cfg.dpch.sf = 64;
        cfg.dpch.code_index = 5;
        cfg.cpich_amplitude = 0.0; // pilot off for an exact check
        let mut tx = CellTransmitter::new(cfg);
        let bits = [0u8, 0, 1, 1, 0, 1, 1, 0];
        let signal = tx.transmit(&bits);
        let rx = digitize(&signal.ant1, 512.0);
        let descrambled = descramble(&rx, tx.scrambling_code(), 0, 0, rx.len());
        let symbols = despread(&descrambled, 64, 5);
        // Each symbol should be ±A ± jA with A ≈ 512·2 (descramble gain 2,
        // despread normalises by SF).
        for (k, s) in symbols.iter().enumerate() {
            let expected = crate::symbols::qpsk_map_bits(&bits)[k];
            assert!(s.re.signum() == expected.re.signum(), "sym {k}: {s:?}");
            assert!(s.im.signum() == expected.im.signum(), "sym {k}: {s:?}");
            assert!(s.re.abs() > 512 && s.re.abs() < 2048);
        }
    }

    #[test]
    fn chip_position_advances_and_wraps() {
        let mut cfg = CellConfig::default();
        cfg.dpch.sf = 256;
        let mut tx = CellTransmitter::new(cfg);
        let bits_per_frame = 2 * crate::scrambling::FRAME_CHIPS / 256;
        let bits: Vec<u8> = vec![0; bits_per_frame];
        tx.transmit(&bits);
        assert_eq!(tx.chip_position(), 0); // exactly one frame
    }
}
