//! Maximal-ratio combining of corrected finger outputs and the final symbol
//! decision.
//!
//! After channel correction every finger's symbols are phase-aligned and
//! weighted by their path strength, so combining is a plain sum — the
//! "Combining" block of Fig. 4 — followed by the QPSK hard decision.

use crate::symbols::qpsk_demap;
use sdr_dsp::Cplx;

/// Sums per-finger corrected symbol streams into soft combined symbols.
///
/// Streams may have different lengths (late fingers see fewer whole
/// symbols); the combined length is the shortest stream.
///
/// # Panics
///
/// Panics if no fingers are supplied.
pub fn combine(fingers: &[Vec<Cplx<i32>>]) -> Vec<Cplx<i64>> {
    assert!(!fingers.is_empty(), "combine: no fingers");
    let n = fingers.iter().map(Vec::len).min().unwrap_or(0);
    (0..n)
        .map(|k| {
            let mut acc = Cplx::<i64>::ZERO;
            for f in fingers {
                acc += f[k].widen();
            }
            acc
        })
        .collect()
}

/// Hard QPSK decisions on combined symbols, two bits per symbol.
pub fn decide(symbols: &[Cplx<i64>]) -> Vec<u8> {
    let mut bits = Vec::with_capacity(symbols.len() * 2);
    for &s in symbols {
        let (b0, b1) = qpsk_demap(s);
        bits.push(b0);
        bits.push(b1);
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combine_sums_fingers() {
        let f1 = vec![Cplx::new(10, -5), Cplx::new(1, 1)];
        let f2 = vec![Cplx::new(-3, 2), Cplx::new(4, 4)];
        let c = combine(&[f1, f2]);
        assert_eq!(c, vec![Cplx::new(7, -3), Cplx::new(5, 5)]);
    }

    #[test]
    fn combine_truncates_to_shortest() {
        let f1 = vec![Cplx::new(1, 1); 5];
        let f2 = vec![Cplx::new(1, 1); 3];
        assert_eq!(combine(&[f1, f2]).len(), 3);
    }

    #[test]
    #[should_panic]
    fn combine_rejects_empty() {
        combine(&[]);
    }

    #[test]
    fn decisions_follow_signs() {
        let syms = vec![Cplx::new(100i64, -3), Cplx::new(-7, 9)];
        assert_eq!(decide(&syms), vec![0, 1, 1, 0]);
    }

    #[test]
    fn weak_finger_cannot_flip_strong_majority() {
        let strong = vec![Cplx::new(1000, 1000)];
        let weak = vec![Cplx::new(-30, -30)];
        let c = combine(&[strong, weak]);
        assert_eq!(decide(&c), vec![0, 0]);
    }
}
