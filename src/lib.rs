//! Umbrella crate for the `xpp-sdr` workspace.
//!
//! This crate re-exports the workspace members so examples and integration
//! tests can exercise the whole system through one dependency:
//!
//! * [`dsp`] — fixed-point and integer-complex signal-processing primitives,
//! * [`xpp`] — the coarse-grained reconfigurable array (CGRA) simulator,
//! * [`wcdma`] — the UMTS/W-CDMA substrate and rake receiver,
//! * [`ofdm`] — the IEEE 802.11a / HiperLAN-2 substrate and OFDM receiver,
//! * [`platform`] — the heterogeneous SDR platform (the paper's contribution),
//! * [`engine`] — the multi-terminal baseband engine (sharded workers,
//!   configuration caches, runtime reconfiguration at scale).
//!
//! # Example
//!
//! ```
//! use xpp_sdr::xpp::{Array, NetlistBuilder, AluOp, Word};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Build a two-object pipeline that doubles an input stream.
//! let mut nl = NetlistBuilder::new("doubler");
//! let input = nl.input("in");
//! let two = nl.constant(Word::new(2));
//! let mul = nl.alu(AluOp::Mul, input, two);
//! nl.output("out", mul);
//!
//! let mut array = Array::xpp64a();
//! let cfg = array.configure(&nl.build()?)?;
//! array.push_input(cfg, "in", [1i32, 2, 3].map(Word::new))?;
//! array.run_until_idle(1_000)?;
//! let out: Vec<i32> = array.drain_output(cfg, "out")?.iter().map(|w| w.value()).collect();
//! assert_eq!(out, vec![2, 4, 6]);
//! # Ok(())
//! # }
//! ```

pub use sdr_core as platform;
pub use sdr_dsp as dsp;
pub use sdr_engine as engine;
pub use sdr_ofdm as ofdm;
pub use sdr_wcdma as wcdma;
pub use xpp_array as xpp;
