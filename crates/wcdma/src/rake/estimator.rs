//! Channel estimation from the common pilot channel (a DSP task in the
//! paper's partitioning, Fig. 4).
//!
//! The estimator despreads the CPICH (SF 256, OVSF code 0) at a finger's
//! delay, correlates with the known pilot symbol, and averages. With
//! transmit diversity the antenna-2 pilot pattern alternates sign each
//! symbol, so the two channels separate by averaging with and without the
//! alternation.

use crate::rake::finger::{descramble, despread, WEIGHT_MAX};
use crate::scrambling::ScramblingCode;
use crate::symbols::{cpich_antenna2, CPICH_SYMBOL};
use crate::tx::CPICH_SF;
use sdr_dsp::Cplx;

/// Estimates the (scaled) complex channel gain of one path from `n_symbols`
/// CPICH symbols starting at the beginning of the receive buffer.
///
/// The returned value is proportional to `adc_gain · cpich_amplitude ·
/// path_gain`; the rake only needs consistent relative weights, so no
/// absolute normalisation is attempted (exactly like a fixed-point DSP
/// implementation would behave).
///
/// # Panics
///
/// Panics if the buffer is too short for `n_symbols` pilot symbols at the
/// given delay.
pub fn estimate_channel(
    rx: &[Cplx<i32>],
    code: &ScramblingCode,
    delay: usize,
    n_symbols: usize,
) -> Cplx<f64> {
    let n_chips = n_symbols * CPICH_SF;
    assert!(
        delay + n_chips <= rx.len(),
        "estimate_channel: buffer too short"
    );
    let descrambled = descramble(rx, code, delay, 0, n_chips);
    let pilots = despread(&descrambled, CPICH_SF, 0);
    let mut acc = Cplx::<f64>::ZERO;
    for p in &pilots {
        acc += p.to_f64() * CPICH_SYMBOL.to_f64().conj();
    }
    // |pilot|² = 2 and the descrambler gain is 2.
    let scale = 1.0 / (pilots.len() as f64 * 2.0 * 2.0);
    Cplx::new(acc.re * scale, acc.im * scale)
}

/// Estimates both antennas' channels for an STTD link. `n_symbols` must be
/// even so the alternating pattern cancels.
///
/// # Panics
///
/// Panics if `n_symbols` is odd or the buffer is too short.
pub fn estimate_channel_sttd(
    rx: &[Cplx<i32>],
    code: &ScramblingCode,
    delay: usize,
    n_symbols: usize,
) -> (Cplx<f64>, Cplx<f64>) {
    assert!(
        n_symbols.is_multiple_of(2),
        "STTD estimation needs an even symbol count"
    );
    let n_chips = n_symbols * CPICH_SF;
    assert!(
        delay + n_chips <= rx.len(),
        "estimate_channel_sttd: buffer too short"
    );
    let descrambled = descramble(rx, code, delay, 0, n_chips);
    let pilots = despread(&descrambled, CPICH_SF, 0);
    let mut h1 = Cplx::<f64>::ZERO;
    let mut h2 = Cplx::<f64>::ZERO;
    for (k, p) in pilots.iter().enumerate() {
        let pf = p.to_f64();
        h1 += pf * CPICH_SYMBOL.to_f64().conj();
        h2 += pf * cpich_antenna2(k).to_f64().conj();
    }
    let scale = 1.0 / (pilots.len() as f64 * 2.0 * 2.0);
    (
        Cplx::new(h1.re * scale, h1.im * scale),
        Cplx::new(h2.re * scale, h2.im * scale),
    )
}

/// Quantises a set of channel estimates to Q9 integer weights with a common
/// scale, saturating none: the scale is chosen so the largest component
/// maps to [`WEIGHT_MAX`]. Relative finger weighting (what MRC needs) is
/// preserved exactly.
///
/// Returns all-zero weights if every estimate is zero.
pub fn quantize_weights(estimates: &[Cplx<f64>]) -> Vec<Cplx<i32>> {
    quantize_weights_with_max(estimates, WEIGHT_MAX)
}

/// Largest weight magnitude for the STTD corrector: the four-product sums of
/// the STTD decode need one extra headroom bit inside 24-bit words.
pub const WEIGHT_MAX_STTD: i32 = 511;

/// [`quantize_weights`] with an explicit peak magnitude (used by the STTD
/// path, which needs [`WEIGHT_MAX_STTD`]).
pub fn quantize_weights_with_max(estimates: &[Cplx<f64>], max_abs: i32) -> Vec<Cplx<i32>> {
    let peak = estimates
        .iter()
        .map(|h| h.re.abs().max(h.im.abs()))
        .fold(0.0f64, f64::max);
    if peak == 0.0 {
        return vec![Cplx::new(0, 0); estimates.len()];
    }
    let scale = max_abs as f64 / peak;
    estimates
        .iter()
        .map(|h| Cplx::new((h.re * scale).round() as i32, (h.im * scale).round() as i32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{propagate, AdcConfig, CellLink, Path};
    use crate::tx::{CellConfig, CellTransmitter};

    fn pilot_frame(
        cfg: CellConfig,
        link: CellLink,
        sigma: f64,
    ) -> (Vec<Cplx<i32>>, ScramblingCode) {
        let mut tx = CellTransmitter::new(cfg);
        // 8 CPICH symbols worth of chips: 2048 chips → DPCH bits as needed.
        let bits_needed = 2 * 2048 / cfg.dpch.sf;
        let bits: Vec<u8> = (0..bits_needed).map(|i| (i % 2) as u8).collect();
        let signal = tx.transmit(&bits);
        let code = tx.scrambling_code().clone();
        (
            propagate(&[(signal, link)], sigma, 99, AdcConfig::default()),
            code,
        )
    }

    #[test]
    fn estimates_track_path_gain_direction() {
        let gain = Cplx::new(0.6, -0.8);
        let link = CellLink::new(vec![Path::new(0, gain)]);
        let (rx, code) = pilot_frame(CellConfig::default(), link, 0.0);
        let h = estimate_channel(&rx, &code, 0, 8);
        // h should be parallel to gain: normalised dot product ≈ 1.
        let dot = (h * gain.conj()).re / (h.mag() * gain.mag());
        assert!(
            dot > 0.99,
            "direction mismatch: {h:?} vs {gain:?} (dot {dot})"
        );
    }

    #[test]
    fn estimates_scale_linearly_with_gain() {
        let l1 = CellLink::new(vec![Path::new(0, Cplx::new(1.0, 0.0))]);
        let l2 = CellLink::new(vec![Path::new(0, Cplx::new(0.5, 0.0))]);
        let (rx1, code) = pilot_frame(CellConfig::default(), l1, 0.0);
        let (rx2, _) = pilot_frame(CellConfig::default(), l2, 0.0);
        let h1 = estimate_channel(&rx1, &code, 0, 8);
        let h2 = estimate_channel(&rx2, &code, 0, 8);
        assert!(
            (h1.mag() / h2.mag() - 2.0).abs() < 0.1,
            "{} vs {}",
            h1.mag(),
            h2.mag()
        );
    }

    #[test]
    fn delayed_path_estimated_at_its_delay() {
        let gain = Cplx::new(0.0, 1.0);
        let link = CellLink::new(vec![Path::new(7, gain)]);
        let (rx, code) = pilot_frame(CellConfig::default(), link, 0.0);
        let h_at_7 = estimate_channel(&rx, &code, 7, 7);
        let h_at_0 = estimate_channel(&rx, &code, 0, 7);
        assert!(h_at_7.mag() > 5.0 * h_at_0.mag());
    }

    #[test]
    fn sttd_estimator_separates_antennas() {
        let g1 = Cplx::new(0.9, 0.1);
        let g2 = Cplx::new(-0.3, 0.7);
        let mut cfg = CellConfig::default();
        cfg.dpch.sttd = true;
        let link = CellLink::with_diversity(vec![Path::new(0, g1)], vec![Path::new(0, g2)]);
        let (rx, code) = pilot_frame(cfg, link, 0.0);
        let (h1, h2) = estimate_channel_sttd(&rx, &code, 0, 8);
        let d1 = (h1 * g1.conj()).re / (h1.mag() * g1.mag());
        let d2 = (h2 * g2.conj()).re / (h2.mag() * g2.mag());
        assert!(d1 > 0.98, "h1 {h1:?} vs {g1:?}");
        assert!(d2 > 0.98, "h2 {h2:?} vs {g2:?}");
    }

    #[test]
    fn quantized_weights_preserve_ratios() {
        let hs = vec![
            Cplx::new(10.0, 0.0),
            Cplx::new(5.0, 0.0),
            Cplx::new(0.0, -2.5),
        ];
        let ws = quantize_weights(&hs);
        assert_eq!(ws[0].re, WEIGHT_MAX);
        assert_eq!(ws[1].re, (WEIGHT_MAX + 1) / 2);
        assert!((ws[2].im + WEIGHT_MAX / 4).abs() <= 1);
    }

    #[test]
    fn zero_estimates_quantize_to_zero() {
        let ws = quantize_weights(&[Cplx::<f64>::ZERO; 3]);
        assert!(ws.iter().all(|w| *w == Cplx::new(0, 0)));
    }

    #[test]
    fn estimation_robust_to_moderate_noise() {
        let gain = Cplx::new(0.7, 0.7);
        let link = CellLink::new(vec![Path::new(0, gain)]);
        let (rx, code) = pilot_frame(CellConfig::default(), link, 0.05);
        let h = estimate_channel(&rx, &code, 0, 8);
        let dot = (h * gain.conj()).re / (h.mag() * gain.mag());
        assert!(dot > 0.95);
    }
}
