//! Array-level behaviour of the seeded fault-injection layer: each
//! [`FaultKind`] leaves exactly the observable state the recovery layer
//! upstream is built to detect, and an attached-but-empty plan changes
//! nothing at all.

use std::sync::Arc;

use xpp_array::fault::{FaultInjector, FaultKind, FaultPlan, FaultSpec};
use xpp_array::{AluOp, Array, Error, Netlist, NetlistBuilder, Word};

fn pipeline(name: &str, stages: usize) -> Netlist {
    let mut nl = NetlistBuilder::new(name);
    let mut x = nl.input("in");
    for _ in 0..stages {
        let one = nl.constant(Word::new(1));
        x = nl.alu(AluOp::Add, x, one);
    }
    nl.output("out", x);
    nl.build().unwrap()
}

fn injector_for(kind: FaultKind, at_load: u64) -> Arc<FaultInjector> {
    Arc::new(FaultInjector::new(FaultPlan {
        faults: vec![FaultSpec { kind, at_load }],
    }))
}

#[test]
fn corrupt_config_surfaces_typed_error_after_full_load_window() {
    let mut array = Array::xpp64a();
    let inj = injector_for(FaultKind::CorruptConfig, 0);
    array.attach_fault_injector(Arc::clone(&inj));

    let cfg = array.configure(&pipeline("victim", 4)).unwrap();
    // The corrupted load consumes its whole bus window and then fails.
    for _ in 0..10_000 {
        if array.load_error(cfg).is_some() {
            break;
        }
        array.step();
    }
    assert!(!array.is_running(cfg));
    assert_eq!(
        array.load_error(cfg),
        Some(Error::ConfigCorrupted {
            config: cfg.index()
        })
    );
    assert!(array.load_error(cfg).unwrap().is_fault());
    assert_eq!(inj.injected_total(), 1);

    // The residue holds resources until unloaded; afterwards a clean
    // reload (next ordinal, no fault scheduled) works normally.
    array.unload(cfg).unwrap();
    let cfg2 = array.configure(&pipeline("retry", 4)).unwrap();
    array.push_input(cfg2, "in", [Word::new(1)]).unwrap();
    array.run_until_idle(10_000).unwrap();
    assert_eq!(array.drain_output(cfg2, "out").unwrap(), vec![Word::new(5)]);
}

#[test]
fn aborted_load_stops_mid_stream_and_frees_the_bus() {
    let mut array = Array::xpp64a();
    array.attach_fault_injector(injector_for(FaultKind::AbortLoad, 0));

    let doomed = array.configure(&pipeline("doomed", 6)).unwrap();
    let follower = array.configure(&pipeline("follower", 2)).unwrap();
    array.run_until_idle(10_000).unwrap();

    // The abort happens halfway through the window, strictly before the
    // full load cost was paid, and the bus moves on to the next load.
    assert_eq!(
        array.load_error(doomed),
        Some(Error::LoadAborted {
            config: doomed.index()
        })
    );
    assert!(!array.is_running(doomed));
    assert!(array.is_running(follower), "bus wedged behind aborted load");
    assert_eq!(array.config_fire_count(doomed), 0);

    array.unload(doomed).unwrap();
    array.push_input(follower, "in", [Word::new(3)]).unwrap();
    array.run_until_idle(10_000).unwrap();
    assert_eq!(
        array.drain_output(follower, "out").unwrap(),
        vec![Word::new(5)]
    );
}

#[test]
fn stalled_config_reports_running_but_fires_nothing() {
    let mut array = Array::xpp64a();
    array.attach_fault_injector(injector_for(FaultKind::StallConfig, 0));

    let cfg = array.configure(&pipeline("zombie", 3)).unwrap();
    array.push_input(cfg, "in", (0..8).map(Word::new)).unwrap();
    array.run(10_000);

    // The silent wrong state: running by every API, zero fires, no error.
    assert!(array.is_running(cfg));
    assert_eq!(array.load_error(cfg), None);
    assert_eq!(array.config_fire_count(cfg), 0);
    assert!(array.drain_output(cfg, "out").unwrap().is_empty());

    // A watchdog disposing of it surfaces the fault record exactly once.
    assert!(array.clear_injected_fault(cfg));
    assert!(!array.clear_injected_fault(cfg));
}

#[test]
fn injected_panic_unwinds_out_of_configure() {
    let inj = injector_for(FaultKind::WorkerPanic, 0);
    let nl = pipeline("crash", 2);
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut array = Array::xpp64a();
        array.attach_fault_injector(Arc::clone(&inj));
        let _ = array.configure(&nl);
    }));
    assert!(caught.is_err(), "WorkerPanic must unwind out of configure");
    assert_eq!(inj.injected(FaultKind::WorkerPanic), 1);
}

#[test]
fn empty_plan_is_bit_identical_to_no_injector() {
    let run = |with_injector: bool| {
        let mut array = Array::xpp64a();
        if with_injector {
            array.attach_fault_injector(Arc::new(FaultInjector::new(FaultPlan::default())));
        }
        let a = array.configure(&pipeline("a", 5)).unwrap();
        let b = array.configure(&pipeline("b", 3)).unwrap();
        array.push_input(a, "in", (0..16).map(Word::new)).unwrap();
        array.push_input(b, "in", (0..16).map(Word::new)).unwrap();
        array.run_until_idle(10_000).unwrap();
        let out_a = array.drain_output(a, "out").unwrap();
        let out_b = array.drain_output(b, "out").unwrap();
        array.unload(a).unwrap();
        let c = array.configure(&pipeline("c", 4)).unwrap();
        array.push_input(c, "in", (0..4).map(Word::new)).unwrap();
        array.run_until_idle(10_000).unwrap();
        (
            out_a,
            out_b,
            array.drain_output(c, "out").unwrap(),
            array.stats(),
        )
    };
    assert_eq!(run(false), run(true));
}
