//! The paper's second application: a 54 Mbit/s IEEE 802.11a frame through
//! an indoor multipath channel and the full OFDM receive chain.
//!
//! Run with: `cargo run --release --example wlan_rx`

use xpp_sdr::dsp::metrics::BerCounter;
use xpp_sdr::dsp::Cplx;
use xpp_sdr::ofdm::channel::WlanChannel;
use xpp_sdr::ofdm::params::rate;
use xpp_sdr::ofdm::rx::OfdmReceiver;
use xpp_sdr::ofdm::tx::Transmitter;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let r = rate(54).expect("54 Mb/s is a standard rate");
    println!(
        "rate: {} Mb/s ({:?}, code rate {:?}, {} data bits/symbol)",
        r.mbps,
        r.modulation,
        r.code_rate,
        r.data_bits_per_symbol()
    );

    let psdu: Vec<u8> = (0..1728).map(|i| ((i * 11 + i / 13) % 2) as u8).collect();
    let frame = Transmitter::new(r).transmit(&psdu);
    println!(
        "transmitted {} samples ({} data symbols + 320 preamble samples)",
        frame.samples.len(),
        frame.data_symbols
    );

    // Indoor channel: direct path plus two echoes inside the guard
    // interval, moderate noise, 10-bit ADC.
    let channel = WlanChannel::awgn(0.05, 7)
        .with_echo(3, Cplx::new(0.35, -0.2))
        .with_echo(7, Cplx::new(-0.15, 0.1));
    let samples = channel.run(&frame.samples);

    let out = OfdmReceiver::new(r).receive(&samples, psdu.len())?;
    println!(
        "synchronised: long training at sample {}, data from sample {}",
        out.long_start, out.data_start
    );
    let mut ber = BerCounter::new();
    ber.update(&psdu, &out.bits);
    println!(
        "decoded {} bits, BER = {:.6} ({} errors)",
        psdu.len(),
        ber.ber(),
        ber.errors()
    );
    Ok(())
}
