//! The reconfigurable array runtime: configuration management, token-flow
//! simulation and streaming I/O.
//!
//! An [`Array`] models one XPP device. Configurations (validated
//! [`Netlist`]s) are loaded through a serial configuration bus (taking
//! [`CONFIG_CYCLES_PER_OBJECT`] cycles per object), occupy physical resources
//! while resident, and execute synchronously: every cycle, every object of
//! every *running* configuration fires if its token handshake allows. The
//! configuration manager enforces the paper's protection rule —
//! "configurations cannot be overwritten illegally" — because resources held
//! by a resident configuration are never handed to another one.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::fmt;

use crate::channel::Channel;
use crate::error::{Error, Result};
use crate::netlist::Netlist;
use crate::object::{CounterCfg, ObjectKind, RAM_WORDS};
use crate::place::{Geometry, Placement, ResourceCounts, ResourcePool};
use crate::stats::ArrayStats;
use crate::word::{Event, Word};

/// Configuration-bus cost: cycles needed to load one object's configuration
/// words.
pub const CONFIG_CYCLES_PER_OBJECT: u64 = 3;

/// Handle to a loaded configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConfigId(u32);

impl ConfigId {
    /// The numeric id (stable for the lifetime of the array).
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ConfigId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cfg{}", self.0)
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ConfigState {
    Loading { remaining: u64 },
    Running,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PortDir {
    DataIn,
    DataOut,
    EvIn,
    EvOut,
}

#[derive(Debug)]
struct LoadedConfig {
    name: String,
    state: ConfigState,
    objects: Vec<usize>,
    dchans: Vec<usize>,
    echans: Vec<usize>,
    placement: Placement,
    ports: HashMap<String, (usize, PortDir)>,
}

#[derive(Debug)]
enum ObjState {
    None,
    Counter { value: i64, remaining: u64 },
    Accum(Word),
    Ram(Vec<Word>),
    Fifo(VecDeque<Word>),
    ExtInData(VecDeque<Word>),
    ExtOutData(Vec<Word>),
    ExtInEv(VecDeque<bool>),
    ExtOutEv(Vec<bool>),
}

#[derive(Debug)]
struct RuntimeObject {
    config: u32,
    kind: ObjectKind,
    label: String,
    state: ObjState,
    fires: u64,
    din: Vec<Option<usize>>,
    dout: Vec<Vec<usize>>,
    evin: Vec<Option<usize>>,
    evout: Vec<Vec<usize>>,
}

#[derive(Debug, Clone)]
struct Connection {
    from_obj: usize,
    to_obj: usize,
    event: bool,
    from_cfg: u32,
    to_cfg: u32,
}

/// A simulated XPP reconfigurable processing array.
///
/// # Example
///
/// ```
/// use xpp_array::{AluOp, Array, NetlistBuilder, Word};
///
/// # fn main() -> Result<(), xpp_array::Error> {
/// let mut nl = NetlistBuilder::new("doubler");
/// let input = nl.input("in");
/// let two = nl.constant(Word::new(2));
/// let out = nl.alu(AluOp::Mul, input, two);
/// nl.output("out", out);
///
/// let mut array = Array::xpp64a();
/// let cfg = array.configure(&nl.build()?)?;
/// array.push_input(cfg, "in", [1, 2, 3].map(Word::new))?;
/// array.run_until_idle(1_000)?;
/// let doubled: Vec<i32> = array.drain_output(cfg, "out")?.iter().map(|w| w.value()).collect();
/// assert_eq!(doubled, vec![2, 4, 6]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Array {
    geometry: Geometry,
    pool: ResourcePool,
    objects: Vec<Option<RuntimeObject>>,
    dchans: Vec<Option<Channel<Word>>>,
    echans: Vec<Option<Channel<Event>>>,
    configs: BTreeMap<u32, LoadedConfig>,
    load_queue: VecDeque<u32>,
    connections: Vec<Connection>,
    next_id: u32,
    stats: ArrayStats,
    config_fires: HashMap<u32, u64>,
}

impl Array {
    /// Creates an array with the XPP-64A geometry.
    pub fn xpp64a() -> Self {
        Self::with_geometry(Geometry::xpp64a())
    }

    /// Creates an array with a custom geometry.
    pub fn with_geometry(geometry: Geometry) -> Self {
        Array {
            geometry,
            pool: ResourcePool::new(geometry),
            objects: Vec::new(),
            dchans: Vec::new(),
            echans: Vec::new(),
            configs: BTreeMap::new(),
            load_queue: VecDeque::new(),
            connections: Vec::new(),
            next_id: 0,
            stats: ArrayStats::new(),
            config_fires: HashMap::new(),
        }
    }

    /// The array geometry.
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// Accumulated activity statistics.
    pub fn stats(&self) -> ArrayStats {
        self.stats
    }

    /// Firings attributed to one configuration so far.
    pub fn config_fire_count(&self, cfg: ConfigId) -> u64 {
        self.config_fires.get(&cfg.0).copied().unwrap_or(0)
    }

    /// Per-object fire counts of a configuration (label, fires) — the
    /// profiling view a hardware engineer uses to find a stalled pipeline
    /// stage.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NoSuchConfig`] if the id is stale.
    pub fn object_fire_counts(&self, cfg: ConfigId) -> Result<Vec<(String, u64)>> {
        let loaded = self.configs.get(&cfg.0).ok_or(Error::NoSuchConfig(cfg.0))?;
        Ok(loaded
            .objects
            .iter()
            .filter_map(|&o| self.objects[o].as_ref())
            .map(|o| (o.label.clone(), o.fires))
            .collect())
    }

    /// Currently free resources.
    pub fn free_resources(&self) -> ResourceCounts {
        self.pool.free()
    }

    /// Fraction of ALU-PAEs held by resident configurations.
    pub fn alu_utilization(&self) -> f64 {
        self.pool.alu_utilization()
    }

    /// Placement footprint of a resident configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NoSuchConfig`] if the id is stale.
    pub fn placement(&self, cfg: ConfigId) -> Result<&Placement> {
        self.configs
            .get(&cfg.0)
            .map(|c| &c.placement)
            .ok_or(Error::NoSuchConfig(cfg.0))
    }

    /// The name of a resident configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NoSuchConfig`] if the id is stale.
    pub fn config_name(&self, cfg: ConfigId) -> Result<&str> {
        self.configs
            .get(&cfg.0)
            .map(|c| c.name.as_str())
            .ok_or(Error::NoSuchConfig(cfg.0))
    }

    /// True if the configuration has finished loading.
    pub fn is_running(&self, cfg: ConfigId) -> bool {
        matches!(
            self.configs.get(&cfg.0).map(|c| &c.state),
            Some(ConfigState::Running)
        )
    }

    // ---- configuration management ------------------------------------

    /// Places a netlist onto the array and queues it for loading over the
    /// configuration bus.
    ///
    /// The configuration starts executing once loading completes (loading
    /// progresses as the array runs). Resources are reserved immediately, so
    /// a conflicting configuration is rejected up front.
    ///
    /// # Errors
    ///
    /// Returns [`Error::PlacementFailed`] if any resource class is exhausted.
    pub fn configure(&mut self, netlist: &Netlist) -> Result<ConfigId> {
        let placement = Placement::of(netlist);
        self.pool.allocate(placement.counts)?;
        let id = self.next_id;
        self.next_id += 1;

        // Instantiate channels.
        let mut d_map: HashMap<(usize, usize), Vec<usize>> = HashMap::new(); // from-port -> chans
        let mut d_in: HashMap<(usize, usize), usize> = HashMap::new(); // to-port -> chan
        let mut dchan_ids = Vec::new();
        for e in &netlist.data_edges {
            let idx = self.alloc_dchan(Channel::new(e.capacity, e.initial.iter().copied()));
            dchan_ids.push(idx);
            d_map.entry(e.from).or_default().push(idx);
            d_in.insert(e.to, idx);
        }
        let mut e_map: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
        let mut e_in: HashMap<(usize, usize), usize> = HashMap::new();
        let mut echan_ids = Vec::new();
        for e in &netlist.ev_edges {
            let idx = self.alloc_echan(Channel::new(
                e.capacity,
                e.initial.iter().map(|&b| Event(b)),
            ));
            echan_ids.push(idx);
            e_map.entry(e.from).or_default().push(idx);
            e_in.insert(e.to, idx);
        }

        // Instantiate objects.
        let mut obj_ids = Vec::new();
        let mut ports = HashMap::new();
        for (n, spec) in netlist.nodes.iter().enumerate() {
            let shape = spec.kind.shape();
            let state = match &spec.kind {
                ObjectKind::Counter(_) => ObjState::Counter {
                    value: 0,
                    remaining: 0,
                },
                ObjectKind::AccumDump => ObjState::Accum(Word::ZERO),
                ObjectKind::Ram { preload } => {
                    let mut mem = vec![Word::ZERO; RAM_WORDS];
                    mem[..preload.len()].copy_from_slice(preload);
                    ObjState::Ram(mem)
                }
                ObjectKind::RamFifo { preload, .. } => {
                    ObjState::Fifo(preload.iter().copied().collect())
                }
                ObjectKind::Input(_) => ObjState::ExtInData(VecDeque::new()),
                ObjectKind::Output(_) => ObjState::ExtOutData(Vec::new()),
                ObjectKind::InputEvent(_) => ObjState::ExtInEv(VecDeque::new()),
                ObjectKind::OutputEvent(_) => ObjState::ExtOutEv(Vec::new()),
                _ => ObjState::None,
            };
            let obj = RuntimeObject {
                config: id,
                kind: spec.kind.clone(),
                label: spec.label.clone(),
                state,
                fires: 0,
                din: (0..shape.din).map(|p| d_in.get(&(n, p)).copied()).collect(),
                dout: (0..shape.dout)
                    .map(|p| d_map.get(&(n, p)).cloned().unwrap_or_default())
                    .collect(),
                evin: (0..shape.evin)
                    .map(|p| e_in.get(&(n, p)).copied())
                    .collect(),
                evout: (0..shape.evout)
                    .map(|p| e_map.get(&(n, p)).cloned().unwrap_or_default())
                    .collect(),
            };
            let oid = self.alloc_object(obj);
            obj_ids.push(oid);
            match &spec.kind {
                ObjectKind::Input(name) => {
                    ports.insert(name.clone(), (oid, PortDir::DataIn));
                }
                ObjectKind::Output(name) => {
                    ports.insert(name.clone(), (oid, PortDir::DataOut));
                }
                ObjectKind::InputEvent(name) => {
                    ports.insert(name.clone(), (oid, PortDir::EvIn));
                }
                ObjectKind::OutputEvent(name) => {
                    ports.insert(name.clone(), (oid, PortDir::EvOut));
                }
                _ => {}
            }
        }

        let remaining = netlist.object_count() as u64 * CONFIG_CYCLES_PER_OBJECT;
        self.configs.insert(
            id,
            LoadedConfig {
                name: netlist.name().to_string(),
                state: ConfigState::Loading { remaining },
                objects: obj_ids,
                dchans: dchan_ids,
                echans: echan_ids,
                placement,
                ports,
            },
        );
        self.load_queue.push_back(id);
        self.config_fires.insert(id, 0);
        Ok(ConfigId(id))
    }

    /// Removes a configuration, releasing its resources for reuse — the
    /// paper's differential reconfiguration (Fig. 10): a follow-on
    /// configuration can be placed into the freed PAEs.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NoSuchConfig`] if the id is stale.
    pub fn unload(&mut self, cfg: ConfigId) -> Result<()> {
        let loaded = self
            .configs
            .remove(&cfg.0)
            .ok_or(Error::NoSuchConfig(cfg.0))?;
        for o in &loaded.objects {
            self.objects[*o] = None;
        }
        for c in &loaded.dchans {
            self.dchans[*c] = None;
        }
        for c in &loaded.echans {
            self.echans[*c] = None;
        }
        self.pool.release(loaded.placement.counts);
        self.load_queue.retain(|&q| q != cfg.0);
        self.connections
            .retain(|c| c.from_cfg != cfg.0 && c.to_cfg != cfg.0);
        Ok(())
    }

    fn alloc_object(&mut self, obj: RuntimeObject) -> usize {
        if let Some(slot) = self.objects.iter().position(Option::is_none) {
            self.objects[slot] = Some(obj);
            slot
        } else {
            self.objects.push(Some(obj));
            self.objects.len() - 1
        }
    }

    fn alloc_dchan(&mut self, ch: Channel<Word>) -> usize {
        if let Some(slot) = self.dchans.iter().position(Option::is_none) {
            self.dchans[slot] = Some(ch);
            slot
        } else {
            self.dchans.push(Some(ch));
            self.dchans.len() - 1
        }
    }

    fn alloc_echan(&mut self, ch: Channel<Event>) -> usize {
        if let Some(slot) = self.echans.iter().position(Option::is_none) {
            self.echans[slot] = Some(ch);
            slot
        } else {
            self.echans.push(Some(ch));
            self.echans.len() - 1
        }
    }

    // ---- streaming I/O --------------------------------------------------

    fn port(&self, cfg: ConfigId, name: &str, dir: PortDir) -> Result<usize> {
        let loaded = self.configs.get(&cfg.0).ok_or(Error::NoSuchConfig(cfg.0))?;
        match loaded.ports.get(name) {
            Some(&(obj, d)) if d == dir => Ok(obj),
            _ => Err(Error::UnknownPort(name.to_string())),
        }
    }

    /// Queues words on a named input port (buffered outside the array until
    /// the configuration consumes them).
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration or port does not exist.
    pub fn push_input(
        &mut self,
        cfg: ConfigId,
        name: &str,
        words: impl IntoIterator<Item = Word>,
    ) -> Result<()> {
        let obj = self.port(cfg, name, PortDir::DataIn)?;
        if let Some(RuntimeObject {
            state: ObjState::ExtInData(q),
            ..
        }) = self.objects[obj].as_mut()
        {
            q.extend(words);
            Ok(())
        } else {
            Err(Error::UnknownPort(name.to_string()))
        }
    }

    /// Queues events on a named event input port.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration or port does not exist.
    pub fn push_input_events(
        &mut self,
        cfg: ConfigId,
        name: &str,
        events: impl IntoIterator<Item = bool>,
    ) -> Result<()> {
        let obj = self.port(cfg, name, PortDir::EvIn)?;
        if let Some(RuntimeObject {
            state: ObjState::ExtInEv(q),
            ..
        }) = self.objects[obj].as_mut()
        {
            q.extend(events);
            Ok(())
        } else {
            Err(Error::UnknownPort(name.to_string()))
        }
    }

    /// Takes all words produced so far on a named output port.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration or port does not exist.
    pub fn drain_output(&mut self, cfg: ConfigId, name: &str) -> Result<Vec<Word>> {
        let obj = self.port(cfg, name, PortDir::DataOut)?;
        if let Some(RuntimeObject {
            state: ObjState::ExtOutData(v),
            ..
        }) = self.objects[obj].as_mut()
        {
            Ok(std::mem::take(v))
        } else {
            Err(Error::UnknownPort(name.to_string()))
        }
    }

    /// Takes all events produced so far on a named event output port.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration or port does not exist.
    pub fn drain_output_events(&mut self, cfg: ConfigId, name: &str) -> Result<Vec<bool>> {
        let obj = self.port(cfg, name, PortDir::EvOut)?;
        if let Some(RuntimeObject {
            state: ObjState::ExtOutEv(v),
            ..
        }) = self.objects[obj].as_mut()
        {
            Ok(std::mem::take(v))
        } else {
            Err(Error::UnknownPort(name.to_string()))
        }
    }

    /// Number of words waiting on an output port.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration or port does not exist.
    pub fn output_len(&self, cfg: ConfigId, name: &str) -> Result<usize> {
        let obj = self.port(cfg, name, PortDir::DataOut)?;
        if let Some(RuntimeObject {
            state: ObjState::ExtOutData(v),
            ..
        }) = self.objects[obj].as_ref()
        {
            Ok(v.len())
        } else {
            Err(Error::UnknownPort(name.to_string()))
        }
    }

    /// Routes an output port of one configuration into an input port of
    /// another — the board-level stream routing the evaluation platform's
    /// FPGA provides (Fig. 11). Tokens move once per cycle.
    ///
    /// # Errors
    ///
    /// Returns an error if either endpoint does not exist or the directions
    /// do not match.
    pub fn connect(
        &mut self,
        from: ConfigId,
        from_port: &str,
        to: ConfigId,
        to_port: &str,
    ) -> Result<()> {
        let from_obj = self.port(from, from_port, PortDir::DataOut)?;
        let to_obj = self.port(to, to_port, PortDir::DataIn)?;
        self.connections.push(Connection {
            from_obj,
            to_obj,
            event: false,
            from_cfg: from.0,
            to_cfg: to.0,
        });
        Ok(())
    }

    /// Routes an event output port into an event input port of another
    /// configuration.
    ///
    /// # Errors
    ///
    /// Returns an error if either endpoint does not exist or the directions
    /// do not match.
    pub fn connect_events(
        &mut self,
        from: ConfigId,
        from_port: &str,
        to: ConfigId,
        to_port: &str,
    ) -> Result<()> {
        let from_obj = self.port(from, from_port, PortDir::EvOut)?;
        let to_obj = self.port(to, to_port, PortDir::EvIn)?;
        self.connections.push(Connection {
            from_obj,
            to_obj,
            event: true,
            from_cfg: from.0,
            to_cfg: to.0,
        });
        Ok(())
    }

    // ---- simulation -----------------------------------------------------

    /// Advances one clock cycle. Returns `true` if any activity occurred
    /// (an object fired, a load progressed, or a board connection moved
    /// tokens).
    pub fn step(&mut self) -> bool {
        self.stats.cycles += 1;
        let mut active = false;

        // Configuration bus: the front of the queue loads.
        if let Some(&front) = self.load_queue.front() {
            active = true;
            self.stats.config_cycles += 1;
            let cfg = self.configs.get_mut(&front).expect("queued config exists");
            if let ConfigState::Loading { remaining } = &mut cfg.state {
                *remaining = remaining.saturating_sub(1);
                if *remaining == 0 {
                    cfg.state = ConfigState::Running;
                    self.stats.configs_loaded += 1;
                    self.load_queue.pop_front();
                }
            }
        }

        // Which configs are running this cycle?
        let loading: HashSet<u32> = self.load_queue.iter().copied().collect();

        // Fire phase.
        let Array {
            objects,
            dchans,
            echans,
            stats,
            config_fires,
            ..
        } = self;
        for obj in objects.iter_mut().flatten() {
            if loading.contains(&obj.config) {
                continue;
            }
            let fires = fire_object(obj, dchans, echans, stats);
            if fires > 0 {
                active = true;
                obj.fires += fires as u64;
                *config_fires.entry(obj.config).or_insert(0) += fires as u64;
            }
        }

        // Commit phase.
        for ch in self.dchans.iter_mut().flatten() {
            ch.commit();
        }
        for ch in self.echans.iter_mut().flatten() {
            ch.commit();
        }

        // Board-level connections.
        for conn in &self.connections {
            if conn.event {
                let moved = match self.objects[conn.from_obj].as_mut() {
                    Some(RuntimeObject {
                        state: ObjState::ExtOutEv(v),
                        ..
                    }) => std::mem::take(v),
                    _ => Vec::new(),
                };
                if !moved.is_empty() {
                    active = true;
                    if let Some(RuntimeObject {
                        state: ObjState::ExtInEv(q),
                        ..
                    }) = self.objects[conn.to_obj].as_mut()
                    {
                        q.extend(moved);
                    }
                }
            } else {
                let moved = match self.objects[conn.from_obj].as_mut() {
                    Some(RuntimeObject {
                        state: ObjState::ExtOutData(v),
                        ..
                    }) => std::mem::take(v),
                    _ => Vec::new(),
                };
                if !moved.is_empty() {
                    active = true;
                    if let Some(RuntimeObject {
                        state: ObjState::ExtInData(q),
                        ..
                    }) = self.objects[conn.to_obj].as_mut()
                    {
                        q.extend(moved);
                    }
                }
            }
        }

        active
    }

    /// Runs exactly `cycles` clock cycles.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Runs until a full cycle passes with no activity, returning the number
    /// of cycles executed.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Timeout`] if the array is still active after
    /// `budget` cycles (e.g. a free-running counter with an unbounded sink).
    pub fn run_until_idle(&mut self, budget: u64) -> Result<u64> {
        for n in 0..budget {
            if !self.step() {
                return Ok(n + 1);
            }
        }
        Err(Error::Timeout { budget })
    }

    /// Runs until `count` words are available on the named output port.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Timeout`] if the budget expires first, or an error
    /// if the port does not exist.
    pub fn run_until_output(
        &mut self,
        cfg: ConfigId,
        name: &str,
        count: usize,
        budget: u64,
    ) -> Result<u64> {
        for n in 0..budget {
            if self.output_len(cfg, name)? >= count {
                return Ok(n);
            }
            self.step();
        }
        if self.output_len(cfg, name)? >= count {
            Ok(budget)
        } else {
            Err(Error::Timeout { budget })
        }
    }
}

// ---- firing rules -------------------------------------------------------

fn can_put_d(dchans: &[Option<Channel<Word>>], list: &[usize]) -> bool {
    list.iter()
        .all(|&c| dchans[c].as_ref().expect("live channel").has_space())
}

fn put_d(dchans: &mut [Option<Channel<Word>>], list: &[usize], w: Word) {
    for &c in list {
        dchans[c].as_mut().expect("live channel").produce(w);
    }
}

fn can_put_e(echans: &[Option<Channel<Event>>], list: &[usize]) -> bool {
    list.iter()
        .all(|&c| echans[c].as_ref().expect("live channel").has_space())
}

fn put_e(echans: &mut [Option<Channel<Event>>], list: &[usize], e: Event) {
    for &c in list {
        echans[c].as_mut().expect("live channel").produce(e);
    }
}

fn has_d(dchans: &[Option<Channel<Word>>], ch: Option<usize>) -> bool {
    ch.map(|c| dchans[c].as_ref().expect("live channel").has_token())
        .unwrap_or(false)
}

fn take_d(dchans: &mut [Option<Channel<Word>>], ch: usize) -> Word {
    dchans[ch].as_mut().expect("live channel").consume()
}

fn has_e(echans: &[Option<Channel<Event>>], ch: Option<usize>) -> bool {
    ch.map(|c| echans[c].as_ref().expect("live channel").has_token())
        .unwrap_or(false)
}

fn peek_e(echans: &[Option<Channel<Event>>], ch: usize) -> Event {
    echans[ch]
        .as_ref()
        .expect("live channel")
        .peek()
        .expect("token present")
}

fn take_e(echans: &mut [Option<Channel<Event>>], ch: usize) -> Event {
    echans[ch].as_mut().expect("live channel").consume()
}

/// Fires every enabled rule of one object; returns the number of rule fires.
fn fire_object(
    obj: &mut RuntimeObject,
    dchans: &mut [Option<Channel<Word>>],
    echans: &mut [Option<Channel<Event>>],
    stats: &mut ArrayStats,
) -> u32 {
    match &obj.kind {
        ObjectKind::Alu(op) => {
            if has_d(dchans, obj.din[0])
                && has_d(dchans, obj.din[1])
                && can_put_d(dchans, &obj.dout[0])
            {
                let a = take_d(dchans, obj.din[0].unwrap());
                let b = take_d(dchans, obj.din[1].unwrap());
                put_d(dchans, &obj.dout[0], op.eval(a, b));
                if op.uses_multiplier() {
                    stats.mul_fires += 1;
                } else {
                    stats.alu_fires += 1;
                }
                1
            } else {
                0
            }
        }
        ObjectKind::Unary(op) => {
            if has_d(dchans, obj.din[0]) && can_put_d(dchans, &obj.dout[0]) {
                let a = take_d(dchans, obj.din[0].unwrap());
                put_d(dchans, &obj.dout[0], op.eval(a));
                if op.uses_multiplier() {
                    stats.mul_fires += 1;
                } else {
                    stats.reg_fires += 1;
                }
                1
            } else {
                0
            }
        }
        ObjectKind::Const(k) => {
            if !obj.dout[0].is_empty() && can_put_d(dchans, &obj.dout[0]) {
                put_d(dchans, &obj.dout[0], *k);
                stats.reg_fires += 1;
                1
            } else {
                0
            }
        }
        ObjectKind::Counter(cfg) => {
            let cfg = *cfg;
            fire_counter(obj, cfg, dchans, echans, stats)
        }
        ObjectKind::Select => {
            if has_d(dchans, obj.din[0])
                && has_d(dchans, obj.din[1])
                && has_e(echans, obj.evin[0])
                && can_put_d(dchans, &obj.dout[0])
            {
                let sel = take_e(echans, obj.evin[0].unwrap());
                let a = take_d(dchans, obj.din[0].unwrap());
                let b = take_d(dchans, obj.din[1].unwrap());
                put_d(dchans, &obj.dout[0], if sel.0 { b } else { a });
                stats.reg_fires += 1;
                1
            } else {
                0
            }
        }
        ObjectKind::Merge => {
            if has_e(echans, obj.evin[0]) && can_put_d(dchans, &obj.dout[0]) {
                let sel = peek_e(echans, obj.evin[0].unwrap());
                let port = if sel.0 { 1 } else { 0 };
                if has_d(dchans, obj.din[port]) {
                    take_e(echans, obj.evin[0].unwrap());
                    let v = take_d(dchans, obj.din[port].unwrap());
                    put_d(dchans, &obj.dout[0], v);
                    stats.reg_fires += 1;
                    return 1;
                }
            }
            0
        }
        ObjectKind::Demux => {
            if has_d(dchans, obj.din[0]) && has_e(echans, obj.evin[0]) {
                let sel = peek_e(echans, obj.evin[0].unwrap());
                let port = if sel.0 { 1 } else { 0 };
                if can_put_d(dchans, &obj.dout[port]) {
                    take_e(echans, obj.evin[0].unwrap());
                    let v = take_d(dchans, obj.din[0].unwrap());
                    put_d(dchans, &obj.dout[port], v);
                    stats.reg_fires += 1;
                    return 1;
                }
            }
            0
        }
        ObjectKind::Swap => {
            if has_d(dchans, obj.din[0])
                && has_d(dchans, obj.din[1])
                && has_e(echans, obj.evin[0])
                && can_put_d(dchans, &obj.dout[0])
                && can_put_d(dchans, &obj.dout[1])
            {
                let sel = take_e(echans, obj.evin[0].unwrap());
                let a = take_d(dchans, obj.din[0].unwrap());
                let b = take_d(dchans, obj.din[1].unwrap());
                let (x, y) = if sel.0 { (b, a) } else { (a, b) };
                put_d(dchans, &obj.dout[0], x);
                put_d(dchans, &obj.dout[1], y);
                stats.reg_fires += 1;
                1
            } else {
                0
            }
        }
        ObjectKind::Gate => {
            if has_d(dchans, obj.din[0]) && has_e(echans, obj.evin[0]) {
                let pass = peek_e(echans, obj.evin[0].unwrap()).0;
                if pass && !can_put_d(dchans, &obj.dout[0]) {
                    return 0;
                }
                take_e(echans, obj.evin[0].unwrap());
                let v = take_d(dchans, obj.din[0].unwrap());
                if pass {
                    put_d(dchans, &obj.dout[0], v);
                }
                stats.reg_fires += 1;
                1
            } else {
                0
            }
        }
        ObjectKind::AccumDump => {
            if has_d(dchans, obj.din[0]) && has_e(echans, obj.evin[0]) {
                let dump = peek_e(echans, obj.evin[0].unwrap()).0;
                if dump && !can_put_d(dchans, &obj.dout[0]) {
                    return 0;
                }
                take_e(echans, obj.evin[0].unwrap());
                let v = take_d(dchans, obj.din[0].unwrap());
                if let ObjState::Accum(acc) = &mut obj.state {
                    *acc = acc.wrapping_add(v);
                    if dump {
                        let out = *acc;
                        *acc = Word::ZERO;
                        put_d(dchans, &obj.dout[0], out);
                    }
                }
                stats.alu_fires += 1;
                1
            } else {
                0
            }
        }
        ObjectKind::ToEvent => {
            if has_d(dchans, obj.din[0]) && can_put_e(echans, &obj.evout[0]) {
                let v = take_d(dchans, obj.din[0].unwrap());
                put_e(echans, &obj.evout[0], Event(v.truthy()));
                stats.event_fires += 1;
                1
            } else {
                0
            }
        }
        ObjectKind::ToData => {
            if has_e(echans, obj.evin[0]) && can_put_d(dchans, &obj.dout[0]) {
                let e = take_e(echans, obj.evin[0].unwrap());
                put_d(dchans, &obj.dout[0], Word::new(e.0 as i32));
                stats.reg_fires += 1;
                1
            } else {
                0
            }
        }
        ObjectKind::EventNot => {
            if has_e(echans, obj.evin[0]) && can_put_e(echans, &obj.evout[0]) {
                let e = take_e(echans, obj.evin[0].unwrap());
                put_e(echans, &obj.evout[0], Event(!e.0));
                stats.event_fires += 1;
                1
            } else {
                0
            }
        }
        ObjectKind::EventAnd | ObjectKind::EventOr => {
            if has_e(echans, obj.evin[0])
                && has_e(echans, obj.evin[1])
                && can_put_e(echans, &obj.evout[0])
            {
                let a = take_e(echans, obj.evin[0].unwrap());
                let b = take_e(echans, obj.evin[1].unwrap());
                let r = if matches!(obj.kind, ObjectKind::EventAnd) {
                    a.0 && b.0
                } else {
                    a.0 || b.0
                };
                put_e(echans, &obj.evout[0], Event(r));
                stats.event_fires += 1;
                1
            } else {
                0
            }
        }
        ObjectKind::Ram { .. } => {
            let mut fires = 0;
            // Write rule first: write-through within the cycle.
            if obj.din[1].is_some()
                && obj.din[2].is_some()
                && has_d(dchans, obj.din[1])
                && has_d(dchans, obj.din[2])
            {
                let a = take_d(dchans, obj.din[1].unwrap()).bits() as usize % RAM_WORDS;
                let v = take_d(dchans, obj.din[2].unwrap());
                if let ObjState::Ram(mem) = &mut obj.state {
                    mem[a] = v;
                }
                stats.ram_writes += 1;
                fires += 1;
            }
            if obj.din[0].is_some() && has_d(dchans, obj.din[0]) && can_put_d(dchans, &obj.dout[0])
            {
                let a = take_d(dchans, obj.din[0].unwrap()).bits() as usize % RAM_WORDS;
                let v = if let ObjState::Ram(mem) = &obj.state {
                    mem[a]
                } else {
                    Word::ZERO
                };
                put_d(dchans, &obj.dout[0], v);
                stats.ram_reads += 1;
                fires += 1;
            }
            fires
        }
        ObjectKind::RamFifo { depth, ring, .. } => {
            let depth = *depth;
            if *ring {
                if can_put_d(dchans, &obj.dout[0]) && !obj.dout[0].is_empty() {
                    if let ObjState::Fifo(buf) = &mut obj.state {
                        if let Some(v) = buf.pop_front() {
                            put_d(dchans, &obj.dout[0], v);
                            buf.push_back(v);
                            stats.fifo_fires += 1;
                            return 1;
                        }
                    }
                }
                0
            } else {
                let mut fires = 0;
                let mut popped = false;
                if let ObjState::Fifo(buf) = &mut obj.state {
                    if !buf.is_empty() && can_put_d(dchans, &obj.dout[0]) {
                        put_d(dchans, &obj.dout[0], *buf.front().expect("nonempty"));
                        popped = true;
                        stats.fifo_fires += 1;
                        fires += 1;
                    }
                }
                let space = if let ObjState::Fifo(buf) = &obj.state {
                    buf.len() - usize::from(popped) < depth
                } else {
                    false
                };
                if space && has_d(dchans, obj.din[0]) {
                    let v = take_d(dchans, obj.din[0].unwrap());
                    if let ObjState::Fifo(buf) = &mut obj.state {
                        buf.push_back(v);
                    }
                    stats.fifo_fires += 1;
                    fires += 1;
                }
                if popped {
                    if let ObjState::Fifo(buf) = &mut obj.state {
                        buf.pop_front();
                    }
                }
                fires
            }
        }
        ObjectKind::Input(_) => {
            if can_put_d(dchans, &obj.dout[0]) {
                if let ObjState::ExtInData(q) = &mut obj.state {
                    if let Some(v) = q.pop_front() {
                        put_d(dchans, &obj.dout[0], v);
                        stats.io_words += 1;
                        return 1;
                    }
                }
            }
            0
        }
        ObjectKind::Output(_) => {
            if has_d(dchans, obj.din[0]) {
                let v = take_d(dchans, obj.din[0].unwrap());
                if let ObjState::ExtOutData(buf) = &mut obj.state {
                    buf.push(v);
                }
                stats.io_words += 1;
                1
            } else {
                0
            }
        }
        ObjectKind::InputEvent(_) => {
            if can_put_e(echans, &obj.evout[0]) {
                if let ObjState::ExtInEv(q) = &mut obj.state {
                    if let Some(v) = q.pop_front() {
                        put_e(echans, &obj.evout[0], Event(v));
                        stats.event_fires += 1;
                        return 1;
                    }
                }
            }
            0
        }
        ObjectKind::OutputEvent(_) => {
            if has_e(echans, obj.evin[0]) {
                let e = take_e(echans, obj.evin[0].unwrap());
                if let ObjState::ExtOutEv(buf) = &mut obj.state {
                    buf.push(e.0);
                }
                stats.event_fires += 1;
                1
            } else {
                0
            }
        }
    }
}

fn fire_counter(
    obj: &mut RuntimeObject,
    cfg: CounterCfg,
    dchans: &mut [Option<Channel<Word>>],
    echans: &mut [Option<Channel<Event>>],
    stats: &mut ArrayStats,
) -> u32 {
    let mut fires = 0;
    let (value, remaining) = match &mut obj.state {
        ObjState::Counter { value, remaining } => (value, remaining),
        _ => unreachable!("counter state"),
    };
    if *remaining == 0 {
        if cfg.gated {
            if has_e(echans, obj.evin[0]) {
                take_e(echans, obj.evin[0].unwrap());
                *remaining = cfg.period;
                *value = cfg.start;
                stats.event_fires += 1;
                fires += 1;
            } else {
                return 0;
            }
        } else {
            *remaining = cfg.period;
            *value = cfg.start;
        }
    }
    // A counter with no data consumers would fire forever without moving a
    // token; require at least one connected value channel.
    if obj.dout[0].is_empty() {
        return fires;
    }
    let last = *remaining == 1;
    if can_put_d(dchans, &obj.dout[0]) && (!last || can_put_e(echans, &obj.evout[0])) {
        put_d(dchans, &obj.dout[0], Word::from_i64(*value));
        if last {
            put_e(echans, &obj.evout[0], Event(true));
        }
        *value += cfg.step;
        *remaining -= 1;
        stats.reg_fires += 1;
        fires += 1;
    }
    fires
}
