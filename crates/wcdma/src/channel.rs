//! Chip-rate multipath channel and the receiver's A/D front end.
//!
//! Replaces the RF front end of the evaluation board (DESIGN.md §2): each
//! cell's signal passes through a tapped delay line with complex path gains,
//! everything is summed with AWGN, and the result is quantised to the 12-bit
//! I/Q samples the paper's rake receiver design assumes.

use crate::tx::TxSignal;
use sdr_dsp::fixed::sat;
use sdr_dsp::noise::Awgn;
use sdr_dsp::Cplx;

/// One propagation path: an integer chip delay and a complex gain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Path {
    /// Delay in chips.
    pub delay: usize,
    /// Complex gain.
    pub gain: Cplx<f64>,
}

impl Path {
    /// Creates a path.
    pub fn new(delay: usize, gain: Cplx<f64>) -> Self {
        Path { delay, gain }
    }
}

/// Multipath description for one cell's link to the terminal.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CellLink {
    /// Paths seen from antenna 1.
    pub paths_ant1: Vec<Path>,
    /// Paths seen from antenna 2 (used only when the cell transmits STTD).
    pub paths_ant2: Vec<Path>,
}

impl CellLink {
    /// A single-antenna link with the given paths.
    pub fn new(paths: Vec<Path>) -> Self {
        CellLink {
            paths_ant1: paths,
            paths_ant2: Vec::new(),
        }
    }

    /// A transmit-diversity link (independent paths per antenna).
    pub fn with_diversity(ant1: Vec<Path>, ant2: Vec<Path>) -> Self {
        CellLink {
            paths_ant1: ant1,
            paths_ant2: ant2,
        }
    }

    /// The largest delay of any path.
    pub fn max_delay(&self) -> usize {
        self.paths_ant1
            .iter()
            .chain(&self.paths_ant2)
            .map(|p| p.delay)
            .max()
            .unwrap_or(0)
    }
}

/// The analog-to-digital front end.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdcConfig {
    /// Linear gain applied before quantisation.
    pub gain: f64,
    /// Output width in bits (paper: 12 for I and Q each).
    pub bits: u32,
}

impl Default for AdcConfig {
    fn default() -> Self {
        AdcConfig {
            gain: 512.0,
            bits: 12,
        }
    }
}

impl AdcConfig {
    /// Quantises one complex sample with rounding and saturation.
    pub fn digitize(&self, c: Cplx<f64>) -> Cplx<i32> {
        Cplx::new(
            sat((c.re * self.gain).round() as i64, self.bits),
            sat((c.im * self.gain).round() as i64, self.bits),
        )
    }
}

/// Propagates a set of cell signals through their multipath links, adds
/// noise, and digitises — producing the chip-rate sample stream the rake
/// receiver sees.
///
/// `noise_sigma` is the per-dimension AWGN standard deviation *before* the
/// ADC gain. The output length covers every delayed contribution.
///
/// # Panics
///
/// Panics if a cell transmits on antenna 2 without `paths_ant2`, or the
/// input is empty.
pub fn propagate(
    signals: &[(TxSignal, CellLink)],
    noise_sigma: f64,
    seed: u64,
    adc: AdcConfig,
) -> Vec<Cplx<i32>> {
    assert!(!signals.is_empty(), "propagate: no signals");
    let out_len = signals
        .iter()
        .map(|(s, link)| s.len() + link.max_delay())
        .max()
        .unwrap_or(0);
    let mut sum = vec![Cplx::<f64>::ZERO; out_len];
    for (signal, link) in signals {
        for path in &link.paths_ant1 {
            for (t, &chip) in signal.ant1.iter().enumerate() {
                sum[t + path.delay] += chip * path.gain;
            }
        }
        if let Some(ant2) = &signal.ant2 {
            assert!(
                !link.paths_ant2.is_empty(),
                "cell transmits STTD but the link has no antenna-2 paths"
            );
            for path in &link.paths_ant2 {
                for (t, &chip) in ant2.iter().enumerate() {
                    sum[t + path.delay] += chip * path.gain;
                }
            }
        }
    }
    let mut awgn = Awgn::new(seed, noise_sigma);
    if noise_sigma > 0.0 {
        awgn.add_to(&mut sum);
    }
    sum.into_iter().map(|c| adc.digitize(c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn impulse_signal(len: usize, at: usize) -> TxSignal {
        let mut chips = vec![Cplx::<f64>::ZERO; len];
        chips[at] = Cplx::new(1.0, -1.0);
        TxSignal {
            ant1: chips,
            ant2: None,
        }
    }

    #[test]
    fn single_path_delays_signal() {
        let sig = impulse_signal(8, 0);
        let link = CellLink::new(vec![Path::new(3, Cplx::new(1.0, 0.0))]);
        let rx = propagate(&[(sig, link)], 0.0, 1, AdcConfig::default());
        assert_eq!(rx.len(), 11);
        assert_eq!(rx[3], Cplx::new(512, -512));
        assert_eq!(rx[0], Cplx::new(0, 0));
    }

    #[test]
    fn multipath_sums_contributions() {
        let sig = impulse_signal(4, 0);
        let link = CellLink::new(vec![
            Path::new(0, Cplx::new(1.0, 0.0)),
            Path::new(2, Cplx::new(0.5, 0.0)),
        ]);
        let rx = propagate(&[(sig, link)], 0.0, 1, AdcConfig::default());
        assert_eq!(rx[0], Cplx::new(512, -512));
        assert_eq!(rx[2], Cplx::new(256, -256));
    }

    #[test]
    fn complex_gain_rotates() {
        let sig = impulse_signal(2, 0);
        let link = CellLink::new(vec![Path::new(0, Cplx::new(0.0, 1.0))]); // ×j
        let rx = propagate(&[(sig, link)], 0.0, 1, AdcConfig::default());
        // (1 - j)·j = j + 1.
        assert_eq!(rx[0], Cplx::new(512, 512));
    }

    #[test]
    fn adc_saturates_at_12_bits() {
        let sig = impulse_signal(1, 0);
        let link = CellLink::new(vec![Path::new(0, Cplx::new(100.0, 0.0))]);
        let rx = propagate(&[(sig, link)], 0.0, 1, AdcConfig::default());
        assert_eq!(rx[0].re, 2047);
        assert_eq!(rx[0].im, -2048);
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let sig = impulse_signal(64, 0);
        let link = CellLink::new(vec![Path::new(0, Cplx::new(1.0, 0.0))]);
        let a = propagate(&[(sig.clone(), link.clone())], 0.1, 7, AdcConfig::default());
        let b = propagate(&[(sig, link)], 0.1, 7, AdcConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn sttd_without_ant2_paths_panics() {
        let sig = TxSignal {
            ant1: vec![Cplx::new(1.0, 0.0)],
            ant2: Some(vec![Cplx::new(1.0, 0.0)]),
        };
        let link = CellLink::new(vec![Path::new(0, Cplx::new(1.0, 0.0))]);
        propagate(&[(sig, link)], 0.0, 1, AdcConfig::default());
    }

    #[test]
    fn two_cells_superpose() {
        let s1 = impulse_signal(4, 0);
        let s2 = impulse_signal(4, 1);
        let l = CellLink::new(vec![Path::new(0, Cplx::new(1.0, 0.0))]);
        let rx = propagate(&[(s1, l.clone()), (s2, l)], 0.0, 1, AdcConfig::default());
        assert_eq!(rx[0], Cplx::new(512, -512));
        assert_eq!(rx[1], Cplx::new(512, -512));
    }
}
