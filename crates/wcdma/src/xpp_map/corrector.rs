//! The channel-correction unit on the array (paper Fig. 7).
//!
//! Two variants, mirroring the figure:
//!
//! * [`corrector_netlist`] — the time-multiplexed corrector with *resident*
//!   per-finger weights held in RAM-PAEs (the figure's weight FIFOs). The
//!   DSP updates weights at slot rate through write ports while symbols
//!   stream; symbol-paced events gate the weight reads so weights and
//!   symbols stay token-aligned.
//! * [`sttd_corrector_netlist`] — the STTD decoder: symbol pairs and weight
//!   pairs arrive interleaved, demuxes split them, sixteen multipliers form
//!   `ŝ1 = w1*·r1 + w2·r2*` and `ŝ2 = w1*·r2 − w2·r1*`, and merges
//!   re-interleave the decoded pair.

use crate::rake::finger::WEIGHT_FRAC_BITS;
use crate::xpp_map::{split_iq, zip_iq};
use sdr_dsp::Cplx;
use xpp_array::{
    AluOp, Array, ConfigId, CounterCfg, DataOut, Netlist, NetlistBuilder, Result, UnaryOp, Word,
    WORD_MIN,
};

/// Builds the resident-weight corrector for `fingers` time-multiplexed
/// fingers.
///
/// External ports: symbols in `i_in`/`q_in` (finger-major interleaved),
/// weight updates in `w_addr`/`wi`/`wq`, corrected symbols out
/// `i_out`/`q_out`. Output is `(s · conj(w)) >> 9`, truncating — identical
/// to the golden [`correct`](crate::rake::finger::correct).
///
/// # Panics
///
/// Panics if `fingers` is 0 or exceeds 512 (one RAM bank per component).
pub fn corrector_netlist(fingers: usize) -> Netlist {
    assert!((1..=512).contains(&fingers), "fingers must be 1..=512");
    let mut nl = NetlistBuilder::new(format!("fig7-corrector-{fingers}x"));
    let i_in = nl.input("i_in");
    let q_in = nl.input("q_in");
    let w_addr = nl.input("w_addr");
    let wi = nl.input("wi");
    let wq = nl.input("wq");

    // One weight-read per symbol: an always-true event derived from the
    // symbol stream gates the finger-address counter, so reads can neither
    // run ahead of the weights nor fall out of step with the symbols.
    let always = nl.unary(UnaryOp::GeK(Word::new(WORD_MIN)), i_in);
    let sym_ev = nl.to_event(always);
    let rd_ctr = nl.counter(CounterCfg::modulo(fingers as u64));
    let rd_addr = nl.gate(sym_ev, rd_ctr.value);

    let ram_wi = nl.ram(vec![]);
    let ram_wq = nl.ram(vec![]);
    nl.wire(rd_addr, ram_wi.rd_addr);
    nl.wire(rd_addr, ram_wq.rd_addr);
    nl.wire(w_addr, ram_wi.wr_addr);
    nl.wire(w_addr, ram_wq.wr_addr);
    nl.wire(wi, ram_wi.wr_data);
    nl.wire(wq, ram_wq.wr_data);
    let wi_s = ram_wi.rd_data;
    let wq_s = ram_wq.rd_data;

    // s · conj(w): re = i·wi + q·wq ; im = q·wi − i·wq ; then >> 9.
    let p1 = nl.alu(AluOp::Mul, i_in, wi_s);
    let p2 = nl.alu(AluOp::Mul, q_in, wq_s);
    let p3 = nl.alu(AluOp::Mul, q_in, wi_s);
    let p4 = nl.alu(AluOp::Mul, i_in, wq_s);
    let re = nl.alu(AluOp::Add, p1, p2);
    let im = nl.alu(AluOp::Sub, p3, p4);
    let re = nl.unary(UnaryOp::ShrK(WEIGHT_FRAC_BITS), re);
    let im = nl.unary(UnaryOp::ShrK(WEIGHT_FRAC_BITS), im);
    nl.output("i_out", re);
    nl.output("q_out", im);
    nl.build().expect("corrector netlist is well formed")
}

/// Builds the STTD decoding corrector (one finger; symbol pairs and weight
/// pairs interleaved on the ports).
///
/// External ports: `i_in`/`q_in` (r1, r2 interleaved), `wi`/`wq` (w1, w2
/// interleaved, one pair per symbol pair), `i_out`/`q_out` (ŝ1, ŝ2
/// interleaved). Matches the golden
/// [`sttd_decode_fixed`](crate::symbols::sttd_decode_fixed) with
/// `frac = 9` exactly.
pub fn sttd_corrector_netlist() -> Netlist {
    let mut nl = NetlistBuilder::new("fig7-sttd-corrector");
    let i_in = nl.input("i_in");
    let q_in = nl.input("q_in");
    let wi = nl.input("wi");
    let wq = nl.input("wq");

    // Toggle: token index parity within each pair.
    let tog = nl.counter(CounterCfg::modulo(2));
    let tog_ev = nl.to_event(tog.value);
    let (r1i, r2i) = nl.demux(tog_ev, i_in);
    let (r1q, r2q) = nl.demux(tog_ev, q_in);
    let (w1i, w2i) = nl.demux(tog_ev, wi);
    let (w1q, w2q) = nl.demux(tog_ev, wq);

    let mul = |nl: &mut NetlistBuilder, a: DataOut, b: DataOut| nl.alu(AluOp::Mul, a, b);

    // ŝ1 = w1*·r1 + w2·r2*
    let a1 = mul(&mut nl, w1i, r1i);
    let a2 = mul(&mut nl, w1q, r1q);
    let a3 = mul(&mut nl, w2i, r2i);
    let a4 = mul(&mut nl, w2q, r2q);
    let s1_re_a = nl.alu(AluOp::Add, a1, a2);
    let s1_re_b = nl.alu(AluOp::Add, a3, a4);
    let s1_re = nl.alu(AluOp::Add, s1_re_a, s1_re_b);

    let b1 = mul(&mut nl, w1i, r1q);
    let b2 = mul(&mut nl, w1q, r1i);
    let b3 = mul(&mut nl, w2q, r2i);
    let b4 = mul(&mut nl, w2i, r2q);
    let s1_im_a = nl.alu(AluOp::Sub, b1, b2);
    let s1_im_b = nl.alu(AluOp::Sub, b3, b4);
    let s1_im = nl.alu(AluOp::Add, s1_im_a, s1_im_b);

    // ŝ2 = w1*·r2 − w2·r1*
    let c1 = mul(&mut nl, w1i, r2i);
    let c2 = mul(&mut nl, w1q, r2q);
    let c3 = mul(&mut nl, w2i, r1i);
    let c4 = mul(&mut nl, w2q, r1q);
    let s2_re_a = nl.alu(AluOp::Add, c1, c2);
    let s2_re_b = nl.alu(AluOp::Add, c3, c4);
    let s2_re = nl.alu(AluOp::Sub, s2_re_a, s2_re_b);

    let d1 = mul(&mut nl, w1i, r2q);
    let d2 = mul(&mut nl, w1q, r2i);
    let d3 = mul(&mut nl, w2q, r1i);
    let d4 = mul(&mut nl, w2i, r1q);
    let s2_im_a = nl.alu(AluOp::Sub, d1, d2);
    let s2_im_b = nl.alu(AluOp::Sub, d3, d4);
    let s2_im = nl.alu(AluOp::Sub, s2_im_a, s2_im_b);

    let s1_re = nl.unary(UnaryOp::ShrK(WEIGHT_FRAC_BITS), s1_re);
    let s1_im = nl.unary(UnaryOp::ShrK(WEIGHT_FRAC_BITS), s1_im);
    let s2_re = nl.unary(UnaryOp::ShrK(WEIGHT_FRAC_BITS), s2_re);
    let s2_im = nl.unary(UnaryOp::ShrK(WEIGHT_FRAC_BITS), s2_im);

    // Re-interleave ŝ1, ŝ2 onto the output streams.
    let out_tog = nl.counter(CounterCfg::modulo(2));
    let out_ev = nl.to_event(out_tog.value);
    let i_out = nl.merge(out_ev, s1_re, s2_re);
    let q_out = nl.merge(out_ev, s1_im, s2_im);
    nl.output("i_out", i_out);
    nl.output("q_out", q_out);
    nl.build().expect("sttd corrector netlist is well formed")
}

/// Resident-weight corrector on its own array instance.
#[derive(Debug)]
pub struct ArrayCorrector {
    array: Array,
    cfg: ConfigId,
    fingers: usize,
}

impl ArrayCorrector {
    /// Instantiates the corrector for `fingers` multiplexed fingers.
    ///
    /// # Errors
    ///
    /// Returns an error if placement fails.
    pub fn new(fingers: usize) -> Result<Self> {
        let mut array = Array::xpp64a();
        let cfg = array.configure(&corrector_netlist(fingers))?;
        Ok(ArrayCorrector {
            array,
            cfg,
            fingers,
        })
    }

    /// Writes per-finger weights into the resident RAM banks (what the DSP
    /// does at slot rate). Must be called between symbol blocks.
    ///
    /// # Errors
    ///
    /// Returns an error if the simulation stalls.
    ///
    /// # Panics
    ///
    /// Panics if the weight count differs from the finger count.
    pub fn set_weights(&mut self, weights: &[Cplx<i32>]) -> Result<()> {
        assert_eq!(weights.len(), self.fingers, "one weight per finger");
        self.array.push_input(
            self.cfg,
            "w_addr",
            (0..self.fingers).map(|f| Word::new(f as i32)),
        )?;
        self.array
            .push_input(self.cfg, "wi", weights.iter().map(|w| Word::new(w.re)))?;
        self.array
            .push_input(self.cfg, "wq", weights.iter().map(|w| Word::new(w.im)))?;
        self.array.run_until_idle(10_000)?;
        Ok(())
    }

    /// Corrects a finger-major interleaved symbol stream; the length must be
    /// a multiple of the finger count.
    ///
    /// # Errors
    ///
    /// Returns an error if the simulation stalls.
    pub fn process(&mut self, muxed: &[Cplx<i32>]) -> Result<Vec<Cplx<i32>>> {
        assert!(
            muxed.len().is_multiple_of(self.fingers),
            "stream must cover whole finger rounds"
        );
        let (i, q) = split_iq(muxed);
        self.array.push_input(self.cfg, "i_in", i)?;
        self.array.push_input(self.cfg, "q_in", q)?;
        let budget = 16 * muxed.len() as u64 + 4_000;
        self.array
            .run_until_output(self.cfg, "i_out", muxed.len(), budget)?;
        self.array.run_until_idle(4_000)?;
        let i_out = self.array.drain_output(self.cfg, "i_out")?;
        let q_out = self.array.drain_output(self.cfg, "q_out")?;
        Ok(zip_iq(&i_out, &q_out))
    }

    /// The underlying array.
    pub fn array(&self) -> &Array {
        &self.array
    }

    /// The configuration handle.
    pub fn config(&self) -> ConfigId {
        self.cfg
    }
}

/// STTD corrector on its own array instance.
#[derive(Debug)]
pub struct ArraySttdCorrector {
    array: Array,
    cfg: ConfigId,
}

impl ArraySttdCorrector {
    /// Instantiates the STTD corrector.
    ///
    /// # Errors
    ///
    /// Returns an error if placement fails.
    pub fn new() -> Result<Self> {
        let mut array = Array::xpp64a();
        let cfg = array.configure(&sttd_corrector_netlist())?;
        Ok(ArraySttdCorrector { array, cfg })
    }

    /// Decodes an even-length symbol stream (r1, r2 pairs) with weights
    /// `w1`, `w2`, returning the interleaved `ŝ1, ŝ2` stream.
    ///
    /// # Errors
    ///
    /// Returns an error if the simulation stalls.
    ///
    /// # Panics
    ///
    /// Panics if the stream length is odd.
    pub fn process(
        &mut self,
        symbols: &[Cplx<i32>],
        w1: Cplx<i32>,
        w2: Cplx<i32>,
    ) -> Result<Vec<Cplx<i32>>> {
        assert!(symbols.len().is_multiple_of(2), "STTD needs symbol pairs");
        let (i, q) = split_iq(symbols);
        let pairs = symbols.len() / 2;
        let mut wi = Vec::with_capacity(symbols.len());
        let mut wq = Vec::with_capacity(symbols.len());
        for _ in 0..pairs {
            wi.push(Word::new(w1.re));
            wi.push(Word::new(w2.re));
            wq.push(Word::new(w1.im));
            wq.push(Word::new(w2.im));
        }
        self.array.push_input(self.cfg, "i_in", i)?;
        self.array.push_input(self.cfg, "q_in", q)?;
        self.array.push_input(self.cfg, "wi", wi)?;
        self.array.push_input(self.cfg, "wq", wq)?;
        let budget = 24 * symbols.len() as u64 + 4_000;
        self.array
            .run_until_output(self.cfg, "i_out", symbols.len(), budget)?;
        self.array.run_until_idle(4_000)?;
        let i_out = self.array.drain_output(self.cfg, "i_out")?;
        let q_out = self.array.drain_output(self.cfg, "q_out")?;
        Ok(zip_iq(&i_out, &q_out))
    }

    /// The underlying array.
    pub fn array(&self) -> &Array {
        &self.array
    }

    /// The configuration handle.
    pub fn config(&self) -> ConfigId {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rake::finger::correct;
    use crate::symbols::sttd_decode_fixed;

    fn syms(n: usize, seed: i32) -> Vec<Cplx<i32>> {
        (0..n as i32)
            .map(|i| {
                Cplx::new(
                    ((i * 211 + seed * 31) % 8191) - 4095,
                    ((i * 97 + seed * 17) % 8191) - 4095,
                )
            })
            .collect()
    }

    #[test]
    fn corrector_matches_golden_per_finger() {
        let fingers = 4;
        let weights = vec![
            Cplx::new(512, 0),
            Cplx::new(0, 512),
            Cplx::new(-300, 400),
            Cplx::new(700, -700),
        ];
        let per_finger: Vec<Vec<Cplx<i32>>> = (0..fingers).map(|f| syms(8, f as i32)).collect();
        // Finger-major interleave.
        let mut muxed = Vec::new();
        for k in 0..8 {
            for s in &per_finger {
                muxed.push(s[k]);
            }
        }
        let mut hw = ArrayCorrector::new(fingers).unwrap();
        hw.set_weights(&weights).unwrap();
        let out = hw.process(&muxed).unwrap();
        for (f, stream) in per_finger.iter().enumerate() {
            let golden = correct(stream, weights[f]);
            let got: Vec<Cplx<i32>> = out.iter().skip(f).step_by(fingers).copied().collect();
            assert_eq!(got, golden, "finger {f}");
        }
    }

    #[test]
    fn corrector_weights_can_be_updated_between_blocks() {
        let mut hw = ArrayCorrector::new(2).unwrap();
        let block = syms(8, 3);
        hw.set_weights(&[Cplx::new(512, 0), Cplx::new(512, 0)])
            .unwrap();
        let first = hw.process(&block).unwrap();
        assert_eq!(first, block); // unit weight = identity
        hw.set_weights(&[Cplx::new(0, 512), Cplx::new(0, 512)])
            .unwrap();
        let second = hw.process(&block).unwrap();
        let rotated: Vec<Cplx<i32>> = block.iter().map(|s| s.mul_neg_j()).collect();
        assert_eq!(second, rotated); // conj(j)·s = −j·s
    }

    #[test]
    fn sttd_corrector_matches_golden_bit_exact() {
        let w1 = Cplx::new(430, -120);
        let w2 = Cplx::new(-90, 380);
        let symbols = syms(16, 9);
        let mut hw = ArraySttdCorrector::new().unwrap();
        let out = hw.process(&symbols, w1, w2).unwrap();
        for (p, pair) in symbols.chunks_exact(2).enumerate() {
            let (s1, s2) = sttd_decode_fixed(pair[0], pair[1], w1, w2, WEIGHT_FRAC_BITS);
            assert_eq!(out[2 * p], s1, "pair {p} s1");
            assert_eq!(out[2 * p + 1], s2, "pair {p} s2");
        }
    }

    #[test]
    fn sttd_corrector_uses_sixteen_multipliers() {
        let hw = ArraySttdCorrector::new().unwrap();
        let p = hw.array().placement(hw.config()).unwrap();
        // 16 muls + 12 add/sub = 28 ALU objects.
        assert_eq!(p.counts.alu, 28);
        assert_eq!(p.counts.io, 6);
    }

    #[test]
    fn corrector_resource_footprint() {
        let hw = ArrayCorrector::new(18).unwrap();
        let p = hw.array().placement(hw.config()).unwrap();
        assert_eq!(p.counts.ram, 2); // weight banks
        assert_eq!(p.counts.alu, 6); // 4 muls + add + sub
        assert_eq!(p.counts.io, 7);
    }
}
