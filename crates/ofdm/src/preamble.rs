//! The 802.11a PLCP preamble: short and long training sequences
//! (§17.3.3), used for frame detection, timing synchronisation and channel
//! estimation.

use crate::params::{subcarrier_to_bin, FFT_LEN};
use sdr_dsp::fft::ifft;
use sdr_dsp::Cplx;

/// Length of the short training field in samples (10 × 16).
pub const SHORT_LEN: usize = 160;

/// Length of the long training field in samples (32 CP + 2 × 64).
pub const LONG_LEN: usize = 160;

/// Period of the short training symbol in samples.
pub const SHORT_PERIOD: usize = 16;

/// The frequency-domain short training sequence on subcarriers −26..26
/// (non-zero every 4th subcarrier), including the √(13/6) power scaling.
pub fn short_sequence() -> Vec<(i32, Cplx<f64>)> {
    let s = (13.0f64 / 6.0).sqrt();
    let p = Cplx::new(s, s);
    let m = Cplx::new(-s, -s);
    vec![
        (-24, p),
        (-20, m),
        (-16, p),
        (-12, m),
        (-8, m),
        (-4, p),
        (4, m),
        (8, m),
        (12, p),
        (16, p),
        (20, p),
        (24, p),
    ]
}

/// The frequency-domain long training sequence `L_{−26..26}` (±1, 0 at DC).
pub fn long_sequence() -> [i32; 53] {
    [
        1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1,
        1, //
        0, //
        1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1, -1, 1, -1, 1, -1, 1, 1, 1, 1,
    ]
}

/// Time-domain scaling: the IFFT's 1/N is rescaled by √N so that 52 unit
/// subcarriers give unit average sample power (Parseval).
pub const TIME_SCALE: f64 = 8.0;

fn time_symbol_from_bins(bins: &[Cplx<f64>; FFT_LEN]) -> Vec<Cplx<f64>> {
    ifft(bins)
        .iter()
        .map(|v| Cplx::new(v.re * TIME_SCALE, v.im * TIME_SCALE))
        .collect()
}

/// The 64-sample IDFT of the short sequence (16-periodic in time).
pub fn short_symbol_64() -> Vec<Cplx<f64>> {
    let mut bins = [Cplx::<f64>::ZERO; FFT_LEN];
    for (k, v) in short_sequence() {
        bins[subcarrier_to_bin(k)] = v;
    }
    time_symbol_from_bins(&bins)
}

/// The 64-sample long training symbol.
pub fn long_symbol_64() -> Vec<Cplx<f64>> {
    let mut bins = [Cplx::<f64>::ZERO; FFT_LEN];
    let l = long_sequence();
    for (idx, k) in (-26..=26).enumerate() {
        if k != 0 {
            bins[subcarrier_to_bin(k)] = Cplx::new(l[idx] as f64, 0.0);
        }
    }
    time_symbol_from_bins(&bins)
}

/// The complete 160-sample short training field.
pub fn short_training_field() -> Vec<Cplx<f64>> {
    let sym = short_symbol_64();
    (0..SHORT_LEN).map(|n| sym[n % FFT_LEN]).collect()
}

/// The complete 160-sample long training field (32-sample cyclic prefix
/// followed by two repetitions of the long symbol).
pub fn long_training_field() -> Vec<Cplx<f64>> {
    let sym = long_symbol_64();
    let mut out = Vec::with_capacity(LONG_LEN);
    out.extend_from_slice(&sym[32..]);
    out.extend_from_slice(&sym);
    out.extend_from_slice(&sym);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_field_is_16_periodic() {
        let s = short_training_field();
        assert_eq!(s.len(), SHORT_LEN);
        for n in 0..SHORT_LEN - SHORT_PERIOD {
            assert!(
                (s[n] - s[n + SHORT_PERIOD]).mag() < 1e-9,
                "period break at {n}"
            );
        }
    }

    #[test]
    fn long_field_repeats_the_symbol() {
        let l = long_training_field();
        let sym = long_symbol_64();
        assert_eq!(l.len(), LONG_LEN);
        assert_eq!(&l[32..96].len(), &64);
        for n in 0..64 {
            assert!((l[32 + n] - sym[n]).mag() < 1e-12);
            assert!((l[96 + n] - sym[n]).mag() < 1e-12);
        }
        // CP is the tail of the symbol.
        for n in 0..32 {
            assert!((l[n] - sym[32 + n]).mag() < 1e-12);
        }
    }

    #[test]
    fn long_sequence_has_52_active_carriers() {
        let l = long_sequence();
        assert_eq!(l.len(), 53);
        assert_eq!(l[26], 0); // DC
        assert_eq!(l.iter().filter(|&&v| v != 0).count(), 52);
        assert!(l.iter().all(|&v| v.abs() <= 1));
    }

    #[test]
    fn short_sequence_uses_every_fourth_carrier() {
        for (k, _) in short_sequence() {
            assert_eq!(k % 4, 0);
            assert!(k != 0);
        }
        assert_eq!(short_sequence().len(), 12);
    }

    #[test]
    fn preamble_power_is_comparable_to_unit_symbols() {
        // Average sample power of both fields should be near 1 (the data
        // symbols have unit average subcarrier energy on 52 carriers).
        let sp: f64 = short_training_field()
            .iter()
            .map(|v| v.sqmag())
            .sum::<f64>()
            / 160.0;
        let lp: f64 = long_training_field().iter().map(|v| v.sqmag()).sum::<f64>() / 160.0;
        assert!(sp > 0.3 && sp < 3.0, "short power {sp}");
        assert!(lp > 0.3 && lp < 3.0, "long power {lp}");
    }

    #[test]
    fn long_symbol_autocorrelation_is_sharp() {
        // The long symbol must give a distinct matched-filter peak.
        let sym = long_symbol_64();
        let peak: f64 = sym.iter().map(|v| v.sqmag()).sum();
        let mut max_off = 0.0f64;
        for lag in 1..32 {
            let mut acc = Cplx::<f64>::ZERO;
            for n in 0..64 - lag {
                acc += sym[n + lag] * sym[n].conj();
            }
            max_off = max_off.max(acc.mag());
        }
        assert!(peak > 3.0 * max_off, "peak {peak} vs sidelobe {max_off}");
    }
}
