//! Integration test of the Fig. 10 runtime-reconfiguration scenario driven
//! end to end with a real WLAN frame, plus tracker-in-the-loop rake
//! operation across consecutive slots.

use xpp_sdr::dsp::Cplx;
use xpp_sdr::ofdm;
use xpp_sdr::wcdma;

/// The complete Fig. 10 story against a real transmitted frame: search on
/// the array (through the resident down-sampler), detect the preamble,
/// swap 2a→2b, then FFT a data-symbol window on the resident configuration
/// and slice it through the demodulator.
#[test]
fn fig10_scenario_with_a_real_frame() {
    use ofdm::channel::WlanChannel;
    use ofdm::params::{rate, CP_LEN, SYMBOL_LEN};
    use ofdm::rx::OfdmReceiver;
    use ofdm::tx::Transmitter;
    use ofdm::xpp_map::{downsample2, ReconfigurableFrontend};
    use sdr_dsp::fft::Fft64Fixed;

    let r = rate(12).expect("standard rate");
    let bits: Vec<u8> = (0..96).map(|i| ((i * 3 + 1) % 2) as u8).collect();
    let frame = Transmitter::new(r).transmit(&bits);
    let rx20 = WlanChannel {
        leading_gap: 72,
        ..Default::default()
    }
    .run(&frame.samples);
    // 40 Msps ADC stream (sample-and-hold 2x).
    let mut rx40 = Vec::with_capacity(rx20.len() * 2);
    for s in &rx20 {
        rx40.push(*s);
        rx40.push(*s);
    }

    let mut fe = ReconfigurableFrontend::new(2).expect("frontend placement");
    let metric = fe.search(&rx40).expect("search runs");
    // The detector sees the down-sampled stream: verify the plateau appears
    // where the software receiver detects it on the equivalent stream.
    let ds = downsample2(&rx40);
    let sw_detect = OfdmReceiver::new(r).detect(&ds).expect("sw detect");
    let peak = *metric.iter().max().expect("nonempty");
    let hw_detect = metric
        .iter()
        .position(|&m| m > peak / 2)
        .expect("hw detect");
    assert!(
        hw_detect.abs_diff(sw_detect) <= 16,
        "hw {hw_detect} vs sw {sw_detect} detection mismatch"
    );

    // Swap to demodulation mode; the resident FFT must still be bit-exact.
    fe.switch_to_demodulation().expect("swap");
    let sync = OfdmReceiver::new(r);
    let coarse = sync.detect(&ds).expect("detect");
    let long_start = sync.fine_timing(&ds, coarse).expect("timing");
    let at = long_start + 2 * 64 + CP_LEN;
    let mut window = [Cplx::<i32>::ZERO; 64];
    window.copy_from_slice(&ds[at..at + 64]);
    let spectrum = fe.fft(&window).expect("resident FFT");
    assert_eq!(spectrum, Fft64Fixed::with_stage_shift(2).run(&window));

    // Demodulate the spectrum's data carriers through 2b with unit weights:
    // the slicer output must match the spectrum's signs.
    let carriers: Vec<Cplx<i32>> = ofdm::params::data_subcarriers()
        .iter()
        .map(|&k| spectrum[ofdm::params::subcarrier_to_bin(k)])
        .collect();
    let weights = vec![Cplx::new(512, 0); carriers.len()];
    let sliced = fe.demodulate(&carriers, &weights).expect("2b demodulates");
    for (k, (b0, b1)) in sliced.iter().enumerate() {
        assert_eq!(*b0, (carriers[k].re < 0) as u8);
        assert_eq!(*b1, (carriers[k].im < 0) as u8);
    }
    let _ = SYMBOL_LEN;
}

/// The path tracker keeps the rake locked across slots while the channel
/// delay drifts by one chip — decisions stay correct before and after the
/// slide.
#[test]
fn tracker_keeps_the_rake_locked_across_drift() {
    use wcdma::channel::{propagate, AdcConfig, CellLink, Path};
    use wcdma::rake::combiner::decide;
    use wcdma::rake::estimator::{estimate_channel, quantize_weights};
    use wcdma::rake::finger::finger;
    use wcdma::rake::searcher::{PathHit, PathSearcher};
    use wcdma::rake::tracker::PathTracker;
    use wcdma::tx::{CellConfig, CellTransmitter};

    let cfg = CellConfig::default();
    let code = wcdma::ScramblingCode::downlink(cfg.scrambling_code);
    let bits: Vec<u8> = (0..64).map(|i| ((i * 5 + 2) % 2) as u8).collect();

    let slot = |delay: usize, seed: u64| {
        let mut tx = CellTransmitter::new(cfg);
        let signal = tx.transmit(&bits);
        let link = CellLink::new(vec![Path::new(delay, Cplx::new(0.8, 0.2))]);
        propagate(&[(signal, link)], 0.03, seed, AdcConfig::default())
    };

    let mut tracker = PathTracker::new(
        &[PathHit {
            delay: 8,
            energy: 0,
        }],
        PathSearcher::default(),
    );

    // Slots 0-1 at delay 8; slots 2-4 at delay 9 (terminal motion). The
    // hysteresis (2 votes) means the tracker lags one slot behind a sudden
    // one-chip jump — decisions are checked whenever the tracked delay
    // matches the channel, and must be correct again after the slide.
    let mut checked = 0;
    for (i, delay) in [8usize, 8, 9, 9, 9].iter().enumerate() {
        let rx = slot(*delay, 100 + i as u64);
        tracker.update(&rx, &code);
        let tracked = tracker.delays()[0];
        if tracked == *delay {
            let h = estimate_channel(&rx, &code, tracked, 8);
            let w = quantize_weights(&[h])[0];
            let out = finger(&rx, &code, tracked, cfg.dpch.sf, cfg.dpch.code_index, w);
            let soft: Vec<Cplx<i64>> = out.iter().map(|s| s.widen()).collect();
            let decided = decide(&soft);
            assert_eq!(
                &decided[..bits.len()],
                &bits[..],
                "slot {i} at delay {delay}"
            );
            checked += 1;
        }
    }
    assert_eq!(tracker.delays(), vec![9], "tracker followed the drift");
    assert!(checked >= 3, "tracker locked for only {checked} of 5 slots");
}
