//! Golden-equivalence suite: the event-driven array scheduler must be
//! observably indistinguishable from the retained scan-the-world reference
//! stepper (`xpp-array` feature `reference`) on the paper's end-to-end
//! scenarios and on randomly generated netlists.
//!
//! Every scenario here is a closure that builds its arrays *inside* the
//! closure, so `with_reference_stepper` can latch the stepper choice at
//! construction time. The scenario returns every observable — drained
//! output streams, `ArrayStats`, `run_until_idle` cycle counts, per-config
//! fire totals — and the test asserts the two runs are identical.

use proptest::prelude::*;
use xpp_array::array::with_reference_stepper;
use xpp_array::{AluOp, Array, ArrayStats, CounterCfg, NetlistBuilder, UnaryOp, Word};
use xpp_sdr::dsp::Cplx;
use xpp_sdr::ofdm;
use xpp_sdr::wcdma;

fn values(words: Vec<Word>) -> Vec<i32> {
    words.iter().map(|w| w.value()).collect()
}

/// Runs `scenario` on the event-driven stepper and on the reference
/// stepper and asserts the full observable records match.
fn assert_steppers_agree<T: PartialEq + std::fmt::Debug>(scenario: impl Fn() -> T) {
    let fast = scenario();
    let slow = with_reference_stepper(&scenario);
    assert_eq!(fast, slow, "event-driven and reference steppers diverged");
}

/// Everything observable about a multi-phase array run.
#[derive(Debug, PartialEq)]
struct Record {
    streams: Vec<(String, Vec<i32>)>,
    idle_cycles: Vec<u64>,
    fires: Vec<(u32, u64)>,
    stats: ArrayStats,
}

impl Record {
    fn new() -> Self {
        Record {
            streams: Vec::new(),
            idle_cycles: Vec::new(),
            fires: Vec::new(),
            stats: ArrayStats::default(),
        }
    }

    fn drain(&mut self, array: &mut Array, cfg: xpp_array::ConfigId, port: &str) -> Vec<i32> {
        let v = values(array.drain_output(cfg, port).unwrap());
        self.streams.push((port.to_string(), v.clone()));
        v
    }

    fn finish(mut self, array: &Array) -> Self {
        self.fires = array
            .fires_by_config()
            .into_iter()
            .map(|(c, n)| (c.index(), n))
            .collect();
        self.stats = array.stats();
        self
    }
}

/// The paper's headline W-CDMA scenario on the array: soft handover
/// received through the Fig. 5 descrambler, then the descrambled chips
/// time-multiplexed over six virtual fingers through the Fig. 6 despreader
/// — both configurations resident on one array.
fn rake_soft_handover_scenario() -> Record {
    use wcdma::channel::{propagate, AdcConfig, CellLink, Path};
    use wcdma::tx::{CellConfig, CellTransmitter};
    use wcdma::xpp_map::{descrambler_netlist, despreader_multiplexed_netlist};

    const FINGERS: usize = 6;
    const SF: usize = 16;
    const CHIPS: usize = 192;

    // Three cells in the active set, each under its own scrambling code
    // and multipath channel.
    let bits: Vec<u8> = (0..32).map(|i| ((i * 7 + 1) % 2) as u8).collect();
    let mut signals = Vec::new();
    for cell in 0..3u32 {
        let cfg = CellConfig {
            scrambling_code: cell * 16,
            ..Default::default()
        };
        let mut tx = CellTransmitter::new(cfg);
        let gain = 0.30 - 0.05 * cell as f64;
        let link = CellLink::new(vec![
            Path::new(2 + 5 * cell as usize, Cplx::new(gain, 0.1)),
            Path::new(6 + 5 * cell as usize, Cplx::new(-0.08, gain * 0.6)),
        ]);
        signals.push((tx.transmit(&bits), link));
    }
    let rx = propagate(&signals, 0.05, 42, AdcConfig::default());
    let code = wcdma::ScramblingCode::downlink(0);

    let mut rec = Record::new();
    let mut array = Array::xpp64a();
    let desc = array.configure(&descrambler_netlist()).unwrap();
    let dsp = array
        .configure(&despreader_multiplexed_netlist(FINGERS, SF))
        .unwrap();

    // Phase 1: descramble the serving cell on the array.
    array
        .push_input(desc, "i_in", rx[..CHIPS].iter().map(|c| Word::new(c.re)))
        .unwrap();
    array
        .push_input(desc, "q_in", rx[..CHIPS].iter().map(|c| Word::new(c.im)))
        .unwrap();
    let cbits: Vec<(u8, u8)> = (0..CHIPS).map(|i| code.chip_bits(i)).collect();
    array
        .push_input(desc, "ci", cbits.iter().map(|b| Word::new(b.0 as i32)))
        .unwrap();
    array
        .push_input(desc, "cq", cbits.iter().map(|b| Word::new(b.1 as i32)))
        .unwrap();
    rec.idle_cycles.push(array.run_until_idle(100_000).unwrap());
    let di = rec.drain(&mut array, desc, "i_out");
    let dq = rec.drain(&mut array, desc, "q_out");

    // Phase 2: time-multiplex the descrambled chips over six virtual
    // fingers (finger f tracks a path offset of f chips) and despread.
    let symbols = di.len() / SF;
    let ovsf = wcdma::ovsf::ovsf(SF, 1);
    let mux = |src: &[i32]| -> Vec<Word> {
        let mut toks = Vec::new();
        for k in 0..symbols * SF {
            for f in 0..FINGERS {
                toks.push(Word::new(src[(k + f) % src.len()]));
            }
        }
        toks
    };
    array.push_input(dsp, "i_in", mux(&di)).unwrap();
    array.push_input(dsp, "q_in", mux(&dq)).unwrap();
    let code_toks =
        (0..symbols * SF).flat_map(|k| std::iter::repeat_n(Word::new(ovsf[k % SF]), FINGERS));
    array.push_input(dsp, "code", code_toks).unwrap();
    rec.idle_cycles.push(array.run_until_idle(200_000).unwrap());
    rec.drain(&mut array, dsp, "i_out");
    rec.drain(&mut array, dsp, "q_out");

    rec.finish(&array)
}

/// The Fig. 10 802.11a reconfiguration scenario on the array: the resident
/// front end (down-sampler + FFT) plus the preamble detector (2a), search
/// over a real transmitted frame, then the runtime swap 2a→2b and
/// demodulation through 2b — with the configuration-bus load overlapping
/// FFT compute.
fn wlan_reconfiguration_scenario() -> Record {
    use ofdm::channel::WlanChannel;
    use ofdm::params::rate;
    use ofdm::tx::Transmitter;
    use ofdm::xpp_map::{demodulator_netlist, frontend_netlist, preamble_detector_netlist};

    let r = rate(12).unwrap();
    let bits: Vec<u8> = (0..48).map(|i| ((i * 3 + 1) % 2) as u8).collect();
    let frame = Transmitter::new(r).transmit(&bits);
    let rx20 = WlanChannel {
        leading_gap: 16,
        ..Default::default()
    }
    .run(&frame.samples);
    // 40 Msps ADC stream (sample-and-hold 2x), trimmed to keep the
    // reference stepper fast.
    let mut rx40 = Vec::with_capacity(1024);
    for s in rx20.iter().take(512) {
        rx40.push(*s);
        rx40.push(*s);
    }

    let mut rec = Record::new();
    let mut array = Array::xpp64a();
    let c1 = array.configure(&frontend_netlist(2)).unwrap();
    let c2a = array.configure(&preamble_detector_netlist()).unwrap();

    // Search mode: down-sample the ADC stream, correlate through 2a.
    array
        .push_input(c1, "i_in", rx40.iter().map(|c| Word::new(c.re)))
        .unwrap();
    array
        .push_input(c1, "q_in", rx40.iter().map(|c| Word::new(c.im)))
        .unwrap();
    rec.idle_cycles.push(array.run_until_idle(100_000).unwrap());
    let ds_i = rec.drain(&mut array, c1, "ds_i");
    let ds_q = rec.drain(&mut array, c1, "ds_q");
    array
        .push_input(c2a, "i_in", ds_i.iter().map(|&v| Word::new(v)))
        .unwrap();
    array
        .push_input(c2a, "q_in", ds_q.iter().map(|&v| Word::new(v)))
        .unwrap();
    rec.idle_cycles.push(array.run_until_idle(100_000).unwrap());
    rec.drain(&mut array, c2a, "metric");

    // Runtime swap 2a -> 2b. Push an FFT window before the new
    // configuration finishes loading, so the configuration-bus transfer
    // overlaps resident compute (the scenario of Fig. 10).
    array.unload(c2a).unwrap();
    let c2b = array.configure(&demodulator_netlist()).unwrap();
    array
        .push_input(c1, "fft_i_in", ds_i[..64].iter().map(|&v| Word::new(v)))
        .unwrap();
    array
        .push_input(c1, "fft_q_in", ds_q[..64].iter().map(|&v| Word::new(v)))
        .unwrap();
    rec.idle_cycles.push(array.run_until_idle(100_000).unwrap());
    assert!(array.is_running(c2b));
    let fi = rec.drain(&mut array, c1, "fft_i_out");
    let fq = rec.drain(&mut array, c1, "fft_q_out");

    // Demodulate the spectrum through 2b with unit weights.
    array
        .push_input(c2b, "i_in", fi.iter().map(|&v| Word::new(v)))
        .unwrap();
    array
        .push_input(c2b, "q_in", fq.iter().map(|&v| Word::new(v)))
        .unwrap();
    array
        .push_input(c2b, "wi", std::iter::repeat_n(Word::new(512), fi.len()))
        .unwrap();
    array
        .push_input(c2b, "wq", std::iter::repeat_n(Word::ZERO, fi.len()))
        .unwrap();
    rec.idle_cycles.push(array.run_until_idle(100_000).unwrap());
    rec.drain(&mut array, c2b, "b0");
    rec.drain(&mut array, c2b, "b1");

    rec.finish(&array)
}

#[test]
fn rake_soft_handover_is_stepper_invariant() {
    assert_steppers_agree(rake_soft_handover_scenario);
}

#[test]
fn wlan_reconfiguration_is_stepper_invariant() {
    assert_steppers_agree(wlan_reconfiguration_scenario);
}

/// One randomly chosen dataflow stage of a generated netlist.
#[derive(Debug, Clone, Copy)]
enum Stage {
    Unary(usize, i32),
    /// `y = op(x, x delayed by n)` — fan-out plus a FIFO delay line.
    Combine(usize, usize),
    /// A counter-driven gate that drops a fraction of the stream.
    Gate(u64),
    /// Accumulate-and-dump over counter periods.
    Dump(u64),
    /// Counter-driven swap against a constant, recombined by an ALU.
    Swap(u64, i32),
}

fn arb_stage() -> impl Strategy<Value = Stage> {
    prop_oneof![
        ((0usize..5), (-500i32..500)).prop_map(|(o, k)| Stage::Unary(o, k)),
        ((0usize..4), (1usize..4)).prop_map(|(o, d)| Stage::Combine(o, d)),
        (2u64..6).prop_map(Stage::Gate),
        (2u64..7).prop_map(Stage::Dump),
        ((2u64..5), (-100i32..100)).prop_map(|(m, k)| Stage::Swap(m, k)),
    ]
}

fn unary_op(idx: usize, k: i32) -> UnaryOp {
    match idx {
        0 => UnaryOp::AddK(Word::new(k)),
        1 => UnaryOp::ShrK((k.unsigned_abs()) % 8),
        2 => UnaryOp::Neg,
        3 => UnaryOp::Abs,
        _ => UnaryOp::XorK(Word::new(k & 0xFFF)),
    }
}

fn alu_op(idx: usize) -> AluOp {
    [AluOp::Add, AluOp::Sub, AluOp::Min, AluOp::Max][idx % 4]
}

/// Builds the generated pipeline and runs the stream through it, returning
/// the full observable record.
fn random_netlist_scenario(capacity: usize, stages: &[Stage], inputs: &[i32]) -> Record {
    let mut nl = NetlistBuilder::new("generated");
    nl.set_default_capacity(capacity);
    let mut x = nl.input("x");
    for s in stages {
        x = match *s {
            Stage::Unary(o, k) => nl.unary(unary_op(o, k), x),
            Stage::Combine(o, d) => {
                let delayed = nl.delay(x, d);
                nl.alu(alu_op(o), x, delayed)
            }
            Stage::Gate(m) => {
                let ctr = nl.counter(CounterCfg::modulo(m));
                let pass = nl.unary(UnaryOp::GeK(Word::new(1)), ctr.value);
                let ev = nl.to_event(pass);
                nl.gate(ev, x)
            }
            Stage::Dump(m) => {
                let ctr = nl.counter(CounterCfg::modulo(m));
                let last = nl.unary(UnaryOp::EqK(Word::new(m as i32 - 1)), ctr.value);
                let ev = nl.to_event(last);
                nl.accum_dump(x, ev)
            }
            Stage::Swap(m, k) => {
                let ctr = nl.counter(CounterCfg::modulo(m));
                let hi = nl.unary(UnaryOp::GeK(Word::new(1)), ctr.value);
                let ev = nl.to_event(hi);
                let c = nl.constant(Word::new(k));
                let (a, b) = nl.swap(ev, x, c);
                nl.alu(AluOp::Add, a, b)
            }
        };
    }
    nl.output("y", x);
    let netlist = nl.build().unwrap();

    let mut rec = Record::new();
    let mut array = Array::xpp64a();
    let cfg = array.configure(&netlist).unwrap();
    array
        .push_input(cfg, "x", inputs.iter().map(|&v| Word::new(v)))
        .unwrap();
    rec.idle_cycles.push(array.run_until_idle(200_000).unwrap());
    rec.drain(&mut array, cfg, "y");
    rec.finish(&array)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any generated netlist — mixed unary/ALU/FIFO/counter/gate/
    /// accumulator/swap stages at any channel capacity — produces
    /// identical outputs, identical stats, and identical idle-detection
    /// cycle counts on both steppers.
    #[test]
    fn random_netlists_are_stepper_invariant(
        capacity in 1usize..5,
        stages in proptest::collection::vec(arb_stage(), 1..6),
        inputs in proptest::collection::vec(-5000i32..5000, 1..48),
    ) {
        let fast = random_netlist_scenario(capacity, &stages, &inputs);
        let slow = with_reference_stepper(|| {
            random_netlist_scenario(capacity, &stages, &inputs)
        });
        prop_assert_eq!(fast, slow);
    }
}
