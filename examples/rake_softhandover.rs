//! The paper's headline W-CDMA scenario: soft handover with six base
//! stations, three multipaths each — 18 rake fingers combined into one
//! decision stream.
//!
//! Run with: `cargo run --release --example rake_softhandover`

use xpp_sdr::dsp::metrics::BerCounter;
use xpp_sdr::dsp::Cplx;
use xpp_sdr::wcdma::channel::{propagate, AdcConfig, CellLink, Path};
use xpp_sdr::wcdma::rake::searcher::PathSearcher;
use xpp_sdr::wcdma::rake::{RakeConfig, RakeReceiver};
use xpp_sdr::wcdma::scenario::FingerScenario;
use xpp_sdr::wcdma::tx::{CellConfig, CellTransmitter};

fn main() {
    let scenario = FingerScenario::new(6, 3, 1);
    println!(
        "scenario: {} base stations x {} multipaths = {} fingers -> {:.2} MHz physical finger",
        scenario.basestations,
        scenario.multipaths,
        scenario.fingers(),
        scenario.required_mhz()
    );

    // Six cells, each transmitting the same DPCH bits (soft handover) under
    // its own scrambling code, through its own 3-path channel.
    let bits: Vec<u8> = (0..256).map(|i| ((i * 7 + i / 5) % 2) as u8).collect();
    let mut signals = Vec::new();
    let mut codes = Vec::new();
    for cell in 0..6u32 {
        let cfg = CellConfig {
            scrambling_code: cell * 16,
            ..Default::default()
        };
        let mut tx = CellTransmitter::new(cfg);
        let gain = 0.30 - 0.02 * cell as f64;
        let link = CellLink::new(vec![
            Path::new(2 + 7 * cell as usize, Cplx::new(gain, 0.1)),
            Path::new(5 + 7 * cell as usize, Cplx::new(-0.08, gain * 0.7)),
            Path::new(9 + 7 * cell as usize, Cplx::new(gain * 0.4, -gain * 0.4)),
        ]);
        signals.push((tx.transmit(&bits), link));
        codes.push(cfg.scrambling_code);
    }
    let rx = propagate(&signals, 0.08, 42, AdcConfig::default());
    println!("received {} chip-rate samples (12-bit I/Q)", rx.len());

    let rake = RakeReceiver::new(
        codes,
        RakeConfig {
            searcher: PathSearcher {
                window: 64,
                max_paths: 3,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let out = rake.receive(&rx);

    println!("allocated {} fingers:", out.fingers.len());
    for f in &out.fingers {
        println!(
            "  cell {} delay {:>2} energy {:>12} weight {}",
            f.cell, f.delay, f.energy, f.weight
        );
    }
    let n = bits.len().min(out.bits.len());
    let mut ber = BerCounter::new();
    ber.update(&bits[..n], &out.bits[..n]);
    println!(
        "decoded {} bits, BER = {:.5} ({} errors)",
        n,
        ber.ber(),
        ber.errors()
    );
}
