//! Shard-gang golden equivalence: batching re-orders *dispatch*, never
//! *results*. A mixed rake + OFDM workload run on a 4-array gang must
//! produce exactly the per-session outcomes of the single-array seed
//! configuration — same terminal state for every session id, compared
//! order-independently (batching legitimately changes completion order).
//!
//! This is the engine-layer counterpart of the bit-exact golden tests in
//! `xpp_array`: each session's signal path runs on *some* array with the
//! same kernels, seeds and data either way, so its payload verdict cannot
//! depend on which gang member it landed on.

use sdr_engine::{Engine, EngineConfig, Session, SessionState};

/// Mixed workload: even ids W-CDMA rake terminals, odd ids 802.11a OFDM
/// terminals, seeds derived from the id both ways.
fn mixed_sessions(n: u64) -> Vec<Session> {
    (0..n)
        .map(|id| {
            if id % 2 == 0 {
                Session::wcdma(id, 1_000 + id)
            } else {
                Session::ofdm(id, 2_000 + id)
            }
        })
        .collect()
}

/// Runs the workload and returns `(id, terminal state)` sorted by id.
fn outcomes(arrays_per_shard: usize, n: u64) -> Vec<(u64, SessionState)> {
    let mut engine = Engine::new(EngineConfig {
        shards: 1,
        arrays_per_shard,
        queue_depth: 64,
        cache_capacity: 8,
        ..EngineConfig::default()
    });
    let summary = engine.run(mixed_sessions(n));
    assert_eq!(
        summary.completed.len() as u64,
        n,
        "gang={arrays_per_shard}: sessions lost"
    );
    let mut out: Vec<(u64, SessionState)> = summary
        .completed
        .iter()
        .map(|s| (s.id(), s.state().clone()))
        .collect();
    out.sort_by_key(|(id, _)| *id);
    out
}

#[test]
fn gang_of_four_matches_single_array_outcomes() {
    let n = 48;
    let seed = outcomes(1, n);
    let gang = outcomes(4, n);
    assert_eq!(seed.len(), gang.len());
    for ((seed_id, seed_state), (gang_id, gang_state)) in seed.iter().zip(gang.iter()) {
        assert_eq!(seed_id, gang_id);
        assert_eq!(
            seed_state, gang_state,
            "session {seed_id}: gang dispatch changed the outcome"
        );
    }
    // The workload is fault-free and feasible: every session finishes.
    assert!(
        seed.iter().all(|(_, s)| *s == SessionState::Done),
        "baseline must complete cleanly for the comparison to mean much"
    );
}
