//! The golden OFDM receiver (paper Fig. 8): framing and synchronisation,
//! FFT, equalisation, demodulation, Viterbi decoding and descrambling.
//!
//! The word-level kernels shared with the array configurations are defined
//! here with bit-exact integer semantics:
//!
//! * [`autocorr_metric`] — the lag-16 preamble-detection correlator of
//!   configuration 2a (the short training symbol repeats every 16 samples),
//! * the FFT-64 is [`sdr_dsp::fft::Fft64Fixed`], the golden model of the
//!   Fig. 9 netlist.
//!
//! Channel estimation, equalisation and soft demapping run in floating
//! point (DSP tasks in the paper's partitioning).

use crate::convolutional::{depuncture, viterbi_decode};
use crate::interleaver::deinterleave;
use crate::modulation::demap_soft;
use crate::params::{data_subcarriers, subcarrier_to_bin, RateParams, CP_LEN, FFT_LEN, SYMBOL_LEN};
use crate::preamble::long_symbol_64;
use crate::scrambler::Scrambler;
use crate::tx::{DEFAULT_SCRAMBLER_SEED, SERVICE_BITS, TAIL_BITS};
use sdr_dsp::fft::Fft64Fixed;
use sdr_dsp::filter::cross_correlate;
use sdr_dsp::Cplx;
use std::error::Error as StdError;
use std::fmt;

/// Autocorrelation lag: the short-training-symbol period.
pub const AUTOCORR_LAG: usize = 16;

/// Autocorrelation window length.
pub const AUTOCORR_WINDOW: usize = 32;

/// Truncating shift applied to each correlation product (keeps the running
/// sums inside 24-bit words on the array).
pub const AUTOCORR_PROD_SHIFT: u32 = 6;

/// The lag-16 sliding autocorrelation magnitude metric, bit-exact with the
/// configuration-2a netlist:
///
/// ```text
/// p[n]  = (x[n]·conj(x[n−16])) with each product >> 6 (truncating)
/// s[n]  = s[n−1] + p[n] − p[n−32]
/// m[n]  = |Re s[n]| + |Im s[n]|
/// ```
///
/// `m[n]` plateaus while the 16-periodic short preamble passes.
pub fn autocorr_metric(samples: &[Cplx<i32>]) -> Vec<i32> {
    let n = samples.len();
    let mut metric = vec![0i32; n];
    let mut window = std::collections::VecDeque::with_capacity(AUTOCORR_WINDOW + 1);
    let mut s = Cplx::<i32>::ZERO;
    for i in 0..n {
        let p = if i >= AUTOCORR_LAG {
            let a = samples[i];
            let b = samples[i - AUTOCORR_LAG];
            Cplx::new(
                ((a.re * b.re) >> AUTOCORR_PROD_SHIFT) + ((a.im * b.im) >> AUTOCORR_PROD_SHIFT),
                ((a.im * b.re) >> AUTOCORR_PROD_SHIFT) - ((a.re * b.im) >> AUTOCORR_PROD_SHIFT),
            )
        } else {
            Cplx::<i32>::ZERO
        };
        window.push_back(p);
        s += p;
        if window.len() > AUTOCORR_WINDOW {
            s -= window.pop_front().expect("window non-empty");
        }
        metric[i] = s.re.abs() + s.im.abs();
    }
    metric
}

/// Receiver failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RxError {
    /// No short-preamble plateau found.
    NoPreamble,
    /// The long-preamble matched filter produced no consistent peak pair.
    TimingFailed,
    /// The SIGNAL field failed to decode (bad parity / unknown RATE).
    SignalDecodeFailed,
    /// The buffer ends before the expected number of data symbols.
    BufferTooShort {
        /// Samples required.
        needed: usize,
        /// Samples available.
        available: usize,
    },
}

impl fmt::Display for RxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RxError::NoPreamble => write!(f, "no preamble detected"),
            RxError::TimingFailed => write!(f, "long-preamble timing failed"),
            RxError::SignalDecodeFailed => write!(f, "SIGNAL field did not decode"),
            RxError::BufferTooShort { needed, available } => {
                write!(
                    f,
                    "buffer too short: need {needed} samples, have {available}"
                )
            }
        }
    }
}

impl StdError for RxError {}

/// Decoded frame plus synchronisation diagnostics.
#[derive(Debug, Clone)]
pub struct RxOutput {
    /// The decoded PSDU bits.
    pub bits: Vec<u8>,
    /// Sample index where the long training field's first symbol begins.
    pub long_start: usize,
    /// Sample index of the first data symbol.
    pub data_start: usize,
    /// Per-subcarrier channel estimate (FFT-bin order).
    pub channel: Vec<Cplx<f64>>,
}

/// The golden receiver.
#[derive(Debug, Clone, Copy)]
pub struct OfdmReceiver {
    rate: RateParams,
    scrambler_seed: u32,
    llr_scale: f64,
    fft_stage_shift: u32,
    leading_symbols: usize,
}

impl OfdmReceiver {
    /// Creates a receiver for a known rate point (the SIGNAL field is not
    /// modelled; see `tx`).
    ///
    /// The FFT per-stage scaling defaults to `>>1`, not the paper's `>>2`:
    /// with 10-bit inputs, three `>>2` stages leave "4-bit precision" (the
    /// paper's own words) — enough for BPSK/QPSK but *below the
    /// constellation spacing* of 16/64-QAM, so the 36–54 Mbit/s rates
    /// cannot work. The 24-bit datapath has ample headroom for `>>1`.
    /// The `fig9` experiment quantifies this trade-off.
    pub fn new(rate: RateParams) -> Self {
        OfdmReceiver {
            rate,
            scrambler_seed: DEFAULT_SCRAMBLER_SEED,
            llr_scale: 64.0,
            fft_stage_shift: 1,
            leading_symbols: 0,
        }
    }

    /// Skips `n` OFDM symbols between the long preamble and the data field
    /// (1 when the frame carries a SIGNAL symbol).
    pub fn with_leading_symbols(mut self, n: usize) -> Self {
        self.leading_symbols = n;
        self
    }

    /// Overrides the scrambler seed (must match the transmitter).
    pub fn with_scrambler_seed(mut self, seed: u32) -> Self {
        self.scrambler_seed = seed;
        self
    }

    /// Overrides the FFT per-stage scaling shift (the paper uses 2).
    pub fn with_fft_stage_shift(mut self, shift: u32) -> Self {
        self.fft_stage_shift = shift;
        self
    }

    /// The configured rate.
    pub fn rate(&self) -> RateParams {
        self.rate
    }

    /// Detects the frame via the short-preamble plateau; returns the coarse
    /// start index.
    pub fn detect(&self, samples: &[Cplx<i32>]) -> Option<usize> {
        let m = autocorr_metric(samples);
        let peak = *m.iter().max()?;
        if peak <= 0 {
            return None;
        }
        let threshold = peak / 2;
        // First index that starts a sustained run above threshold.
        let run = 8;
        let mut count = 0;
        for (i, &v) in m.iter().enumerate() {
            if v > threshold {
                count += 1;
                if count == run {
                    return Some(i + 1 - run);
                }
            } else {
                count = 0;
            }
        }
        None
    }

    /// Fine timing: matched filter against the long training symbol; returns
    /// the start of the long field's *first* 64-sample symbol.
    pub fn fine_timing(&self, samples: &[Cplx<i32>], coarse: usize) -> Option<usize> {
        let template: Vec<Cplx<i32>> = long_symbol_64()
            .iter()
            .map(|v| Cplx::new((v.re * 64.0).round() as i32, (v.im * 64.0).round() as i32))
            .collect();
        let lo = coarse;
        let hi = (coarse + 450).min(samples.len());
        if hi <= lo + FFT_LEN {
            return None;
        }
        let corr = cross_correlate(&samples[lo..hi], &template, 8);
        let (peak_at, _) = corr.iter().enumerate().max_by_key(|(_, v)| v.sqmag())?;
        // The long field has two repetitions 64 samples apart; figure out
        // whether the strongest peak is the first or the second.
        let mag = |k: i64| -> i64 {
            if k >= 0 && (k as usize) < corr.len() {
                corr[k as usize].sqmag()
            } else {
                0
            }
        };
        let before = mag(peak_at as i64 - 64);
        let after = mag(peak_at as i64 + 64);
        if after >= before {
            Some(lo + peak_at) // peak is L1
        } else {
            Some(lo + peak_at - 64) // peak is L2
        }
    }

    /// Estimates the channel from the two long training symbols starting at
    /// `long_start`.
    pub fn estimate_channel(&self, samples: &[Cplx<i32>], long_start: usize) -> Vec<Cplx<f64>> {
        let fft = Fft64Fixed::with_stage_shift(self.fft_stage_shift);
        let grab = |at: usize| -> [Cplx<i32>; 64] {
            let mut buf = [Cplx::<i32>::ZERO; 64];
            buf.copy_from_slice(&samples[at..at + 64]);
            buf
        };
        let y1 = fft.run(&grab(long_start));
        let y2 = fft.run(&grab(long_start + 64));
        let l = crate::preamble::long_sequence();
        let mut h = vec![Cplx::<f64>::ZERO; FFT_LEN];
        for (idx, k) in (-26i32..=26).enumerate() {
            if k == 0 {
                continue;
            }
            let bin = subcarrier_to_bin(k);
            let avg = Cplx::new(
                (y1[bin].re + y2[bin].re) as f64 / 2.0,
                (y1[bin].im + y2[bin].im) as f64 / 2.0,
            );
            // L is ±1, so dividing by it is multiplying.
            h[bin] = avg.scale(l[idx] as f64);
        }
        h
    }

    /// Full receive chain over a sample buffer carrying `psdu_bits` data
    /// bits.
    ///
    /// # Errors
    ///
    /// Returns an [`RxError`] if detection, timing or buffer length fails.
    pub fn receive(&self, samples: &[Cplx<i32>], psdu_bits: usize) -> Result<RxOutput, RxError> {
        let coarse = self.detect(samples).ok_or(RxError::NoPreamble)?;
        let long_start = self
            .fine_timing(samples, coarse)
            .ok_or(RxError::TimingFailed)?;
        let data_start = long_start + 2 * FFT_LEN + self.leading_symbols * SYMBOL_LEN;

        let ndbps = self.rate.data_bits_per_symbol();
        let n_sym = (SERVICE_BITS + psdu_bits + TAIL_BITS).div_ceil(ndbps);
        let needed = data_start + n_sym * SYMBOL_LEN;
        if samples.len() < needed {
            return Err(RxError::BufferTooShort {
                needed,
                available: samples.len(),
            });
        }

        let channel = self.estimate_channel(samples, long_start);
        let fft = Fft64Fixed::with_stage_shift(self.fft_stage_shift);
        let carriers = data_subcarriers();
        let mut llrs: Vec<i32> = Vec::with_capacity(n_sym * self.rate.coded_bits_per_symbol());
        for s in 0..n_sym {
            let at = data_start + s * SYMBOL_LEN + CP_LEN;
            let mut buf = [Cplx::<i32>::ZERO; 64];
            buf.copy_from_slice(&samples[at..at + FFT_LEN]);
            let spectrum = fft.run(&buf);
            let mut sym_llrs = Vec::with_capacity(self.rate.coded_bits_per_symbol());
            for &k in &carriers {
                let bin = subcarrier_to_bin(k);
                let h = channel[bin];
                let y = spectrum[bin].to_f64();
                let eq = if h.sqmag() > 1e-9 {
                    y.div(h)
                } else {
                    Cplx::<f64>::ZERO
                };
                sym_llrs.extend(demap_soft(eq, self.rate.modulation, self.llr_scale));
            }
            llrs.extend(deinterleave(&sym_llrs, self.rate.modulation));
        }

        let decoded = viterbi_decode(&depuncture(&llrs, self.rate.code_rate));
        let mut descrambled = decoded;
        Scrambler::new(self.scrambler_seed).scramble_in_place(&mut descrambled);
        let bits = descrambled[SERVICE_BITS..SERVICE_BITS + psdu_bits].to_vec();
        Ok(RxOutput {
            bits,
            long_start,
            data_start,
            channel,
        })
    }
}

/// Rate-agnostic reception: decodes the SIGNAL field first (§17.3.4), then
/// configures the data decode from the announced RATE and LENGTH.
///
/// # Errors
///
/// Propagates synchronisation errors; returns
/// [`RxError::SignalDecodeFailed`] if the SIGNAL parity/RATE check fails.
pub fn receive_auto(samples: &[Cplx<i32>]) -> Result<(RxOutput, RateParams), RxError> {
    // Use any rate for the sync stages; they do not depend on it.
    let probe = OfdmReceiver::new(crate::params::RATES[0]);
    let coarse = probe.detect(samples).ok_or(RxError::NoPreamble)?;
    let long_start = probe
        .fine_timing(samples, coarse)
        .ok_or(RxError::TimingFailed)?;
    let channel = probe.estimate_channel(samples, long_start);

    // Equalise the SIGNAL symbol (the first after the long training field).
    let at = long_start + 2 * FFT_LEN + CP_LEN;
    if samples.len() < at + FFT_LEN {
        return Err(RxError::BufferTooShort {
            needed: at + FFT_LEN,
            available: samples.len(),
        });
    }
    let fft = Fft64Fixed::with_stage_shift(1);
    let mut buf = [Cplx::<i32>::ZERO; 64];
    buf.copy_from_slice(&samples[at..at + FFT_LEN]);
    let spectrum = fft.run(&buf);
    let eq: Vec<Cplx<f64>> = data_subcarriers()
        .iter()
        .map(|&k| {
            let bin = subcarrier_to_bin(k);
            let h = channel[bin];
            if h.sqmag() > 1e-9 {
                spectrum[bin].to_f64().div(h)
            } else {
                Cplx::<f64>::ZERO
            }
        })
        .collect();
    let (r, octets) = crate::signal_field::decode_signal(&eq).ok_or(RxError::SignalDecodeFailed)?;

    let receiver = OfdmReceiver::new(r).with_leading_symbols(1);
    let out = receiver.receive(samples, octets * 8)?;
    Ok((out, r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::WlanChannel;
    use crate::params::{rate, RATES};
    use crate::tx::Transmitter;
    use sdr_dsp::metrics::BerCounter;

    fn psdu(n: usize) -> Vec<u8> {
        (0..n).map(|i| ((i * 29 + i / 7 + 1) % 2) as u8).collect()
    }

    #[test]
    fn autocorr_plateaus_on_short_preamble() {
        let tx = Transmitter::new(rate(6).unwrap());
        let frame = tx.transmit(&psdu(48));
        let rx = WlanChannel::default().run(&frame.samples);
        let m = autocorr_metric(&rx);
        let peak = *m.iter().max().unwrap();
        // Plateau within the short preamble region (gap = 100).
        let inside = m[140..240].iter().filter(|&&v| v > peak / 2).count();
        assert!(inside > 80, "plateau too short: {inside}");
        // Quiet before the frame.
        assert!(m[..80].iter().all(|&v| v < peak / 4));
    }

    #[test]
    fn detect_and_fine_timing_locate_the_frame() {
        let tx = Transmitter::new(rate(12).unwrap());
        let frame = tx.transmit(&psdu(96));
        let ch = WlanChannel {
            leading_gap: 137,
            ..Default::default()
        };
        let rx_samples = ch.run(&frame.samples);
        let receiver = OfdmReceiver::new(rate(12).unwrap());
        let coarse = receiver.detect(&rx_samples).unwrap();
        assert!((137..137 + 160).contains(&coarse), "coarse {coarse}");
        let long_start = receiver.fine_timing(&rx_samples, coarse).unwrap();
        // Long field starts at gap+160; its first symbol at gap+160+32.
        assert_eq!(long_start, 137 + 160 + 32);
    }

    #[test]
    fn clean_channel_roundtrip_all_rates() {
        for r in RATES {
            let bits = psdu(3 * r.data_bits_per_symbol());
            let frame = Transmitter::new(r).transmit(&bits);
            let rx = WlanChannel::default().run(&frame.samples);
            let out = OfdmReceiver::new(r).receive(&rx, bits.len()).unwrap();
            assert_eq!(out.bits, bits, "rate {} Mb/s", r.mbps);
        }
    }

    #[test]
    fn multipath_within_guard_interval_is_equalised() {
        let r = rate(24).unwrap();
        let bits = psdu(4 * r.data_bits_per_symbol());
        let frame = Transmitter::new(r).transmit(&bits);
        let ch = WlanChannel::default().with_echo(5, Cplx::new(0.4, -0.3));
        let rx = ch.run(&frame.samples);
        let out = OfdmReceiver::new(r).receive(&rx, bits.len()).unwrap();
        assert_eq!(out.bits, bits);
    }

    #[test]
    fn moderate_noise_is_corrected_by_coding() {
        let r = rate(6).unwrap();
        let bits = psdu(6 * r.data_bits_per_symbol());
        let frame = Transmitter::new(r).transmit(&bits);
        let ch = WlanChannel::awgn(0.18, 7);
        let rx = ch.run(&frame.samples);
        let out = OfdmReceiver::new(r).receive(&rx, bits.len()).unwrap();
        let mut ber = BerCounter::new();
        ber.update(&bits, &out.bits);
        assert_eq!(ber.errors(), 0, "ber {}", ber.ber());
    }

    #[test]
    fn rate_54_needs_higher_snr_than_rate_6() {
        let sigma = 0.12;
        let mut bers = Vec::new();
        for mbps in [6u32, 54] {
            let r = rate(mbps).unwrap();
            let bits = psdu(6 * r.data_bits_per_symbol());
            let frame = Transmitter::new(r).transmit(&bits);
            let rx = WlanChannel::awgn(sigma, 11).run(&frame.samples);
            let out = OfdmReceiver::new(r).receive(&rx, bits.len()).unwrap();
            let mut ber = BerCounter::new();
            ber.update(&bits, &out.bits);
            bers.push(ber.ber());
        }
        assert!(bers[1] > bers[0], "54 Mb/s should degrade first: {bers:?}");
    }

    #[test]
    fn missing_preamble_is_reported() {
        let receiver = OfdmReceiver::new(rate(6).unwrap());
        let silence = vec![Cplx::new(0, 0); 2000];
        match receiver.receive(&silence, 24) {
            Err(RxError::NoPreamble) => {}
            other => panic!("expected NoPreamble, got {other:?}"),
        }
    }

    #[test]
    fn signal_field_roundtrip_all_rates() {
        for r in RATES {
            let bits = psdu(2 * r.data_bits_per_symbol() / 8 * 8);
            let frame = Transmitter::new(r).with_signal_field().transmit(&bits);
            let rx = WlanChannel::default().run(&frame.samples);
            let (out, detected) = receive_auto(&rx).unwrap();
            assert_eq!(detected.mbps, r.mbps, "rate detection");
            assert_eq!(out.bits, bits, "payload at {} Mb/s", r.mbps);
        }
    }

    #[test]
    fn signal_field_survives_noise_and_multipath() {
        let r = rate(24).unwrap();
        let bits = psdu(768);
        let frame = Transmitter::new(r).with_signal_field().transmit(&bits);
        let ch = WlanChannel::awgn(0.08, 3).with_echo(4, Cplx::new(0.3, -0.2));
        let rx = ch.run(&frame.samples);
        let (out, detected) = receive_auto(&rx).unwrap();
        assert_eq!(detected.mbps, 24);
        assert_eq!(out.bits, bits);
    }

    #[test]
    fn garbage_signal_symbol_is_rejected() {
        // A frame WITHOUT a SIGNAL field: receive_auto tries to parse the
        // first data symbol as SIGNAL and must fail cleanly (or, rarely,
        // mis-parse — the parity makes that a ~2^-13 event, deterministic
        // here).
        let r = rate(12).unwrap();
        let bits = psdu(192);
        let frame = Transmitter::new(r).transmit(&bits);
        let rx = WlanChannel::default().run(&frame.samples);
        match receive_auto(&rx) {
            Err(RxError::SignalDecodeFailed) => {}
            Err(other) => panic!("unexpected error {other:?}"),
            Ok((out, detected)) => {
                // If it parsed, the decode must at least disagree with the
                // actual payload (sanity guard against silent success).
                assert!(detected.mbps != r.mbps || out.bits != bits);
            }
        }
    }

    #[test]
    fn truncated_buffer_is_reported() {
        let r = rate(6).unwrap();
        let bits = psdu(8 * r.data_bits_per_symbol());
        let frame = Transmitter::new(r).transmit(&bits);
        let rx = WlanChannel::default().run(&frame.samples);
        let cut = &rx[..rx.len() - 300];
        match OfdmReceiver::new(r).receive(cut, bits.len()) {
            Err(RxError::BufferTooShort { .. }) => {}
            other => panic!("expected BufferTooShort, got {other:?}"),
        }
    }
}
