//! Regression test: `Array::unload` invoked while the configuration is
//! still streaming over the configuration bus (mid-load).
//!
//! The configuration manager may cancel a prefetch before it finishes
//! loading (e.g. a placement-pressure eviction), so an aborted load must
//! release every channel and object it allocated, drop out of the load
//! queue, and leave the array statistics consistent with never having run.

use xpp_array::{AluOp, Array, Netlist, NetlistBuilder, Word};

fn pipeline(name: &str, stages: usize) -> Netlist {
    let mut nl = NetlistBuilder::new(name);
    let mut x = nl.input("in");
    for _ in 0..stages {
        let one = nl.constant(Word::new(1));
        x = nl.alu(AluOp::Add, x, one);
    }
    nl.output("out", x);
    nl.build().unwrap()
}

#[test]
fn unload_mid_load_releases_everything() {
    let mut array = Array::xpp64a();
    let baseline = array.free_resources();
    let nl = pipeline("victim", 6);

    let cfg = array.configure(&nl).unwrap();
    // Step partway into the load window, strictly short of completion.
    for _ in 0..4 {
        array.step();
    }
    assert!(
        !array.is_running(cfg),
        "test must unload during the loading window"
    );

    array.unload(cfg).unwrap();

    assert_eq!(
        array.free_resources(),
        baseline,
        "mid-load unload leaked placement resources"
    );
    assert_eq!(array.config_fire_count(cfg), 0, "aborted load never fired");
    assert!(array.config_name(cfg).is_err(), "config still resident");

    // The freed slots must be reusable: a fresh configure + run behaves
    // exactly like on a pristine array.
    let cfg2 = array.configure(&pipeline("follow-on", 6)).unwrap();
    array.push_input(cfg2, "in", [Word::new(10)]).unwrap();
    array.run_until_idle(10_000).unwrap();
    assert_eq!(
        array.drain_output(cfg2, "out").unwrap(),
        vec![Word::new(16)]
    );
    array.unload(cfg2).unwrap();
    assert_eq!(array.free_resources(), baseline);
}

#[test]
fn unload_mid_load_removes_from_load_queue() {
    // Two queued configurations: aborting the one at the front of the
    // serial bus must let the second one finish loading normally.
    let mut array = Array::xpp64a();
    let first = array.configure(&pipeline("first", 6)).unwrap();
    let second = array.configure(&pipeline("second", 2)).unwrap();

    array.step();
    assert!(!array.is_running(first));
    array.unload(first).unwrap();

    // The bus must now serve the second configuration to completion.
    array.run_until_idle(10_000).unwrap();
    assert!(array.is_running(second), "bus stalled on aborted load");

    array.push_input(second, "in", [Word::new(5)]).unwrap();
    array.run_until_idle(10_000).unwrap();
    assert_eq!(
        array.drain_output(second, "out").unwrap(),
        vec![Word::new(7)]
    );
}

#[test]
fn unload_mid_load_matches_reference_stepper() {
    // The event-driven scheduler keeps stale ready-list entries after an
    // unload (documented as safe); prove the observable behaviour agrees
    // with the scan-the-world reference stepper bit for bit.
    let run = || {
        let mut array = Array::xpp64a();
        let doomed = array.configure(&pipeline("doomed", 5)).unwrap();
        for _ in 0..7 {
            array.step();
        }
        array.unload(doomed).unwrap();
        let cfg = array.configure(&pipeline("kept", 3)).unwrap();
        array.push_input(cfg, "in", (0..8).map(Word::new)).unwrap();
        array.run_until_idle(10_000).unwrap();
        let out = array.drain_output(cfg, "out").unwrap();
        (out, array.stats())
    };
    let event_driven = run();
    let reference = xpp_array::array::with_reference_stepper(run);
    assert_eq!(event_driven.0, reference.0, "outputs diverged");
    assert_eq!(event_driven.1, reference.1, "stats diverged");
}

#[test]
fn repeated_abort_has_no_drift() {
    // Abort the same load many times: free resources and stats counters
    // must not drift (no per-abort leak of channels, objects or cycles).
    let mut array = Array::xpp64a();
    let baseline = array.free_resources();
    let nl = pipeline("churn", 4);
    for _ in 0..50 {
        let cfg = array.configure(&nl).unwrap();
        array.step();
        array.unload(cfg).unwrap();
        assert_eq!(array.free_resources(), baseline);
    }
}
