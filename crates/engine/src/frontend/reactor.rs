//! The bounded completion reactor: the bridge between session futures
//! and the [`ShardPool`].
//!
//! Submission goes through [`CompletionReactor::submit`], which either
//! hands back a [`StepFuture`] (the session is in flight; `.await` it)
//! or returns the session unharmed when the shard queue is full — the
//! `WouldBlock` backpressure signal. **No thread ever blocks on a full
//! queue**; the caller parks the session instead.
//!
//! Completions are harvested on the driver thread by
//! [`CompletionReactor::drain`] (non-blocking) or
//! [`CompletionReactor::wait_drain`] (bounded block): each stepped
//! session is deposited into its per-session slot and the owning task's
//! waker fires, making the task runnable again. In-flight sessions are
//! bounded by the pool's total queue capacity, so slot storage never
//! grows with the number of terminals.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};
use std::time::Duration;

use crate::metrics::Metrics;
use crate::pool::ShardPool;
use crate::session::Session;

/// Per-in-flight-session mailbox: the stepped session once the pool
/// returns it, and the waker of the task awaiting it.
#[derive(Default)]
struct StepSlot {
    session: Option<Session>,
    waker: Option<Waker>,
}

/// Bounded completion reactor over a [`ShardPool`].
///
/// Single-threaded by construction (interior mutability is `RefCell`/
/// `Cell`): futures and the driver share it via `Rc`, and only waker
/// *handles* — not this type — ever cross threads.
pub struct CompletionReactor {
    pool: ShardPool,
    slots: RefCell<HashMap<u64, StepSlot>>,
    in_flight: Cell<usize>,
    capacity: usize,
}

impl CompletionReactor {
    /// Wraps a pool; in-flight sessions are capped at the pool's total
    /// queue capacity.
    pub fn new(pool: ShardPool) -> Self {
        let capacity = pool.queue_capacity();
        CompletionReactor {
            pool,
            slots: RefCell::new(HashMap::new()),
            in_flight: Cell::new(0),
            capacity,
        }
    }

    /// The wrapped pool (pause/resume, metrics, depth probes).
    pub fn pool(&self) -> &ShardPool {
        &self.pool
    }

    /// Sessions currently in flight (submitted, not yet drained).
    pub fn in_flight(&self) -> usize {
        self.in_flight.get()
    }

    /// Submits a session for one pipeline step. `Ok` yields a
    /// [`StepFuture`] resolving to the stepped session; `Err` hands the
    /// session back when the reactor is at capacity or the target shard
    /// queue is full (backpressure — park it, don't block).
    // The Err side carries the rejected `Session` back to the caller by
    // design (same contract as `ShardPool::submit`).
    #[allow(clippy::result_large_err)]
    pub fn submit(rc: &Rc<Self>, session: Session) -> Result<StepFuture, Session> {
        if rc.in_flight.get() >= rc.capacity {
            // Reactor-level bound: counts as a rejected submission even
            // though the pool was never consulted.
            Metrics::incr(&rc.pool.metrics().jobs_rejected);
            return Err(session);
        }
        let id = session.id();
        match rc.pool.submit(session) {
            Ok(_) => {
                rc.in_flight.set(rc.in_flight.get() + 1);
                rc.slots.borrow_mut().insert(id, StepSlot::default());
                Ok(StepFuture {
                    reactor: Rc::clone(rc),
                    id,
                })
            }
            Err(err) => Err(err.into_session()),
        }
    }

    /// Drains every already-finished session from the pool without
    /// blocking; returns how many were deposited (each deposit wakes the
    /// awaiting task).
    pub fn drain(&self) -> usize {
        let mut n = 0;
        while let Some(session) = self.pool.try_recv() {
            self.deposit(session);
            n += 1;
        }
        n
    }

    /// Blocks up to `timeout` for one completion, then drains the rest
    /// non-blockingly. Returns the number deposited (0 on timeout).
    pub fn wait_drain(&self, timeout: Duration) -> usize {
        match self.pool.recv_timeout(timeout) {
            Some(session) => {
                self.deposit(session);
                1 + self.drain()
            }
            None => 0,
        }
    }

    fn deposit(&self, session: Session) {
        self.in_flight.set(self.in_flight.get().saturating_sub(1));
        let mut slots = self.slots.borrow_mut();
        if let Some(slot) = slots.get_mut(&session.id()) {
            slot.session = Some(session);
            if let Some(waker) = slot.waker.take() {
                waker.wake();
            }
        }
        // A completion nobody awaits (task dropped) is discarded.
    }

    /// Consumes the reactor, returning the pool for shutdown. Callable
    /// only once every `StepFuture` clone of the `Rc` is gone.
    pub fn into_pool(self) -> ShardPool {
        self.pool
    }
}

/// Future for one in-flight pipeline step; resolves to the stepped
/// [`Session`] once the completion reactor deposits it.
pub struct StepFuture {
    reactor: Rc<CompletionReactor>,
    id: u64,
}

impl Future for StepFuture {
    type Output = Session;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Session> {
        let mut slots = self.reactor.slots.borrow_mut();
        let Some(slot) = slots.get_mut(&self.id) else {
            // Slot vanished (future polled after resolution) — stay
            // pending; the executor only polls on a wake.
            return Poll::Pending;
        };
        match slot.session.take() {
            Some(session) => {
                slots.remove(&self.id);
                Poll::Ready(session)
            }
            None => {
                slot.waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

impl Drop for StepFuture {
    fn drop(&mut self) {
        // A cancelled await must not leak its mailbox. The in-flight
        // count still decrements when the pool completion drains.
        self.reactor.slots.borrow_mut().remove(&self.id);
    }
}
