//! Shared workload generators for the report binary and the Criterion
//! benches: deterministic pseudo-random streams sized like the paper's
//! workloads.

use sdr_dsp::Cplx;

/// Deterministic 12-bit I/Q chip stream (the rake kernels' input width).
pub fn chips_12bit(n: usize, seed: u32) -> Vec<Cplx<i32>> {
    lcg_stream(n, seed, 4096)
}

/// Deterministic 10-bit I/Q sample stream (the OFDM front end's width).
pub fn samples_10bit(n: usize, seed: u32) -> Vec<Cplx<i32>> {
    lcg_stream(n, seed, 1024)
}

fn lcg_stream(n: usize, seed: u32, span: u32) -> Vec<Cplx<i32>> {
    let mut s = seed.wrapping_mul(2654435761).wrapping_add(12345);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        s = s.wrapping_mul(1664525).wrapping_add(1013904223);
        let re = ((s >> 8) % span) as i32 - span as i32 / 2;
        s = s.wrapping_mul(1664525).wrapping_add(1013904223);
        let im = ((s >> 8) % span) as i32 - span as i32 / 2;
        out.push(Cplx::new(re, im));
    }
    out
}

/// A deterministic bit pattern.
pub fn bits(n: usize, seed: u32) -> Vec<u8> {
    (0..n)
        .map(|i| (((i as u32).wrapping_mul(2654435761).wrapping_add(seed) >> 7) & 1) as u8)
        .collect()
}

/// One 64-sample FFT frame at 10-bit scale.
pub fn fft_frame(seed: u32) -> [Cplx<i32>; 64] {
    let v = samples_10bit(64, seed);
    let mut buf = [Cplx::<i32>::ZERO; 64];
    buf.copy_from_slice(&v);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_in_range() {
        let a = chips_12bit(100, 7);
        let b = chips_12bit(100, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|c| c.re.abs() <= 2048 && c.im.abs() <= 2048));
        let s = samples_10bit(50, 1);
        assert!(s.iter().all(|c| c.re.abs() <= 512));
    }

    #[test]
    fn bits_are_binary() {
        assert!(bits(64, 3).iter().all(|&b| b <= 1));
        assert_ne!(bits(64, 3), bits(64, 4));
    }
}
