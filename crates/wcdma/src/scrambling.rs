//! 3GPP TS 25.213 §5.2.2 downlink scrambling codes.
//!
//! Downlink scrambling codes are complex Gold sequences built from two
//! degree-18 m-sequences:
//!
//! * `x`: feedback `x(i+18) = x(i+7) + x(i) mod 2`, seeded `1,0,…,0`,
//! * `y`: feedback `y(i+18) = y(i+10) + y(i+7) + y(i+5) + y(i) mod 2`,
//!   seeded all ones.
//!
//! Code number `n` selects a phase shift of `x`:
//! `zₙ(i) = x((i+n) mod L) ⊕ y(i)` with `L = 2¹⁸ − 1`, and the complex chip is
//! `Sₙ(i) = m(zₙ(i)) + j·m(zₙ((i+131072) mod L))` with `m: 0 → +1, 1 → −1`.
//! One radio frame uses the first 38400 chips.
//!
//! In the paper's partitioning (Fig. 4) this generator is *dedicated
//! hardware* that hands the array a 2-bit code representation per chip; the
//! array's descrambler (Fig. 5) expands those bits to `±1±j`.

use sdr_dsp::Cplx;

/// Length of one m-sequence period, `2¹⁸ − 1`.
pub const SEQUENCE_LEN: usize = (1 << 18) - 1;

/// Chips per 10 ms radio frame.
pub const FRAME_CHIPS: usize = 38_400;

/// Offset between the I and Q branches of the complex code.
const Q_BRANCH_OFFSET: usize = 131_072;

fn m_sequences() -> (Vec<u8>, Vec<u8>) {
    let mut x = vec![0u8; SEQUENCE_LEN];
    let mut y = vec![0u8; SEQUENCE_LEN];
    // Seeds: x = 1,0,...,0 ; y = all ones (registers hold x(i)..x(i+17)).
    let mut xr = [0u8; 18];
    xr[0] = 1;
    let mut yr = [1u8; 18];
    for i in 0..SEQUENCE_LEN {
        x[i] = xr[0];
        y[i] = yr[0];
        let xf = (xr[7] + xr[0]) & 1;
        let yf = (yr[10] + yr[7] + yr[5] + yr[0]) & 1;
        xr.copy_within(1..18, 0);
        xr[17] = xf;
        yr.copy_within(1..18, 0);
        yr[17] = yf;
    }
    (x, y)
}

/// A downlink scrambling-code generator for one cell.
///
/// The generator precomputes one frame (38400 chips) of the complex code; the
/// per-chip interface hands out either the complex `±1±j` value or the 2-bit
/// representation the dedicated hardware would stream to the array.
///
/// # Example
///
/// ```
/// use sdr_wcdma::scrambling::ScramblingCode;
///
/// let code = ScramblingCode::downlink(0);
/// let chip = code.chip(0);
/// assert!(chip.re.abs() == 1 && chip.im.abs() == 1);
/// // The 2-bit representation encodes the same chip.
/// let (ci, cq) = code.chip_bits(0);
/// assert_eq!(chip.re, 1 - 2 * ci as i32);
/// assert_eq!(chip.im, 1 - 2 * cq as i32);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScramblingCode {
    number: u32,
    /// I-branch bits (0/1) for one frame.
    i_bits: Vec<u8>,
    /// Q-branch bits (0/1) for one frame.
    q_bits: Vec<u8>,
}

impl ScramblingCode {
    /// Generates the downlink code with the given code number.
    ///
    /// # Panics
    ///
    /// Panics if `number` is not less than `2¹⁸ − 1`.
    pub fn downlink(number: u32) -> Self {
        assert!(
            (number as usize) < SEQUENCE_LEN,
            "scrambling code number out of range"
        );
        let (x, y) = m_sequences();
        let n = number as usize;
        let mut i_bits = Vec::with_capacity(FRAME_CHIPS);
        let mut q_bits = Vec::with_capacity(FRAME_CHIPS);
        for i in 0..FRAME_CHIPS {
            let zi = x[(i + n) % SEQUENCE_LEN] ^ y[i];
            let iq = (i + Q_BRANCH_OFFSET) % SEQUENCE_LEN;
            let zq = x[(iq + n) % SEQUENCE_LEN] ^ y[iq];
            i_bits.push(zi);
            q_bits.push(zq);
        }
        ScramblingCode {
            number,
            i_bits,
            q_bits,
        }
    }

    /// The code number.
    pub fn number(&self) -> u32 {
        self.number
    }

    /// The complex code chip (`±1 ± j`) at frame position `i` (wraps at the
    /// frame boundary, matching the per-frame restart of the standard).
    #[inline]
    pub fn chip(&self, i: usize) -> Cplx<i32> {
        let i = i % FRAME_CHIPS;
        Cplx::new(1 - 2 * self.i_bits[i] as i32, 1 - 2 * self.q_bits[i] as i32)
    }

    /// The 2-bit representation `(cᵢ, c_q)` of a chip — the stream the
    /// dedicated-hardware generator feeds the array in Fig. 5.
    #[inline]
    pub fn chip_bits(&self, i: usize) -> (u8, u8) {
        let i = i % FRAME_CHIPS;
        (self.i_bits[i], self.q_bits[i])
    }

    /// A full frame of complex chips.
    pub fn frame(&self) -> Vec<Cplx<i32>> {
        (0..FRAME_CHIPS).map(|i| self.chip(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m_sequences_have_maximal_balance() {
        let (x, y) = m_sequences();
        // An m-sequence of period 2^18-1 has 2^17 ones and 2^17-1 zeros.
        let ones_x: usize = x.iter().map(|&b| b as usize).sum();
        let ones_y: usize = y.iter().map(|&b| b as usize).sum();
        assert_eq!(ones_x, 1 << 17);
        assert_eq!(ones_y, 1 << 17);
    }

    #[test]
    fn x_sequence_satisfies_recurrence() {
        let (x, _) = m_sequences();
        for i in 0..1000 {
            assert_eq!(x[i + 18], x[i + 7] ^ x[i]);
        }
    }

    #[test]
    fn y_sequence_satisfies_recurrence() {
        let (_, y) = m_sequences();
        for i in 0..1000 {
            assert_eq!(y[i + 18], y[i + 10] ^ y[i + 7] ^ y[i + 5] ^ y[i]);
        }
    }

    #[test]
    fn chips_are_qpsk_valued() {
        let code = ScramblingCode::downlink(17);
        for i in 0..500 {
            let c = code.chip(i);
            assert_eq!(c.re.abs(), 1);
            assert_eq!(c.im.abs(), 1);
        }
    }

    #[test]
    fn different_code_numbers_decorrelate() {
        let a = ScramblingCode::downlink(0);
        let b = ScramblingCode::downlink(16); // different primary code
        let n = 4096;
        let corr: i64 = (0..n)
            .map(|i| {
                let ca = a.chip(i);
                let cb = b.chip(i);
                (ca * cb.conj()).re as i64
            })
            .sum();
        // Cross-correlation of distinct Gold phases is far below n·|chip|²=2n.
        assert!(
            corr.abs() < n as i64 / 4,
            "cross-correlation too high: {corr}"
        );
    }

    #[test]
    fn autocorrelation_peaks_at_zero_lag() {
        let code = ScramblingCode::downlink(3);
        let n = 2048;
        let zero: i64 = (0..n)
            .map(|i| (code.chip(i) * code.chip(i).conj()).re as i64)
            .sum();
        assert_eq!(zero, 2 * n as i64);
        let lag: i64 = (0..n)
            .map(|i| (code.chip(i) * code.chip(i + 7).conj()).re as i64)
            .sum();
        assert!(lag.abs() < n as i64 / 4);
    }

    #[test]
    fn chip_bits_match_complex_chip() {
        let code = ScramblingCode::downlink(5);
        for i in 0..200 {
            let (ci, cq) = code.chip_bits(i);
            let c = code.chip(i);
            assert_eq!(c.re, 1 - 2 * ci as i32);
            assert_eq!(c.im, 1 - 2 * cq as i32);
        }
    }

    #[test]
    fn frame_wraps() {
        let code = ScramblingCode::downlink(9);
        assert_eq!(code.chip(0), code.chip(FRAME_CHIPS));
        assert_eq!(code.frame().len(), FRAME_CHIPS);
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range_code_number() {
        ScramblingCode::downlink(1 << 18);
    }
}
