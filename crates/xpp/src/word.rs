//! The 24-bit machine word of the XPP ALU processing elements.

use std::fmt;

/// Number of bits in an XPP data word.
pub const WORD_BITS: u32 = 24;

/// Largest positive [`Word`] value, `2²³ − 1`.
pub const WORD_MAX: i32 = (1 << (WORD_BITS - 1)) - 1;

/// Smallest (most negative) [`Word`] value, `−2²³`.
pub const WORD_MIN: i32 = -(1 << (WORD_BITS - 1));

/// A 24-bit two's-complement data word.
///
/// All arithmetic wraps modulo 2²⁴, exactly as the ALU-PAE datapath does;
/// multiplication is performed at 48-bit precision with a configurable slice
/// extracted ([`Word::mul_shr`]). The inner value is always stored
/// sign-extended to `i32`.
///
/// # Example
///
/// ```
/// use xpp_array::Word;
///
/// let a = Word::new(0x7F_FFFF);          // WORD_MAX
/// assert_eq!(a.wrapping_add(Word::new(1)), Word::new(-0x80_0000)); // wraps
/// assert_eq!(Word::new(3).mul_shr(Word::new(-4), 1).value(), -6);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Word(i32);

impl Word {
    /// Zero.
    pub const ZERO: Word = Word(0);
    /// One.
    pub const ONE: Word = Word(1);

    /// Creates a word, wrapping the value into 24-bit two's complement.
    #[inline]
    pub const fn new(v: i32) -> Self {
        Word((v << 8) >> 8)
    }

    /// Creates a word from an `i64`, wrapping into 24 bits.
    #[inline]
    pub const fn from_i64(v: i64) -> Self {
        Word(((v as i32) << 8) >> 8)
    }

    /// The sign-extended value.
    #[inline]
    pub const fn value(self) -> i32 {
        self.0
    }

    /// The raw 24-bit pattern in the low bits of a `u32`.
    #[inline]
    pub const fn bits(self) -> u32 {
        (self.0 as u32) & 0x00FF_FFFF
    }

    /// Wrapping addition.
    #[inline]
    pub fn wrapping_add(self, rhs: Word) -> Word {
        Word::from_i64(self.0 as i64 + rhs.0 as i64)
    }

    /// Wrapping subtraction.
    #[inline]
    pub fn wrapping_sub(self, rhs: Word) -> Word {
        Word::from_i64(self.0 as i64 - rhs.0 as i64)
    }

    /// Wrapping negation.
    #[inline]
    pub fn wrapping_neg(self) -> Word {
        Word::from_i64(-(self.0 as i64))
    }

    /// 24×24→48-bit multiply, arithmetic right shift by `shift`, then wrap to
    /// 24 bits — the ALU-PAE multiplier with its shift-extract stage.
    #[inline]
    pub fn mul_shr(self, rhs: Word, shift: u32) -> Word {
        Word::from_i64((self.0 as i64 * rhs.0 as i64) >> shift)
    }

    /// Bitwise AND.
    #[inline]
    pub fn and(self, rhs: Word) -> Word {
        Word::new(self.0 & rhs.0)
    }

    /// Bitwise OR.
    #[inline]
    pub fn or(self, rhs: Word) -> Word {
        Word::new(self.0 | rhs.0)
    }

    /// Bitwise XOR.
    #[inline]
    pub fn xor(self, rhs: Word) -> Word {
        Word::new(self.0 ^ rhs.0)
    }

    /// Logical-ish left shift (wraps into 24 bits).
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn shl(self, shift: u32) -> Word {
        Word::from_i64((self.0 as i64) << (shift.min(48)))
    }

    /// Arithmetic right shift.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn shr(self, shift: u32) -> Word {
        Word::new(self.0 >> shift.min(31))
    }

    /// True if the word is non-zero (the data→event conversion rule).
    #[inline]
    pub fn truthy(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Debug for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Word({})", self.0)
    }
}

impl fmt::Display for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::LowerHex for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.bits(), f)
    }
}

impl fmt::UpperHex for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.bits(), f)
    }
}

impl fmt::Binary for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.bits(), f)
    }
}

impl From<i32> for Word {
    fn from(v: i32) -> Self {
        Word::new(v)
    }
}

impl From<Word> for i32 {
    fn from(w: Word) -> i32 {
        w.value()
    }
}

/// A 1-bit event packet (the XPP event network carries these alongside data).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, PartialOrd, Ord)]
pub struct Event(pub bool);

impl Event {
    /// The `true` event.
    pub const SET: Event = Event(true);
    /// The `false` event.
    pub const CLEAR: Event = Event(false);
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", if self.0 { 1 } else { 0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_wraps_to_24_bits() {
        assert_eq!(Word::new(WORD_MAX).value(), WORD_MAX);
        assert_eq!(Word::new(WORD_MAX + 1).value(), WORD_MIN);
        assert_eq!(Word::new(-1).value(), -1);
        assert_eq!(Word::new(0x0100_0000).value(), 0);
        assert_eq!(Word::new(0x0100_0001).value(), 1);
    }

    #[test]
    fn bits_masks_high_byte() {
        assert_eq!(Word::new(-1).bits(), 0x00FF_FFFF);
        assert_eq!(Word::new(5).bits(), 5);
    }

    #[test]
    fn wrapping_arithmetic() {
        let max = Word::new(WORD_MAX);
        assert_eq!(max.wrapping_add(Word::ONE).value(), WORD_MIN);
        assert_eq!(
            Word::new(WORD_MIN).wrapping_sub(Word::ONE).value(),
            WORD_MAX
        );
        assert_eq!(Word::new(WORD_MIN).wrapping_neg().value(), WORD_MIN); // -(-2^23) wraps
        assert_eq!(Word::new(5).wrapping_neg().value(), -5);
    }

    #[test]
    fn mul_shr_extracts_slices() {
        let a = Word::new(1 << 12);
        assert_eq!(a.mul_shr(a, 0).value(), 0); // 2^24 wraps to 0
        assert_eq!(a.mul_shr(a, 12).value(), 1 << 12);
        assert_eq!(a.mul_shr(a, 24).value(), 1);
        assert_eq!(Word::new(-3).mul_shr(Word::new(7), 0).value(), -21);
    }

    #[test]
    fn shifts() {
        assert_eq!(Word::new(-8).shr(2).value(), -2);
        assert_eq!(Word::new(3).shl(2).value(), 12);
        assert_eq!(Word::new(1).shl(23).value(), WORD_MIN);
        assert_eq!(Word::new(1).shl(24).value(), 0);
    }

    #[test]
    fn logic_ops() {
        assert_eq!(Word::new(0b1100).and(Word::new(0b1010)).value(), 0b1000);
        assert_eq!(Word::new(0b1100).or(Word::new(0b1010)).value(), 0b1110);
        assert_eq!(Word::new(0b1100).xor(Word::new(0b1010)).value(), 0b0110);
    }

    #[test]
    fn truthiness() {
        assert!(Word::new(-1).truthy());
        assert!(!Word::ZERO.truthy());
    }

    #[test]
    fn conversions_and_formatting() {
        let w: Word = 42.into();
        let v: i32 = w.into();
        assert_eq!(v, 42);
        assert_eq!(format!("{w}"), "42");
        assert_eq!(format!("{w:x}"), "2a");
        assert_eq!(format!("{:x}", Word::new(-1)), "ffffff");
        assert_eq!(format!("{}", Event::SET), "1");
    }

    #[test]
    fn from_i64_wraps() {
        assert_eq!(Word::from_i64(1i64 << 40).value(), 0);
        assert_eq!(Word::from_i64((1i64 << 40) + 7).value(), 7);
        assert_eq!(Word::from_i64(-1).value(), -1);
    }
}
