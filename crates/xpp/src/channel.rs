//! Token channels: the handshake-protocol communication resources.
//!
//! Every channel is point-to-point (one producer port, one consumer port;
//! fan-out is modelled as several channels from the same port). Objects make
//! fire/stall decisions against the channel state *at the start of the
//! cycle*; consumptions and productions are staged and committed at the end
//! of the cycle, which makes the simulation order-independent and reproduces
//! the hardware's synchronous token movement.

use std::collections::VecDeque;

/// A bounded token channel.
///
/// Capacity 2 (one output register plus one forward register) sustains one
/// token per cycle through a pipeline; capacity 1 halves throughput — this is
/// the `ablation_channel_capacity` experiment.
#[derive(Debug, Clone)]
pub struct Channel<T> {
    queue: VecDeque<T>,
    capacity: usize,
    staged_pop: bool,
    staged_push: Option<T>,
}

impl<T: Copy> Channel<T> {
    /// Creates a channel with the given capacity and initial tokens.
    ///
    /// # Panics
    ///
    /// Panics if the initial tokens exceed the capacity or capacity is 0
    /// (the netlist builder validates this earlier).
    pub fn new(capacity: usize, initial: impl IntoIterator<Item = T>) -> Self {
        assert!(capacity >= 1, "channel capacity must be at least 1");
        let queue: VecDeque<T> = initial.into_iter().collect();
        assert!(queue.len() <= capacity, "initial tokens exceed capacity");
        Channel {
            queue,
            capacity,
            staged_pop: false,
            staged_push: None,
        }
    }

    /// True if a token is available for consumption this cycle.
    #[inline]
    pub fn has_token(&self) -> bool {
        !self.queue.is_empty()
    }

    /// The token that would be consumed this cycle.
    #[inline]
    pub fn peek(&self) -> Option<T> {
        self.queue.front().copied()
    }

    /// Stages consumption of the front token and returns it.
    ///
    /// # Panics
    ///
    /// Panics if the channel is empty or was already consumed this cycle.
    #[inline]
    pub fn consume(&mut self) -> T {
        assert!(!self.staged_pop, "channel consumed twice in one cycle");
        self.staged_pop = true;
        *self.queue.front().expect("consume from empty channel")
    }

    /// True if the producer may emit into this channel this cycle
    /// (conservative: based on start-of-cycle occupancy).
    #[inline]
    pub fn has_space(&self) -> bool {
        self.staged_push.is_none() && self.queue.len() < self.capacity
    }

    /// Stages production of a token.
    ///
    /// # Panics
    ///
    /// Panics if the channel has no space or was already produced into.
    #[inline]
    pub fn produce(&mut self, value: T) {
        assert!(self.has_space(), "produce into full channel");
        self.staged_push = Some(value);
    }

    /// Commits staged operations at the end of a cycle. Returns `true` if
    /// any token moved (used for idle detection).
    pub fn commit(&mut self) -> bool {
        let mut moved = false;
        if self.staged_pop {
            self.queue.pop_front();
            self.staged_pop = false;
            moved = true;
        }
        if let Some(v) = self.staged_push.take() {
            debug_assert!(self.queue.len() < self.capacity);
            self.queue.push_back(v);
            moved = true;
        }
        moved
    }

    /// Current occupancy (committed tokens).
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True if no committed tokens are present.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produce_consume_commit_cycle() {
        let mut ch: Channel<i32> = Channel::new(2, []);
        assert!(!ch.has_token());
        assert!(ch.has_space());
        ch.produce(5);
        // Not visible until commit.
        assert!(!ch.has_token());
        assert!(ch.commit());
        assert!(ch.has_token());
        assert_eq!(ch.peek(), Some(5));
        assert_eq!(ch.consume(), 5);
        // Still visible until commit.
        assert!(ch.has_token());
        assert!(ch.commit());
        assert!(!ch.has_token());
    }

    #[test]
    fn same_cycle_produce_and_consume_pipeline() {
        // Steady state: one token in flight, both producer and consumer act
        // every cycle — sustained throughput 1/cycle at capacity 2.
        let mut ch: Channel<i32> = Channel::new(2, [1]);
        for n in 2..10 {
            assert!(ch.has_token());
            assert!(ch.has_space());
            let got = ch.consume();
            assert_eq!(got, n - 1);
            ch.produce(n);
            ch.commit();
            assert_eq!(ch.len(), 1);
        }
    }

    #[test]
    fn capacity_one_blocks_simultaneous_use() {
        let mut ch: Channel<i32> = Channel::new(1, [1]);
        assert!(ch.has_token());
        assert!(!ch.has_space()); // full: producer must stall
        ch.consume();
        ch.commit();
        assert!(ch.has_space());
    }

    #[test]
    fn initial_tokens_present() {
        let ch: Channel<i32> = Channel::new(2, [7, 8]);
        assert_eq!(ch.len(), 2);
        assert_eq!(ch.peek(), Some(7));
    }

    #[test]
    #[should_panic]
    fn overfull_initial_rejected() {
        let _ = Channel::new(1, [1, 2]);
    }

    #[test]
    #[should_panic]
    fn double_consume_panics() {
        let mut ch: Channel<i32> = Channel::new(2, [1]);
        ch.consume();
        ch.consume();
    }

    #[test]
    #[should_panic]
    fn produce_into_full_panics() {
        let mut ch: Channel<i32> = Channel::new(1, [1]);
        ch.produce(2);
    }

    #[test]
    fn commit_reports_movement() {
        let mut ch: Channel<i32> = Channel::new(2, []);
        assert!(!ch.commit());
        ch.produce(1);
        assert!(ch.commit());
        assert!(!ch.commit());
    }
}
