//! The rake's word-level kernels expressed as XPP configurations.
//!
//! These are the paper's Figures 5–7: the descrambler, the despreader and
//! the channel-correction unit, built from ALU/register/RAM objects and
//! verified *bit-exact* against the golden models in [`crate::rake::finger`]
//! and [`crate::symbols`].
//!
//! Each kernel comes as a netlist constructor (for embedding into a larger
//! platform) plus a self-contained wrapper owning a private array instance
//! (for tests and benchmarks).

pub mod corrector;
pub mod descrambler;
pub mod despreader;

pub use corrector::{
    corrector_netlist, sttd_corrector_netlist, ArrayCorrector, ArraySttdCorrector,
};
pub use descrambler::{descrambler_netlist, ArrayDescrambler};
pub use despreader::{
    despreader_multiplexed_netlist, despreader_single_netlist, ArrayDespreader,
    ArrayMultiplexedDespreader, MIN_MULTIPLEXED_FINGERS,
};

use sdr_dsp::Cplx;
use xpp_array::Word;

/// Splits a complex integer stream into parallel I and Q word streams.
pub(crate) fn split_iq(samples: &[Cplx<i32>]) -> (Vec<Word>, Vec<Word>) {
    (
        samples.iter().map(|c| Word::new(c.re)).collect(),
        samples.iter().map(|c| Word::new(c.im)).collect(),
    )
}

/// Zips parallel I and Q word streams back into complex samples.
///
/// # Panics
///
/// Panics if the streams have different lengths.
pub(crate) fn zip_iq(i: &[Word], q: &[Word]) -> Vec<Cplx<i32>> {
    assert_eq!(i.len(), q.len(), "I/Q stream length mismatch");
    i.iter()
        .zip(q)
        .map(|(a, b)| Cplx::new(a.value(), b.value()))
        .collect()
}
