//! Million-terminal scale bench for the async session front-end.
//!
//! Closed-loop arrival process: seeded Poisson arrivals (inverse-CDF
//! exponential interarrivals from `sdr_dsp::rng::Rng64`), mixed W-CDMA /
//! OFDM terminals, driven through `sdr_engine::frontend::Frontend` — the
//! parking-lot control plane that shrinks every waiting terminal to a
//! ~40-byte record and materialises only a bounded window over the real
//! `ShardPool`.
//!
//! Arms:
//!
//! * `park_1m` (the headline, asserted by `bench_report` in CI): admit
//!   **1,000,000** terminals as parked records at moderate offered load
//!   (rho ~0.4), hold them all resident, then process a bounded sample
//!   through the real worker pool. Reports peak sessions resident,
//!   heap bytes/parked-session (budget: 64), p99 deadline slack and the
//!   shed rate of the processed window.
//! * `sweep` — offered-load sweep rho in {0.25, 0.5, 1.0, 2.0} with a
//!   smaller population run to completion, reporting p99/min modeled
//!   slack and shed rate per load point (the `BENCH_SCALE.json` table).
//!
//! Criterion times the two hot mechanisms (parking throughput and
//! mid-pipeline rehydration); the scale numbers themselves come from
//! `bench_report`, which is not a timing measurement.
//!
//! Slack and shedding are computed by the front-end's deterministic
//! virtual-time admission model (one virtual server per array,
//! 3 x job_cycles modeled service per frame), so every figure this bench
//! prints is bit-reproducible; kernel outcomes (Done/Failed) come from
//! the real simulated arrays.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sdr_dsp::rng::Rng64;
use sdr_engine::frontend::parking::ParkingLot;
use sdr_engine::frontend::{
    Frontend, FrontendConfig, ScaleSummary, OFDM_SERVICE_CYCLES, WCDMA_SERVICE_CYCLES,
};
use sdr_engine::{ParkedSession, Session};

/// Headline arm: terminals parked concurrently.
const PARKED_TARGET: u64 = 1_000_000;

/// Frames actually processed through the real pool in the headline arm
/// (the parked mass stays resident the whole time).
const PROCESSED_SAMPLE: u64 = 200;

/// Terminals per offered-load sweep point (each run to completion).
const SWEEP_TERMINALS: u64 = 256;

/// Worker set both arms multiplex over: 4 shards x 1 array.
const WORKERS: u64 = 4;

/// Heap budget per parked session (bytes) the report asserts against.
const BYTES_PER_PARKED_BUDGET: f64 = 64.0;

/// Shed-rate target at moderate load (rho <= 0.5).
const MODERATE_SHED_TARGET: f64 = 0.01;

fn avg_service_cycles() -> f64 {
    (WCDMA_SERVICE_CYCLES + OFDM_SERVICE_CYCLES) as f64 / 2.0
}

fn frontend(parking_capacity: usize) -> Frontend {
    Frontend::new(FrontendConfig {
        shards: WORKERS as usize,
        arrays_per_shard: 1,
        queue_depth: 32,
        max_resident: 64,
        parking_capacity,
        ..FrontendConfig::default()
    })
}

fn open_loop(_: &Session, _: u64) -> Option<ParkedSession> {
    None
}

/// Admits `n` terminals with seeded Poisson arrivals at offered load
/// `rho` (fraction of the worker set's modeled service capacity).
fn admit_poisson(fe: &mut Frontend, seed: u64, n: u64, rho: f64) {
    let mean_interarrival = avg_service_cycles() / (rho * WORKERS as f64);
    let mut rng = Rng64::seed_from_u64(seed);
    let mut arrival = 0u64;
    for id in 0..n {
        let u = rng.next_f64().max(1e-12);
        arrival += (-mean_interarrival * u.ln()).ceil() as u64;
        let rec = if rng.next_u64().is_multiple_of(2) {
            ParkedSession::new_wcdma(id, seed ^ (id.wrapping_mul(0x9e37_79b9)), arrival)
        } else {
            ParkedSession::new_ofdm(id, seed ^ (id.wrapping_mul(0x7f4a_7c15)), arrival)
        };
        fe.admit(rec);
    }
}

/// The headline arm. Returns the run summary plus the bytes/parked
/// figure measured at full (1M) occupancy.
fn run_park_million() -> (ScaleSummary, f64) {
    let mut fe = frontend(PARKED_TARGET as usize);
    admit_poisson(&mut fe, 0x5CA1E, PARKED_TARGET, 0.4);
    let bytes_per_parked = fe.bytes_per_parked().unwrap_or(f64::INFINITY);
    let summary = fe.run_limited(PROCESSED_SAMPLE, &mut open_loop);
    (summary, bytes_per_parked)
}

/// One offered-load sweep point, run to completion.
fn run_sweep_point(rho: f64, seed: u64) -> ScaleSummary {
    let mut fe = frontend(SWEEP_TERMINALS as usize);
    admit_poisson(&mut fe, seed, SWEEP_TERMINALS, rho);
    fe.run(&mut open_loop)
}

fn bench_scale_mechanisms(c: &mut Criterion) {
    let mut g = c.benchmark_group("scale");

    // Parking throughput: how fast terminals shrink into the lot.
    const PARK_BATCH: u64 = 100_000;
    g.bench_function("park_100k", |b| {
        b.iter_batched(
            || {
                let mut rng = Rng64::seed_from_u64(7);
                let records: Vec<ParkedSession> = (0..PARK_BATCH)
                    .map(|id| ParkedSession::new_wcdma(id, rng.next_u64(), id * 100))
                    .collect();
                (ParkingLot::with_capacity(PARK_BATCH as usize), records)
            },
            |(mut lot, records)| {
                for rec in records {
                    lot.park(rec);
                }
                lot.len()
            },
            BatchSize::PerIteration,
        )
    });

    // Rehydration cost: parked record -> full session (capture replayed
    // from the seed, DSP state words restored).
    let mut mid = Session::wcdma(3, 0xD5B);
    // Advance to Tracking so the rehydrate path restores state words.
    let pool_cfg = sdr_engine::PoolConfig {
        shards: 1,
        ..Default::default()
    };
    let metrics = std::sync::Arc::new(sdr_engine::Metrics::new());
    let pool = sdr_engine::ShardPool::new(pool_cfg, metrics);
    for _ in 0..2 {
        pool.submit(mid).expect("queue empty");
        mid = pool.recv().expect("worker alive");
    }
    drop(pool);
    let record = mid.park().expect("mid-pipeline sessions park");
    g.bench_function("rehydrate_tracking", |b| {
        b.iter(|| Session::rehydrate(&record))
    });

    g.finish();
}

/// Not a timing measurement: runs the headline arm and the offered-load
/// sweep once, prints every figure `BENCH_SCALE.json` records, and
/// asserts the PR's acceptance criteria so CI fails on regression.
fn bench_report(_c: &mut Criterion) {
    let (headline, bytes_per_parked) = run_park_million();
    eprintln!(
        "scale/report park_1m ({PARKED_TARGET} terminals admitted, rho 0.4, \
         {WORKERS} workers):"
    );
    eprintln!(
        "  peak parked {} | peak resident {} | {bytes_per_parked:.1} heap B/parked \
         (budget {BYTES_PER_PARKED_BUDGET})",
        headline.peak_parked, headline.peak_resident,
    );
    eprintln!(
        "  processed sample: {} frames ({} done, {} failed) | shed {} | \
         p99 slack {:?} cycles | still parked {}",
        headline.frames_completed,
        headline.done,
        headline.failed,
        headline.shed.len(),
        headline.p99_slack(),
        headline.still_parked,
    );

    assert!(
        headline.peak_parked >= PARKED_TARGET,
        "headline: {} parked < {PARKED_TARGET}",
        headline.peak_parked
    );
    assert!(
        bytes_per_parked <= BYTES_PER_PARKED_BUDGET,
        "bytes/parked {bytes_per_parked:.1} over budget"
    );
    assert!(
        headline.frames_completed >= PROCESSED_SAMPLE,
        "processed sample incomplete: {}",
        headline.frames_completed
    );
    assert_eq!(
        headline.frames_completed, headline.done,
        "every processed frame must end Done"
    );
    assert!(
        headline.shed.is_empty(),
        "no shedding at rho 0.4 in the processed window"
    );
    let p99 = headline.p99_slack().unwrap_or(i64::MIN);
    assert!(p99 > 0, "p99 slack must stay positive at rho 0.4: {p99}");

    eprintln!("scale/report sweep ({SWEEP_TERMINALS} terminals per point, run to completion):");
    eprintln!("  rho    offered  completed  shed%   p99 slack  min slack");
    for (i, rho) in [0.25f64, 0.5, 1.0, 2.0].into_iter().enumerate() {
        let s = run_sweep_point(rho, 0xF10 + i as u64);
        eprintln!(
            "  {rho:<5}  {:>7}  {:>9}  {:>5.1}  {:>9}  {:>9}",
            s.offered(),
            s.frames_completed,
            100.0 * s.shed_rate(),
            s.p99_slack().unwrap_or(i64::MIN),
            s.min_slack().unwrap_or(i64::MIN),
        );
        assert_eq!(
            s.frames_completed + s.shed.len() as u64,
            SWEEP_TERMINALS,
            "rho {rho}: every offered frame completes or sheds"
        );
        if rho <= 0.5 {
            assert!(
                s.shed_rate() <= MODERATE_SHED_TARGET,
                "rho {rho}: shed rate {:.3} over the {MODERATE_SHED_TARGET} target",
                s.shed_rate()
            );
        }
    }
}

criterion_group! {
    name = scale_benches;
    config = Criterion::default().sample_size(10);
    targets = bench_scale_mechanisms, bench_report
}
criterion_main!(scale_benches);
