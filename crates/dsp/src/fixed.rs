//! Q-format fixed-point helpers.
//!
//! The receivers use a handful of fixed-point conventions:
//!
//! * 12-bit I/Q samples (W-CDMA input, per the paper's design assumptions),
//! * 10-bit I/Q samples (OFDM input into the FFT-64),
//! * 24-bit ALU words on the array,
//! * Q1.15 twiddle factors and channel weights.
//!
//! Rather than a heavyweight generic fixed-point type, this module provides
//! the exact scaling/saturation primitives the hardware datapaths perform, so
//! golden models and array netlists can share one definition.

/// The Q1.15 representation of 1.0 − 1 ulp (the largest positive Q15 value).
pub const Q15_ONE: i32 = (1 << 15) - 1;

/// Saturates `v` to the signed `bits`-bit range `[-2^(bits-1), 2^(bits-1)-1]`.
///
/// # Panics
///
/// Panics if `bits` is 0 or greater than 31.
///
/// # Example
///
/// ```
/// use sdr_dsp::fixed::sat;
/// assert_eq!(sat(70_000, 16), 32_767);
/// assert_eq!(sat(-70_000, 16), -32_768);
/// assert_eq!(sat(123, 16), 123);
/// ```
#[inline]
pub fn sat(v: i64, bits: u32) -> i32 {
    assert!((1..=31).contains(&bits), "sat: bits must be in 1..=31");
    let max = (1i64 << (bits - 1)) - 1;
    let min = -(1i64 << (bits - 1));
    v.clamp(min, max) as i32
}

/// Saturates to the 24-bit word range used by the XPP ALU-PAEs.
#[inline]
pub fn sat24(v: i64) -> i32 {
    sat(v, 24)
}

/// Saturates to the 16-bit range.
#[inline]
pub fn sat16(v: i64) -> i32 {
    sat(v, 16)
}

/// Arithmetic right shift with round-half-up (adds `2^(shift-1)` first).
///
/// This is the rounding mode used by the Q15 twiddle multiplications in the
/// fixed-point FFT; plain `>>` (truncation) is used where the paper's
/// datapath truncates (the per-stage `>>2` scaling).
///
/// # Example
///
/// ```
/// use sdr_dsp::fixed::shr_round;
/// assert_eq!(shr_round(5, 1), 3);   // 2.5 rounds up
/// assert_eq!(shr_round(-5, 1), -2); // -2.5 rounds toward +inf
/// assert_eq!(shr_round(4, 2), 1);
/// ```
#[inline]
pub fn shr_round(v: i64, shift: u32) -> i64 {
    if shift == 0 {
        v
    } else {
        (v + (1i64 << (shift - 1))) >> shift
    }
}

/// Multiplies by a Q1.15 coefficient with rounding: `(v * q15 + 2^14) >> 15`.
///
/// # Example
///
/// ```
/// use sdr_dsp::fixed::{mul_q15, Q15_ONE};
/// assert_eq!(mul_q15(1000, Q15_ONE), 1000 - 1000 * 1 / 32768); // ~0.99997×
/// assert_eq!(mul_q15(1000, 1 << 14), 500); // ×0.5
/// ```
#[inline]
pub fn mul_q15(v: i32, q15: i32) -> i32 {
    shr_round(v as i64 * q15 as i64, 15) as i32
}

/// Quantizes a real value in `[-1, 1)` to a signed `bits`-bit integer with
/// rounding and saturation: `round(x * 2^(bits-1))` clamped to range.
///
/// # Example
///
/// ```
/// use sdr_dsp::fixed::quantize;
/// assert_eq!(quantize(0.5, 12), 1024);
/// assert_eq!(quantize(-1.0, 12), -2048);
/// assert_eq!(quantize(1.0, 12), 2047); // saturates
/// ```
#[inline]
pub fn quantize(x: f64, bits: u32) -> i32 {
    let scaled = (x * (1i64 << (bits - 1)) as f64).round() as i64;
    sat(scaled, bits)
}

/// Converts a signed `bits`-bit fixed-point value back to `[-1, 1)`.
#[inline]
pub fn dequantize(v: i32, bits: u32) -> f64 {
    v as f64 / (1i64 << (bits - 1)) as f64
}

/// Returns `true` if `v` fits in a signed `bits`-bit word without saturation.
#[inline]
pub fn fits(v: i64, bits: u32) -> bool {
    let max = (1i64 << (bits - 1)) - 1;
    let min = -(1i64 << (bits - 1));
    v >= min && v <= max
}

/// Wraps `v` to signed `bits`-bit two's-complement (the XPP ALUs wrap rather
/// than saturate on plain adds).
///
/// # Example
///
/// ```
/// use sdr_dsp::fixed::wrap;
/// assert_eq!(wrap((1 << 23) as i64, 24), -(1 << 23)); // 24-bit overflow wraps
/// assert_eq!(wrap(-5, 24), -5);
/// ```
#[inline]
pub fn wrap(v: i64, bits: u32) -> i32 {
    debug_assert!((1..=32).contains(&bits));
    let shift = 64 - bits;
    ((v << shift) >> shift) as i32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sat_clamps_at_both_ends() {
        assert_eq!(sat24(i64::MAX), (1 << 23) - 1);
        assert_eq!(sat24(i64::MIN), -(1 << 23));
        assert_eq!(sat24(42), 42);
        assert_eq!(sat16(32768), 32767);
        assert_eq!(sat16(-32769), -32768);
    }

    #[test]
    #[should_panic]
    fn sat_rejects_zero_bits() {
        sat(0, 0);
    }

    #[test]
    fn shr_round_matches_round_half_up() {
        for v in -100i64..=100 {
            for s in 1u32..=4 {
                let expected = ((v as f64) / (1i64 << s) as f64 + 0.5).floor() as i64;
                assert_eq!(shr_round(v, s), expected, "v={v} s={s}");
            }
        }
    }

    #[test]
    fn shr_round_zero_shift_is_identity() {
        assert_eq!(shr_round(12345, 0), 12345);
        assert_eq!(shr_round(-12345, 0), -12345);
    }

    #[test]
    fn mul_q15_identity_and_half() {
        assert_eq!(mul_q15(2048, 1 << 14), 1024);
        // Q15_ONE is (1 - 2^-15), so large values lose a fraction.
        assert_eq!(mul_q15(32768, Q15_ONE), 32767);
        assert_eq!(mul_q15(0, Q15_ONE), 0);
        assert_eq!(mul_q15(-2048, 1 << 14), -1024);
    }

    #[test]
    fn quantize_dequantize_roundtrip_within_half_ulp() {
        for &x in &[-0.999, -0.5, -0.123, 0.0, 0.123, 0.5, 0.999] {
            let q = quantize(x, 12);
            let back = dequantize(q, 12);
            assert!((back - x).abs() <= 0.5 / 2048.0 + 1e-12, "x={x} q={q}");
        }
    }

    #[test]
    fn quantize_saturates_at_plus_one() {
        assert_eq!(quantize(1.0, 10), 511);
        assert_eq!(quantize(-1.0, 10), -512);
        assert_eq!(quantize(2.0, 10), 511);
    }

    #[test]
    fn wrap_is_twos_complement() {
        assert_eq!(wrap(0x7F_FFFF, 24), 0x7F_FFFF);
        assert_eq!(wrap(0x80_0000, 24), -0x80_0000);
        assert_eq!(wrap(0xFF_FFFF, 24), -1);
        assert_eq!(wrap(1i64 << 24, 24), 0);
    }

    #[test]
    fn fits_boundaries() {
        assert!(fits((1 << 23) - 1, 24));
        assert!(fits(-(1 << 23), 24));
        assert!(!fits(1 << 23, 24));
        assert!(!fits(-(1 << 23) - 1, 24));
    }
}
