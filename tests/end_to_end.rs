//! Cross-crate integration tests: full receiver chains where the
//! word-level kernels run on the simulated array instead of the golden
//! software models.

use xpp_sdr::dsp::Cplx;
use xpp_sdr::ofdm;
use xpp_sdr::wcdma;

/// The W-CDMA finger pipeline with every word-level stage executed on the
/// array: descramble (Fig. 5) → despread (Fig. 6) → correct (Fig. 7) must
/// reproduce the golden finger bit for bit, and the decisions must match
/// the transmitted bits.
#[test]
fn rake_finger_on_the_array_end_to_end() {
    use wcdma::channel::{propagate, AdcConfig, CellLink, Path};
    use wcdma::rake::estimator::{estimate_channel, quantize_weights};
    use wcdma::rake::finger as golden;
    use wcdma::tx::{CellConfig, CellTransmitter};
    use wcdma::xpp_map::{ArrayCorrector, ArrayDescrambler, ArrayDespreader};

    let bits: Vec<u8> = (0..64).map(|i| ((i * 3 + 1) % 2) as u8).collect();
    let cfg = CellConfig::default();
    let mut tx = CellTransmitter::new(cfg);
    let signal = tx.transmit(&bits);
    let delay = 6;
    let link = CellLink::new(vec![Path::new(delay, Cplx::new(0.7, 0.3))]);
    let rx = propagate(&[(signal, link)], 0.02, 11, AdcConfig::default());
    let code = wcdma::ScramblingCode::downlink(cfg.scrambling_code);

    // DSP side: channel estimate → quantised weight.
    let h = estimate_channel(&rx, &code, delay, 8);
    let w = quantize_weights(&[h])[0];

    // Array side: the three kernels chained through host buffers (the
    // board's streaming interconnect).
    let n = ((rx.len() - delay) / cfg.dpch.sf) * cfg.dpch.sf;
    let mut descrambler = ArrayDescrambler::new().unwrap();
    let descrambled = descrambler.process(&rx, &code, delay, 0, n).unwrap();
    let mut despreader = ArrayDespreader::new(cfg.dpch.sf, cfg.dpch.code_index).unwrap();
    let symbols = despreader.process(&descrambled).unwrap();
    let mut corrector = ArrayCorrector::new(1).unwrap();
    corrector.set_weights(&[w]).unwrap();
    let corrected = corrector.process(&symbols).unwrap();

    // Bit-exact against the golden finger.
    let golden_out = golden::finger(&rx, &code, delay, cfg.dpch.sf, cfg.dpch.code_index, w);
    assert_eq!(corrected, golden_out);

    // And the decisions recover the transmitted bits.
    let soft: Vec<Cplx<i64>> = corrected.iter().map(|s| s.widen()).collect();
    let decided = wcdma::rake::combiner::decide(&soft);
    assert_eq!(&decided[..bits.len()], &bits[..]);
}

/// The OFDM receiver with the FFT executed on the array (Fig. 9): the
/// spectrum of every data symbol must match the golden fixed-point FFT the
/// software receiver uses, so the decoded bits are identical.
#[test]
fn ofdm_fft_on_the_array_matches_receiver_path() {
    use ofdm::channel::WlanChannel;
    use ofdm::params::{rate, CP_LEN, SYMBOL_LEN};
    use ofdm::rx::OfdmReceiver;
    use ofdm::tx::Transmitter;
    use ofdm::xpp_map::ArrayFft64;
    use sdr_dsp::fft::Fft64Fixed;

    let r = rate(12).unwrap();
    let bits: Vec<u8> = (0..144).map(|i| ((i * 5 + 2) % 2) as u8).collect();
    let frame = Transmitter::new(r).transmit(&bits);
    let rx = WlanChannel::default().run(&frame.samples);

    let receiver = OfdmReceiver::new(r).with_fft_stage_shift(1);
    let out = receiver.receive(&rx, bits.len()).unwrap();
    assert_eq!(out.bits, bits);

    // Run the first two data-symbol windows through the array FFT and
    // compare against the golden FFT used inside the receiver.
    let mut hw = ArrayFft64::new(1).unwrap();
    let golden = Fft64Fixed::with_stage_shift(1);
    for s in 0..2 {
        let at = out.data_start + s * SYMBOL_LEN + CP_LEN;
        let mut buf = [Cplx::<i32>::ZERO; 64];
        buf.copy_from_slice(&rx[at..at + 64]);
        assert_eq!(hw.run(&buf).unwrap(), golden.run(&buf), "symbol {s}");
    }
}

/// Both standards resident on one array: the rake corrector and the OFDM
/// demodulator run as independent configurations, protected from each
/// other (the paper's multi-standard residency).
#[test]
fn both_standards_share_one_array() {
    use xpp_sdr::xpp::{Array, Word};

    let mut array = Array::xpp64a();
    let rake_cfg = array
        .configure(&wcdma::xpp_map::corrector_netlist(4))
        .unwrap();
    let wlan_cfg = array
        .configure(&ofdm::xpp_map::demodulator_netlist())
        .unwrap();

    // Load rake weights (unit gain).
    array
        .push_input(rake_cfg, "w_addr", (0..4).map(Word::new))
        .unwrap();
    array
        .push_input(rake_cfg, "wi", std::iter::repeat_n(Word::new(512), 4))
        .unwrap();
    array
        .push_input(rake_cfg, "wq", std::iter::repeat_n(Word::ZERO, 4))
        .unwrap();

    // Feed both standards' streams and run once.
    let rake_syms: Vec<Cplx<i32>> = (0..16).map(|k| Cplx::new(100 + k, -k)).collect();
    array
        .push_input(rake_cfg, "i_in", rake_syms.iter().map(|c| Word::new(c.re)))
        .unwrap();
    array
        .push_input(rake_cfg, "q_in", rake_syms.iter().map(|c| Word::new(c.im)))
        .unwrap();
    let wlan_syms: Vec<Cplx<i32>> = (0..8)
        .map(|k| Cplx::new(if k % 2 == 0 { 800 } else { -800 }, 100))
        .collect();
    array
        .push_input(wlan_cfg, "i_in", wlan_syms.iter().map(|c| Word::new(c.re)))
        .unwrap();
    array
        .push_input(wlan_cfg, "q_in", wlan_syms.iter().map(|c| Word::new(c.im)))
        .unwrap();
    array
        .push_input(wlan_cfg, "wi", std::iter::repeat_n(Word::new(512), 8))
        .unwrap();
    array
        .push_input(wlan_cfg, "wq", std::iter::repeat_n(Word::ZERO, 8))
        .unwrap();
    array.run_until_idle(50_000).unwrap();

    // Rake corrector with unit weight = identity.
    let i_out = array.drain_output(rake_cfg, "i_out").unwrap();
    assert_eq!(i_out.len(), 16);
    for (k, w) in i_out.iter().enumerate() {
        assert_eq!(w.value(), rake_syms[k].re);
    }
    // WLAN demodulator slices signs.
    let b0 = array.drain_output(wlan_cfg, "b0").unwrap();
    for (k, w) in b0.iter().enumerate() {
        assert_eq!(w.value(), (wlan_syms[k].re < 0) as i32, "carrier {k}");
    }
}

/// BER through the golden rake degrades monotonically (in trend) with
/// noise while the array-mapped kernels stay bit-exact — the two views of
/// the same receiver never diverge.
#[test]
fn golden_and_array_descramblers_agree_under_noise() {
    use wcdma::channel::{propagate, AdcConfig, CellLink, Path};
    use wcdma::rake::finger::descramble;
    use wcdma::tx::{CellConfig, CellTransmitter};
    use wcdma::xpp_map::ArrayDescrambler;

    let bits: Vec<u8> = (0..32).map(|i| (i % 2) as u8).collect();
    let mut tx = CellTransmitter::new(CellConfig::default());
    let signal = tx.transmit(&bits);
    let link = CellLink::new(vec![Path::new(0, Cplx::new(0.9, 0.0))]);
    let code = wcdma::ScramblingCode::downlink(0);
    let mut hw = ArrayDescrambler::new().unwrap();
    for sigma in [0.0, 0.2, 0.8] {
        let rx = propagate(
            &[(signal.clone(), link.clone())],
            sigma,
            99,
            AdcConfig::default(),
        );
        let out = hw.process(&rx, &code, 0, 0, 512).unwrap();
        assert_eq!(out, descramble(&rx, &code, 0, 0, 512), "sigma {sigma}");
    }
}

/// The platform report aggregates activity from a real mixed run.
#[test]
fn platform_report_covers_a_mixed_run() {
    use xpp_sdr::platform::SdrPlatform;
    use xpp_sdr::xpp::Word;

    let mut p = SdrPlatform::evaluation_board();
    let cfg = p
        .array
        .configure(&wcdma::xpp_map::descrambler_netlist())
        .unwrap();
    let code = wcdma::ScramblingCode::downlink(3);
    let chips: Vec<Cplx<i32>> = (0..256).map(|i| Cplx::new(i, -i)).collect();
    p.array
        .push_input(cfg, "i_in", chips.iter().map(|c| Word::new(c.re)))
        .unwrap();
    p.array
        .push_input(cfg, "q_in", chips.iter().map(|c| Word::new(c.im)))
        .unwrap();
    let cbits: Vec<(u8, u8)> = (0..256).map(|i| code.chip_bits(i)).collect();
    p.array
        .push_input(cfg, "ci", cbits.iter().map(|b| Word::new(b.0 as i32)))
        .unwrap();
    p.array
        .push_input(cfg, "cq", cbits.iter().map(|b| Word::new(b.1 as i32)))
        .unwrap();
    p.array.run_until_idle(10_000).unwrap();
    p.dsp.charge("control", 4_000);
    p.charge_dedicated("scrambling-code-gen", 256);

    let report = p.report();
    assert!(report.array_stats.mul_fires >= 4 * 256);
    assert!(report.array_power.total_nj() > 0.0);
    assert_eq!(report.dsp_instructions, 4_000);
    assert_eq!(report.dedicated_items["scrambling-code-gen"], 256);
}
