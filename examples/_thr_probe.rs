use sdr_dsp::metrics::BerCounter;
use sdr_ofdm::channel::WlanChannel;
use sdr_ofdm::params::RATES;
use sdr_ofdm::rx::OfdmReceiver;
use sdr_ofdm::tx::Transmitter;

fn psdu(n: usize) -> Vec<u8> {
    (0..n).map(|i| ((i * 29 + i / 7 + 1) % 2) as u8).collect()
}

fn main() {
    for gain in [128.0f64, 200.0, 300.0] {
        println!("--- adc_gain {gain}");
        for r in RATES {
            let bits = psdu(3 * r.data_bits_per_symbol());
            let frame = Transmitter::new(r).transmit(&bits);
            let ch = WlanChannel {
                adc_gain: gain,
                ..Default::default()
            };
            let rx = ch.run(&frame.samples);
            match OfdmReceiver::new(r).receive(&rx, bits.len()) {
                Ok(out) => {
                    let mut ber = BerCounter::new();
                    ber.update(&bits, &out.bits);
                    println!("rate {:2} Mb/s: ber {:.4}", r.mbps, ber.ber());
                }
                Err(e) => println!("rate {:2} Mb/s: {e}", r.mbps),
            }
        }
    }
}
