//! A hand-rolled minimal async executor (no dependencies).
//!
//! The front-end drives one async task per *materialised* session; the
//! executor is therefore bounded by the materialisation window, never by
//! the number of terminals. It is deliberately tiny:
//!
//! * tasks live in a `HashMap<u64, Pin<Box<dyn Future>>>` owned by the
//!   executor — futures never cross threads, so they need not be `Send`;
//! * a `WakeHandle` (the only `Send + Sync` piece) carries just the
//!   task id and a shared ready-queue, satisfying `std::task::Wake`
//!   without smuggling the future itself into the waker;
//! * [`MiniExecutor::run_until_stalled`] polls ready tasks until no task
//!   is runnable — there is no parking/blocking here; blocking happens
//!   in the completion reactor (`pool.recv_timeout`), which wakes tasks
//!   by depositing stepped sessions into their slots.

use std::collections::{HashMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

/// Shared queue of task ids whose wakers fired.
///
/// This is the only state a [`Waker`] touches, so waking is cheap and
/// thread-safe even though the futures themselves are single-threaded.
#[derive(Debug, Default)]
pub(crate) struct ReadyQueue {
    ids: Mutex<VecDeque<u64>>,
}

impl ReadyQueue {
    fn push(&self, id: u64) {
        if let Ok(mut ids) = self.ids.lock() {
            ids.push_back(id);
        }
    }

    fn pop(&self) -> Option<u64> {
        self.ids.lock().ok().and_then(|mut ids| ids.pop_front())
    }
}

/// The waker payload: a task id plus the ready-queue to drop it into.
struct WakeHandle {
    id: u64,
    ready: Arc<ReadyQueue>,
}

impl Wake for WakeHandle {
    fn wake(self: Arc<Self>) {
        self.ready.push(self.id);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.ready.push(self.id);
    }
}

type LocalFuture<T> = Pin<Box<dyn Future<Output = T>>>;

/// A single-threaded executor over non-`Send` futures producing `T`.
pub struct MiniExecutor<T> {
    tasks: HashMap<u64, LocalFuture<T>>,
    ready: Arc<ReadyQueue>,
    next_id: u64,
    finished: Vec<T>,
}

impl<T> Default for MiniExecutor<T> {
    fn default() -> Self {
        MiniExecutor {
            tasks: HashMap::new(),
            ready: Arc::new(ReadyQueue::default()),
            next_id: 0,
            finished: Vec::new(),
        }
    }
}

impl<T> MiniExecutor<T> {
    /// An empty executor.
    pub fn new() -> Self {
        MiniExecutor::default()
    }

    /// Spawns a future; it becomes runnable immediately and is first
    /// polled by the next [`run_until_stalled`](Self::run_until_stalled).
    pub fn spawn(&mut self, future: impl Future<Output = T> + 'static) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.tasks.insert(id, Box::pin(future));
        self.ready.push(id);
        id
    }

    /// Number of live (unfinished) tasks.
    pub fn live(&self) -> usize {
        self.tasks.len()
    }

    /// Polls every ready task until no task is runnable; returns the
    /// number of polls performed. Completed task outputs are queued for
    /// [`take_finished`](Self::take_finished).
    pub fn run_until_stalled(&mut self) -> usize {
        let mut polls = 0;
        while let Some(id) = self.ready.pop() {
            // Spurious wakes for finished/unknown tasks are ignored.
            let Some(task) = self.tasks.get_mut(&id) else {
                continue;
            };
            let waker = Waker::from(Arc::new(WakeHandle {
                id,
                ready: Arc::clone(&self.ready),
            }));
            let mut cx = Context::from_waker(&waker);
            polls += 1;
            if let Poll::Ready(out) = task.as_mut().poll(&mut cx) {
                self.tasks.remove(&id);
                self.finished.push(out);
            }
        }
        polls
    }

    /// Drains the outputs of tasks that completed since the last call.
    pub fn take_finished(&mut self) -> Vec<T> {
        std::mem::take(&mut self.finished)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    /// A future that stays Pending until an external flag flips, waking
    /// itself via the stashed waker — exercises the waker protocol.
    struct Gate {
        open: Rc<Cell<bool>>,
        waker: Rc<Cell<Option<Waker>>>,
    }

    impl Future for Gate {
        type Output = u32;
        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<u32> {
            if self.open.get() {
                Poll::Ready(42)
            } else {
                self.waker.set(Some(cx.waker().clone()));
                Poll::Pending
            }
        }
    }

    #[test]
    fn wake_reschedules_a_stalled_task() {
        let mut exec = MiniExecutor::new();
        let open = Rc::new(Cell::new(false));
        let waker_slot = Rc::new(Cell::new(None));
        exec.spawn(Gate {
            open: Rc::clone(&open),
            waker: Rc::clone(&waker_slot),
        });
        assert_eq!(exec.run_until_stalled(), 1, "first poll parks the task");
        assert_eq!(exec.live(), 1);
        assert!(exec.take_finished().is_empty());

        // Without a wake the executor stays stalled even though the
        // gate is open — wakes, not polling loops, drive progress.
        open.set(true);
        assert_eq!(exec.run_until_stalled(), 0);

        let waker = waker_slot.take().expect("waker stashed on first poll");
        waker.wake();
        assert_eq!(exec.run_until_stalled(), 1);
        assert_eq!(exec.live(), 0);
        assert_eq!(exec.take_finished(), vec![42]);
    }

    #[test]
    fn spawned_tasks_run_to_completion_in_order() {
        let mut exec = MiniExecutor::new();
        for i in 0..4u32 {
            exec.spawn(async move { i });
        }
        exec.run_until_stalled();
        assert_eq!(exec.take_finished(), vec![0, 1, 2, 3]);
        assert_eq!(exec.live(), 0);
    }
}
