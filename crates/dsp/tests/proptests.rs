//! Property-based tests for the arithmetic core.

use proptest::prelude::*;
use sdr_dsp::bits::{pack_lsb_first, unpack_lsb_first, Lfsr};
use sdr_dsp::fft::{dft, fft, ifft, Fft64Fixed};
use sdr_dsp::fixed::{dequantize, fits, quantize, sat, shr_round, wrap};
use sdr_dsp::Cplx;

fn arb_cplx_i32(limit: i32) -> impl Strategy<Value = Cplx<i32>> {
    (-limit..=limit, -limit..=limit).prop_map(|(re, im)| Cplx::new(re, im))
}

proptest! {
    #[test]
    fn cplx_mul_commutes(a in arb_cplx_i32(1 << 11), b in arb_cplx_i32(1 << 11)) {
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn cplx_mul_distributes(a in arb_cplx_i32(1 << 9), b in arb_cplx_i32(1 << 9), c in arb_cplx_i32(1 << 9)) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn conj_of_product_is_product_of_conj(a in arb_cplx_i32(1 << 11), b in arb_cplx_i32(1 << 11)) {
        prop_assert_eq!((a * b).conj(), a.conj() * b.conj());
    }

    #[test]
    fn sqmag_multiplicative(a in arb_cplx_i32(1 << 10), b in arb_cplx_i32(1 << 10)) {
        // |ab|² = |a|²·|b|² (exact for integers within range).
        prop_assert_eq!((a * b).sqmag(), a.sqmag() * b.sqmag());
    }

    #[test]
    fn cmul_shr_matches_widened_mul(a in arb_cplx_i32(1 << 20), b in arb_cplx_i32(1 << 20), s in 0u32..24) {
        let full = a.widen() * b.widen();
        let shifted = full.shr(s);
        prop_assert_eq!(a.cmul_shr(b, s), shifted.narrow());
    }

    #[test]
    fn sat_is_idempotent(v in any::<i64>(), bits in 1u32..=31) {
        let once = sat(v, bits) as i64;
        prop_assert_eq!(sat(once, bits) as i64, once);
    }

    #[test]
    fn sat_preserves_in_range(v in -(1i64 << 22)..(1i64 << 22)) {
        prop_assert_eq!(sat(v, 24) as i64, v);
    }

    #[test]
    fn wrap_fixes_point_of_in_range(v in -(1i64 << 23)..(1i64 << 23)) {
        prop_assert_eq!(wrap(v, 24) as i64, v);
        prop_assert!(fits(wrap(v, 24) as i64, 24));
    }

    #[test]
    fn shr_round_error_below_half_ulp(v in any::<i32>(), s in 1u32..16) {
        let exact = v as f64 / (1i64 << s) as f64;
        let rounded = shr_round(v as i64, s) as f64;
        prop_assert!((rounded - exact).abs() <= 0.5 + 1e-12);
    }

    #[test]
    fn quantize_within_one_ulp(x in -0.999f64..0.999, bits in 4u32..=16) {
        let q = quantize(x, bits);
        let back = dequantize(q, bits);
        prop_assert!((back - x).abs() <= 1.0 / (1i64 << (bits - 1)) as f64);
    }

    #[test]
    fn pack_unpack_roundtrip(bits in proptest::collection::vec(0u8..=1, 0..=32)) {
        let packed = pack_lsb_first(&bits);
        prop_assert_eq!(unpack_lsb_first(packed, bits.len()), bits);
    }

    #[test]
    fn lfsr_is_deterministic(seed in 1u32..(1 << 10), n in 1usize..200) {
        let mut a = Lfsr::new(10, (1 << 3) | 1, seed);
        let mut b = Lfsr::new(10, (1 << 3) | 1, seed);
        prop_assert_eq!(a.take_bits(n), b.take_bits(n));
    }

    #[test]
    fn fft_linear(xs in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 64), k in -4.0f64..4.0) {
        let x: Vec<Cplx<f64>> = xs.iter().map(|&(r, i)| Cplx::new(r, i)).collect();
        let scaled: Vec<Cplx<f64>> = x.iter().map(|v| Cplx::new(v.re * k, v.im * k)).collect();
        let fx = fft(&x);
        let fs = fft(&scaled);
        for (a, b) in fx.iter().zip(&fs) {
            prop_assert!((a.re * k - b.re).abs() < 1e-6);
            prop_assert!((a.im * k - b.im).abs() < 1e-6);
        }
    }

    #[test]
    fn ifft_fft_roundtrip(xs in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 64)) {
        let x: Vec<Cplx<f64>> = xs.iter().map(|&(r, i)| Cplx::new(r, i)).collect();
        let y = ifft(&fft(&x));
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((a.re - b.re).abs() < 1e-8);
            prop_assert!((a.im - b.im).abs() < 1e-8);
        }
    }

    #[test]
    fn fixed_fft_parseval_within_tolerance(xs in proptest::collection::vec((-500i32..=500, -500i32..=500), 64)) {
        // Energy conservation (Parseval) holds approximately for the scaled
        // fixed-point FFT: sum|X|² ≈ sum|x|²/64 with the 1/64 total scaling.
        let mut x = [Cplx::<i32>::ZERO; 64];
        for (v, &(r, i)) in x.iter_mut().zip(&xs) {
            *v = Cplx::new(r, i);
        }
        let y = Fft64Fixed::new().run(&x);
        let ein: f64 = x.iter().map(|v| v.sqmag() as f64).sum::<f64>() / 64.0;
        let eout: f64 = y.iter().map(|v| v.sqmag() as f64).sum();
        // Truncation loses energy; allow a generous band.
        prop_assert!(eout <= ein * 1.1 + 64.0, "eout {eout} ein {ein}");
        prop_assert!(eout >= ein * 0.5 - 64.0, "eout {eout} ein {ein}");
    }

    #[test]
    fn dft_matches_fft_random(xs in proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 16)) {
        let x: Vec<Cplx<f64>> = xs.iter().map(|&(r, i)| Cplx::new(r, i)).collect();
        let a = fft(&x);
        let b = dft(&x);
        for (u, v) in a.iter().zip(&b) {
            prop_assert!((u.re - v.re).abs() < 1e-9);
            prop_assert!((u.im - v.im).abs() < 1e-9);
        }
    }
}
