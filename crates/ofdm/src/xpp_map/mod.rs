//! The OFDM decoder's array configurations (paper Figs. 9 and 10).

pub mod fft64;
pub mod frontend;

pub use fft64::{fft64_netlist, ArrayFft64};
pub use frontend::{
    demodulator_netlist, downsample2, downsampler_netlist, frontend_netlist,
    preamble_detector_netlist, ReconfigEvent, ReconfigurableFrontend,
};

use sdr_dsp::Cplx;
use xpp_array::{Netlist, Word};

/// Registry of the crate's array kernels (paper Figs. 9/10) under stable
/// identities, mirroring the wcdma crate's `WcdmaKernel` registry: a
/// configuration manager keys its compiled-config cache by
/// [`config_name`](OfdmKernel::config_name) and calls
/// [`build`](OfdmKernel::build) only on a miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OfdmKernel {
    /// Fig. 10 configuration 2a: short-preamble autocorrelation detector.
    PreambleDetector,
    /// Fig. 10 configuration 2b: equalize-and-slice demodulator.
    Demodulator,
    /// Fig. 9 receive frontend (downsampler + FFT).
    Frontend { stage_shift: u32 },
    /// Fig. 9 half-band downsampler alone.
    Downsampler,
    /// Fig. 9 radix-2 64-point FFT alone.
    Fft64 { stage_shift: u32 },
}

impl OfdmKernel {
    /// Stable cache key: kernel id plus every netlist-shaping parameter.
    pub fn config_name(&self) -> String {
        match self {
            OfdmKernel::PreambleDetector => "fig10-config2a-detector".to_string(),
            OfdmKernel::Demodulator => "fig10-config2b-demodulator".to_string(),
            OfdmKernel::Frontend { stage_shift } => format!("fig9-frontend-s{stage_shift}"),
            OfdmKernel::Downsampler => "fig9-downsampler".to_string(),
            OfdmKernel::Fft64 { stage_shift } => format!("fig9-fft64-s{stage_shift}"),
        }
    }

    /// Builds the kernel's netlist (the expensive step a compiled-config
    /// cache avoids repeating).
    pub fn build(&self) -> Netlist {
        match *self {
            OfdmKernel::PreambleDetector => preamble_detector_netlist(),
            OfdmKernel::Demodulator => demodulator_netlist(),
            OfdmKernel::Frontend { stage_shift } => frontend_netlist(stage_shift),
            OfdmKernel::Downsampler => downsampler_netlist(),
            OfdmKernel::Fft64 { stage_shift } => fft64_netlist(stage_shift),
        }
    }
}

/// Splits a complex integer stream into parallel I and Q word streams.
pub(crate) fn split_iq(samples: &[Cplx<i32>]) -> (Vec<Word>, Vec<Word>) {
    (
        samples.iter().map(|c| Word::new(c.re)).collect(),
        samples.iter().map(|c| Word::new(c.im)).collect(),
    )
}

/// Zips parallel I and Q word streams back into complex samples.
pub(crate) fn zip_iq(i: &[Word], q: &[Word]) -> Vec<Cplx<i32>> {
    assert_eq!(i.len(), q.len(), "I/Q stream length mismatch");
    i.iter()
        .zip(q)
        .map(|(a, b)| Cplx::new(a.value(), b.value()))
        .collect()
}
