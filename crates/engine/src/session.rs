//! Per-terminal session state machines.
//!
//! A [`Session`] is one simulated terminal working through its standard's
//! acquisition pipeline in deadline-scheduled steps. Each step is a
//! bounded unit of work a worker executes on its own array:
//!
//! * **W-CDMA** (paper §3.1): `Idle` (air capture) → `Searching` (path
//!   search on the DSP) → `Tracking` (descramble and despread on the
//!   array, combine and decide) → `Done`.
//! * **802.11a OFDM** (paper §3.2/Fig. 10): `Idle` → `PreambleDetect`
//!   (configuration 2a on the array) → `Demod` (2a unloaded, 2b loaded
//!   in its place, slicing on the array, Viterbi decode) → `Done`.
//!
//! Every array-mapped stage is cross-checked against its golden software
//! model; a divergence fails the session rather than silently returning
//! wrong bits, so cross-session state pollution on a shared array is
//! caught immediately.

use sdr_dsp::fft::Fft64Fixed;
use sdr_dsp::rng::Rng64;
use sdr_dsp::Cplx;
use sdr_ofdm as ofdm;
use sdr_wcdma as wcdma;
use xpp_array::{Result as XppResult, Word};

use crate::config_manager::KernelSpec;
use crate::metrics::{KernelKind, Metrics};
use crate::pool::WorkerArray;
use ofdm::xpp_map::OfdmKernel;
use wcdma::xpp_map::WcdmaKernel;

use ofdm::params::{data_subcarriers, rate, subcarrier_to_bin, RateParams, CP_LEN};
use ofdm::rx::OfdmReceiver;
use wcdma::rake::combiner::decide;
use wcdma::rake::estimator::{estimate_channel, quantize_weights};
use wcdma::rake::finger::{correct, descramble, despread};
use wcdma::rake::searcher::PathSearcher;
use wcdma::tx::{CellConfig, CellTransmitter};
use wcdma::ScramblingCode;

/// W-CDMA slot period in array cycles (666.7 µs at the paper's 50 MHz).
pub const WCDMA_PERIOD_CYCLES: u64 = 33_333;
/// Estimated array cycles per W-CDMA session step (admission control).
pub const WCDMA_JOB_CYCLES: u64 = 3_000;
/// OFDM frame-processing period in array cycles (400 µs at 50 MHz).
pub const OFDM_PERIOD_CYCLES: u64 = 20_000;
/// Estimated array cycles per OFDM session step (admission control).
pub const OFDM_JOB_CYCLES: u64 = 2_500;

/// Which standard a session runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Standard {
    /// W-CDMA rake terminal.
    Wcdma,
    /// 802.11a OFDM terminal.
    Ofdm,
}

/// The per-terminal state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionState {
    /// Nothing captured yet; the next step records the air interface.
    Idle,
    /// W-CDMA: multipath search ahead.
    Searching,
    /// OFDM: short-preamble correlation (configuration 2a) ahead.
    PreambleDetect,
    /// W-CDMA: finger demodulation on the array ahead.
    Tracking,
    /// OFDM: 2a→2b swap and demodulation ahead.
    Demod,
    /// Payload verified against the transmitted bits.
    Done,
    /// The pipeline failed; the reason is attached.
    Failed(String),
    /// Dropped by admission control under overload before completing.
    Shed,
    /// Gave up after repeated faults or crashes; the last reason is
    /// attached.
    DeadLettered(String),
}

impl SessionState {
    /// True once the session needs no further steps.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            SessionState::Done
                | SessionState::Failed(_)
                | SessionState::Shed
                | SessionState::DeadLettered(_)
        )
    }
}

#[derive(Debug)]
enum Kind {
    Wcdma(WcdmaTerminal),
    Ofdm(OfdmTerminal),
}

/// One terminal session, schedulable on any worker of its shard.
#[derive(Debug)]
pub struct Session {
    id: u64,
    deadline: u64,
    period: u64,
    state: SessionState,
    kind: Kind,
    /// Set by the shard supervisor when a step panicked; consumed by the
    /// engine to decide retry vs dead-letter.
    crashed: bool,
    /// Dispatch attempts that ended in a crash so far.
    attempts: u32,
}

impl Session {
    /// Creates a W-CDMA terminal session.
    pub fn wcdma(id: u64, seed: u64) -> Self {
        Session {
            id,
            deadline: WCDMA_PERIOD_CYCLES + id,
            period: WCDMA_PERIOD_CYCLES,
            state: SessionState::Idle,
            kind: Kind::Wcdma(WcdmaTerminal::new(seed)),
            crashed: false,
            attempts: 0,
        }
    }

    /// Creates an 802.11a OFDM terminal session.
    pub fn ofdm(id: u64, seed: u64) -> Self {
        Session {
            id,
            deadline: OFDM_PERIOD_CYCLES + id,
            period: OFDM_PERIOD_CYCLES,
            state: SessionState::Idle,
            kind: Kind::Ofdm(OfdmTerminal::new(seed)),
            crashed: false,
            attempts: 0,
        }
    }

    /// The session id (also its shard-affinity key).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The standard this terminal runs.
    pub fn standard(&self) -> Standard {
        match self.kind {
            Kind::Wcdma(_) => Standard::Wcdma,
            Kind::Ofdm(_) => Standard::Ofdm,
        }
    }

    /// Current state.
    pub fn state(&self) -> &SessionState {
        &self.state
    }

    /// True once no further steps are needed.
    pub fn is_terminal(&self) -> bool {
        self.state.is_terminal()
    }

    /// Deadline (in array cycles) of the session's next step — the
    /// worker-heap EDF key.
    pub fn deadline(&self) -> u64 {
        self.deadline
    }

    /// The array kernel the session's *next* step will activate — the
    /// batching dispatcher's grouping key. `None` for steps that never
    /// touch the array (capture, DSP-side path search) and for terminal
    /// sessions; those steps can run on any gang member without costing
    /// configuration-bus traffic.
    pub fn next_kernel(&self) -> Option<KernelSpec> {
        match (&self.kind, &self.state) {
            (Kind::Wcdma(_), SessionState::Tracking) => {
                Some(KernelSpec::Wcdma(WcdmaKernel::Descrambler))
            }
            (Kind::Ofdm(_), SessionState::PreambleDetect) => {
                Some(KernelSpec::Ofdm(OfdmKernel::PreambleDetector))
            }
            (Kind::Ofdm(_), SessionState::Demod) => Some(KernelSpec::Ofdm(OfdmKernel::Demodulator)),
            _ => None,
        }
    }

    /// The session as an admission-control job for
    /// [`sdr_core::scheduler::schedule_edf`].
    pub fn scheduler_job(&self) -> sdr_core::scheduler::Job {
        let (name, cycles) = match self.standard() {
            Standard::Wcdma => (format!("wcdma-{}", self.id), WCDMA_JOB_CYCLES),
            Standard::Ofdm => (format!("ofdm-{}", self.id), OFDM_JOB_CYCLES),
        };
        sdr_core::scheduler::Job::new(name, cycles, self.period)
    }

    /// Runs one step of the state machine on a worker's array. Terminal
    /// states are recorded in the worker's metrics; stepping a terminal
    /// session is a no-op.
    ///
    /// Fault-class array errors ([`xpp_array::Error::is_fault`]) reaching
    /// this level mean the worker's retry budget is already spent, so the
    /// session is dead-lettered rather than failed: the payload was never
    /// wrong, the platform just could not keep a configuration alive.
    pub fn step(&mut self, worker: &mut WorkerArray) {
        if self.state.is_terminal() {
            return;
        }
        let outcome = match &mut self.kind {
            Kind::Wcdma(t) => t.step(&self.state, worker),
            Kind::Ofdm(t) => t.step(&self.state, worker),
        };
        self.deadline += self.period;
        self.state = match outcome {
            Ok(next) => next,
            Err(e) if e.is_fault() => SessionState::DeadLettered(format!("array fault: {e}")),
            Err(e) => SessionState::Failed(format!("array error: {e}")),
        };
        match &self.state {
            SessionState::Done => Metrics::incr(&worker.metrics().sessions_completed),
            SessionState::Failed(_) => Metrics::incr(&worker.metrics().sessions_failed),
            SessionState::DeadLettered(_) => Metrics::incr(&worker.metrics().dead_letters),
            _ => {}
        }
    }

    /// Marks the session as having crashed its worker (set by the shard
    /// supervisor after catching a panic mid-step).
    pub(crate) fn record_crash(&mut self) {
        self.crashed = true;
        self.attempts += 1;
    }

    /// Consumes the crash flag set by the supervisor.
    pub(crate) fn take_crashed(&mut self) -> bool {
        std::mem::take(&mut self.crashed)
    }

    /// Dispatch attempts that ended in a worker crash.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Terminates the session as shed by admission control.
    pub(crate) fn mark_shed(&mut self) {
        self.state = SessionState::Shed;
    }

    /// Terminates the session as dead-lettered with a reason.
    pub(crate) fn mark_dead_lettered(&mut self, reason: impl Into<String>) {
        self.state = SessionState::DeadLettered(reason.into());
    }

    // -- park / resume split ------------------------------------------------

    /// Shrinks the session to its compact parked form: the kernel-spec
    /// phase, the deadline, and the handful of DSP state words needed to
    /// resume — no sample buffers. Every capture in this engine is a pure
    /// function of the session seed, so a parked session can drop its
    /// received samples entirely and [`rehydrate`](Session::rehydrate)
    /// replays them bit-identically; only the DSP decisions that the
    /// pipeline has already *made* (the found path delay, the coarse
    /// preamble timing) are carried across the park, so no array kernel
    /// ever re-runs.
    ///
    /// Returns `None` for terminal sessions — they have nothing left to
    /// resume into.
    pub fn park(&self) -> Option<ParkedSession> {
        let phase = match (&self.kind, &self.state) {
            (Kind::Wcdma(_), SessionState::Idle) => ParkedPhase::WcdmaStart,
            (Kind::Wcdma(_), SessionState::Searching) => ParkedPhase::WcdmaSearch,
            (Kind::Wcdma(t), SessionState::Tracking) => ParkedPhase::WcdmaTrack {
                delay: t.found_delay as u16,
            },
            (Kind::Ofdm(_), SessionState::Idle) => ParkedPhase::OfdmStart,
            (Kind::Ofdm(_), SessionState::PreambleDetect) => ParkedPhase::OfdmDetect,
            (Kind::Ofdm(t), SessionState::Demod) => ParkedPhase::OfdmDemod {
                coarse: t.coarse as u32,
            },
            _ => return None,
        };
        Some(ParkedSession {
            id: self.id,
            seed: match &self.kind {
                Kind::Wcdma(t) => t.seed,
                Kind::Ofdm(t) => t.seed,
            },
            deadline: self.deadline,
            phase,
            backoff: 0,
            attempts: self.attempts.min(u8::MAX as u32) as u8,
        })
    }

    /// Rebuilds a full session from its parked record. The capture is
    /// replayed from the seed (deterministic), the recorded DSP state
    /// words are restored, and the state machine resumes exactly where it
    /// parked — per-session kernel outcomes are bit-identical to a
    /// never-parked run.
    pub fn rehydrate(parked: &ParkedSession) -> Session {
        let mut s = match parked.phase {
            ParkedPhase::WcdmaStart | ParkedPhase::WcdmaSearch | ParkedPhase::WcdmaTrack { .. } => {
                Session::wcdma(parked.id, parked.seed)
            }
            ParkedPhase::OfdmStart | ParkedPhase::OfdmDetect | ParkedPhase::OfdmDemod { .. } => {
                Session::ofdm(parked.id, parked.seed)
            }
        };
        s.deadline = parked.deadline;
        s.attempts = parked.attempts as u32;
        match (parked.phase, &mut s.kind) {
            (ParkedPhase::WcdmaStart, _) | (ParkedPhase::OfdmStart, _) => {}
            (ParkedPhase::WcdmaSearch, Kind::Wcdma(t)) => {
                s.state = t.capture(); // -> Searching
            }
            (ParkedPhase::WcdmaTrack { delay }, Kind::Wcdma(t)) => {
                let _ = t.capture();
                t.found_delay = delay as usize;
                s.state = SessionState::Tracking;
            }
            (ParkedPhase::OfdmDetect, Kind::Ofdm(t)) => {
                s.state = t.capture(); // -> PreambleDetect
            }
            (ParkedPhase::OfdmDemod { coarse }, Kind::Ofdm(t)) => {
                let _ = t.capture();
                t.coarse = coarse as usize;
                s.state = SessionState::Demod;
            }
            // The constructor above always matches the phase's standard.
            _ => unreachable!("parked phase and rebuilt session standard always agree"),
        }
        s
    }
}

// ---------------------------------------------------------------------------
// Parked sessions
// ---------------------------------------------------------------------------

/// Which pipeline stage a parked session resumes into, plus the DSP state
/// words that stage needs. Kept payload-minimal so [`ParkedSession`] stays
/// a few dozen bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ParkedPhase {
    /// W-CDMA terminal that has not captured its slot yet.
    WcdmaStart,
    /// W-CDMA terminal with a captured slot, path search ahead.
    WcdmaSearch,
    /// W-CDMA terminal tracking: the found path delay is the only DSP
    /// state the finger needs.
    WcdmaTrack { delay: u16 },
    /// OFDM terminal that has not captured its frame yet.
    OfdmStart,
    /// OFDM terminal with a captured frame, preamble detection ahead.
    OfdmDetect,
    /// OFDM terminal past detection: the coarse preamble timing is the
    /// only DSP state demodulation needs.
    OfdmDemod { coarse: u32 },
}

/// The compact parked form of a waiting terminal: what the front-end's
/// parking lot stores instead of a full sample-buffer-bearing
/// [`Session`]. A few dozen bytes — id, seed, deadline, phase (with its
/// DSP state words) and backoff/attempt counters — so millions of
/// terminals can be resident while only the materialised few own sample
/// buffers. See [`Session::park`] / [`Session::rehydrate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParkedSession {
    id: u64,
    seed: u64,
    /// Deadline (array cycles) of the step the session resumes into; the
    /// parking lot's wake key. The frame/slot arrival is one period
    /// earlier ([`ParkedSession::arrival`]).
    deadline: u64,
    phase: ParkedPhase,
    /// Times the session bounced off a full shard queue and was re-parked
    /// (backpressure deferrals).
    backoff: u8,
    /// Crash re-dispatch attempts carried across the park.
    attempts: u8,
}

impl ParkedSession {
    /// Parks a not-yet-started W-CDMA terminal directly — no [`Session`]
    /// (and no heap) is ever built for it until rehydration.
    pub fn new_wcdma(id: u64, seed: u64, arrival: u64) -> Self {
        ParkedSession {
            id,
            seed,
            deadline: arrival + WCDMA_PERIOD_CYCLES,
            phase: ParkedPhase::WcdmaStart,
            backoff: 0,
            attempts: 0,
        }
    }

    /// Parks a not-yet-started OFDM terminal directly (heap-free).
    pub fn new_ofdm(id: u64, seed: u64, arrival: u64) -> Self {
        ParkedSession {
            id,
            seed,
            deadline: arrival + OFDM_PERIOD_CYCLES,
            phase: ParkedPhase::OfdmStart,
            backoff: 0,
            attempts: 0,
        }
    }

    /// The terminal id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The session seed (capture replay key).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The standard the parked terminal runs.
    pub fn standard(&self) -> Standard {
        match self.phase {
            ParkedPhase::WcdmaStart | ParkedPhase::WcdmaSearch | ParkedPhase::WcdmaTrack { .. } => {
                Standard::Wcdma
            }
            _ => Standard::Ofdm,
        }
    }

    /// Deadline (array cycles) of the step the session resumes into.
    pub fn deadline(&self) -> u64 {
        self.deadline
    }

    /// The frame/slot arrival that makes this session runnable — one
    /// processing period before the deadline.
    pub fn arrival(&self) -> u64 {
        self.deadline.saturating_sub(self.period())
    }

    /// The session's processing period in array cycles.
    pub fn period(&self) -> u64 {
        match self.standard() {
            Standard::Wcdma => WCDMA_PERIOD_CYCLES,
            Standard::Ofdm => OFDM_PERIOD_CYCLES,
        }
    }

    /// True when the record is a fresh, never-materialised terminal (no
    /// pipeline progress, no backpressure bounces) — the only kind the
    /// front-end's admission model charges for.
    pub fn is_fresh(&self) -> bool {
        self.backoff == 0 && matches!(self.phase, ParkedPhase::WcdmaStart | ParkedPhase::OfdmStart)
    }

    /// Backpressure deferrals so far.
    pub fn backoff(&self) -> u8 {
        self.backoff
    }

    /// Defers the wake deadline by `cycles` and records one backpressure
    /// bounce — called instead of blocking a submitter thread when the
    /// shard queue is full.
    pub fn defer(&mut self, cycles: u64) {
        self.deadline = self.deadline.saturating_add(cycles);
        self.backoff = self.backoff.saturating_add(1);
    }
}

// ---------------------------------------------------------------------------
// W-CDMA terminal
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct WcdmaTerminal {
    seed: u64,
    cell: CellConfig,
    bits: Vec<u8>,
    true_delay: usize,
    rx: Vec<Cplx<i32>>,
    found_delay: usize,
}

impl WcdmaTerminal {
    fn new(seed: u64) -> Self {
        let mut rng = Rng64::seed_from_u64(seed);
        let bits: Vec<u8> = (0..32).map(|_| (rng.next_u32() & 1) as u8).collect();
        WcdmaTerminal {
            seed,
            cell: CellConfig::default(),
            bits,
            true_delay: 4 + (seed % 8) as usize,
            rx: Vec::new(),
            found_delay: 0,
        }
    }

    fn step(&mut self, state: &SessionState, worker: &mut WorkerArray) -> XppResult<SessionState> {
        match state {
            SessionState::Idle => Ok(self.capture()),
            SessionState::Searching => Ok(self.search()),
            SessionState::Tracking => self.demodulate(worker),
            other => Ok(SessionState::Failed(format!(
                "wcdma session cannot step from {other:?}"
            ))),
        }
    }

    /// Simulates the air interface: transmit, propagate over a single-path
    /// channel with light noise, digitize.
    fn capture(&mut self) -> SessionState {
        use wcdma::channel::{propagate, AdcConfig, CellLink, Path};
        let mut tx = CellTransmitter::new(self.cell);
        let signal = tx.transmit(&self.bits);
        let link = CellLink::new(vec![Path::new(self.true_delay, Cplx::new(0.8, 0.2))]);
        self.rx = propagate(
            &[(signal, link)],
            0.02,
            self.seed ^ 0x5EED,
            AdcConfig::default(),
        );
        SessionState::Searching
    }

    /// CPICH path search (DSP-side in the paper's partitioning).
    fn search(&mut self) -> SessionState {
        let code = ScramblingCode::downlink(self.cell.scrambling_code);
        let hits = PathSearcher::default().search(&self.rx, &code);
        match hits.first() {
            Some(hit) if hit.delay == self.true_delay => {
                self.found_delay = hit.delay;
                SessionState::Tracking
            }
            Some(hit) => SessionState::Failed(format!(
                "path search found delay {} instead of {}",
                hit.delay, self.true_delay
            )),
            None => SessionState::Failed("path search found no paths".into()),
        }
    }

    /// One finger on the array: descramble (Fig. 5) and despread (Fig. 6)
    /// on cached configurations, then estimate/correct/decide on the DSP.
    fn demodulate(&mut self, worker: &mut WorkerArray) -> XppResult<SessionState> {
        let code = ScramblingCode::downlink(self.cell.scrambling_code);
        let delay = self.found_delay;
        let sf = self.cell.dpch.sf;
        let n = ((self.rx.len() - delay) / sf) * sf;

        let descrambled = run_descrambler(worker, &self.rx, &code, delay, n)?;
        if descrambled != descramble(&self.rx, &code, delay, 0, n) {
            return Ok(SessionState::Failed(
                "array descrambler diverged from golden".into(),
            ));
        }
        let symbols = run_despreader(worker, &descrambled, sf, self.cell.dpch.code_index)?;
        if symbols != despread(&descrambled, sf, self.cell.dpch.code_index) {
            return Ok(SessionState::Failed(
                "array despreader diverged from golden".into(),
            ));
        }

        let h = estimate_channel(&self.rx, &code, delay, 8);
        let w = quantize_weights(&[h])[0];
        let corrected = correct(&symbols, w);
        let soft: Vec<Cplx<i64>> = corrected.iter().map(|s| s.widen()).collect();
        let decided = decide(&soft);
        if decided.len() >= self.bits.len() && decided[..self.bits.len()] == self.bits[..] {
            Ok(SessionState::Done)
        } else {
            Ok(SessionState::Failed(
                "decided bits differ from transmitted".into(),
            ))
        }
    }
}

// ---------------------------------------------------------------------------
// OFDM terminal
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct OfdmTerminal {
    bits: Vec<u8>,
    rate: RateParams,
    leading_gap: usize,
    seed: u64,
    rx: Vec<Cplx<i32>>,
    coarse: usize,
}

impl OfdmTerminal {
    fn new(seed: u64) -> Self {
        let mut rng = Rng64::seed_from_u64(seed ^ 0x0FD3);
        let bits: Vec<u8> = (0..96).map(|_| (rng.next_u32() & 1) as u8).collect();
        let Some(rate_12) = rate(12) else {
            unreachable!("12 Mb/s is a standard 802.11a rate")
        };
        OfdmTerminal {
            bits,
            rate: rate_12,
            leading_gap: 64 + (seed % 48) as usize,
            seed,
            rx: Vec::new(),
            coarse: 0,
        }
    }

    fn step(&mut self, state: &SessionState, worker: &mut WorkerArray) -> XppResult<SessionState> {
        match state {
            SessionState::Idle => Ok(self.capture()),
            SessionState::PreambleDetect => self.detect(worker),
            SessionState::Demod => self.demodulate(worker),
            other => Ok(SessionState::Failed(format!(
                "ofdm session cannot step from {other:?}"
            ))),
        }
    }

    fn capture(&mut self) -> SessionState {
        use ofdm::channel::WlanChannel;
        let frame = ofdm::tx::Transmitter::new(self.rate).transmit(&self.bits);
        let channel = WlanChannel {
            leading_gap: self.leading_gap,
            seed: self.seed,
            ..WlanChannel::default()
        };
        self.rx = channel.run(&frame.samples);
        SessionState::PreambleDetect
    }

    /// Configuration 2a on the worker's array; the streamed metric must be
    /// bit-exact with the golden autocorrelation.
    fn detect(&mut self, worker: &mut WorkerArray) -> XppResult<SessionState> {
        let metric = run_preamble_detector(worker, &self.rx)?;
        if metric != ofdm::rx::autocorr_metric(&self.rx) {
            return Ok(SessionState::Failed(
                "array preamble metric diverged from golden".into(),
            ));
        }
        match OfdmReceiver::new(self.rate).detect(&self.rx) {
            Some(coarse) => {
                self.coarse = coarse;
                Ok(SessionState::Demod)
            }
            None => Ok(SessionState::Failed("no preamble plateau found".into())),
        }
    }

    /// The Fig. 10 swap (2a out, 2b in), slicing of the first data symbol
    /// through 2b, and full golden decode of the payload.
    fn demodulate(&mut self, worker: &mut WorkerArray) -> XppResult<SessionState> {
        // The Fig. 10 swap counts the reconfiguration; the slicing below
        // re-activates 2b through the watchdog wrapper (tier-1 free when
        // the swap just loaded it).
        worker.swap(OfdmKernel::PreambleDetector, OfdmKernel::Demodulator)?;

        let sync = OfdmReceiver::new(self.rate);
        let Some(long_start) = sync.fine_timing(&self.rx, self.coarse) else {
            return Ok(SessionState::Failed("fine timing failed".into()));
        };
        let at = long_start + 2 * 64 + CP_LEN;
        if at + 64 > self.rx.len() {
            return Ok(SessionState::Failed(
                "frame truncated before first data symbol".into(),
            ));
        }
        let mut window = [Cplx::<i32>::ZERO; 64];
        window.copy_from_slice(&self.rx[at..at + 64]);
        let spectrum = Fft64Fixed::with_stage_shift(1).run(&window);
        let carriers: Vec<Cplx<i32>> = data_subcarriers()
            .iter()
            .map(|&k| spectrum[subcarrier_to_bin(k)])
            .collect();
        let weights = vec![Cplx::new(512, 0); carriers.len()];
        let slices = run_demodulator(worker, &carriers, &weights)?;
        for (k, (b0, b1)) in slices.iter().enumerate() {
            if *b0 != (carriers[k].re < 0) as u8 || *b1 != (carriers[k].im < 0) as u8 {
                return Ok(SessionState::Failed(format!(
                    "2b slicer diverged from spectrum sign at carrier {k}"
                )));
            }
        }

        match sync.receive(&self.rx, self.bits.len()) {
            Ok(out) if out.bits == self.bits => Ok(SessionState::Done),
            Ok(_) => Ok(SessionState::Failed(
                "decoded payload differs from transmitted".into(),
            )),
            Err(e) => Ok(SessionState::Failed(format!("receiver error: {e}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Array drive helpers (cached-configuration counterparts of the
// one-array-per-kernel wrappers in `sdr_wcdma::xpp_map` / `sdr_ofdm::xpp_map`)
// ---------------------------------------------------------------------------

fn split_iq(samples: &[Cplx<i32>]) -> (Vec<Word>, Vec<Word>) {
    let i = samples.iter().map(|c| Word::new(c.re)).collect();
    let q = samples.iter().map(|c| Word::new(c.im)).collect();
    (i, q)
}

fn zip_iq(i: &[Word], q: &[Word]) -> Vec<Cplx<i32>> {
    i.iter()
        .zip(q)
        .map(|(a, b)| Cplx::new(a.value(), b.value()))
        .collect()
}

fn run_descrambler(
    worker: &mut WorkerArray,
    rx: &[Cplx<i32>],
    code: &ScramblingCode,
    delay: usize,
    n: usize,
) -> XppResult<Vec<Cplx<i32>>> {
    // run_kernel replays the whole body on a watchdog retry, which is safe
    // here: inputs are re-pushed from the captured slices and the reloaded
    // configuration starts from clean token state.
    worker.run_kernel(WcdmaKernel::Descrambler, |worker, cfg| {
        let before = worker.array().stats().cycles;
        let fires_before = worker.array().config_fire_count(cfg);
        let (i, q) = split_iq(&rx[delay..delay + n]);
        let bits: Vec<(u8, u8)> = (0..n).map(|k| code.chip_bits(k)).collect();
        let array = worker.array_mut();
        array.push_input(cfg, "i_in", i)?;
        array.push_input(cfg, "q_in", q)?;
        array.push_input(cfg, "ci", bits.iter().map(|b| Word::new(b.0 as i32)))?;
        array.push_input(cfg, "cq", bits.iter().map(|b| Word::new(b.1 as i32)))?;
        array.run_until_output(cfg, "i_out", n, 16 * n as u64 + 1_000)?;
        array.run_until_idle(1_000)?;
        let i_out = array.drain_output(cfg, "i_out")?;
        let q_out = array.drain_output(cfg, "q_out")?;
        let cycles = worker.array().stats().cycles - before;
        let fires = worker.array().config_fire_count(cfg) - fires_before;
        worker
            .metrics()
            .record_kernel(KernelKind::Descrambler, cycles, fires);
        Ok(zip_iq(&i_out, &q_out))
    })
}

fn run_despreader(
    worker: &mut WorkerArray,
    chips: &[Cplx<i32>],
    sf: usize,
    code_index: usize,
) -> XppResult<Vec<Cplx<i32>>> {
    // The kernel spec carries the spreading factor and OVSF code index —
    // every parameter that shapes the netlist — so sessions with the same
    // cell parameters share one stored compile.
    worker.run_kernel(WcdmaKernel::Despreader { sf, code_index }, |worker, cfg| {
        let before = worker.array().stats().cycles;
        let fires_before = worker.array().config_fire_count(cfg);
        let n_sym = chips.len() / sf;
        let (i, q) = split_iq(&chips[..n_sym * sf]);
        let array = worker.array_mut();
        array.push_input(cfg, "i_in", i)?;
        array.push_input(cfg, "q_in", q)?;
        array.run_until_output(cfg, "i_out", n_sym, 16 * chips.len() as u64 + 2_000)?;
        array.run_until_idle(2_000)?;
        let i_out = array.drain_output(cfg, "i_out")?;
        let q_out = array.drain_output(cfg, "q_out")?;
        let cycles = worker.array().stats().cycles - before;
        let fires = worker.array().config_fire_count(cfg) - fires_before;
        worker
            .metrics()
            .record_kernel(KernelKind::Despreader, cycles, fires);
        Ok(zip_iq(&i_out, &q_out))
    })
}

fn run_preamble_detector(worker: &mut WorkerArray, rx: &[Cplx<i32>]) -> XppResult<Vec<i32>> {
    use ofdm::rx::{AUTOCORR_LAG, AUTOCORR_WINDOW};
    worker.run_kernel(OfdmKernel::PreambleDetector, |worker, cfg| {
        // Fig. 10: a successful search is followed by the 2a→2b swap, so
        // start streaming the demodulator over the configuration bus *now*
        // — the load overlaps the preamble search below, and the swap pays
        // only activation. A watchdog retry re-issues this as a no-op.
        worker.prefetch(OfdmKernel::Demodulator)?;
        let before = worker.array().stats().cycles;
        let fires_before = worker.array().config_fire_count(cfg);
        // A resident detector keeps the previous terminal's tail in its
        // delay lines and running sum. Streaming lag+window zero samples
        // (idle air) drains that history exactly — the window sum of 32
        // zero products is zero — so every session sees the golden
        // zero-history metric.
        let flush = AUTOCORR_LAG + AUTOCORR_WINDOW;
        let n = rx.len();
        let (i, q) = split_iq(rx);
        let array = worker.array_mut();
        array.push_input(cfg, "i_in", std::iter::repeat_n(Word::ZERO, flush).chain(i))?;
        array.push_input(cfg, "q_in", std::iter::repeat_n(Word::ZERO, flush).chain(q))?;
        let expect = flush + n;
        array.run_until_output(cfg, "metric", expect, 20 * expect as u64 + 5_000)?;
        array.run_until_idle(5_000)?;
        let metric = array.drain_output(cfg, "metric")?;
        let cycles = worker.array().stats().cycles - before;
        let fires = worker.array().config_fire_count(cfg) - fires_before;
        worker
            .metrics()
            .record_kernel(KernelKind::PreambleDetector, cycles, fires);
        Ok(metric.iter().skip(flush).map(|w| w.value()).collect())
    })
}

fn run_demodulator(
    worker: &mut WorkerArray,
    carriers: &[Cplx<i32>],
    weights: &[Cplx<i32>],
) -> XppResult<Vec<(u8, u8)>> {
    assert_eq!(carriers.len(), weights.len(), "one weight per carrier");
    worker.run_kernel(OfdmKernel::Demodulator, |worker, cfg| {
        let before = worker.array().stats().cycles;
        let fires_before = worker.array().config_fire_count(cfg);
        let n = carriers.len();
        let (i, q) = split_iq(carriers);
        let (wi, wq) = split_iq(weights);
        let array = worker.array_mut();
        array.push_input(cfg, "i_in", i)?;
        array.push_input(cfg, "q_in", q)?;
        array.push_input(cfg, "wi", wi)?;
        array.push_input(cfg, "wq", wq)?;
        array.run_until_output(cfg, "b0", n, 20 * n as u64 + 5_000)?;
        array.run_until_idle(5_000)?;
        let b0 = array.drain_output(cfg, "b0")?;
        let b1 = array.drain_output(cfg, "b1")?;
        let cycles = worker.array().stats().cycles - before;
        let fires = worker.array().config_fire_count(cfg) - fires_before;
        worker
            .metrics()
            .record_kernel(KernelKind::Demodulator, cycles, fires);
        Ok(b0
            .iter()
            .zip(&b1)
            .map(|(a, b)| (a.value() as u8, b.value() as u8))
            .collect())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use std::sync::Arc;

    fn drive_to_terminal(session: &mut Session, worker: &mut WorkerArray) {
        for _ in 0..8 {
            if session.is_terminal() {
                return;
            }
            session.step(worker);
        }
        panic!(
            "session did not terminate within 8 steps: {:?}",
            session.state()
        );
    }

    #[test]
    fn wcdma_session_walks_to_done() {
        let metrics = Arc::new(Metrics::new());
        let mut worker = WorkerArray::new(8, Arc::clone(&metrics));
        let mut s = Session::wcdma(0, 42);
        assert_eq!(*s.state(), SessionState::Idle);
        s.step(&mut worker);
        assert_eq!(*s.state(), SessionState::Searching);
        s.step(&mut worker);
        assert_eq!(*s.state(), SessionState::Tracking);
        s.step(&mut worker);
        assert_eq!(*s.state(), SessionState::Done);
        let snap = metrics.snapshot();
        assert_eq!(snap.sessions_completed, 1);
        assert!(snap.kernel_jobs[KernelKind::Descrambler.index()] == 1);
        assert!(snap.kernel_cycles[KernelKind::Despreader.index()] > 0);
    }

    #[test]
    fn ofdm_session_walks_to_done_with_a_swap() {
        let metrics = Arc::new(Metrics::new());
        let mut worker = WorkerArray::new(8, Arc::clone(&metrics));
        let mut s = Session::ofdm(1, 7);
        drive_to_terminal(&mut s, &mut worker);
        assert_eq!(*s.state(), SessionState::Done, "session failed");
        let snap = metrics.snapshot();
        assert_eq!(snap.reconfigurations, 1, "the 2a→2b swap happened");
        assert!(snap.kernel_jobs[KernelKind::PreambleDetector.index()] == 1);
        assert!(snap.kernel_jobs[KernelKind::Demodulator.index()] == 1);
    }

    #[test]
    fn next_kernel_tracks_the_state_machine() {
        let metrics = Arc::new(Metrics::new());
        let mut worker = WorkerArray::new(8, metrics);
        let mut s = Session::ofdm(2, 7);
        assert_eq!(s.next_kernel(), None, "capture needs no array");
        s.step(&mut worker);
        assert_eq!(
            s.next_kernel(),
            Some(KernelSpec::Ofdm(OfdmKernel::PreambleDetector))
        );
        s.step(&mut worker);
        assert_eq!(
            s.next_kernel(),
            Some(KernelSpec::Ofdm(OfdmKernel::Demodulator))
        );
        s.step(&mut worker);
        assert_eq!(s.next_kernel(), None, "terminal sessions have no kernel");

        let mut w = Session::wcdma(3, 42);
        w.step(&mut worker); // capture
        assert_eq!(w.next_kernel(), None, "path search is DSP-side");
        w.step(&mut worker); // search
        assert_eq!(
            w.next_kernel(),
            Some(KernelSpec::Wcdma(WcdmaKernel::Descrambler))
        );
    }

    #[test]
    fn deadlines_advance_by_the_period() {
        let metrics = Arc::new(Metrics::new());
        let mut worker = WorkerArray::new(8, metrics);
        let mut s = Session::wcdma(3, 1);
        let d0 = s.deadline();
        s.step(&mut worker);
        assert_eq!(s.deadline(), d0 + WCDMA_PERIOD_CYCLES);
    }

    /// Park/rehydrate at *every* pipeline stage must not change the
    /// terminal outcome or the per-kernel job counts — the front-end's
    /// core invariant (parking drops sample buffers; rehydration replays
    /// them bit-identically from the seed).
    #[test]
    fn park_rehydrate_roundtrip_preserves_outcomes() {
        type Maker = fn(u64, u64) -> Session;
        let makers: [(Maker, usize); 2] = [(Session::wcdma, 3), (Session::ofdm, 3)];
        for (make, steps) in makers {
            let metrics = Arc::new(Metrics::new());
            let mut worker = WorkerArray::new(8, Arc::clone(&metrics));
            // Reference: never parked.
            let mut reference = make(9, 1234);
            drive_to_terminal(&mut reference, &mut worker);
            assert_eq!(*reference.state(), SessionState::Done);
            let ref_snap = metrics.snapshot();

            // Same terminal, parked and rehydrated between every step.
            let metrics = Arc::new(Metrics::new());
            let mut worker = WorkerArray::new(8, Arc::clone(&metrics));
            let mut s = make(9, 1234);
            for _ in 0..steps {
                let parked = s.park().expect("non-terminal sessions park");
                assert_eq!(parked.id(), 9);
                s = Session::rehydrate(&parked);
                s.step(&mut worker);
            }
            assert_eq!(*s.state(), SessionState::Done, "parked run diverged");
            let snap = metrics.snapshot();
            assert_eq!(
                snap.kernel_jobs, ref_snap.kernel_jobs,
                "rehydration must not re-run or skip any array kernel"
            );
        }
    }

    #[test]
    fn parked_record_is_compact_and_terminal_sessions_do_not_park() {
        // The pinned footprint budget: a parked session is a few dozen
        // bytes, never a sample buffer. Bumping this requires a
        // corresponding BENCH_SCALE.json / DESIGN.md §13 update.
        assert!(
            std::mem::size_of::<ParkedSession>() <= 48,
            "ParkedSession grew past the 48-byte budget: {} bytes",
            std::mem::size_of::<ParkedSession>()
        );
        let metrics = Arc::new(Metrics::new());
        let mut worker = WorkerArray::new(8, metrics);
        let mut s = Session::ofdm(1, 7);
        drive_to_terminal(&mut s, &mut worker);
        assert!(s.park().is_none(), "terminal sessions have nothing to park");
    }

    #[test]
    fn fresh_parked_records_defer_and_track_backoff() {
        let mut p = ParkedSession::new_wcdma(3, 42, 1_000);
        assert_eq!(p.arrival(), 1_000);
        assert_eq!(p.deadline(), 1_000 + WCDMA_PERIOD_CYCLES);
        assert_eq!(p.standard(), Standard::Wcdma);
        assert!(p.is_fresh());
        p.defer(500);
        assert_eq!(p.backoff(), 1);
        assert!(!p.is_fresh(), "a bounced record is no longer model-fresh");
        assert_eq!(p.deadline(), 1_000 + WCDMA_PERIOD_CYCLES + 500);

        // Rehydrating a fresh record yields a session at Idle with the
        // parked deadline.
        let s = Session::rehydrate(&p);
        assert_eq!(*s.state(), SessionState::Idle);
        assert_eq!(s.deadline(), p.deadline());
        assert_eq!(s.id(), 3);

        let o = ParkedSession::new_ofdm(4, 7, 0);
        assert_eq!(o.standard(), Standard::Ofdm);
        assert_eq!(o.period(), OFDM_PERIOD_CYCLES);
        assert_eq!(o.seed(), 7);
    }

    #[test]
    fn mid_pipeline_park_carries_dsp_state_words() {
        let metrics = Arc::new(Metrics::new());
        let mut worker = WorkerArray::new(8, metrics);
        let mut s = Session::wcdma(5, 42);
        s.step(&mut worker); // Idle -> Searching
        s.step(&mut worker); // Searching -> Tracking (found_delay set)
        let parked = s.park().expect("tracking sessions park");
        assert!(!parked.is_fresh(), "mid-pipeline records are not fresh");
        let mut back = Session::rehydrate(&parked);
        assert_eq!(*back.state(), SessionState::Tracking);
        back.step(&mut worker);
        assert_eq!(*back.state(), SessionState::Done, "delay word survived");
    }

    #[test]
    fn stepping_a_terminal_session_is_a_noop() {
        let metrics = Arc::new(Metrics::new());
        let mut worker = WorkerArray::new(8, Arc::clone(&metrics));
        let mut s = Session::ofdm(1, 7);
        drive_to_terminal(&mut s, &mut worker);
        let jobs = metrics.snapshot().jobs_run; // pool-level counter: unchanged here
        s.step(&mut worker);
        assert_eq!(*s.state(), SessionState::Done);
        assert_eq!(metrics.snapshot().jobs_run, jobs);
        assert_eq!(metrics.snapshot().sessions_completed, 1, "not recounted");
    }
}
