//! The DSP/microcontroller model: a task-level processor with MIPS
//! accounting.
//!
//! The paper maps "algorithmic parts with low criticality, mostly
//! implementing control code" onto a DSP. We run those algorithms for real
//! (channel estimation, path search, weight computation live in the
//! receiver crates) and charge each invocation a declared instruction cost
//! against a MIPS budget — reproducing the paper's budget arguments without
//! an instruction-set simulator (see DESIGN.md §2).

use std::collections::BTreeMap;

/// A task-level DSP model.
///
/// # Example
///
/// ```
/// use sdr_core::dsp::DspModel;
///
/// let mut dsp = DspModel::new(1_600.0, 200e6); // the paper's 1600-MIPS DSP
/// let sum: i64 = dsp.run("channel-estimation", 5_000, || (0..100).sum());
/// assert_eq!(sum, 4950);
/// assert_eq!(dsp.total_instructions(), 5_000);
/// ```
#[derive(Debug, Clone)]
pub struct DspModel {
    mips: f64,
    clock_hz: f64,
    total_instructions: u64,
    per_task: BTreeMap<String, u64>,
}

impl DspModel {
    /// Creates a DSP with a MIPS rating and clock.
    ///
    /// # Panics
    ///
    /// Panics unless both values are positive.
    pub fn new(mips: f64, clock_hz: f64) -> Self {
        assert!(mips > 0.0 && clock_hz > 0.0);
        DspModel {
            mips,
            clock_hz,
            total_instructions: 0,
            per_task: BTreeMap::new(),
        }
    }

    /// The paper's reference DSP: 1600 MIPS at 200 MHz.
    pub fn reference_200mhz() -> Self {
        Self::new(crate::requirements::DSP_MIPS_AT_200_MHZ, 200e6)
    }

    /// The MIPS rating.
    pub fn mips(&self) -> f64 {
        self.mips
    }

    /// Runs a task, charging `instructions` against the budget.
    pub fn run<T>(&mut self, task: &str, instructions: u64, f: impl FnOnce() -> T) -> T {
        self.total_instructions += instructions;
        *self.per_task.entry(task.to_string()).or_insert(0) += instructions;
        f()
    }

    /// Charges instructions without running anything (for pure accounting).
    pub fn charge(&mut self, task: &str, instructions: u64) {
        self.run(task, instructions, || ());
    }

    /// Total instructions charged.
    pub fn total_instructions(&self) -> u64 {
        self.total_instructions
    }

    /// Instructions charged per task name.
    pub fn task_breakdown(&self) -> &BTreeMap<String, u64> {
        &self.per_task
    }

    /// Wall time the charged work represents on this DSP.
    pub fn busy_seconds(&self) -> f64 {
        self.total_instructions as f64 / (self.mips * 1e6)
    }

    /// Load factor over a real-time window: >1.0 means this DSP could not
    /// keep up (the check behind Fig. 1's argument).
    pub fn utilization_over(&self, window_seconds: f64) -> f64 {
        assert!(window_seconds > 0.0);
        self.busy_seconds() / window_seconds
    }

    /// Equivalent sustained MIPS demand over a window.
    pub fn demand_mips_over(&self, window_seconds: f64) -> f64 {
        self.total_instructions as f64 / (window_seconds * 1e6)
    }

    /// Resets the accounting.
    pub fn reset(&mut self) {
        self.total_instructions = 0;
        self.per_task.clear();
    }

    /// The clock frequency.
    pub fn clock_hz(&self) -> f64 {
        self.clock_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_per_task() {
        let mut dsp = DspModel::reference_200mhz();
        dsp.charge("search", 100);
        dsp.charge("search", 50);
        dsp.charge("estimate", 25);
        assert_eq!(dsp.total_instructions(), 175);
        assert_eq!(dsp.task_breakdown()["search"], 150);
        assert_eq!(dsp.task_breakdown()["estimate"], 25);
    }

    #[test]
    fn busy_time_and_utilization() {
        let mut dsp = DspModel::new(100.0, 100e6); // 100 MIPS
        dsp.charge("x", 1_000_000); // 1e6 instructions → 10 ms
        assert!((dsp.busy_seconds() - 0.01).abs() < 1e-12);
        assert!((dsp.utilization_over(0.01) - 1.0).abs() < 1e-9);
        assert!(dsp.utilization_over(0.005) > 1.0); // overload
        assert!((dsp.demand_mips_over(0.01) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn run_returns_the_closure_result() {
        let mut dsp = DspModel::reference_200mhz();
        let v = dsp.run("t", 10, || 42);
        assert_eq!(v, 42);
    }

    #[test]
    fn reset_clears() {
        let mut dsp = DspModel::reference_200mhz();
        dsp.charge("a", 5);
        dsp.reset();
        assert_eq!(dsp.total_instructions(), 0);
        assert!(dsp.task_breakdown().is_empty());
    }

    #[test]
    #[should_panic]
    fn rejects_zero_mips() {
        DspModel::new(0.0, 1e6);
    }
}
