//! Criterion benches: one group per paper table/figure, plus the ablations
//! DESIGN.md §8 calls out. Array-kernel benches measure simulator
//! throughput (cycles are reported by the `report` binary; wall time here
//! tracks the simulation cost of each kernel).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sdr_bench::{bits, chips_12bit, fft_frame, samples_10bit};
use sdr_dsp::fft::Fft64Fixed;
use sdr_dsp::Cplx;
use sdr_ofdm::channel::WlanChannel;
use sdr_ofdm::convolutional::{depuncture, encode, puncture, viterbi_decode};
use sdr_ofdm::params::{rate, CodeRate};
use sdr_ofdm::rx::{autocorr_metric, OfdmReceiver};
use sdr_ofdm::tx::Transmitter;
use sdr_ofdm::xpp_map::ArrayFft64;
use sdr_wcdma::channel::{propagate, AdcConfig, CellLink, Path};
use sdr_wcdma::rake::finger::{descramble, despread};
use sdr_wcdma::rake::{RakeConfig, RakeReceiver};
use sdr_wcdma::scrambling::ScramblingCode;
use sdr_wcdma::tx::{CellConfig, CellTransmitter};
use sdr_wcdma::xpp_map::{ArrayDescrambler, ArrayMultiplexedDespreader};
use xpp_array::{Array, NetlistBuilder, UnaryOp, Word};

/// Fig. 5 — descrambler: golden model vs array simulation.
fn bench_fig5_descrambler(c: &mut Criterion) {
    let code = ScramblingCode::downlink(7);
    let rx = chips_12bit(2048, 5);
    let mut g = c.benchmark_group("fig5_descrambler");
    g.bench_function("golden", |b| {
        b.iter(|| descramble(std::hint::black_box(&rx), &code, 0, 0, rx.len()))
    });
    g.bench_function("array_sim", |b| {
        b.iter_batched(
            || ArrayDescrambler::new().unwrap(),
            |mut hw| hw.process(&rx, &code, 0, 0, rx.len()).unwrap(),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

/// Fig. 6 — despreader: golden vs the 18-finger multiplexed array kernel.
fn bench_fig6_despreader(c: &mut Criterion) {
    let sf = 64;
    let streams: Vec<Vec<Cplx<i32>>> = (0..18).map(|f| chips_12bit(sf * 4, f as u32)).collect();
    let mut g = c.benchmark_group("fig6_despreader");
    g.bench_function("golden_18fingers", |b| {
        b.iter(|| {
            for s in &streams {
                std::hint::black_box(despread(s, sf, 17));
            }
        })
    });
    g.bench_function("array_sim_18fingers", |b| {
        b.iter_batched(
            || ArrayMultiplexedDespreader::new(18, sf, 17).unwrap(),
            |mut hw| hw.process(&streams).unwrap(),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

/// Fig. 9 — FFT64: golden fixed-point vs array simulation.
fn bench_fig9_fft64(c: &mut Criterion) {
    let frame = fft_frame(11);
    let mut g = c.benchmark_group("fig9_fft64");
    g.bench_function("golden_shift2", |b| {
        let f = Fft64Fixed::with_stage_shift(2);
        b.iter(|| f.run(std::hint::black_box(&frame)))
    });
    g.bench_function("array_sim_shift2", |b| {
        b.iter_batched(
            || ArrayFft64::new(2).unwrap(),
            |mut hw| hw.run(&frame).unwrap(),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

/// Fig. 10 support — the preamble-detection metric (config 2a's function).
fn bench_fig10_detector(c: &mut Criterion) {
    let samples = samples_10bit(4096, 3);
    c.bench_function("fig10_autocorr_metric", |b| {
        b.iter(|| autocorr_metric(std::hint::black_box(&samples)))
    });
}

/// Table 1 / E11 — the full rake receive over one buffer (3 paths).
fn bench_rake_receive(c: &mut Criterion) {
    let data = bits(256, 1);
    let mut tx = CellTransmitter::new(CellConfig::default());
    let signal = tx.transmit(&data);
    let link = CellLink::new(vec![
        Path::new(0, Cplx::new(0.6, 0.1)),
        Path::new(9, Cplx::new(-0.1, 0.5)),
        Path::new(21, Cplx::new(0.3, -0.2)),
    ]);
    let rx = propagate(&[(signal, link)], 0.05, 7, AdcConfig::default());
    let rake = RakeReceiver::new(vec![0], RakeConfig::default());
    c.bench_function("rake_receive_3paths", |b| {
        b.iter(|| rake.receive(std::hint::black_box(&rx)))
    });
}

/// E12 — the full OFDM receive chain at 6 and 54 Mb/s.
fn bench_ofdm_receive(c: &mut Criterion) {
    let mut g = c.benchmark_group("ofdm_receive");
    for mbps in [6u32, 54] {
        let r = rate(mbps).unwrap();
        let data = bits(4 * r.data_bits_per_symbol(), 2);
        let frame = Transmitter::new(r).transmit(&data);
        let rx = WlanChannel::default().run(&frame.samples);
        let receiver = OfdmReceiver::new(r);
        g.bench_function(format!("{mbps}mbps"), |b| {
            b.iter(|| {
                receiver
                    .receive(std::hint::black_box(&rx), data.len())
                    .unwrap()
            })
        });
    }
    g.finish();
}

/// Dedicated-hardware block: the Viterbi decoder.
fn bench_viterbi(c: &mut Criterion) {
    let mut data = bits(480, 5);
    data.extend_from_slice(&[0; 6]);
    let coded = puncture(&encode(&data), CodeRate::R34);
    let llrs: Vec<i32> = coded
        .iter()
        .map(|&b| if b == 0 { 16 } else { -16 })
        .collect();
    let full = depuncture(&llrs, CodeRate::R34);
    c.bench_function("viterbi_480bits_r34", |b| {
        b.iter(|| viterbi_decode(std::hint::black_box(&full)))
    });
}

/// Ablation: channel capacity 1 vs 2 (why the XPP has forward registers).
fn bench_ablation_channel_capacity(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_channel_capacity");
    for cap in [1usize, 2] {
        g.bench_function(format!("cap{cap}"), |b| {
            b.iter_batched(
                || {
                    let mut nl = NetlistBuilder::new("pipe");
                    nl.set_default_capacity(cap);
                    let mut x = nl.input("x");
                    for _ in 0..4 {
                        x = nl.unary(UnaryOp::AddK(Word::ONE), x);
                    }
                    nl.output("y", x);
                    let mut array = Array::xpp64a();
                    let cfg = array.configure(&nl.build().unwrap()).unwrap();
                    array.push_input(cfg, "x", (0..512).map(Word::new)).unwrap();
                    array
                },
                |mut array| array.run_until_idle(100_000).unwrap(),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

/// Ablation: reconfiguration cost — differential 2a→2b swap vs full reload.
fn bench_ablation_reconfig(c: &mut Criterion) {
    use sdr_ofdm::xpp_map::{demodulator_netlist, frontend_netlist, preamble_detector_netlist};
    let mut g = c.benchmark_group("ablation_reconfig");
    g.bench_function("differential_swap", |b| {
        b.iter_batched(
            || {
                let mut array = Array::xpp64a();
                let _c1 = array.configure(&frontend_netlist(2)).unwrap();
                let c2a = array.configure(&preamble_detector_netlist()).unwrap();
                array.run_until_idle(50_000).unwrap();
                (array, c2a)
            },
            |(mut array, c2a)| {
                array.unload(c2a).unwrap();
                let _c2b = array.configure(&demodulator_netlist()).unwrap();
                array.run_until_idle(50_000).unwrap();
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("full_reload", |b| {
        b.iter_batched(
            Array::xpp64a,
            |mut array| {
                let _c1 = array.configure(&frontend_netlist(2)).unwrap();
                let _c2b = array.configure(&demodulator_netlist()).unwrap();
                array.run_until_idle(100_000).unwrap();
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets =
        bench_fig5_descrambler,
        bench_fig6_despreader,
        bench_fig9_fft64,
        bench_fig10_detector,
        bench_rake_receive,
        bench_ofdm_receive,
        bench_viterbi,
        bench_ablation_channel_capacity,
        bench_ablation_reconfig,
}
criterion_main!(benches);
