//! The rake receiver: detection, tracking, descrambling, despreading,
//! channel correction and combining of CDMA signals (paper §3.1).
//!
//! [`RakeReceiver`] is the golden (software) model of the full receiver,
//! orchestrating the per-module golden kernels. The array-mapped versions of
//! the word-level kernels live in [`crate::xpp_map`] and are tested
//! bit-exact against the functions used here.
//!
//! Soft handover: the receiver tracks several cells (scrambling codes)
//! simultaneously and combines fingers across all of them, since every cell
//! transmits the same dedicated-channel bits during handover.

pub mod combiner;
pub mod estimator;
pub mod finger;
pub mod searcher;
pub mod tracker;

use crate::scrambling::ScramblingCode;
use crate::symbols::sttd_decode_fixed;
use sdr_dsp::Cplx;

use combiner::{combine, decide};
use estimator::{
    estimate_channel, estimate_channel_sttd, quantize_weights, quantize_weights_with_max,
    WEIGHT_MAX_STTD,
};
use finger::{correct, descramble, despread, WEIGHT_FRAC_BITS};
use searcher::PathSearcher;

/// Receiver configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RakeConfig {
    /// DPCH spreading factor.
    pub sf: usize,
    /// DPCH OVSF code index.
    pub code_index: usize,
    /// Expect space-time transmit diversity.
    pub sttd: bool,
    /// Path-searcher parameters.
    pub searcher: PathSearcher,
    /// CPICH symbols integrated per channel estimate.
    pub estimation_symbols: usize,
}

impl Default for RakeConfig {
    fn default() -> Self {
        RakeConfig {
            sf: 128,
            code_index: 17,
            sttd: false,
            searcher: PathSearcher::default(),
            estimation_symbols: 8,
        }
    }
}

/// One allocated finger, as reported in the receiver output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FingerReport {
    /// Index of the cell (base station) this finger tracks.
    pub cell: usize,
    /// Path delay in chips.
    pub delay: usize,
    /// Searcher energy of the path.
    pub energy: i64,
    /// Quantised Q9 correction weight (antenna 1).
    pub weight: Cplx<i32>,
    /// Antenna-2 weight (STTD only).
    pub weight2: Option<Cplx<i32>>,
}

/// Receiver output: decided bits plus diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct RakeOutput {
    /// Hard-decision DPCH bits.
    pub bits: Vec<u8>,
    /// The fingers that contributed.
    pub fingers: Vec<FingerReport>,
    /// Soft combined symbols (before decision).
    pub combined: Vec<Cplx<i64>>,
}

/// The golden multi-cell rake receiver.
///
/// # Example
///
/// ```no_run
/// use sdr_wcdma::rake::{RakeConfig, RakeReceiver};
///
/// let receiver = RakeReceiver::new(vec![0, 16], RakeConfig::default());
/// # let rx_samples = vec![];
/// let out = receiver.receive(&rx_samples);
/// println!("{} fingers, {} bits", out.fingers.len(), out.bits.len());
/// ```
#[derive(Debug, Clone)]
pub struct RakeReceiver {
    cells: Vec<ScramblingCode>,
    config: RakeConfig,
}

impl RakeReceiver {
    /// Creates a receiver tracking the given cells (scrambling-code
    /// numbers).
    ///
    /// # Panics
    ///
    /// Panics if no cells are given or a code number is invalid.
    pub fn new(cell_codes: Vec<u32>, config: RakeConfig) -> Self {
        assert!(!cell_codes.is_empty(), "rake needs at least one cell");
        RakeReceiver {
            cells: cell_codes
                .into_iter()
                .map(ScramblingCode::downlink)
                .collect(),
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &RakeConfig {
        &self.config
    }

    /// Number of tracked cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Processes a frame-aligned receive buffer and returns decided bits
    /// with diagnostics.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is shorter than one channel-estimation window.
    pub fn receive(&self, rx: &[Cplx<i32>]) -> RakeOutput {
        let cfg = &self.config;
        // 1. Path search per cell.
        let mut paths: Vec<(usize, searcher::PathHit)> = Vec::new();
        for (cell, code) in self.cells.iter().enumerate() {
            for hit in cfg.searcher.search(rx, code) {
                paths.push((cell, hit));
            }
        }
        assert!(!paths.is_empty(), "rake found no paths");

        // 2. Channel estimation per finger (a DSP task in the paper).
        let mut h1s = Vec::new();
        let mut h2s = Vec::new();
        for &(cell, hit) in &paths {
            let code = &self.cells[cell];
            if cfg.sttd {
                let (h1, h2) = estimate_channel_sttd(rx, code, hit.delay, cfg.estimation_symbols);
                h1s.push(h1);
                h2s.push(h2);
            } else {
                h1s.push(estimate_channel(
                    rx,
                    code,
                    hit.delay,
                    cfg.estimation_symbols,
                ));
            }
        }
        // Joint quantisation preserves relative finger weighting. The STTD
        // decode sums four products per component, so its weights keep one
        // extra headroom bit.
        let all: Vec<Cplx<f64>> = h1s.iter().chain(h2s.iter()).copied().collect();
        let quantized = if cfg.sttd {
            quantize_weights_with_max(&all, WEIGHT_MAX_STTD)
        } else {
            quantize_weights(&all)
        };
        let (w1s, w2s) = quantized.split_at(h1s.len());

        // 3. Descramble + despread + correct per finger.
        let mut corrected_streams: Vec<Vec<Cplx<i32>>> = Vec::new();
        let mut reports = Vec::new();
        for (f, &(cell, hit)) in paths.iter().enumerate() {
            let code = &self.cells[cell];
            let n_sym = (rx.len() - hit.delay) / cfg.sf;
            let n_chips = n_sym * cfg.sf;
            let descrambled = descramble(rx, code, hit.delay, 0, n_chips);
            let symbols = despread(&descrambled, cfg.sf, cfg.code_index);
            if cfg.sttd {
                let w1 = w1s[f];
                let w2 = w2s[f];
                let mut decoded = Vec::with_capacity(symbols.len());
                for pair in symbols.chunks_exact(2) {
                    let (s1, s2) = sttd_decode_fixed(pair[0], pair[1], w1, w2, WEIGHT_FRAC_BITS);
                    decoded.push(s1);
                    decoded.push(s2);
                }
                corrected_streams.push(decoded);
                reports.push(FingerReport {
                    cell,
                    delay: hit.delay,
                    energy: hit.energy,
                    weight: w1,
                    weight2: Some(w2),
                });
            } else {
                corrected_streams.push(correct(&symbols, w1s[f]));
                reports.push(FingerReport {
                    cell,
                    delay: hit.delay,
                    energy: hit.energy,
                    weight: w1s[f],
                    weight2: None,
                });
            }
        }

        // 4. Maximal-ratio combining and decision.
        let combined = combine(&corrected_streams);
        let bits = decide(&combined);
        RakeOutput {
            bits,
            fingers: reports,
            combined,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{propagate, AdcConfig, CellLink, Path};
    use crate::tx::{CellConfig, CellTransmitter, DpchConfig};
    use sdr_dsp::metrics::BerCounter;

    fn run_link(
        cells: Vec<(CellConfig, CellLink)>,
        bits: &[u8],
        sigma: f64,
        rake_cfg: RakeConfig,
        seed: u64,
    ) -> RakeOutput {
        let mut signals = Vec::new();
        let mut codes = Vec::new();
        for (cfg, link) in cells {
            let mut tx = CellTransmitter::new(cfg);
            let sig = tx.transmit(bits);
            codes.push(cfg.scrambling_code);
            signals.push((sig, link));
        }
        let rx = propagate(&signals, sigma, seed, AdcConfig::default());
        RakeReceiver::new(codes, rake_cfg).receive(&rx)
    }

    fn test_bits(n: usize) -> Vec<u8> {
        (0..n).map(|i| ((i * 7 + i / 3) % 2) as u8).collect()
    }

    #[test]
    fn clean_single_path_recovers_bits() {
        let bits = test_bits(64);
        let cfg = CellConfig::default();
        let link = CellLink::new(vec![Path::new(4, Cplx::new(0.8, 0.4))]);
        let out = run_link(vec![(cfg, link)], &bits, 0.0, RakeConfig::default(), 1);
        assert_eq!(&out.bits[..bits.len()], &bits[..]);
        assert_eq!(out.fingers.len(), 1);
        assert_eq!(out.fingers[0].delay, 4);
    }

    #[test]
    fn multipath_combining_beats_single_finger() {
        let bits = test_bits(128);
        let cfg = CellConfig::default();
        let link = CellLink::new(vec![
            Path::new(0, Cplx::new(0.6, 0.0)),
            Path::new(9, Cplx::new(0.0, 0.55)),
            Path::new(23, Cplx::new(-0.4, 0.3)),
        ]);
        let sigma = 0.45;
        let multi = run_link(
            vec![(cfg, link.clone())],
            &bits,
            sigma,
            RakeConfig {
                searcher: PathSearcher {
                    max_paths: 3,
                    ..Default::default()
                },
                ..Default::default()
            },
            42,
        );
        let single = run_link(
            vec![(cfg, link)],
            &bits,
            sigma,
            RakeConfig {
                searcher: PathSearcher {
                    max_paths: 1,
                    ..Default::default()
                },
                ..Default::default()
            },
            42,
        );
        let mut ber_multi = BerCounter::new();
        ber_multi.update(&bits, &multi.bits[..bits.len()]);
        let mut ber_single = BerCounter::new();
        ber_single.update(&bits, &single.bits[..bits.len()]);
        assert!(multi.fingers.len() > single.fingers.len());
        assert!(
            ber_multi.ber() <= ber_single.ber(),
            "rake combining should not lose: {} vs {}",
            ber_multi.ber(),
            ber_single.ber()
        );
    }

    #[test]
    fn soft_handover_two_cells() {
        let bits = test_bits(64);
        let cell_a = CellConfig {
            scrambling_code: 0,
            ..Default::default()
        };
        let cell_b = CellConfig {
            scrambling_code: 32,
            ..Default::default()
        };
        let link_a = CellLink::new(vec![Path::new(2, Cplx::new(0.5, 0.2))]);
        let link_b = CellLink::new(vec![Path::new(11, Cplx::new(-0.1, 0.55))]);
        let out = run_link(
            vec![(cell_a, link_a), (cell_b, link_b)],
            &bits,
            0.05,
            RakeConfig::default(),
            3,
        );
        // A late finger sees fewer whole symbols, so the combined stream may
        // be a couple of symbols short of the transmitted count.
        let n = bits.len().min(out.bits.len());
        assert!(n >= bits.len() - 4, "too few decoded bits: {n}");
        assert_eq!(&out.bits[..n], &bits[..n]);
        // Fingers from both cells.
        assert!(out.fingers.iter().any(|f| f.cell == 0));
        assert!(out.fingers.iter().any(|f| f.cell == 1));
    }

    #[test]
    fn sttd_link_decodes_cleanly() {
        let bits = test_bits(64);
        let cfg = CellConfig {
            dpch: DpchConfig {
                sttd: true,
                ..Default::default()
            },
            ..Default::default()
        };
        let link = CellLink::with_diversity(
            vec![Path::new(0, Cplx::new(0.7, 0.1))],
            vec![Path::new(0, Cplx::new(-0.2, 0.6))],
        );
        let out = run_link(
            vec![(cfg, link)],
            &bits,
            0.0,
            RakeConfig {
                sttd: true,
                ..Default::default()
            },
            9,
        );
        assert_eq!(&out.bits[..bits.len()], &bits[..]);
        assert!(out.fingers[0].weight2.is_some());
    }

    #[test]
    fn higher_noise_increases_errors_monotonically_in_trend() {
        let bits = test_bits(256);
        let cfg = CellConfig::default();
        let link = CellLink::new(vec![Path::new(0, Cplx::new(0.7, 0.0))]);
        let mut bers = Vec::new();
        for &sigma in &[0.2, 0.9] {
            let out = run_link(
                vec![(cfg, link.clone())],
                &bits,
                sigma,
                RakeConfig::default(),
                17,
            );
            let mut ber = BerCounter::new();
            ber.update(&bits, &out.bits[..bits.len()]);
            bers.push(ber.ber());
        }
        assert!(bers[1] >= bers[0], "{bers:?}");
    }
}
