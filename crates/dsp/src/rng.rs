//! Seeded, dependency-free pseudo-random number generation.
//!
//! The build environment pins no external crates, so the workspace carries
//! its own generator: a [xoshiro256**](https://prng.di.unimi.it/) core
//! seeded through SplitMix64. Every consumer (the synthetic channels in
//! [`crate::noise`], the engine's workload generators, the property-test
//! shim) seeds explicitly, keeping all experiments reproducible.

/// A xoshiro256** generator seeded via SplitMix64.
///
/// Deterministic per seed, `Send`, and fast enough to be irrelevant next to
/// the array simulation it feeds.
///
/// # Example
///
/// ```
/// use sdr_dsp::rng::Rng64;
///
/// let mut a = Rng64::seed_from_u64(7);
/// let mut b = Rng64::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: [u64; 4],
}

/// Advances a SplitMix64 state and returns the next output word.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut state = [0u64; 4];
        for s in &mut state {
            *s = splitmix64(&mut sm);
        }
        // xoshiro256** is only degenerate on the all-zero state, which
        // SplitMix64 cannot produce from any seed; guard anyway.
        if state == [0; 4] {
            state[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Rng64 { state }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// The next 32-bit output.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform value in `[0, bound)`; `bound` must be nonzero.
    ///
    /// Uses the widening-multiply technique, whose bias is < 2⁻⁶⁴ —
    /// immaterial for simulation workloads.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below: zero bound");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A uniform `i64` in the inclusive range `[lo, hi]`.
    pub fn next_in_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "next_in_i64: empty range");
        let span = (hi as i128 - lo as i128 + 1) as u128;
        if span > u64::MAX as u128 {
            return self.next_u64() as i64; // full-width range
        }
        lo.wrapping_add(self.next_below(span as u64) as i64)
    }

    /// A pair of independent standard-normal variates (Box–Muller).
    pub fn next_gaussian_pair(&mut self) -> (f64, f64) {
        let u1: f64 = loop {
            let u = self.next_f64();
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        (r * theta.cos(), r * theta.sin())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = Rng64::seed_from_u64(1);
        let mut b = Rng64::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng64::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = Rng64::seed_from_u64(5);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = Rng64::seed_from_u64(7);
        for bound in [1u64, 2, 3, 17, 1000] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_in_i64_covers_range() {
        let mut r = Rng64::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = r.next_in_i64(-2, 2);
            assert!((-2..=2).contains(&v));
            seen[(v + 2) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "not all values hit: {seen:?}");
    }

    #[test]
    fn gaussian_moments() {
        let mut r = Rng64::seed_from_u64(11);
        let n = 50_000;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for _ in 0..n {
            let (a, b) = r.next_gaussian_pair();
            sum += a + b;
            sq += a * a + b * b;
        }
        let mean = sum / (2 * n) as f64;
        let var = sq / (2 * n) as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }
}
