//! Value-generation strategies: ranges, tuples, `prop_map`, unions.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike the real proptest there is no shrinking: `generate` draws one
/// value per call from the deterministic [`TestRng`].
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Boxes a strategy for storage in a heterogeneous union.
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice over boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Creates a union; panics on an empty arm list.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.arms.len() as u64) as usize;
        self.arms[pick].generate(rng)
    }
}

/// Full-range generation for a primitive type.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — the full-range strategy for `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(std::marker::PhantomData)
}

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
any_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}
range_strategies!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + (hi - lo) * rng.unit_f64()
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(3);
        for _ in 0..500 {
            let v = (10i32..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (0u8..=1).generate(&mut rng);
            assert!(w <= 1);
            let f = (-1.5f64..2.5).generate(&mut rng);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn map_and_tuple_compose() {
        let strat = (0i32..4, 0i32..4).prop_map(|(a, b)| a * 10 + b);
        let mut rng = TestRng::new(9);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((0..34).contains(&v));
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let u = Union::new(vec![
            boxed(Just(1i32)),
            boxed(Just(2i32)),
            boxed(Just(3i32)),
        ]);
        let mut rng = TestRng::new(11);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[(u.generate(&mut rng) - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
