//! The 802.11a convolutional code: K=7 encoder (generators 133/171 octal),
//! puncturing to rates 2/3 and 3/4, and a soft-decision Viterbi decoder.
//!
//! In the paper's partitioning (Fig. 8) the Viterbi decoder is *dedicated
//! hardware* — here it is a cycle-cost-annotated software block registered
//! with the platform model.

use crate::params::CodeRate;

/// Constraint length.
pub const CONSTRAINT: usize = 7;

/// Number of trellis states.
pub const STATES: usize = 64;

/// Generator polynomial A (133 octal) as a delay mask (bit k = delay k).
const G_A: u32 = 0b110_1101;

/// Generator polynomial B (171 octal) as a delay mask.
const G_B: u32 = 0b100_1111;

#[inline]
fn parity(v: u32) -> u8 {
    (v.count_ones() & 1) as u8
}

/// Encodes a bit sequence at rate 1/2, appending nothing: the caller adds
/// the 6 zero tail bits that terminate the trellis.
///
/// Output: `[a0, b0, a1, b1, …]`.
pub fn encode(bits: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(bits.len() * 2);
    let mut state = 0u32; // bit k-1 holds x[n-k]
    for &b in bits {
        let reg = (state << 1) | (b as u32 & 1);
        out.push(parity(reg & G_A));
        out.push(parity(reg & G_B));
        state = reg & (STATES as u32 - 1);
    }
    out
}

/// Punctures a rate-1/2 coded stream to the requested rate.
///
/// Patterns per 802.11a §17.3.5.6: rate 2/3 drops every second B bit; rate
/// 3/4 drops B2 and A3 of every 6-bit group.
pub fn puncture(coded: &[u8], rate: CodeRate) -> Vec<u8> {
    match rate {
        CodeRate::R12 => coded.to_vec(),
        CodeRate::R23 => coded
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 4 != 3)
            .map(|(_, &b)| b)
            .collect(),
        CodeRate::R34 => coded
            .iter()
            .enumerate()
            .filter(|(i, _)| !matches!(i % 6, 3 | 4))
            .map(|(_, &b)| b)
            .collect(),
    }
}

/// Re-inserts zero LLRs at punctured positions so the decoder sees a
/// rate-1/2 stream. `llrs` uses the convention positive = bit 0.
pub fn depuncture(llrs: &[i32], rate: CodeRate) -> Vec<i32> {
    match rate {
        CodeRate::R12 => llrs.to_vec(),
        CodeRate::R23 => {
            let mut out = Vec::with_capacity(llrs.len() * 4 / 3 + 4);
            for (i, &l) in llrs.iter().enumerate() {
                out.push(l);
                if i % 3 == 2 {
                    out.push(0); // the dropped B bit
                }
            }
            out
        }
        CodeRate::R34 => {
            let mut out = Vec::with_capacity(llrs.len() * 3 / 2 + 6);
            for (i, &l) in llrs.iter().enumerate() {
                match i % 4 {
                    2 => {
                        out.push(l);
                        out.push(0); // B2
                    }
                    3 => {
                        out.push(0); // A3
                        out.push(l);
                    }
                    _ => out.push(l),
                }
            }
            out
        }
    }
}

/// Soft-decision Viterbi decoder over a zero-terminated trellis.
///
/// `llrs` holds one value per rate-1/2 coded bit (`[a0, b0, a1, b1, …]`,
/// positive = bit 0, magnitude = confidence). Returns the decoded
/// information bits *including* the tail; callers strip the final 6 zeros.
///
/// # Panics
///
/// Panics if the LLR count is odd.
pub fn viterbi_decode(llrs: &[i32]) -> Vec<u8> {
    assert!(
        llrs.len().is_multiple_of(2),
        "viterbi: LLR count must be even"
    );
    let steps = llrs.len() / 2;
    const NEG: i64 = i64::MIN / 4;
    let mut metric = [NEG; STATES];
    metric[0] = 0; // encoder starts zeroed
                   // decisions[t] bit ns = the *top bit of the winning predecessor* of
                   // state ns at step t. The input bit itself needs no storage: a successor
                   // state is `ns = ((prev << 1) | input) & 63`, so `input = ns & 1`.
    let mut decisions: Vec<u64> = Vec::with_capacity(steps);

    // Precompute branch outputs per successor state and predecessor-top bit.
    // reg for (prev, input) is (prev << 1) | input; with prev =
    // (ns >> 1) | (top << 5), reg = (ns & 63) | (top << 6) ... plus the
    // shifted low bits — computed directly below for clarity.
    let mut outputs = [[(0u8, 0u8); 2]; STATES];
    for (ns, out) in outputs.iter_mut().enumerate() {
        let input = (ns & 1) as u32;
        for (top, slot) in out.iter_mut().enumerate() {
            let prev = ((ns >> 1) | (top << 5)) as u32;
            let reg = (prev << 1) | input;
            *slot = (parity(reg & G_A), parity(reg & G_B));
        }
    }

    for t in 0..steps {
        let la = llrs[2 * t] as i64;
        let lb = llrs[2 * t + 1] as i64;
        let mut next = [NEG; STATES];
        let mut decide = 0u64;
        for ns in 0..STATES {
            for (top, &(a_bit, b_bit)) in outputs[ns].iter().enumerate() {
                let prev = (ns >> 1) | (top << 5);
                if metric[prev] == NEG {
                    continue;
                }
                let gain = if a_bit == 0 { la } else { -la } + if b_bit == 0 { lb } else { -lb };
                let cand = metric[prev] + gain;
                if cand > next[ns] {
                    next[ns] = cand;
                    if top == 1 {
                        decide |= 1 << ns;
                    } else {
                        decide &= !(1 << ns);
                    }
                }
            }
        }
        metric = next;
        decisions.push(decide);
    }

    // Traceback from state 0 (zero-terminated trellis).
    let mut bits = vec![0u8; steps];
    let mut state = 0usize;
    for t in (0..steps).rev() {
        bits[t] = (state & 1) as u8;
        let top = ((decisions[t] >> state) & 1) as usize;
        state = (state >> 1) | (top << 5);
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoder_known_vector() {
        // All-zero input stays all-zero.
        assert_eq!(encode(&[0, 0, 0]), vec![0, 0, 0, 0, 0, 0]);
        // Single 1: outputs follow the generator taps as the bit shifts.
        let coded = encode(&[1, 0, 0, 0, 0, 0, 0]);
        // First pair: reg=1 → a=g0(0)=1, b=g1(0)=1.
        assert_eq!(&coded[..2], &[1, 1]);
        // Impulse response spans the constraint length then returns to zero.
        assert_eq!(&coded[12..14], &[1, 1]); // delay-6 taps of both generators
    }

    #[test]
    fn puncture_rates_lengths() {
        let coded: Vec<u8> = (0..24).map(|i| (i % 2) as u8).collect();
        assert_eq!(puncture(&coded, CodeRate::R12).len(), 24);
        assert_eq!(puncture(&coded, CodeRate::R23).len(), 18);
        assert_eq!(puncture(&coded, CodeRate::R34).len(), 16);
    }

    fn roundtrip(bits: &[u8], rate: CodeRate, flips: &[usize]) -> Vec<u8> {
        let mut data = bits.to_vec();
        data.extend_from_slice(&[0; 6]); // tail
        let coded = puncture(&encode(&data), rate);
        let mut llrs: Vec<i32> = coded.iter().map(|&b| if b == 0 { 8 } else { -8 }).collect();
        for &f in flips {
            let idx = f % llrs.len();
            llrs[idx] = -llrs[idx];
        }
        let decoded = viterbi_decode(&depuncture(&llrs, rate));
        decoded[..bits.len()].to_vec()
    }

    fn test_bits(n: usize) -> Vec<u8> {
        (0..n).map(|i| ((i * 13 + i / 5 + 1) % 2) as u8).collect()
    }

    #[test]
    fn viterbi_decodes_clean_rate_half() {
        let bits = test_bits(96);
        assert_eq!(roundtrip(&bits, CodeRate::R12, &[]), bits);
    }

    #[test]
    fn viterbi_decodes_clean_punctured_rates() {
        let bits = test_bits(144);
        assert_eq!(roundtrip(&bits, CodeRate::R23, &[]), bits);
        assert_eq!(roundtrip(&bits, CodeRate::R34, &[]), bits);
    }

    #[test]
    fn viterbi_corrects_scattered_errors() {
        let bits = test_bits(192);
        // Flip several well-separated coded bits: free distance 10 at rate
        // 1/2 corrects them easily.
        assert_eq!(roundtrip(&bits, CodeRate::R12, &[11, 97, 203, 331]), bits);
    }

    #[test]
    fn viterbi_corrects_errors_after_puncturing() {
        let bits = test_bits(96);
        assert_eq!(roundtrip(&bits, CodeRate::R34, &[17, 83]), bits);
    }

    #[test]
    #[should_panic]
    fn viterbi_rejects_odd_llr_count() {
        viterbi_decode(&[1, 2, 3]);
    }

    #[test]
    fn soft_confidence_beats_hard_on_weak_bits() {
        // A low-confidence wrong bit must be overridden by strong neighbours.
        let bits = test_bits(64);
        let mut data = bits.clone();
        data.extend_from_slice(&[0; 6]);
        let coded = encode(&data);
        let mut llrs: Vec<i32> = coded
            .iter()
            .map(|&b| if b == 0 { 100 } else { -100 })
            .collect();
        // Weakly wrong bits.
        llrs[10] = if coded[10] == 0 { -1 } else { 1 };
        llrs[11] = if coded[11] == 0 { -1 } else { 1 };
        let decoded = viterbi_decode(&llrs);
        assert_eq!(&decoded[..bits.len()], &bits[..]);
    }

    #[test]
    fn depuncture_restores_length() {
        let llrs: Vec<i32> = (0..18).map(|i| i + 1).collect();
        let r23 = depuncture(&llrs, CodeRate::R23);
        assert_eq!(r23.len(), 24);
        assert_eq!(r23.iter().filter(|&&l| l == 0).count(), 6);
        let llrs: Vec<i32> = (0..16).map(|i| i + 1).collect();
        let r34 = depuncture(&llrs, CodeRate::R34);
        assert_eq!(r34.len(), 24);
        assert_eq!(r34.iter().filter(|&&l| l == 0).count(), 8);
    }
}
