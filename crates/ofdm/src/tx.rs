//! The 802.11a transmitter: the access-point side of the WLAN link
//! (substitute for live infrastructure, DESIGN.md §2).
//!
//! Frame structure: short training field (160 samples) + long training
//! field (160) + data OFDM symbols (80 each). The data field carries a
//! 16-bit all-zero SERVICE field, the PSDU bits, 6 tail zeros and pad bits,
//! scrambled (with the tail re-zeroed), convolutionally encoded, punctured,
//! interleaved and mapped per the configured rate.
//!
//! The SIGNAL field is omitted: the receiver under test is told the rate
//! out of band (documented simplification — the paper's Fig. 8 does not
//! exercise SIGNAL decoding either).

use crate::convolutional::{encode, puncture};
use crate::interleaver::interleave;
use crate::modulation::map_bits;
use crate::params::{
    data_subcarriers, subcarrier_to_bin, RateParams, CP_LEN, FFT_LEN, PILOT_SUBCARRIERS,
};
use crate::preamble::{long_training_field, short_training_field};
use crate::scrambler::{pilot_polarity, Scrambler};
use sdr_dsp::fft::ifft;
use sdr_dsp::Cplx;

/// Number of SERVICE bits (all zero) prepended to the PSDU.
pub const SERVICE_BITS: usize = 16;

/// Number of tail bits terminating the convolutional code.
pub const TAIL_BITS: usize = 6;

/// The default scrambler seed used by this implementation.
pub const DEFAULT_SCRAMBLER_SEED: u32 = 0x5D;

/// A transmitted frame plus the metadata the test harness needs.
#[derive(Debug, Clone)]
pub struct TxFrame {
    /// Baseband samples at 20 Msps (preambles + data symbols).
    pub samples: Vec<Cplx<f64>>,
    /// Number of data OFDM symbols.
    pub data_symbols: usize,
    /// The PSDU bits carried (before padding).
    pub psdu_bits: usize,
}

/// Builds the frequency-domain bins of one data symbol (48 points +
/// 4 pilots with polarity `p`), returning the 80-sample time symbol.
pub fn modulate_symbol(points: &[Cplx<f64>], polarity: i32) -> Vec<Cplx<f64>> {
    assert_eq!(points.len(), 48, "one OFDM symbol carries 48 data points");
    let mut bins = [Cplx::<f64>::ZERO; FFT_LEN];
    for (k, &pt) in data_subcarriers().iter().zip(points) {
        bins[subcarrier_to_bin(*k)] = pt;
    }
    let pilot_vals = [1, 1, 1, -1];
    for (k, v) in PILOT_SUBCARRIERS.iter().zip(pilot_vals) {
        bins[subcarrier_to_bin(*k)] = Cplx::new((v * polarity) as f64, 0.0);
    }
    let time: Vec<Cplx<f64>> = ifft(&bins)
        .iter()
        .map(|v| {
            Cplx::new(
                v.re * crate::preamble::TIME_SCALE,
                v.im * crate::preamble::TIME_SCALE,
            )
        })
        .collect();
    let mut out = Vec::with_capacity(FFT_LEN + CP_LEN);
    out.extend_from_slice(&time[FFT_LEN - CP_LEN..]);
    out.extend_from_slice(&time);
    out
}

/// The 802.11a transmitter.
///
/// # Example
///
/// ```
/// use sdr_ofdm::params::rate;
/// use sdr_ofdm::tx::Transmitter;
///
/// let tx = Transmitter::new(rate(12).unwrap());
/// let bits: Vec<u8> = (0..200).map(|i| (i % 2) as u8).collect();
/// let frame = tx.transmit(&bits);
/// assert_eq!(frame.psdu_bits, 200);
/// assert!(frame.samples.len() > 320); // preambles + data
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Transmitter {
    rate: RateParams,
    scrambler_seed: u32,
    signal_field: bool,
}

impl Transmitter {
    /// Creates a transmitter for one rate point.
    pub fn new(rate: RateParams) -> Self {
        Transmitter {
            rate,
            scrambler_seed: DEFAULT_SCRAMBLER_SEED,
            signal_field: false,
        }
    }

    /// Overrides the scrambler seed.
    pub fn with_scrambler_seed(mut self, seed: u32) -> Self {
        self.scrambler_seed = seed;
        self
    }

    /// Enables the SIGNAL field (§17.3.4): one BPSK rate-1/2 symbol
    /// carrying RATE and LENGTH between the long preamble and the data.
    /// The PSDU must then be a whole number of octets (≤ 4095).
    pub fn with_signal_field(mut self) -> Self {
        self.signal_field = true;
        self
    }

    /// The configured rate.
    pub fn rate(&self) -> RateParams {
        self.rate
    }

    /// Assembles, encodes and modulates one frame carrying `psdu` bits.
    pub fn transmit(&self, psdu: &[u8]) -> TxFrame {
        let ndbps = self.rate.data_bits_per_symbol();
        let payload = SERVICE_BITS + psdu.len() + TAIL_BITS;
        let n_sym = payload.div_ceil(ndbps);
        let total_bits = n_sym * ndbps;

        // SERVICE + PSDU + tail + pad.
        let mut bits = vec![0u8; total_bits];
        bits[SERVICE_BITS..SERVICE_BITS + psdu.len()].copy_from_slice(psdu);
        // Scramble everything, then force the tail back to zero so the
        // decoder's trellis terminates (17.3.5.2/17.3.5.3).
        let mut scrambler = Scrambler::new(self.scrambler_seed);
        scrambler.scramble_in_place(&mut bits);
        for b in &mut bits[SERVICE_BITS + psdu.len()..SERVICE_BITS + psdu.len() + TAIL_BITS] {
            *b = 0;
        }

        // Encode, puncture, interleave per symbol, map, modulate.
        let coded = puncture(&encode(&bits), self.rate.code_rate);
        let ncbps = self.rate.coded_bits_per_symbol();
        debug_assert_eq!(coded.len(), n_sym * ncbps);
        let polarity = pilot_polarity();

        let mut samples = Vec::with_capacity(320 + (n_sym + 1) * 80);
        samples.extend(short_training_field());
        samples.extend(long_training_field());
        if self.signal_field {
            assert!(
                psdu.len().is_multiple_of(8),
                "SIGNAL's LENGTH field counts octets"
            );
            let octets = psdu.len() / 8;
            let points = crate::signal_field::signal_points(self.rate, octets);
            // The SIGNAL symbol uses pilot polarity p0.
            samples.extend(modulate_symbol(&points, polarity[0]));
        }
        for (s, sym_bits) in coded.chunks(ncbps).enumerate() {
            let interleaved = interleave(sym_bits, self.rate.modulation);
            let points = map_bits(&interleaved, self.rate.modulation);
            // Data symbols are indexed from 1 (index 0 is the SIGNAL symbol
            // in the standard's polarity numbering).
            let p = polarity[(s + 1) % polarity.len()];
            samples.extend(modulate_symbol(&points, p));
        }
        TxFrame {
            samples,
            data_symbols: n_sym,
            psdu_bits: psdu.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::rate;

    #[test]
    fn frame_length_matches_symbol_count() {
        let tx = Transmitter::new(rate(6).unwrap());
        let frame = tx.transmit(&[0u8; 100]);
        // 6 Mb/s: 24 data bits/symbol; (16+100+6)/24 → 6 symbols.
        assert_eq!(frame.data_symbols, 6);
        assert_eq!(frame.samples.len(), 320 + 6 * 80);
    }

    #[test]
    fn higher_rates_use_fewer_symbols() {
        let bits = vec![1u8; 800];
        let slow = Transmitter::new(rate(6).unwrap()).transmit(&bits);
        let fast = Transmitter::new(rate(54).unwrap()).transmit(&bits);
        assert!(fast.data_symbols * 4 < slow.data_symbols);
    }

    #[test]
    fn symbol_has_cyclic_prefix() {
        let points = vec![Cplx::new(0.2, -0.1); 48];
        let sym = modulate_symbol(&points, 1);
        assert_eq!(sym.len(), 80);
        for n in 0..CP_LEN {
            assert!((sym[n] - sym[n + FFT_LEN]).mag() < 1e-12);
        }
    }

    #[test]
    fn average_power_is_moderate() {
        let tx = Transmitter::new(rate(54).unwrap());
        let bits: Vec<u8> = (0..432).map(|i| ((i * 11 + 2) % 2) as u8).collect();
        let frame = tx.transmit(&bits);
        let p: f64 =
            frame.samples.iter().map(|v| v.sqmag()).sum::<f64>() / frame.samples.len() as f64;
        assert!(p > 0.3 && p < 3.0, "avg power {p}");
    }

    #[test]
    fn different_seeds_change_the_waveform() {
        let bits = vec![0u8; 96];
        let a = Transmitter::new(rate(12).unwrap()).transmit(&bits);
        let b = Transmitter::new(rate(12).unwrap())
            .with_scrambler_seed(0x33)
            .transmit(&bits);
        // Preambles identical, data differs.
        assert!((a.samples[0] - b.samples[0]).mag() < 1e-12);
        let diff: f64 = a.samples[320..]
            .iter()
            .zip(&b.samples[320..])
            .map(|(x, y)| (*x - *y).mag())
            .sum();
        assert!(diff > 1.0);
    }
}
