//! Orthogonal Variable Spreading Factor (OVSF) channelisation codes.
//!
//! Downlink physical channels are separated by OVSF codes `C(SF, k)` with
//! spreading factors from 4 to 512 (TS 25.213 §4.3.1). Codes on the same
//! path of the code tree are orthogonal, which is what lets the despreader
//! separate channels after descrambling. In the paper's partitioning the
//! code generation is dedicated hardware; the despreading multiply-accumulate
//! is the array kernel of Fig. 6.

/// Smallest downlink spreading factor.
pub const MIN_SF: usize = 4;

/// Largest downlink spreading factor.
pub const MAX_SF: usize = 512;

/// Returns the OVSF code `C(sf, k)` as a vector of `±1` chips.
///
/// The code tree is defined recursively: `C(1,0) = [+1]`,
/// `C(2n, 2k) = [C(n,k), C(n,k)]`, `C(2n, 2k+1) = [C(n,k), −C(n,k)]`.
///
/// # Panics
///
/// Panics if `sf` is not a power of two in `1..=512` or `k ≥ sf`.
///
/// # Example
///
/// ```
/// use sdr_wcdma::ovsf::ovsf;
///
/// assert_eq!(ovsf(4, 1), vec![1, 1, -1, -1]);
/// assert_eq!(ovsf(4, 2), vec![1, -1, 1, -1]);
/// ```
pub fn ovsf(sf: usize, k: usize) -> Vec<i32> {
    assert!(
        sf.is_power_of_two() && (1..=MAX_SF).contains(&sf),
        "invalid spreading factor {sf}"
    );
    assert!(k < sf, "code index {k} out of range for SF {sf}");
    let mut code = vec![1i32];
    // Iterative form of the recursion: bit (level) of k, from the most
    // significant branching decision down, selects the same/negated half.
    let levels = sf.trailing_zeros();
    for level in (0..levels).rev() {
        let bit = (k >> level) & 1;
        let mut next = Vec::with_capacity(code.len() * 2);
        next.extend_from_slice(&code);
        if bit == 1 {
            next.extend(code.iter().map(|c| -c));
        } else {
            next.extend_from_slice(&code);
        }
        code = next;
    }
    code
}

/// Inner product of two equal-length codes.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn correlate(a: &[i32], b: &[i32]) -> i32 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_codes() {
        assert_eq!(ovsf(1, 0), vec![1]);
        assert_eq!(ovsf(2, 0), vec![1, 1]);
        assert_eq!(ovsf(2, 1), vec![1, -1]);
        assert_eq!(ovsf(4, 0), vec![1, 1, 1, 1]);
        assert_eq!(ovsf(4, 3), vec![1, -1, -1, 1]);
    }

    #[test]
    fn same_sf_codes_are_orthogonal() {
        for sf in [4usize, 8, 16, 64, 256] {
            for k1 in 0..sf.min(8) {
                for k2 in 0..sf.min(8) {
                    let c = correlate(&ovsf(sf, k1), &ovsf(sf, k2));
                    if k1 == k2 {
                        assert_eq!(c, sf as i32);
                    } else {
                        assert_eq!(c, 0, "sf={sf} k1={k1} k2={k2}");
                    }
                }
            }
        }
    }

    #[test]
    fn chips_are_plus_minus_one() {
        for &sf in &[4usize, 32, 512] {
            for c in ovsf(sf, sf / 2) {
                assert_eq!(c.abs(), 1);
            }
        }
    }

    #[test]
    fn parent_child_relationship() {
        // C(8, 2k) repeats C(4, k); C(8, 2k+1) is C(4,k) then its negation.
        for k in 0..4 {
            let parent = ovsf(4, k);
            let even = ovsf(8, 2 * k);
            let odd = ovsf(8, 2 * k + 1);
            assert_eq!(&even[..4], &parent[..]);
            assert_eq!(&even[4..], &parent[..]);
            assert_eq!(&odd[..4], &parent[..]);
            assert_eq!(
                odd[4..].to_vec(),
                parent.iter().map(|c| -c).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn max_sf_supported() {
        assert_eq!(ovsf(512, 511).len(), 512);
    }

    #[test]
    #[should_panic]
    fn rejects_non_power_of_two() {
        ovsf(12, 0);
    }

    #[test]
    #[should_panic]
    fn rejects_code_index_out_of_range() {
        ovsf(8, 8);
    }
}
