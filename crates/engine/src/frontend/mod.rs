//! Async session front-end: park a million terminals over a bounded
//! worker set.
//!
//! [`Engine::run`](crate::Engine::run) blocks a submitter on the pool
//! whenever a shard queue fills, so resident-session count is bounded by
//! threads. This module replaces that with a control plane that never
//! blocks on submission:
//!
//! * [`executor`] — a hand-rolled minimal async executor (no deps): one
//!   task per *materialised* session, `HashMap` task table, a shared
//!   ready-queue, and a `Send + Sync` [`std::task::Wake`] handle that
//!   carries only a task id;
//! * [`reactor`] — the bounded completion reactor bridging tasks and the
//!   [`ShardPool`]: submission yields a `StepFuture` or hands the
//!   session back on `WouldBlock`, and the driver thread drains pool
//!   completions into per-session slots, firing wakers;
//! * [`parking`] — the idle-session parking lot: a deadline-ordered heap
//!   of compact [`ParkedSession`] records (~a few dozen bytes each; no
//!   sample buffers), preallocatable so parking is allocation-free.
//!
//! A terminal's life cycle: **admitted** as a parked record →
//! **materialised** (rehydrated into a full `Session`, spawned as an
//! async task) when capacity allows → stepped through its pipeline via
//! `StepFuture.await` → on `WouldBlock` **re-parked** with a deferred
//! deadline instead of blocking → **completed** (and, closed-loop, its
//! next frame re-admitted). Millions of terminals can be resident while
//! only `shards × arrays_per_shard` plus the small materialisation
//! window ever own sample buffers.
//!
//! # Deterministic admission model
//!
//! Real thread scheduling is nondeterministic, so deadline slack and
//! shedding are computed against a *virtual-time queueing model*: one
//! virtual server per array, charged `3 × job_cycles` of modeled service
//! per frame at materialisation, least-loaded-server routing. The model
//! is a pure function of the admission sequence, so a seeded open-loop
//! run reports bit-identical slack/shed statistics across executions
//! while the real pool still executes every admitted frame. The *kernel
//! outcomes* (Done/Failed and every DSP bit) are exact, not modeled.

pub mod executor;
pub mod parking;
pub mod reactor;

use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

use crate::metrics::{Metrics, Snapshot};
use crate::pool::{PoolConfig, RecoveryPolicy, ShardPool};
use crate::session::{
    ParkedSession, Session, SessionState, Standard, OFDM_JOB_CYCLES, WCDMA_JOB_CYCLES,
};

use executor::MiniExecutor;
use parking::ParkingLot;
use reactor::CompletionReactor;

/// Pipeline steps per session (capture → detect/search → demod/track).
const STEPS_PER_SESSION: u64 = 3;

/// Modeled service demand of one full W-CDMA frame in array cycles.
pub const WCDMA_SERVICE_CYCLES: u64 = STEPS_PER_SESSION * WCDMA_JOB_CYCLES;
/// Modeled service demand of one full OFDM frame in array cycles.
pub const OFDM_SERVICE_CYCLES: u64 = STEPS_PER_SESSION * OFDM_JOB_CYCLES;

fn service_cycles(standard: Standard) -> u64 {
    match standard {
        Standard::Wcdma => WCDMA_SERVICE_CYCLES,
        Standard::Ofdm => OFDM_SERVICE_CYCLES,
    }
}

/// Front-end sizing and policy.
#[derive(Debug, Clone)]
pub struct FrontendConfig {
    /// Worker shards (one array gang each).
    pub shards: usize,
    /// Arrays per shard gang.
    pub arrays_per_shard: usize,
    /// Bounded per-shard queue depth.
    pub queue_depth: usize,
    /// Compiled configurations the process-wide store may hold.
    pub cache_capacity: usize,
    /// Materialisation window: maximum concurrently *rehydrated*
    /// sessions (live async tasks). Everything beyond this stays parked.
    /// Keep at or below `shards × queue_depth` so the reactor bound
    /// never starves the window.
    pub max_resident: usize,
    /// Parking-lot slots to preallocate (parking within this budget is
    /// allocation-free). `0` grows on demand.
    pub parking_capacity: usize,
    /// A fresh frame whose modeled completion would run later than
    /// `deadline + shed_lateness_cycles` is shed at admission instead of
    /// being materialised.
    pub shed_lateness_cycles: u64,
    /// How far a `WouldBlock` bounce defers the parked deadline.
    pub defer_cycles: u64,
    /// Supervision tuning (crash retry budget, watchdog grant).
    pub recovery: RecoveryPolicy,
    /// Start worker shards paused (tests exercise backpressure this way).
    pub start_paused: bool,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        let p = PoolConfig::default();
        FrontendConfig {
            shards: p.shards,
            arrays_per_shard: p.arrays_per_shard,
            queue_depth: p.queue_depth,
            cache_capacity: p.cache_capacity,
            max_resident: 64,
            parking_capacity: 0,
            shed_lateness_cycles: 2 * crate::session::WCDMA_PERIOD_CYCLES,
            defer_cycles: 1_000,
            recovery: p.recovery,
            start_paused: false,
        }
    }
}

/// What a finished front-end task reports back to the driver.
enum TaskOutcome {
    /// The session reached a terminal state.
    Completed(Session),
    /// The session bounced off a full shard queue and was re-parked
    /// (deadline deferred) — no thread blocked.
    Reparked(ParkedSession),
}

/// What one [`Frontend::run`] call produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleSummary {
    /// Frames that reached a terminal state.
    pub frames_completed: u64,
    /// Frames that ended `Done`.
    pub done: u64,
    /// Frames that ended `Failed`.
    pub failed: u64,
    /// Frames dead-lettered after exhausting crash retries.
    pub dead_lettered: u64,
    /// Ids of frames shed at admission (modeled completion hopelessly
    /// late), in admission order.
    pub shed: Vec<u64>,
    /// Modeled deadline slack (deadline − modeled completion, array
    /// cycles; negative = late) per admitted fresh frame, in admission
    /// order.
    pub slack_cycles: Vec<i64>,
    /// High-water mark of concurrently parked records.
    pub peak_parked: u64,
    /// High-water mark of resident terminals (parked + materialised).
    pub peak_resident: u64,
    /// Records still parked when the run stopped early (completion
    /// limit); `0` when the lot drained.
    pub still_parked: u64,
    /// Metrics snapshot at the end of the run.
    pub snapshot: Snapshot,
}

impl ScaleSummary {
    /// Frames admitted to the model (fresh materialisations + sheds).
    pub fn offered(&self) -> u64 {
        self.slack_cycles.len() as u64 + self.shed.len() as u64
    }

    /// Fraction of offered frames shed at admission.
    pub fn shed_rate(&self) -> f64 {
        let offered = self.offered();
        if offered == 0 {
            0.0
        } else {
            self.shed.len() as f64 / offered as f64
        }
    }

    /// The slack that 99 % of admitted frames meet or beat (the
    /// 1st-percentile slack, ascending). `None` until a frame is
    /// admitted.
    pub fn p99_slack(&self) -> Option<i64> {
        percentile_low(&self.slack_cycles, 0.01)
    }

    /// The worst (minimum) modeled slack.
    pub fn min_slack(&self) -> Option<i64> {
        self.slack_cycles.iter().copied().min()
    }
}

fn percentile_low(values: &[i64], q: f64) -> Option<i64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let idx = ((sorted.len() - 1) as f64 * q).floor() as usize;
    Some(sorted[idx])
}

/// The async session front-end. Single driver thread; see the module
/// docs for the life cycle.
pub struct Frontend {
    reactor: Rc<CompletionReactor>,
    executor: MiniExecutor<TaskOutcome>,
    lot: ParkingLot,
    metrics: Arc<Metrics>,
    // Virtual-time queueing model: one entry per array, the cycle at
    // which that virtual server frees up.
    free_at: Vec<u64>,
    vnow: u64,
    // Modeled completion cycle per in-progress frame (terminal id →
    // virtual completion); survives backpressure re-parks.
    vcomp: HashMap<u64, u64>,
    max_resident: usize,
    shed_lateness_cycles: u64,
    defer_cycles: u64,
    recovery: RecoveryPolicy,
    // Summary accumulators.
    frames_completed: u64,
    done: u64,
    failed: u64,
    dead_lettered: u64,
    shed: Vec<u64>,
    slack_cycles: Vec<i64>,
    peak_resident: u64,
}

/// Closed-loop workload hook: called with each completed frame and its
/// modeled completion cycle; return the terminal's next frame as a
/// parked record to re-admit it, or `None` to let the terminal leave.
pub trait Workload: FnMut(&Session, u64) -> Option<ParkedSession> {}
impl<F: FnMut(&Session, u64) -> Option<ParkedSession>> Workload for F {}

impl Frontend {
    /// Spawns the worker pool and an empty front-end.
    pub fn new(config: FrontendConfig) -> Self {
        Frontend::with_metrics(config, Arc::new(Metrics::new()))
    }

    /// As [`Frontend::new`] with a caller-supplied metrics registry.
    pub fn with_metrics(config: FrontendConfig, metrics: Arc<Metrics>) -> Self {
        let pool = ShardPool::new(
            PoolConfig {
                shards: config.shards,
                arrays_per_shard: config.arrays_per_shard,
                queue_depth: config.queue_depth,
                cache_capacity: config.cache_capacity,
                replicate_after_cycles: PoolConfig::default().replicate_after_cycles,
                start_paused: config.start_paused,
                recovery: config.recovery,
                #[cfg(feature = "faults")]
                fault_plan: None,
            },
            Arc::clone(&metrics),
        );
        let workers = config.shards.max(1) * config.arrays_per_shard.max(1);
        Frontend {
            reactor: Rc::new(CompletionReactor::new(pool)),
            executor: MiniExecutor::new(),
            lot: ParkingLot::with_capacity(config.parking_capacity),
            metrics,
            free_at: vec![0; workers],
            vnow: 0,
            vcomp: HashMap::new(),
            max_resident: config.max_resident.max(1),
            shed_lateness_cycles: config.shed_lateness_cycles,
            defer_cycles: config.defer_cycles,
            recovery: config.recovery,
            frames_completed: 0,
            done: 0,
            failed: 0,
            dead_lettered: 0,
            shed: Vec::new(),
            slack_cycles: Vec::new(),
            peak_resident: 0,
        }
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// A point-in-time metrics snapshot.
    pub fn snapshot(&self) -> Snapshot {
        self.metrics.snapshot()
    }

    /// The underlying pool (pause/resume, depth probes).
    pub fn pool(&self) -> &ShardPool {
        self.reactor.pool()
    }

    /// Admits a terminal's frame as a parked record. O(log n), and
    /// allocation-free within the preallocated parking capacity.
    pub fn admit(&mut self, record: ParkedSession) {
        Metrics::incr(&self.metrics.sessions_started);
        self.lot.park(record);
        self.update_gauges();
    }

    /// Currently parked records.
    pub fn parked(&self) -> usize {
        self.lot.len()
    }

    /// Materialised sessions (live async tasks).
    pub fn materialised(&self) -> usize {
        self.executor.live()
    }

    /// Resident terminals: parked + materialised.
    pub fn resident(&self) -> usize {
        self.lot.len() + self.executor.live()
    }

    /// Parking-lot heap bytes per parked record; `None` while empty.
    pub fn bytes_per_parked(&self) -> Option<f64> {
        self.lot.bytes_per_parked()
    }

    /// One non-blocking driver iteration: poll ready tasks, fold their
    /// outcomes (re-parks, completions, closed-loop re-admissions),
    /// materialise parked records into free resident slots, and drain
    /// pool completions. Returns the amount of progress made (0 = fully
    /// stalled; block via the pool or call again after external action).
    pub fn pump(&mut self, workload: &mut impl Workload) -> usize {
        let mut progress = 0;
        progress += self.executor.run_until_stalled();
        progress += self.handle_outcomes(workload);
        progress += self.materialise();
        // Submit the freshly materialised tasks straight away.
        progress += self.executor.run_until_stalled();
        progress += self.handle_outcomes(workload);
        progress += self.reactor.drain();
        self.update_gauges();
        progress
    }

    /// Runs until every resident terminal is gone (open loop: admit
    /// first, then call with a workload returning `None`).
    pub fn run(&mut self, workload: &mut impl Workload) -> ScaleSummary {
        self.run_limited(u64::MAX, workload)
    }

    /// As [`Frontend::run`] but stops once `limit` frames have
    /// completed, leaving the rest parked ([`ScaleSummary::still_parked`]
    /// reports how many). This is how the scale bench holds a million
    /// terminals resident while processing a bounded sample of them.
    pub fn run_limited(&mut self, limit: u64, workload: &mut impl Workload) -> ScaleSummary {
        loop {
            let progress = self.pump(workload);
            if self.frames_completed >= limit {
                self.drain_in_flight(workload);
                break;
            }
            if self.executor.live() == 0 && self.lot.is_empty() {
                break;
            }
            if progress == 0 {
                if self.reactor.in_flight() > 0 {
                    // Block (bounded) for a pool completion: the only
                    // thing that can unstick a fully submitted window.
                    self.reactor.wait_drain(Duration::from_millis(50));
                } else {
                    // All residents bounced (e.g. paused pool): nothing
                    // in flight, avoid a hot spin.
                    std::thread::yield_now();
                }
            }
        }
        self.take_summary()
    }

    /// Finishes the already-materialised window after an early stop:
    /// each live task runs to a terminal state or bounces back into the
    /// lot, so nothing is left half-stepped.
    fn drain_in_flight(&mut self, workload: &mut impl Workload) {
        while self.executor.live() > 0 {
            if self.reactor.drain() == 0
                && self.reactor.in_flight() > 0
                && self.reactor.wait_drain(Duration::from_millis(50)) == 0
            {
                continue;
            }
            self.executor.run_until_stalled();
            self.handle_outcomes(workload);
        }
        self.update_gauges();
    }

    fn handle_outcomes(&mut self, workload: &mut impl Workload) -> usize {
        let outcomes = self.executor.take_finished();
        let n = outcomes.len();
        for outcome in outcomes {
            match outcome {
                TaskOutcome::Reparked(record) => {
                    self.lot.park(record);
                    Metrics::incr(&self.metrics.backpressure_parks);
                }
                TaskOutcome::Completed(session) => {
                    self.frames_completed += 1;
                    match session.state() {
                        SessionState::Done => self.done += 1,
                        SessionState::Failed(_) => self.failed += 1,
                        SessionState::DeadLettered(_) => self.dead_lettered += 1,
                        _ => {}
                    }
                    let completed_at = self
                        .vcomp
                        .remove(&session.id())
                        .unwrap_or_else(|| session.deadline());
                    if let Some(next) = workload(&session, completed_at) {
                        self.admit(next);
                    }
                }
            }
        }
        n
    }

    /// Rehydrates earliest-deadline parked records into the free part of
    /// the materialisation window, charging the virtual-time model (and
    /// shedding hopeless frames) for fresh ones.
    fn materialise(&mut self) -> usize {
        let mut progress = 0;
        while self.executor.live() < self.max_resident {
            let Some(record) = self.lot.pop_earliest() else {
                break;
            };
            if record.is_fresh() {
                let arrival = record.arrival();
                self.vnow = self.vnow.max(arrival);
                // Least-loaded virtual server (deterministic argmin).
                let (server, free) = self
                    .free_at
                    .iter()
                    .copied()
                    .enumerate()
                    .min_by_key(|&(i, f)| (f, i))
                    .unwrap_or((0, 0));
                let start = free.max(arrival);
                let completes = start + service_cycles(record.standard());
                let lateness = completes.saturating_sub(record.deadline());
                if lateness > self.shed_lateness_cycles {
                    Metrics::incr(&self.metrics.sessions_shed);
                    self.shed.push(record.id());
                    progress += 1;
                    continue;
                }
                self.free_at[server] = completes;
                self.slack_cycles
                    .push(record.deadline() as i64 - completes as i64);
                self.vcomp.insert(record.id(), completes);
            }
            let session = Session::rehydrate(&record);
            Metrics::incr(&self.metrics.rehydrations);
            self.spawn_drive(session);
            progress += 1;
        }
        progress
    }

    fn spawn_drive(&mut self, session: Session) {
        let reactor = Rc::clone(&self.reactor);
        let metrics = Arc::clone(&self.metrics);
        let defer_cycles = self.defer_cycles;
        let max_attempts = self.recovery.max_session_attempts;
        self.executor
            .spawn(drive(reactor, metrics, defer_cycles, max_attempts, session));
    }

    fn update_gauges(&mut self) {
        let parked = self.lot.len() as u64;
        let resident = parked + self.executor.live() as u64;
        self.peak_resident = self.peak_resident.max(resident);
        Metrics::set(&self.metrics.sessions_parked, parked);
        Metrics::raise_to(&self.metrics.peak_resident_sessions, resident);
    }

    fn take_summary(&mut self) -> ScaleSummary {
        self.update_gauges();
        ScaleSummary {
            frames_completed: self.frames_completed,
            done: self.done,
            failed: self.failed,
            dead_lettered: self.dead_lettered,
            shed: std::mem::take(&mut self.shed),
            slack_cycles: std::mem::take(&mut self.slack_cycles),
            peak_parked: self.lot.peak() as u64,
            peak_resident: self.peak_resident,
            still_parked: self.lot.len() as u64,
            snapshot: self.metrics.snapshot(),
        }
    }

    /// Shuts the worker pool down. Live tasks (and their step futures)
    /// are dropped first so the reactor's `Rc` is unique; any sessions
    /// the pool still held are returned.
    pub fn shutdown(mut self) -> Vec<Session> {
        self.executor = MiniExecutor::new();
        match Rc::try_unwrap(self.reactor) {
            Ok(reactor) => reactor.into_pool().shutdown(),
            // Unreachable: dropping the executor dropped every clone.
            Err(_) => Vec::new(),
        }
    }
}

/// The per-session async task: step the session until terminal, parking
/// (never blocking) on backpressure, supervising crash retries.
async fn drive(
    reactor: Rc<CompletionReactor>,
    metrics: Arc<Metrics>,
    defer_cycles: u64,
    max_attempts: u32,
    mut session: Session,
) -> TaskOutcome {
    loop {
        if session.is_terminal() {
            return TaskOutcome::Completed(session);
        }
        match CompletionReactor::submit(&reactor, session) {
            Ok(step) => {
                let mut stepped = step.await;
                if stepped.take_crashed() {
                    if stepped.attempts() > max_attempts {
                        stepped.mark_dead_lettered(format!(
                            "crashed {} times; giving up",
                            stepped.attempts()
                        ));
                        Metrics::incr(&metrics.dead_letters);
                    } else {
                        // The shard already restarted with a fresh
                        // array; re-dispatch (no sleep — the driver is
                        // single-threaded, backoff is deadline deferral).
                        Metrics::incr(&metrics.session_retries);
                        Metrics::incr(&metrics.recoveries);
                    }
                }
                session = stepped;
            }
            Err(bounced) => {
                // Full shard queue: shrink back to a parked record with
                // a deferred deadline. No thread blocks here.
                match bounced.park() {
                    Some(mut record) => {
                        record.defer(defer_cycles);
                        return TaskOutcome::Reparked(record);
                    }
                    // Terminal sessions never submit; defensive.
                    None => return TaskOutcome::Completed(bounced),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_followup() -> impl Workload {
        |_: &Session, _| None
    }

    #[test]
    fn open_loop_mixed_standards_all_complete() {
        let mut fe = Frontend::new(FrontendConfig {
            shards: 2,
            queue_depth: 4,
            max_resident: 8,
            ..FrontendConfig::default()
        });
        for id in 0..10u64 {
            let rec = if id % 2 == 0 {
                ParkedSession::new_wcdma(id, 1000 + id, id * 500)
            } else {
                ParkedSession::new_ofdm(id, 2000 + id, id * 500)
            };
            fe.admit(rec);
        }
        assert_eq!(fe.parked(), 10);
        let summary = fe.run(&mut no_followup());
        assert_eq!(summary.frames_completed, 10);
        assert_eq!(summary.done, 10);
        assert_eq!(summary.still_parked, 0);
        assert_eq!(summary.slack_cycles.len(), 10);
        assert!(summary.shed.is_empty());
        assert_eq!(summary.peak_parked, 10);
        assert!(summary.peak_resident >= 10);
        // 10 first materialisations, plus one more per backpressure
        // bounce (5 sessions share a shard with queue depth 4, so some
        // bounce, re-park, and rehydrate again).
        assert_eq!(
            summary.snapshot.rehydrations,
            10 + summary.snapshot.backpressure_parks
        );
        assert_eq!(summary.snapshot.sessions_completed, 10);
    }

    #[test]
    fn closed_loop_readmits_follow_up_frames() {
        let mut fe = Frontend::new(FrontendConfig::default());
        for id in 0..4u64 {
            fe.admit(ParkedSession::new_wcdma(id, 7 + id, 0));
        }
        // Each terminal runs 3 frames total.
        let mut frames_left: HashMap<u64, u32> = (0..4).map(|id| (id, 2)).collect();
        let mut workload = |done: &Session, completed_at: u64| {
            let left = frames_left.get_mut(&done.id())?;
            if *left == 0 {
                return None;
            }
            *left -= 1;
            Some(ParkedSession::new_wcdma(
                done.id(),
                done.id() * 31 + *left as u64,
                completed_at,
            ))
        };
        let summary = fe.run(&mut workload);
        assert_eq!(summary.frames_completed, 12, "4 terminals x 3 frames");
        assert_eq!(summary.done, 12);
        assert_eq!(summary.snapshot.sessions_started, 12);
    }

    #[test]
    fn hopelessly_late_frames_are_shed_by_the_model() {
        // One virtual server, zero shed margin: the second simultaneous
        // arrival's modeled completion exceeds its deadline only if the
        // deadline is tighter than 2x service; W-CDMA periods are roomy,
        // so drive lateness with a crowd arriving at once.
        let mut fe = Frontend::new(FrontendConfig {
            shards: 1,
            arrays_per_shard: 1,
            shed_lateness_cycles: 0,
            ..FrontendConfig::default()
        });
        // All frames arrive at cycle 0; server capacity is one frame per
        // WCDMA_SERVICE_CYCLES. Deadline = 33_333, service = 9_000: the
        // 4th simultaneous frame completes at 36_000 > deadline -> shed.
        let n = 6u64;
        for id in 0..n {
            fe.admit(ParkedSession::new_wcdma(id, 42 + id, 0));
        }
        let summary = fe.run(&mut no_followup());
        assert_eq!(summary.offered(), n);
        assert!(
            !summary.shed.is_empty(),
            "overload at a single server must shed"
        );
        assert_eq!(summary.shed, vec![3, 4, 5], "EDF order sheds the tail");
        assert_eq!(summary.frames_completed, 3);
        assert!(summary.shed_rate() > 0.49 && summary.shed_rate() < 0.51);
        assert_eq!(summary.snapshot.sessions_shed, 3);
        // Slack deteriorates monotonically for a same-deadline burst.
        assert!(summary.slack_cycles.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn run_limited_leaves_the_rest_parked() {
        let mut fe = Frontend::new(FrontendConfig {
            max_resident: 2,
            ..FrontendConfig::default()
        });
        for id in 0..50u64 {
            fe.admit(ParkedSession::new_ofdm(id, id, id * 100));
        }
        let summary = fe.run_limited(5, &mut no_followup());
        assert!(summary.frames_completed >= 5);
        assert!(summary.still_parked > 0);
        assert_eq!(
            summary.still_parked + summary.frames_completed,
            50,
            "early stop: every terminal is either done or still parked"
        );
        assert_eq!(summary.peak_parked, 50);
    }

    #[test]
    fn shutdown_returns_cleanly_with_live_tasks() {
        let mut fe = Frontend::new(FrontendConfig::default());
        for id in 0..8u64 {
            fe.admit(ParkedSession::new_wcdma(id, id, 0));
        }
        // Materialise + submit some, then tear down mid-flight.
        fe.pump(&mut no_followup());
        let leftover = fe.shutdown();
        // Sessions still inside the pool come back out; parked/live ones
        // are dropped with the front-end. No panic, no deadlock.
        assert!(leftover.len() <= 8);
    }
}
