//! Fig. 10 swap latency through the configuration manager: the wall time
//! a session waits between "preamble found" and "demodulator running",
//! measured at each tier of the configuration lifecycle.
//!
//! * `cold` — empty store: the swap pays netlist build + compile (place +
//!   port-map flattening) + the serial configuration-bus load.
//! * `cached` — the compiled config is in the process-wide store (some
//!   other worker or an earlier session compiled it): the swap pays only
//!   the bus load on this worker's array.
//! * `prefetched` — the demodulator was prefetched while the detector was
//!   still running, so its bus load overlapped the preamble search: the
//!   swap pays only unload + activation bookkeeping, zero array cycles.
//!
//! The three tiers land in `BENCH_RECONFIG.json` next to the paper's
//! E-Fig.10 experiment in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sdr_engine::{ConfigStore, Metrics, WorkerArray};
use sdr_ofdm::xpp_map::OfdmKernel;
use std::sync::Arc;

/// Detector run long enough for the prefetched demodulator load
/// (object count × 3 bus cycles) to fully overlap.
const DETECTOR_RUN_CYCLES: u64 = 1_000;

/// A worker with the detector active, as at the moment the preamble is
/// found. `warm_store` pre-compiles the demodulator into the shared
/// store; `prefetch` additionally streams it onto the array during the
/// detector run.
fn worker_at_swap_point(warm_store: bool, prefetch: bool) -> WorkerArray {
    let store = Arc::new(ConfigStore::new(8));
    if warm_store {
        // Another worker on the same store compiled the demodulator.
        let mut other = WorkerArray::with_store(Arc::clone(&store), Arc::new(Metrics::new()));
        other.activate(OfdmKernel::Demodulator).unwrap();
    }
    let mut w = WorkerArray::with_store(store, Arc::new(Metrics::new()));
    w.activate(OfdmKernel::PreambleDetector).unwrap();
    if prefetch {
        assert!(w.prefetch(OfdmKernel::Demodulator).unwrap());
    }
    // The preamble search itself: the prefetched load (if any) streams
    // over the configuration bus while these cycles run.
    for _ in 0..DETECTOR_RUN_CYCLES {
        w.array_mut().step();
    }
    w
}

fn bench_fig10_swap(c: &mut Criterion) {
    let mut g = c.benchmark_group("reconfig_fig10_swap");
    for (label, warm_store, prefetch) in [
        ("cold", false, false),
        ("cached", true, false),
        ("prefetched", true, true),
    ] {
        g.bench_function(label, |b| {
            b.iter_batched(
                || worker_at_swap_point(warm_store, prefetch),
                |mut w| {
                    let id = w
                        .swap(OfdmKernel::PreambleDetector, OfdmKernel::Demodulator)
                        .unwrap();
                    assert!(w.array().is_running(id));
                    w
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group! {
    name = reconfig_benches;
    config = Criterion::default().sample_size(30);
    targets = bench_fig10_swap
}
criterion_main!(reconfig_benches);
