//! UMTS/W-CDMA downlink substrate and rake receiver.
//!
//! This crate reproduces the first application of the DATE 2003 paper
//! *"Reconfigurable Signal Processing in Wireless Terminals"*: a flexible
//! mobile rake receiver capable of soft handover with up to six base
//! stations and three multipaths each, whose word-level kernels
//! (descrambling, despreading, channel correction — Figs. 5–7) run on the
//! reconfigurable array while control, synchronisation and channel
//! estimation run on the DSP, and code generation in dedicated hardware
//! (Fig. 4).
//!
//! Layers:
//!
//! * [`scrambling`], [`ovsf`], [`symbols`] — 3GPP code generators and
//!   mappings (the dedicated-hardware blocks),
//! * [`tx`], [`channel`] — the standard-conformant signal source and the
//!   multipath/AWGN/ADC front end substituting for the live network,
//! * [`rake`] — the golden receiver (searcher, estimator, fingers,
//!   combiner),
//! * [`xpp_map`] — the same word-level kernels expressed as XPP netlists,
//!   verified bit-exact against the golden models,
//! * [`scenario`] — the Table 1 finger-scenario model.
//!
//! # Example: one-cell link end to end
//!
//! ```
//! use sdr_wcdma::channel::{propagate, AdcConfig, CellLink, Path};
//! use sdr_wcdma::rake::{RakeConfig, RakeReceiver};
//! use sdr_wcdma::tx::{CellConfig, CellTransmitter};
//! use sdr_dsp::Cplx;
//!
//! let bits: Vec<u8> = (0..64).map(|i| (i % 2) as u8).collect();
//! let mut tx = CellTransmitter::new(CellConfig::default());
//! let signal = tx.transmit(&bits);
//! let link = CellLink::new(vec![Path::new(5, Cplx::new(0.8, 0.3))]);
//! let rx = propagate(&[(signal, link)], 0.02, 7, AdcConfig::default());
//!
//! let rake = RakeReceiver::new(vec![0], RakeConfig::default());
//! let out = rake.receive(&rx);
//! assert_eq!(&out.bits[..bits.len()], &bits[..]);
//! ```

pub mod channel;
pub mod ovsf;
pub mod rake;
pub mod scenario;
pub mod scrambling;
pub mod symbols;
pub mod tx;
pub mod xpp_map;

pub use rake::{RakeConfig, RakeOutput, RakeReceiver};
pub use scrambling::ScramblingCode;
pub use tx::{CellConfig, CellTransmitter, DpchConfig};
