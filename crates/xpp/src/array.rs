//! The reconfigurable array runtime: configuration management, token-flow
//! simulation and streaming I/O.
//!
//! An [`Array`] models one XPP device. Configurations (validated
//! [`Netlist`]s) are loaded through a serial configuration bus (taking
//! [`CONFIG_CYCLES_PER_OBJECT`] cycles per object), occupy physical resources
//! while resident, and execute synchronously: every cycle, every object of
//! every *running* configuration fires if its token handshake allows. The
//! configuration manager enforces the paper's protection rule —
//! "configurations cannot be overwritten illegally" — because resources held
//! by a resident configuration are never handed to another one.
//!
//! # Event-driven stepping
//!
//! Because objects fire only when a token arrives or output space frees up,
//! the simulator schedules work instead of scanning it: a `Scheduler` keeps
//! a ready list of objects whose adjacent channels moved tokens last cycle
//! (plus any object touched by external I/O or a configuration load), and the
//! commit phase walks only the channels that actually staged movement. Fire
//! decisions depend solely on committed start-of-cycle channel state, so
//! restricting the fire scan to woken objects is exact, not heuristic: an
//! unwoken object could not have fired anyway. The original scan-the-world
//! stepper is retained behind the `reference` feature (and in tests) as the
//! semantic oracle; both steppers share `fire_object`, so they can only
//! differ in *which* objects they visit, never in what firing does.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;

use crate::channel::Channel;
use crate::compiled::{CompiledConfig, PortDir};
use crate::error::{Error, Result};
#[cfg(feature = "faults")]
use crate::fault::{FaultInjector, FaultKind};
use crate::netlist::Netlist;
use crate::object::{CounterCfg, ObjectKind, RAM_WORDS};
use crate::place::{Geometry, Placement, ResourceCounts, ResourcePool};
use crate::stats::ArrayStats;
use crate::word::{Event, Word};

/// Configuration-bus cost: cycles needed to load one object's configuration
/// words.
pub const CONFIG_CYCLES_PER_OBJECT: u64 = 3;

#[cfg(any(test, feature = "reference"))]
thread_local! {
    static FORCE_REFERENCE: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Runs `f` with every [`Array`] constructed inside it fixed to the retained
/// scan-the-world reference stepper (the pre-event-driven semantics oracle).
///
/// The stepping mode is latched at construction and never changes for the
/// lifetime of an array, so arrays built by nested helpers (e.g. the kernel
/// wrappers in the receiver crates) are covered too.
#[cfg(any(test, feature = "reference"))]
pub fn with_reference_stepper<T>(f: impl FnOnce() -> T) -> T {
    struct Reset(bool);
    impl Drop for Reset {
        fn drop(&mut self) {
            FORCE_REFERENCE.with(|c| c.set(self.0));
        }
    }
    let _reset = Reset(FORCE_REFERENCE.with(|c| c.replace(true)));
    f()
}

/// Handle to a loaded configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConfigId(u32);

impl ConfigId {
    /// The numeric id (stable for the lifetime of the array).
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ConfigId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cfg{}", self.0)
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ConfigState {
    Loading {
        remaining: u64,
    },
    Running,
    /// The load went wrong (injected fault); the configuration holds its
    /// resources but will never run and must be unloaded.
    #[cfg(feature = "faults")]
    Faulted(FaultKind),
}

#[derive(Debug)]
struct LoadedConfig {
    name: String,
    state: ConfigState,
    objects: Vec<usize>,
    dchans: Vec<usize>,
    echans: Vec<usize>,
    placement: Placement,
    ports: HashMap<String, (usize, PortDir)>,
    /// Fault assigned to this load by the injector, cleared when a recovery
    /// layer surfaces it (see [`Array::clear_injected_fault`]).
    #[cfg(feature = "faults")]
    fault: Option<FaultKind>,
    /// Bus words remaining at which an [`FaultKind::AbortLoad`] strikes
    /// (half the load window).
    #[cfg(feature = "faults")]
    fault_at: u64,
}

#[derive(Debug)]
enum ObjState {
    None,
    Counter { value: i64, remaining: u64 },
    Accum(Word),
    Ram(Vec<Word>),
    Fifo(VecDeque<Word>),
    ExtInData(VecDeque<Word>),
    ExtOutData(Vec<Word>),
    ExtInEv(VecDeque<bool>),
    ExtOutEv(Vec<bool>),
}

/// Inline fan-out list of channel indices for one output port. Fan-out
/// beyond the inline capacity spills to the heap; netlists rarely need it.
#[derive(Debug, Default)]
struct PortList {
    inline: [u32; 4],
    len: u8,
    spill: Vec<u32>,
}

impl PortList {
    fn from_chans(chans: Vec<usize>) -> Self {
        let mut list = PortList::default();
        if chans.len() <= list.inline.len() {
            for (i, c) in chans.iter().enumerate() {
                list.inline[i] = *c as u32;
            }
            list.len = chans.len() as u8;
        } else {
            list.spill = chans.into_iter().map(|c| c as u32).collect();
        }
        list
    }

    #[inline]
    fn chans(&self) -> &[u32] {
        if self.spill.is_empty() {
            &self.inline[..self.len as usize]
        } else {
            &self.spill
        }
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.len == 0 && self.spill.is_empty()
    }
}

#[derive(Debug)]
struct RuntimeObject {
    kind: ObjectKind,
    label: String,
    state: ObjState,
    /// Lifetime fire count; `config_fire_count` aggregates these lazily
    /// instead of a per-fire `HashMap` update in the hot loop.
    fires: u64,
    /// True once the owning configuration finished loading. Replaces the
    /// per-step set of loading configurations.
    enabled: bool,
    /// Input/output channel maps, sized to the widest port shapes so the
    /// hot loop never chases a heap pointer to find a channel index.
    din: [Option<u32>; 3],
    dout: [PortList; 2],
    evin: [Option<u32>; 2],
    evout: [PortList; 1],
}

#[derive(Debug, Clone, Copy)]
struct Connection {
    from_obj: usize,
    to_obj: usize,
    event: bool,
    from_cfg: u32,
    to_cfg: u32,
}

/// Ready-list bookkeeping for the event-driven stepper.
///
/// `ready` holds the object slots that may fire next cycle; `queued` dedups
/// wakes (one entry per slot per cycle); `fire_buf` is the double buffer the
/// fire phase drains so commits can refill `ready` without reallocating.
/// Spurious wakes are harmless — a woken object that cannot fire simply
/// drops off the list — so stale entries surviving an `unload` are safe.
#[derive(Debug, Default)]
struct Scheduler {
    ready: Vec<usize>,
    fire_buf: Vec<usize>,
    queued: Vec<bool>,
}

impl Scheduler {
    #[inline]
    fn wake(&mut self, obj: usize) {
        if let Some(q) = self.queued.get_mut(obj) {
            if !*q {
                *q = true;
                self.ready.push(obj);
            }
        }
    }
}

/// A simulated XPP reconfigurable processing array.
///
/// # Example
///
/// ```
/// use xpp_array::{AluOp, Array, NetlistBuilder, Word};
///
/// # fn main() -> Result<(), xpp_array::Error> {
/// let mut nl = NetlistBuilder::new("doubler");
/// let input = nl.input("in");
/// let two = nl.constant(Word::new(2));
/// let out = nl.alu(AluOp::Mul, input, two);
/// nl.output("out", out);
///
/// let mut array = Array::xpp64a();
/// let cfg = array.configure(&nl.build()?)?;
/// array.push_input(cfg, "in", [1, 2, 3].map(Word::new))?;
/// array.run_until_idle(1_000)?;
/// let doubled: Vec<i32> = array.drain_output(cfg, "out")?.iter().map(|w| w.value()).collect();
/// assert_eq!(doubled, vec![2, 4, 6]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Array {
    geometry: Geometry,
    pool: ResourcePool,
    objects: Vec<Option<RuntimeObject>>,
    dchans: Vec<Option<Channel<Word>>>,
    echans: Vec<Option<Channel<Event>>>,
    /// Per data-channel (producer, consumer) object slots, filled at
    /// configure time — the wake adjacency.
    d_adj: Vec<(usize, usize)>,
    /// Per event-channel (producer, consumer) object slots.
    e_adj: Vec<(usize, usize)>,
    configs: BTreeMap<u32, LoadedConfig>,
    load_queue: VecDeque<u32>,
    connections: Vec<Connection>,
    next_id: u32,
    stats: ArrayStats,
    /// Fire totals of configurations that have been unloaded (live totals
    /// are aggregated from per-object counters on demand).
    retired_fires: HashMap<u32, u64>,
    sched: Scheduler,
    /// Data channels with staged movement this cycle (commit worklist).
    dirty_d: Vec<usize>,
    /// Event channels with staged movement this cycle.
    dirty_e: Vec<usize>,
    /// Reusable board-connection move buffers (keep their capacity so the
    /// steady-state step loop never allocates).
    board_d: Vec<Word>,
    board_e: Vec<bool>,
    #[cfg(any(test, feature = "reference"))]
    use_reference: bool,
    /// Shared fault scheduler consulted at every configuration load; `None`
    /// (the default) takes no fault path at all.
    #[cfg(feature = "faults")]
    injector: Option<std::sync::Arc<FaultInjector>>,
}

impl Array {
    /// Creates an array with the XPP-64A geometry.
    pub fn xpp64a() -> Self {
        Self::with_geometry(Geometry::xpp64a())
    }

    /// Creates an array with a custom geometry.
    pub fn with_geometry(geometry: Geometry) -> Self {
        Array {
            geometry,
            pool: ResourcePool::new(geometry),
            objects: Vec::new(),
            dchans: Vec::new(),
            echans: Vec::new(),
            d_adj: Vec::new(),
            e_adj: Vec::new(),
            configs: BTreeMap::new(),
            load_queue: VecDeque::new(),
            connections: Vec::new(),
            next_id: 0,
            stats: ArrayStats::new(),
            retired_fires: HashMap::new(),
            sched: Scheduler::default(),
            dirty_d: Vec::new(),
            dirty_e: Vec::new(),
            board_d: Vec::new(),
            board_e: Vec::new(),
            #[cfg(any(test, feature = "reference"))]
            use_reference: FORCE_REFERENCE.with(|c| c.get()),
            #[cfg(feature = "faults")]
            injector: None,
        }
    }

    /// Attaches a shared fault injector; every subsequent configuration
    /// load consults its plan. A supervisor re-attaches the same injector
    /// to a replacement array after a crash so the schedule continues.
    #[cfg(feature = "faults")]
    pub fn attach_fault_injector(&mut self, injector: std::sync::Arc<FaultInjector>) {
        self.injector = Some(injector);
    }

    /// The array geometry.
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// Accumulated activity statistics.
    pub fn stats(&self) -> ArrayStats {
        self.stats
    }

    /// True if this array steps with the retained reference (scan-the-world)
    /// stepper instead of the event-driven scheduler.
    #[cfg(any(test, feature = "reference"))]
    pub fn uses_reference_stepper(&self) -> bool {
        self.use_reference
    }

    /// Firings attributed to one configuration so far (counts of unloaded
    /// configurations remain queryable).
    pub fn config_fire_count(&self, cfg: ConfigId) -> u64 {
        match self.configs.get(&cfg.0) {
            Some(loaded) => self.live_fires(loaded),
            None => self.retired_fires.get(&cfg.0).copied().unwrap_or(0),
        }
    }

    /// Fire totals of every resident configuration, aggregated from the
    /// per-object counters.
    pub fn fires_by_config(&self) -> Vec<(ConfigId, u64)> {
        self.configs
            .iter()
            .map(|(&id, loaded)| (ConfigId(id), self.live_fires(loaded)))
            .collect()
    }

    fn live_fires(&self, loaded: &LoadedConfig) -> u64 {
        loaded
            .objects
            .iter()
            .filter_map(|&o| self.objects[o].as_ref())
            .map(|o| o.fires)
            .sum()
    }

    /// Per-object fire counts of a configuration (label, fires) — the
    /// profiling view a hardware engineer uses to find a stalled pipeline
    /// stage.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NoSuchConfig`] if the id is stale.
    pub fn object_fire_counts(&self, cfg: ConfigId) -> Result<Vec<(String, u64)>> {
        let loaded = self.configs.get(&cfg.0).ok_or(Error::NoSuchConfig(cfg.0))?;
        Ok(loaded
            .objects
            .iter()
            .filter_map(|&o| self.objects[o].as_ref())
            .map(|o| (o.label.clone(), o.fires))
            .collect())
    }

    /// Currently free resources.
    pub fn free_resources(&self) -> ResourceCounts {
        self.pool.free()
    }

    /// Fraction of ALU-PAEs held by resident configurations.
    pub fn alu_utilization(&self) -> f64 {
        self.pool.alu_utilization()
    }

    /// Placement footprint of a resident configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NoSuchConfig`] if the id is stale.
    pub fn placement(&self, cfg: ConfigId) -> Result<&Placement> {
        self.configs
            .get(&cfg.0)
            .map(|c| &c.placement)
            .ok_or(Error::NoSuchConfig(cfg.0))
    }

    /// The name of a resident configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NoSuchConfig`] if the id is stale.
    pub fn config_name(&self, cfg: ConfigId) -> Result<&str> {
        self.configs
            .get(&cfg.0)
            .map(|c| c.name.as_str())
            .ok_or(Error::NoSuchConfig(cfg.0))
    }

    /// True if the configuration has finished loading.
    pub fn is_running(&self, cfg: ConfigId) -> bool {
        matches!(
            self.configs.get(&cfg.0).map(|c| &c.state),
            Some(ConfigState::Running)
        )
    }

    /// The typed error a faulted load left behind, if any.
    ///
    /// Always available; without the `faults` feature (or with no injector
    /// attached) this is always `None`. A faulted configuration keeps its
    /// resources until [`unload`](Array::unload), so anyone waiting for
    /// [`is_running`](Array::is_running) must poll this too or spin forever.
    pub fn load_error(&self, cfg: ConfigId) -> Option<Error> {
        #[cfg(feature = "faults")]
        if let Some(ConfigState::Faulted(kind)) = self.configs.get(&cfg.0).map(|c| &c.state) {
            return Some(match kind {
                FaultKind::AbortLoad => Error::LoadAborted { config: cfg.0 },
                _ => Error::ConfigCorrupted { config: cfg.0 },
            });
        }
        let _ = cfg;
        None
    }

    /// Clears the injected-fault record of a resident configuration,
    /// returning `true` if one was present. Recovery layers call this when
    /// disposing of a configuration so each injected fault is counted as
    /// detected exactly once, even for stalls that never raise an error.
    pub fn clear_injected_fault(&mut self, cfg: ConfigId) -> bool {
        #[cfg(feature = "faults")]
        if let Some(c) = self.configs.get_mut(&cfg.0) {
            return c.fault.take().is_some();
        }
        let _ = cfg;
        false
    }

    /// Clears the injected-fault records of *every* resident
    /// configuration, returning how many there were. Supervisors call this
    /// on an array they are about to discard wholesale (e.g. after a
    /// worker crash) so pending faults still count as detected.
    pub fn take_injected_faults(&mut self) -> u64 {
        #[cfg(feature = "faults")]
        let swept = self
            .configs
            .values_mut()
            .filter_map(|c| c.fault.take())
            .count() as u64;
        #[cfg(not(feature = "faults"))]
        let swept = 0;
        swept
    }

    // ---- configuration management ------------------------------------

    /// Places a netlist onto the array and queues it for loading over the
    /// configuration bus.
    ///
    /// The configuration starts executing once loading completes (loading
    /// progresses as the array runs). Resources are reserved immediately, so
    /// a conflicting configuration is rejected up front.
    ///
    /// # Errors
    ///
    /// Returns [`Error::PlacementFailed`] if any resource class is exhausted.
    pub fn configure(&mut self, netlist: &Netlist) -> Result<ConfigId> {
        self.configure_compiled(&CompiledConfig::compile(netlist))
    }

    /// Loads a pre-compiled configuration: the load-time half of
    /// [`configure`](Array::configure).
    ///
    /// Placement footprint and port maps were computed by
    /// [`CompiledConfig::compile`]; this call only allocates array
    /// resources, instantiates channels and objects from the compiled
    /// templates, and queues the serial configuration-bus load. A
    /// configuration manager holding `Arc<CompiledConfig>`s pays the
    /// compile cost once per kernel, not once per load.
    ///
    /// # Errors
    ///
    /// Returns [`Error::PlacementFailed`] if any resource class is exhausted.
    pub fn configure_compiled(&mut self, compiled: &CompiledConfig) -> Result<ConfigId> {
        self.pool.allocate(compiled.placement.counts)?;
        // Ordinals count only loads that got past placement; a WorkerPanic
        // strikes here, before any array state mutates — the supervisor
        // discards the whole array, so the allocation above is moot.
        #[cfg(feature = "faults")]
        let injected = {
            let injected = self.injector.as_ref().and_then(|inj| inj.on_load());
            if injected == Some(FaultKind::WorkerPanic) {
                panic!(
                    "injected fault: loader crashed while configuring {:?}",
                    compiled.name
                );
            }
            injected
        };
        let id = self.next_id;
        self.next_id += 1;

        // Instantiate channels from the compiled edge templates, in the same
        // order the one-shot path used (data edges, then event edges) so
        // slot reuse — and therefore every downstream stat — is unchanged.
        let mut dchan_ids = Vec::with_capacity(compiled.d_edges.len());
        for e in &compiled.d_edges {
            let idx = self.alloc_dchan(Channel::new(e.capacity, e.initial.iter().copied()));
            dchan_ids.push(idx);
        }
        let mut echan_ids = Vec::with_capacity(compiled.e_edges.len());
        for e in &compiled.e_edges {
            let idx = self.alloc_echan(Channel::new(
                e.capacity,
                e.initial.iter().map(|&b| Event(b)),
            ));
            echan_ids.push(idx);
        }

        // Instantiate objects, translating the compiled netlist-local
        // channel indices into the array slots just allocated.
        let mut obj_ids = Vec::with_capacity(compiled.nodes.len());
        for node in &compiled.nodes {
            let state = match &node.kind {
                ObjectKind::Counter(_) => ObjState::Counter {
                    value: 0,
                    remaining: 0,
                },
                ObjectKind::AccumDump => ObjState::Accum(Word::ZERO),
                ObjectKind::Ram { preload } => {
                    let mut mem = vec![Word::ZERO; RAM_WORDS];
                    mem[..preload.len()].copy_from_slice(preload);
                    ObjState::Ram(mem)
                }
                ObjectKind::RamFifo { preload, .. } => {
                    ObjState::Fifo(preload.iter().copied().collect())
                }
                ObjectKind::Input(_) => ObjState::ExtInData(VecDeque::new()),
                ObjectKind::Output(_) => ObjState::ExtOutData(Vec::new()),
                ObjectKind::InputEvent(_) => ObjState::ExtInEv(VecDeque::new()),
                ObjectKind::OutputEvent(_) => ObjState::ExtOutEv(Vec::new()),
                _ => ObjState::None,
            };
            let mut din = [None; 3];
            for (slot, local) in din.iter_mut().zip(node.din.iter()) {
                *slot = local.map(|k| dchan_ids[k as usize] as u32);
            }
            let mut dout: [PortList; 2] = Default::default();
            for (list, locals) in dout.iter_mut().zip(node.dout.iter()) {
                *list =
                    PortList::from_chans(locals.iter().map(|&k| dchan_ids[k as usize]).collect());
            }
            let mut evin = [None; 2];
            for (slot, local) in evin.iter_mut().zip(node.evin.iter()) {
                *slot = local.map(|k| echan_ids[k as usize] as u32);
            }
            let mut evout: [PortList; 1] = Default::default();
            for (list, locals) in evout.iter_mut().zip(node.evout.iter()) {
                *list =
                    PortList::from_chans(locals.iter().map(|&k| echan_ids[k as usize]).collect());
            }
            let obj = RuntimeObject {
                kind: node.kind.clone(),
                label: node.label.clone(),
                state,
                fires: 0,
                enabled: false,
                din,
                dout,
                evin,
                evout,
            };
            obj_ids.push(self.alloc_object(obj));
        }

        let ports = compiled
            .ports
            .iter()
            .map(|(name, n, dir)| (name.clone(), (obj_ids[*n], *dir)))
            .collect();

        // Record channel→object adjacency now that object slots are known:
        // this is what lets a commit wake exactly the two endpoints.
        for (k, e) in compiled.d_edges.iter().enumerate() {
            self.d_adj[dchan_ids[k]] = (obj_ids[e.from.0], obj_ids[e.to.0]);
        }
        for (k, e) in compiled.e_edges.iter().enumerate() {
            self.e_adj[echan_ids[k]] = (obj_ids[e.from.0], obj_ids[e.to.0]);
        }

        self.configs.insert(
            id,
            LoadedConfig {
                name: compiled.name.clone(),
                state: ConfigState::Loading {
                    remaining: compiled.load_cycles,
                },
                objects: obj_ids,
                dchans: dchan_ids,
                echans: echan_ids,
                placement: compiled.placement.clone(),
                ports,
                #[cfg(feature = "faults")]
                fault: injected,
                #[cfg(feature = "faults")]
                fault_at: compiled.load_cycles / 2,
            },
        );
        self.load_queue.push_back(id);
        Ok(ConfigId(id))
    }

    /// Removes a configuration, releasing its resources for reuse — the
    /// paper's differential reconfiguration (Fig. 10): a follow-on
    /// configuration can be placed into the freed PAEs.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NoSuchConfig`] if the id is stale.
    pub fn unload(&mut self, cfg: ConfigId) -> Result<()> {
        let loaded = self
            .configs
            .remove(&cfg.0)
            .ok_or(Error::NoSuchConfig(cfg.0))?;
        let total = self.live_fires(&loaded);
        self.retired_fires.insert(cfg.0, total);
        for o in &loaded.objects {
            self.objects[*o] = None;
        }
        for c in &loaded.dchans {
            self.dchans[*c] = None;
        }
        for c in &loaded.echans {
            self.echans[*c] = None;
        }
        self.pool.release(loaded.placement.counts);
        self.load_queue.retain(|&q| q != cfg.0);
        self.connections
            .retain(|c| c.from_cfg != cfg.0 && c.to_cfg != cfg.0);
        Ok(())
    }

    fn alloc_object(&mut self, obj: RuntimeObject) -> usize {
        if let Some(slot) = self.objects.iter().position(Option::is_none) {
            self.objects[slot] = Some(obj);
            slot
        } else {
            self.objects.push(Some(obj));
            self.sched.queued.push(false);
            self.objects.len() - 1
        }
    }

    fn alloc_dchan(&mut self, ch: Channel<Word>) -> usize {
        if let Some(slot) = self.dchans.iter().position(Option::is_none) {
            self.dchans[slot] = Some(ch);
            slot
        } else {
            self.dchans.push(Some(ch));
            self.d_adj.push((usize::MAX, usize::MAX));
            self.dchans.len() - 1
        }
    }

    fn alloc_echan(&mut self, ch: Channel<Event>) -> usize {
        if let Some(slot) = self.echans.iter().position(Option::is_none) {
            self.echans[slot] = Some(ch);
            slot
        } else {
            self.echans.push(Some(ch));
            self.e_adj.push((usize::MAX, usize::MAX));
            self.echans.len() - 1
        }
    }

    // ---- streaming I/O --------------------------------------------------

    fn port(&self, cfg: ConfigId, name: &str, dir: PortDir) -> Result<usize> {
        let loaded = self.configs.get(&cfg.0).ok_or(Error::NoSuchConfig(cfg.0))?;
        match loaded.ports.get(name) {
            Some(&(obj, d)) if d == dir => Ok(obj),
            _ => Err(Error::UnknownPort(name.to_string())),
        }
    }

    /// Queues words on a named input port (buffered outside the array until
    /// the configuration consumes them).
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration or port does not exist.
    pub fn push_input(
        &mut self,
        cfg: ConfigId,
        name: &str,
        words: impl IntoIterator<Item = Word>,
    ) -> Result<()> {
        let obj = self.port(cfg, name, PortDir::DataIn)?;
        if let Some(RuntimeObject {
            state: ObjState::ExtInData(q),
            ..
        }) = self.objects[obj].as_mut()
        {
            q.extend(words);
            self.sched.wake(obj);
            Ok(())
        } else {
            Err(Error::UnknownPort(name.to_string()))
        }
    }

    /// Queues events on a named event input port.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration or port does not exist.
    pub fn push_input_events(
        &mut self,
        cfg: ConfigId,
        name: &str,
        events: impl IntoIterator<Item = bool>,
    ) -> Result<()> {
        let obj = self.port(cfg, name, PortDir::EvIn)?;
        if let Some(RuntimeObject {
            state: ObjState::ExtInEv(q),
            ..
        }) = self.objects[obj].as_mut()
        {
            q.extend(events);
            self.sched.wake(obj);
            Ok(())
        } else {
            Err(Error::UnknownPort(name.to_string()))
        }
    }

    /// Takes all words produced so far on a named output port.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration or port does not exist.
    pub fn drain_output(&mut self, cfg: ConfigId, name: &str) -> Result<Vec<Word>> {
        let obj = self.port(cfg, name, PortDir::DataOut)?;
        if let Some(RuntimeObject {
            state: ObjState::ExtOutData(v),
            ..
        }) = self.objects[obj].as_mut()
        {
            Ok(std::mem::take(v))
        } else {
            Err(Error::UnknownPort(name.to_string()))
        }
    }

    /// Takes all events produced so far on a named event output port.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration or port does not exist.
    pub fn drain_output_events(&mut self, cfg: ConfigId, name: &str) -> Result<Vec<bool>> {
        let obj = self.port(cfg, name, PortDir::EvOut)?;
        if let Some(RuntimeObject {
            state: ObjState::ExtOutEv(v),
            ..
        }) = self.objects[obj].as_mut()
        {
            Ok(std::mem::take(v))
        } else {
            Err(Error::UnknownPort(name.to_string()))
        }
    }

    /// Number of words waiting on an output port.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration or port does not exist.
    pub fn output_len(&self, cfg: ConfigId, name: &str) -> Result<usize> {
        let obj = self.port(cfg, name, PortDir::DataOut)?;
        if let Some(RuntimeObject {
            state: ObjState::ExtOutData(v),
            ..
        }) = self.objects[obj].as_ref()
        {
            Ok(v.len())
        } else {
            Err(Error::UnknownPort(name.to_string()))
        }
    }

    /// Routes an output port of one configuration into an input port of
    /// another — the board-level stream routing the evaluation platform's
    /// FPGA provides (Fig. 11). Tokens move once per cycle.
    ///
    /// # Errors
    ///
    /// Returns an error if either endpoint does not exist or the directions
    /// do not match.
    pub fn connect(
        &mut self,
        from: ConfigId,
        from_port: &str,
        to: ConfigId,
        to_port: &str,
    ) -> Result<()> {
        let from_obj = self.port(from, from_port, PortDir::DataOut)?;
        let to_obj = self.port(to, to_port, PortDir::DataIn)?;
        self.connections.push(Connection {
            from_obj,
            to_obj,
            event: false,
            from_cfg: from.0,
            to_cfg: to.0,
        });
        Ok(())
    }

    /// Routes an event output port into an event input port of another
    /// configuration.
    ///
    /// # Errors
    ///
    /// Returns an error if either endpoint does not exist or the directions
    /// do not match.
    pub fn connect_events(
        &mut self,
        from: ConfigId,
        from_port: &str,
        to: ConfigId,
        to_port: &str,
    ) -> Result<()> {
        let from_obj = self.port(from, from_port, PortDir::EvOut)?;
        let to_obj = self.port(to, to_port, PortDir::EvIn)?;
        self.connections.push(Connection {
            from_obj,
            to_obj,
            event: true,
            from_cfg: from.0,
            to_cfg: to.0,
        });
        Ok(())
    }

    // ---- simulation -----------------------------------------------------

    /// Advances one clock cycle. Returns `true` if any activity occurred
    /// (an object fired, a load progressed, or a board connection moved
    /// tokens).
    pub fn step(&mut self) -> bool {
        #[cfg(any(test, feature = "reference"))]
        if self.use_reference {
            return self.step_reference();
        }
        self.step_event()
    }

    /// One cycle of the event-driven scheduler: drain the ready list, fire
    /// what can fire, commit only dirty channels and wake their endpoints.
    fn step_event(&mut self) -> bool {
        self.stats.cycles += 1;
        let mut active = self.tick_config_bus();

        // Fire phase: visit only woken objects. Wakes recorded during the
        // commit/board phases below land in `ready` for the next cycle.
        {
            let Array {
                objects,
                dchans,
                echans,
                stats,
                sched,
                dirty_d,
                dirty_e,
                ..
            } = self;
            std::mem::swap(&mut sched.ready, &mut sched.fire_buf);
            let Scheduler {
                fire_buf,
                queued,
                ready,
            } = sched;
            for &o in fire_buf.iter() {
                queued[o] = false;
                if let Some(obj) = objects[o].as_mut() {
                    if !obj.enabled {
                        continue;
                    }
                    let fires = fire_object(obj, dchans, echans, dirty_d, dirty_e, stats);
                    if fires > 0 {
                        active = true;
                        obj.fires += u64::from(fires);
                        // A fired object may be fireable again next cycle
                        // even with no channel transition (e.g. an Input
                        // draining its external queue): self-rewake.
                        if !queued[o] {
                            queued[o] = true;
                            ready.push(o);
                        }
                    }
                }
            }
            fire_buf.clear();
        }

        // Commit phase: only channels that staged a push or pop this cycle.
        // A non-fired object can become fireable only when a blocking
        // predicate on an adjacent channel transitions (full→not-full for
        // the producer, empty→non-empty for the consumer) — wake exactly
        // those endpoints. Steady-state token movement (pop+push keeping
        // the occupancy level) wakes nobody; the fired objects already
        // re-woke themselves above.
        {
            let Array {
                dchans,
                echans,
                d_adj,
                e_adj,
                sched,
                dirty_d,
                dirty_e,
                ..
            } = self;
            for &c in dirty_d.iter() {
                if let Some(ch) = dchans[c].as_mut() {
                    let (_, freed, gained) = ch.commit_wakes();
                    if freed {
                        sched.wake(d_adj[c].0);
                    }
                    if gained {
                        sched.wake(d_adj[c].1);
                    }
                }
            }
            dirty_d.clear();
            for &c in dirty_e.iter() {
                if let Some(ch) = echans[c].as_mut() {
                    let (_, freed, gained) = ch.commit_wakes();
                    if freed {
                        sched.wake(e_adj[c].0);
                    }
                    if gained {
                        sched.wake(e_adj[c].1);
                    }
                }
            }
            dirty_e.clear();
        }

        if self.move_board_tokens() {
            active = true;
        }
        active
    }

    /// One cycle of the retained scan-the-world stepper (the semantics
    /// oracle the golden-equivalence tests compare against).
    #[cfg(any(test, feature = "reference"))]
    fn step_reference(&mut self) -> bool {
        self.stats.cycles += 1;
        let mut active = self.tick_config_bus();

        // Fire phase: scan every live object slot.
        {
            let Array {
                objects,
                dchans,
                echans,
                stats,
                dirty_d,
                dirty_e,
                ..
            } = self;
            for obj in objects.iter_mut().flatten() {
                if !obj.enabled {
                    continue;
                }
                let fires = fire_object(obj, dchans, echans, dirty_d, dirty_e, stats);
                if fires > 0 {
                    active = true;
                    obj.fires += u64::from(fires);
                }
            }
            // The reference commits every channel below; the dirty lists are
            // only a by-product of the shared firing helpers here.
            dirty_d.clear();
            dirty_e.clear();
        }

        // Commit phase: scan every live channel.
        for ch in self.dchans.iter_mut().flatten() {
            ch.commit();
        }
        for ch in self.echans.iter_mut().flatten() {
            ch.commit();
        }

        if self.move_board_tokens() {
            active = true;
        }
        active
    }

    /// Configuration bus: the front of the queue loads one step's worth of
    /// configuration words. On completion the configuration's objects are
    /// enabled and woken so they can fire in the same cycle (matching the
    /// original stepper, which rebuilt its loading set after the bus tick).
    /// Returns `true` if a load progressed.
    fn tick_config_bus(&mut self) -> bool {
        let Some(&front) = self.load_queue.front() else {
            return false;
        };
        self.stats.config_cycles += 1;
        // One word crosses the bus per busy cycle while a load is in flight;
        // both steppers share this helper so the counter stays bit-identical
        // between event-driven and reference runs.
        let mut config_words_streamed = 0;
        let mut finished = false;
        let cfg = self.configs.get_mut(&front).expect("queued config exists");
        if let ConfigState::Loading { remaining } = &mut cfg.state {
            *remaining = remaining.saturating_sub(1);
            config_words_streamed = 1;
            let left = *remaining;
            // An aborted load drops off the bus halfway through its window;
            // a corrupted one consumes the full window but ends Faulted
            // instead of Running. Either way the bus moves on to the next
            // queued load and the residue waits for an unload.
            #[cfg(feature = "faults")]
            {
                if cfg.fault == Some(FaultKind::AbortLoad) && left <= cfg.fault_at {
                    cfg.state = ConfigState::Faulted(FaultKind::AbortLoad);
                    self.load_queue.pop_front();
                    self.stats.config_words += 1;
                    return true;
                }
                if cfg.fault == Some(FaultKind::CorruptConfig) && left == 0 {
                    cfg.state = ConfigState::Faulted(FaultKind::CorruptConfig);
                    self.load_queue.pop_front();
                    self.stats.config_words += 1;
                    return true;
                }
            }
            if left == 0 {
                cfg.state = ConfigState::Running;
                finished = true;
            }
        }
        self.stats.config_words += config_words_streamed;
        if finished {
            self.stats.configs_loaded += 1;
            self.load_queue.pop_front();
            // A stalled configuration reports Running but its objects are
            // never enabled: zero fires and no error — detectable only by
            // the zero-fire watchdog above the array.
            #[cfg(feature = "faults")]
            if self.configs.get(&front).expect("config exists").fault
                == Some(FaultKind::StallConfig)
            {
                return true;
            }
            let Array {
                configs,
                objects,
                sched,
                ..
            } = self;
            let loaded = configs.get(&front).expect("config exists");
            for &o in &loaded.objects {
                if let Some(obj) = objects[o].as_mut() {
                    obj.enabled = true;
                }
                sched.wake(o);
            }
        }
        true
    }

    /// Board-level connections: move buffered tokens between external
    /// ports through the reusable scratch buffers (no per-cycle
    /// allocation). Returns `true` if any token moved.
    fn move_board_tokens(&mut self) -> bool {
        let mut active = false;
        for i in 0..self.connections.len() {
            let conn = self.connections[i];
            if conn.event {
                let mut scratch = std::mem::take(&mut self.board_e);
                if let Some(RuntimeObject {
                    state: ObjState::ExtOutEv(v),
                    ..
                }) = self.objects[conn.from_obj].as_mut()
                {
                    std::mem::swap(v, &mut scratch);
                }
                if !scratch.is_empty() {
                    active = true;
                    if let Some(RuntimeObject {
                        state: ObjState::ExtInEv(q),
                        ..
                    }) = self.objects[conn.to_obj].as_mut()
                    {
                        q.extend(scratch.drain(..));
                    } else {
                        scratch.clear();
                    }
                    self.sched.wake(conn.to_obj);
                }
                self.board_e = scratch;
            } else {
                let mut scratch = std::mem::take(&mut self.board_d);
                if let Some(RuntimeObject {
                    state: ObjState::ExtOutData(v),
                    ..
                }) = self.objects[conn.from_obj].as_mut()
                {
                    std::mem::swap(v, &mut scratch);
                }
                if !scratch.is_empty() {
                    active = true;
                    if let Some(RuntimeObject {
                        state: ObjState::ExtInData(q),
                        ..
                    }) = self.objects[conn.to_obj].as_mut()
                    {
                        q.extend(scratch.drain(..));
                    } else {
                        scratch.clear();
                    }
                    self.sched.wake(conn.to_obj);
                }
                self.board_d = scratch;
            }
        }
        active
    }

    /// Runs exactly `cycles` clock cycles.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Runs until a full cycle passes with no activity, returning the number
    /// of cycles executed.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Timeout`] if the array is still active after
    /// `budget` cycles (e.g. a free-running counter with an unbounded sink).
    pub fn run_until_idle(&mut self, budget: u64) -> Result<u64> {
        for n in 0..budget {
            if !self.step() {
                return Ok(n + 1);
            }
        }
        Err(Error::Timeout { budget })
    }

    /// Runs until `count` words are available on the named output port.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Timeout`] if the budget expires first, or an error
    /// if the port does not exist.
    pub fn run_until_output(
        &mut self,
        cfg: ConfigId,
        name: &str,
        count: usize,
        budget: u64,
    ) -> Result<u64> {
        for n in 0..budget {
            if self.output_len(cfg, name)? >= count {
                return Ok(n);
            }
            self.step();
        }
        if self.output_len(cfg, name)? >= count {
            Ok(budget)
        } else {
            Err(Error::Timeout { budget })
        }
    }
}

// ---- firing rules -------------------------------------------------------

fn can_put_d(dchans: &[Option<Channel<Word>>], list: &PortList) -> bool {
    list.chans().iter().all(|&c| {
        dchans[c as usize]
            .as_ref()
            .expect("live channel")
            .has_space()
    })
}

fn put_d(dchans: &mut [Option<Channel<Word>>], dirty: &mut Vec<usize>, list: &PortList, w: Word) {
    for &c in list.chans() {
        let ch = dchans[c as usize].as_mut().expect("live channel");
        if !ch.is_staged() {
            dirty.push(c as usize);
        }
        ch.produce(w);
    }
}

fn can_put_e(echans: &[Option<Channel<Event>>], list: &PortList) -> bool {
    list.chans().iter().all(|&c| {
        echans[c as usize]
            .as_ref()
            .expect("live channel")
            .has_space()
    })
}

fn put_e(echans: &mut [Option<Channel<Event>>], dirty: &mut Vec<usize>, list: &PortList, e: Event) {
    for &c in list.chans() {
        let ch = echans[c as usize].as_mut().expect("live channel");
        if !ch.is_staged() {
            dirty.push(c as usize);
        }
        ch.produce(e);
    }
}

fn has_d(dchans: &[Option<Channel<Word>>], ch: Option<u32>) -> bool {
    ch.map(|c| {
        dchans[c as usize]
            .as_ref()
            .expect("live channel")
            .has_token()
    })
    .unwrap_or(false)
}

fn take_d(dchans: &mut [Option<Channel<Word>>], dirty: &mut Vec<usize>, ch: u32) -> Word {
    let c = dchans[ch as usize].as_mut().expect("live channel");
    if !c.is_staged() {
        dirty.push(ch as usize);
    }
    c.consume()
}

fn has_e(echans: &[Option<Channel<Event>>], ch: Option<u32>) -> bool {
    ch.map(|c| {
        echans[c as usize]
            .as_ref()
            .expect("live channel")
            .has_token()
    })
    .unwrap_or(false)
}

fn peek_e(echans: &[Option<Channel<Event>>], ch: u32) -> Event {
    echans[ch as usize]
        .as_ref()
        .expect("live channel")
        .peek()
        .expect("token present")
}

fn take_e(echans: &mut [Option<Channel<Event>>], dirty: &mut Vec<usize>, ch: u32) -> Event {
    let c = echans[ch as usize].as_mut().expect("live channel");
    if !c.is_staged() {
        dirty.push(ch as usize);
    }
    c.consume()
}

/// Fires every enabled rule of one object; returns the number of rule fires.
///
/// Channels touched by a fire are recorded on the dirty lists (deduplicated
/// via [`Channel::is_staged`]) so the event-driven commit phase can walk
/// exactly the channels that moved. Both steppers share this function, which
/// is what makes the equivalence argument local: they can only differ in
/// which objects they visit, and an unvisited object never fires.
fn fire_object(
    obj: &mut RuntimeObject,
    dchans: &mut [Option<Channel<Word>>],
    echans: &mut [Option<Channel<Event>>],
    dirty_d: &mut Vec<usize>,
    dirty_e: &mut Vec<usize>,
    stats: &mut ArrayStats,
) -> u32 {
    match &obj.kind {
        ObjectKind::Alu(op) => {
            if has_d(dchans, obj.din[0])
                && has_d(dchans, obj.din[1])
                && can_put_d(dchans, &obj.dout[0])
            {
                let a = take_d(dchans, dirty_d, obj.din[0].unwrap());
                let b = take_d(dchans, dirty_d, obj.din[1].unwrap());
                put_d(dchans, dirty_d, &obj.dout[0], op.eval(a, b));
                if op.uses_multiplier() {
                    stats.mul_fires += 1;
                } else {
                    stats.alu_fires += 1;
                }
                1
            } else {
                0
            }
        }
        ObjectKind::Unary(op) => {
            if has_d(dchans, obj.din[0]) && can_put_d(dchans, &obj.dout[0]) {
                let a = take_d(dchans, dirty_d, obj.din[0].unwrap());
                put_d(dchans, dirty_d, &obj.dout[0], op.eval(a));
                if op.uses_multiplier() {
                    stats.mul_fires += 1;
                } else {
                    stats.reg_fires += 1;
                }
                1
            } else {
                0
            }
        }
        ObjectKind::Const(k) => {
            if !obj.dout[0].is_empty() && can_put_d(dchans, &obj.dout[0]) {
                put_d(dchans, dirty_d, &obj.dout[0], *k);
                stats.reg_fires += 1;
                1
            } else {
                0
            }
        }
        ObjectKind::Counter(cfg) => {
            let cfg = *cfg;
            fire_counter(obj, cfg, dchans, echans, dirty_d, dirty_e, stats)
        }
        ObjectKind::Select => {
            if has_d(dchans, obj.din[0])
                && has_d(dchans, obj.din[1])
                && has_e(echans, obj.evin[0])
                && can_put_d(dchans, &obj.dout[0])
            {
                let sel = take_e(echans, dirty_e, obj.evin[0].unwrap());
                let a = take_d(dchans, dirty_d, obj.din[0].unwrap());
                let b = take_d(dchans, dirty_d, obj.din[1].unwrap());
                put_d(dchans, dirty_d, &obj.dout[0], if sel.0 { b } else { a });
                stats.reg_fires += 1;
                1
            } else {
                0
            }
        }
        ObjectKind::Merge => {
            if has_e(echans, obj.evin[0]) && can_put_d(dchans, &obj.dout[0]) {
                let sel = peek_e(echans, obj.evin[0].unwrap());
                let port = if sel.0 { 1 } else { 0 };
                if has_d(dchans, obj.din[port]) {
                    take_e(echans, dirty_e, obj.evin[0].unwrap());
                    let v = take_d(dchans, dirty_d, obj.din[port].unwrap());
                    put_d(dchans, dirty_d, &obj.dout[0], v);
                    stats.reg_fires += 1;
                    return 1;
                }
            }
            0
        }
        ObjectKind::Demux => {
            if has_d(dchans, obj.din[0]) && has_e(echans, obj.evin[0]) {
                let sel = peek_e(echans, obj.evin[0].unwrap());
                let port = if sel.0 { 1 } else { 0 };
                if can_put_d(dchans, &obj.dout[port]) {
                    take_e(echans, dirty_e, obj.evin[0].unwrap());
                    let v = take_d(dchans, dirty_d, obj.din[0].unwrap());
                    put_d(dchans, dirty_d, &obj.dout[port], v);
                    stats.reg_fires += 1;
                    return 1;
                }
            }
            0
        }
        ObjectKind::Swap => {
            if has_d(dchans, obj.din[0])
                && has_d(dchans, obj.din[1])
                && has_e(echans, obj.evin[0])
                && can_put_d(dchans, &obj.dout[0])
                && can_put_d(dchans, &obj.dout[1])
            {
                let sel = take_e(echans, dirty_e, obj.evin[0].unwrap());
                let a = take_d(dchans, dirty_d, obj.din[0].unwrap());
                let b = take_d(dchans, dirty_d, obj.din[1].unwrap());
                let (x, y) = if sel.0 { (b, a) } else { (a, b) };
                put_d(dchans, dirty_d, &obj.dout[0], x);
                put_d(dchans, dirty_d, &obj.dout[1], y);
                stats.reg_fires += 1;
                1
            } else {
                0
            }
        }
        ObjectKind::Gate => {
            if has_d(dchans, obj.din[0]) && has_e(echans, obj.evin[0]) {
                let pass = peek_e(echans, obj.evin[0].unwrap()).0;
                if pass && !can_put_d(dchans, &obj.dout[0]) {
                    return 0;
                }
                take_e(echans, dirty_e, obj.evin[0].unwrap());
                let v = take_d(dchans, dirty_d, obj.din[0].unwrap());
                if pass {
                    put_d(dchans, dirty_d, &obj.dout[0], v);
                }
                stats.reg_fires += 1;
                1
            } else {
                0
            }
        }
        ObjectKind::AccumDump => {
            if has_d(dchans, obj.din[0]) && has_e(echans, obj.evin[0]) {
                let dump = peek_e(echans, obj.evin[0].unwrap()).0;
                if dump && !can_put_d(dchans, &obj.dout[0]) {
                    return 0;
                }
                take_e(echans, dirty_e, obj.evin[0].unwrap());
                let v = take_d(dchans, dirty_d, obj.din[0].unwrap());
                if let ObjState::Accum(acc) = &mut obj.state {
                    *acc = acc.wrapping_add(v);
                    if dump {
                        let out = *acc;
                        *acc = Word::ZERO;
                        put_d(dchans, dirty_d, &obj.dout[0], out);
                    }
                }
                stats.alu_fires += 1;
                1
            } else {
                0
            }
        }
        ObjectKind::ToEvent => {
            if has_d(dchans, obj.din[0]) && can_put_e(echans, &obj.evout[0]) {
                let v = take_d(dchans, dirty_d, obj.din[0].unwrap());
                put_e(echans, dirty_e, &obj.evout[0], Event(v.truthy()));
                stats.event_fires += 1;
                1
            } else {
                0
            }
        }
        ObjectKind::ToData => {
            if has_e(echans, obj.evin[0]) && can_put_d(dchans, &obj.dout[0]) {
                let e = take_e(echans, dirty_e, obj.evin[0].unwrap());
                put_d(dchans, dirty_d, &obj.dout[0], Word::new(e.0 as i32));
                stats.reg_fires += 1;
                1
            } else {
                0
            }
        }
        ObjectKind::EventNot => {
            if has_e(echans, obj.evin[0]) && can_put_e(echans, &obj.evout[0]) {
                let e = take_e(echans, dirty_e, obj.evin[0].unwrap());
                put_e(echans, dirty_e, &obj.evout[0], Event(!e.0));
                stats.event_fires += 1;
                1
            } else {
                0
            }
        }
        ObjectKind::EventAnd | ObjectKind::EventOr => {
            if has_e(echans, obj.evin[0])
                && has_e(echans, obj.evin[1])
                && can_put_e(echans, &obj.evout[0])
            {
                let a = take_e(echans, dirty_e, obj.evin[0].unwrap());
                let b = take_e(echans, dirty_e, obj.evin[1].unwrap());
                let r = if matches!(obj.kind, ObjectKind::EventAnd) {
                    a.0 && b.0
                } else {
                    a.0 || b.0
                };
                put_e(echans, dirty_e, &obj.evout[0], Event(r));
                stats.event_fires += 1;
                1
            } else {
                0
            }
        }
        ObjectKind::Ram { .. } => {
            let mut fires = 0;
            // Write rule first: write-through within the cycle.
            if obj.din[1].is_some()
                && obj.din[2].is_some()
                && has_d(dchans, obj.din[1])
                && has_d(dchans, obj.din[2])
            {
                let a = take_d(dchans, dirty_d, obj.din[1].unwrap()).bits() as usize % RAM_WORDS;
                let v = take_d(dchans, dirty_d, obj.din[2].unwrap());
                if let ObjState::Ram(mem) = &mut obj.state {
                    mem[a] = v;
                }
                stats.ram_writes += 1;
                fires += 1;
            }
            if obj.din[0].is_some() && has_d(dchans, obj.din[0]) && can_put_d(dchans, &obj.dout[0])
            {
                let a = take_d(dchans, dirty_d, obj.din[0].unwrap()).bits() as usize % RAM_WORDS;
                let v = if let ObjState::Ram(mem) = &obj.state {
                    mem[a]
                } else {
                    Word::ZERO
                };
                put_d(dchans, dirty_d, &obj.dout[0], v);
                stats.ram_reads += 1;
                fires += 1;
            }
            fires
        }
        ObjectKind::RamFifo { depth, ring, .. } => {
            let depth = *depth;
            if *ring {
                if can_put_d(dchans, &obj.dout[0]) && !obj.dout[0].is_empty() {
                    if let ObjState::Fifo(buf) = &mut obj.state {
                        if let Some(v) = buf.pop_front() {
                            put_d(dchans, dirty_d, &obj.dout[0], v);
                            buf.push_back(v);
                            stats.fifo_fires += 1;
                            return 1;
                        }
                    }
                }
                0
            } else {
                let mut fires = 0;
                let mut popped = false;
                if let ObjState::Fifo(buf) = &mut obj.state {
                    if !buf.is_empty() && can_put_d(dchans, &obj.dout[0]) {
                        put_d(
                            dchans,
                            dirty_d,
                            &obj.dout[0],
                            *buf.front().expect("nonempty"),
                        );
                        popped = true;
                        stats.fifo_fires += 1;
                        fires += 1;
                    }
                }
                let space = if let ObjState::Fifo(buf) = &obj.state {
                    buf.len() - usize::from(popped) < depth
                } else {
                    false
                };
                if space && has_d(dchans, obj.din[0]) {
                    let v = take_d(dchans, dirty_d, obj.din[0].unwrap());
                    if let ObjState::Fifo(buf) = &mut obj.state {
                        buf.push_back(v);
                    }
                    stats.fifo_fires += 1;
                    fires += 1;
                }
                if popped {
                    if let ObjState::Fifo(buf) = &mut obj.state {
                        buf.pop_front();
                    }
                }
                fires
            }
        }
        ObjectKind::Input(_) => {
            if can_put_d(dchans, &obj.dout[0]) {
                if let ObjState::ExtInData(q) = &mut obj.state {
                    if let Some(v) = q.pop_front() {
                        put_d(dchans, dirty_d, &obj.dout[0], v);
                        stats.io_words += 1;
                        return 1;
                    }
                }
            }
            0
        }
        ObjectKind::Output(_) => {
            if has_d(dchans, obj.din[0]) {
                let v = take_d(dchans, dirty_d, obj.din[0].unwrap());
                if let ObjState::ExtOutData(buf) = &mut obj.state {
                    buf.push(v);
                }
                stats.io_words += 1;
                1
            } else {
                0
            }
        }
        ObjectKind::InputEvent(_) => {
            if can_put_e(echans, &obj.evout[0]) {
                if let ObjState::ExtInEv(q) = &mut obj.state {
                    if let Some(v) = q.pop_front() {
                        put_e(echans, dirty_e, &obj.evout[0], Event(v));
                        stats.event_fires += 1;
                        return 1;
                    }
                }
            }
            0
        }
        ObjectKind::OutputEvent(_) => {
            if has_e(echans, obj.evin[0]) {
                let e = take_e(echans, dirty_e, obj.evin[0].unwrap());
                if let ObjState::ExtOutEv(buf) = &mut obj.state {
                    buf.push(e.0);
                }
                stats.event_fires += 1;
                1
            } else {
                0
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn fire_counter(
    obj: &mut RuntimeObject,
    cfg: CounterCfg,
    dchans: &mut [Option<Channel<Word>>],
    echans: &mut [Option<Channel<Event>>],
    dirty_d: &mut Vec<usize>,
    dirty_e: &mut Vec<usize>,
    stats: &mut ArrayStats,
) -> u32 {
    let mut fires = 0;
    let (value, remaining) = match &mut obj.state {
        ObjState::Counter { value, remaining } => (value, remaining),
        _ => unreachable!("counter state"),
    };
    if *remaining == 0 {
        if cfg.gated {
            if has_e(echans, obj.evin[0]) {
                take_e(echans, dirty_e, obj.evin[0].unwrap());
                *remaining = cfg.period;
                *value = cfg.start;
                stats.event_fires += 1;
                fires += 1;
            } else {
                return 0;
            }
        } else {
            // Internal reset without any token movement: deferring it until
            // the next wake is observationally identical, so the scheduler
            // may legally skip idle counters in this state.
            *remaining = cfg.period;
            *value = cfg.start;
        }
    }
    // A counter with no data consumers would fire forever without moving a
    // token; require at least one connected value channel.
    if obj.dout[0].is_empty() {
        return fires;
    }
    let last = *remaining == 1;
    if can_put_d(dchans, &obj.dout[0]) && (!last || can_put_e(echans, &obj.evout[0])) {
        put_d(dchans, dirty_d, &obj.dout[0], Word::from_i64(*value));
        if last {
            put_e(echans, dirty_e, &obj.evout[0], Event(true));
        }
        *value += cfg.step;
        *remaining -= 1;
        stats.reg_fires += 1;
        fires += 1;
    }
    fires
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NetlistBuilder;
    use crate::object::{AluOp, UnaryOp};

    /// Runs the same scenario on a fresh event-driven array and a fresh
    /// reference array, and requires identical observables and stats.
    fn check<T: PartialEq + std::fmt::Debug>(scenario: impl Fn(&mut Array) -> T) {
        let mut fast = Array::xpp64a();
        assert!(!fast.uses_reference_stepper());
        let mut slow = with_reference_stepper(Array::xpp64a);
        assert!(slow.uses_reference_stepper());
        let a = scenario(&mut fast);
        let b = scenario(&mut slow);
        assert_eq!(a, b, "observable outputs diverge between steppers");
        assert_eq!(fast.stats(), slow.stats(), "stats diverge between steppers");
    }

    #[test]
    fn steppers_agree_on_an_arithmetic_pipeline() {
        check(|array| {
            let mut nl = NetlistBuilder::new("arith");
            let a = nl.input("a");
            let b = nl.input("b");
            let s = nl.alu(AluOp::Add, a, b);
            let k = nl.constant(Word::new(3));
            let m = nl.alu(AluOp::Mul, s, k);
            let p = nl.unary(UnaryOp::ShrK(1), m);
            let f = nl.fifo(4, vec![]);
            nl.wire(p, f.input);
            nl.output("y", f.output);
            let cfg = array.configure(&nl.build().unwrap()).unwrap();
            array.push_input(cfg, "a", (0..40).map(Word::new)).unwrap();
            array
                .push_input(cfg, "b", (0..40).map(|i| Word::new(2 * i + 1)))
                .unwrap();
            let n = array.run_until_idle(10_000).unwrap();
            (
                n,
                array.drain_output(cfg, "y").unwrap(),
                array.config_fire_count(cfg),
            )
        });
    }

    #[test]
    fn steppers_agree_on_event_steering() {
        check(|array| {
            let mut nl = NetlistBuilder::new("steer");
            let d = nl.input("d");
            let sel = nl.input_event("sel");
            let (lo, hi) = nl.demux(sel, d);
            let gate_ev = nl.input_event("pass");
            let g = nl.gate(gate_ev, lo);
            let dump = nl.input_event("dump");
            let acc = nl.accum_dump(hi, dump);
            let swap_ev = nl.input_event("swap");
            let (x, y) = nl.swap(swap_ev, g, acc);
            let tog = nl.to_event(x);
            let not = nl.ev_not(tog);
            let both = nl.ev_and(tog, not);
            nl.output("y", y);
            let td = nl.to_data(both);
            nl.output("t", td);
            nl.output_event("e", not);
            let cfg = array.configure(&nl.build().unwrap()).unwrap();
            array.push_input(cfg, "d", (1..33).map(Word::new)).unwrap();
            array
                .push_input_events(cfg, "sel", (0..32).map(|i| i % 2 == 0))
                .unwrap();
            array
                .push_input_events(cfg, "pass", (0..16).map(|i| i % 4 != 0))
                .unwrap();
            array
                .push_input_events(cfg, "dump", (0..16).map(|i| i % 4 == 3))
                .unwrap();
            array
                .push_input_events(cfg, "swap", (0..8).map(|i| i % 2 == 0))
                .unwrap();
            let n = array.run_until_idle(10_000).unwrap();
            (
                n,
                array.drain_output(cfg, "y").unwrap(),
                array.drain_output(cfg, "t").unwrap(),
                array.drain_output_events(cfg, "e").unwrap(),
            )
        });
    }

    #[test]
    fn steppers_agree_on_select_and_merge() {
        check(|array| {
            let mut nl = NetlistBuilder::new("selmerge");
            let a = nl.input("a");
            let b = nl.input("b");
            let sel = nl.input_event("sel");
            let s = nl.select(sel, a, b);
            let c = nl.input("c");
            let msel = nl.input_event("msel");
            let m = nl.merge(msel, s, c);
            nl.output("y", m);
            let cfg = array.configure(&nl.build().unwrap()).unwrap();
            array.push_input(cfg, "a", (0..24).map(Word::new)).unwrap();
            array
                .push_input(cfg, "b", (100..124).map(Word::new))
                .unwrap();
            array
                .push_input(cfg, "c", (200..212).map(Word::new))
                .unwrap();
            array
                .push_input_events(cfg, "sel", (0..24).map(|i| i % 3 == 0))
                .unwrap();
            array
                .push_input_events(cfg, "msel", (0..36).map(|i| i % 3 == 2))
                .unwrap();
            let n = array.run_until_idle(10_000).unwrap();
            (n, array.drain_output(cfg, "y").unwrap())
        });
    }

    #[test]
    fn steppers_agree_on_counters_and_memory() {
        check(|array| {
            let mut nl = NetlistBuilder::new("mem");
            // Free-running address counter feeding a preloaded RAM read
            // port; the wrap event gates a burst counter whose values are
            // written back into the RAM.
            let ctr = nl.counter(CounterCfg::modulo(8));
            let ram = nl.ram((0..16).map(Word::new).collect());
            nl.wire(ctr.value, ram.rd_addr);
            let burst = nl.counter(CounterCfg::gated_burst(3));
            nl.wire_ev(ctr.wrap, burst.go.unwrap());
            let waddr = nl.counter(CounterCfg::modulo(5));
            nl.wire(waddr.value, ram.wr_addr);
            nl.wire(burst.value, ram.wr_data);
            let ring = nl.ring_fifo(vec![Word::new(9), Word::new(7)]);
            let sum = nl.alu(AluOp::Add, ram.rd_data, ring);
            nl.output("y", sum);
            let cfg = array.configure(&nl.build().unwrap()).unwrap();
            // Free-running counters never idle: run a fixed window.
            array.run(600);
            (
                array.drain_output(cfg, "y").unwrap(),
                array.config_fire_count(cfg),
                array.object_fire_counts(cfg).unwrap(),
            )
        });
    }

    #[test]
    fn steppers_agree_across_reconfiguration() {
        check(|array| {
            let pipeline = |name: &str, k: i32| {
                let mut nl = NetlistBuilder::new(name);
                let a = nl.input("a");
                let c = nl.constant(Word::new(k));
                let y = nl.alu(AluOp::Add, a, c);
                nl.output("y", y);
                nl.build().unwrap()
            };
            let c1 = array.configure(&pipeline("one", 10)).unwrap();
            let c2 = array.configure(&pipeline("two", 20)).unwrap();
            array.push_input(c1, "a", (0..10).map(Word::new)).unwrap();
            array.push_input(c2, "a", (0..10).map(Word::new)).unwrap();
            // Step through the middle of the load queue to cover firing
            // while a later configuration is still loading.
            array.run(CONFIG_CYCLES_PER_OBJECT * 3 + 2);
            let early = array.drain_output(c1, "y").unwrap();
            array.run_until_idle(10_000).unwrap();
            let one = array.drain_output(c1, "y").unwrap();
            let fires_one = array.config_fire_count(c1);
            array.unload(c1).unwrap();
            // Retired counts must remain queryable after unload.
            let retired = array.config_fire_count(c1);
            let c3 = array.configure(&pipeline("three", 30)).unwrap();
            array.push_input(c3, "a", (0..10).map(Word::new)).unwrap();
            array.run_until_idle(10_000).unwrap();
            (
                early,
                one,
                fires_one,
                retired,
                array.drain_output(c2, "y").unwrap(),
                array.drain_output(c3, "y").unwrap(),
                array.fires_by_config(),
            )
        });
    }

    #[test]
    fn steppers_agree_on_board_connections() {
        check(|array| {
            let mut src = NetlistBuilder::new("src");
            let a = src.input("a");
            let c = src.constant(Word::new(2));
            let y = src.alu(AluOp::Mul, a, c);
            src.output("y", y);
            let mut dst = NetlistBuilder::new("dst");
            let b = dst.input("b");
            let k = dst.constant(Word::new(1));
            let z = dst.alu(AluOp::Add, b, k);
            dst.output("z", z);
            let c1 = array.configure(&src.build().unwrap()).unwrap();
            let c2 = array.configure(&dst.build().unwrap()).unwrap();
            array.connect(c1, "y", c2, "b").unwrap();
            array.push_input(c1, "a", (0..20).map(Word::new)).unwrap();
            let n = array.run_until_idle(10_000).unwrap();
            (n, array.drain_output(c2, "z").unwrap())
        });
    }

    #[test]
    fn fires_by_config_matches_per_config_counts() {
        let mut array = Array::xpp64a();
        let mut nl = NetlistBuilder::new("p");
        let a = nl.input("a");
        let c = nl.constant(Word::new(1));
        let y = nl.alu(AluOp::Add, a, c);
        nl.output("y", y);
        let cfg = array.configure(&nl.build().unwrap()).unwrap();
        array.push_input(cfg, "a", (0..8).map(Word::new)).unwrap();
        array.run_until_idle(10_000).unwrap();
        let by_config = array.fires_by_config();
        assert_eq!(by_config.len(), 1);
        assert_eq!(by_config[0].0, cfg);
        assert_eq!(by_config[0].1, array.config_fire_count(cfg));
        assert!(by_config[0].1 > 0);
        // Unloading preserves the total under config_fire_count and drops
        // the config from the live view.
        let total = array.config_fire_count(cfg);
        array.unload(cfg).unwrap();
        assert_eq!(array.config_fire_count(cfg), total);
        assert!(array.fires_by_config().is_empty());
    }

    #[test]
    fn event_scheduler_sleeps_when_tokens_stall() {
        // A pipeline with no input tokens must go (and stay) fully idle:
        // the ready list drains and stepping reports no activity.
        let mut array = Array::xpp64a();
        let mut nl = NetlistBuilder::new("stall");
        let a = nl.input("a");
        let c = nl.constant(Word::new(1));
        let y = nl.alu(AluOp::Add, a, c);
        nl.output("y", y);
        let cfg = array.configure(&nl.build().unwrap()).unwrap();
        array.run_until_idle(10_000).unwrap();
        assert!(array.sched.ready.is_empty(), "ready list must drain");
        // Late input wakes it back up.
        array.push_input(cfg, "a", [Word::new(5)]).unwrap();
        array.run_until_idle(10_000).unwrap();
        let out = array.drain_output(cfg, "y").unwrap();
        assert_eq!(out, vec![Word::new(6)]);
    }
}
