//! Regenerates every table and figure of the paper's evaluation.
//!
//! Usage: `cargo run --release -p sdr-bench --bin report -- <experiment>`
//! where `<experiment>` is one of `fig1 fig2 table1 fig5 fig6 fig7 fig9
//! fig10 fig11 fig12 rake-ber ofdm-ber all` (default `all`).

use sdr_bench::{bits, chips_12bit, fft_frame};
use sdr_core::platform::SdrPlatform;
use sdr_core::requirements::{exceeds_single_dsp, Mobility, PROTOCOLS};
use sdr_core::scheduler::{schedule_edf, Job};
use sdr_core::{ofdm_partitioning, rake_partitioning};
use sdr_dsp::fft::{fft, Fft64Fixed};
use sdr_dsp::metrics::BerCounter;
use sdr_dsp::noise::sigma_for_ebn0;
use sdr_dsp::Cplx;
use sdr_ofdm::channel::WlanChannel;
use sdr_ofdm::params::{rate, RATES};
use sdr_ofdm::rx::OfdmReceiver;
use sdr_ofdm::tx::Transmitter;
use sdr_ofdm::xpp_map::{ArrayFft64, ReconfigurableFrontend};
use sdr_wcdma::channel::{propagate, AdcConfig, CellLink, Path};
use sdr_wcdma::rake::finger::{correct, descramble, despread};
use sdr_wcdma::rake::searcher::PathSearcher;
use sdr_wcdma::rake::{RakeConfig, RakeReceiver};
use sdr_wcdma::scenario::{table1_scenarios, FingerScenario, FULL_RATE_MHZ};
use sdr_wcdma::scrambling::ScramblingCode;
use sdr_wcdma::symbols::sttd_decode_fixed;
use sdr_wcdma::tx::{CellConfig, CellTransmitter};
use sdr_wcdma::xpp_map::{
    ArrayCorrector, ArrayDescrambler, ArrayMultiplexedDespreader, ArraySttdCorrector,
};
use xpp_array::power::{AreaModel, EnergyModel};
use xpp_array::{Array, Geometry};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let all = which == "all";
    let mut ran = false;
    macro_rules! run {
        ($name:literal, $f:ident) => {
            if all || which == $name {
                println!("\n================ {} ================", $name);
                $f();
                ran = true;
            }
        };
    }
    run!("fig1", fig1);
    run!("fig2", fig2);
    run!("table1", table1);
    run!("fig5", fig5);
    run!("fig6", fig6);
    run!("fig7", fig7);
    run!("fig9", fig9);
    run!("fig10", fig10);
    run!("fig11", fig11);
    run!("fig12", fig12);
    run!("rake-ber", rake_ber);
    run!("ofdm-ber", ofdm_ber);
    if !ran {
        eprintln!("unknown experiment {which:?}");
        std::process::exit(1);
    }
}

/// Fig. 1 — processing-power requirements of wireless access protocols.
fn fig1() {
    println!(
        "{:<14} {:>12} {:>18}",
        "protocol", "MIPS", "fits 1600-MIPS DSP?"
    );
    for p in PROTOCOLS {
        println!(
            "{:<14} {:>12} {:>18}",
            p.name(),
            p.required_mips(),
            if exceeds_single_dsp(p) { "no" } else { "yes" }
        );
    }
}

/// Fig. 2 — data rate vs mobility.
fn fig2() {
    println!(
        "{:<14} {:>12} {:>12} {:>12}",
        "protocol", "stationary", "pedestrian", "vehicular"
    );
    for p in PROTOCOLS {
        println!(
            "{:<14} {:>10.3}Mb {:>10.3}Mb {:>10.3}Mb",
            p.name(),
            p.rate_at_mbps(Mobility::Stationary),
            p.rate_at_mbps(Mobility::Pedestrian),
            p.rate_at_mbps(Mobility::Vehicular),
        );
    }
}

/// Table 1 — rake finger scenarios and the single-physical-finger clock.
fn table1() {
    println!(
        "{:>4} {:>4} {:>4} {:>8} {:>10} {:>8}",
        "BTS", "path", "DCH", "fingers", "clock MHz", "status"
    );
    for s in table1_scenarios() {
        let status = if !s.feasible() {
            "infeasible"
        } else if s.needs_full_rate() {
            "FULL RATE" // the shaded cells of the paper's table
        } else {
            "ok"
        };
        println!(
            "{:>4} {:>4} {:>4} {:>8} {:>10.2} {:>8}",
            s.basestations,
            s.multipaths,
            s.channels,
            s.fingers(),
            s.required_mhz(),
            status
        );
    }
    let headline = FingerScenario::new(6, 3, 1);
    println!(
        "paper headline: 6 BTS x 3 paths = {} fingers -> {:.2} MHz (paper: {:.2} MHz)",
        headline.fingers(),
        headline.required_mhz(),
        FULL_RATE_MHZ
    );
}

fn kernel_summary(name: &str, array: &Array, cfg: xpp_array::ConfigId, tokens: u64, exact: bool) {
    let p = array.placement(cfg).unwrap();
    let stats = array.stats();
    let cycles = stats.cycles;
    let energy = EnergyModel::hcmos9_130nm().report(&stats, array.geometry(), 69.12e6);
    println!(
        "{name}: bit-exact={} | {} objects: {} ALU, {} REG, {} RAM-PAE, {} I/O | \
         {cycles} cycles for {tokens} tokens ({:.2} cyc/token) | {:.1} nJ ({:.1} mW @69.12MHz)",
        if exact { "YES" } else { "NO" },
        p.objects,
        p.counts.alu,
        p.counts.reg,
        p.counts.ram,
        p.counts.io,
        cycles as f64 / tokens as f64,
        energy.total_nj(),
        energy.avg_power_mw()
    );
}

/// Fig. 5 — the descrambler on the array.
fn fig5() {
    let code = ScramblingCode::downlink(7);
    let rx = chips_12bit(4096, 5);
    let mut hw = ArrayDescrambler::new().unwrap();
    let out = hw.process(&rx, &code, 0, 0, rx.len()).unwrap();
    let exact = out == descramble(&rx, &code, 0, 0, rx.len());
    kernel_summary(
        "fig5 descrambler",
        hw.array(),
        hw.config(),
        rx.len() as u64,
        exact,
    );
}

/// Fig. 6 — the time-multiplexed despreader (the 18-finger physical finger).
fn fig6() {
    let fingers = 18;
    let sf = 64;
    let streams: Vec<Vec<Cplx<i32>>> = (0..fingers)
        .map(|f| chips_12bit(sf * 8, f as u32 + 1))
        .collect();
    let mut hw = ArrayMultiplexedDespreader::new(fingers, sf, 17).unwrap();
    let out = hw.process(&streams).unwrap();
    let exact = streams
        .iter()
        .enumerate()
        .all(|(f, s)| out[f] == despread(s, sf, 17));
    let tokens = (fingers * sf * 8) as u64;
    kernel_summary(
        "fig6 despreader (18 fingers)",
        hw.array(),
        hw.config(),
        tokens,
        exact,
    );
    println!(
        "    one chip/cycle at 69.12 MHz serves 69.12/3.84 = {} virtual fingers — the paper's scenario",
        (69.12f64 / 3.84).round()
    );
}

/// Fig. 7 — the channel-correction unit (resident weights + STTD decode).
fn fig7() {
    // Resident-weight corrector, 18 fingers.
    let fingers = 18;
    let weights: Vec<Cplx<i32>> = (0..fingers)
        .map(|f| Cplx::new(500 - 20 * f as i32, 10 * f as i32 - 90))
        .collect();
    let per: Vec<Vec<Cplx<i32>>> = (0..fingers)
        .map(|f| chips_12bit(64, 50 + f as u32))
        .collect();
    let mut muxed = Vec::new();
    for k in 0..64 {
        for s in &per {
            muxed.push(s[k]);
        }
    }
    let mut hw = ArrayCorrector::new(fingers).unwrap();
    hw.set_weights(&weights).unwrap();
    let out = hw.process(&muxed).unwrap();
    let exact = (0..fingers).all(|f| {
        let got: Vec<Cplx<i32>> = out.iter().skip(f).step_by(fingers).copied().collect();
        got == correct(&per[f], weights[f])
    });
    kernel_summary(
        "fig7 corrector (18 fingers)",
        hw.array(),
        hw.config(),
        muxed.len() as u64,
        exact,
    );

    // STTD decoding corrector.
    let w1 = Cplx::new(430, -120);
    let w2 = Cplx::new(-90, 380);
    let symbols = chips_12bit(256, 9);
    let mut hw = ArraySttdCorrector::new().unwrap();
    let out = hw.process(&symbols, w1, w2).unwrap();
    let exact = symbols.chunks_exact(2).enumerate().all(|(p, pair)| {
        let (s1, s2) = sttd_decode_fixed(pair[0], pair[1], w1, w2, 9);
        out[2 * p] == s1 && out[2 * p + 1] == s2
    });
    kernel_summary(
        "fig7 STTD corrector",
        hw.array(),
        hw.config(),
        symbols.len() as u64,
        exact,
    );
}

/// Fig. 9 — the radix-4 FFT64: bit-exactness, throughput and the
/// stage-scaling precision trade-off.
fn fig9() {
    let mut hw = ArrayFft64::new(2).unwrap();
    let frames: Vec<[Cplx<i32>; 64]> = (0..8).map(|s| fft_frame(s + 1)).collect();
    let golden = Fft64Fixed::with_stage_shift(2);
    let before = hw.array().stats().cycles;
    let out = hw.run_frames(&frames).unwrap();
    let cycles = hw.array().stats().cycles - before;
    let exact = frames.iter().zip(&out).all(|(x, y)| golden.run(x) == *y);
    kernel_summary(
        "fig9 FFT64 (>>2/stage)",
        hw.array(),
        hw.config(),
        256 * frames.len() as u64,
        exact,
    );
    let per_frame = cycles as f64 / frames.len() as f64;
    println!(
        "    {per_frame:.0} cycles/FFT; an 80-sample OFDM symbol at 20 Msps gives \
         {:.0} cycles of budget at 69.12 MHz -> {}",
        80.0 * 69.12 / 20.0,
        if per_frame < 80.0 * 69.12 / 20.0 {
            "meets real time"
        } else {
            "MISSES real time"
        }
    );

    // Precision ablation: per-stage shift vs output SNR (10-bit input) and
    // which WLAN rates survive.
    println!("    stage-shift ablation (paper uses >>2):");
    for shift in [0u32, 1, 2, 3] {
        let fixed = Fft64Fixed::with_stage_shift(shift);
        let mut sig = 0.0;
        let mut err = 0.0;
        for s in 0..4u32 {
            let x = fft_frame(s + 40);
            let reference = fft(&x.iter().map(|v| v.to_f64()).collect::<Vec<_>>());
            let scale = 1.0 / (1u64 << (3 * shift)) as f64;
            for (f, r) in fixed.run(&x).iter().zip(&reference) {
                let want = Cplx::new(r.re * scale, r.im * scale);
                sig += want.sqmag();
                err += (f.to_f64() - want).sqmag();
            }
        }
        let snr = 10.0 * (sig / err.max(1e-12)).log10();
        // Try every rate over a clean channel with this shift.
        let mut supported = Vec::new();
        for r in RATES {
            let data = bits(2 * r.data_bits_per_symbol(), 3);
            let frame = Transmitter::new(r).transmit(&data);
            let rxs = WlanChannel::default().run(&frame.samples);
            let ok = OfdmReceiver::new(r)
                .with_fft_stage_shift(shift)
                .receive(&rxs, data.len())
                .map(|o| o.bits == data)
                .unwrap_or(false);
            if ok {
                supported.push(r.mbps);
            }
        }
        println!(
            "      >>{shift}/stage: output SNR {snr:6.1} dB; clean-channel rates OK: {supported:?}"
        );
    }
}

/// Fig. 10 — runtime partial reconfiguration between detector and
/// demodulator.
fn fig10() {
    let mut fe = ReconfigurableFrontend::new(2).unwrap();
    // Search over a real frame preceded by noise.
    let r = rate(12).unwrap();
    let data = bits(96, 1);
    let frame = Transmitter::new(r).transmit(&data);
    // 2x oversample by sample-and-hold (the 40 Msps ADC).
    let ch = WlanChannel {
        leading_gap: 80,
        ..Default::default()
    };
    let rx20 = ch.run(&frame.samples);
    let mut rx40 = Vec::with_capacity(rx20.len() * 2);
    for s in &rx20 {
        rx40.push(*s);
        rx40.push(*s);
    }
    let metric = fe.search(&rx40[..4000.min(rx40.len())]).unwrap();
    let peak = *metric.iter().max().unwrap();
    let detect_at = metric.iter().position(|&m| m > peak / 2).unwrap();
    println!("search: preamble plateau detected at sample {detect_at} (gap was 80)");
    let cfg_cycles_before = fe.array().stats().config_cycles;
    fe.switch_to_demodulation().unwrap();
    let swap_cost = fe.array().stats().config_cycles;
    for e in fe.events() {
        println!(
            "  [{:>6} cfg-cycles] {} | free: {} ALU, {} RAM, {} I/O",
            e.config_cycles, e.action, e.free.alu, e.free.ram, e.free.io
        );
    }
    println!(
        "differential reconfiguration: 2a->2b swap completed in {} bus cycles \
         (a full-array reload would also re-send config 1's {} objects, ~{} cycles)",
        swap_cost - cfg_cycles_before,
        fe.array()
            .placement(fe.config1())
            .map(|p| p.objects)
            .unwrap_or(0),
        fe.array()
            .placement(fe.config1())
            .map(|p| p.objects as u64)
            .unwrap_or(0)
            * xpp_array::CONFIG_CYCLES_PER_OBJECT
            + (swap_cost - cfg_cycles_before),
    );
}

/// Fig. 3/4/8/11 — partitioning and the multi-standard platform.
fn fig11() {
    println!("rake receiver partitioning (Fig. 4):");
    for t in rake_partitioning() {
        println!(
            "  {:<28} -> {:<22} [{}]",
            t.task,
            t.resource.to_string(),
            t.implemented_by
        );
    }
    println!("OFDM decoder partitioning (Fig. 8):");
    for t in ofdm_partitioning() {
        println!(
            "  {:<28} -> {:<22} [{}]",
            t.task,
            t.resource.to_string(),
            t.implemented_by
        );
    }

    // Measure the two standards' kernel demands on the array simulator and
    // time-slice them (the paper's multi-link multi-standard argument).
    // Rake: 1 cycle per virtual chip (measured in fig6), so the full
    // 18-finger scenario demands 18 x 3.84 = 69.12 Mcycles/s regardless of
    // clock. OFDM: the measured serialized FFT64 cost per 4-us symbol.
    let mut fft_hw = ArrayFft64::new(2).unwrap();
    let before = fft_hw.array().stats().cycles;
    fft_hw
        .run_frames(&[fft_frame(3), fft_frame(4), fft_frame(5), fft_frame(6)])
        .unwrap();
    let fft_cycles = (fft_hw.array().stats().cycles - before) / 4;
    println!("measured: FFT64 {fft_cycles} cycles/symbol; rake 1 cycle/virtual-chip");

    println!("time-sliced feasibility (EDF over 10 W-CDMA slots):");
    println!(
        "{:>10} {:>12} {:>12} {:>8} {:>9}",
        "clock", "rake fingers", "u(rake+fft)", "misses", "feasible"
    );
    for (clock_mhz, fingers) in [
        (69.12, 18u64),
        (138.24, 18),
        (200.0, 18),
        (200.0, 12),
        (160.0, 6),
    ] {
        let clock = clock_mhz * 1e6;
        let slot_period = (clock * 2_560.0 / 3.84e6) as u64;
        let sym_period = (clock * 4e-6) as u64;
        let jobs = vec![
            Job::new("wcdma-rake-slot", 2_560 * fingers, slot_period),
            Job::new("ofdm-fft-symbol", fft_cycles, sym_period),
        ];
        let u: f64 = jobs.iter().map(Job::utilization).sum();
        let report = schedule_edf(&jobs, 10 * slot_period);
        println!(
            "{:>7.2}MHz {:>12} {:>12.3} {:>8} {:>9}",
            clock_mhz,
            fingers,
            u,
            report.misses.len(),
            report.feasible()
        );
    }
    println!("-> full 18-finger soft handover + continuous 54 Mb/s WLAN needs >200 MHz or");
    println!("   pass-overlapped FFT buffering; reduced scenarios time-slice comfortably.");

    let platform = SdrPlatform::evaluation_board();
    println!(
        "platform: XPP-64A ({} ALU-PAEs) + {:.0}-MIPS DSP + {} dedicated blocks",
        platform.array.geometry().alu_paes,
        platform.dsp.mips(),
        4
    );
}

/// Fig. 12 — silicon model vs the paper's 0.13 um implementation facts.
fn fig12() {
    let g = Geometry::xpp64a();
    let area = AreaModel::hcmos9_130nm();
    println!(
        "XPP-64A model: {} ALU-PAEs + {} RAM-PAEs, die ~{:.1} mm^2 at 0.13 um HCMOS9 \
         (paper: 0.13 um, 110 nm gate length, dual-Vt, 6-8 Cu layers; no die size printed)",
        g.alu_paes,
        g.ram_paes,
        area.die_mm2(g)
    );
    // A representative kernel's power at the headline clock.
    let code = ScramblingCode::downlink(0);
    let rx = chips_12bit(8192, 2);
    let mut hw = ArrayDescrambler::new().unwrap();
    hw.process(&rx, &code, 0, 0, rx.len()).unwrap();
    let e = EnergyModel::hcmos9_130nm().report(&hw.array().stats(), g, 69.12e6);
    println!(
        "descrambler streaming at 69.12 MHz: {:.1} mW dynamic+leakage (activity-based model)",
        e.avg_power_mw()
    );
}

/// BER vs Eb/N0 for the rake receiver, including the soft-handover case.
///
/// With chip energy Ec = 2 (unit-amplitude QPSK through the complex
/// scrambler), SF = 128 and 2 bits/symbol: Eb/N0 = Ec·SF / (2·2σ²), so
/// σ = 8/√γ. The ADC gain follows the noise level (AGC) so the 12-bit
/// range is used, not clipped.
fn rake_ber() {
    println!(
        "{:>8} {:>12} {:>12} {:>12}",
        "Eb/N0", "1 path", "3 paths", "2-cell SHO"
    );
    let payload = 2048;
    let _ = sigma_for_ebn0(1.0, 1.0, 1.0, 0.0); // general helper; exact map below
    for ebn0 in [0.0f64, 2.0, 4.0, 6.0, 8.0] {
        let gamma = 10f64.powf(ebn0 / 10.0);
        let sigma = 8.0 / gamma.sqrt();
        let adc = AdcConfig {
            gain: 512.0 / (1.0 + sigma),
            bits: 12,
        };
        let mut row = Vec::new();
        for scenario in 0..3 {
            // Median of three noise realisations: at low Eb/N0 an
            // occasional acquisition failure (BER ~0.5) would otherwise
            // mask the trend a longer simulation shows.
            let mut trials = Vec::new();
            for trial in 0..3u64 {
                let data = bits(payload, ebn0 as u32 + scenario);
                let mut cells = Vec::new();
                match scenario {
                    0 => cells.push((
                        CellConfig::default(),
                        CellLink::new(vec![Path::new(2, Cplx::new(0.7, 0.2))]),
                    )),
                    1 => cells.push((
                        CellConfig::default(),
                        CellLink::new(vec![
                            Path::new(0, Cplx::new(0.55, 0.1)),
                            Path::new(7, Cplx::new(-0.1, 0.42)),
                            Path::new(19, Cplx::new(0.3, -0.25)),
                        ]),
                    )),
                    _ => {
                        cells.push((
                            CellConfig {
                                scrambling_code: 0,
                                ..Default::default()
                            },
                            CellLink::new(vec![Path::new(1, Cplx::new(0.5, 0.2))]),
                        ));
                        cells.push((
                            CellConfig {
                                scrambling_code: 32,
                                ..Default::default()
                            },
                            CellLink::new(vec![Path::new(9, Cplx::new(-0.15, 0.5))]),
                        ));
                    }
                }
                let mut signals = Vec::new();
                let mut codes = Vec::new();
                for (cfg, link) in cells {
                    let mut tx = CellTransmitter::new(cfg);
                    signals.push((tx.transmit(&data), link));
                    codes.push(cfg.scrambling_code);
                }
                let rx = propagate(&signals, sigma, 1000 + 77 * trial + ebn0 as u64, adc);
                // Longer pilot integration at low SNR (the coarse/fine
                // searcher's dwell-time trade, §3.1).
                let rake = RakeReceiver::new(
                    codes,
                    RakeConfig {
                        searcher: PathSearcher {
                            max_paths: 3,
                            coarse_symbols: 2,
                            fine_symbols: 12,
                            ..Default::default()
                        },
                        estimation_symbols: 16,
                        ..Default::default()
                    },
                );
                let out = rake.receive(&rx);
                let n = data.len().min(out.bits.len());
                let mut ber = BerCounter::new();
                ber.update(&data[..n], &out.bits[..n]);
                trials.push(ber.ber());
            }
            trials.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            row.push(trials[1]);
        }
        println!(
            "{:>6.1}dB {:>12.5} {:>12.5} {:>12.5}",
            ebn0, row[0], row[1], row[2]
        );
    }
    println!("(BER ~0.5 = acquisition failure: with the CPICH 6 dB below the data");
    println!(" channel, 12-symbol pilot integration is marginal below ~2 dB Eb/N0)");
}

/// BER vs noise for all eight 802.11a rates.
fn ofdm_ber() {
    print!("{:>8}", "sigma");
    for r in RATES {
        print!(" {:>9}", format!("{}Mb/s", r.mbps));
    }
    println!();
    for sigma in [0.05f64, 0.10, 0.15, 0.20, 0.30] {
        print!("{sigma:>8.2}");
        for r in RATES {
            let data = bits(4 * r.data_bits_per_symbol(), 77);
            let frame = Transmitter::new(r).transmit(&data);
            let rx = WlanChannel::awgn(sigma, 9).run(&frame.samples);
            let ber = match OfdmReceiver::new(r).receive(&rx, data.len()) {
                Ok(out) => {
                    let mut b = BerCounter::new();
                    b.update(&data, &out.bits);
                    b.ber()
                }
                Err(_) => 0.5,
            };
            print!(" {ber:>9.4}");
        }
        println!();
    }
    println!("(0.5000 = frame lost; higher rates fail at lower noise — the Fig. 2 trade-off)");
}
