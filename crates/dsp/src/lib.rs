//! Fixed-point and integer-complex signal-processing primitives.
//!
//! This crate is the arithmetic foundation of the `xpp-sdr` workspace: every
//! other crate (the CGRA simulator, the W-CDMA rake receiver, the OFDM
//! receiver and the platform model) builds on the types defined here.
//!
//! The paper's hardware operates on 24-bit integer words (the XPP ALU
//! processing elements), on 12-bit I/Q samples (W-CDMA) and on 10-bit I/Q
//! samples (OFDM), so the emphasis is on *integer* signal processing with
//! explicit widths, explicit scaling and bit-exact reproducibility:
//!
//! * [`Cplx`] — a minimal complex-number type over `i32`, `i64` or `f64`,
//! * [`fixed`] — Q-format fixed-point helpers (saturation, rounding shifts),
//! * [`fft`] — a floating-point reference DFT/FFT and the bit-exact
//!   fixed-point radix-4 FFT-64 that the paper maps onto the array (Fig. 9),
//! * [`filter`] — FIR filtering and sliding correlators,
//! * [`noise`] — deterministic AWGN and Rayleigh fading generators,
//! * [`bits`] — LFSRs and bit packing shared by the scrambling-code and
//!   convolutional-code generators,
//! * [`metrics`] — BER/SNR/EVM measurement helpers used by the experiments.
//!
//! # Example
//!
//! ```
//! use sdr_dsp::{Cplx, fft};
//!
//! // A pure tone lands in a single FFT bin.
//! let tone: Vec<Cplx<f64>> = (0..64)
//!     .map(|n| Cplx::from_polar(1.0, 2.0 * std::f64::consts::PI * 5.0 * n as f64 / 64.0))
//!     .collect();
//! let spec = fft::fft(&tone);
//! let peak = spec
//!     .iter()
//!     .enumerate()
//!     .max_by(|a, b| a.1.sqmag().partial_cmp(&b.1.sqmag()).unwrap())
//!     .map(|(i, _)| i);
//! assert_eq!(peak, Some(5));
//! ```

pub mod bits;
pub mod complex;
pub mod fft;
pub mod filter;
pub mod fixed;
pub mod metrics;
pub mod noise;
pub mod rng;

pub use complex::Cplx;
pub use fixed::{sat24, shr_round, Q15_ONE};
