//! Subcarrier modulation: Gray-mapped BPSK/QPSK/16-QAM/64-QAM (§17.3.5.7)
//! and approximate per-bit soft demapping.

use crate::params::Modulation;
use sdr_dsp::Cplx;

/// Gray map of bits to one axis: BPSK/QPSK `0→−1, 1→+1`; 16-QAM
/// `00→−3, 01→−1, 11→+1, 10→+3`; 64-QAM the standard 3-bit Gray column.
fn axis_level(bits: &[u8]) -> f64 {
    match bits.len() {
        1 => (2 * bits[0] as i32 - 1) as f64,
        2 => match (bits[0], bits[1]) {
            (0, 0) => -3.0,
            (0, 1) => -1.0,
            (1, 1) => 1.0,
            (1, 0) => 3.0,
            _ => unreachable!(),
        },
        3 => match (bits[0], bits[1], bits[2]) {
            (0, 0, 0) => -7.0,
            (0, 0, 1) => -5.0,
            (0, 1, 1) => -3.0,
            (0, 1, 0) => -1.0,
            (1, 1, 0) => 1.0,
            (1, 1, 1) => 3.0,
            (1, 0, 1) => 5.0,
            (1, 0, 0) => 7.0,
            _ => unreachable!(),
        },
        _ => unreachable!("axis takes 1..=3 bits"),
    }
}

/// Normalisation factor K_MOD so average symbol energy is 1.
pub fn k_mod(modulation: Modulation) -> f64 {
    match modulation {
        Modulation::Bpsk => 1.0,
        Modulation::Qpsk => 1.0 / 2f64.sqrt(),
        Modulation::Qam16 => 1.0 / 10f64.sqrt(),
        Modulation::Qam64 => 1.0 / 42f64.sqrt(),
    }
}

/// Maps `bits_per_carrier` bits to one normalised constellation point.
/// BPSK modulates the real axis only.
///
/// # Panics
///
/// Panics if the bit count does not match the modulation.
pub fn map_symbol(bits: &[u8], modulation: Modulation) -> Cplx<f64> {
    let n = modulation.bits_per_carrier();
    assert_eq!(bits.len(), n, "map_symbol: wrong bit count");
    let k = k_mod(modulation);
    match modulation {
        Modulation::Bpsk => Cplx::new(axis_level(&bits[..1]) * k, 0.0),
        Modulation::Qpsk => Cplx::new(axis_level(&bits[..1]) * k, axis_level(&bits[1..2]) * k),
        Modulation::Qam16 => Cplx::new(axis_level(&bits[..2]) * k, axis_level(&bits[2..4]) * k),
        Modulation::Qam64 => Cplx::new(axis_level(&bits[..3]) * k, axis_level(&bits[3..6]) * k),
    }
}

/// Maps a bit stream to constellation points (one symbol per
/// `bits_per_carrier` bits).
///
/// # Panics
///
/// Panics if the bit count is not a multiple of the modulation's bits.
pub fn map_bits(bits: &[u8], modulation: Modulation) -> Vec<Cplx<f64>> {
    let n = modulation.bits_per_carrier();
    assert!(bits.len().is_multiple_of(n), "map_bits: partial symbol");
    bits.chunks(n).map(|c| map_symbol(c, modulation)).collect()
}

/// Per-axis soft metrics in unnormalised units (levels ±1, ±3, …):
/// successive piecewise-linear LLR approximations, positive = bit 1 for the
/// sign bit convention used here, then negated to the decoder's
/// positive-=-0 convention by the caller below.
fn axis_soft(y: f64, bits: usize, out: &mut Vec<f64>) {
    match bits {
        1 => out.push(y),
        2 => {
            out.push(y);
            out.push(2.0 - y.abs());
        }
        3 => {
            out.push(y);
            out.push(4.0 - y.abs());
            out.push(2.0 - (y.abs() - 4.0).abs());
        }
        _ => unreachable!(),
    }
}

/// Soft-demaps one equalised constellation point into per-bit LLR integers
/// (positive = bit 0, the Viterbi decoder's convention), scaled by
/// `scale`.
pub fn demap_soft(y: Cplx<f64>, modulation: Modulation, scale: f64) -> Vec<i32> {
    let k = k_mod(modulation);
    let yr = y.re / k;
    let yi = y.im / k;
    let mut raw = Vec::with_capacity(modulation.bits_per_carrier());
    match modulation {
        Modulation::Bpsk => axis_soft(yr, 1, &mut raw),
        Modulation::Qpsk => {
            axis_soft(yr, 1, &mut raw);
            axis_soft(yi, 1, &mut raw);
        }
        Modulation::Qam16 => {
            axis_soft(yr, 2, &mut raw);
            axis_soft(yi, 2, &mut raw);
        }
        Modulation::Qam64 => {
            axis_soft(yr, 3, &mut raw);
            axis_soft(yi, 3, &mut raw);
        }
    }
    // Internally positive = bit 1 (levels grow with the Gray sign bit);
    // negate for the decoder's positive-=-0 convention, clamp to i16 range.
    raw.iter()
        .map(|&l| (-(l * scale)).clamp(-32768.0, 32767.0).round() as i32)
        .collect()
}

/// Hard decision: demap and threshold.
pub fn demap_hard(y: Cplx<f64>, modulation: Modulation) -> Vec<u8> {
    demap_soft(y, modulation, 64.0)
        .iter()
        .map(|&l| (l < 0) as u8)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_bit_patterns(n: usize) -> Vec<Vec<u8>> {
        (0..1usize << n)
            .map(|v| (0..n).map(|b| ((v >> (n - 1 - b)) & 1) as u8).collect())
            .collect()
    }

    #[test]
    fn constellations_have_unit_average_energy() {
        for m in [
            Modulation::Bpsk,
            Modulation::Qpsk,
            Modulation::Qam16,
            Modulation::Qam64,
        ] {
            let pats = all_bit_patterns(m.bits_per_carrier());
            let e: f64 =
                pats.iter().map(|p| map_symbol(p, m).sqmag()).sum::<f64>() / pats.len() as f64;
            assert!((e - 1.0).abs() < 1e-12, "{m:?} energy {e}");
        }
    }

    #[test]
    fn hard_demap_inverts_map_for_all_patterns() {
        for m in [
            Modulation::Bpsk,
            Modulation::Qpsk,
            Modulation::Qam16,
            Modulation::Qam64,
        ] {
            for p in all_bit_patterns(m.bits_per_carrier()) {
                let y = map_symbol(&p, m);
                assert_eq!(demap_hard(y, m), p, "{m:?} {p:?}");
            }
        }
    }

    #[test]
    fn gray_neighbours_differ_in_one_bit() {
        // Adjacent 16-QAM I-levels differ in exactly one of the two I bits.
        let levels = [
            (vec![0u8, 0], -3.0),
            (vec![0, 1], -1.0),
            (vec![1, 1], 1.0),
            (vec![1, 0], 3.0),
        ];
        for w in levels.windows(2) {
            let diff = w[0].0.iter().zip(&w[1].0).filter(|(a, b)| a != b).count();
            assert_eq!(diff, 1);
            assert!(w[0].1 < w[1].1);
        }
    }

    #[test]
    fn soft_metric_signs_match_hard_decisions() {
        for m in [Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64] {
            for p in all_bit_patterns(m.bits_per_carrier()) {
                let y = map_symbol(&p, m);
                let soft = demap_soft(y, m, 32.0);
                for (i, &l) in soft.iter().enumerate() {
                    let bit = (l < 0) as u8;
                    assert_eq!(bit, p[i], "{m:?} {p:?} bit {i}: llr {l}");
                }
            }
        }
    }

    #[test]
    fn noisier_points_give_weaker_llrs() {
        let m = Modulation::Qpsk;
        let clean = demap_soft(map_symbol(&[1, 1], m), m, 32.0);
        let noisy = demap_soft(map_symbol(&[1, 1], m) + Cplx::new(-0.5, -0.5), m, 32.0);
        assert!(noisy[0].abs() < clean[0].abs());
    }

    #[test]
    fn bpsk_ignores_imaginary() {
        let soft = demap_soft(Cplx::new(0.8, -5.0), Modulation::Bpsk, 32.0);
        assert_eq!(soft.len(), 1);
        assert!(soft[0] < 0); // bit 1
    }

    #[test]
    #[should_panic]
    fn wrong_bit_count_rejected() {
        map_symbol(&[0, 1], Modulation::Bpsk);
    }
}
