//! Batched gang dispatch vs the single-array seed path.
//!
//! Both arms drive the same closed-loop streaming workload — 64 OFDM
//! terminal sessions with at most `WINDOW` in flight, new arrivals
//! replacing completions (the regime a basestation shard actually sees;
//! submitting everything up front would let the EDF heap serialise the
//! workload into kernel waves and hide the configuration churn being
//! measured):
//!
//! * `seed_1x1` — one shard, one array: every session pays the Fig. 10
//!   detector reload, the unbatched baseline.
//! * `gang_1x4` — one shard, a gang of four arrays: the dispatcher
//!   groups each round's window by kernel and runs the groups
//!   back-to-back on warm members, so a configuration loads once per
//!   member instead of once per session.
//!
//! Criterion measures wall time; `bench_report` additionally runs each
//! arm once, prints the counters `BENCH_BATCH.json` records, and asserts
//! the acceptance ratios (≥10× fewer configuration-bus words per
//! session, ≥1.5× modeled platform throughput). On a single-core host
//! the wall-clock ratio is near 1 — both arms simulate the same cycles
//! on one OS thread — so platform throughput is modeled from
//! `array_makespan_cycles` at the array clock, the same convention as
//! `BENCH_ARRAY.json`'s cycles-per-second figures.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sdr_engine::{Metrics, PoolConfig, Session, ShardPool, Snapshot, SubmitError};
use std::sync::Arc;

/// Sessions per measured run (all OFDM: capture → detect → demodulate).
const SESSIONS: u64 = 64;

/// Closed-loop in-flight cap (the dispatch window a shard can batch).
const WINDOW: u64 = 8;

/// Modeled array clock: the paper's XPP runs at tens of MHz; 50 MHz is
/// the figure BENCH_ARRAY.json's rate-matched shape assumes.
const ARRAY_CLOCK_HZ: f64 = 50.0e6;

fn pool(arrays_per_shard: usize) -> (ShardPool, Arc<Metrics>) {
    let metrics = Arc::new(Metrics::new());
    let pool = ShardPool::new(
        PoolConfig {
            shards: 1,
            arrays_per_shard,
            queue_depth: 32,
            cache_capacity: 8,
            ..PoolConfig::default()
        },
        Arc::clone(&metrics),
    );
    (pool, metrics)
}

/// Streams `SESSIONS` OFDM sessions through the pool with at most
/// `WINDOW` in flight; returns once every session is terminal.
fn run_closed_loop(pool: &ShardPool) {
    let mut next_id = 0u64;
    let mut in_flight = 0u64;
    let mut done = 0u64;
    let mut backlog: Vec<Session> = Vec::new();
    while done < SESSIONS {
        while in_flight < WINDOW && (next_id < SESSIONS || !backlog.is_empty()) {
            let s = backlog.pop().unwrap_or_else(|| {
                let id = next_id;
                next_id += 1;
                Session::ofdm(id, 0x0FD + id)
            });
            match pool.submit(s) {
                Ok(_) => in_flight += 1,
                Err(SubmitError::WouldBlock(s)) => {
                    backlog.push(s);
                    break;
                }
                Err(SubmitError::Shutdown(_)) => unreachable!("pool is alive"),
            }
        }
        let s = pool.recv().expect("worker alive");
        in_flight -= 1;
        if s.is_terminal() {
            assert!(
                matches!(s.state(), sdr_engine::SessionState::Done),
                "session {} ended {:?}",
                s.id(),
                s.state()
            );
            done += 1;
        } else {
            backlog.push(s);
        }
    }
}

/// One full arm, returning its metrics snapshot.
fn run_arm(arrays_per_shard: usize) -> Snapshot {
    let (pool, metrics) = pool(arrays_per_shard);
    run_closed_loop(&pool);
    let snap = metrics.snapshot();
    drop(pool);
    snap
}

fn bench_batch_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("batch_dispatch");
    for (label, arrays) in [("seed_1x1", 1usize), ("gang_1x4", 4usize)] {
        g.bench_function(label, |b| {
            b.iter_batched(
                || pool(arrays),
                |(pool, metrics)| {
                    run_closed_loop(&pool);
                    drop(pool);
                    metrics.snapshot()
                },
                BatchSize::PerIteration,
            )
        });
    }
    g.finish();
}

/// Not a timing measurement: runs each arm once, prints the counters the
/// BENCH_BATCH.json report records, and asserts the PR's acceptance
/// ratios so CI fails if batching regresses.
fn bench_report(_c: &mut Criterion) {
    let seed = run_arm(1);
    let gang = run_arm(4);

    let words_per_session = |s: &Snapshot| s.config_words_streamed as f64 / SESSIONS as f64;
    let modeled_sessions_per_sec =
        |s: &Snapshot| SESSIONS as f64 * ARRAY_CLOCK_HZ / s.array_makespan_cycles as f64;

    let words_ratio = words_per_session(&seed) / words_per_session(&gang);
    let throughput_ratio = modeled_sessions_per_sec(&gang) / modeled_sessions_per_sec(&seed);

    eprintln!("batch_dispatch/report ({SESSIONS} OFDM sessions, window {WINDOW}):");
    eprintln!(
        "  seed_1x1: {:.1} words/session, makespan {} cycles, modeled {:.0} sessions/s, \
         {} batches",
        words_per_session(&seed),
        seed.array_makespan_cycles,
        modeled_sessions_per_sec(&seed),
        seed.batches_dispatched,
    );
    eprintln!(
        "  gang_1x4: {:.1} words/session, makespan {} cycles, modeled {:.0} sessions/s, \
         {} batches (avg {:.1} sessions), {} warm hits, {} replications",
        words_per_session(&gang),
        gang.array_makespan_cycles,
        modeled_sessions_per_sec(&gang),
        gang.batches_dispatched,
        gang.avg_batch_size(),
        gang.batch_warm_hits,
        gang.batch_replications,
    );
    eprintln!(
        "  config-bus words ratio {words_ratio:.1}x (target >= 10), \
         modeled throughput ratio {throughput_ratio:.2}x (target >= 1.5)"
    );
    assert!(
        words_ratio >= 10.0,
        "batching must amortise configuration: {words_ratio:.1}x < 10x"
    );
    assert!(
        throughput_ratio >= 1.5,
        "gang must raise modeled platform throughput: {throughput_ratio:.2}x < 1.5x"
    );
}

criterion_group! {
    name = batch_benches;
    config = Criterion::default().sample_size(10);
    targets = bench_batch_dispatch, bench_report
}
criterion_main!(batch_benches);
