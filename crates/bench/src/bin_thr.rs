use sdr_wcdma::xpp_map::ArrayMultiplexedDespreader;
use sdr_dsp::Cplx;

fn chips(n: usize, seed: i32) -> Vec<Cplx<i32>> {
    (0..n as i32).map(|i| Cplx::new(((i*131+seed*7)%8191)-4095, ((i*57+seed*13)%8191)-4095)).collect()
}

fn run(fingers: usize, sf: usize, nsym: usize) -> (u64, u64) {
    let streams: Vec<Vec<Cplx<i32>>> = (0..fingers).map(|f| chips(sf*nsym, f as i32)).collect();
    let mut hw = ArrayMultiplexedDespreader::new(fingers, sf, 5).unwrap();
    let before = hw.array().stats().cycles;
    hw.process(&streams).unwrap();
    ((fingers*sf*nsym) as u64, hw.array().stats().cycles - before)
}

fn main() {
    for nsym in [4usize, 8, 16] {
        let (tokens, cycles) = run(8, 32, nsym);
        println!("tokens={tokens} cycles={cycles} ratio={:.3}", cycles as f64/tokens as f64);
    }
}
