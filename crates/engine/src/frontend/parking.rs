//! The idle-session parking lot.
//!
//! A waiting terminal costs a [`ParkedSession`] record — a few dozen
//! bytes — not a full sample-buffer-bearing [`Session`](crate::Session).
//! The lot is a deadline-ordered min-heap: the front-end materialises
//! (rehydrates) records in earliest-deadline order as worker capacity
//! frees up, so millions of terminals can be resident while only
//! `shards × arrays_per_shard` (plus the small materialisation window)
//! ever own sample buffers.
//!
//! The heap storage can be preallocated with
//! [`ParkingLot::with_capacity`], after which parking a session performs
//! **zero heap allocations** — enforced by the counting-allocator test
//! `crates/engine/tests/frontend_footprint.rs`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::session::ParkedSession;

/// Heap entry ordering parked records by (deadline, id) — earliest
/// deadline first, id as the deterministic tie-break.
#[derive(Debug, PartialEq, Eq)]
struct Entry(ParkedSession);

impl Entry {
    fn key(&self) -> (u64, u64) {
        (self.0.deadline(), self.0.id())
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// Deadline-ordered storage for parked (idle) sessions.
#[derive(Debug, Default)]
pub struct ParkingLot {
    heap: BinaryHeap<Reverse<Entry>>,
    /// High-water mark of concurrently parked records.
    peak: usize,
}

impl ParkingLot {
    /// An empty lot.
    pub fn new() -> Self {
        ParkingLot::default()
    }

    /// An empty lot with room for `capacity` records before any heap
    /// growth — park up to that many sessions allocation-free.
    pub fn with_capacity(capacity: usize) -> Self {
        ParkingLot {
            heap: BinaryHeap::with_capacity(capacity),
            peak: 0,
        }
    }

    /// Parks a record. Allocation-free while within capacity.
    pub fn park(&mut self, record: ParkedSession) {
        self.heap.push(Reverse(Entry(record)));
        self.peak = self.peak.max(self.heap.len());
    }

    /// Removes and returns the earliest-deadline record.
    pub fn pop_earliest(&mut self) -> Option<ParkedSession> {
        self.heap.pop().map(|Reverse(Entry(r))| r)
    }

    /// The earliest wake deadline among parked records, if any.
    pub fn peek_deadline(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(e)| e.0.deadline())
    }

    /// Currently parked records.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is parked.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// High-water mark of concurrently parked records.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Heap bytes backing the lot's storage (capacity, not length — the
    /// honest resident-footprint number).
    pub fn heap_bytes(&self) -> usize {
        self.heap.capacity() * std::mem::size_of::<Reverse<Entry>>()
    }

    /// Heap bytes per parked record at the current occupancy (the
    /// `BENCH_SCALE.json` footprint figure); `None` while empty.
    pub fn bytes_per_parked(&self) -> Option<f64> {
        if self.heap.is_empty() {
            None
        } else {
            Some(self.heap_bytes() as f64 / self.heap.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_deadline_order_with_id_tiebreak() {
        let mut lot = ParkingLot::new();
        lot.park(ParkedSession::new_wcdma(2, 7, 5_000));
        lot.park(ParkedSession::new_wcdma(1, 7, 5_000));
        lot.park(ParkedSession::new_wcdma(0, 7, 100));
        assert_eq!(lot.len(), 3);
        assert_eq!(lot.peak(), 3);
        let order: Vec<u64> = std::iter::from_fn(|| lot.pop_earliest().map(|r| r.id())).collect();
        assert_eq!(order, vec![0, 1, 2], "deadline first, id as tie-break");
        assert!(lot.is_empty());
        assert_eq!(lot.peak(), 3, "peak survives draining");
    }

    #[test]
    fn preallocated_lot_reports_footprint() {
        let mut lot = ParkingLot::with_capacity(16);
        assert!(lot.bytes_per_parked().is_none());
        for id in 0..8 {
            lot.park(ParkedSession::new_ofdm(id, id, id * 100));
        }
        let per = lot.bytes_per_parked().unwrap();
        // 16 slots backing 8 records: exactly 2x the record size.
        assert_eq!(per, 2.0 * std::mem::size_of::<ParkedSession>() as f64);
        assert!(lot.heap_bytes() >= 16 * std::mem::size_of::<ParkedSession>());
    }
}
