//! Property-based tests: arbitrary pipelines on the array compute the same
//! function as a direct software evaluation, regardless of stream content.

use proptest::prelude::*;
use xpp_array::{AluOp, Array, CounterCfg, NetlistBuilder, UnaryOp, Word};

#[derive(Debug, Clone, Copy)]
enum Stage {
    AddK(i32),
    ShrK(u32),
    ShlK(u32),
    Neg,
    Abs,
    MulKShr(i32, u32),
    XorK(i32),
}

impl Stage {
    fn to_op(self) -> UnaryOp {
        match self {
            Stage::AddK(k) => UnaryOp::AddK(Word::new(k)),
            Stage::ShrK(s) => UnaryOp::ShrK(s),
            Stage::ShlK(s) => UnaryOp::ShlK(s),
            Stage::Neg => UnaryOp::Neg,
            Stage::Abs => UnaryOp::Abs,
            Stage::MulKShr(k, s) => UnaryOp::MulKShr(Word::new(k), s),
            Stage::XorK(k) => UnaryOp::XorK(Word::new(k)),
        }
    }

    fn eval(self, x: Word) -> Word {
        self.to_op().eval(x)
    }
}

fn arb_stage() -> impl Strategy<Value = Stage> {
    prop_oneof![
        (-1000i32..1000).prop_map(Stage::AddK),
        (0u32..8).prop_map(Stage::ShrK),
        (0u32..8).prop_map(Stage::ShlK),
        Just(Stage::Neg),
        Just(Stage::Abs),
        ((-64i32..64), (0u32..6)).prop_map(|(k, s)| Stage::MulKShr(k, s)),
        (0i32..0xFFFF).prop_map(Stage::XorK),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_unary_pipeline_matches_reference(
        stages in proptest::collection::vec(arb_stage(), 1..8),
        inputs in proptest::collection::vec(-100_000i32..100_000, 1..40),
    ) {
        let mut nl = NetlistBuilder::new("pipe");
        let mut x = nl.input("x");
        for s in &stages {
            x = nl.unary(s.to_op(), x);
        }
        nl.output("y", x);
        let mut array = Array::xpp64a();
        let cfg = array.configure(&nl.build().unwrap()).unwrap();
        array.push_input(cfg, "x", inputs.iter().map(|&v| Word::new(v))).unwrap();
        array.run_until_idle(100_000).unwrap();
        let got: Vec<i32> = array
            .drain_output(cfg, "y")
            .unwrap()
            .iter()
            .map(|w| w.value())
            .collect();
        let expected: Vec<i32> = inputs
            .iter()
            .map(|&v| stages.iter().fold(Word::new(v), |acc, s| s.eval(acc)).value())
            .collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn binary_tree_matches_reference(
        a in proptest::collection::vec(-10_000i32..10_000, 1..30),
        b in proptest::collection::vec(-10_000i32..10_000, 1..30),
        op_idx in 0usize..5,
    ) {
        let ops = [AluOp::Add, AluOp::Sub, AluOp::Min, AluOp::Max, AluOp::Xor];
        let op = ops[op_idx];
        let n = a.len().min(b.len());
        let mut nl = NetlistBuilder::new("bin");
        let ia = nl.input("a");
        let ib = nl.input("b");
        let y = nl.alu(op, ia, ib);
        nl.output("y", y);
        let mut array = Array::xpp64a();
        let cfg = array.configure(&nl.build().unwrap()).unwrap();
        array.push_input(cfg, "a", a[..n].iter().map(|&v| Word::new(v))).unwrap();
        array.push_input(cfg, "b", b[..n].iter().map(|&v| Word::new(v))).unwrap();
        array.run_until_idle(100_000).unwrap();
        let got: Vec<i32> = array.drain_output(cfg, "y").unwrap().iter().map(|w| w.value()).collect();
        let expected: Vec<i32> = (0..n).map(|i| op.eval(Word::new(a[i]), Word::new(b[i])).value()).collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn accumulate_dump_matches_chunked_sums(
        chunk in 1u64..12,
        inputs in proptest::collection::vec(-1000i32..1000, 1..60),
    ) {
        let mut nl = NetlistBuilder::new("acc");
        let x = nl.input("x");
        let c = nl.counter(CounterCfg::modulo(chunk));
        let last = nl.unary(UnaryOp::EqK(Word::new(chunk as i32 - 1)), c.value);
        let dump = nl.to_event(last);
        let sum = nl.accum_dump(x, dump);
        nl.output("y", sum);
        let mut array = Array::xpp64a();
        let cfg = array.configure(&nl.build().unwrap()).unwrap();
        array.push_input(cfg, "x", inputs.iter().map(|&v| Word::new(v))).unwrap();
        array.run_until_idle(100_000).unwrap();
        let got: Vec<i32> = array.drain_output(cfg, "y").unwrap().iter().map(|w| w.value()).collect();
        let expected: Vec<i32> = inputs
            .chunks(chunk as usize)
            .filter(|c| c.len() == chunk as usize)
            .map(|c| c.iter().sum())
            .collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn ring_fifo_tiles_pattern(
        pattern in proptest::collection::vec(-100i32..100, 1..8),
        n in 1usize..40,
    ) {
        let mut nl = NetlistBuilder::new("ring");
        let x = nl.input("x");
        let lut = nl.ring_fifo(pattern.iter().map(|&v| Word::new(v)).collect());
        let y = nl.alu(AluOp::Add, x, lut);
        nl.output("y", y);
        let mut array = Array::xpp64a();
        let cfg = array.configure(&nl.build().unwrap()).unwrap();
        array.push_input(cfg, "x", std::iter::repeat_n(Word::ZERO, n)).unwrap();
        array.run_until_idle(100_000).unwrap();
        let got: Vec<i32> = array.drain_output(cfg, "y").unwrap().iter().map(|w| w.value()).collect();
        let expected: Vec<i32> = (0..n).map(|i| pattern[i % pattern.len()]).collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    // 4 configs × 2 I/O ports is the most the 8 I/O channels can host.
    fn configure_unload_is_balanced(loads in 1usize..5) {
        let mut array = Array::xpp64a();
        let total = array.free_resources();
        let mut cfgs = Vec::new();
        for i in 0..loads {
            let mut nl = NetlistBuilder::new(format!("c{i}"));
            let x = nl.input("x");
            let y = nl.unary(UnaryOp::AddK(Word::new(i as i32)), x);
            nl.output("y", y);
            cfgs.push(array.configure(&nl.build().unwrap()).unwrap());
        }
        for cfg in cfgs {
            array.unload(cfg).unwrap();
        }
        prop_assert_eq!(array.free_resources(), total);
    }
}
