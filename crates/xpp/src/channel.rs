//! Token channels: the handshake-protocol communication resources.
//!
//! Every channel is point-to-point (one producer port, one consumer port;
//! fan-out is modelled as several channels from the same port). Objects make
//! fire/stall decisions against the channel state *at the start of the
//! cycle*; consumptions and productions are staged and committed at the end
//! of the cycle, which makes the simulation order-independent and reproduces
//! the hardware's synchronous token movement.

use std::collections::VecDeque;

/// Tokens stored inline inside the channel (no heap indirection). Channels
/// up to this capacity — which covers the default capacity 2 and the
/// capacity-4 streaming netlists — keep their queue in a fixed ring so the
/// hot stepping loop touches only the contiguous channel slab.
const INLINE_TOKENS: usize = 4;

/// Queue storage: a fixed inline ring for small capacities, a heap deque
/// for large ones (deep pipeline-balancing channels).
#[derive(Debug, Clone)]
enum Ring<T> {
    Small {
        buf: [T; INLINE_TOKENS],
        head: u8,
        len: u8,
    },
    Big(VecDeque<T>),
}

/// A bounded token channel.
///
/// Capacity 2 (one output register plus one forward register) sustains one
/// token per cycle through a pipeline; capacity 1 halves throughput — this is
/// the `ablation_channel_capacity` experiment.
#[derive(Debug, Clone)]
pub struct Channel<T> {
    ring: Ring<T>,
    capacity: usize,
    staged_pop: bool,
    staged_push: Option<T>,
}

impl<T: Copy + Default> Channel<T> {
    /// Creates a channel with the given capacity and initial tokens.
    ///
    /// # Panics
    ///
    /// Panics if the initial tokens exceed the capacity or capacity is 0
    /// (the netlist builder validates this earlier).
    pub fn new(capacity: usize, initial: impl IntoIterator<Item = T>) -> Self {
        assert!(capacity >= 1, "channel capacity must be at least 1");
        let ring = if capacity <= INLINE_TOKENS {
            let mut buf = [T::default(); INLINE_TOKENS];
            let mut len = 0usize;
            for t in initial {
                assert!(len < capacity, "initial tokens exceed capacity");
                buf[len] = t;
                len += 1;
            }
            Ring::Small {
                buf,
                head: 0,
                len: len as u8,
            }
        } else {
            let queue: VecDeque<T> = initial.into_iter().collect();
            assert!(queue.len() <= capacity, "initial tokens exceed capacity");
            Ring::Big(queue)
        };
        Channel {
            ring,
            capacity,
            staged_pop: false,
            staged_push: None,
        }
    }

    #[inline]
    fn queue_len(&self) -> usize {
        match &self.ring {
            Ring::Small { len, .. } => *len as usize,
            Ring::Big(q) => q.len(),
        }
    }

    #[inline]
    fn front(&self) -> Option<T> {
        match &self.ring {
            Ring::Small { buf, head, len } => {
                if *len == 0 {
                    None
                } else {
                    Some(buf[*head as usize])
                }
            }
            Ring::Big(q) => q.front().copied(),
        }
    }

    #[inline]
    fn pop_front(&mut self) {
        match &mut self.ring {
            Ring::Small { head, len, .. } => {
                debug_assert!(*len > 0);
                *head = (*head + 1) % INLINE_TOKENS as u8;
                *len -= 1;
            }
            Ring::Big(q) => {
                q.pop_front();
            }
        }
    }

    #[inline]
    fn push_back(&mut self, v: T) {
        match &mut self.ring {
            Ring::Small { buf, head, len } => {
                buf[(*head as usize + *len as usize) % INLINE_TOKENS] = v;
                *len += 1;
            }
            Ring::Big(q) => q.push_back(v),
        }
    }

    /// True if a token is available for consumption this cycle.
    #[inline]
    pub fn has_token(&self) -> bool {
        self.queue_len() != 0
    }

    /// The token that would be consumed this cycle.
    #[inline]
    pub fn peek(&self) -> Option<T> {
        self.front()
    }

    /// Stages consumption of the front token and returns it.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the channel is empty or was already
    /// consumed this cycle; callers gate on [`Self::has_token`] first.
    #[inline]
    pub fn consume(&mut self) -> T {
        debug_assert!(!self.staged_pop, "channel consumed twice in one cycle");
        self.staged_pop = true;
        match self.front() {
            Some(v) => v,
            None => panic!("consume from empty channel"),
        }
    }

    /// True if the producer may emit into this channel this cycle
    /// (conservative: based on start-of-cycle occupancy).
    #[inline]
    pub fn has_space(&self) -> bool {
        self.staged_push.is_none() && self.queue_len() < self.capacity
    }

    /// Stages production of a token.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the channel has no space or was already
    /// produced into; callers gate on [`Self::has_space`] first.
    #[inline]
    pub fn produce(&mut self, value: T) {
        debug_assert!(self.has_space(), "produce into full channel");
        self.staged_push = Some(value);
    }

    /// True if a consume or produce has been staged this cycle — i.e. the
    /// channel belongs on the dirty-commit list.
    #[inline]
    pub fn is_staged(&self) -> bool {
        self.staged_pop || self.staged_push.is_some()
    }

    /// Commits staged operations at the end of a cycle. Returns `true` if
    /// any token moved (used for idle detection).
    pub fn commit(&mut self) -> bool {
        let (moved, _, _) = self.commit_wakes();
        moved
    }

    /// Commits staged operations and reports scheduler-relevant transitions:
    /// `(moved, freed_space, gained_token)`. `freed_space` means the channel
    /// went full→not-full (its producer may have been unblocked on it);
    /// `gained_token` means it went empty→non-empty (its consumer may have
    /// been unblocked). An object whose blocking predicate did not
    /// transition cannot have become fireable through this channel, so these
    /// two flags are exactly the wakes the event-driven scheduler needs.
    pub fn commit_wakes(&mut self) -> (bool, bool, bool) {
        let before = self.queue_len();
        let was_full = before == self.capacity;
        let was_empty = before == 0;
        let mut moved = false;
        let mut freed = false;
        let mut gained = false;
        if self.staged_pop {
            self.pop_front();
            self.staged_pop = false;
            moved = true;
            freed = was_full;
        }
        if let Some(v) = self.staged_push.take() {
            debug_assert!(self.queue_len() < self.capacity);
            self.push_back(v);
            moved = true;
            gained = was_empty;
        }
        (moved, freed, gained)
    }

    /// Current occupancy (committed tokens).
    pub fn len(&self) -> usize {
        self.queue_len()
    }

    /// True if no committed tokens are present.
    pub fn is_empty(&self) -> bool {
        self.queue_len() == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produce_consume_commit_cycle() {
        let mut ch: Channel<i32> = Channel::new(2, []);
        assert!(!ch.has_token());
        assert!(ch.has_space());
        ch.produce(5);
        // Not visible until commit.
        assert!(!ch.has_token());
        assert!(ch.commit());
        assert!(ch.has_token());
        assert_eq!(ch.peek(), Some(5));
        assert_eq!(ch.consume(), 5);
        // Still visible until commit.
        assert!(ch.has_token());
        assert!(ch.commit());
        assert!(!ch.has_token());
    }

    #[test]
    fn same_cycle_produce_and_consume_pipeline() {
        // Steady state: one token in flight, both producer and consumer act
        // every cycle — sustained throughput 1/cycle at capacity 2.
        let mut ch: Channel<i32> = Channel::new(2, [1]);
        for n in 2..10 {
            assert!(ch.has_token());
            assert!(ch.has_space());
            let got = ch.consume();
            assert_eq!(got, n - 1);
            ch.produce(n);
            ch.commit();
            assert_eq!(ch.len(), 1);
        }
    }

    #[test]
    fn capacity_one_blocks_simultaneous_use() {
        let mut ch: Channel<i32> = Channel::new(1, [1]);
        assert!(ch.has_token());
        assert!(!ch.has_space()); // full: producer must stall
        ch.consume();
        ch.commit();
        assert!(ch.has_space());
    }

    #[test]
    fn initial_tokens_present() {
        let ch: Channel<i32> = Channel::new(2, [7, 8]);
        assert_eq!(ch.len(), 2);
        assert_eq!(ch.peek(), Some(7));
    }

    #[test]
    #[should_panic]
    fn overfull_initial_rejected() {
        let _ = Channel::new(1, [1, 2]);
    }

    #[test]
    #[should_panic]
    fn double_consume_panics() {
        let mut ch: Channel<i32> = Channel::new(2, [1]);
        ch.consume();
        ch.consume();
    }

    #[test]
    #[should_panic]
    fn produce_into_full_panics() {
        let mut ch: Channel<i32> = Channel::new(1, [1]);
        ch.produce(2);
    }

    #[test]
    fn commit_reports_movement() {
        let mut ch: Channel<i32> = Channel::new(2, []);
        assert!(!ch.commit());
        ch.produce(1);
        assert!(ch.commit());
        assert!(!ch.commit());
    }
}
