//! Offline drop-in shim for the [criterion](https://docs.rs/criterion)
//! API surface this workspace's benches use.
//!
//! The build environment has no crates.io access, so the real criterion
//! cannot be fetched. This shim keeps `benches/` compiling and producing
//! useful numbers: each bench function is timed over `sample_size`
//! samples with a simple wall-clock harness and reported as mean time per
//! iteration. There is no statistical analysis, warm-up modelling, or
//! HTML output — the numbers are indicative, not publication-grade.

use std::time::{Duration, Instant};

/// Setup-cost hint for [`Bencher::iter_batched`] (accepted, not acted on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One setup per sample.
    PerIteration,
}

/// Times closures for one benchmark id.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Mean time per iteration, filled by `iter`/`iter_batched`.
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, excluding nothing (the routine is the whole body).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            total += start.elapsed();
            drop(std::hint::black_box(out));
        }
        self.elapsed = total / self.samples as u32;
    }

    /// Times `routine` over fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            total += start.elapsed();
            drop(std::hint::black_box(out));
        }
        self.elapsed = total / self.samples as u32;
    }
}

/// The top-level harness handle passed to every bench function.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs and reports one standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(&id, b.elapsed);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named collection of benchmarks sharing a prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs and reports one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        let mut b = Bencher {
            samples: self.criterion.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(&full, b.elapsed);
        self
    }

    /// Ends the group (formatting no-op).
    pub fn finish(self) {}
}

fn report(id: &str, mean: Duration) {
    println!("{id:<44} {:>12.3} µs/iter", mean.as_secs_f64() * 1e6);
}

/// Declares a bench group: a function running every target with the given
/// configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut count = 0;
        c.bench_function("smoke", |b| b.iter(|| count += 1));
        assert_eq!(count, 3);
    }

    #[test]
    fn iter_batched_gets_fresh_inputs() {
        let mut c = Criterion::default().sample_size(4);
        let mut g = c.benchmark_group("group");
        let mut seen = Vec::new();
        let mut next = 0;
        g.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    next += 1;
                    next
                },
                |v| seen.push(v),
                BatchSize::LargeInput,
            )
        });
        g.finish();
        assert_eq!(seen, vec![1, 2, 3, 4]);
    }
}
