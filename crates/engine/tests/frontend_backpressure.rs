//! Front-end backpressure and determinism guarantees.
//!
//! 1. `WouldBlock` from a full shard queue *parks* the session — no
//!    submitter thread ever blocks. With every worker paused the driver
//!    keeps returning from `pump` while bounced sessions pile up in the
//!    parking lot with growing backoff; resuming the pool drains them
//!    all to completion.
//! 2. A seeded open-loop Poisson arrival run is bit-deterministic: two
//!    executions produce identical outcome counts, shed lists, and
//!    modeled slack vectors (the virtual-time admission model is a pure
//!    function of the admission sequence, independent of real thread
//!    scheduling).

use std::time::Instant;

use sdr_dsp::rng::Rng64;
use sdr_engine::frontend::{Frontend, FrontendConfig, ScaleSummary};
use sdr_engine::{ParkedSession, Session};

fn open_loop(_: &Session, _: u64) -> Option<ParkedSession> {
    None
}

#[test]
fn would_block_parks_instead_of_blocking_the_submitter() {
    let mut fe = Frontend::new(FrontendConfig {
        shards: 1,
        arrays_per_shard: 1,
        queue_depth: 2,
        max_resident: 8,
        start_paused: true,
        ..FrontendConfig::default()
    });
    for id in 0..6u64 {
        fe.admit(ParkedSession::new_wcdma(id, 100 + id, 0));
    }

    // With the only worker paused, at most `queue_depth` submissions fit;
    // the rest must bounce and park. pump() must return promptly — if
    // WouldBlock blocked the submitter this would hang forever.
    let start = Instant::now();
    fe.pump(&mut open_loop);
    assert!(
        start.elapsed().as_secs() < 5,
        "pump blocked on a full shard queue"
    );

    let snapshot = fe.snapshot();
    assert!(
        snapshot.backpressure_parks >= 4,
        "6 sessions into a depth-2 queue must bounce at least 4 times \
         (saw {})",
        snapshot.backpressure_parks
    );
    assert!(
        snapshot.jobs_rejected >= 1,
        "the pool/reactor must register rejected submissions"
    );
    assert_eq!(
        fe.parked() + fe.materialised(),
        6,
        "every admitted terminal is still resident (parked or awaiting)"
    );
    assert!(fe.parked() >= 4, "bounced sessions sit in the parking lot");
    // Bounced records carry backoff state and a deferred deadline.
    assert!(snapshot.sessions_parked as usize == fe.parked());

    // Resume the worker: everything drains to completion.
    fe.pool().resume(0);
    let summary = fe.run(&mut open_loop);
    assert_eq!(summary.frames_completed, 6);
    assert_eq!(summary.done, 6);
    assert_eq!(summary.still_parked, 0);
    assert!(
        summary.snapshot.rehydrations > 6,
        "re-parks rehydrated again"
    );
}

/// One seeded open-loop Poisson run: `n` terminals, exponential
/// interarrivals with the given mean (in array cycles), mixed standards.
fn poisson_run(seed: u64, n: u64, mean_interarrival: f64) -> ScaleSummary {
    let mut fe = Frontend::new(FrontendConfig {
        shards: 2,
        queue_depth: 8,
        max_resident: 16,
        parking_capacity: n as usize,
        ..FrontendConfig::default()
    });
    let mut rng = Rng64::seed_from_u64(seed);
    let mut arrival = 0u64;
    for id in 0..n {
        // Inverse-CDF exponential draw; clamp the uniform away from 0.
        let u = rng.next_f64().max(1e-12);
        arrival += (-mean_interarrival * u.ln()).ceil() as u64;
        let rec = if rng.next_u64().is_multiple_of(2) {
            ParkedSession::new_wcdma(id, seed ^ (id * 0x9e37), arrival)
        } else {
            ParkedSession::new_ofdm(id, seed ^ (id * 0x79b9), arrival)
        };
        fe.admit(rec);
    }
    fe.run(&mut open_loop)
}

#[test]
fn seeded_poisson_arrivals_are_bit_deterministic() {
    let a = poisson_run(0xC0FFEE, 64, 400.0);
    let b = poisson_run(0xC0FFEE, 64, 400.0);

    // Everything the virtual-time model reports must match bit-for-bit.
    // (Peak gauges and the raw metrics snapshot are excluded: they
    // depend on real thread interleaving, not on session outcomes.)
    assert_eq!(a.frames_completed, b.frames_completed);
    assert_eq!(a.done, b.done);
    assert_eq!(a.failed, b.failed);
    assert_eq!(a.dead_lettered, b.dead_lettered);
    assert_eq!(a.shed, b.shed, "shed decisions are deterministic");
    assert_eq!(
        a.slack_cycles, b.slack_cycles,
        "modeled slack is bit-identical across executions"
    );
    assert_eq!(a.p99_slack(), b.p99_slack());
    assert_eq!(a.min_slack(), b.min_slack());
    assert_eq!(a.still_parked, 0);
    assert_eq!(b.still_parked, 0);
    assert_eq!(a.frames_completed + a.shed.len() as u64, 64);

    // A different seed genuinely changes the workload (the test is not
    // vacuous).
    let c = poisson_run(0xBEEF, 64, 400.0);
    assert_ne!(a.slack_cycles, c.slack_cycles);
}
