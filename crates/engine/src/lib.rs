//! Multi-terminal baseband engine.
//!
//! The paper's platform runs *one* terminal's baseband on a reconfigurable
//! array; a base-station (or a dense simulation farm) must run many. This
//! crate scales the single-terminal pipelines of `sdr_wcdma` and
//! `sdr_ofdm` across a sharded pool of worker threads, each owning one
//! simulated XPP array:
//!
//! * [`session`] — per-terminal state machines (W-CDMA rake acquisition,
//!   802.11a preamble detect → demodulate with the Fig. 10 runtime
//!   reconfiguration);
//! * [`pool`] — bounded-queue worker shards with `WouldBlock`
//!   backpressure and earliest-deadline-first dispatch;
//! * [`config_manager`] — the configuration-manager subsystem: a
//!   [`KernelSpec`] registry of array kernels, a **process-wide** LRU
//!   store of pre-compiled, pre-placed configurations (each kernel is
//!   built once per process, not once per worker), and the per-worker
//!   request→prefetch→loading→active→unload lifecycle with
//!   prefetch-overlapped reconfiguration;
//! * [`metrics`] — a lock-free registry every component reports into.
//!
//! [`Engine`] ties them together: admission control via
//! [`sdr_core::scheduler::schedule_edf`], then a submit/collect loop that
//! re-queues sessions until every terminal reaches a terminal state. The
//! loop is *supervised*: a worker panic restarts that shard with a fresh
//! array and re-dispatches the session with exponential backoff (bounded
//! by [`pool::RecoveryPolicy::max_session_attempts`], then dead-letter),
//! and an over-capacity backlog sheds its least-urgent session with an
//! explicit [`SessionState::Shed`] outcome instead of queueing without
//! bound. With the `faults` cargo feature a deterministic
//! `FaultPlan` (`xpp_array::fault`) can be injected pool-wide to exercise
//! exactly these paths.
//!
//! ```
//! use sdr_engine::{Engine, EngineConfig, Session};
//!
//! let mut engine = Engine::new(EngineConfig { shards: 2, ..EngineConfig::default() });
//! let sessions = vec![Session::wcdma(0, 1), Session::ofdm(1, 2)];
//! let summary = engine.run(sessions);
//! assert_eq!(summary.completed.len(), 2);
//! println!("{}", summary.snapshot);
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod config_manager;
pub mod frontend;
pub mod metrics;
pub mod pool;
pub mod session;

pub use config_manager::{CmState, ConfigManager, ConfigStore, KernelSpec};
pub use frontend::{Frontend, FrontendConfig, ScaleSummary};
pub use metrics::{KernelKind, Metrics, Snapshot};
pub use pool::{PoolConfig, RecoveryPolicy, ShardPool, SubmitError, WorkerArray};
pub use session::{ParkedSession, Session, SessionState, Standard};

use std::collections::VecDeque;
use std::sync::Arc;

use sdr_core::scheduler::{schedule_edf, ScheduleReport};
#[cfg(feature = "faults")]
use xpp_array::fault::FaultPlan;

/// EDF admission-control horizon in array cycles (two W-CDMA slots).
pub const ADMISSION_HORIZON_CYCLES: u64 = 2 * session::WCDMA_PERIOD_CYCLES;

/// Engine sizing. Mirrors [`PoolConfig`] minus the test-only pause knob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker shards (one array gang each).
    pub shards: usize,
    /// Arrays per shard gang; above 1 the shard batches sessions by
    /// kernel and amortises configuration loads across each batch (see
    /// [`PoolConfig::arrays_per_shard`]).
    pub arrays_per_shard: usize,
    /// Bounded per-shard queue depth.
    pub queue_depth: usize,
    /// Compiled configurations the process-wide store may hold.
    pub cache_capacity: usize,
    /// Supervision tuning: retry budgets, crash backoff, watchdog grant.
    pub recovery: RecoveryPolicy,
    /// Backlog length above which admission pressure sheds the
    /// least-urgent (latest-deadline) waiting session instead of queueing
    /// it. The default (`usize::MAX`) never sheds.
    pub shed_backlog: usize,
    /// Deterministic pool-wide fault plan (`None` injects nothing).
    #[cfg(feature = "faults")]
    pub fault_plan: Option<FaultPlan>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let p = PoolConfig::default();
        EngineConfig {
            shards: p.shards,
            arrays_per_shard: p.arrays_per_shard,
            queue_depth: p.queue_depth,
            cache_capacity: p.cache_capacity,
            recovery: p.recovery,
            shed_backlog: usize::MAX,
            #[cfg(feature = "faults")]
            fault_plan: None,
        }
    }
}

/// What a [`Engine::run`] call produced.
#[derive(Debug)]
pub struct RunSummary {
    /// Sessions that reached a terminal state (`Done`, `Failed`, `Shed`
    /// or `DeadLettered`), in completion order.
    pub completed: Vec<Session>,
    /// Per-shard EDF admission reports for the offered load.
    pub admission: Vec<ScheduleReport>,
    /// Metrics snapshot taken when the run drained.
    pub snapshot: Snapshot,
}

impl RunSummary {
    /// True when every shard's offered load was EDF-feasible.
    pub fn admission_feasible(&self) -> bool {
        self.admission.iter().all(ScheduleReport::feasible)
    }

    /// Sessions that ended in `Done`.
    pub fn done(&self) -> usize {
        self.completed
            .iter()
            .filter(|s| *s.state() == SessionState::Done)
            .count()
    }

    /// Sessions that ended in `Failed` (wrong bits, pipeline errors).
    pub fn failed(&self) -> usize {
        self.completed
            .iter()
            .filter(|s| matches!(s.state(), SessionState::Failed(_)))
            .count()
    }

    /// Sessions shed by admission pressure.
    pub fn shed(&self) -> usize {
        self.completed
            .iter()
            .filter(|s| *s.state() == SessionState::Shed)
            .count()
    }

    /// Sessions dead-lettered after exhausting recovery attempts.
    pub fn dead_lettered(&self) -> usize {
        self.completed
            .iter()
            .filter(|s| matches!(s.state(), SessionState::DeadLettered(_)))
            .count()
    }
}

/// The multi-terminal engine front end.
pub struct Engine {
    pool: ShardPool,
    metrics: Arc<Metrics>,
    recovery: RecoveryPolicy,
    shed_backlog: usize,
}

impl Engine {
    /// Spawns the worker pool.
    pub fn new(config: EngineConfig) -> Self {
        let metrics = Arc::new(Metrics::new());
        let pool = ShardPool::new(
            PoolConfig {
                shards: config.shards,
                arrays_per_shard: config.arrays_per_shard,
                queue_depth: config.queue_depth,
                cache_capacity: config.cache_capacity,
                replicate_after_cycles: PoolConfig::default().replicate_after_cycles,
                start_paused: false,
                recovery: config.recovery,
                #[cfg(feature = "faults")]
                fault_plan: config.fault_plan,
            },
            Arc::clone(&metrics),
        );
        Engine {
            pool,
            metrics,
            recovery: config.recovery,
            shed_backlog: config.shed_backlog,
        }
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// A point-in-time metrics snapshot.
    pub fn snapshot(&self) -> Snapshot {
        self.metrics.snapshot()
    }

    /// The underlying pool (pause/resume and direct submission).
    pub fn pool(&self) -> &ShardPool {
        &self.pool
    }

    /// Runs a batch of sessions to completion: submits each to its shard,
    /// re-queues non-terminal sessions as workers hand them back, and
    /// retries `WouldBlock` rejections after draining results. Returns
    /// once every session is terminal.
    ///
    /// Supervision happens here: sessions handed back marked *crashed*
    /// (their worker panicked and was restarted with a fresh array) are
    /// re-dispatched with exponential backoff up to the recovery policy's
    /// session budget, then dead-lettered; and when backpressure leaves
    /// more than `shed_backlog` sessions waiting, the least-urgent
    /// (latest-deadline) one is shed outright.
    pub fn run(&mut self, sessions: Vec<Session>) -> RunSummary {
        let shards = self.pool.shard_count();
        let mut shard_jobs = vec![Vec::new(); shards];
        for s in &sessions {
            shard_jobs[self.pool.shard_of(s)].push(s.scheduler_job());
        }
        let admission: Vec<ScheduleReport> = shard_jobs
            .iter()
            .map(|jobs| {
                if jobs.is_empty() {
                    // An idle shard (more shards than sessions) is trivially
                    // feasible; `schedule_edf` rejects empty job sets.
                    ScheduleReport {
                        horizon: ADMISSION_HORIZON_CYCLES,
                        busy: 0,
                        timeline: Vec::new(),
                        misses: Vec::new(),
                    }
                } else {
                    schedule_edf(jobs, ADMISSION_HORIZON_CYCLES)
                }
            })
            .collect();

        Metrics::add(&self.metrics.sessions_started, sessions.len() as u64);
        let mut backlog: VecDeque<Session> = sessions.into();
        let mut outstanding = 0usize;
        let mut completed = Vec::new();
        while !backlog.is_empty() || outstanding > 0 {
            while let Some(session) = backlog.pop_front() {
                match self.pool.submit(session) {
                    Ok(_) => outstanding += 1,
                    Err(SubmitError::WouldBlock(s)) => {
                        backlog.push_front(s);
                        // Admission pressure: every queue is full and the
                        // backlog is over budget — shed the least-urgent
                        // waiting session rather than queue unboundedly.
                        while backlog.len() > self.shed_backlog {
                            let Some(mut victim) = Self::remove_latest_deadline(&mut backlog)
                            else {
                                break;
                            };
                            victim.mark_shed();
                            Metrics::incr(&self.metrics.sessions_shed);
                            completed.push(victim);
                        }
                        break;
                    }
                    Err(SubmitError::Shutdown(s)) => {
                        // Cannot happen while the pool is alive; keep the
                        // session rather than lose it.
                        backlog.push_front(s);
                        break;
                    }
                }
            }
            if outstanding > 0 {
                let Some(mut session) = self.pool.recv() else {
                    // Every worker is gone; nothing more will be handed
                    // back. Only reachable if the pool died under us.
                    break;
                };
                outstanding -= 1;
                if session.take_crashed() {
                    if session.attempts() > self.recovery.max_session_attempts {
                        session.mark_dead_lettered(format!(
                            "crashed {} times; giving up",
                            session.attempts()
                        ));
                        Metrics::incr(&self.metrics.dead_letters);
                        completed.push(session);
                    } else {
                        // The shard already restarted with a fresh array;
                        // back off briefly and re-dispatch the session.
                        Metrics::incr(&self.metrics.session_retries);
                        Metrics::incr(&self.metrics.recoveries);
                        let exp = session.attempts().saturating_sub(1).min(6);
                        std::thread::sleep(self.recovery.backoff.saturating_mul(1 << exp));
                        backlog.push_back(session);
                    }
                } else if session.is_terminal() {
                    completed.push(session);
                } else {
                    backlog.push_back(session);
                }
            } else {
                std::thread::yield_now();
            }
        }
        // Fault-injection counters fold into the snapshot automatically via
        // the pool's registered metrics sync hook.
        RunSummary {
            completed,
            admission,
            snapshot: self.metrics.snapshot(),
        }
    }

    /// Removes and returns the latest-deadline (EDF least-urgent) session
    /// from the backlog.
    fn remove_latest_deadline(backlog: &mut VecDeque<Session>) -> Option<Session> {
        let idx = backlog
            .iter()
            .enumerate()
            .max_by_key(|(_, s)| s.deadline())
            .map(|(i, _)| i)?;
        backlog.remove(idx)
    }

    /// Shuts the pool down, returning any sessions still in flight (each
    /// stepped once more by its worker while draining).
    pub fn shutdown(self) -> Vec<Session> {
        self.pool.shutdown()
    }
}
