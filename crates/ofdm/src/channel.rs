//! WLAN indoor channel and 10-bit ADC front end.
//!
//! Short multipath (within the 16-sample guard interval), AWGN, an optional
//! idle gap before the frame (so preamble detection has something to
//! detect), and quantisation to the 10-bit I/Q samples the paper's FFT
//! design assumes ("The accuracy of the complex input signal is 10 bit").

use sdr_dsp::fixed::sat;
use sdr_dsp::noise::Awgn;
use sdr_dsp::Cplx;

/// Channel and front-end configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct WlanChannel {
    /// Tapped delay line at 20 Msps (tap 0 = direct path). Must be short
    /// relative to the 16-sample guard interval for ISI-free operation.
    pub taps: Vec<Cplx<f64>>,
    /// AWGN standard deviation per real dimension (pre-ADC units).
    pub noise_sigma: f64,
    /// Idle noise-only samples preceding the frame.
    pub leading_gap: usize,
    /// ADC gain before quantisation.
    pub adc_gain: f64,
    /// ADC width (paper: 10 bits).
    pub adc_bits: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WlanChannel {
    fn default() -> Self {
        WlanChannel {
            taps: vec![Cplx::new(1.0, 0.0)],
            noise_sigma: 0.0,
            leading_gap: 100,
            adc_gain: 128.0,
            adc_bits: 10,
            seed: 1,
        }
    }
}

impl WlanChannel {
    /// An AWGN-only channel at the given noise level.
    pub fn awgn(sigma: f64, seed: u64) -> Self {
        WlanChannel {
            noise_sigma: sigma,
            seed,
            ..Default::default()
        }
    }

    /// Adds a two-path profile with the echo at `delay` samples and relative
    /// complex gain `echo`.
    pub fn with_echo(mut self, delay: usize, echo: Cplx<f64>) -> Self {
        assert!(
            (1..16).contains(&delay),
            "echo must fall inside the guard interval"
        );
        if self.taps.len() <= delay {
            self.taps.resize(delay + 1, Cplx::<f64>::ZERO);
        }
        self.taps[delay] = echo;
        self
    }

    /// Propagates a frame, returning digitised receiver samples.
    pub fn run(&self, tx: &[Cplx<f64>]) -> Vec<Cplx<i32>> {
        let out_len = self.leading_gap + tx.len() + self.taps.len();
        let mut sum = vec![Cplx::<f64>::ZERO; out_len];
        for (d, &tap) in self.taps.iter().enumerate() {
            if tap == Cplx::<f64>::ZERO {
                continue;
            }
            for (t, &s) in tx.iter().enumerate() {
                sum[self.leading_gap + t + d] += s * tap;
            }
        }
        let mut awgn = Awgn::new(self.seed, self.noise_sigma);
        if self.noise_sigma > 0.0 {
            awgn.add_to(&mut sum);
        }
        sum.into_iter()
            .map(|c| {
                Cplx::new(
                    sat((c.re * self.adc_gain).round() as i64, self.adc_bits),
                    sat((c.im * self.adc_gain).round() as i64, self.adc_bits),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_channel_delays_by_gap() {
        let ch = WlanChannel {
            leading_gap: 10,
            ..Default::default()
        };
        let tx = vec![Cplx::new(1.0, -1.0); 4];
        let rx = ch.run(&tx);
        assert_eq!(rx[9], Cplx::new(0, 0));
        assert_eq!(rx[10], Cplx::new(128, -128));
    }

    #[test]
    fn echo_superposes() {
        let ch = WlanChannel {
            leading_gap: 0,
            ..Default::default()
        }
        .with_echo(3, Cplx::new(0.5, 0.0));
        let tx = vec![Cplx::new(1.0, 0.0)];
        let rx = ch.run(&tx);
        assert_eq!(rx[0], Cplx::new(128, 0));
        assert_eq!(rx[3], Cplx::new(64, 0));
    }

    #[test]
    fn adc_clips_at_10_bits() {
        let ch = WlanChannel {
            adc_gain: 10_000.0,
            leading_gap: 0,
            ..Default::default()
        };
        let rx = ch.run(&[Cplx::new(1.0, -1.0)]);
        assert_eq!(rx[0], Cplx::new(511, -512));
    }

    #[test]
    fn noise_fills_the_gap_deterministically() {
        let ch = WlanChannel::awgn(0.1, 42);
        let a = ch.run(&[Cplx::new(1.0, 0.0); 8]);
        let b = ch.run(&[Cplx::new(1.0, 0.0); 8]);
        assert_eq!(a, b);
        // Some noise samples in the gap should be non-zero at gain 128.
        assert!(a[..100].iter().any(|v| v.re != 0 || v.im != 0));
    }

    #[test]
    #[should_panic]
    fn echo_outside_guard_rejected() {
        WlanChannel::default().with_echo(20, Cplx::new(0.1, 0.0));
    }
}
