//! The paper's contribution: a heterogeneous software-defined-radio
//! platform combining a DSP, dedicated hardware and a coarse-grained
//! reconfigurable array.
//!
//! *"The presented combination of reconfigurable hardware, dedicated
//! hardware and a DSP shows a very good fit to handle SDR wireless
//! applications"* — this crate models that combination and the arguments
//! around it:
//!
//! * [`requirements`] — the processing-power (Fig. 1) and data-rate vs
//!   mobility (Fig. 2) models motivating the architecture,
//! * [`partition`] — the task partitionings of the rake receiver (Fig. 4)
//!   and OFDM decoder (Fig. 8) onto DSP / dedicated HW / array,
//! * [`dsp`] — the task-level DSP model with MIPS accounting,
//! * [`platform`] — the Fig. 11 evaluation platform composing an
//!   [`xpp_array::Array`], the DSP model and dedicated blocks,
//! * [`scenario`] (re-exported from `sdr-wcdma`) — the Table 1 finger
//!   scenarios,
//! * [`scheduler`] — time-sliced multi-standard operation (EDF over
//!   measured kernel cycle counts).
//!
//! # Example
//!
//! ```
//! use sdr_core::requirements::{Protocol, exceeds_single_dsp};
//! use sdr_core::scheduler::{schedule_edf, Job};
//!
//! // The paper's motivation: UMTS exceeds a single DSP…
//! assert!(exceeds_single_dsp(Protocol::Umts));
//! // …and time-slicing two standards over one array is feasible when the
//! // measured utilizations fit.
//! let jobs = vec![Job::new("umts-rake-slot", 2_560, 38_400),
//!                 Job::new("ofdm-symbol", 1_000, 13_824)];
//! let report = schedule_edf(&jobs, 500_000);
//! assert!(report.feasible());
//! ```

pub mod dsp;
pub mod partition;
pub mod platform;
pub mod requirements;
pub mod scheduler;

pub use sdr_wcdma::scenario;

pub use dsp::DspModel;
pub use partition::{ofdm_partitioning, rake_partitioning, Resource, TaskAssignment};
pub use platform::{DedicatedBlock, PlatformReport, SdrPlatform, ARRAY_CLOCK_HZ};
pub use requirements::{Mobility, Protocol, PROTOCOLS};
pub use scheduler::{schedule_edf, Job, ScheduleReport};
