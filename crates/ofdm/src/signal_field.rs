//! The 802.11a SIGNAL field (§17.3.4): one BPSK rate-1/2 OFDM symbol
//! carrying RATE (4 bits), a reserved bit, LENGTH (12 bits, octets,
//! LSB first), an even-parity bit and 6 tail zeros — transmitted
//! unscrambled right after the long preamble so the receiver can configure
//! itself for the DATA field.

use crate::convolutional::{encode, viterbi_decode};
use crate::interleaver::{deinterleave, interleave};
use crate::modulation::{demap_soft, map_bits};
use crate::params::{Modulation, RateParams};
use sdr_dsp::Cplx;

/// Number of information bits in the SIGNAL field (incl. tail).
pub const SIGNAL_BITS: usize = 24;

/// Largest PSDU length encodable in the 12-bit LENGTH field, in octets.
pub const MAX_LENGTH_OCTETS: usize = 4095;

/// RATE-field encoding (R1..R4, transmitted in that order).
fn rate_bits(mbps: u32) -> Option<[u8; 4]> {
    Some(match mbps {
        6 => [1, 1, 0, 1],
        9 => [1, 1, 1, 1],
        12 => [0, 1, 0, 1],
        18 => [0, 1, 1, 1],
        24 => [1, 0, 0, 1],
        36 => [1, 0, 1, 1],
        48 => [0, 0, 0, 1],
        54 => [0, 0, 1, 1],
        _ => return None,
    })
}

fn rate_from_bits(bits: &[u8]) -> Option<RateParams> {
    for r in crate::params::RATES {
        if rate_bits(r.mbps).expect("table rate")[..] == bits[..4] {
            return Some(r);
        }
    }
    None
}

/// Assembles the 24 SIGNAL bits for a rate and PSDU length (octets).
///
/// # Panics
///
/// Panics if the rate is not a standard rate point or the length exceeds
/// 4095 octets.
pub fn signal_bits(r: RateParams, length_octets: usize) -> [u8; SIGNAL_BITS] {
    assert!(
        length_octets <= MAX_LENGTH_OCTETS,
        "LENGTH field is 12 bits"
    );
    let rb = rate_bits(r.mbps).expect("standard rate point");
    let mut bits = [0u8; SIGNAL_BITS];
    bits[..4].copy_from_slice(&rb);
    // bit 4 reserved = 0; bits 5..17 LENGTH LSB first.
    for i in 0..12 {
        bits[5 + i] = ((length_octets >> i) & 1) as u8;
    }
    // bit 17: even parity over bits 0..17.
    let ones: u8 = bits[..17].iter().sum();
    bits[17] = ones & 1;
    // bits 18..24 tail zeros (already).
    bits
}

/// Parses decoded SIGNAL bits; `None` if the parity fails, a reserved bit
/// is set, or the RATE pattern is unknown.
pub fn parse_signal_bits(bits: &[u8]) -> Option<(RateParams, usize)> {
    if bits.len() < SIGNAL_BITS {
        return None;
    }
    let ones: u8 = bits[..17].iter().sum();
    if ones & 1 != bits[17] & 1 || bits[4] != 0 {
        return None;
    }
    let r = rate_from_bits(bits)?;
    let mut length = 0usize;
    for i in 0..12 {
        length |= ((bits[5 + i] & 1) as usize) << i;
    }
    Some((r, length))
}

/// Encodes the SIGNAL field to its 48 BPSK constellation points
/// (rate 1/2, BPSK-interleaved, not scrambled).
pub fn signal_points(r: RateParams, length_octets: usize) -> Vec<Cplx<f64>> {
    let bits = signal_bits(r, length_octets);
    let coded = encode(&bits); // rate 1/2, trellis terminated by the tail
    let interleaved = interleave(&coded, Modulation::Bpsk);
    map_bits(&interleaved, Modulation::Bpsk)
}

/// Decodes the SIGNAL field from 48 equalised subcarrier values.
///
/// # Panics
///
/// Panics if not exactly 48 values are supplied.
pub fn decode_signal(equalised: &[Cplx<f64>]) -> Option<(RateParams, usize)> {
    assert_eq!(equalised.len(), 48, "SIGNAL occupies one OFDM symbol");
    let llrs: Vec<i32> = equalised
        .iter()
        .flat_map(|&y| demap_soft(y, Modulation::Bpsk, 64.0))
        .collect();
    let deinterleaved = deinterleave(&llrs, Modulation::Bpsk);
    let bits = viterbi_decode(&deinterleaved);
    parse_signal_bits(&bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::rate;
    use sdr_dsp::noise::Awgn;

    #[test]
    fn rate_bits_roundtrip_all_rates() {
        for r in crate::params::RATES {
            let bits = signal_bits(r, 100);
            let (parsed, len) = parse_signal_bits(&bits).expect("valid SIGNAL");
            assert_eq!(parsed.mbps, r.mbps);
            assert_eq!(len, 100);
        }
    }

    #[test]
    fn length_field_covers_the_range() {
        for len in [0usize, 1, 255, 2047, 4095] {
            let bits = signal_bits(rate(6).unwrap(), len);
            assert_eq!(parse_signal_bits(&bits).unwrap().1, len);
        }
    }

    #[test]
    #[should_panic]
    fn oversized_length_rejected() {
        signal_bits(rate(6).unwrap(), 4096);
    }

    #[test]
    fn parity_error_is_detected() {
        let mut bits = signal_bits(rate(24).unwrap(), 64);
        bits[2] ^= 1;
        assert!(parse_signal_bits(&bits).is_none());
    }

    #[test]
    fn reserved_bit_is_checked() {
        let mut bits = signal_bits(rate(24).unwrap(), 64);
        bits[4] = 1;
        bits[17] ^= 1; // keep parity consistent so only the reserved bit trips
        assert!(parse_signal_bits(&bits).is_none());
    }

    #[test]
    fn points_decode_cleanly() {
        let pts = signal_points(rate(36).unwrap(), 1234);
        let (r, len) = decode_signal(&pts).expect("clean decode");
        assert_eq!(r.mbps, 36);
        assert_eq!(len, 1234);
    }

    #[test]
    fn points_decode_under_noise() {
        let mut pts = signal_points(rate(54).unwrap(), 999);
        let mut awgn = Awgn::new(5, 0.25);
        for p in &mut pts {
            *p += awgn.sample();
        }
        // The rate-1/2 coded, 48-carrier BPSK symbol is very robust.
        let (r, len) = decode_signal(&pts).expect("decode under noise");
        assert_eq!(r.mbps, 54);
        assert_eq!(len, 999);
    }
}
