//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// An inclusive length range for generated collections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    /// Smallest length generated.
    pub min: usize,
    /// Largest length generated (inclusive).
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Generates `Vec`s whose length falls in `size` and whose elements come
/// from `elem`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

/// The result of [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min + 1) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_size_range() {
        let strat = vec(0i32..10, 2..5);
        let mut rng = TestRng::new(17);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..=4).contains(&v.len()));
            assert!(v.iter().all(|&x| (0..10).contains(&x)));
        }
    }

    #[test]
    fn exact_size_is_exact() {
        let strat = vec(0i32..3, 7usize);
        let mut rng = TestRng::new(23);
        assert_eq!(strat.generate(&mut rng).len(), 7);
    }
}
