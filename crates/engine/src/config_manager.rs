//! The engine's configuration manager: kernel registry, process-wide
//! compiled-config store, and the per-worker configuration lifecycle.
//!
//! The paper's platform revolves around a configuration manager that
//! loads, caches and swaps array configurations at runtime. This module
//! is that subsystem, split into three pieces:
//!
//! * [`KernelSpec`] — a stable identity for every array kernel the
//!   receivers register (`sdr_wcdma::xpp_map::WcdmaKernel`,
//!   `sdr_ofdm::xpp_map::OfdmKernel`), replacing ad-hoc netlist-builder
//!   function pointers as the unit of request;
//! * [`ConfigStore`] — a **process-wide** bounded LRU of
//!   [`Arc<CompiledConfig>`]s, shared by every worker shard, so each
//!   kernel is built and placed **once per process** instead of once per
//!   worker (the old per-worker netlist cache rebuilt and re-placed the
//!   same kernels on every shard);
//! * [`ConfigManager`] — the per-worker lifecycle driver layered over one
//!   array, tracking which configurations are resident and in what state.
//!
//! # Configuration lifecycle
//!
//! A configuration request moves through an explicit state machine:
//!
//! ```text
//! request ──► prefetch ──► loading ──► active ──► unload
//!    │                                   ▲
//!    └───────────(demand load)───────────┘
//! ```
//!
//! * **request** — a session names a [`KernelSpec`]; the store resolves it
//!   to an `Arc<CompiledConfig>` (compiling on first use).
//! * **prefetch** — [`ConfigManager::prefetch`] places the compiled config
//!   onto the array *speculatively*: resources are reserved and the serial
//!   configuration bus starts streaming, but nobody waits for it. The
//!   load overlaps whatever the array is already running (the paper's
//!   Fig. 10 trick: configuration 2b loads while 2a is still searching
//!   for the preamble).
//! * **loading** — the bus streams the configuration; a prefetched entry
//!   sits in [`CmState::Loading`] until someone activates it.
//! * **active** — [`ConfigManager::activate`] finishes any remaining bus
//!   cycles and hands the session a running [`ConfigId`]. Activating a
//!   prefetched entry is a *prefetch hit*: the swap pays only residual
//!   activation, not build + place + load.
//! * **unload** — [`ConfigManager::deactivate`] (or placement-pressure
//!   eviction, least recently used first) releases the resources.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use sdr_ofdm::xpp_map::OfdmKernel;
use sdr_wcdma::xpp_map::WcdmaKernel;
use xpp_array::{Array, CompiledConfig, ConfigId, Error as XppError, Netlist, Result as XppResult};

use crate::metrics::Metrics;

/// A kernel identity across both standards: the unit of request the
/// configuration manager works in.
///
/// [`config_name`](KernelSpec::config_name) is the cache key — kernel id
/// plus every parameter that changes the generated netlist — and
/// [`build`](KernelSpec::build) produces the netlist on a store miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelSpec {
    /// A W-CDMA rake kernel (paper Figs. 5–7).
    Wcdma(WcdmaKernel),
    /// An 802.11a OFDM kernel (paper Figs. 9–10).
    Ofdm(OfdmKernel),
}

impl KernelSpec {
    /// The stable store key for this kernel + parameters.
    pub fn config_name(&self) -> String {
        match self {
            KernelSpec::Wcdma(k) => k.config_name(),
            KernelSpec::Ofdm(k) => k.config_name(),
        }
    }

    /// Builds the kernel's netlist (only called on a store miss).
    pub fn build(&self) -> Netlist {
        match self {
            KernelSpec::Wcdma(k) => k.build(),
            KernelSpec::Ofdm(k) => k.build(),
        }
    }
}

impl From<WcdmaKernel> for KernelSpec {
    fn from(k: WcdmaKernel) -> Self {
        KernelSpec::Wcdma(k)
    }
}

impl From<OfdmKernel> for KernelSpec {
    fn from(k: OfdmKernel) -> Self {
        KernelSpec::Ofdm(k)
    }
}

/// Outcome of a [`ConfigStore`] lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreLookup {
    /// The compiled config was already in the store; no build happened.
    pub hit: bool,
    /// An LRU entry was dropped to make room.
    pub evicted: bool,
}

#[derive(Debug)]
struct StoreEntry {
    name: String,
    config: Arc<CompiledConfig>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct StoreInner {
    entries: Vec<StoreEntry>,
    tick: u64,
}

/// Process-wide bounded LRU store of compiled configurations.
///
/// One store is shared (via `Arc`) by every worker in a
/// [`ShardPool`](crate::pool::ShardPool): the first worker to request a
/// kernel pays
/// netlist build + placement + port-map flattening, every later request —
/// from *any* shard — gets the same `Arc<CompiledConfig>` and pays only
/// the serial configuration bus on its own array.
///
/// Builds happen under the store lock, so concurrent workers requesting
/// the same kernel compile it exactly once (the second blocks briefly and
/// then hits).
#[derive(Debug)]
pub struct ConfigStore {
    capacity: usize,
    inner: Mutex<StoreInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ConfigStore {
    /// Creates an empty store holding at most `capacity` compiled configs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "store capacity must be positive");
        ConfigStore {
            capacity,
            inner: Mutex::new(StoreInner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Locks the store, recovering from poisoning: a worker that panicked
    /// mid-lookup cannot have left the entries inconsistent (the mutations
    /// are single `Vec` operations), so the supervisor's replacement
    /// workers keep sharing the store instead of cascading the panic.
    fn lock(&self) -> MutexGuard<'_, StoreInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns the compiled config for `name`, building and compiling it
    /// with `build` on a miss. The LRU entry is evicted when full.
    pub fn get_or_compile<F: FnOnce() -> Netlist>(
        &self,
        name: &str,
        build: F,
    ) -> (Arc<CompiledConfig>, StoreLookup) {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.entries.iter_mut().find(|e| e.name == name) {
            entry.last_used = tick;
            let config = Arc::clone(&entry.config);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (
                config,
                StoreLookup {
                    hit: true,
                    evicted: false,
                },
            );
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut evicted = false;
        if inner.entries.len() == self.capacity {
            if let Some(lru) = inner
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
            {
                inner.entries.swap_remove(lru);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                evicted = true;
            }
        }
        let config = Arc::new(CompiledConfig::compile(&build()));
        inner.entries.push(StoreEntry {
            name: name.to_string(),
            config: Arc::clone(&config),
            last_used: tick,
        });
        (
            config,
            StoreLookup {
                hit: false,
                evicted,
            },
        )
    }

    /// Whether `name` is currently stored (no LRU touch).
    pub fn contains(&self, name: &str) -> bool {
        self.lock().entries.iter().any(|e| e.name == name)
    }

    /// Number of stored compiled configs.
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of stored compiled configs.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups served without a compile.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to build and compile.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries dropped to make room.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

/// Where a resident configuration is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmState {
    /// Placed on the array and streaming over the configuration bus; a
    /// prefetched configuration waits here until someone activates it.
    Loading,
    /// Finished loading; sessions may drive I/O on it.
    Active,
}

#[derive(Debug)]
struct Resident {
    name: String,
    id: ConfigId,
    state: CmState,
    /// The configuration's object-fire count when activity was last
    /// refreshed. A resident whose live count still equals the mark has
    /// done no work since — it is *quiescent* and a spill-aware prefetch
    /// may reclaim its resources.
    fire_mark: u64,
}

/// Per-worker configuration lifecycle driver.
///
/// Owns the worker's resident-configuration list (least recently used
/// first) and resolves every request through the shared [`ConfigStore`].
/// Activation is tiered exactly like the paper's CM:
///
/// 1. **resident active** — free;
/// 2. **resident loading** (prefetched) — pay only the residual bus
///    cycles (a *prefetch hit*);
/// 3. **stored** — pay the full serial bus load;
/// 4. **cold** — build + compile + place, then load.
///
/// When placement fails, resident configurations are evicted least
/// recently used first and the load retried — the paper's Fig. 10
/// resource recycling. Prefetches may only *spill*: evict a quiescent
/// resident (zero fires since the last activity refresh, and never the
/// most recently activated configuration) — a speculative load must not
/// cost a *working* configuration its resources.
#[derive(Debug)]
pub struct ConfigManager {
    store: Arc<ConfigStore>,
    resident: Vec<Resident>,
    metrics: Arc<Metrics>,
}

impl ConfigManager {
    /// Creates a manager drawing from `store`.
    pub fn new(store: Arc<ConfigStore>, metrics: Arc<Metrics>) -> Self {
        ConfigManager {
            store,
            resident: Vec::new(),
            metrics,
        }
    }

    /// The shared compiled-config store.
    pub fn store(&self) -> &Arc<ConfigStore> {
        &self.store
    }

    /// The lifecycle state of a resident configuration, if resident.
    pub fn state_of(&self, name: &str) -> Option<CmState> {
        self.resident
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.state)
    }

    /// Whether `name` is resident on the array (loading or active).
    pub fn is_resident(&self, name: &str) -> bool {
        self.resident.iter().any(|r| r.name == name)
    }

    /// Names of resident configurations, least recently used first — the
    /// introspection the gang router builds its residency map from.
    pub fn resident_names(&self) -> Vec<String> {
        self.resident.iter().map(|r| r.name.clone()).collect()
    }

    /// Number of resident configurations.
    pub fn resident_count(&self) -> usize {
        self.resident.len()
    }

    /// Re-marks every resident's object-fire counter as seen. A resident
    /// whose live count has not advanced past its mark by the next
    /// placement squeeze is quiescent and eligible for a prefetch spill.
    /// The dispatcher calls this after each batch (or session step).
    pub fn refresh_activity(&mut self, array: &Array) {
        for r in &mut self.resident {
            r.fire_mark = array.config_fire_count(r.id);
        }
    }

    /// Ensures the configuration is resident *and running*, returning its
    /// handle. See the type docs for the activation tiers.
    ///
    /// # Errors
    ///
    /// Returns an error if placement fails even after unloading every
    /// other resident configuration, or a typed fault error
    /// ([`Error::is_fault`](xpp_array::Error::is_fault)) when the load went
    /// wrong — the faulted residue is already unloaded, so the caller can
    /// simply retry.
    pub fn activate(&mut self, array: &mut Array, spec: &KernelSpec) -> XppResult<ConfigId> {
        let name = spec.config_name();
        if let Some(pos) = self.resident.iter().position(|r| r.name == name) {
            let mut entry = self.resident.remove(pos);
            match entry.state {
                CmState::Active => {
                    Metrics::incr(&self.metrics.cache_hits);
                }
                CmState::Loading => {
                    // Prefetch hit: the bus may still be streaming; pay
                    // only what the overlap didn't already hide. A faulted
                    // load was disposed of inside finish_load — drop the
                    // entry and surface the error.
                    Self::finish_load(array, entry.id, &self.metrics)?;
                    entry.state = CmState::Active;
                    Metrics::incr(&self.metrics.prefetch_hits);
                }
            }
            let id = entry.id;
            self.resident.push(entry); // most recently used
            return Ok(id);
        }

        let (compiled, lookup) = self.store.get_or_compile(&name, || spec.build());
        Metrics::incr(if lookup.hit {
            &self.metrics.cache_hits
        } else {
            &self.metrics.cache_misses
        });
        if lookup.evicted {
            Metrics::incr(&self.metrics.cache_evictions);
        }
        let id = self.place_with_eviction(array, &compiled)?;
        Self::finish_load(array, id, &self.metrics)?;
        Metrics::add(&self.metrics.config_words_demand, compiled.load_cycles());
        let fire_mark = array.config_fire_count(id);
        self.resident.push(Resident {
            name,
            id,
            state: CmState::Active,
            fire_mark,
        });
        Ok(id)
    }

    /// Speculatively places the configuration and starts its bus load
    /// without waiting for it — the **prefetch** edge of the lifecycle.
    /// Returns whether a prefetch was actually issued (`false` when the
    /// configuration is already resident or the array is too full).
    ///
    /// A later [`activate`](ConfigManager::activate) of the same spec is
    /// then a prefetch hit: the load streamed while the array ran other
    /// configurations, so the activation pays only the residue.
    ///
    /// # Errors
    ///
    /// Propagates array errors other than placement failure. A placement
    /// failure first tries to **spill** a quiescent resident (zero fires
    /// since [`refresh_activity`](ConfigManager::refresh_activity), and
    /// never the most recently activated configuration); if no quiescent
    /// victim exists the prefetch is skipped — speculative work must never
    /// evict a working configuration.
    pub fn prefetch(&mut self, array: &mut Array, spec: &KernelSpec) -> XppResult<bool> {
        let name = spec.config_name();
        if self.is_resident(&name) {
            return Ok(false);
        }
        let (compiled, lookup) = self.store.get_or_compile(&name, || spec.build());
        Metrics::incr(if lookup.hit {
            &self.metrics.cache_hits
        } else {
            &self.metrics.cache_misses
        });
        if lookup.evicted {
            Metrics::incr(&self.metrics.cache_evictions);
        }
        let id = loop {
            match array.configure_compiled(&compiled) {
                Ok(id) => break id,
                Err(XppError::PlacementFailed { .. }) => {
                    if !self.spill_quiescent(array)? {
                        return Ok(false);
                    }
                }
                Err(e) => return Err(e),
            }
        };
        Metrics::incr(&self.metrics.prefetches);
        Metrics::add(
            &self.metrics.config_words_prefetched,
            compiled.load_cycles(),
        );
        let fire_mark = array.config_fire_count(id);
        self.resident.push(Resident {
            name,
            id,
            state: CmState::Loading,
            fire_mark,
        });
        Ok(true)
    }

    /// Evicts the least-recently-used *quiescent* resident to make room
    /// for a prefetch: its fire counter has not advanced past its activity
    /// mark, and it is not the most recently activated configuration
    /// (which a session may be about to drive even at zero fires).
    /// Returns whether a victim was spilled.
    fn spill_quiescent(&mut self, array: &mut Array) -> XppResult<bool> {
        let protected = self
            .resident
            .iter()
            .rposition(|r| r.state == CmState::Active);
        let victim = self
            .resident
            .iter()
            .enumerate()
            .find(|(i, r)| Some(*i) != protected && array.config_fire_count(r.id) == r.fire_mark)
            .map(|(i, _)| i);
        match victim {
            Some(i) => {
                let entry = self.resident.remove(i);
                Self::surface_fault(array, entry.id, &self.metrics);
                array.unload(entry.id)?;
                Metrics::incr(&self.metrics.prefetch_spills);
                Metrics::incr(&self.metrics.cache_evictions);
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Unloads the named configuration if resident (in any lifecycle
    /// state); returns whether it was.
    ///
    /// # Errors
    ///
    /// Returns an error if the array rejects the unload.
    pub fn deactivate(&mut self, array: &mut Array, name: &str) -> XppResult<bool> {
        match self.resident.iter().position(|r| r.name == name) {
            Some(pos) => {
                let entry = self.resident.remove(pos);
                Self::surface_fault(array, entry.id, &self.metrics);
                array.unload(entry.id)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn place_with_eviction(
        &mut self,
        array: &mut Array,
        compiled: &CompiledConfig,
    ) -> XppResult<ConfigId> {
        loop {
            match array.configure_compiled(compiled) {
                Ok(id) => return Ok(id),
                Err(XppError::PlacementFailed { .. }) if !self.resident.is_empty() => {
                    let lru = self.resident.remove(0);
                    Self::surface_fault(array, lru.id, &self.metrics);
                    array.unload(lru.id)?;
                    Metrics::incr(&self.metrics.cache_evictions);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Counts the injected-fault record of a configuration about to be
    /// disposed of, so every injected fault shows up as detected (and its
    /// disposal as a recovery) exactly once — even a stalled or faulted
    /// prefetch that is evicted before anyone activates it.
    fn surface_fault(array: &mut Array, id: ConfigId, metrics: &Metrics) {
        if array.clear_injected_fault(id) {
            Metrics::incr(&metrics.faults_detected);
            Metrics::incr(&metrics.recoveries);
        }
    }

    /// Streams the remaining configuration-bus cycles of `id`, recording
    /// them as load latency the sessions actually waited for.
    ///
    /// # Errors
    ///
    /// Returns the typed fault error of a corrupted or aborted load. The
    /// faulted residue is unloaded (and counted as a detected fault)
    /// before returning, so the array is clean for a retry.
    fn finish_load(array: &mut Array, id: ConfigId, metrics: &Metrics) -> XppResult<()> {
        let bus_before = array.stats().config_cycles;
        loop {
            if array.is_running(id) {
                break;
            }
            if let Some(err) = array.load_error(id) {
                // Surfacing the typed error counts as the detection; the
                // caller decides between retry and dead-letter, so the
                // recovery/dead-letter counters are theirs to bump.
                array.clear_injected_fault(id);
                Metrics::incr(&metrics.faults_detected);
                Metrics::add(
                    &metrics.config_bus_cycles,
                    array.stats().config_cycles - bus_before,
                );
                array.unload(id)?;
                return Err(err);
            }
            array.step();
        }
        Metrics::add(
            &metrics.config_bus_cycles,
            array.stats().config_cycles - bus_before,
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdr_wcdma::xpp_map::WcdmaKernel;

    const DESCRAMBLER: KernelSpec = KernelSpec::Wcdma(WcdmaKernel::Descrambler);
    const DETECTOR: KernelSpec = KernelSpec::Ofdm(OfdmKernel::PreambleDetector);
    const DEMODULATOR: KernelSpec = KernelSpec::Ofdm(OfdmKernel::Demodulator);

    #[test]
    fn store_compiles_once_and_shares() {
        let store = ConfigStore::new(4);
        let (a, l1) = store.get_or_compile("fig5-descrambler", || DESCRAMBLER.build());
        let (b, l2) = store.get_or_compile("fig5-descrambler", || panic!("hit must not rebuild"));
        assert!(!l1.hit && l2.hit);
        assert!(Arc::ptr_eq(&a, &b), "both callers share one compile");
        assert_eq!((store.hits(), store.misses()), (1, 1));
    }

    #[test]
    fn store_evicts_least_recently_used() {
        let store = ConfigStore::new(2);
        store.get_or_compile("a", || DESCRAMBLER.build());
        store.get_or_compile("b", || DETECTOR.build());
        store.get_or_compile("a", || unreachable!()); // touch a; b is LRU
        let (_, l) = store.get_or_compile("c", || DEMODULATOR.build());
        assert!(l.evicted);
        assert!(store.contains("a") && store.contains("c") && !store.contains("b"));
        assert_eq!(store.evictions(), 1);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn activation_walks_the_lifecycle() {
        let metrics = Arc::new(Metrics::new());
        let mut cm = ConfigManager::new(Arc::new(ConfigStore::new(4)), Arc::clone(&metrics));
        let mut array = Array::xpp64a();

        // request → loading → active (demand load).
        let id = cm.activate(&mut array, &DETECTOR).unwrap();
        assert!(array.is_running(id));
        assert_eq!(cm.state_of(&DETECTOR.config_name()), Some(CmState::Active));

        // prefetch: placed, loading, not waited for.
        assert!(cm.prefetch(&mut array, &DEMODULATOR).unwrap());
        assert_eq!(
            cm.state_of(&DEMODULATOR.config_name()),
            Some(CmState::Loading)
        );
        // A second prefetch of the same spec is a no-op.
        assert!(!cm.prefetch(&mut array, &DEMODULATOR).unwrap());

        // activate the prefetched config: a prefetch hit.
        let id2 = cm.activate(&mut array, &DEMODULATOR).unwrap();
        assert!(array.is_running(id2));
        let snap = metrics.snapshot();
        assert_eq!(snap.prefetches, 1);
        assert_eq!(snap.prefetch_hits, 1);

        // unload ends the lifecycle.
        assert!(cm
            .deactivate(&mut array, &DEMODULATOR.config_name())
            .unwrap());
        assert!(!cm.is_resident(&DEMODULATOR.config_name()));
    }

    #[test]
    fn prefetch_overlaps_the_bus_with_running_work() {
        let metrics = Arc::new(Metrics::new());
        let mut cm = ConfigManager::new(Arc::new(ConfigStore::new(4)), metrics);
        let mut array = Array::xpp64a();
        cm.activate(&mut array, &DETECTOR).unwrap();
        cm.prefetch(&mut array, &DEMODULATOR).unwrap();
        // Let the array run "other work": the bus streams the prefetched
        // load in the background.
        for _ in 0..1_000 {
            array.step();
        }
        // By activation time the load has fully overlapped: zero residual
        // bus cycles, zero added array cycles.
        let cycles_before = array.stats().cycles;
        let id = cm.activate(&mut array, &DEMODULATOR).unwrap();
        assert!(array.is_running(id));
        assert_eq!(
            array.stats().cycles,
            cycles_before,
            "prefetched activation must not step the array"
        );
    }

    #[test]
    fn prefetch_never_evicts_residents() {
        let metrics = Arc::new(Metrics::new());
        let mut cm = ConfigManager::new(Arc::new(ConfigStore::new(8)), Arc::clone(&metrics));
        // An array whose I/O channels fit the detector exactly, so any
        // further configuration fails placement. The detector is the most
        // recently activated configuration, so even the spill-aware
        // prefetch must not touch it.
        let compiled = CompiledConfig::compile(&DETECTOR.build());
        let mut geometry = xpp_array::Geometry::xpp64a();
        geometry.io_channels = compiled.placement().counts.io;
        let mut array = Array::with_geometry(geometry);
        cm.activate(&mut array, &DETECTOR).unwrap();
        assert!(
            !cm.prefetch(&mut array, &DEMODULATOR).unwrap(),
            "prefetch must fail soft when the array is full"
        );
        assert!(cm.is_resident(&DETECTOR.config_name()), "resident survived");
        assert_eq!(metrics.snapshot().prefetch_spills, 0);
    }

    /// Sizes an array's I/O channels to fit exactly the given specs.
    fn array_fitting(specs: &[&KernelSpec]) -> Array {
        let mut geometry = xpp_array::Geometry::xpp64a();
        geometry.io_channels = specs
            .iter()
            .map(|s| CompiledConfig::compile(&s.build()).placement().counts.io)
            .sum();
        Array::with_geometry(geometry)
    }

    #[test]
    fn prefetch_spills_a_quiescent_resident() {
        let metrics = Arc::new(Metrics::new());
        let mut cm = ConfigManager::new(Arc::new(ConfigStore::new(8)), Arc::clone(&metrics));
        let mut array = array_fitting(&[&DESCRAMBLER, &DETECTOR]);
        cm.activate(&mut array, &DESCRAMBLER).unwrap();
        cm.activate(&mut array, &DETECTOR).unwrap();
        cm.refresh_activity(&array);
        // Array is full; the descrambler has done no work since the
        // refresh and is not the most recent activation, so the prefetch
        // may reclaim its resources.
        assert!(
            cm.prefetch(&mut array, &DEMODULATOR).unwrap(),
            "prefetch spills the quiescent descrambler"
        );
        assert!(!cm.is_resident(&DESCRAMBLER.config_name()));
        assert!(cm.is_resident(&DETECTOR.config_name()));
        assert_eq!(
            cm.state_of(&DEMODULATOR.config_name()),
            Some(CmState::Loading)
        );
        let snap = metrics.snapshot();
        assert_eq!(snap.prefetch_spills, 1);
        assert_eq!(snap.prefetches, 1);
    }

    #[test]
    fn prefetch_never_spills_a_busy_resident() {
        let metrics = Arc::new(Metrics::new());
        let mut cm = ConfigManager::new(Arc::new(ConfigStore::new(8)), Arc::clone(&metrics));
        let mut array = array_fitting(&[&DETECTOR, &DESCRAMBLER]);
        let det = cm.activate(&mut array, &DETECTOR).unwrap();
        cm.refresh_activity(&array);
        // Drive samples through the detector so its fire counter advances
        // past the activity mark: it is resident-but-busy.
        use xpp_array::Word;
        let burst: Vec<Word> = (0..32).map(Word::new).collect();
        array.push_input(det, "i_in", burst.clone()).unwrap();
        array.push_input(det, "q_in", burst).unwrap();
        for _ in 0..64 {
            array.step();
        }
        cm.activate(&mut array, &DESCRAMBLER).unwrap();
        // Full array again; the detector fired since its mark and the
        // descrambler is the most recent activation — no victim.
        assert!(
            !cm.prefetch(&mut array, &DEMODULATOR).unwrap(),
            "no quiescent victim: prefetch must fail soft"
        );
        assert!(cm.is_resident(&DETECTOR.config_name()));
        assert!(cm.is_resident(&DESCRAMBLER.config_name()));
        assert_eq!(metrics.snapshot().prefetch_spills, 0);
    }
}
