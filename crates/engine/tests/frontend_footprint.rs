//! Parked-session footprint guarantees, enforced with a counting global
//! allocator (same pattern as `crates/xpp/tests/alloc_steady_state.rs`):
//!
//! * a parked record stays under a pinned `size_of` budget (48 bytes —
//!   actual layout is 40);
//! * parking an idle session into a preallocated lot performs **zero**
//!   heap allocations — a million waiting terminals cost exactly the
//!   lot's preallocated slab, nothing per-park;
//! * the per-parked-session heap footprint at full occupancy stays
//!   under the 64-byte budget `BENCH_SCALE.json` reports against.
//!
//! This file intentionally contains a single test: the allocation
//! counter is process-global, and a concurrently running test would make
//! the measurement window non-quiet.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use sdr_engine::frontend::parking::ParkingLot;
use sdr_engine::{ParkedSession, Session};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Pinned budgets. A `ParkedSession` is "a few dozen bytes": id + seed +
/// deadline (3 x u64), the phase tag with its DSP state words, and two
/// backoff/attempt counters. The heap budget leaves headroom for the
/// `BinaryHeap` growth policy (capacity may exceed length by up to 2x).
const RECORD_SIZE_BUDGET: usize = 48;
const HEAP_BYTES_PER_PARKED_BUDGET: f64 = 64.0;

#[test]
fn parking_is_allocation_free_and_records_stay_compact() {
    // The record itself stays under the pinned budget.
    assert!(
        std::mem::size_of::<ParkedSession>() <= RECORD_SIZE_BUDGET,
        "ParkedSession grew past its {RECORD_SIZE_BUDGET}-byte budget \
         (now {} bytes)",
        std::mem::size_of::<ParkedSession>()
    );

    const N: usize = 100_000;
    // One up-front slab; every park below must reuse it.
    let mut lot = ParkingLot::with_capacity(N);

    // Park a full session's worth of state too: a mid-pipeline session
    // shrinks to the same compact record.
    let session = Session::wcdma(7, 1234);
    let parked_mid = session.park().expect("non-terminal sessions park");

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    lot.park(parked_mid);
    for id in 0..(N as u64 - 1) {
        let rec = if id % 2 == 0 {
            ParkedSession::new_wcdma(id, id * 3, id * 100)
        } else {
            ParkedSession::new_ofdm(id, id * 5, id * 100)
        };
        lot.park(rec);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "parking {N} sessions into a preallocated lot must not allocate \
         ({} heap allocations observed)",
        after - before
    );
    assert_eq!(lot.len(), N);

    // At full occupancy the heap footprint per parked terminal is under
    // the reporting budget.
    let per = lot.bytes_per_parked().expect("lot is non-empty");
    assert!(
        per <= HEAP_BYTES_PER_PARKED_BUDGET,
        "bytes/parked-session {per:.1} exceeds the {HEAP_BYTES_PER_PARKED_BUDGET} budget"
    );

    // Popping back out is allocation-free too.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut drained = 0usize;
    while lot.pop_earliest().is_some() {
        drained += 1;
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(drained, N);
    assert_eq!(after - before, 0, "draining the lot must not allocate");
}
