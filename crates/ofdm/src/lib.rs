//! IEEE 802.11a / HiperLAN-2 OFDM substrate and receiver.
//!
//! This crate reproduces the second application of the DATE 2003 paper
//! *"Reconfigurable Signal Processing in Wireless Terminals"*: the OFDM
//! decoder for high-speed wireless LAN (Fig. 8), with the radix-4 FFT-64
//! (Fig. 9) and the runtime reconfiguration scenario between the preamble
//! detector and the demodulator (Fig. 10) mapped onto the XPP array.
//!
//! Layers:
//!
//! * [`params`], [`scrambler`], [`convolutional`], [`interleaver`],
//!   [`modulation`], [`preamble`] — the 802.11a PHY building blocks
//!   (code generation and Viterbi are *dedicated hardware* in the paper's
//!   partitioning),
//! * [`tx`], [`channel`] — the access-point signal source and indoor
//!   channel substituting for live infrastructure,
//! * [`rx`] — the golden receiver with the bit-exact integer kernels,
//! * [`xpp_map`] — the array configurations: FFT-64, down-sampler,
//!   preamble-detection correlator and demodulator.
//!
//! # Example: one frame end to end
//!
//! ```
//! use sdr_ofdm::channel::WlanChannel;
//! use sdr_ofdm::params::rate;
//! use sdr_ofdm::rx::OfdmReceiver;
//! use sdr_ofdm::tx::Transmitter;
//!
//! # fn main() -> Result<(), sdr_ofdm::rx::RxError> {
//! let r = rate(12).expect("12 Mb/s is a standard rate");
//! let bits: Vec<u8> = (0..96).map(|i| (i % 2) as u8).collect();
//! let frame = Transmitter::new(r).transmit(&bits);
//! let samples = WlanChannel::default().run(&frame.samples);
//! let out = OfdmReceiver::new(r).receive(&samples, bits.len())?;
//! assert_eq!(out.bits, bits);
//! # Ok(())
//! # }
//! ```

pub mod channel;
pub mod convolutional;
pub mod interleaver;
pub mod modulation;
pub mod params;
pub mod preamble;
pub mod rx;
pub mod scrambler;
pub mod signal_field;
pub mod tx;
pub mod xpp_map;

pub use params::{rate, Modulation, RateParams, RATES};
pub use rx::{receive_auto, OfdmReceiver, RxError, RxOutput};
pub use tx::{Transmitter, TxFrame};
