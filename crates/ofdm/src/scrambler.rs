//! The 802.11a data scrambler/descrambler (`x⁷ + x⁴ + 1`), and the pilot
//! polarity sequence derived from it.

use sdr_dsp::bits::Lfsr;

/// Length of the scrambler sequence period.
pub const SCRAMBLER_PERIOD: usize = 127;

/// The frame-synchronous data scrambler. Scrambling and descrambling are
/// the same operation (XOR with the sequence).
///
/// # Example
///
/// ```
/// use sdr_ofdm::scrambler::Scrambler;
///
/// let data = vec![1, 0, 1, 1, 0, 0, 1];
/// let scrambled = Scrambler::new(0x5D).scramble(&data);
/// let recovered = Scrambler::new(0x5D).scramble(&scrambled);
/// assert_eq!(recovered, data);
/// ```
#[derive(Debug, Clone)]
pub struct Scrambler {
    lfsr: Lfsr,
}

impl Scrambler {
    /// Creates a scrambler with a 7-bit seed (must be non-zero).
    ///
    /// # Panics
    ///
    /// Panics if the seed is zero or wider than 7 bits.
    pub fn new(seed: u32) -> Self {
        assert!(
            seed != 0 && seed < 128,
            "scrambler seed must be 7 bits, non-zero"
        );
        // Fibonacci form: output/feedback = x⁷ ⊕ x⁴; state bit i holds the
        // value that leaves the register in i steps.
        Scrambler {
            lfsr: Lfsr::new(7, (1 << 3) | 1, seed),
        }
    }

    /// The next sequence bit.
    pub fn next_bit(&mut self) -> u8 {
        // Feedback = s(x⁷) ⊕ s(x⁴) = bit0 ⊕ bit3 in this orientation.
        let b = (self.lfsr.bit(0) ^ self.lfsr.bit(3)) & 1;
        self.lfsr.step();
        b
    }

    /// XORs the sequence onto a bit slice.
    pub fn scramble(mut self, bits: &[u8]) -> Vec<u8> {
        bits.iter().map(|&b| b ^ self.next_bit()).collect()
    }

    /// In-place variant that keeps the scrambler state for streaming.
    pub fn scramble_in_place(&mut self, bits: &mut [u8]) {
        for b in bits {
            *b ^= self.next_bit();
        }
    }
}

/// The 127-element pilot polarity sequence `p₀…p₁₂₆` (±1): the scrambler
/// sequence with an all-ones seed, mapped `0 → +1, 1 → −1`, repeated
/// cyclically over the symbols of a frame (symbol 0 is the SIGNAL symbol in
/// the standard; we index data symbols from 1 like the standard does).
pub fn pilot_polarity() -> [i32; SCRAMBLER_PERIOD] {
    let mut s = Scrambler::new(0x7F);
    let mut p = [0i32; SCRAMBLER_PERIOD];
    for v in &mut p {
        *v = 1 - 2 * s.next_bit() as i32;
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_has_period_127() {
        let mut s = Scrambler::new(0x7F);
        let first: Vec<u8> = (0..SCRAMBLER_PERIOD).map(|_| s.next_bit()).collect();
        let second: Vec<u8> = (0..SCRAMBLER_PERIOD).map(|_| s.next_bit()).collect();
        assert_eq!(first, second);
        // And it is balanced: 64 ones, 63 zeros.
        assert_eq!(first.iter().filter(|&&b| b == 1).count(), 64);
    }

    #[test]
    fn scramble_is_involution() {
        let data: Vec<u8> = (0..200).map(|i| ((i * 5 + 1) % 2) as u8).collect();
        let once = Scrambler::new(0x2A).scramble(&data);
        assert_ne!(once, data);
        let twice = Scrambler::new(0x2A).scramble(&once);
        assert_eq!(twice, data);
    }

    #[test]
    fn pilot_polarity_matches_standard_prefix() {
        // 802.11a Eq. 25: p = {1,1,1,1, -1,-1,-1,1, -1,-1,-1,-1, 1,1,-1,1, …}.
        let p = pilot_polarity();
        assert_eq!(
            &p[..16],
            &[1, 1, 1, 1, -1, -1, -1, 1, -1, -1, -1, -1, 1, 1, -1, 1]
        );
    }

    #[test]
    #[should_panic]
    fn zero_seed_rejected() {
        Scrambler::new(0);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..64).map(|i| (i % 2) as u8).collect();
        let oneshot = Scrambler::new(0x11).scramble(&data);
        let mut streaming = Scrambler::new(0x11);
        let mut buf = data.clone();
        streaming.scramble_in_place(&mut buf[..32]);
        streaming.scramble_in_place(&mut buf[32..]);
        assert_eq!(buf, oneshot);
    }
}
