//! Case configuration and the deterministic generator behind the shim.

/// Per-test configuration (only the case count is modelled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs each test with `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// The real proptest's default case count.
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// FNV-1a over a test name: a stable, platform-independent base seed.
pub fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64: a small, well-mixed 64-bit generator — ample quality for
/// test-input generation, and trivially deterministic per seed.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(1);
        let mut b = TestRng::new(1);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fnv_distinguishes_names() {
        assert_ne!(fnv1a("alpha"), fnv1a("beta"));
    }
}
