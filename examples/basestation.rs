//! Base-station style multi-terminal run: N concurrent terminal sessions
//! (alternating W-CDMA rake and 802.11a OFDM) time-sliced over M worker
//! shards, each shard owning a gang of one or more simulated XPP arrays.
//!
//! Every OFDM terminal exercises the paper's Fig. 10 runtime
//! reconfiguration (detector out, demodulator in) and every W-CDMA
//! terminal runs its descrambler/despreader on cached configurations, so
//! the final metrics show nonzero reconfiguration and cache-hit counts.
//! With more than one array per shard the batching dispatcher groups
//! each round's sessions by kernel and runs the groups on warm members —
//! the `batching` and `arrays` metric lines show it working.
//!
//! Usage:
//! `cargo run --release --example basestation [sessions] [shards] [arrays-per-shard]`
//! (defaults: 64 sessions, 4 shards, 1 array per shard).

use xpp_sdr::engine::{Engine, EngineConfig, Session, SessionState};

fn main() {
    let mut args = std::env::args().skip(1);
    let sessions: u64 = args
        .next()
        .map(|a| a.parse().expect("sessions must be a number"))
        .unwrap_or(64);
    let shards: usize = args
        .next()
        .map(|a| a.parse().expect("shards must be a number"))
        .unwrap_or(4);
    let arrays_per_shard: usize = args
        .next()
        .map(|a| a.parse().expect("arrays-per-shard must be a number"))
        .unwrap_or(1);

    println!(
        "basestation: {sessions} terminal sessions over {shards} shards \
         x {arrays_per_shard} arrays"
    );
    let mut engine = Engine::new(EngineConfig {
        shards,
        arrays_per_shard,
        ..EngineConfig::default()
    });

    let batch: Vec<Session> = (0..sessions)
        .map(|id| {
            if id % 2 == 0 {
                Session::wcdma(id, 0xB5E + id)
            } else {
                Session::ofdm(id, 0x0FD + id)
            }
        })
        .collect();
    let summary = engine.run(batch);

    for (shard, report) in summary.admission.iter().enumerate() {
        println!(
            "shard {shard}: offered utilization {:5.1}%  edf-feasible {}",
            100.0 * report.utilization(),
            report.feasible()
        );
    }
    println!("{}", summary.snapshot);

    println!(
        "done {}  failed {}  shed {}  dead-lettered {}",
        summary.done(),
        summary.failed(),
        summary.shed(),
        summary.dead_lettered()
    );
    for s in &summary.completed {
        match s.state() {
            SessionState::Failed(reason) => {
                eprintln!("session {} ({:?}) failed: {reason}", s.id(), s.standard());
            }
            SessionState::DeadLettered(reason) => {
                eprintln!(
                    "session {} ({:?}) dead-lettered: {reason}",
                    s.id(),
                    s.standard()
                );
            }
            _ => {}
        }
    }
    if summary.failed() > 0 || summary.dead_lettered() > 0 {
        std::process::exit(1);
    }
}
