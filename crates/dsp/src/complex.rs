//! A minimal complex-number type over integer and floating scalars.
//!
//! The standard library has no complex type and external numeric crates are
//! out of scope for this reproduction, so [`Cplx`] provides exactly the
//! operations the receivers need. Integer instantiations (`Cplx<i32>`) use
//! 64-bit intermediates so that 24-bit × 24-bit products cannot overflow —
//! the same headroom discipline the XPP ALU-PAEs provide in hardware.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// A complex number `re + j·im`.
///
/// `Cplx` is deliberately tiny: it implements only the arithmetic used by the
/// receivers, with integer multiplication routed through [`Cplx::<i32>::cmul_shr`]
/// when explicit scaling is required.
///
/// # Example
///
/// ```
/// use sdr_dsp::Cplx;
///
/// let a = Cplx::new(1, 2);
/// let b = Cplx::new(3, -1);
/// assert_eq!(a * b, Cplx::new(5, 5));
/// assert_eq!(a.conj(), Cplx::new(1, -2));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Cplx<T> {
    /// Real part.
    pub re: T,
    /// Imaginary part.
    pub im: T,
}

impl<T: fmt::Debug> fmt::Debug for Cplx<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?}+j{:?})", self.re, self.im)
    }
}

impl<T: fmt::Display> fmt::Display for Cplx<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+j{}", self.re, self.im)
    }
}

impl<T> Cplx<T> {
    /// Creates a complex number from its real and imaginary parts.
    pub const fn new(re: T, im: T) -> Self {
        Cplx { re, im }
    }
}

impl<T: Copy + Neg<Output = T>> Cplx<T> {
    /// Complex conjugate `re - j·im`.
    #[inline]
    pub fn conj(self) -> Self {
        Cplx::new(self.re, -self.im)
    }

    /// Multiplication by `+j` (a quarter-turn), exact for integer scalars.
    #[inline]
    pub fn mul_j(self) -> Self {
        Cplx::new(-self.im, self.re)
    }

    /// Multiplication by `-j`.
    #[inline]
    pub fn mul_neg_j(self) -> Self {
        Cplx::new(self.im, -self.re)
    }
}

impl<T: Copy + Add<Output = T>> Add for Cplx<T> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Cplx::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl<T: Copy + Add<Output = T>> AddAssign for Cplx<T> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl<T: Copy + Sub<Output = T>> Sub for Cplx<T> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Cplx::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl<T: Copy + Sub<Output = T>> SubAssign for Cplx<T> {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl<T: Copy + Neg<Output = T>> Neg for Cplx<T> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Cplx::new(-self.re, -self.im)
    }
}

impl<T> Mul for Cplx<T>
where
    T: Copy + Mul<Output = T> + Add<Output = T> + Sub<Output = T>,
{
    type Output = Self;
    /// Full-precision complex product `(a+jb)(c+jd)`.
    ///
    /// For integer scalars the caller is responsible for headroom; use
    /// [`Cplx::<i32>::cmul_shr`] when a scaling shift is required.
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Cplx::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl<T: Copy + Mul<Output = T> + Add<Output = T> + Sub<Output = T>> Cplx<T> {
    /// Scales both components by a real factor.
    #[inline]
    pub fn scale(self, k: T) -> Self {
        Cplx::new(self.re * k, self.im * k)
    }
}

impl Cplx<f64> {
    /// Zero.
    pub const ZERO: Cplx<f64> = Cplx::new(0.0, 0.0);

    /// Constructs from polar coordinates.
    pub fn from_polar(mag: f64, phase: f64) -> Self {
        Cplx::new(mag * phase.cos(), mag * phase.sin())
    }

    /// Squared magnitude `re² + im²`.
    #[inline]
    pub fn sqmag(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn mag(self) -> f64 {
        self.sqmag().sqrt()
    }

    /// Phase angle in radians, in `(-π, π]`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Full-precision division.
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, rhs: Self) -> Self {
        let d = rhs.sqmag();
        let n = self * rhs.conj();
        Cplx::new(n.re / d, n.im / d)
    }
}

impl Cplx<i32> {
    /// Zero.
    pub const ZERO: Cplx<i32> = Cplx::new(0, 0);

    /// Squared magnitude in 64-bit to avoid overflow.
    #[inline]
    pub fn sqmag(self) -> i64 {
        let re = self.re as i64;
        let im = self.im as i64;
        re * re + im * im
    }

    /// Complex multiply with a final arithmetic right shift (truncating
    /// toward negative infinity), using 64-bit intermediates.
    ///
    /// This mirrors the XPP `MUL`+shift datapath: products are formed at full
    /// width and a configurable slice is extracted. Bit-exactness between the
    /// golden models and the array-mapped netlists rests on this definition.
    #[inline]
    pub fn cmul_shr(self, rhs: Self, shift: u32) -> Self {
        let ar = self.re as i64;
        let ai = self.im as i64;
        let br = rhs.re as i64;
        let bi = rhs.im as i64;
        let re = (ar * br - ai * bi) >> shift;
        let im = (ar * bi + ai * br) >> shift;
        Cplx::new(re as i32, im as i32)
    }

    /// Converts to floating point.
    pub fn to_f64(self) -> Cplx<f64> {
        Cplx::new(self.re as f64, self.im as f64)
    }

    /// Rounds a floating-point complex value to the nearest integer grid
    /// point (ties away from zero).
    pub fn from_f64_rounded(c: Cplx<f64>) -> Self {
        Cplx::new(c.re.round() as i32, c.im.round() as i32)
    }

    /// Arithmetic right shift of both components (truncating).
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn shr(self, shift: u32) -> Self {
        Cplx::new(self.re >> shift, self.im >> shift)
    }

    /// Widens to a 64-bit component type.
    pub fn widen(self) -> Cplx<i64> {
        Cplx::new(self.re as i64, self.im as i64)
    }
}

impl Cplx<i64> {
    /// Zero.
    pub const ZERO: Cplx<i64> = Cplx::new(0, 0);

    /// Squared magnitude. May overflow for components beyond ±2³¹; callers
    /// keep accumulator growth bounded by the spreading factor.
    #[inline]
    pub fn sqmag(self) -> i64 {
        self.re * self.re + self.im * self.im
    }

    /// Narrows to 32-bit components, panicking on overflow in debug builds.
    pub fn narrow(self) -> Cplx<i32> {
        Cplx::new(self.re as i32, self.im as i32)
    }

    /// Arithmetic right shift of both components.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn shr(self, shift: u32) -> Self {
        Cplx::new(self.re >> shift, self.im >> shift)
    }
}

impl From<Cplx<i32>> for Cplx<f64> {
    fn from(c: Cplx<i32>) -> Self {
        c.to_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_neg() {
        let a = Cplx::new(3, 4);
        let b = Cplx::new(-1, 2);
        assert_eq!(a + b, Cplx::new(2, 6));
        assert_eq!(a - b, Cplx::new(4, 2));
        assert_eq!(-a, Cplx::new(-3, -4));
        let mut c = a;
        c += b;
        assert_eq!(c, Cplx::new(2, 6));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn mul_matches_hand_expansion() {
        let a = Cplx::new(2, 3);
        let b = Cplx::new(4, -5);
        // (2+3j)(4-5j) = 8 -10j +12j +15 = 23 + 2j
        assert_eq!(a * b, Cplx::new(23, 2));
    }

    #[test]
    fn conj_and_quarter_turns() {
        let a = Cplx::new(1, 2);
        assert_eq!(a.conj(), Cplx::new(1, -2));
        assert_eq!(a.mul_j(), Cplx::new(-2, 1));
        assert_eq!(a.mul_neg_j(), Cplx::new(2, -1));
        // j * (-j) * a == a
        assert_eq!(a.mul_j().mul_neg_j(), a);
    }

    #[test]
    fn mul_j_equals_mul_by_unit_j() {
        let a = Cplx::new(7, -3);
        assert_eq!(a.mul_j(), a * Cplx::new(0, 1));
        assert_eq!(a.mul_neg_j(), a * Cplx::new(0, -1));
    }

    #[test]
    fn cmul_shr_no_overflow_at_24_bits() {
        let big = Cplx::new((1 << 23) - 1, -(1 << 23));
        let r = big.cmul_shr(big, 23);
        // (a+jb)^2 with a=2^23-1, b=-2^23: re=(a^2-b^2)>>23, im=(2ab)>>23.
        let a = (1i64 << 23) - 1;
        let b = -(1i64 << 23);
        assert_eq!(r.re, ((a * a - b * b) >> 23) as i32);
        assert_eq!(r.im, ((2 * a * b) >> 23) as i32);
    }

    #[test]
    fn cmul_shr_zero_shift_matches_mul() {
        let a = Cplx::new(100, -200);
        let b = Cplx::new(-300, 50);
        assert_eq!(a.cmul_shr(b, 0), a * b);
    }

    #[test]
    fn sqmag_is_nonnegative_and_exact() {
        assert_eq!(Cplx::<i32>::new(3, 4).sqmag(), 25);
        assert_eq!(
            Cplx::<i32>::new(-(1 << 23), 1 << 23).sqmag(),
            2 * (1i64 << 46)
        );
    }

    #[test]
    fn float_polar_roundtrip() {
        let c = Cplx::from_polar(2.0, 0.5);
        assert!((c.mag() - 2.0).abs() < 1e-12);
        assert!((c.arg() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn float_division() {
        let a = Cplx::new(1.0, 1.0);
        let b = Cplx::new(0.0, 1.0);
        let q = a.div(b);
        assert!((q.re - 1.0).abs() < 1e-12 && (q.im + 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_and_debug_nonempty() {
        let c = Cplx::new(1, -2);
        assert!(!format!("{c}").is_empty());
        assert!(!format!("{c:?}").is_empty());
    }

    #[test]
    fn widen_narrow_roundtrip() {
        let c = Cplx::new(-12345, 678);
        assert_eq!(c.widen().narrow(), c);
    }
}
