//! Property-based tests: code-generator invariants and golden/array
//! equivalence over random streams.

use proptest::prelude::*;
use sdr_dsp::Cplx;
use sdr_wcdma::ovsf::{correlate, ovsf};
use sdr_wcdma::rake::finger::{correct, descramble, despread};
use sdr_wcdma::scrambling::ScramblingCode;
use sdr_wcdma::symbols::{qpsk_demap, qpsk_map_bits, sttd_decode, sttd_encode};
use sdr_wcdma::xpp_map::{ArrayDescrambler, ArrayDespreader};

fn arb_samples(n: usize) -> impl Strategy<Value = Vec<Cplx<i32>>> {
    proptest::collection::vec((-2048i32..=2047, -2048i32..=2047), n..=n)
        .prop_map(|v| v.into_iter().map(|(re, im)| Cplx::new(re, im)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ovsf_codes_orthogonal(sf_pow in 2u32..=9, k1 in 0usize..512, k2 in 0usize..512) {
        let sf = 1usize << sf_pow;
        let (k1, k2) = (k1 % sf, k2 % sf);
        let c = correlate(&ovsf(sf, k1), &ovsf(sf, k2));
        if k1 == k2 {
            prop_assert_eq!(c, sf as i32);
        } else {
            prop_assert_eq!(c, 0);
        }
    }

    #[test]
    fn scrambling_descrambling_identity(code_num in 0u32..1000, d_re in -1000i32..1000, d_im in -1000i32..1000, n in 1usize..64) {
        // d·S·conj(S) = 2d for every chip.
        let code = ScramblingCode::downlink(code_num);
        let d = Cplx::new(d_re, d_im);
        let rx: Vec<Cplx<i32>> = (0..n).map(|i| d * code.chip(i)).collect();
        let y = descramble(&rx, &code, 0, 0, n);
        prop_assert!(y.iter().all(|&v| v == d.scale(2)));
    }

    #[test]
    fn despread_linear_in_amplitude(sf_pow in 2u32..=7, k in 0usize..16, amp in 1i32..16) {
        let sf = 1usize << sf_pow;
        let k = k % sf;
        let code = ovsf(sf, k);
        let base: Vec<Cplx<i32>> = code.iter().map(|&c| Cplx::new(31 * c, -17 * c)).collect();
        let scaled: Vec<Cplx<i32>> = base.iter().map(|v| v.scale(amp)).collect();
        let y1 = despread(&base, sf, k);
        let y2 = despread(&scaled, sf, k);
        prop_assert_eq!(y2[0], y1[0].scale(amp));
    }

    #[test]
    fn qpsk_roundtrip_random(bits in proptest::collection::vec(0u8..=1, 2..64)) {
        let bits = if bits.len() % 2 == 0 { bits } else { bits[..bits.len()-1].to_vec() };
        let syms = qpsk_map_bits(&bits);
        let mut back = Vec::new();
        for s in syms {
            let (b0, b1) = qpsk_demap(s.widen());
            back.push(b0);
            back.push(b1);
        }
        prop_assert_eq!(back, bits);
    }

    #[test]
    fn sttd_roundtrip_random_channel(
        s_values in proptest::collection::vec((-1i32..=1, -1i32..=1), 2..10),
        h in ((-100i32..100), (-100i32..100), (-100i32..100), (-100i32..100)),
    ) {
        // Random QPSK-ish symbols through a random 2-antenna channel decode
        // to a positive multiple of the originals.
        let (h1r, h1i, h2r, h2i) = h;
        let h1 = Cplx::new(h1r as f64 / 50.0, h1i as f64 / 50.0);
        let h2 = Cplx::new(h2r as f64 / 50.0, h2i as f64 / 50.0);
        prop_assume!(h1.sqmag() + h2.sqmag() > 0.01);
        let mut syms: Vec<Cplx<i32>> = s_values
            .iter()
            .map(|&(r, i)| Cplx::new(if r >= 0 { 1 } else { -1 }, if i >= 0 { 1 } else { -1 }))
            .collect();
        if syms.len() % 2 == 1 { syms.pop(); }
        let (a1, a2) = sttd_encode(&syms);
        let gain = h1.sqmag() + h2.sqmag();
        for p in 0..syms.len() / 2 {
            let r1 = h1 * a1[2 * p].to_f64() + h2 * a2[2 * p].to_f64();
            let r2 = h1 * a1[2 * p + 1].to_f64() + h2 * a2[2 * p + 1].to_f64();
            let (d1, d2) = sttd_decode(r1, r2, h1, h2);
            let s1 = syms[2 * p].to_f64();
            let s2 = syms[2 * p + 1].to_f64();
            prop_assert!((d1.re - gain * s1.re).abs() < 1e-9);
            prop_assert!((d1.im - gain * s1.im).abs() < 1e-9);
            prop_assert!((d2.re - gain * s2.re).abs() < 1e-9);
            prop_assert!((d2.im - gain * s2.im).abs() < 1e-9);
        }
    }

    #[test]
    fn correct_is_linear_in_symbol(
        s in (-4000i32..4000, -4000i32..4000),
        w in (-1023i32..=1023, -1023i32..=1023),
    ) {
        let s = Cplx::new(s.0, s.1);
        let w = Cplx::new(w.0, w.1);
        // Doubling the weight scale before shifting equals shifting one less.
        let once = correct(&[s], w)[0];
        let expected = s.widen() * w.conj().widen();
        prop_assert_eq!(once, expected.shr(9).narrow());
    }
}

// Array-vs-golden equivalence over random data (fewer cases: each spins up a
// full array simulation).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn array_descrambler_matches_golden(code_num in 0u32..256, samples in arb_samples(64)) {
        let code = ScramblingCode::downlink(code_num);
        let mut hw = ArrayDescrambler::new().unwrap();
        let out = hw.process(&samples, &code, 0, 0, samples.len()).unwrap();
        prop_assert_eq!(out, descramble(&samples, &code, 0, 0, samples.len()));
    }

    #[test]
    fn array_despreader_matches_golden(sf_pow in 2u32..=6, samples in arb_samples(256)) {
        let sf = 1usize << sf_pow;
        let k = sf / 2;
        let mut hw = ArrayDespreader::new(sf, k).unwrap();
        let out = hw.process(&samples).unwrap();
        prop_assert_eq!(out, despread(&samples, sf, k));
    }
}
