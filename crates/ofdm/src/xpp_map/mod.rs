//! The OFDM decoder's array configurations (paper Figs. 9 and 10).

pub mod fft64;
pub mod frontend;

pub use fft64::{fft64_netlist, ArrayFft64};
pub use frontend::{
    demodulator_netlist, downsample2, downsampler_netlist, frontend_netlist,
    preamble_detector_netlist, ReconfigEvent, ReconfigurableFrontend,
};

use sdr_dsp::Cplx;
use xpp_array::Word;

/// Splits a complex integer stream into parallel I and Q word streams.
pub(crate) fn split_iq(samples: &[Cplx<i32>]) -> (Vec<Word>, Vec<Word>) {
    (
        samples.iter().map(|c| Word::new(c.re)).collect(),
        samples.iter().map(|c| Word::new(c.im)).collect(),
    )
}

/// Zips parallel I and Q word streams back into complex samples.
pub(crate) fn zip_iq(i: &[Word], q: &[Word]) -> Vec<Cplx<i32>> {
    assert_eq!(i.len(), q.len(), "I/Q stream length mismatch");
    i.iter()
        .zip(q)
        .map(|(a, b)| Cplx::new(a.value(), b.value()))
        .collect()
}
