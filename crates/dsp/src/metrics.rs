//! Measurement helpers for the experiments: BER, SNR and EVM.

use crate::complex::Cplx;

/// Accumulates bit-error statistics across many blocks.
///
/// # Example
///
/// ```
/// use sdr_dsp::metrics::BerCounter;
///
/// let mut ber = BerCounter::new();
/// ber.update(&[0, 1, 1, 0], &[0, 1, 0, 0]);
/// assert_eq!(ber.errors(), 1);
/// assert_eq!(ber.total(), 4);
/// assert!((ber.ber() - 0.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BerCounter {
    errors: u64,
    total: u64,
}

impl BerCounter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compares transmitted and received bits and accumulates.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn update(&mut self, tx: &[u8], rx: &[u8]) {
        assert_eq!(tx.len(), rx.len(), "ber: length mismatch");
        self.errors += tx.iter().zip(rx).filter(|(a, b)| a != b).count() as u64;
        self.total += tx.len() as u64;
    }

    /// Number of bit errors observed.
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// Number of bits compared.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The bit error rate (0 if nothing was counted).
    pub fn ber(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.errors as f64 / self.total as f64
        }
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: BerCounter) {
        self.errors += other.errors;
        self.total += other.total;
    }
}

/// Signal-to-noise ratio in dB between a reference and a measured stream:
/// `10·log10(Σ|ref|² / Σ|ref − meas|²)`.
///
/// Returns `f64::INFINITY` when the streams are identical.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn snr_db(reference: &[Cplx<f64>], measured: &[Cplx<f64>]) -> f64 {
    assert_eq!(reference.len(), measured.len());
    assert!(!reference.is_empty());
    let sig: f64 = reference.iter().map(|v| v.sqmag()).sum();
    let err: f64 = reference
        .iter()
        .zip(measured)
        .map(|(r, m)| (*r - *m).sqmag())
        .sum();
    if err == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (sig / err).log10()
    }
}

/// Error-vector magnitude (RMS, as a fraction of RMS reference magnitude).
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn evm_rms(reference: &[Cplx<f64>], measured: &[Cplx<f64>]) -> f64 {
    assert_eq!(reference.len(), measured.len());
    assert!(!reference.is_empty());
    let sig: f64 = reference.iter().map(|v| v.sqmag()).sum();
    let err: f64 = reference
        .iter()
        .zip(measured)
        .map(|(r, m)| (*r - *m).sqmag())
        .sum();
    (err / sig).sqrt()
}

/// Mean squared error between integer complex streams, in 64-bit.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn mse_i32(a: &[Cplx<i32>], b: &[Cplx<i32>]) -> f64 {
    assert_eq!(a.len(), b.len());
    assert!(!a.is_empty());
    let sum: i64 = a.iter().zip(b).map(|(x, y)| (*x - *y).sqmag()).sum();
    sum as f64 / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ber_counts_and_merges() {
        let mut a = BerCounter::new();
        a.update(&[0, 0, 1], &[1, 0, 1]);
        let mut b = BerCounter::new();
        b.update(&[1, 1], &[0, 0]);
        a.merge(b);
        assert_eq!(a.errors(), 3);
        assert_eq!(a.total(), 5);
    }

    #[test]
    fn ber_empty_is_zero() {
        assert_eq!(BerCounter::new().ber(), 0.0);
    }

    #[test]
    #[should_panic]
    fn ber_rejects_mismatched_lengths() {
        BerCounter::new().update(&[0], &[0, 1]);
    }

    #[test]
    fn snr_identical_is_infinite() {
        let x = vec![Cplx::new(1.0, -1.0); 8];
        assert!(snr_db(&x, &x).is_infinite());
    }

    #[test]
    fn snr_known_value() {
        let r = vec![Cplx::new(1.0, 0.0); 10];
        let m: Vec<_> = r.iter().map(|v| *v + Cplx::new(0.1, 0.0)).collect();
        let snr = snr_db(&r, &m);
        assert!((snr - 20.0).abs() < 1e-9, "snr {snr}");
    }

    #[test]
    fn evm_scales_with_error() {
        let r = vec![Cplx::new(2.0, 0.0); 4];
        let m: Vec<_> = r.iter().map(|v| *v + Cplx::new(0.0, 0.2)).collect();
        assert!((evm_rms(&r, &m) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn mse_zero_for_identical() {
        let x = vec![Cplx::new(5, 5); 3];
        assert_eq!(mse_i32(&x, &x), 0.0);
        let y = vec![Cplx::new(5, 6); 3];
        assert_eq!(mse_i32(&x, &y), 1.0);
    }
}
