//! Sharded worker pool: each worker thread owns a *gang* of simulated
//! XPP arrays.
//!
//! Terminal sessions are submitted to a shard chosen by session id
//! (sticky affinity, so a terminal keeps hitting the same shard's
//! configuration residency). Each shard has a *bounded* queue: a full
//! shard rejects the submission with [`SubmitError::WouldBlock`] instead
//! of buffering unboundedly, which is the engine's backpressure signal.
//! Workers drain their queue into a deadline-ordered heap and always run
//! the most urgent session next (EDF dispatch, the runtime counterpart of
//! [`sdr_core::scheduler::schedule_edf`]).
//!
//! # Batched gang dispatch
//!
//! With [`PoolConfig::arrays_per_shard`] > 1 the shard thread owns a gang
//! of [`WorkerArray`]s and dispatches in *rounds*: it drains everything
//! queued right now (the dispatch window, bounded by the queue depth),
//! groups the window by each session's next [`KernelSpec`]
//! ([`Session::next_kernel`]), and runs each group back-to-back on an
//! array where that kernel is already resident — one configuration load
//! serves the whole batch, which is the paper's steady-state premise: a
//! configuration loads once and then streams data while the bus idles.
//! Routing decisions come from a residency map rebuilt each round from
//! [`ConfigManager`] introspection (so it is self-healing across worker
//! rebuilds), warm batches pin to their resident member, cold kernels
//! fall to the least-busy member, and a hot kernel is *replicated* onto
//! another member when its home has pulled more than
//! [`PoolConfig::replicate_after_cycles`] array cycles ahead of the
//! idlest member — up to `gang − 1` replicas, always leaving one array
//! clear so a newly arriving kernel never has to evict the hot set.
//!
//! EDF ordering holds *within* a batch (groups are split into contiguous
//! most-urgent-first chunks and chunks run in order), and deadline
//! inversion *across* batches is bounded by the dispatch window: a
//! session's step can be delayed by at most the other sessions drained in
//! the same round, never by later arrivals.

use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TryRecvError, TrySendError};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

#[cfg(feature = "faults")]
use xpp_array::fault::{FaultInjector, FaultPlan};
use xpp_array::{Array, ConfigId, Error as XppError, Result as XppResult};

use crate::config_manager::{ConfigManager, ConfigStore, KernelSpec};
use crate::metrics::Metrics;
use crate::session::Session;

/// Supervision and recovery tuning shared by a pool's workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Kernel activation/run attempts before a fault error is surfaced to
    /// the session (each retry reloads the configuration from the shared
    /// [`ConfigStore`]). Clamped to at least 1.
    pub max_kernel_attempts: u32,
    /// Times a crashed session is re-dispatched to a restarted shard
    /// before it is dead-lettered.
    pub max_session_attempts: u32,
    /// Base delay between re-dispatches of a crashed session; doubles per
    /// attempt (exponential backoff).
    pub backoff: Duration,
    /// Extra array cycles granted to a configuration that has fired
    /// nothing before the watchdog declares it wedged and forces an
    /// unload + reload.
    pub watchdog_budget: u64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_kernel_attempts: 3,
            max_session_attempts: 3,
            backoff: Duration::from_millis(1),
            watchdog_budget: 2_000,
        }
    }
}

/// A worker's execution context: its private array plus the
/// [`ConfigManager`] driving that array's configuration lifecycle.
///
/// `activate` is the only way sessions load configurations, so every load
/// goes through the manager's tiers:
///
/// 1. **resident active** — the configuration is running on the array: free;
/// 2. **resident loading** — it was [`prefetch`](WorkerArray::prefetch)ed
///    earlier: pay only the residual bus cycles;
/// 3. **stored** — the compiled config is in the process-wide
///    [`ConfigStore`]: pay only the serial configuration bus;
/// 4. **cold** — build, compile and store it, then load.
///
/// When placement fails, the least recently used resident configuration
/// is unloaded and the load retried — the paper's Fig. 10 resource
/// recycling, applied automatically.
#[derive(Debug)]
pub struct WorkerArray {
    array: Array,
    cm: ConfigManager,
    metrics: Arc<Metrics>,
    policy: RecoveryPolicy,
    retain_swap_source: bool,
    prefetch_enabled: bool,
}

impl WorkerArray {
    /// Creates a worker context around a fresh XPP-64A with its own
    /// private store (tests, benches, single-worker use).
    pub fn new(store_capacity: usize, metrics: Arc<Metrics>) -> Self {
        let store = Arc::new(ConfigStore::new(store_capacity));
        Self::with_store(store, metrics)
    }

    /// Creates a worker context drawing compiled configs from a shared
    /// process-wide store (what [`ShardPool`] workers use).
    pub fn with_store(store: Arc<ConfigStore>, metrics: Arc<Metrics>) -> Self {
        Self::with_policy(store, metrics, RecoveryPolicy::default())
    }

    /// Like [`with_store`](WorkerArray::with_store) with an explicit
    /// recovery policy (retry counts, watchdog budget).
    pub fn with_policy(
        store: Arc<ConfigStore>,
        metrics: Arc<Metrics>,
        policy: RecoveryPolicy,
    ) -> Self {
        WorkerArray {
            array: Array::xpp64a(),
            cm: ConfigManager::new(store, Arc::clone(&metrics)),
            metrics,
            policy,
            retain_swap_source: false,
            prefetch_enabled: true,
        }
    }

    /// Enables or disables speculative prefetch. On a single array the
    /// prefetch overlaps the next kernel's bus load with the current
    /// kernel's run (Fig. 10); on a gang member the next kernel is
    /// already resident on *another* member the dispatcher will route to,
    /// so a local prefetch only duplicates the configuration across the
    /// gang — bus words the batching exists to save. Batched dispatch
    /// disables it on every member.
    pub fn set_prefetch_enabled(&mut self, enabled: bool) {
        self.prefetch_enabled = enabled;
    }

    /// Switches [`swap`](WorkerArray::swap) between the Fig. 10 policy
    /// (unload the source to recycle its resources — the right call when
    /// one terminal owns the whole array, the seed behaviour and the
    /// default) and the *gang* policy (leave the source resident so the
    /// next batch of its kernel activates for free; placement pressure
    /// still recycles it through the manager's LRU eviction when the
    /// array genuinely runs out of room). Batched dispatch sets this on
    /// every gang member: residency is exactly what batching amortises.
    pub fn set_retain_swap_source(&mut self, retain: bool) {
        self.retain_swap_source = retain;
    }

    /// Attaches a shared fault injector to this worker's array. The
    /// injector's load ordinal is global across every array it is attached
    /// to, so a plan keeps advancing through worker restarts.
    #[cfg(feature = "faults")]
    pub fn attach_fault_injector(&mut self, injector: Arc<FaultInjector>) {
        self.array.attach_fault_injector(injector);
    }

    /// The underlying array, for driving I/O on an activated configuration.
    pub fn array_mut(&mut self) -> &mut Array {
        &mut self.array
    }

    /// Read-only view of the array (stats, placements).
    pub fn array(&self) -> &Array {
        &self.array
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The worker's configuration manager (lifecycle state, store access).
    pub fn config_manager(&self) -> &ConfigManager {
        &self.cm
    }

    /// The compiled-config store this worker draws from.
    pub fn store(&self) -> &Arc<ConfigStore> {
        self.cm.store()
    }

    /// Whether the kernel's configuration is currently on the array.
    pub fn is_resident(&self, name: &str) -> bool {
        self.cm.is_resident(name)
    }

    /// Re-marks every resident configuration's fire counter as seen, so
    /// residents that do no work before the next placement squeeze are
    /// quiescent and spillable by a prefetch. Dispatchers call this after
    /// each batch (or session step).
    pub fn refresh_activity(&mut self) {
        self.cm.refresh_activity(&self.array);
    }

    /// Ensures the kernel's configuration is loaded and running, and
    /// returns its handle. See the type docs for the activation tiers.
    ///
    /// Loads that fail with an injected fault (corrupted or aborted bus
    /// stream) are retried up to the policy's `max_kernel_attempts`: the
    /// faulted residue was already unloaded by the manager, so each retry
    /// is a clean reload from the shared store.
    ///
    /// # Errors
    ///
    /// Returns an error if placement fails even after unloading every
    /// other resident configuration, or a fault error once the retry
    /// budget is exhausted.
    pub fn activate(&mut self, spec: impl Into<KernelSpec>) -> XppResult<ConfigId> {
        let spec = spec.into();
        let attempts = self.policy.max_kernel_attempts.max(1);
        let mut attempt = 0;
        loop {
            attempt += 1;
            match self.cm.activate(&mut self.array, &spec) {
                Err(e) if e.is_fault() && attempt < attempts => {
                    // Detection was counted where the load failed; the
                    // reload we are about to do is the matching recovery.
                    Metrics::incr(&self.metrics.recoveries);
                }
                other => return other,
            }
        }
    }

    /// Runs a kernel body under the zero-fire watchdog: activates the
    /// configuration, runs `body`, and if the body times out without the
    /// configuration having fired a single object, grants it one extra
    /// `watchdog_budget` of cycles — still silent means the load is wedged
    /// (e.g. an injected stall), so the configuration is forcibly unloaded
    /// and the whole attempt retried from the store.
    ///
    /// # Errors
    ///
    /// Propagates the body's error, or [`XppError::ConfigWedged`] once a
    /// wedged configuration has exhausted the kernel retry budget.
    pub fn run_kernel<T>(
        &mut self,
        spec: impl Into<KernelSpec>,
        mut body: impl FnMut(&mut WorkerArray, ConfigId) -> XppResult<T>,
    ) -> XppResult<T> {
        let spec = spec.into();
        let attempts = self.policy.max_kernel_attempts.max(1);
        let mut attempt = 0;
        loop {
            attempt += 1;
            let cfg = self.activate(spec)?;
            let fires_before = self.array.config_fire_count(cfg);
            match body(self, cfg) {
                Err(e @ XppError::Timeout { .. }) => {
                    if !self.watchdog_wedged(cfg, fires_before) {
                        return Err(e);
                    }
                    Metrics::incr(&self.metrics.watchdog_kicks);
                    // Force the zombie off the array. Disposal surfaces
                    // the injected stall record (detected + recovered);
                    // the next attempt reloads from the store.
                    self.cm.deactivate(&mut self.array, &spec.config_name())?;
                    if attempt >= attempts {
                        return Err(XppError::ConfigWedged {
                            config: cfg.index(),
                        });
                    }
                }
                other => return other,
            }
        }
    }

    /// After a timeout: has the configuration fired anything, even when
    /// granted `watchdog_budget` extra cycles? No fires at all means the
    /// load completed but the objects never came alive.
    fn watchdog_wedged(&mut self, cfg: ConfigId, fires_before: u64) -> bool {
        if self.array.config_fire_count(cfg) != fires_before {
            return false;
        }
        self.array.run(self.policy.watchdog_budget);
        self.array.config_fire_count(cfg) == fires_before
    }

    /// Speculatively starts loading the kernel's configuration without
    /// waiting for it, so a later [`activate`](WorkerArray::activate) (or
    /// [`swap`](WorkerArray::swap)) pays only residual activation.
    /// Returns whether a prefetch was issued (`false` when already
    /// resident, when prefetch is
    /// [disabled](WorkerArray::set_prefetch_enabled), or when the array
    /// is too full even after spilling quiescent residents — a prefetch
    /// may evict residents that have fired nothing since their last
    /// batch, never the active one).
    ///
    /// # Errors
    ///
    /// Propagates array errors other than placement failure.
    pub fn prefetch(&mut self, spec: impl Into<KernelSpec>) -> XppResult<bool> {
        if !self.prefetch_enabled {
            return Ok(false);
        }
        self.cm.prefetch(&mut self.array, &spec.into())
    }

    /// Unloads the kernel's configuration if resident; returns whether it
    /// was.
    ///
    /// # Errors
    ///
    /// Returns an error if the array rejects the unload.
    pub fn deactivate(&mut self, spec: impl Into<KernelSpec>) -> XppResult<bool> {
        let name = spec.into().config_name();
        self.cm.deactivate(&mut self.array, &name)
    }

    /// The Fig. 10 swap: unloads `from` (if resident) and activates `to`
    /// in the freed resources. Counted as a runtime reconfiguration when
    /// an unload actually happened; the array cycles the session waited
    /// on the swap are recorded in `reconfig_cycles` (~0 when `to` was
    /// prefetched).
    ///
    /// Under [`set_retain_swap_source`](WorkerArray::set_retain_swap_source)
    /// the unload is skipped: both kernels stay resident and only
    /// placement pressure recycles the source.
    ///
    /// # Errors
    ///
    /// Returns an error if the unload or the activation fails.
    pub fn swap(
        &mut self,
        from: impl Into<KernelSpec>,
        to: impl Into<KernelSpec>,
    ) -> XppResult<ConfigId> {
        let cycles_before = self.array.stats().cycles;
        if !self.retain_swap_source {
            let unloaded = self.deactivate(from)?;
            if unloaded {
                Metrics::incr(&self.metrics.reconfigurations);
            }
        }
        let id = self.activate(to)?;
        Metrics::add(
            &self.metrics.reconfig_cycles,
            self.array.stats().cycles - cycles_before,
        );
        Ok(id)
    }
}

/// Pool sizing and behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolConfig {
    /// Number of worker threads (each owning one array gang).
    pub shards: usize,
    /// Arrays per shard gang. `1` (the default) keeps the seed behaviour:
    /// one array per shard, one session stepped per dispatch. Larger
    /// gangs enable batched dispatch: sessions are grouped by kernel and
    /// each group runs back-to-back on an array where its configuration
    /// is already resident.
    pub arrays_per_shard: usize,
    /// Gang-routing saturation threshold, in array cycles: a hot kernel
    /// is replicated onto an additional member once the busiest of its
    /// warm members is this many cycles ahead of the idlest member.
    /// Smaller values spread hot kernels sooner (more parallel headroom,
    /// more configuration-bus traffic); larger values amortise harder.
    pub replicate_after_cycles: u64,
    /// Bounded depth of each shard's submission queue.
    pub queue_depth: usize,
    /// Compiled configurations the process-wide store may hold (shared by
    /// every worker).
    pub cache_capacity: usize,
    /// Start every worker paused (deterministic backpressure tests);
    /// resume with [`ShardPool::resume`].
    pub start_paused: bool,
    /// Supervision tuning: kernel/session retry budgets, crash backoff,
    /// watchdog cycle grant.
    pub recovery: RecoveryPolicy,
    /// Deterministic fault plan driven by one pool-wide injector shared
    /// across all shards (its load ordinal spans worker restarts). `None`
    /// injects nothing.
    #[cfg(feature = "faults")]
    pub fault_plan: Option<FaultPlan>,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            shards: 4,
            arrays_per_shard: 1,
            replicate_after_cycles: 2_000,
            queue_depth: 32,
            cache_capacity: 8,
            start_paused: false,
            recovery: RecoveryPolicy::default(),
            #[cfg(feature = "faults")]
            fault_plan: None,
        }
    }
}

/// Why a submission was not accepted. The session is handed back so the
/// caller can retry or reroute it.
#[derive(Debug)]
pub enum SubmitError {
    /// The target shard's queue is full — backpressure.
    WouldBlock(Session),
    /// The pool has been shut down.
    Shutdown(Session),
}

impl SubmitError {
    /// Recovers the rejected session regardless of the rejection reason.
    pub fn into_session(self) -> Session {
        match self {
            SubmitError::WouldBlock(s) | SubmitError::Shutdown(s) => s,
        }
    }
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::WouldBlock(s) => {
                write!(f, "shard queue full for session {}", s.id())
            }
            SubmitError::Shutdown(s) => {
                write!(f, "pool shut down; session {} rejected", s.id())
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Heap entry ordering sessions by (deadline, arrival) — earliest first.
struct QueuedSession {
    deadline: u64,
    seq: u64,
    session: Session,
}

impl QueuedSession {
    fn key(&self) -> (u64, u64) {
        (self.deadline, self.seq)
    }
}

impl PartialEq for QueuedSession {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for QueuedSession {}

impl PartialOrd for QueuedSession {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueuedSession {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest deadline.
        other.key().cmp(&self.key())
    }
}

#[derive(Debug, Default)]
struct PauseGate {
    paused: Mutex<bool>,
    unpaused: Condvar,
}

impl PauseGate {
    // A poisoned gate only means some thread panicked while holding the
    // lock; the bool inside is always valid, so recover it rather than
    // cascading the panic into pause/resume callers.
    fn set(&self, paused: bool) {
        *self.paused.lock().unwrap_or_else(PoisonError::into_inner) = paused;
        self.unpaused.notify_all();
    }

    fn wait_ready(&self) {
        let mut guard = self.paused.lock().unwrap_or_else(PoisonError::into_inner);
        while *guard {
            guard = self
                .unpaused
                .wait(guard)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

struct ShardHandle {
    queue: Option<SyncSender<Session>>,
    depth: Arc<AtomicU64>,
    pause: Arc<PauseGate>,
    worker: Option<JoinHandle<()>>,
}

/// The sharded worker pool.
pub struct ShardPool {
    shards: Vec<ShardHandle>,
    results: Receiver<Session>,
    metrics: Arc<Metrics>,
    queue_depth_limit: usize,
}

impl ShardPool {
    /// Spawns `config.shards` workers, each owning a gang of
    /// `config.arrays_per_shard` arrays over one shared compiled-config
    /// store.
    ///
    /// With a fault plan, the pool-wide injector's fire counters are
    /// folded into the registry by a [`Metrics::register_sync`] hook, so
    /// `faults_injected` is always current in any snapshot or report — no
    /// manual sync call.
    ///
    /// # Panics
    ///
    /// Panics if `shards`, `arrays_per_shard` or `queue_depth` is zero.
    pub fn new(config: PoolConfig, metrics: Arc<Metrics>) -> Self {
        assert!(config.shards > 0, "pool needs at least one shard");
        assert!(
            config.arrays_per_shard > 0,
            "each shard needs at least one array"
        );
        assert!(config.queue_depth > 0, "queue depth must be positive");
        let (results_tx, results) = mpsc::channel();
        // One compiled-config store for the whole pool: a kernel is built
        // and placed once per process, whichever shard first needs it.
        let store = Arc::new(ConfigStore::new(config.cache_capacity));
        #[cfg(feature = "faults")]
        let injector = config
            .fault_plan
            .clone()
            .map(|plan| Arc::new(FaultInjector::new(plan)));
        #[cfg(feature = "faults")]
        if let Some(inj) = &injector {
            let inj = Arc::clone(inj);
            metrics.register_sync(move |m| {
                Metrics::raise_to(&m.faults_injected, inj.injected_total());
            });
        }
        let shards = (0..config.shards)
            .map(|_| {
                let (tx, rx) = mpsc::sync_channel::<Session>(config.queue_depth);
                let depth = Arc::new(AtomicU64::new(0));
                let pause = Arc::new(PauseGate::default());
                pause.set(config.start_paused);
                let seed = WorkerSeed {
                    results: results_tx.clone(),
                    depth: Arc::clone(&depth),
                    pause: Arc::clone(&pause),
                    metrics: Arc::clone(&metrics),
                    store: Arc::clone(&store),
                    policy: config.recovery,
                    gang: config.arrays_per_shard,
                    replicate_after_cycles: config.replicate_after_cycles,
                    #[cfg(feature = "faults")]
                    injector: injector.clone(),
                };
                let worker = std::thread::spawn(move || worker_loop(rx, seed));
                ShardHandle {
                    queue: Some(tx),
                    depth,
                    pause,
                    worker: Some(worker),
                }
            })
            .collect();
        ShardPool {
            shards,
            results,
            metrics,
            queue_depth_limit: config.queue_depth,
        }
    }

    /// Number of worker shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a session maps to (sticky affinity by id).
    pub fn shard_of(&self, session: &Session) -> usize {
        (session.id() % self.shards.len() as u64) as usize
    }

    /// Submits a session to its shard without blocking.
    ///
    /// # Errors
    ///
    /// [`SubmitError::WouldBlock`] hands the session back when the shard
    /// queue is full; [`SubmitError::Shutdown`] when the pool is closed.
    // The error variants carry the rejected `Session` back to the caller by
    // design, so the Err side is as large as a session.
    #[allow(clippy::result_large_err)]
    pub fn submit(&self, session: Session) -> Result<usize, SubmitError> {
        let shard = self.shard_of(&session);
        let handle = &self.shards[shard];
        let Some(queue) = handle.queue.as_ref() else {
            return Err(SubmitError::Shutdown(session));
        };
        // Count before sending: the worker decrements on receive, and the
        // receive may land before a post-send increment would.
        let depth = handle.depth.fetch_add(1, Ordering::Relaxed) + 1;
        match queue.try_send(session) {
            Ok(()) => {
                Metrics::raise_to(&self.metrics.queue_high_water, depth);
                Ok(shard)
            }
            Err(TrySendError::Full(s)) => {
                handle.depth.fetch_sub(1, Ordering::Relaxed);
                Metrics::incr(&self.metrics.jobs_rejected);
                Err(SubmitError::WouldBlock(s))
            }
            Err(TrySendError::Disconnected(s)) => {
                handle.depth.fetch_sub(1, Ordering::Relaxed);
                Err(SubmitError::Shutdown(s))
            }
        }
    }

    /// Blocks for the next session a worker finished stepping. Returns
    /// `None` only after shutdown, once every worker has exited.
    pub fn recv(&self) -> Option<Session> {
        self.results.recv().ok()
    }

    /// Non-blocking receive: the next finished session if one is already
    /// waiting, `None` otherwise. The async front-end's completion
    /// reactor drains with this so the driving thread never blocks while
    /// it still has runnable work.
    pub fn try_recv(&self) -> Option<Session> {
        self.results.try_recv().ok()
    }

    /// Blocks up to `timeout` for a finished session. `None` on timeout
    /// or after shutdown.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Session> {
        self.results.recv_timeout(timeout).ok()
    }

    /// Total submission capacity across every shard queue — the bound the
    /// front-end's completion reactor enforces on in-flight sessions.
    pub fn queue_capacity(&self) -> usize {
        self.shards.len() * self.queue_depth_limit
    }

    /// The shared metrics registry every worker reports into.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Pauses a shard: its worker finishes the current job, then idles.
    pub fn pause(&self, shard: usize) {
        self.shards[shard].pause.set(true);
    }

    /// Resumes a paused shard.
    pub fn resume(&self, shard: usize) {
        self.shards[shard].pause.set(false);
    }

    /// Current queued depth of a shard (approximate under concurrency).
    pub fn queue_depth(&self, shard: usize) -> u64 {
        self.shards[shard].depth.load(Ordering::Relaxed)
    }

    /// Closes the pool: stops accepting work, lets every worker drain its
    /// queue (each in-flight session is stepped once more), joins the
    /// workers, and returns the sessions that were still in flight.
    pub fn shutdown(mut self) -> Vec<Session> {
        self.close_and_join();
        let mut leftover = Vec::new();
        while let Ok(s) = self.results.try_recv() {
            leftover.push(s);
        }
        leftover
    }

    fn close_and_join(&mut self) {
        for shard in &mut self.shards {
            shard.queue = None; // disconnects the worker's receiver
            shard.pause.set(false); // a paused worker must wake to drain
        }
        for shard in &mut self.shards {
            if let Some(worker) = shard.worker.take() {
                // Supervised join: session panics are caught inside the
                // loop, so an Err here is a defect in the loop itself —
                // shutdown must still proceed shard by shard rather than
                // cascade the panic out of drop.
                let _ = worker.join();
            }
        }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

/// Everything needed to (re)build a shard's worker context — kept by the
/// worker thread itself so it can replace a crashed [`WorkerArray`]
/// without round-tripping through the pool.
struct WorkerSeed {
    results: mpsc::Sender<Session>,
    depth: Arc<AtomicU64>,
    pause: Arc<PauseGate>,
    metrics: Arc<Metrics>,
    store: Arc<ConfigStore>,
    policy: RecoveryPolicy,
    gang: usize,
    replicate_after_cycles: u64,
    #[cfg(feature = "faults")]
    injector: Option<Arc<FaultInjector>>,
}

impl WorkerSeed {
    fn fresh_worker(&self) -> WorkerArray {
        let mut worker = WorkerArray::with_policy(
            Arc::clone(&self.store),
            Arc::clone(&self.metrics),
            self.policy,
        );
        // Gang members keep swap sources resident: the batching
        // dispatcher routes each kernel's stream back to its warm member,
        // so recycling a kernel's resources per session (the single-array
        // Fig. 10 policy) would undo exactly the residency the gang
        // amortises.
        worker.set_retain_swap_source(self.gang > 1);
        worker.set_prefetch_enabled(self.gang == 1);
        #[cfg(feature = "faults")]
        if let Some(inj) = &self.injector {
            worker.attach_fault_injector(Arc::clone(inj));
        }
        worker
    }
}

/// Receives into the heap without blocking; clears `open` on disconnect.
fn drain_queue(
    rx: &Receiver<Session>,
    seed: &WorkerSeed,
    heap: &mut BinaryHeap<QueuedSession>,
    seq: &mut u64,
    open: &mut bool,
) {
    loop {
        match rx.try_recv() {
            Ok(session) => {
                seed.depth.fetch_sub(1, Ordering::Relaxed);
                *seq += 1;
                heap.push(QueuedSession {
                    deadline: session.deadline(),
                    seq: *seq,
                    session,
                });
            }
            Err(TryRecvError::Empty) => break,
            Err(TryRecvError::Disconnected) => {
                *open = false;
                break;
            }
        }
    }
}

/// Blocks for one session when the heap is empty; clears `open` on
/// disconnect.
fn recv_one(
    rx: &Receiver<Session>,
    seed: &WorkerSeed,
    heap: &mut BinaryHeap<QueuedSession>,
    seq: &mut u64,
    open: &mut bool,
) {
    match rx.recv() {
        Ok(session) => {
            seed.depth.fetch_sub(1, Ordering::Relaxed);
            *seq += 1;
            heap.push(QueuedSession {
                deadline: session.deadline(),
                seq: *seq,
                session,
            });
        }
        Err(_) => *open = false,
    }
}

/// Credits one step's array activity to the pool-level counters and the
/// member's cumulative busy count (which survives worker rebuilds, unlike
/// the array's own stats).
fn credit_array_activity(
    metrics: &Metrics,
    busy: &mut u64,
    before: xpp_array::ArrayStats,
    after: xpp_array::ArrayStats,
) {
    let delta = after.delta_since(&before);
    *busy += delta.cycles;
    Metrics::add(&metrics.array_cycles_run, delta.cycles);
    Metrics::add(&metrics.config_words_streamed, delta.config_words);
    Metrics::raise_to(&metrics.array_makespan_cycles, *busy);
}

fn worker_loop(rx: Receiver<Session>, seed: WorkerSeed) {
    if seed.gang > 1 {
        return gang_loop(rx, seed);
    }
    let mut worker = seed.fresh_worker();
    let mut busy = 0u64;
    let mut heap: BinaryHeap<QueuedSession> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut open = true;
    loop {
        seed.pause.wait_ready();
        drain_queue(&rx, &seed, &mut heap, &mut seq, &mut open);
        let Some(queued) = heap.pop() else {
            if !open {
                return; // queue closed and drained: clean exit
            }
            recv_one(&rx, &seed, &mut heap, &mut seq, &mut open);
            continue;
        };
        let mut session = queued.session;
        // Supervised step: a panic (injected or genuine) is contained to
        // this one dispatch. AssertUnwindSafe is sound because both the
        // session and the worker are discarded-or-replaced on the panic
        // path rather than reused in their torn state: the session is
        // handed back marked crashed (the engine re-dispatches or
        // dead-letters it, it never resumes mid-kernel state), and the
        // worker — whose array may be mid-mutation — is dropped wholesale
        // and rebuilt from the seed.
        let before = worker.array().stats();
        let stepped = catch_unwind(AssertUnwindSafe(|| session.step(&mut worker)));
        credit_array_activity(&seed.metrics, &mut busy, before, worker.array().stats());
        match stepped {
            Ok(()) => {
                Metrics::incr(&seed.metrics.jobs_run);
                worker.refresh_activity();
            }
            Err(_) => {
                // Pending fault records on the discarded array (e.g. a
                // stall nobody exercised yet) would vanish with it; count
                // their disposal so injected == detected still reconciles.
                let lost = worker.array_mut().take_injected_faults();
                Metrics::add(&seed.metrics.faults_detected, 1 + lost);
                Metrics::add(&seed.metrics.recoveries, lost);
                Metrics::incr(&seed.metrics.worker_restarts);
                worker = seed.fresh_worker();
                session.record_crash();
            }
        }
        // The engine side may already be gone (pool dropped mid-run);
        // the session's work is still done, only the hand-back is lost.
        let _ = seed.results.send(session);
    }
}

// ---------------------------------------------------------------------------
// Gang dispatch (arrays_per_shard > 1)
// ---------------------------------------------------------------------------

/// Groups an EDF-ordered dispatch window by each session's next kernel,
/// preserving order: within a batch sessions stay in EDF order, and
/// batches are ordered by their most urgent member (first-seen in the
/// EDF-sorted window). Deadline inversion is therefore bounded by the
/// window size — a session is only ever run after sessions that were
/// *drained in the same round*, never after later arrivals.
fn form_batches(window: Vec<Session>) -> Vec<(Option<KernelSpec>, Vec<Session>)> {
    let mut batches: Vec<(Option<KernelSpec>, Vec<Session>)> = Vec::new();
    for session in window {
        let key = session.next_kernel();
        match batches.iter_mut().find(|(k, _)| *k == key) {
            Some((_, batch)) => batch.push(session),
            None => batches.push((key, vec![session])),
        }
    }
    batches
}

/// A shard's array gang: the members, their cumulative busy cycles (the
/// activity counters routing decisions use; they survive worker rebuilds)
/// and the routing policy knobs.
struct Gang<'a> {
    members: Vec<WorkerArray>,
    busy: Vec<u64>,
    seed: &'a WorkerSeed,
}

impl<'a> Gang<'a> {
    fn new(seed: &'a WorkerSeed) -> Self {
        Gang {
            members: (0..seed.gang).map(|_| seed.fresh_worker()).collect(),
            busy: vec![0; seed.gang],
            seed,
        }
    }

    /// The member that has stepped the fewest array cycles — the
    /// least-recently-active target for cold kernels and host-only steps.
    fn least_busy(&self, exclude: &[usize]) -> Option<usize> {
        (0..self.members.len())
            .filter(|m| !exclude.contains(m))
            .min_by_key(|&m| (self.busy[m], m))
    }

    /// Picks the members a batch runs on, most idle first.
    ///
    /// * Host-only batches (no kernel) touch no array: least-busy member.
    /// * Warm batches pin to the members where the kernel is resident
    ///   (the residency map, read fresh from [`ConfigManager`]
    ///   introspection each round so it heals across worker rebuilds).
    /// * Cold kernels fall to the least-busy member.
    /// * A saturated hot kernel is replicated onto the idlest member —
    ///   paying one extra configuration load to split the stream — up to
    ///   `gang − 1` replicas, so one array always stays clear of the hot
    ///   set for whatever arrives next.
    fn route(&self, key: Option<&KernelSpec>, metrics: &Metrics) -> Vec<usize> {
        // The gang is never empty (`ShardPool::new` asserts it), so an
        // unexcluded least-busy scan always finds a member.
        let Some(key) = key else {
            return vec![self.least_busy(&[]).unwrap_or(0)];
        };
        let name = key.config_name();
        let mut homes: Vec<usize> = (0..self.members.len())
            .filter(|&m| self.members[m].is_resident(&name))
            .collect();
        if homes.is_empty() {
            homes.push(self.least_busy(&[]).unwrap_or(0));
        } else {
            Metrics::incr(&metrics.batch_warm_hits);
        }
        let max_replicas = (self.members.len() - 1).max(1);
        while homes.len() < max_replicas {
            let Some(idlest) = self.least_busy(&homes) else {
                break;
            };
            let warmest = homes.iter().map(|&m| self.busy[m]).max().unwrap_or(0);
            if warmest.saturating_sub(self.busy[idlest]) <= self.seed.replicate_after_cycles {
                break;
            }
            homes.push(idlest);
            Metrics::incr(&metrics.batch_replications);
        }
        // Most idle first: the largest (most urgent) chunk lands on the
        // member with the most headroom.
        homes.sort_by_key(|&m| (self.busy[m], m));
        homes
    }

    /// Runs one EDF-ordered batch: splits it into contiguous chunks (most
    /// urgent first) across the routed members and steps every session
    /// back-to-back — the batch pays for its kernel's configuration at
    /// most once per member.
    fn run_batch(&mut self, key: Option<KernelSpec>, sessions: Vec<Session>) {
        let metrics = &self.seed.metrics;
        Metrics::incr(&metrics.batches_dispatched);
        Metrics::add(&metrics.batch_sessions, sessions.len() as u64);
        let homes = self.route(key.as_ref(), metrics);
        let chunk = sessions.len().div_ceil(homes.len());
        let mut remaining = sessions.into_iter();
        for &member in &homes {
            let chunk_sessions: Vec<Session> = remaining.by_ref().take(chunk).collect();
            for session in chunk_sessions {
                self.run_session(member, session);
            }
            self.members[member].refresh_activity();
        }
    }

    /// One supervised session step on one member; same crash containment
    /// as the single-array loop, except only the crashed member's array is
    /// rebuilt — the rest of the gang keeps its residency.
    fn run_session(&mut self, member: usize, mut session: Session) {
        let seed = self.seed;
        let worker = &mut self.members[member];
        let before = worker.array().stats();
        let stepped = catch_unwind(AssertUnwindSafe(|| session.step(worker)));
        credit_array_activity(
            &seed.metrics,
            &mut self.busy[member],
            before,
            self.members[member].array().stats(),
        );
        match stepped {
            Ok(()) => Metrics::incr(&seed.metrics.jobs_run),
            Err(_) => {
                let lost = self.members[member].array_mut().take_injected_faults();
                Metrics::add(&seed.metrics.faults_detected, 1 + lost);
                Metrics::add(&seed.metrics.recoveries, lost);
                Metrics::incr(&seed.metrics.worker_restarts);
                self.members[member] = seed.fresh_worker();
                session.record_crash();
            }
        }
        let _ = seed.results.send(session);
    }
}

/// The batching dispatcher: one thread owning the whole gang, so rounds
/// are deterministic (the chaos suite's reproducibility holds for gangs
/// too) and every member's residency is introspectable without locks.
fn gang_loop(rx: Receiver<Session>, seed: WorkerSeed) {
    let mut gang = Gang::new(&seed);
    let mut heap: BinaryHeap<QueuedSession> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut open = true;
    loop {
        seed.pause.wait_ready();
        drain_queue(&rx, &seed, &mut heap, &mut seq, &mut open);
        if heap.is_empty() {
            if !open {
                return; // queue closed and drained: clean exit
            }
            recv_one(&rx, &seed, &mut heap, &mut seq, &mut open);
            continue;
        }
        // One dispatch round: everything queued right now, in EDF order.
        let mut window = Vec::with_capacity(heap.len());
        while let Some(queued) = heap.pop() {
            window.push(queued.session);
        }
        for (key, batch) in form_batches(window) {
            gang.run_batch(key, batch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionState;
    use sdr_ofdm::xpp_map::OfdmKernel;
    use sdr_wcdma::xpp_map::WcdmaKernel;

    #[test]
    fn activation_tiers_resident_then_stored() {
        let metrics = Arc::new(Metrics::new());
        let mut w = WorkerArray::new(4, Arc::clone(&metrics));
        let a = w.activate(WcdmaKernel::Descrambler).unwrap();
        let b = w.activate(WcdmaKernel::Descrambler).unwrap();
        assert_eq!(a, b, "resident activation returns the same handle");
        assert_eq!(w.store().misses(), 1, "one build + compile");
        let snap = metrics.snapshot();
        assert_eq!((snap.cache_hits, snap.cache_misses), (1, 1));
        assert!(snap.config_bus_cycles > 0, "the load paid bus cycles");
    }

    #[test]
    fn swap_counts_a_reconfiguration_and_reuses_stored_configs() {
        let metrics = Arc::new(Metrics::new());
        let mut w = WorkerArray::new(4, Arc::clone(&metrics));
        w.activate(OfdmKernel::PreambleDetector).unwrap();
        w.swap(OfdmKernel::PreambleDetector, OfdmKernel::Demodulator)
            .unwrap();
        assert!(!w.is_resident("fig10-config2a-detector"));
        assert!(w.is_resident("fig10-config2b-demodulator"));
        // Swapping back: the detector config comes from the store.
        w.swap(OfdmKernel::Demodulator, OfdmKernel::PreambleDetector)
            .unwrap();
        assert_eq!(metrics.snapshot().reconfigurations, 2);
        assert_eq!(w.store().misses(), 2, "each kernel compiled exactly once");
        assert_eq!(w.store().hits(), 1, "re-activation served from the store");
    }

    #[test]
    fn retained_swap_keeps_both_kernels_resident() {
        let metrics = Arc::new(Metrics::new());
        let mut w = WorkerArray::new(4, Arc::clone(&metrics));
        w.set_retain_swap_source(true);
        w.activate(OfdmKernel::PreambleDetector).unwrap();
        w.swap(OfdmKernel::PreambleDetector, OfdmKernel::Demodulator)
            .unwrap();
        assert!(w.is_resident("fig10-config2a-detector"));
        assert!(w.is_resident("fig10-config2b-demodulator"));
        assert_eq!(
            metrics.snapshot().reconfigurations,
            0,
            "retained swap unloads nothing"
        );
        // The second OFDM session on this member activates both kernels
        // for free — no further bus words.
        let words = metrics.snapshot().config_bus_cycles;
        w.activate(OfdmKernel::PreambleDetector).unwrap();
        w.swap(OfdmKernel::PreambleDetector, OfdmKernel::Demodulator)
            .unwrap();
        assert_eq!(metrics.snapshot().config_bus_cycles, words);
    }

    #[test]
    fn swap_without_resident_source_still_activates() {
        let metrics = Arc::new(Metrics::new());
        let mut w = WorkerArray::new(4, Arc::clone(&metrics));
        w.swap(OfdmKernel::Demodulator, WcdmaKernel::Descrambler)
            .unwrap();
        assert!(w.is_resident("fig5-descrambler"));
        assert_eq!(
            metrics.snapshot().reconfigurations,
            0,
            "nothing was unloaded"
        );
    }

    #[test]
    fn prefetched_swap_pays_no_array_cycles() {
        let metrics = Arc::new(Metrics::new());
        let mut w = WorkerArray::new(4, Arc::clone(&metrics));
        w.activate(OfdmKernel::PreambleDetector).unwrap();
        assert!(w.prefetch(OfdmKernel::Demodulator).unwrap());
        // Run the detector long enough for the demodulator's bus load to
        // stream in the background.
        for _ in 0..1_000 {
            w.array_mut().step();
        }
        w.swap(OfdmKernel::PreambleDetector, OfdmKernel::Demodulator)
            .unwrap();
        let snap = metrics.snapshot();
        assert_eq!(snap.prefetch_hits, 1, "swap served from the prefetch");
        assert_eq!(
            snap.reconfig_cycles, 0,
            "a fully overlapped swap waits zero array cycles"
        );
    }

    #[test]
    fn workers_share_one_store_across_shards() {
        let metrics = Arc::new(Metrics::new());
        let store = Arc::new(ConfigStore::new(4));
        let mut w1 = WorkerArray::with_store(Arc::clone(&store), Arc::clone(&metrics));
        let mut w2 = WorkerArray::with_store(Arc::clone(&store), Arc::clone(&metrics));
        w1.activate(WcdmaKernel::Descrambler).unwrap();
        w2.activate(WcdmaKernel::Descrambler).unwrap();
        assert_eq!(store.misses(), 1, "second worker reused the compile");
        assert_eq!(store.hits(), 1);
    }

    /// An EDF-ordered window of mixed sessions: OFDM sessions stepped to
    /// `PreambleDetect` (earlier deadlines) interleaved with W-CDMA
    /// sessions stepped to `Tracking`.
    fn mixed_window(worker: &mut WorkerArray) -> Vec<Session> {
        let mut window: Vec<Session> = Vec::new();
        for id in 0..4 {
            let mut s = Session::ofdm(id, 7 + id);
            s.step(worker); // Idle → PreambleDetect
            window.push(s);
        }
        for id in 4..6 {
            let mut s = Session::wcdma(id, 42 + id);
            s.step(worker); // Idle → Searching
            s.step(worker); // Searching → Tracking
            window.push(s);
        }
        window.sort_by_key(|s| s.deadline());
        window
    }

    #[test]
    fn form_batches_groups_by_kernel_and_preserves_edf_order() {
        let metrics = Arc::new(Metrics::new());
        let mut worker = WorkerArray::new(8, metrics);
        let window = mixed_window(&mut worker);
        let window_order: Vec<u64> = window.iter().map(Session::id).collect();

        let batches = form_batches(window);
        assert_eq!(batches.len(), 2, "one batch per distinct kernel");
        // Batches are ordered by their most urgent member: the OFDM
        // detector sessions have much earlier deadlines than the W-CDMA
        // trackers.
        assert_eq!(
            batches[0].0,
            Some(KernelSpec::Ofdm(OfdmKernel::PreambleDetector))
        );
        assert_eq!(
            batches[1].0,
            Some(KernelSpec::Wcdma(WcdmaKernel::Descrambler))
        );
        assert_eq!(batches[0].1.len(), 4);
        assert_eq!(batches[1].1.len(), 2);
        // EDF within each batch: deadlines are non-decreasing.
        for (_, batch) in &batches {
            let deadlines: Vec<u64> = batch.iter().map(Session::deadline).collect();
            assert!(deadlines.windows(2).all(|w| w[0] <= w[1]), "EDF violated");
        }
        // Bounded inversion: the concatenated batches are a permutation of
        // the window in which each batch is a *subsequence* of the EDF
        // order — no session ever runs after a later arrival.
        let flat: Vec<u64> = batches
            .iter()
            .flat_map(|(_, b)| b.iter().map(Session::id))
            .collect();
        let mut sorted_flat = flat.clone();
        sorted_flat.sort_unstable();
        let mut sorted_window = window_order.clone();
        sorted_window.sort_unstable();
        assert_eq!(sorted_flat, sorted_window, "no session lost or invented");
        for (_, batch) in &batches {
            let positions: Vec<usize> = batch
                .iter()
                .map(|s| window_order.iter().position(|&id| id == s.id()).unwrap())
                .collect();
            assert!(
                positions.windows(2).all(|w| w[0] < w[1]),
                "batch must be a subsequence of the EDF window"
            );
        }
    }

    /// End-to-end gang dispatch: a paused shard accumulates a full wave,
    /// the resumed dispatcher batches it, and a kernel batch that repeats
    /// in a later wave (a second staggered cohort reaching the same
    /// pipeline stage) hits the member where the kernel stayed resident.
    #[test]
    fn gang_batches_waves_and_hits_warm_arrays() {
        let metrics = Arc::new(Metrics::new());
        let pool = ShardPool::new(
            PoolConfig {
                shards: 1,
                arrays_per_shard: 4,
                queue_depth: 32,
                start_paused: true,
                ..PoolConfig::default()
            },
            Arc::clone(&metrics),
        );
        let n = 12u64;
        // Cohort A (8 sessions) arrives a wave ahead of cohort B (4), so
        // wave 3 runs A's demodulation alongside B's preamble detection —
        // the detector loaded for A in wave 2 serves B warm.
        let mut arrivals: Vec<Vec<Session>> = vec![
            (8..n).map(|id| Session::ofdm(id, 0x0FD + id)).collect(),
            (0..8).map(|id| Session::ofdm(id, 0x0FD + id)).collect(),
        ];
        let mut pending: Vec<Session> = Vec::new();
        let mut done = 0u64;
        while done < n {
            pending.extend(arrivals.pop().unwrap_or_default());
            // Submit the whole wave while paused so one dispatch round
            // sees it all, then run it.
            let in_flight = pending.len();
            for s in pending.drain(..) {
                pool.submit(s).expect("queue has room");
            }
            pool.resume(0);
            for _ in 0..in_flight {
                let s = pool.recv().expect("worker alive");
                assert!(
                    !matches!(s.state(), SessionState::Failed(_)),
                    "session {} failed: {:?}",
                    s.id(),
                    s.state()
                );
                if s.is_terminal() {
                    done += 1;
                } else {
                    pending.push(s);
                }
            }
            pool.pause(0);
        }

        let snap = metrics.snapshot();
        assert_eq!(snap.jobs_run, 3 * n, "3 steps finish an OFDM session");
        assert_eq!(snap.batch_sessions, 3 * n, "every job went through a batch");
        assert!(
            snap.avg_batch_size() > 4.0,
            "waves must batch: {} batches for {} jobs",
            snap.batches_dispatched,
            snap.batch_sessions
        );
        assert!(snap.batch_warm_hits >= 1, "no batch hit a warm array");
        assert!(snap.array_cycles_run > 0);
        assert!(
            snap.array_makespan_cycles <= snap.array_cycles_run,
            "makespan is one member's share of the total"
        );
        assert!(
            snap.config_words_streamed > 0,
            "per-array bus word counters must flow into metrics"
        );
        drop(pool);
    }

    /// `arrays_per_shard: 1` must keep the seed dispatch path: no batch
    /// counters move.
    #[test]
    fn single_array_shard_never_batches() {
        let metrics = Arc::new(Metrics::new());
        let pool = ShardPool::new(
            PoolConfig {
                shards: 1,
                ..PoolConfig::default()
            },
            Arc::clone(&metrics),
        );
        let mut s = Session::wcdma(0, 1);
        for _ in 0..3 {
            pool.submit(s).expect("queue has room");
            s = pool.recv().expect("worker alive");
        }
        assert!(s.is_terminal());
        let snap = metrics.snapshot();
        assert_eq!(snap.batches_dispatched, 0);
        assert_eq!(snap.batch_sessions, 0);
        drop(pool);
    }
}
