//! Golden model of one rake finger: descrambling, despreading and channel
//! correction — the word-level data path the paper maps onto the
//! reconfigurable array (Figs. 5–7).
//!
//! The arithmetic here is the bit-exact contract for the netlists in
//! [`crate::xpp_map`]: 12-bit samples, `±1±j` descrambling, OVSF
//! multiply-accumulate with a truncating `>> log2(SF)` normalisation, and
//! Q-format weight multiplication with a truncating shift.

use crate::ovsf::ovsf;
use crate::scrambling::ScramblingCode;
use sdr_dsp::Cplx;

/// Fractional bits of the channel-correction weights (Q9: products of a
/// 13-bit despread symbol and an 11-bit weight stay inside 24-bit words).
pub const WEIGHT_FRAC_BITS: u32 = 9;

/// Largest weight magnitude that keeps the correction product within a
/// 24-bit word.
pub const WEIGHT_MAX: i32 = 1023;

/// Descrambles `n` received chips: `y[i] = rx[delay+i] · conj(S(phase+i))`.
///
/// `delay` aligns the finger to its multipath component; `phase` is the
/// scrambling-code phase (0 when the receive buffer starts a frame).
/// The multiply is by `±1∓j`, so the output grows by at most one bit.
///
/// # Panics
///
/// Panics if `delay + n` exceeds the receive buffer.
pub fn descramble(
    rx: &[Cplx<i32>],
    code: &ScramblingCode,
    delay: usize,
    phase: usize,
    n: usize,
) -> Vec<Cplx<i32>> {
    assert!(delay + n <= rx.len(), "descramble: window exceeds buffer");
    (0..n)
        .map(|i| rx[delay + i] * code.chip(phase + i).conj())
        .collect()
}

/// Despreads a descrambled chip stream with OVSF code `C(sf, k)`:
/// one output symbol per `sf` chips, normalised by a truncating
/// `>> log2(sf)`. Trailing chips that do not fill a symbol are dropped.
///
/// # Panics
///
/// Panics on an invalid OVSF parameter pair.
pub fn despread(chips: &[Cplx<i32>], sf: usize, code_index: usize) -> Vec<Cplx<i32>> {
    let code = ovsf(sf, code_index);
    let shift = sf.trailing_zeros();
    chips
        .chunks_exact(sf)
        .map(|sym| {
            let mut acc = Cplx::<i64>::ZERO;
            for (chip, &c) in sym.iter().zip(&code) {
                acc += Cplx::new(chip.re as i64 * c as i64, chip.im as i64 * c as i64);
            }
            acc.shr(shift).narrow()
        })
        .collect()
}

/// Applies channel correction to a symbol stream: `(s · conj(w)) >> 9`
/// (truncating), with `w` a Q9 weight.
pub fn correct(symbols: &[Cplx<i32>], weight: Cplx<i32>) -> Vec<Cplx<i32>> {
    symbols
        .iter()
        .map(|&s| s.cmul_shr(weight.conj(), WEIGHT_FRAC_BITS))
        .collect()
}

/// Full golden finger: descramble at `delay`, despread at `(sf, code)`,
/// correct with `weight`.
pub fn finger(
    rx: &[Cplx<i32>],
    code: &ScramblingCode,
    delay: usize,
    sf: usize,
    code_index: usize,
    weight: Cplx<i32>,
) -> Vec<Cplx<i32>> {
    let n = ((rx.len() - delay) / sf) * sf;
    let descrambled = descramble(rx, code, delay, 0, n);
    let symbols = despread(&descrambled, sf, code_index);
    correct(&symbols, weight)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descramble_inverts_scrambling_up_to_factor_two() {
        let code = ScramblingCode::downlink(4);
        // rx = d · S; descramble → d · S·conj(S) = 2d.
        let d = Cplx::new(100, -50);
        let rx: Vec<Cplx<i32>> = (0..16).map(|i| d * code.chip(i)).collect();
        let y = descramble(&rx, &code, 0, 0, 16);
        for v in y {
            assert_eq!(v, d.scale(2));
        }
    }

    #[test]
    fn descramble_with_delay_and_phase() {
        let code = ScramblingCode::downlink(4);
        let d = Cplx::new(7, 7);
        // Signal delayed by 5 chips; code phase stays frame-aligned.
        let mut rx = vec![Cplx::new(0, 0); 5];
        rx.extend((0..8).map(|i| d * code.chip(i)));
        let y = descramble(&rx, &code, 5, 0, 8);
        for v in y {
            assert_eq!(v, d.scale(2));
        }
    }

    #[test]
    #[should_panic]
    fn descramble_rejects_overrun() {
        let code = ScramblingCode::downlink(0);
        descramble(&[Cplx::new(0, 0); 4], &code, 2, 0, 4);
    }

    #[test]
    fn despread_recovers_spread_symbol() {
        let sf = 16;
        let k = 3;
        let code = ovsf(sf, k);
        let sym = Cplx::new(80, -48);
        let chips: Vec<Cplx<i32>> = code.iter().map(|&c| sym.scale(c)).collect();
        let out = despread(&chips, sf, k);
        assert_eq!(out, vec![sym]); // sum = sf·sym, >>log2(sf) = sym
    }

    #[test]
    fn despread_rejects_other_codes() {
        let sf = 16;
        let code = ovsf(sf, 3);
        let sym = Cplx::new(400, 0);
        let chips: Vec<Cplx<i32>> = code.iter().map(|&c| sym.scale(c)).collect();
        // Despread with a different orthogonal code → zero.
        let out = despread(&chips, sf, 7);
        assert_eq!(out, vec![Cplx::new(0, 0)]);
    }

    #[test]
    fn despread_drops_partial_symbols() {
        let chips = vec![Cplx::new(1, 1); 20];
        assert_eq!(despread(&chips, 16, 0).len(), 1);
    }

    #[test]
    fn correct_rotates_by_conjugate_weight() {
        // weight = j·512 (Q9): s·conj(w) = s·(−j)·512 >> 9 = s·(−j).
        let w = Cplx::new(0, 512);
        let s = Cplx::new(100, 60);
        let out = correct(&[s], w);
        assert_eq!(out, vec![s.mul_neg_j()]);
    }

    #[test]
    fn correct_unit_weight_is_identity() {
        let w = Cplx::new(512, 0);
        let s = Cplx::new(-1234, 987);
        assert_eq!(correct(&[s], w), vec![s]);
    }

    #[test]
    fn full_finger_pipeline_on_clean_signal() {
        let code = ScramblingCode::downlink(2);
        let sf = 8;
        let k = 2;
        let ov = ovsf(sf, k);
        let sym = Cplx::new(64, -64);
        // Build rx = spread+scrambled chips, delayed by 3.
        let mut rx = vec![Cplx::new(0, 0); 3];
        for i in 0..sf * 4 {
            let chip = sym.scale(ov[i % sf]);
            rx.push(chip * code.chip(i));
        }
        let out = finger(&rx, &code, 3, sf, k, Cplx::new(512, 0));
        assert_eq!(out.len(), 4);
        for v in out {
            assert_eq!(v, sym.scale(2)); // descramble ×2
        }
    }
}
