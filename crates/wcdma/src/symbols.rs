//! Symbol mapping, pilot sequences and Space-Time Transmit Diversity (STTD).
//!
//! Downlink DPCH data is QPSK; the common pilot (CPICH) transmits a known
//! symbol sequence used for channel estimation; STTD (TS 25.211 §5.3.1.1.1)
//! is the open-loop transmit-diversity scheme whose decoding the paper maps
//! onto the array's channel-correction unit (Fig. 7).

use sdr_dsp::Cplx;

/// Maps a bit pair to a QPSK symbol: `0 → +1`, `1 → −1` per component.
///
/// # Example
///
/// ```
/// use sdr_wcdma::symbols::qpsk_map;
/// assert_eq!(qpsk_map(0, 1), sdr_dsp::Cplx::new(1, -1));
/// ```
#[inline]
pub fn qpsk_map(b0: u8, b1: u8) -> Cplx<i32> {
    Cplx::new(1 - 2 * (b0 as i32 & 1), 1 - 2 * (b1 as i32 & 1))
}

/// Hard QPSK decision back to bits `(b0, b1)`.
#[inline]
pub fn qpsk_demap(s: Cplx<i64>) -> (u8, u8) {
    ((s.re < 0) as u8, (s.im < 0) as u8)
}

/// Maps a bit slice (even length) to QPSK symbols.
///
/// # Panics
///
/// Panics if the bit count is odd.
pub fn qpsk_map_bits(bits: &[u8]) -> Vec<Cplx<i32>> {
    assert!(
        bits.len().is_multiple_of(2),
        "QPSK needs an even number of bits"
    );
    bits.chunks(2).map(|p| qpsk_map(p[0], p[1])).collect()
}

/// The CPICH pilot symbol on antenna 1: always `1 + j` (pre-scaling).
pub const CPICH_SYMBOL: Cplx<i32> = Cplx::new(1, 1);

/// The CPICH symbol on antenna 2 at symbol index `n`: the diversity pilot
/// pattern alternates sign every symbol so the receiver can separate the two
/// antennas' channels.
#[inline]
pub fn cpich_antenna2(n: usize) -> Cplx<i32> {
    if n.is_multiple_of(2) {
        CPICH_SYMBOL
    } else {
        -CPICH_SYMBOL
    }
}

/// STTD-encodes a symbol stream: pairs `(s1, s2)` become
/// antenna 1: `s1, s2` and antenna 2: `−s2*, s1*`.
///
/// A trailing unpaired symbol is transmitted without diversity (antenna 2
/// sends zero).
pub fn sttd_encode(symbols: &[Cplx<i32>]) -> (Vec<Cplx<i32>>, Vec<Cplx<i32>>) {
    let mut ant1 = Vec::with_capacity(symbols.len());
    let mut ant2 = Vec::with_capacity(symbols.len());
    let mut chunks = symbols.chunks_exact(2);
    for pair in &mut chunks {
        let (s1, s2) = (pair[0], pair[1]);
        ant1.push(s1);
        ant1.push(s2);
        ant2.push(-s2.conj());
        ant2.push(s1.conj());
    }
    if let [s] = chunks.remainder() {
        ant1.push(*s);
        ant2.push(Cplx::new(0, 0));
    }
    (ant1, ant2)
}

/// STTD decode of one received pair with channel estimates `h1`, `h2`
/// (floating point, used by the golden combiner):
/// `ŝ1 = h1*·r1 + h2·r2*`, `ŝ2 = h1*·r2 − h2·r1*`.
///
/// The output is scaled by `|h1|² + |h2|²` relative to the transmitted
/// symbols (pure maximum-ratio gain — sign decisions are unaffected).
pub fn sttd_decode(
    r1: Cplx<f64>,
    r2: Cplx<f64>,
    h1: Cplx<f64>,
    h2: Cplx<f64>,
) -> (Cplx<f64>, Cplx<f64>) {
    let s1 = h1.conj() * r1 + h2 * r2.conj();
    let s2 = h1.conj() * r2 - h2 * r1.conj();
    (s1, s2)
}

/// Integer STTD decode with Q-format weights (the array datapath of Fig. 7):
/// `ŝ1 = (w1*·r1 + w2·r2*) >> frac`, `ŝ2 = (w1*·r2 − w2·r1*) >> frac`,
/// truncating arithmetic shift, 64-bit intermediates.
pub fn sttd_decode_fixed(
    r1: Cplx<i32>,
    r2: Cplx<i32>,
    w1: Cplx<i32>,
    w2: Cplx<i32>,
    frac: u32,
) -> (Cplx<i32>, Cplx<i32>) {
    let a = r1.widen() * w1.conj().widen() + r2.conj().widen() * w2.widen();
    let b = r2.widen() * w1.conj().widen() - r1.conj().widen() * w2.widen();
    (a.shr(frac).narrow(), b.shr(frac).narrow())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qpsk_roundtrip() {
        for b0 in 0..2u8 {
            for b1 in 0..2u8 {
                let s = qpsk_map(b0, b1);
                assert_eq!(qpsk_demap(s.widen()), (b0, b1));
            }
        }
    }

    #[test]
    fn qpsk_map_bits_pairs() {
        let syms = qpsk_map_bits(&[0, 0, 1, 1, 0, 1]);
        assert_eq!(
            syms,
            vec![Cplx::new(1, 1), Cplx::new(-1, -1), Cplx::new(1, -1)]
        );
    }

    #[test]
    #[should_panic]
    fn qpsk_rejects_odd_bits() {
        qpsk_map_bits(&[0, 1, 0]);
    }

    #[test]
    fn sttd_encode_structure() {
        let s1 = Cplx::new(1, 1);
        let s2 = Cplx::new(-1, 1);
        let (a1, a2) = sttd_encode(&[s1, s2]);
        assert_eq!(a1, vec![s1, s2]);
        assert_eq!(a2, vec![-s2.conj(), s1.conj()]);
    }

    #[test]
    fn sttd_encode_odd_tail() {
        let (a1, a2) = sttd_encode(&[Cplx::new(1, -1)]);
        assert_eq!(a1.len(), 1);
        assert_eq!(a2, vec![Cplx::new(0, 0)]);
    }

    #[test]
    fn sttd_decode_recovers_symbols_exactly() {
        // r1 = h1 s1 - h2 s2*, r2 = h1 s2 + h2 s1*.
        let h1 = Cplx::new(0.8, -0.3);
        let h2 = Cplx::new(-0.2, 0.6);
        for &(s1, s2) in &[
            (Cplx::new(1.0, 1.0), Cplx::new(-1.0, 1.0)),
            (Cplx::new(-1.0, -1.0), Cplx::new(1.0, -1.0)),
        ] {
            let r1 = h1 * s1 - h2 * s2.conj();
            let r2 = h1 * s2 + h2 * s1.conj();
            let (d1, d2) = sttd_decode(r1, r2, h1, h2);
            let gain = h1.sqmag() + h2.sqmag();
            assert!((d1.re - gain * s1.re).abs() < 1e-12);
            assert!((d1.im - gain * s1.im).abs() < 1e-12);
            assert!((d2.re - gain * s2.re).abs() < 1e-12);
            assert!((d2.im - gain * s2.im).abs() < 1e-12);
        }
    }

    #[test]
    fn sttd_decode_fixed_tracks_float() {
        let w1 = Cplx::new(400, -150); // Q9-ish weights
        let w2 = Cplx::new(-100, 300);
        let r1 = Cplx::new(1200, -800);
        let r2 = Cplx::new(-500, 950);
        let (d1, d2) = sttd_decode_fixed(r1, r2, w1, w2, 9);
        let (f1, f2) = sttd_decode(r1.to_f64(), r2.to_f64(), w1.to_f64(), w2.to_f64());
        assert!((d1.re as f64 - f1.re / 512.0).abs() <= 1.0);
        assert!((d1.im as f64 - f1.im / 512.0).abs() <= 1.0);
        assert!((d2.re as f64 - f2.re / 512.0).abs() <= 1.0);
        assert!((d2.im as f64 - f2.im / 512.0).abs() <= 1.0);
    }

    #[test]
    fn cpich_pattern_alternates_on_antenna2() {
        assert_eq!(cpich_antenna2(0), CPICH_SYMBOL);
        assert_eq!(cpich_antenna2(1), -CPICH_SYMBOL);
        assert_eq!(cpich_antenna2(2), CPICH_SYMBOL);
    }
}
