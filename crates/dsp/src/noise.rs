//! Deterministic noise and fading generators.
//!
//! The paper's receivers were exercised on an evaluation board fed by an RF
//! front end; we substitute synthetic channels (see DESIGN.md §2). All
//! generators are seeded explicitly so every experiment is reproducible.

use crate::complex::Cplx;
use crate::rng::Rng64;

/// A complex additive-white-Gaussian-noise source.
///
/// Samples are drawn with the Box–Muller transform from a seeded [`Rng64`],
/// so a given seed always produces the same noise realisation.
///
/// # Example
///
/// ```
/// use sdr_dsp::noise::Awgn;
///
/// let mut n1 = Awgn::new(42, 1.0);
/// let mut n2 = Awgn::new(42, 1.0);
/// assert_eq!(n1.sample().re, n2.sample().re); // deterministic
/// ```
#[derive(Debug)]
pub struct Awgn {
    rng: Rng64,
    /// Standard deviation per real dimension.
    sigma: f64,
}

impl Awgn {
    /// Creates a generator with per-dimension standard deviation `sigma`.
    pub fn new(seed: u64, sigma: f64) -> Self {
        Awgn {
            rng: Rng64::seed_from_u64(seed),
            sigma,
        }
    }

    /// Per-dimension standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draws one complex Gaussian sample with variance `2σ²` total.
    pub fn sample(&mut self) -> Cplx<f64> {
        let (a, b) = self.gaussian_pair();
        Cplx::new(a * self.sigma, b * self.sigma)
    }

    /// Draws a pair of independent standard normal variates.
    fn gaussian_pair(&mut self) -> (f64, f64) {
        self.rng.next_gaussian_pair()
    }

    /// Adds noise to a float sample stream in place.
    pub fn add_to(&mut self, x: &mut [Cplx<f64>]) {
        for v in x {
            *v += self.sample();
        }
    }
}

/// Converts an Eb/N0 (dB) target into the per-dimension noise sigma for unit
/// average symbol energy `es`, `bits_per_symbol` bits/symbol and a spreading
/// gain (1 for OFDM; the spreading factor for CDMA chips).
///
/// `sigma² = Es / (2 · bits · spreading · 10^(EbN0/10))` per real dimension.
pub fn sigma_for_ebn0(es: f64, bits_per_symbol: f64, spreading: f64, ebn0_db: f64) -> f64 {
    let ebn0 = 10f64.powf(ebn0_db / 10.0);
    (es / (2.0 * bits_per_symbol * spreading * ebn0)).sqrt()
}

/// A slowly-varying Rayleigh fading tap: a complex Gaussian random walk put
/// through a one-pole low-pass filter, normalised to unit average power.
///
/// This is not a full Jakes model, but it reproduces what the rake receiver
/// needs exercised: per-path complex gains that are roughly constant within a
/// slot and decorrelate over many slots (pedestrian mobility).
#[derive(Debug)]
pub struct RayleighTap {
    rng: Rng64,
    state: Cplx<f64>,
    /// One-pole coefficient; closer to 1.0 = slower fading.
    rho: f64,
    /// Innovation gain keeping unit average power.
    gain: f64,
}

impl RayleighTap {
    /// Creates a tap. `doppler_norm` is the fading rate in `(0, 1)`: the
    /// complex gain decorrelates over roughly `1/doppler_norm` updates.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < doppler_norm < 1.0`.
    pub fn new(seed: u64, doppler_norm: f64) -> Self {
        assert!(doppler_norm > 0.0 && doppler_norm < 1.0);
        let rho = 1.0 - doppler_norm;
        let gain = (1.0 - rho * rho).sqrt() / 2f64.sqrt();
        let mut tap = RayleighTap {
            rng: Rng64::seed_from_u64(seed),
            state: Cplx::<f64>::ZERO,
            rho,
            gain,
        };
        // Burn in so the process starts in steady state.
        for _ in 0..256 {
            tap.step();
        }
        tap
    }

    /// Advances the fading process one update and returns the complex gain.
    pub fn step(&mut self) -> Cplx<f64> {
        let (a, b) = self.rng.next_gaussian_pair();
        self.state = Cplx::new(
            self.rho * self.state.re + self.gain * a,
            self.rho * self.state.im + self.gain * b,
        );
        self.state
    }

    /// The current gain without advancing.
    pub fn gain(&self) -> Cplx<f64> {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn awgn_is_deterministic_per_seed() {
        let mut a = Awgn::new(7, 0.5);
        let mut b = Awgn::new(7, 0.5);
        for _ in 0..100 {
            let (x, y) = (a.sample(), b.sample());
            assert_eq!(x.re, y.re);
            assert_eq!(x.im, y.im);
        }
    }

    #[test]
    fn awgn_seeds_differ() {
        let mut a = Awgn::new(1, 1.0);
        let mut b = Awgn::new(2, 1.0);
        assert!(a.sample().re != b.sample().re);
    }

    #[test]
    fn awgn_variance_close_to_sigma_squared() {
        let mut g = Awgn::new(11, 2.0);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let s = g.sample();
            sum += s.sqmag();
        }
        let measured = sum / n as f64; // expect 2σ² = 8
        assert!((measured - 8.0).abs() < 0.4, "measured {measured}");
    }

    #[test]
    fn awgn_mean_close_to_zero() {
        let mut g = Awgn::new(5, 1.0);
        let n = 20_000;
        let mut acc = Cplx::<f64>::ZERO;
        for _ in 0..n {
            acc += g.sample();
        }
        assert!(acc.mag() / (n as f64) < 0.05);
    }

    #[test]
    fn sigma_for_ebn0_monotone_decreasing() {
        let s0 = sigma_for_ebn0(1.0, 2.0, 1.0, 0.0);
        let s10 = sigma_for_ebn0(1.0, 2.0, 1.0, 10.0);
        assert!(s10 < s0);
        // At Eb/N0 = 0 dB, QPSK (2 bits), sigma² = 1/4.
        assert!((s0 * s0 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn rayleigh_tap_unit_average_power() {
        let mut t = RayleighTap::new(3, 0.05);
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            sum += t.step().sqmag();
        }
        let avg = sum / n as f64;
        assert!((avg - 1.0).abs() < 0.15, "avg power {avg}");
    }

    #[test]
    fn rayleigh_tap_is_correlated_over_short_spans() {
        let mut t = RayleighTap::new(9, 0.01);
        let g0 = t.step();
        let g1 = t.step();
        // Adjacent samples of a slow fader are nearly identical.
        assert!((g0 - g1).mag() < 0.5 * g0.mag().max(0.1));
    }

    #[test]
    #[should_panic]
    fn rayleigh_rejects_bad_doppler() {
        RayleighTap::new(1, 1.5);
    }
}
