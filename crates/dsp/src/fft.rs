//! Reference DFT/FFT and the bit-exact fixed-point radix-4 FFT-64.
//!
//! The paper (Fig. 9) maps a 64-point radix-4 FFT onto the reconfigurable
//! array: three pipeline stages, twiddle factors from a lookup table, and a
//! 2-bit right shift after every stage to prevent overflow ("With every stage
//! a scaling (2-bit right shift) is required... for three stages of the FFT64
//! we finally get a 4-bit precision in the result").
//!
//! This module defines:
//!
//! * [`dft`] — an O(N²) floating-point reference used only by tests,
//! * [`fft`]/[`ifft`] — an iterative radix-2 floating FFT for any power of
//!   two (used by the OFDM transmitter, which the paper leaves to the
//!   infrastructure side),
//! * [`Fft64Fixed`] — the *golden* fixed-point radix-4 FFT-64 whose exact
//!   arithmetic (truncating per-stage `>>2`, Q0.9 rounded twiddle products)
//!   the XPP netlist in `sdr-ofdm` reproduces bit-for-bit.

use crate::complex::Cplx;
use crate::fixed::shr_round;
use std::f64::consts::PI;

/// O(N²) reference DFT: `X[k] = Σ x[n]·e^{-j2πnk/N}`.
///
/// Used as the ground truth in tests; do not use it for real workloads.
pub fn dft(x: &[Cplx<f64>]) -> Vec<Cplx<f64>> {
    let n = x.len();
    (0..n)
        .map(|k| {
            let mut acc = Cplx::<f64>::ZERO;
            for (i, &xi) in x.iter().enumerate() {
                let phase = -2.0 * PI * (i * k % n) as f64 / n as f64;
                acc += xi * Cplx::from_polar(1.0, phase);
            }
            acc
        })
        .collect()
}

/// Iterative radix-2 FFT for any power-of-two length.
///
/// # Panics
///
/// Panics if `x.len()` is not a power of two.
pub fn fft(x: &[Cplx<f64>]) -> Vec<Cplx<f64>> {
    let mut data = x.to_vec();
    fft_in_place(&mut data, false);
    data
}

/// Inverse FFT (includes the 1/N normalisation).
///
/// # Panics
///
/// Panics if `x.len()` is not a power of two.
pub fn ifft(x: &[Cplx<f64>]) -> Vec<Cplx<f64>> {
    let mut data = x.to_vec();
    fft_in_place(&mut data, true);
    let n = data.len() as f64;
    for v in &mut data {
        v.re /= n;
        v.im /= n;
    }
    data
}

fn fft_in_place(data: &mut [Cplx<f64>], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "fft: length must be a power of two");
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if j > i {
            data.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = Cplx::from_polar(1.0, ang);
        for base in (0..n).step_by(len) {
            let mut w = Cplx::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[base + k];
                let v = data[base + k + len / 2] * w;
                data[base + k] = u + v;
                data[base + k + len / 2] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

/// Fractional bits of the twiddle factors.
///
/// Q9 (scale 512) is chosen so that every partial product of the butterfly
/// fits a 24-bit ALU word: stage values grow to ≤ 13 bits, and
/// 13 + 10 ≤ 23 — which is what lets the XPP netlist reproduce the golden
/// model bit-for-bit using plain `Mul`, `AddK` and `ShrK` objects.
pub const TWIDDLE_FRAC_BITS: u32 = 9;

/// Returns the Q0.9 twiddle factor `W_N^k = e^{-j2πk/N}`, rounded to the
/// nearest grid point (`+1.0` maps to exactly `512`).
///
/// This is the exact table the array netlist preloads into its lookup FIFO.
pub fn twiddle_q(n: usize, k: usize) -> Cplx<i32> {
    let theta = -2.0 * PI * (k % n) as f64 / n as f64;
    let scale = (1i64 << TWIDDLE_FRAC_BITS) as f64;
    let re = (theta.cos() * scale).round() as i32;
    let im = (theta.sin() * scale).round() as i32;
    Cplx::new(re, im)
}

/// Complex multiply by a Q0.9 twiddle with round-half-up applied to the
/// *summed* products: `re = (vr·wr − vi·wi + 2⁸) >> 9`.
///
/// On the array this is two `Mul`, one `Sub`/`Add`, one `AddK(256)` and one
/// `ShrK(9)` — all operating within 24-bit words — so golden model and
/// netlist agree exactly.
#[inline]
pub fn cmul_twiddle(v: Cplx<i32>, w: Cplx<i32>) -> Cplx<i32> {
    let vr = v.re as i64;
    let vi = v.im as i64;
    let wr = w.re as i64;
    let wi = w.im as i64;
    Cplx::new(
        shr_round(vr * wr - vi * wi, TWIDDLE_FRAC_BITS) as i32,
        shr_round(vr * wi + vi * wr, TWIDDLE_FRAC_BITS) as i32,
    )
}

/// The number of radix-4 stages in a 64-point FFT.
pub const FFT64_STAGES: usize = 3;

/// Fixed-point radix-4 decimation-in-frequency FFT-64 (golden model of the
/// paper's Fig. 9 kernel).
///
/// Arithmetic contract (what the XPP netlist must match bit-for-bit):
///
/// 1. per stage, each radix-4 butterfly computes
///    `t0=a+c, t1=a-c, t2=b+d, t3=b-d`;
///    `y0=t0+t2, y1=t1-j·t3, y2=t0-t2, y3=t1+j·t3`,
/// 2. `y1,y2,y3` are multiplied by the Q0.9 twiddles `W^k, W^2k, W^3k`
///    (round-half-up on the summed products, [`cmul_twiddle`]),
/// 3. every output is scaled by a truncating arithmetic `>>shift`
///    (`shift = 2` per the paper) before being written back,
/// 4. the final result is base-4 digit-reversed into natural order.
///
/// # Example
///
/// ```
/// use sdr_dsp::{Cplx, fft::Fft64Fixed};
///
/// let fft = Fft64Fixed::new();
/// // An impulse transforms to a flat spectrum (scaled by the 3 stage shifts).
/// let mut x = [Cplx::<i32>::ZERO; 64];
/// x[0] = Cplx::new(512, 0); // 10-bit full scale
/// let y = fft.run(&x);
/// assert!(y.iter().all(|v| v.re == y[0].re && v.im == 0));
/// ```
#[derive(Debug, Clone)]
pub struct Fft64Fixed {
    /// Truncating right shift applied after each stage (paper: 2).
    stage_shift: u32,
}

impl Default for Fft64Fixed {
    fn default() -> Self {
        Self::new()
    }
}

impl Fft64Fixed {
    /// Creates the FFT with the paper's per-stage 2-bit scaling.
    pub fn new() -> Self {
        Fft64Fixed { stage_shift: 2 }
    }

    /// Creates the FFT with a custom per-stage shift (used by the scaling
    /// ablation experiment).
    ///
    /// # Panics
    ///
    /// Panics if `shift > 8`.
    pub fn with_stage_shift(shift: u32) -> Self {
        assert!(shift <= 8, "stage shift beyond 8 bits is meaningless");
        Fft64Fixed { stage_shift: shift }
    }

    /// The per-stage shift in use.
    pub fn stage_shift(&self) -> u32 {
        self.stage_shift
    }

    /// Runs the transform, returning the spectrum in natural order.
    pub fn run(&self, input: &[Cplx<i32>; 64]) -> [Cplx<i32>; 64] {
        let mut data = *input;
        for stage in 0..FFT64_STAGES {
            self.run_stage(&mut data, stage);
        }
        digit_reverse_64(&data)
    }

    /// Runs the transform and also returns the value of the working array
    /// after each stage (before digit reversal) — used to cross-check the
    /// array netlist stage by stage.
    pub fn run_with_trace(
        &self,
        input: &[Cplx<i32>; 64],
    ) -> ([Cplx<i32>; 64], Vec<[Cplx<i32>; 64]>) {
        let mut data = *input;
        let mut trace = Vec::with_capacity(FFT64_STAGES);
        for stage in 0..FFT64_STAGES {
            self.run_stage(&mut data, stage);
            trace.push(data);
        }
        (digit_reverse_64(&data), trace)
    }

    fn run_stage(&self, data: &mut [Cplx<i32>; 64], stage: usize) {
        let m = 64 >> (2 * stage); // sub-DFT size: 64, 16, 4
        let q = m / 4;
        for base in (0..64).step_by(m) {
            for k in 0..q {
                let i0 = base + k;
                let i1 = base + k + q;
                let i2 = base + k + 2 * q;
                let i3 = base + k + 3 * q;
                let (a, b, c, d) = (data[i0], data[i1], data[i2], data[i3]);
                let t0 = a + c;
                let t1 = a - c;
                let t2 = b + d;
                let t3 = b - d;
                let y0 = t0 + t2;
                let y1 = t1 + t3.mul_neg_j();
                let y2 = t0 - t2;
                let y3 = t1 + t3.mul_j();
                let w1 = twiddle_q(m, k);
                let w2 = twiddle_q(m, 2 * k);
                let w3 = twiddle_q(m, 3 * k);
                data[i0] = y0.shr(self.stage_shift);
                data[i1] = cmul_twiddle(y1, w1).shr(self.stage_shift);
                data[i2] = cmul_twiddle(y2, w2).shr(self.stage_shift);
                data[i3] = cmul_twiddle(y3, w3).shr(self.stage_shift);
            }
        }
    }
}

/// Base-4 digit reversal of a 64-element array (3 digits: `d2 d1 d0` →
/// `d0 d1 d2`).
pub fn digit_reverse_64(data: &[Cplx<i32>; 64]) -> [Cplx<i32>; 64] {
    let mut out = [Cplx::<i32>::ZERO; 64];
    for (i, &v) in data.iter().enumerate() {
        out[digit_reversed_index_64(i)] = v;
    }
    out
}

/// Returns the base-4 digit-reversed value of a 6-bit index.
pub fn digit_reversed_index_64(i: usize) -> usize {
    debug_assert!(i < 64);
    let d0 = i & 3;
    let d1 = (i >> 2) & 3;
    let d2 = (i >> 4) & 3;
    (d0 << 4) | (d1 << 2) | d2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(freq: usize, amp: f64) -> Vec<Cplx<f64>> {
        (0..64)
            .map(|n| Cplx::from_polar(amp, 2.0 * PI * (freq * n) as f64 / 64.0))
            .collect()
    }

    #[test]
    fn fft_matches_dft() {
        let x: Vec<Cplx<f64>> = (0..64)
            .map(|n| Cplx::new(((n * 7) % 13) as f64 - 6.0, ((n * 3) % 11) as f64 - 5.0))
            .collect();
        let a = fft(&x);
        let b = dft(&x);
        for (u, v) in a.iter().zip(&b) {
            assert!((u.re - v.re).abs() < 1e-9 && (u.im - v.im).abs() < 1e-9);
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        let x: Vec<Cplx<f64>> = (0..128)
            .map(|n| Cplx::new((n as f64 * 0.37).sin(), (n as f64 * 0.11).cos()))
            .collect();
        let y = ifft(&fft(&x));
        for (u, v) in x.iter().zip(&y) {
            assert!((u.re - v.re).abs() < 1e-9 && (u.im - v.im).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic]
    fn fft_rejects_non_power_of_two() {
        fft(&vec![Cplx::<f64>::ZERO; 60]);
    }

    #[test]
    fn tone_lands_in_single_bin() {
        let spec = fft(&tone(9, 1.0));
        for (k, v) in spec.iter().enumerate() {
            if k == 9 {
                assert!((v.mag() - 64.0).abs() < 1e-9);
            } else {
                assert!(v.mag() < 1e-9);
            }
        }
    }

    #[test]
    fn twiddles_are_unit_magnitude_on_axes() {
        assert_eq!(twiddle_q(64, 0), Cplx::new(512, 0));
        assert_eq!(twiddle_q(64, 16), Cplx::new(0, -512));
        assert_eq!(twiddle_q(64, 32), Cplx::new(-512, 0));
        assert_eq!(twiddle_q(64, 48), Cplx::new(0, 512));
    }

    #[test]
    fn digit_reversal_is_involution() {
        for i in 0..64 {
            assert_eq!(digit_reversed_index_64(digit_reversed_index_64(i)), i);
        }
    }

    #[test]
    fn fixed_fft_impulse_is_flat() {
        let f = Fft64Fixed::new();
        let mut x = [Cplx::<i32>::ZERO; 64];
        x[0] = Cplx::new(512, 0);
        let y = f.run(&x);
        // DFT of impulse = constant 512; 3 stages of >>2 divide by 64 → 8.
        for v in y {
            assert_eq!(v, Cplx::new(8, 0));
        }
    }

    #[test]
    fn fixed_fft_tone_peaks_in_correct_bin() {
        let f = Fft64Fixed::new();
        let mut x = [Cplx::<i32>::ZERO; 64];
        for (n, v) in tone(5, 500.0).iter().enumerate() {
            x[n] = Cplx::from_f64_rounded(*v);
        }
        let y = f.run(&x);
        let peak = y
            .iter()
            .enumerate()
            .max_by_key(|(_, v)| v.sqmag())
            .map(|(i, _)| i)
            .unwrap();
        assert_eq!(peak, 5);
    }

    #[test]
    fn fixed_fft_tracks_float_fft_closely() {
        // Deterministic pseudo-random 10-bit input.
        let mut x = [Cplx::<i32>::ZERO; 64];
        let mut seed = 0x1234_5678u32;
        for v in &mut x {
            seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
            let re = ((seed >> 8) % 1024) as i32 - 512;
            seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
            let im = ((seed >> 8) % 1024) as i32 - 512;
            *v = Cplx::new(re, im);
        }
        let fx: Vec<Cplx<f64>> = x.iter().map(|v| v.to_f64()).collect();
        let reference = fft(&fx);
        let fixed = Fft64Fixed::new().run(&x);
        // Fixed output is scaled by 1/64 relative to the unnormalised DFT.
        let mut err_power = 0.0;
        let mut sig_power = 0.0;
        for (f, r) in fixed.iter().zip(&reference) {
            let scaled = Cplx::new(r.re / 64.0, r.im / 64.0);
            let diff = f.to_f64() - scaled;
            err_power += diff.sqmag();
            sig_power += scaled.sqmag();
        }
        let snr_db = 10.0 * (sig_power / err_power).log10();
        // Truncating >>2 per stage costs precision; the paper quotes "4-bit
        // precision" for 10-bit inputs. Anything above ~25 dB confirms the
        // datapath is sound.
        assert!(snr_db > 25.0, "fixed-point FFT SNR too low: {snr_db:.1} dB");
    }

    #[test]
    fn with_stage_shift_zero_matches_unnormalised_dft_closely() {
        let mut x = [Cplx::<i32>::ZERO; 64];
        for (n, v) in x.iter_mut().enumerate() {
            *v = Cplx::new(((n as i32 * 37) % 101) - 50, ((n as i32 * 53) % 89) - 44);
        }
        let fixed = Fft64Fixed::with_stage_shift(0).run(&x);
        let reference = fft(&x.iter().map(|v| v.to_f64()).collect::<Vec<_>>());
        for (f, r) in fixed.iter().zip(&reference) {
            assert!((f.re as f64 - r.re).abs() < 8.0, "{f:?} vs {r:?}");
            assert!((f.im as f64 - r.im).abs() < 8.0, "{f:?} vs {r:?}");
        }
    }

    #[test]
    #[should_panic]
    fn with_stage_shift_rejects_huge_shift() {
        Fft64Fixed::with_stage_shift(9);
    }

    #[test]
    fn trace_has_three_stages() {
        let f = Fft64Fixed::new();
        let x = [Cplx::new(1, 0); 64];
        let (_, trace) = f.run_with_trace(&x);
        assert_eq!(trace.len(), FFT64_STAGES);
    }
}
