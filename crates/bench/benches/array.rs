//! Raw array-stepping throughput: how many simulated cycles per second
//! `Array::step` sustains on a loaded basestation-worker array (a resident
//! FFT64 plus an 8-finger multiplexed despreader).
//!
//! Two workload shapes, each measured on the event-driven scheduler and on
//! the retained scan-the-world reference stepper:
//!
//! * `saturated` — input queues never run dry, every object fires as often
//!   as the token handshake allows. This is the worst case for scheduling
//!   (nothing to skip) and bounds the per-fire overhead.
//! * `rate_matched` — data arrives at the over-the-air rate while the array
//!   clock runs free, the regime the paper's terminals actually operate in
//!   (an XPP clocked at tens of MHz against 3.84 Mcps W-CDMA chips and
//!   250 kbaud OFDM symbols spends most cycles waiting for data). Idle
//!   cycles cost the scheduler almost nothing but cost the scan the full
//!   object sweep.
//!
//! The ratios are recorded in `BENCH_ARRAY.json` and EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sdr_ofdm::xpp_map::fft64_netlist;
use sdr_wcdma::xpp_map::despreader_multiplexed_netlist;
use xpp_array::{Array, ConfigId, Word};

/// Cycles stepped per measured iteration (both workload shapes).
pub const CYCLES: u64 = 20_000;

/// Rate-matched shape: bursts per iteration and array cycles per burst.
const SLOTS: u64 = 5;
const SLOT_CYCLES: u64 = CYCLES / SLOTS;

fn stream(seed: i32, n: i32) -> impl Iterator<Item = Word> {
    (0..n).map(move |i| Word::new(((i * 131 + seed * 7) % 4096) - 2048))
}

/// Builds an array with both workload configurations resident and fully
/// loaded (configuration-bus phase finished), but no data queued.
fn loaded_array() -> (Array, ConfigId, ConfigId) {
    let mut array = Array::xpp64a();
    let fft = array.configure(&fft64_netlist(2)).expect("fft64 placement");
    let dsp = array
        .configure(&despreader_multiplexed_netlist(8, 32))
        .expect("despreader placement");
    while !(array.is_running(fft) && array.is_running(dsp)) {
        array.step();
    }
    (array, fft, dsp)
}

/// Queues enough tokens on every input port to keep the array busy for the
/// whole measured window.
fn saturated_array() -> Array {
    let (mut array, fft, dsp) = loaded_array();
    array
        .push_input(fft, "i_in", stream(1, 28_000))
        .expect("fft i_in");
    array
        .push_input(fft, "q_in", stream(2, 28_000))
        .expect("fft q_in");
    array
        .push_input(dsp, "i_in", stream(3, 28_000))
        .expect("dsp i_in");
    array
        .push_input(dsp, "q_in", stream(4, 28_000))
        .expect("dsp q_in");
    array
}

/// One measured iteration of the rate-matched shape: per slot, a chip burst
/// for the despreader and one OFDM symbol for the FFT, then a fixed slot's
/// worth of array cycles (the real-time clock keeps ticking whether or not
/// data is present).
fn run_rate_matched(mut array: Array, fft: ConfigId, dsp: ConfigId) -> xpp_array::ArrayStats {
    for slot in 0..SLOTS {
        let seed = slot as i32;
        array
            .push_input(dsp, "i_in", stream(seed, 128))
            .expect("dsp i_in");
        array
            .push_input(dsp, "q_in", stream(seed + 7, 128))
            .expect("dsp q_in");
        array
            .push_input(fft, "i_in", stream(seed + 13, 64))
            .expect("fft i_in");
        array
            .push_input(fft, "q_in", stream(seed + 29, 64))
            .expect("fft q_in");
        array.run(SLOT_CYCLES);
    }
    array.stats()
}

fn bench_array_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("array_step");
    g.bench_function("event_driven_saturated", |b| {
        b.iter_batched(
            saturated_array,
            |mut a| {
                a.run(CYCLES);
                a.stats()
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("reference_saturated", |b| {
        b.iter_batched(
            || xpp_array::array::with_reference_stepper(saturated_array),
            |mut a| {
                a.run(CYCLES);
                a.stats()
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("event_driven_rate_matched", |b| {
        b.iter_batched(
            loaded_array,
            |(a, fft, dsp)| run_rate_matched(a, fft, dsp),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("reference_rate_matched", |b| {
        b.iter_batched(
            || xpp_array::array::with_reference_stepper(loaded_array),
            |(a, fft, dsp)| run_rate_matched(a, fft, dsp),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

/// Not a measurement: asserts the two steppers produce identical stats on
/// both workload shapes, so the speedup numbers always compare like for
/// like.
fn bench_sanity(c: &mut Criterion) {
    c.bench_function("array_step/equivalence_check", |b| {
        b.iter_batched(
            || {
                (
                    saturated_array(),
                    xpp_array::array::with_reference_stepper(saturated_array),
                    loaded_array(),
                    xpp_array::array::with_reference_stepper(loaded_array),
                )
            },
            |(mut fast, mut slow, burst_fast, burst_slow)| {
                fast.run(CYCLES);
                slow.run(CYCLES);
                assert_eq!(fast.stats(), slow.stats());
                let (a, fft, dsp) = burst_fast;
                let (b2, fft2, dsp2) = burst_slow;
                assert_eq!(
                    run_rate_matched(a, fft, dsp),
                    run_rate_matched(b2, fft2, dsp2)
                );
            },
            BatchSize::LargeInput,
        )
    });
}

criterion_group! {
    name = array_benches;
    config = Criterion::default().sample_size(10);
    targets = bench_array_step, bench_sanity
}
criterion_main!(array_benches);
