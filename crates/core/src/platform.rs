//! The SDR evaluation platform (paper Fig. 11): microcontroller/DSP,
//! dedicated hardware and the reconfigurable array behind streaming
//! interconnect.
//!
//! The physical board (QuickMIPS µC, DSP slot, streaming FPGA, XPP-64A)
//! exists to compose the three resource classes; [`SdrPlatform`] provides
//! the same composition in simulation: an [`Array`] instance, a
//! [`DspModel`], a registry of [`DedicatedBlock`]s, and aggregate
//! reporting (throughput, MIPS demand, energy).

use crate::dsp::DspModel;
use std::collections::BTreeMap;
use xpp_array::power::{EnergyModel, PowerReport};
use xpp_array::{Array, ArrayStats};

/// The paper's headline array clock for the 18-finger rake scenario.
pub const ARRAY_CLOCK_HZ: f64 = 69.12e6;

/// A fixed-function hardware block with a cost annotation.
#[derive(Debug, Clone, PartialEq)]
pub struct DedicatedBlock {
    /// Block name.
    pub name: String,
    /// Clock cycles consumed per processed item (chip, bit, sample…).
    pub cycles_per_item: f64,
    /// Active power in milliwatts at the block's clock.
    pub power_mw: f64,
}

impl DedicatedBlock {
    /// Creates a block descriptor.
    pub fn new(name: impl Into<String>, cycles_per_item: f64, power_mw: f64) -> Self {
        DedicatedBlock {
            name: name.into(),
            cycles_per_item,
            power_mw,
        }
    }
}

/// Aggregate platform report.
#[derive(Debug, Clone)]
pub struct PlatformReport {
    /// Array activity counters.
    pub array_stats: ArrayStats,
    /// Array energy at the platform clock.
    pub array_power: PowerReport,
    /// DSP instructions charged.
    pub dsp_instructions: u64,
    /// DSP MIPS demand over the simulated array time.
    pub dsp_demand_mips: f64,
    /// Items processed per dedicated block.
    pub dedicated_items: BTreeMap<String, u64>,
}

/// The heterogeneous SDR platform.
///
/// # Example
///
/// ```
/// use sdr_core::platform::SdrPlatform;
///
/// let platform = SdrPlatform::evaluation_board();
/// assert!(platform.dedicated("viterbi").is_some());
/// assert_eq!(platform.array.geometry().alu_paes, 64);
/// ```
#[derive(Debug)]
pub struct SdrPlatform {
    /// The reconfigurable array.
    pub array: Array,
    /// The DSP model.
    pub dsp: DspModel,
    /// Array clock in Hz.
    pub clock_hz: f64,
    dedicated: Vec<DedicatedBlock>,
    dedicated_items: BTreeMap<String, u64>,
    energy: EnergyModel,
}

impl SdrPlatform {
    /// Builds the Fig. 11 evaluation platform: an XPP-64A, the reference
    /// 1600-MIPS DSP, and the dedicated blocks of the two receivers.
    pub fn evaluation_board() -> Self {
        SdrPlatform {
            array: Array::xpp64a(),
            dsp: DspModel::reference_200mhz(),
            clock_hz: ARRAY_CLOCK_HZ,
            dedicated: vec![
                DedicatedBlock::new("scrambling-code-gen", 1.0, 2.0),
                DedicatedBlock::new("ovsf-code-gen", 1.0, 1.0),
                DedicatedBlock::new("framing-sync", 1.0, 3.0),
                DedicatedBlock::new("viterbi", 4.0, 25.0),
            ],
            dedicated_items: BTreeMap::new(),
            energy: EnergyModel::hcmos9_130nm(),
        }
    }

    /// Looks up a dedicated block by name.
    pub fn dedicated(&self, name: &str) -> Option<&DedicatedBlock> {
        self.dedicated.iter().find(|b| b.name == name)
    }

    /// Registers another dedicated block.
    pub fn add_dedicated(&mut self, block: DedicatedBlock) {
        self.dedicated.push(block);
    }

    /// Charges `items` of work to a dedicated block.
    ///
    /// # Panics
    ///
    /// Panics if the block is unknown (register it first).
    pub fn charge_dedicated(&mut self, name: &str, items: u64) {
        assert!(
            self.dedicated.iter().any(|b| b.name == name),
            "unknown dedicated block {name:?}"
        );
        *self.dedicated_items.entry(name.to_string()).or_insert(0) += items;
    }

    /// Items charged to a block so far.
    pub fn dedicated_item_count(&self, name: &str) -> u64 {
        self.dedicated_items.get(name).copied().unwrap_or(0)
    }

    /// Aggregates the platform state into a report.
    pub fn report(&self) -> PlatformReport {
        let stats = self.array.stats();
        let array_power = self
            .energy
            .report(&stats, self.array.geometry(), self.clock_hz);
        let window = if self.clock_hz > 0.0 {
            stats.cycles as f64 / self.clock_hz
        } else {
            0.0
        };
        let dsp_demand = if window > 0.0 {
            self.dsp.demand_mips_over(window)
        } else {
            0.0
        };
        PlatformReport {
            array_stats: stats,
            array_power,
            dsp_instructions: self.dsp.total_instructions(),
            dsp_demand_mips: dsp_demand,
            dedicated_items: self.dedicated_items.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpp_array::{AluOp, NetlistBuilder, Word};

    #[test]
    fn board_has_the_paper_blocks() {
        let p = SdrPlatform::evaluation_board();
        for name in [
            "scrambling-code-gen",
            "ovsf-code-gen",
            "framing-sync",
            "viterbi",
        ] {
            assert!(p.dedicated(name).is_some(), "missing {name}");
        }
        assert!((p.dsp.mips() - 1600.0).abs() < 1e-9);
        assert!((p.clock_hz - 69.12e6).abs() < 1.0);
    }

    #[test]
    fn dedicated_charging_accumulates() {
        let mut p = SdrPlatform::evaluation_board();
        p.charge_dedicated("viterbi", 100);
        p.charge_dedicated("viterbi", 50);
        assert_eq!(p.dedicated_item_count("viterbi"), 150);
        assert_eq!(p.dedicated_item_count("framing-sync"), 0);
    }

    #[test]
    #[should_panic]
    fn unknown_block_rejected() {
        SdrPlatform::evaluation_board().charge_dedicated("nonexistent", 1);
    }

    #[test]
    fn report_combines_array_and_dsp() {
        let mut p = SdrPlatform::evaluation_board();
        // Run a small kernel on the platform's array.
        let mut nl = NetlistBuilder::new("k");
        let x = nl.input("x");
        let k = nl.constant(Word::new(3));
        let y = nl.alu(AluOp::Mul, x, k);
        nl.output("y", y);
        let cfg = p.array.configure(&nl.build().unwrap()).unwrap();
        p.array
            .push_input(cfg, "x", (0..64).map(Word::new))
            .unwrap();
        p.array.run_until_idle(10_000).unwrap();
        p.dsp.charge("control", 10_000);
        p.charge_dedicated("framing-sync", 64);

        let r = p.report();
        assert!(r.array_stats.cycles > 0);
        assert!(r.array_power.total_nj() > 0.0);
        assert_eq!(r.dsp_instructions, 10_000);
        assert!(r.dsp_demand_mips > 0.0);
        assert_eq!(r.dedicated_items["framing-sync"], 64);
    }
}
