//! Quickstart: build a configuration, load it onto a simulated XPP-64A,
//! stream data through it, and inspect the activity statistics.
//!
//! Run with: `cargo run --example quickstart`

use xpp_sdr::xpp::{AluOp, Array, CounterCfg, NetlistBuilder, UnaryOp, Word};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small signal-processing configuration: scale a sample stream by a
    // Q4 coefficient and accumulate energy over blocks of 8.
    let mut nl = NetlistBuilder::new("quickstart");
    let x = nl.input("x");
    let scaled = nl.unary(UnaryOp::MulKShr(Word::new(13), 4), x); // ×13/16
    let squared = {
        // Square via self-multiplication: fan the stream into both inputs.
        let (in0, in1, out) = nl.alu_deferred(AluOp::Mul);
        nl.wire(scaled, in0);
        nl.wire(scaled, in1);
        out
    };
    let ctr = nl.counter(CounterCfg::modulo(8));
    let last = nl.unary(UnaryOp::EqK(Word::new(7)), ctr.value);
    let dump = nl.to_event(last);
    let energy = nl.accum_dump(squared, dump);
    nl.output("energy", energy);

    // Load it onto the array; loading takes configuration-bus cycles.
    let mut array = Array::xpp64a();
    let cfg = array.configure(&nl.build()?)?;
    println!(
        "configuration {cfg} placed: {:?}",
        array.placement(cfg)?.counts
    );

    // Stream 32 samples (4 blocks of 8) and run to quiescence.
    array.push_input(cfg, "x", (1..=32).map(Word::new))?;
    let cycles = array.run_until_idle(10_000)?;
    let energies: Vec<i32> = array
        .drain_output(cfg, "energy")?
        .iter()
        .map(|w| w.value())
        .collect();
    println!("block energies: {energies:?}");
    println!(
        "ran {cycles} cycles; {} firings total ({:.2} per cycle)",
        array.stats().total_fires(),
        array.stats().fires_per_cycle()
    );
    Ok(())
}
