//! Per-worker LRU cache of built netlists.
//!
//! Building and placing a netlist is the expensive part of activating a
//! configuration; streaming it over the serial configuration bus is the
//! cheap-but-nonzero part (the paper's §4 motivation for configuration
//! caching). Each worker keeps the netlists it has built, keyed by
//! configuration name, so a terminal re-entering a state it has visited
//! before — or a *different* terminal requesting the same standard's
//! kernel — pays only the bus cycles, never a rebuild.

use xpp_array::Netlist;

/// Outcome of a cache lookup, consumed by the worker's activation path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lookup {
    /// Index of the entry (valid until the next mutating call).
    pub index: usize,
    /// The netlist was already cached; no rebuild happened.
    pub hit: bool,
    /// An LRU entry was dropped to make room.
    pub evicted: bool,
}

#[derive(Debug)]
struct Entry {
    name: String,
    netlist: Netlist,
    last_used: u64,
}

/// A bounded least-recently-used cache of built netlists.
#[derive(Debug)]
pub struct ConfigCache {
    capacity: usize,
    entries: Vec<Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ConfigCache {
    /// Creates an empty cache holding at most `capacity` netlists.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        ConfigCache {
            capacity,
            entries: Vec::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Returns the cached netlist for `name`, building (and caching) it
    /// with `build` on a miss. The LRU entry is evicted when full.
    pub fn get_or_build<F: FnOnce() -> Netlist>(&mut self, name: &str, build: F) -> Lookup {
        self.tick += 1;
        if let Some(index) = self.entries.iter().position(|e| e.name == name) {
            self.hits += 1;
            self.entries[index].last_used = self.tick;
            return Lookup {
                index,
                hit: true,
                evicted: false,
            };
        }
        self.misses += 1;
        let mut evicted = false;
        if self.entries.len() == self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("cache is full, so nonempty");
            self.entries.swap_remove(lru);
            self.evictions += 1;
            evicted = true;
        }
        self.entries.push(Entry {
            name: name.to_string(),
            netlist: build(),
            last_used: self.tick,
        });
        Lookup {
            index: self.entries.len() - 1,
            hit: false,
            evicted,
        }
    }

    /// The netlist stored at `index` (from the last [`Lookup`]).
    pub fn netlist(&self, index: usize) -> &Netlist {
        &self.entries[index].netlist
    }

    /// Whether `name` is currently cached (no LRU touch).
    pub fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|e| e.name == name)
    }

    /// Number of cached netlists.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum number of cached netlists.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups served without a rebuild.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to build the netlist.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries dropped to make room.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpp_array::{NetlistBuilder, UnaryOp};

    fn tiny(name: &str) -> Netlist {
        let mut nl = NetlistBuilder::new(name);
        let x = nl.input("x");
        let y = nl.unary(UnaryOp::Abs, x);
        nl.output("y", y);
        nl.build().expect("tiny netlist is well formed")
    }

    #[test]
    fn second_lookup_is_a_hit_without_rebuild() {
        let mut cache = ConfigCache::new(4);
        let mut builds = 0;
        let first = cache.get_or_build("a", || {
            builds += 1;
            tiny("a")
        });
        assert!(!first.hit);
        let second = cache.get_or_build("a", || {
            builds += 1;
            tiny("a")
        });
        assert!(second.hit);
        assert_eq!(builds, 1, "hit must not rebuild");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut cache = ConfigCache::new(2);
        cache.get_or_build("a", || tiny("a"));
        cache.get_or_build("b", || tiny("b"));
        cache.get_or_build("a", || tiny("a")); // touch a; b is now LRU
        let l = cache.get_or_build("c", || tiny("c"));
        assert!(l.evicted);
        assert!(cache.contains("a") && cache.contains("c") && !cache.contains("b"));
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn lookup_index_addresses_the_right_netlist() {
        let mut cache = ConfigCache::new(2);
        let a = cache.get_or_build("a", || tiny("a"));
        assert_eq!(cache.netlist(a.index).name(), "a");
        let b = cache.get_or_build("b", || tiny("b"));
        assert_eq!(cache.netlist(b.index).name(), "b");
        let a2 = cache.get_or_build("a", || tiny("a"));
        assert_eq!(cache.netlist(a2.index).name(), "a");
    }
}
