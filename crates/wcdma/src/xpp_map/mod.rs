//! The rake's word-level kernels expressed as XPP configurations.
//!
//! These are the paper's Figures 5–7: the descrambler, the despreader and
//! the channel-correction unit, built from ALU/register/RAM objects and
//! verified *bit-exact* against the golden models in [`crate::rake::finger`]
//! and [`crate::symbols`].
//!
//! Each kernel comes as a netlist constructor (for embedding into a larger
//! platform) plus a self-contained wrapper owning a private array instance
//! (for tests and benchmarks).

pub mod corrector;
pub mod descrambler;
pub mod despreader;

pub use corrector::{
    corrector_netlist, sttd_corrector_netlist, ArrayCorrector, ArraySttdCorrector,
};
pub use descrambler::{descrambler_netlist, ArrayDescrambler};
pub use despreader::{
    despreader_multiplexed_netlist, despreader_single_netlist, ArrayDespreader,
    ArrayMultiplexedDespreader, MIN_MULTIPLEXED_FINGERS,
};

use sdr_dsp::Cplx;
use xpp_array::{Netlist, Word};

/// Registry of the crate's array kernels: every `*_netlist` constructor,
/// addressable by a stable identity instead of a function pointer.
///
/// A configuration manager keys its compiled-config cache by
/// [`config_name`](WcdmaKernel::config_name) — kernel id plus every
/// parameter that changes the generated netlist — and calls
/// [`build`](WcdmaKernel::build) only on a cache miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WcdmaKernel {
    /// Fig. 5 complex descrambler.
    Descrambler,
    /// Fig. 6 single-code despreader.
    Despreader { sf: usize, code_index: usize },
    /// Fig. 6 finger-multiplexed despreader.
    MultiplexedDespreader { fingers: usize, sf: usize },
    /// Fig. 7 MRC channel corrector.
    Corrector { fingers: usize },
    /// Fig. 7 STTD-decoding corrector.
    SttdCorrector,
}

impl WcdmaKernel {
    /// Stable cache key: kernel id plus every netlist-shaping parameter.
    pub fn config_name(&self) -> String {
        match self {
            WcdmaKernel::Descrambler => "fig5-descrambler".to_string(),
            WcdmaKernel::Despreader { sf, code_index } => {
                format!("fig6-despreader-sf{sf}-c{code_index}")
            }
            WcdmaKernel::MultiplexedDespreader { fingers, sf } => {
                format!("fig6-despreader-mux{fingers}-sf{sf}")
            }
            WcdmaKernel::Corrector { fingers } => format!("fig7-corrector-f{fingers}"),
            WcdmaKernel::SttdCorrector => "fig7-sttd-corrector".to_string(),
        }
    }

    /// Builds the kernel's netlist (the expensive step a compiled-config
    /// cache avoids repeating).
    pub fn build(&self) -> Netlist {
        match *self {
            WcdmaKernel::Descrambler => descrambler_netlist(),
            WcdmaKernel::Despreader { sf, code_index } => despreader_single_netlist(sf, code_index),
            WcdmaKernel::MultiplexedDespreader { fingers, sf } => {
                despreader_multiplexed_netlist(fingers, sf)
            }
            WcdmaKernel::Corrector { fingers } => corrector_netlist(fingers),
            WcdmaKernel::SttdCorrector => sttd_corrector_netlist(),
        }
    }
}

/// Splits a complex integer stream into parallel I and Q word streams.
pub(crate) fn split_iq(samples: &[Cplx<i32>]) -> (Vec<Word>, Vec<Word>) {
    (
        samples.iter().map(|c| Word::new(c.re)).collect(),
        samples.iter().map(|c| Word::new(c.im)).collect(),
    )
}

/// Zips parallel I and Q word streams back into complex samples.
///
/// # Panics
///
/// Panics if the streams have different lengths.
pub(crate) fn zip_iq(i: &[Word], q: &[Word]) -> Vec<Cplx<i32>> {
    assert_eq!(i.len(), q.len(), "I/Q stream length mismatch");
    i.iter()
        .zip(q)
        .map(|(a, b)| Cplx::new(a.value(), b.value()))
        .collect()
}
