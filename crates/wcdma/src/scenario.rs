//! Rake-finger scenario model (paper Table 1).
//!
//! The paper implements a *single physical finger*, time-multiplexed over
//! every (base station × multipath × channel) combination: "By repeating the
//! descrambling and despreading operation on a single chip over multiple
//! scrambling and spreading codes and time multiplexing the resulting data
//! stream, the single physical finger thus corresponds to an implementation
//! of 18 rake fingers. The minimum operational frequency ... is thus
//! 18 × 3.84 MHz = 69.12 MHz."

/// The UMTS/W-CDMA chip rate.
pub const CHIP_RATE_HZ: f64 = 3.84e6;

/// The paper's design maximum: 18 virtual fingers on one physical finger.
pub const MAX_VIRTUAL_FINGERS: u32 = 18;

/// The paper's headline clock: 18 × 3.84 MHz.
pub const FULL_RATE_MHZ: f64 = 69.12;

/// One operational scenario from Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FingerScenario {
    /// Base stations in the active (soft-handover) set.
    pub basestations: u32,
    /// Multipath components tracked per base station.
    pub multipaths: u32,
    /// Dedicated channels received per base station.
    pub channels: u32,
}

impl FingerScenario {
    /// Creates a scenario.
    pub fn new(basestations: u32, multipaths: u32, channels: u32) -> Self {
        FingerScenario {
            basestations,
            multipaths,
            channels,
        }
    }

    /// Virtual fingers required: one per (base station, multipath, channel).
    pub fn fingers(&self) -> u32 {
        self.basestations * self.multipaths * self.channels
    }

    /// Clock frequency (MHz) of the single time-multiplexed physical finger.
    pub fn required_mhz(&self) -> f64 {
        self.fingers() as f64 * CHIP_RATE_HZ / 1e6
    }

    /// True if the scenario needs the full 69.12 MHz clock (the shaded rows
    /// of Table 1).
    pub fn needs_full_rate(&self) -> bool {
        self.fingers() >= MAX_VIRTUAL_FINGERS
    }

    /// True if the scenario fits the paper's single-physical-finger design.
    pub fn feasible(&self) -> bool {
        self.fingers() <= MAX_VIRTUAL_FINGERS
    }
}

/// Enumerates the Table 1 grid: base stations and multipaths from 1 to 6,
/// single dedicated channel — plus the dual-channel column for small sets.
pub fn table1_scenarios() -> Vec<FingerScenario> {
    let mut rows = Vec::new();
    for bs in 1..=6u32 {
        for mp in 1..=6u32 {
            rows.push(FingerScenario::new(bs, mp, 1));
        }
    }
    for bs in 1..=3u32 {
        for mp in 1..=3u32 {
            rows.push(FingerScenario::new(bs, mp, 2));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_scenario_is_18_fingers_at_69_mhz() {
        let s = FingerScenario::new(6, 3, 1);
        assert_eq!(s.fingers(), 18);
        assert!((s.required_mhz() - FULL_RATE_MHZ).abs() < 1e-9);
        assert!(s.needs_full_rate());
        assert!(s.feasible());
    }

    #[test]
    fn small_scenarios_run_slower() {
        let s = FingerScenario::new(2, 3, 1);
        assert_eq!(s.fingers(), 6);
        assert!((s.required_mhz() - 23.04).abs() < 1e-9);
        assert!(!s.needs_full_rate());
    }

    #[test]
    fn oversized_scenarios_are_infeasible() {
        let s = FingerScenario::new(6, 6, 1);
        assert_eq!(s.fingers(), 36);
        assert!(!s.feasible());
    }

    #[test]
    fn dual_channel_doubles_fingers() {
        let one = FingerScenario::new(3, 3, 1);
        let two = FingerScenario::new(3, 3, 2);
        assert_eq!(two.fingers(), 2 * one.fingers());
        assert_eq!(two.fingers(), 18);
        assert!(two.feasible());
    }

    #[test]
    fn table_covers_grid() {
        let t = table1_scenarios();
        assert_eq!(t.len(), 36 + 9);
        assert!(t.iter().any(|s| s.fingers() == 18));
        let full: Vec<_> = t
            .iter()
            .filter(|s| s.needs_full_rate() && s.feasible())
            .collect();
        assert!(!full.is_empty());
    }
}
