//! The radix-4 FFT-64 on the array (paper Fig. 9).
//!
//! Faithful to the figure's structure:
//!
//! * 64 complex samples stream into a dual-ported data RAM (one RAM-PAE per
//!   component),
//! * "Read and write addresses are stored in circular lookup tables, which
//!   are implemented as preloaded FIFOs" — ring FIFOs hold the complete
//!   256-entry read/write address sequences (3 butterfly passes + the
//!   load/unload phases),
//! * "Twiddle factors for all 3 stages of the FFT64 are also stored in a
//!   lookup table" — six ring FIFOs hold the 48 per-butterfly twiddles,
//! * the radix-4 kernel is a pipeline of ALU objects delivering one value
//!   per cycle; each stage output is scaled (`ShrK`) per the paper,
//! * passes sequence *themselves*: every 64th RAM write emits a wrap event
//!   that releases 64 read credits, so a pass cannot read data the previous
//!   pass has not written (in-place DIF is hazard-free in read order),
//! * the final unload reads digit-reversed addresses, delivering the
//!   spectrum in natural order.
//!
//! The datapath is bit-exact with [`sdr_dsp::fft::Fft64Fixed`]: the
//! twiddle product is `Mul`/`Sub`/`AddK(256)`/`ShrK(9)` (= round-half-up
//! Q0.9) and the stage scaling is a truncating `ShrK`.

use crate::xpp_map::{split_iq, zip_iq};
use sdr_dsp::fft::{digit_reversed_index_64, twiddle_q, TWIDDLE_FRAC_BITS};
use sdr_dsp::Cplx;
use xpp_array::{
    AluOp, Array, ConfigId, CounterCfg, DataOut, Netlist, NetlistBuilder, Result, UnaryOp, Word,
    WORD_MIN,
};

/// Butterfly read/write address sequence for the three in-place passes, in
/// the exact order [`Fft64Fixed`] visits them.
fn pass_addresses() -> Vec<usize> {
    let mut seq = Vec::with_capacity(192);
    for stage in 0..3 {
        let m = 64 >> (2 * stage);
        let q = m / 4;
        for base in (0..64).step_by(m) {
            for k in 0..q {
                seq.push(base + k);
                seq.push(base + k + q);
                seq.push(base + k + 2 * q);
                seq.push(base + k + 3 * q);
            }
        }
    }
    seq
}

/// Per-butterfly twiddles (w1, w2, w3) in pass order.
fn twiddle_sequence() -> Vec<[Cplx<i32>; 3]> {
    let mut seq = Vec::with_capacity(48);
    for stage in 0..3 {
        let m = 64 >> (2 * stage);
        let q = m / 4;
        for _base in (0..64).step_by(m) {
            for k in 0..q {
                seq.push([twiddle_q(m, k), twiddle_q(m, 2 * k), twiddle_q(m, 3 * k)]);
            }
        }
    }
    seq
}

fn words(vals: impl IntoIterator<Item = i32>) -> Vec<Word> {
    vals.into_iter().map(Word::new).collect()
}

/// Builds the Fig. 9 FFT-64 netlist with the given per-stage scaling shift
/// (the paper uses 2; the OFDM receiver uses 1 — see `rx`).
///
/// External ports: `i_in`/`q_in` accept frames of 64 samples; `i_out`/
/// `q_out` deliver 64 spectrum values per frame in natural order.
pub fn fft64_netlist(stage_shift: u32) -> Netlist {
    let mut nl = NetlistBuilder::new(format!("fig9-fft64-s{stage_shift}"));
    build_fft64(&mut nl, stage_shift, "i_in", "q_in", "i_out", "q_out");
    nl.build().expect("fft64 netlist is well formed")
}

/// Splices the complete Fig. 9 FFT block into an existing netlist builder
/// (used by the Fig. 10 resident configuration, which also carries the
/// down-sampler).
pub(crate) fn build_fft64(
    nl: &mut NetlistBuilder,
    stage_shift: u32,
    i_in_name: &str,
    q_in_name: &str,
    i_out_name: &str,
    q_out_name: &str,
) {
    // Event fan-outs reach consumers at different pipeline depths (e.g. the
    // serial→parallel demux pair); deeper channels absorb the skew.
    nl.set_default_capacity(4);

    let i_in_raw = nl.input(i_in_name);
    let q_in_raw = nl.input(q_in_name);

    // Frame admission control: the next frame's 64-sample load may only
    // proceed once the previous frame's unload has drained the RAM (the
    // ping is the unload, the pong is the load — with one in-place buffer
    // the two must strictly alternate). One initial go token admits the
    // first frame.
    let in_pace = nl.counter(CounterCfg::modulo(64));
    let in_credit = nl.counter(CounterCfg {
        start: 0,
        step: 1,
        period: 64,
        gated: true,
    });
    nl.wire_ev_with(
        in_pace.wrap,
        in_credit.go.expect("gated counter has a go port"),
        2,
        vec![true],
    );
    let in_credit_true = nl.unary(UnaryOp::GeK(Word::new(WORD_MIN)), in_credit.value);
    let in_credit_ev = nl.to_event(in_credit_true);
    let i_in = nl.gate(in_credit_ev, i_in_raw);
    let q_in = nl.gate(in_credit_ev, q_in_raw);

    // ---- address & phase lookup tables (preloaded ring FIFOs) ---------
    let passes = pass_addresses();
    let mut wr_addr_seq: Vec<i32> = (0..64).collect();
    wr_addr_seq.extend(passes.iter().map(|&a| a as i32));
    let wr_addr = nl.ring_fifo(words(wr_addr_seq));

    let mut wr_sel_seq = vec![1i32; 64]; // 1 = load from input
    wr_sel_seq.extend(std::iter::repeat_n(0, 192));
    let wr_sel_words = nl.ring_fifo(words(wr_sel_seq));
    let wr_sel = nl.to_event(wr_sel_words);

    let mut rd_addr_seq: Vec<i32> = passes.iter().map(|&a| a as i32).collect();
    rd_addr_seq.extend((0..64).map(|n| digit_reversed_index_64(n) as i32));
    let rd_addr_ring = nl.ring_fifo(words(rd_addr_seq));

    let mut rd_sel_seq = vec![0i32; 192]; // 0 = butterfly, 1 = unload
    rd_sel_seq.extend(std::iter::repeat_n(1, 64));
    let rd_sel_words = nl.ring_fifo(words(rd_sel_seq));
    let rd_sel = nl.to_event(rd_sel_words);

    let tw = twiddle_sequence();
    let tw_ring = |nl: &mut NetlistBuilder, f: &dyn Fn(&[Cplx<i32>; 3]) -> i32| {
        let contents: Vec<Word> = tw.iter().map(|t| Word::new(f(t))).collect();
        nl.ring_fifo(contents)
    };
    let w1r = tw_ring(nl, &|t| t[0].re);
    let w1i = tw_ring(nl, &|t| t[0].im);
    let w2r = tw_ring(nl, &|t| t[1].re);
    let w2i = tw_ring(nl, &|t| t[1].im);
    let w3r = tw_ring(nl, &|t| t[2].re);
    let w3i = tw_ring(nl, &|t| t[2].im);

    // ---- data RAMs and the credit-gated read stream --------------------
    let ram_i = nl.ram(vec![]);
    let ram_q = nl.ram(vec![]);

    // Read credits: every 64th write wraps the pace counter, whose event
    // releases a burst of 64 read addresses.
    let pace = nl.counter(CounterCfg::modulo(64));
    let credit = nl.counter(CounterCfg {
        start: 0,
        step: 1,
        period: 64,
        gated: true,
    });
    nl.wire_ev(pace.wrap, credit.go.expect("gated counter has a go port"));
    let credit_true = nl.unary(UnaryOp::GeK(Word::new(WORD_MIN)), credit.value);
    let credit_ev = nl.to_event(credit_true);
    let rd_addr = nl.gate(credit_ev, rd_addr_ring);
    nl.wire(rd_addr, ram_i.rd_addr);
    nl.wire(rd_addr, ram_q.rd_addr);

    // Split the read streams into butterfly samples and unload output.
    let (bf_i, out_i) = nl.demux(rd_sel, ram_i.rd_data);
    let (bf_q, out_q) = nl.demux(rd_sel, ram_q.rd_data);
    nl.output(i_out_name, out_i);
    nl.output(q_out_name, out_q);

    // Count unloaded samples to admit the next frame's load.
    let unloaded = nl.unary(UnaryOp::GeK(Word::new(WORD_MIN)), out_i);
    let unloaded_ev = nl.to_event(unloaded);
    let _in_pace_sink = nl.gate(unloaded_ev, in_pace.value); // output unconnected

    // ---- serial → parallel (a, b, c, d) --------------------------------
    let phase = nl.counter(CounterCfg::modulo(4));
    let hi = nl.unary(UnaryOp::GeK(Word::new(2)), phase.value);
    let hi_ev = nl.to_event(hi);
    let tog = nl.counter(CounterCfg::modulo(2));
    let tog_true = nl.unary(UnaryOp::GeK(Word::new(1)), tog.value);
    let tog_ev = nl.to_event(tog_true);

    let (i01, i23) = nl.demux(hi_ev, bf_i);
    let (q01, q23) = nl.demux(hi_ev, bf_q);
    let (a_re, b_re) = nl.demux(tog_ev, i01);
    let (c_re, d_re) = nl.demux(tog_ev, i23);
    let (a_im, b_im) = nl.demux(tog_ev, q01);
    let (c_im, d_im) = nl.demux(tog_ev, q23);

    // ---- the radix-4 kernel --------------------------------------------
    let t0_re = nl.alu(AluOp::Add, a_re, c_re);
    let t1_re = nl.alu(AluOp::Sub, a_re, c_re);
    let t2_re = nl.alu(AluOp::Add, b_re, d_re);
    let t3_re = nl.alu(AluOp::Sub, b_re, d_re);
    let t0_im = nl.alu(AluOp::Add, a_im, c_im);
    let t1_im = nl.alu(AluOp::Sub, a_im, c_im);
    let t2_im = nl.alu(AluOp::Add, b_im, d_im);
    let t3_im = nl.alu(AluOp::Sub, b_im, d_im);

    // y0 = t0 + t2 (no twiddle), scaled.
    let y0_re = nl.alu(AluOp::Add, t0_re, t2_re);
    let y0_im = nl.alu(AluOp::Add, t0_im, t2_im);
    let y0_re = nl.unary(UnaryOp::ShrK(stage_shift), y0_re);
    let y0_im = nl.unary(UnaryOp::ShrK(stage_shift), y0_im);

    // y1 = t1 − j·t3 ; y2 = t0 − t2 ; y3 = t1 + j·t3.
    let y1_re = nl.alu(AluOp::Add, t1_re, t3_im);
    let y1_im = nl.alu(AluOp::Sub, t1_im, t3_re);
    let y2_re = nl.alu(AluOp::Sub, t0_re, t2_re);
    let y2_im = nl.alu(AluOp::Sub, t0_im, t2_im);
    let y3_re = nl.alu(AluOp::Sub, t1_re, t3_im);
    let y3_im = nl.alu(AluOp::Add, t1_im, t3_re);

    // Twiddle complex multiply, bit-exact with `cmul_twiddle` + stage shift.
    let cmul = |nl: &mut NetlistBuilder,
                vr: DataOut,
                vi: DataOut,
                wr: DataOut,
                wi: DataOut|
     -> (DataOut, DataOut) {
        let p1 = nl.alu(AluOp::Mul, vr, wr);
        let p2 = nl.alu(AluOp::Mul, vi, wi);
        let p3 = nl.alu(AluOp::Mul, vr, wi);
        let p4 = nl.alu(AluOp::Mul, vi, wr);
        let re = nl.alu(AluOp::Sub, p1, p2);
        let im = nl.alu(AluOp::Add, p3, p4);
        let half = Word::new(1 << (TWIDDLE_FRAC_BITS - 1));
        let re = nl.unary(UnaryOp::AddK(half), re);
        let im = nl.unary(UnaryOp::AddK(half), im);
        let re = nl.unary(UnaryOp::ShrK(TWIDDLE_FRAC_BITS), re);
        let im = nl.unary(UnaryOp::ShrK(TWIDDLE_FRAC_BITS), im);
        let re = nl.unary(UnaryOp::ShrK(stage_shift), re);
        let im = nl.unary(UnaryOp::ShrK(stage_shift), im);
        (re, im)
    };
    let (z1_re, z1_im) = cmul(nl, y1_re, y1_im, w1r, w1i);
    let (z2_re, z2_im) = cmul(nl, y2_re, y2_im, w2r, w2i);
    let (z3_re, z3_im) = cmul(nl, y3_re, y3_im, w3r, w3i);

    // ---- parallel → serial (y0, z1, z2, z3) -----------------------------
    let phase_o = nl.counter(CounterCfg::modulo(4));
    let hi_o = nl.unary(UnaryOp::GeK(Word::new(2)), phase_o.value);
    let hi_o_ev = nl.to_event(hi_o);
    let tog_o = nl.counter(CounterCfg::modulo(2));
    let tog_o_true = nl.unary(UnaryOp::GeK(Word::new(1)), tog_o.value);
    let tog_o_ev = nl.to_event(tog_o_true);

    let m01_re = nl.merge(tog_o_ev, y0_re, z1_re);
    let m23_re = nl.merge(tog_o_ev, z2_re, z3_re);
    let bfout_re = nl.merge(hi_o_ev, m01_re, m23_re);
    let m01_im = nl.merge(tog_o_ev, y0_im, z1_im);
    let m23_im = nl.merge(tog_o_ev, z2_im, z3_im);
    let bfout_im = nl.merge(hi_o_ev, m01_im, m23_im);

    // ---- write side: load or butterfly write-back ----------------------
    let wr_val_i = nl.merge(wr_sel, bfout_re, i_in);
    let wr_val_q = nl.merge(wr_sel, bfout_im, q_in);
    nl.wire(wr_addr, ram_i.wr_addr);
    nl.wire(wr_addr, ram_q.wr_addr);
    nl.wire(wr_val_i, ram_i.wr_data);
    nl.wire(wr_val_q, ram_q.wr_data);

    // Pace the credit generator off the write stream.
    let wrote = nl.unary(UnaryOp::GeK(Word::new(WORD_MIN)), wr_val_i);
    let wrote_ev = nl.to_event(wrote);
    let _sink = nl.gate(wrote_ev, pace.value); // output unconnected: discard
}

/// The Fig. 9 FFT-64 on its own array instance.
///
/// # Example
///
/// ```
/// use sdr_dsp::{Cplx, fft::Fft64Fixed};
/// use sdr_ofdm::xpp_map::ArrayFft64;
///
/// # fn main() -> Result<(), xpp_array::Error> {
/// let mut hw = ArrayFft64::new(2)?; // the paper's >>2 scaling
/// let mut x = [Cplx::<i32>::ZERO; 64];
/// x[1] = Cplx::new(400, -100);
/// let spectrum = hw.run(&x)?;
/// assert_eq!(spectrum, Fft64Fixed::with_stage_shift(2).run(&x)); // bit-exact
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ArrayFft64 {
    array: Array,
    cfg: ConfigId,
    stage_shift: u32,
}

impl ArrayFft64 {
    /// Instantiates the FFT with the given per-stage scaling shift.
    ///
    /// # Errors
    ///
    /// Returns an error if placement fails.
    pub fn new(stage_shift: u32) -> Result<Self> {
        let mut array = Array::xpp64a();
        let cfg = array.configure(&fft64_netlist(stage_shift))?;
        Ok(ArrayFft64 {
            array,
            cfg,
            stage_shift,
        })
    }

    /// The configured per-stage shift.
    pub fn stage_shift(&self) -> u32 {
        self.stage_shift
    }

    /// Transforms one 64-sample frame.
    ///
    /// # Errors
    ///
    /// Returns an error if the simulation stalls.
    pub fn run(&mut self, input: &[Cplx<i32>; 64]) -> Result<[Cplx<i32>; 64]> {
        let out = self.run_frames(&[*input])?;
        Ok(out[0])
    }

    /// Transforms a batch of frames back to back (the streaming mode the
    /// paper's pipeline sustains).
    ///
    /// # Errors
    ///
    /// Returns an error if the simulation stalls.
    pub fn run_frames(&mut self, frames: &[[Cplx<i32>; 64]]) -> Result<Vec<[Cplx<i32>; 64]>> {
        let mut i_all = Vec::with_capacity(frames.len() * 64);
        let mut q_all = Vec::with_capacity(frames.len() * 64);
        for f in frames {
            let (i, q) = split_iq(f);
            i_all.extend(i);
            q_all.extend(q);
        }
        self.array.push_input(self.cfg, "i_in", i_all)?;
        self.array.push_input(self.cfg, "q_in", q_all)?;
        let expect = frames.len() * 64;
        let budget = 3_000 * frames.len() as u64 + 10_000;
        self.array
            .run_until_output(self.cfg, "i_out", expect, budget)?;
        self.array.run_until_idle(10_000)?;
        let i_out = self.array.drain_output(self.cfg, "i_out")?;
        let q_out = self.array.drain_output(self.cfg, "q_out")?;
        let flat = zip_iq(&i_out, &q_out);
        Ok(flat
            .chunks_exact(64)
            .map(|c| {
                let mut buf = [Cplx::<i32>::ZERO; 64];
                buf.copy_from_slice(c);
                buf
            })
            .collect())
    }

    /// The underlying array.
    pub fn array(&self) -> &Array {
        &self.array
    }

    /// The configuration handle.
    pub fn config(&self) -> ConfigId {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdr_dsp::fft::Fft64Fixed;

    fn noisy_frame(seed: u32) -> [Cplx<i32>; 64] {
        let mut s = seed.wrapping_mul(2654435761).wrapping_add(1);
        let mut f = [Cplx::<i32>::ZERO; 64];
        for v in &mut f {
            s = s.wrapping_mul(1664525).wrapping_add(1013904223);
            let re = ((s >> 8) % 1024) as i32 - 512;
            s = s.wrapping_mul(1664525).wrapping_add(1013904223);
            let im = ((s >> 8) % 1024) as i32 - 512;
            *v = Cplx::new(re, im);
        }
        f
    }

    #[test]
    fn impulse_matches_golden() {
        let mut hw = ArrayFft64::new(2).unwrap();
        let mut x = [Cplx::<i32>::ZERO; 64];
        x[0] = Cplx::new(512, 0);
        let got = hw.run(&x).unwrap();
        let golden = Fft64Fixed::with_stage_shift(2).run(&x);
        assert_eq!(got, golden);
        assert!(got.iter().all(|v| *v == Cplx::new(8, 0)));
    }

    #[test]
    fn random_frames_match_golden_bit_exact() {
        let mut hw = ArrayFft64::new(2).unwrap();
        let golden = Fft64Fixed::with_stage_shift(2);
        for seed in 0..4 {
            let x = noisy_frame(seed);
            assert_eq!(hw.run(&x).unwrap(), golden.run(&x), "seed {seed}");
        }
    }

    #[test]
    fn stage_shift_one_matches_golden() {
        let mut hw = ArrayFft64::new(1).unwrap();
        let golden = Fft64Fixed::with_stage_shift(1);
        let x = noisy_frame(99);
        assert_eq!(hw.run(&x).unwrap(), golden.run(&x));
    }

    #[test]
    fn back_to_back_frames_stream_through_one_configuration() {
        let mut hw = ArrayFft64::new(2).unwrap();
        let golden = Fft64Fixed::with_stage_shift(2);
        let frames: Vec<[Cplx<i32>; 64]> = (10..14).map(noisy_frame).collect();
        let out = hw.run_frames(&frames).unwrap();
        for (f, x) in frames.iter().enumerate() {
            assert_eq!(out[f], golden.run(x), "frame {f}");
        }
        assert_eq!(hw.array().stats().configs_loaded, 1);
    }

    #[test]
    fn resource_footprint_fits_the_xpp64a() {
        let hw = ArrayFft64::new(2).unwrap();
        let p = hw.array().placement(hw.config()).unwrap();
        // 2 data RAMs + 4 address/phase rings + 6 twiddle rings = 12 of the
        // 16 RAM-PAEs — the paper's lookup-FIFO design fills the RAM columns.
        assert_eq!(p.counts.ram, 12);
        assert!(p.counts.alu <= 40, "ALU count {}", p.counts.alu);
        assert_eq!(p.counts.io, 4);
    }

    #[test]
    fn throughput_near_one_sample_per_cycle_per_pass() {
        let mut hw = ArrayFft64::new(2).unwrap();
        let frames: Vec<[Cplx<i32>; 64]> = (0..8).map(noisy_frame).collect();
        let before = hw.array().stats().cycles;
        hw.run_frames(&frames).unwrap();
        let cycles = hw.array().stats().cycles - before;
        // 256 RAM-write tokens per frame; the pipeline should stay within a
        // small constant factor of that.
        let per_frame = cycles / frames.len() as u64;
        assert!(per_frame < 1200, "FFT too slow: {per_frame} cycles/frame");
    }
}
