//! Activity-based energy/area model, standing in for the XPP-64A silicon
//! numbers (paper Fig. 12, 0.13 µm STMicroelectronics HCMOS9).
//!
//! The paper reports the device layout but no per-operation energies, so the
//! constants here are engineering estimates for a 0.13 µm standard-cell
//! datapath (documented per field). The experiments report *relative*
//! quantities — power of kernel A vs. kernel B, pipelined vs. stalled — which
//! are robust against the absolute calibration.

use crate::place::Geometry;
use crate::stats::ArrayStats;

/// Per-event energies in picojoules, plus leakage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy per simple ALU operation (add, compare, logic).
    pub pj_alu: f64,
    /// Energy per multiplier operation (24×24).
    pub pj_mul: f64,
    /// Energy per register-class firing (route, merge, counter step).
    pub pj_reg: f64,
    /// Energy per RAM read.
    pub pj_ram_read: f64,
    /// Energy per RAM write.
    pub pj_ram_write: f64,
    /// Energy per FIFO access.
    pub pj_fifo: f64,
    /// Energy per word crossing an I/O port.
    pub pj_io: f64,
    /// Energy per event-network firing.
    pub pj_event: f64,
    /// Energy per configuration-bus cycle.
    pub pj_config: f64,
    /// Leakage energy per PAE per cycle (dual-Vt HCMOS9 keeps this small).
    pub pj_leak_per_pae_cycle: f64,
}

impl EnergyModel {
    /// Estimates for the 0.13 µm HCMOS9 process the XPP-64A was fabricated
    /// in (dual-Vt, 1.2 V core).
    pub fn hcmos9_130nm() -> Self {
        EnergyModel {
            pj_alu: 6.0,
            pj_mul: 22.0,
            pj_reg: 1.5,
            pj_ram_read: 9.0,
            pj_ram_write: 10.0,
            pj_fifo: 8.0,
            pj_io: 12.0,
            pj_event: 0.4,
            pj_config: 15.0,
            pj_leak_per_pae_cycle: 0.05,
        }
    }

    /// Evaluates the model over a statistics snapshot.
    ///
    /// `clock_hz` converts the simulated cycle count into wall time so that
    /// average power can be reported; `paes` is the geometry size leaking
    /// every cycle.
    pub fn report(&self, stats: &ArrayStats, geometry: Geometry, clock_hz: f64) -> PowerReport {
        let dynamic_pj = stats.alu_fires as f64 * self.pj_alu
            + stats.mul_fires as f64 * self.pj_mul
            + stats.reg_fires as f64 * self.pj_reg
            + stats.ram_reads as f64 * self.pj_ram_read
            + stats.ram_writes as f64 * self.pj_ram_write
            + stats.fifo_fires as f64 * self.pj_fifo
            + stats.io_words as f64 * self.pj_io
            + stats.event_fires as f64 * self.pj_event;
        let leakage_pj =
            stats.cycles as f64 * geometry.total_paes() as f64 * self.pj_leak_per_pae_cycle;
        let seconds = if clock_hz > 0.0 {
            stats.cycles as f64 / clock_hz
        } else {
            0.0
        };
        PowerReport {
            dynamic_nj: dynamic_pj / 1e3,
            config_nj: self.config_load_nj(stats.config_cycles),
            leakage_nj: leakage_pj / 1e3,
            sim_seconds: seconds,
        }
    }

    /// Energy of streaming `words` configuration words over the serial bus
    /// (one word per bus cycle), in nanojoules.
    ///
    /// This is the per-load cost a [`CompiledConfig`](crate::CompiledConfig)
    /// charges: `load_cycles` words for a cold or demand load, overlappable
    /// but not avoidable for a prefetched one — which is how cold-vs-
    /// prefetched reconfiguration shows up in the power report as well as
    /// in latency.
    pub fn config_load_nj(&self, words: u64) -> f64 {
        words as f64 * self.pj_config / 1e3
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::hcmos9_130nm()
    }
}

/// The result of an energy evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerReport {
    /// Compute switching energy in nanojoules (excludes the bus).
    pub dynamic_nj: f64,
    /// Configuration-bus energy in nanojoules: reconfiguration traffic,
    /// broken out so load-policy trade-offs are visible next to compute.
    pub config_nj: f64,
    /// Leakage energy in nanojoules.
    pub leakage_nj: f64,
    /// Simulated wall time in seconds (0 when no clock was supplied).
    pub sim_seconds: f64,
}

impl PowerReport {
    /// Total energy in nanojoules.
    pub fn total_nj(&self) -> f64 {
        self.dynamic_nj + self.config_nj + self.leakage_nj
    }

    /// Average power in milliwatts over the simulated interval.
    ///
    /// Returns 0 when no time elapsed.
    pub fn avg_power_mw(&self) -> f64 {
        if self.sim_seconds > 0.0 {
            self.total_nj() * 1e-9 / self.sim_seconds * 1e3
        } else {
            0.0
        }
    }
}

/// Area model for the 0.13 µm implementation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// Silicon area of one ALU-PAE in mm².
    pub mm2_alu_pae: f64,
    /// Silicon area of one RAM-PAE (with its 512×24 dual-ported SRAM).
    pub mm2_ram_pae: f64,
    /// Configuration manager, I/O and periphery.
    pub mm2_periphery: f64,
}

impl AreaModel {
    /// Estimates for 0.13 µm HCMOS9 (6–8 copper layers, low-k dielectric).
    pub fn hcmos9_130nm() -> Self {
        AreaModel {
            mm2_alu_pae: 0.30,
            mm2_ram_pae: 0.55,
            mm2_periphery: 4.0,
        }
    }

    /// Die area for a geometry.
    pub fn die_mm2(&self, geometry: Geometry) -> f64 {
        geometry.alu_paes as f64 * self.mm2_alu_pae
            + geometry.ram_paes as f64 * self.mm2_ram_pae
            + self.mm2_periphery
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::hcmos9_130nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_array_consumes_only_leakage() {
        let stats = ArrayStats {
            cycles: 1000,
            ..Default::default()
        };
        let r = EnergyModel::hcmos9_130nm().report(&stats, Geometry::xpp64a(), 64e6);
        assert_eq!(r.dynamic_nj, 0.0);
        assert!(r.leakage_nj > 0.0);
        assert!(r.avg_power_mw() > 0.0);
    }

    #[test]
    fn multiplies_cost_more_than_adds() {
        let g = Geometry::xpp64a();
        let m = EnergyModel::hcmos9_130nm();
        let adds = ArrayStats {
            cycles: 100,
            alu_fires: 100,
            ..Default::default()
        };
        let muls = ArrayStats {
            cycles: 100,
            mul_fires: 100,
            ..Default::default()
        };
        assert!(m.report(&muls, g, 64e6).dynamic_nj > m.report(&adds, g, 64e6).dynamic_nj);
    }

    #[test]
    fn power_scales_with_clock() {
        let stats = ArrayStats {
            cycles: 1000,
            alu_fires: 500,
            ..Default::default()
        };
        let m = EnergyModel::hcmos9_130nm();
        let slow = m.report(&stats, Geometry::xpp64a(), 10e6);
        let fast = m.report(&stats, Geometry::xpp64a(), 100e6);
        // Same energy, less time → more power.
        assert!((slow.total_nj() - fast.total_nj()).abs() < 1e-9);
        assert!(fast.avg_power_mw() > slow.avg_power_mw());
    }

    #[test]
    fn zero_clock_reports_zero_power() {
        let stats = ArrayStats {
            cycles: 10,
            ..Default::default()
        };
        let r = EnergyModel::default().report(&stats, Geometry::xpp64a(), 0.0);
        assert_eq!(r.avg_power_mw(), 0.0);
    }

    #[test]
    fn config_bus_energy_is_broken_out() {
        let m = EnergyModel::hcmos9_130nm();
        let stats = ArrayStats {
            cycles: 100,
            config_cycles: 60,
            ..Default::default()
        };
        let r = m.report(&stats, Geometry::xpp64a(), 64e6);
        assert_eq!(r.dynamic_nj, 0.0, "bus traffic is not compute");
        assert!((r.config_nj - m.config_load_nj(60)).abs() < 1e-12);
        assert!(r.total_nj() > r.leakage_nj, "config energy must count");
        // A prefetched load streams the same words as a cold one — the
        // energy cost is identical, only the latency is hidden.
        assert_eq!(m.config_load_nj(60), 60.0 * m.pj_config / 1e3);
    }

    #[test]
    fn die_area_in_plausible_range() {
        let a = AreaModel::default().die_mm2(Geometry::xpp64a());
        // 64 ALU + 16 RAM PAEs at 0.13 µm: tens of mm².
        assert!(a > 10.0 && a < 100.0, "area {a}");
    }
}
