//! Lock-free engine metrics.
//!
//! One [`Metrics`] registry is shared (via `Arc`) between the engine
//! front end and every worker shard. All counters are relaxed atomics —
//! they are statistics, not synchronisation — and a point-in-time
//! [`Snapshot`] can be taken at any moment and rendered as a
//! human-readable report.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of distinct kernel classes tracked by the per-kernel counters.
pub const KERNEL_KINDS: usize = KernelKind::ALL.len();

/// The baseband kernel classes whose array cycles are tracked separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// W-CDMA descrambler (paper Fig. 5).
    Descrambler,
    /// W-CDMA despreader (paper Fig. 6).
    Despreader,
    /// OFDM preamble-detection correlator (configuration 2a).
    PreambleDetector,
    /// OFDM QPSK demodulator (configuration 2b).
    Demodulator,
}

impl KernelKind {
    /// Every kernel kind, in display order.
    pub const ALL: [KernelKind; 4] = [
        KernelKind::Descrambler,
        KernelKind::Despreader,
        KernelKind::PreambleDetector,
        KernelKind::Demodulator,
    ];

    /// Stable index into per-kernel counter arrays.
    pub fn index(self) -> usize {
        match self {
            KernelKind::Descrambler => 0,
            KernelKind::Despreader => 1,
            KernelKind::PreambleDetector => 2,
            KernelKind::Demodulator => 3,
        }
    }

    /// Human-readable kernel name.
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Descrambler => "wcdma-descrambler",
            KernelKind::Despreader => "wcdma-despreader",
            KernelKind::PreambleDetector => "ofdm-preamble-detector",
            KernelKind::Demodulator => "ofdm-demodulator",
        }
    }
}

/// The engine's shared counter registry.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Sessions admitted to the engine.
    pub sessions_started: AtomicU64,
    /// Sessions that reached [`Done`](crate::session::SessionState::Done).
    pub sessions_completed: AtomicU64,
    /// Sessions that reached a failure state.
    pub sessions_failed: AtomicU64,
    /// Jobs executed by workers.
    pub jobs_run: AtomicU64,
    /// Submissions rejected with `WouldBlock` (shard queue full).
    pub jobs_rejected: AtomicU64,
    /// Runtime reconfigurations (a configuration unloaded and another
    /// loaded in its place, as in the paper's Fig. 10 swap).
    pub reconfigurations: AtomicU64,
    /// Configuration-cache hits (netlist served without a rebuild).
    pub cache_hits: AtomicU64,
    /// Configuration-cache misses (netlist built and placed).
    pub cache_misses: AtomicU64,
    /// Configurations evicted from a worker's cache.
    pub cache_evictions: AtomicU64,
    /// Speculative configuration loads issued ahead of need.
    pub prefetches: AtomicU64,
    /// Activations served from a prefetched (pre-placed, pre-streamed)
    /// configuration — the swap paid only residual activation.
    pub prefetch_hits: AtomicU64,
    /// Array cycles sessions actually waited on reconfiguration swaps
    /// (a prefetched swap contributes ~0 here).
    pub reconfig_cycles: AtomicU64,
    /// High-water mark of any shard's queue depth.
    pub queue_high_water: AtomicU64,
    /// Configuration-bus cycles spent loading configurations.
    pub config_bus_cycles: AtomicU64,
    /// Configuration words streamed for demand (cold or store-hit)
    /// activations — energy the session waited for.
    pub config_words_demand: AtomicU64,
    /// Configuration words streamed for prefetched loads — the same bus
    /// energy, but hidden behind useful work.
    pub config_words_prefetched: AtomicU64,
    /// Faults injected by an attached fault plan (0 without one).
    pub faults_injected: AtomicU64,
    /// Faults the recovery layer detected and surfaced (typed load errors,
    /// cleared stall records, caught worker panics).
    pub faults_detected: AtomicU64,
    /// Recovery actions taken: kernel reload retries, watchdog reloads and
    /// crashed-session re-dispatches.
    pub recoveries: AtomicU64,
    /// Zero-fire configurations the watchdog forced out (unload +
    /// re-activate from the store).
    pub watchdog_kicks: AtomicU64,
    /// Crashed sessions re-dispatched to a restarted shard.
    pub session_retries: AtomicU64,
    /// Worker shards restarted with a fresh array after a panic.
    pub worker_restarts: AtomicU64,
    /// Sessions dead-lettered after exhausting their retry budget.
    pub dead_letters: AtomicU64,
    /// Sessions shed under admission pressure (EDF-lowest first).
    pub sessions_shed: AtomicU64,
    /// Sessions currently parked in the async front-end's parking lot
    /// (a gauge: set with [`Metrics::set`], not accumulated).
    pub sessions_parked: AtomicU64,
    /// High-water mark of resident sessions (parked records plus
    /// materialised in-flight sessions) — the front-end's headline
    /// capacity number.
    pub peak_resident_sessions: AtomicU64,
    /// Parked records rehydrated into full sessions (frame/slot arrivals
    /// plus backpressure re-tries).
    pub rehydrations: AtomicU64,
    /// Sessions parked instead of blocking a submitter thread when their
    /// shard queue was full (`WouldBlock` backpressure).
    pub backpressure_parks: AtomicU64,
    /// Batches formed by the gang dispatcher (one per kernel group per
    /// dispatch round; a gang of 1 never batches, so this stays 0 on the
    /// seed path).
    pub batches_dispatched: AtomicU64,
    /// Sessions dispatched through batches (`batch_sessions ÷
    /// batches_dispatched` is the mean batch size).
    pub batch_sessions: AtomicU64,
    /// Batches routed to an array where the kernel was already resident —
    /// zero configuration-bus traffic for the whole batch.
    pub batch_warm_hits: AtomicU64,
    /// Times the router replicated a hot kernel onto an additional gang
    /// member to spread a saturated batch stream.
    pub batch_replications: AtomicU64,
    /// Quiescent residents evicted by a spill-aware prefetch (instead of
    /// soft-failing the prefetch).
    pub prefetch_spills: AtomicU64,
    /// Total array cycles stepped by pool workers (all gang members).
    pub array_cycles_run: AtomicU64,
    /// Configuration words streamed over every worker array's bus
    /// (per-array [`xpp_array::ArrayStats::config_words`], summed).
    pub config_words_streamed: AtomicU64,
    /// High-water mark of any single gang member's total array cycles —
    /// the modeled-platform makespan when members run in parallel.
    pub array_makespan_cycles: AtomicU64,
    /// Array execution cycles per kernel class.
    kernel_cycles: [AtomicU64; KERNEL_KINDS],
    /// Jobs per kernel class.
    kernel_jobs: [AtomicU64; KERNEL_KINDS],
    /// Object fires per kernel class (the array's per-configuration fire
    /// counters, so cycles ÷ fires exposes each kernel's datapath
    /// occupancy).
    kernel_fires: [AtomicU64; KERNEL_KINDS],
    /// Callbacks run at the top of [`Metrics::snapshot`] so lazily-synced
    /// counters (e.g. the pool's fault-injection ledger) are always current
    /// in a report — no manual sync call to forget.
    sync_hooks: SyncHooks,
}

/// A snapshot-time sync callback (see [`Metrics::register_sync`]).
type SyncHook = Box<dyn Fn(&Metrics) + Send + Sync>;

/// Registered snapshot-time sync callbacks (see [`Metrics::register_sync`]).
#[derive(Default)]
struct SyncHooks(Mutex<Vec<SyncHook>>);

impl fmt::Debug for SyncHooks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.0.lock().map(|v| v.len()).unwrap_or(0);
        write!(f, "SyncHooks({n})")
    }
}

impl Metrics {
    /// Creates a zeroed registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Adds `n` to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments a counter by one.
    pub fn incr(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Raises `counter` to at least `value` (monotonic high-water mark).
    pub fn raise_to(counter: &AtomicU64, value: u64) {
        counter.fetch_max(value, Ordering::Relaxed);
    }

    /// Sets a gauge to `value` (last write wins; used for point-in-time
    /// levels like [`sessions_parked`](Metrics::sessions_parked)).
    pub fn set(counter: &AtomicU64, value: u64) {
        counter.store(value, Ordering::Relaxed);
    }

    /// Records one kernel job: its measured array cycles and the object
    /// fires its configuration performed.
    pub fn record_kernel(&self, kind: KernelKind, cycles: u64, fires: u64) {
        self.kernel_jobs[kind.index()].fetch_add(1, Ordering::Relaxed);
        self.kernel_cycles[kind.index()].fetch_add(cycles, Ordering::Relaxed);
        self.kernel_fires[kind.index()].fetch_add(fires, Ordering::Relaxed);
    }

    /// Registers a callback that runs at the top of every [`snapshot`]
    /// (and therefore before every report). The pool uses this to fold its
    /// fault-injection ledger into the registry so `faults_injected` is
    /// always current without a manual sync call.
    ///
    /// [`snapshot`]: Metrics::snapshot
    pub fn register_sync(&self, hook: impl Fn(&Metrics) + Send + Sync + 'static) {
        // A hook that panicked mid-call left nothing torn; keep reporting.
        self.sync_hooks
            .0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(Box::new(hook));
    }

    /// Takes a point-in-time snapshot of every counter, running any
    /// registered sync hooks first.
    pub fn snapshot(&self) -> Snapshot {
        {
            let hooks = self
                .sync_hooks
                .0
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for hook in hooks.iter() {
                hook(self);
            }
        }
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        Snapshot {
            sessions_started: load(&self.sessions_started),
            sessions_completed: load(&self.sessions_completed),
            sessions_failed: load(&self.sessions_failed),
            jobs_run: load(&self.jobs_run),
            jobs_rejected: load(&self.jobs_rejected),
            reconfigurations: load(&self.reconfigurations),
            cache_hits: load(&self.cache_hits),
            cache_misses: load(&self.cache_misses),
            cache_evictions: load(&self.cache_evictions),
            prefetches: load(&self.prefetches),
            prefetch_hits: load(&self.prefetch_hits),
            reconfig_cycles: load(&self.reconfig_cycles),
            queue_high_water: load(&self.queue_high_water),
            config_bus_cycles: load(&self.config_bus_cycles),
            config_words_demand: load(&self.config_words_demand),
            config_words_prefetched: load(&self.config_words_prefetched),
            faults_injected: load(&self.faults_injected),
            faults_detected: load(&self.faults_detected),
            recoveries: load(&self.recoveries),
            watchdog_kicks: load(&self.watchdog_kicks),
            session_retries: load(&self.session_retries),
            worker_restarts: load(&self.worker_restarts),
            dead_letters: load(&self.dead_letters),
            sessions_shed: load(&self.sessions_shed),
            sessions_parked: load(&self.sessions_parked),
            peak_resident_sessions: load(&self.peak_resident_sessions),
            rehydrations: load(&self.rehydrations),
            backpressure_parks: load(&self.backpressure_parks),
            batches_dispatched: load(&self.batches_dispatched),
            batch_sessions: load(&self.batch_sessions),
            batch_warm_hits: load(&self.batch_warm_hits),
            batch_replications: load(&self.batch_replications),
            prefetch_spills: load(&self.prefetch_spills),
            array_cycles_run: load(&self.array_cycles_run),
            config_words_streamed: load(&self.config_words_streamed),
            array_makespan_cycles: load(&self.array_makespan_cycles),
            kernel_cycles: std::array::from_fn(|i| load(&self.kernel_cycles[i])),
            kernel_jobs: std::array::from_fn(|i| load(&self.kernel_jobs[i])),
            kernel_fires: std::array::from_fn(|i| load(&self.kernel_fires[i])),
        }
    }
}

/// A point-in-time copy of the registry, cheap to pass around and print.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Sessions admitted.
    pub sessions_started: u64,
    /// Sessions completed.
    pub sessions_completed: u64,
    /// Sessions failed.
    pub sessions_failed: u64,
    /// Jobs executed.
    pub jobs_run: u64,
    /// Submissions rejected with `WouldBlock`.
    pub jobs_rejected: u64,
    /// Runtime reconfigurations.
    pub reconfigurations: u64,
    /// Configuration-cache hits.
    pub cache_hits: u64,
    /// Configuration-cache misses.
    pub cache_misses: u64,
    /// Configuration-cache evictions.
    pub cache_evictions: u64,
    /// Speculative configuration loads issued.
    pub prefetches: u64,
    /// Activations served from a prefetched configuration.
    pub prefetch_hits: u64,
    /// Array cycles spent waiting on reconfiguration swaps.
    pub reconfig_cycles: u64,
    /// Deepest observed shard queue.
    pub queue_high_water: u64,
    /// Configuration-bus cycles.
    pub config_bus_cycles: u64,
    /// Configuration words streamed for demand activations.
    pub config_words_demand: u64,
    /// Configuration words streamed for prefetched loads.
    pub config_words_prefetched: u64,
    /// Faults injected by an attached fault plan.
    pub faults_injected: u64,
    /// Faults detected and surfaced by the recovery layer.
    pub faults_detected: u64,
    /// Recovery actions taken.
    pub recoveries: u64,
    /// Watchdog-forced unload + re-activate cycles.
    pub watchdog_kicks: u64,
    /// Crashed sessions re-dispatched.
    pub session_retries: u64,
    /// Worker shards restarted after a panic.
    pub worker_restarts: u64,
    /// Sessions dead-lettered after exhausting retries.
    pub dead_letters: u64,
    /// Sessions shed under admission pressure.
    pub sessions_shed: u64,
    /// Sessions currently parked in the front-end's parking lot (gauge).
    pub sessions_parked: u64,
    /// High-water mark of resident sessions (parked + materialised).
    pub peak_resident_sessions: u64,
    /// Parked records rehydrated into full sessions.
    pub rehydrations: u64,
    /// Sessions parked instead of blocking on a full shard queue.
    pub backpressure_parks: u64,
    /// Batches formed by the gang dispatcher.
    pub batches_dispatched: u64,
    /// Sessions dispatched through batches.
    pub batch_sessions: u64,
    /// Batches that routed entirely to a warm (already-resident) array.
    pub batch_warm_hits: u64,
    /// Hot-kernel replications onto additional gang members.
    pub batch_replications: u64,
    /// Quiescent residents evicted by a spill-aware prefetch.
    pub prefetch_spills: u64,
    /// Total array cycles stepped by pool workers.
    pub array_cycles_run: u64,
    /// Configuration words streamed over every worker array's bus.
    pub config_words_streamed: u64,
    /// High-water mark of a single gang member's total array cycles.
    pub array_makespan_cycles: u64,
    /// Array cycles per kernel class (indexed by [`KernelKind::index`]).
    pub kernel_cycles: [u64; KERNEL_KINDS],
    /// Jobs per kernel class (indexed by [`KernelKind::index`]).
    pub kernel_jobs: [u64; KERNEL_KINDS],
    /// Object fires per kernel class (indexed by [`KernelKind::index`]).
    pub kernel_fires: [u64; KERNEL_KINDS],
}

impl Snapshot {
    /// Cache hit rate in `[0, 1]`, or 0 with no activations.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Total array cycles across all kernel classes.
    pub fn total_kernel_cycles(&self) -> u64 {
        self.kernel_cycles.iter().sum()
    }

    /// Mean sessions per dispatched batch, or 0 with no batches.
    pub fn avg_batch_size(&self) -> f64 {
        if self.batches_dispatched == 0 {
            0.0
        } else {
            self.batch_sessions as f64 / self.batches_dispatched as f64
        }
    }

    /// Fraction of worker-array cycles the configuration bus sat idle —
    /// the paper's steady-state figure of merit (a well-amortised platform
    /// streams data with the bus near 100 % idle). 0 with no cycles run.
    pub fn bus_idle_ratio(&self) -> f64 {
        if self.array_cycles_run == 0 {
            0.0
        } else {
            let busy = self.config_bus_cycles.min(self.array_cycles_run);
            1.0 - busy as f64 / self.array_cycles_run as f64
        }
    }

    /// Total object fires across all kernel classes.
    pub fn total_kernel_fires(&self) -> u64 {
        self.kernel_fires.iter().sum()
    }

    /// Fraction of started sessions shed under admission pressure, in
    /// `[0, 1]` (0 with none started) — overload reporting wants the
    /// *rate*, not the raw count.
    pub fn shed_rate(&self) -> f64 {
        if self.sessions_started == 0 {
            0.0
        } else {
            self.sessions_shed as f64 / self.sessions_started as f64
        }
    }

    /// Fraction of detected faults answered by a recovery action, in
    /// `[0, 1]` (0 with none detected; recoveries can exceed detections
    /// when retries stack, so the ratio is clamped to 1).
    pub fn rescue_rate(&self) -> f64 {
        if self.faults_detected == 0 {
            0.0
        } else {
            (self.recoveries as f64 / self.faults_detected as f64).min(1.0)
        }
    }

    /// Configuration-bus energy of the (demand, prefetched) load words
    /// under the default HCMOS9 energy model, in nanojoules — the
    /// cold-vs-prefetched reconfiguration trade-off in joules instead of
    /// cycles.
    pub fn config_load_energy_nj(&self) -> (f64, f64) {
        let model = xpp_array::power::EnergyModel::default();
        (
            model.config_load_nj(self.config_words_demand),
            model.config_load_nj(self.config_words_prefetched),
        )
    }
}

impl fmt::Display for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "engine metrics")?;
        writeln!(
            f,
            "  sessions    started {:>8}  completed {:>8}  failed {:>4}",
            self.sessions_started, self.sessions_completed, self.sessions_failed
        )?;
        writeln!(
            f,
            "  jobs        run     {:>8}  rejected  {:>8}  queue high-water {:>4}",
            self.jobs_run, self.jobs_rejected, self.queue_high_water
        )?;
        writeln!(
            f,
            "  reconfig    swaps   {:>8}  bus cycles {:>12}  swap-wait cycles {:>8}",
            self.reconfigurations, self.config_bus_cycles, self.reconfig_cycles
        )?;
        writeln!(
            f,
            "  prefetch    issued  {:>8}  hits      {:>8}  spills    {:>8}",
            self.prefetches, self.prefetch_hits, self.prefetch_spills
        )?;
        writeln!(
            f,
            "  batching    batches {:>8}  sessions  {:>8}  warm hits {:>4}  replications {:>4}  avg size {:>5.1}",
            self.batches_dispatched,
            self.batch_sessions,
            self.batch_warm_hits,
            self.batch_replications,
            self.avg_batch_size()
        )?;
        writeln!(
            f,
            "  arrays      cycles  {:>8}  makespan  {:>8}  cfg words {:>8}  bus idle {:>5.1}%",
            self.array_cycles_run,
            self.array_makespan_cycles,
            self.config_words_streamed,
            100.0 * self.bus_idle_ratio()
        )?;
        writeln!(
            f,
            "  cfg cache   hits    {:>8}  misses    {:>8}  evictions {:>4}  hit rate {:>5.1}%",
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            100.0 * self.cache_hit_rate()
        )?;
        let (demand_nj, prefetch_nj) = self.config_load_energy_nj();
        writeln!(
            f,
            "  cfg energy  demand  {:>8} words ({:>8.1} nJ)  prefetched {:>8} words ({:>8.1} nJ)",
            self.config_words_demand, demand_nj, self.config_words_prefetched, prefetch_nj
        )?;
        writeln!(
            f,
            "  frontend    parked  {:>8}  peak resident {:>8}  rehydrations {:>8}  bp-parks {:>6}",
            self.sessions_parked,
            self.peak_resident_sessions,
            self.rehydrations,
            self.backpressure_parks
        )?;
        writeln!(
            f,
            "  faults      injected {:>7}  detected  {:>8}  recoveries {:>4}  rescue rate {:>5.1}%  watchdog kicks {:>4}",
            self.faults_injected,
            self.faults_detected,
            self.recoveries,
            100.0 * self.rescue_rate(),
            self.watchdog_kicks
        )?;
        writeln!(
            f,
            "  supervision retries {:>8}  restarts  {:>8}  dead-letters {:>4}  shed {:>4}  shed rate {:>5.1}%",
            self.session_retries,
            self.worker_restarts,
            self.dead_letters,
            self.sessions_shed,
            100.0 * self.shed_rate()
        )?;
        writeln!(f, "  kernels")?;
        for kind in KernelKind::ALL {
            let i = kind.index();
            writeln!(
                f,
                "    {:<24} jobs {:>8}  array cycles {:>12}  fires {:>12}",
                kind.name(),
                self.kernel_jobs[i],
                self.kernel_cycles[i],
                self.kernel_fires[i]
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        Metrics::incr(&m.sessions_started);
        Metrics::add(&m.jobs_run, 5);
        m.record_kernel(KernelKind::Despreader, 123, 40);
        m.record_kernel(KernelKind::Despreader, 77, 9);
        let s = m.snapshot();
        assert_eq!(s.sessions_started, 1);
        assert_eq!(s.jobs_run, 5);
        assert_eq!(s.kernel_jobs[KernelKind::Despreader.index()], 2);
        assert_eq!(s.kernel_cycles[KernelKind::Despreader.index()], 200);
        assert_eq!(s.kernel_fires[KernelKind::Despreader.index()], 49);
        assert_eq!(s.total_kernel_cycles(), 200);
        assert_eq!(s.total_kernel_fires(), 49);
    }

    #[test]
    fn high_water_is_monotonic() {
        let m = Metrics::new();
        Metrics::raise_to(&m.queue_high_water, 4);
        Metrics::raise_to(&m.queue_high_water, 2);
        Metrics::raise_to(&m.queue_high_water, 9);
        assert_eq!(m.snapshot().queue_high_water, 9);
    }

    #[test]
    fn hit_rate_handles_zero() {
        assert_eq!(Snapshot::default().cache_hit_rate(), 0.0);
        let m = Metrics::new();
        Metrics::add(&m.cache_hits, 3);
        Metrics::add(&m.cache_misses, 1);
        assert!((m.snapshot().cache_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn sync_hooks_run_on_snapshot() {
        let m = Metrics::new();
        m.register_sync(|m| Metrics::raise_to(&m.faults_injected, 7));
        assert_eq!(m.snapshot().faults_injected, 7);
        // Hooks are monotonic syncs, so repeated snapshots are stable.
        Metrics::add(&m.faults_injected, 3);
        assert_eq!(m.snapshot().faults_injected, 10);
    }

    #[test]
    fn batch_and_bus_ratios() {
        assert_eq!(Snapshot::default().avg_batch_size(), 0.0);
        assert_eq!(Snapshot::default().bus_idle_ratio(), 0.0);
        let s = Snapshot {
            batches_dispatched: 4,
            batch_sessions: 10,
            array_cycles_run: 1000,
            config_bus_cycles: 100,
            ..Snapshot::default()
        };
        assert!((s.avg_batch_size() - 2.5).abs() < 1e-12);
        assert!((s.bus_idle_ratio() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn gauges_set_and_rates_compute() {
        let m = Metrics::new();
        Metrics::set(&m.sessions_parked, 100);
        Metrics::set(&m.sessions_parked, 60);
        assert_eq!(m.snapshot().sessions_parked, 60, "gauge is last-write");

        assert_eq!(Snapshot::default().shed_rate(), 0.0);
        assert_eq!(Snapshot::default().rescue_rate(), 0.0);
        let s = Snapshot {
            sessions_started: 200,
            sessions_shed: 10,
            faults_detected: 4,
            recoveries: 3,
            ..Snapshot::default()
        };
        assert!((s.shed_rate() - 0.05).abs() < 1e-12);
        assert!((s.rescue_rate() - 0.75).abs() < 1e-12);
        let clamped = Snapshot {
            faults_detected: 2,
            recoveries: 5,
            ..Snapshot::default()
        };
        assert_eq!(clamped.rescue_rate(), 1.0, "stacked retries clamp to 1");
        // The report renders the rates, not just the counts.
        let text = s.to_string();
        assert!(text.contains("shed rate"), "report must show the shed rate");
        assert!(text.contains("rescue rate"), "report must show rescue rate");
        assert!(text.contains("parked"), "report must show frontend gauges");
    }

    #[test]
    fn display_mentions_every_kernel() {
        let text = Snapshot::default().to_string();
        for kind in KernelKind::ALL {
            assert!(text.contains(kind.name()), "missing {}", kind.name());
        }
    }
}
