//! Property-based tests for the 802.11a PHY building blocks.

use proptest::prelude::*;
use sdr_dsp::Cplx;
use sdr_ofdm::convolutional::{depuncture, encode, puncture, viterbi_decode};
use sdr_ofdm::interleaver::{deinterleave, interleave};
use sdr_ofdm::modulation::{demap_hard, map_bits, map_symbol};
use sdr_ofdm::params::RATES;
use sdr_ofdm::params::{CodeRate, Modulation};
use sdr_ofdm::scrambler::Scrambler;
use sdr_ofdm::signal_field::{decode_signal, parse_signal_bits, signal_bits, signal_points};

fn arb_bits(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..=1, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn scrambler_is_self_inverse(seed in 1u32..128, data in arb_bits(1..400)) {
        let once = Scrambler::new(seed).scramble(&data);
        let twice = Scrambler::new(seed).scramble(&once);
        prop_assert_eq!(twice, data);
    }

    #[test]
    fn viterbi_recovers_random_messages(data in arb_bits(8..300)) {
        let mut bits = data.clone();
        bits.extend_from_slice(&[0; 6]);
        let coded = encode(&bits);
        let llrs: Vec<i32> = coded.iter().map(|&b| if b == 0 { 10 } else { -10 }).collect();
        let decoded = viterbi_decode(&llrs);
        prop_assert_eq!(&decoded[..data.len()], &data[..]);
    }

    #[test]
    fn viterbi_corrects_sparse_flips(data in arb_bits(40..160), flip in 0usize..1000) {
        let mut bits = data.clone();
        bits.extend_from_slice(&[0; 6]);
        let coded = encode(&bits);
        let mut llrs: Vec<i32> = coded.iter().map(|&b| if b == 0 { 10 } else { -10 }).collect();
        let idx = flip % llrs.len();
        llrs[idx] = -llrs[idx];
        let decoded = viterbi_decode(&llrs);
        prop_assert_eq!(&decoded[..data.len()], &data[..]);
    }

    #[test]
    fn puncture_depuncture_positions_are_consistent(rate_idx in 0usize..3, n_groups in 1usize..20) {
        let rate = [CodeRate::R12, CodeRate::R23, CodeRate::R34][rate_idx];
        let n = 12 * n_groups; // divisible by every pattern period
        let coded: Vec<u8> = (0..n).map(|i| ((i * 7 + 1) % 2) as u8).collect();
        let punctured = puncture(&coded, rate);
        // Depuncture LLRs derived from the punctured bits: non-zero entries
        // must equal the surviving coded bits in their original positions.
        let llrs: Vec<i32> = punctured.iter().map(|&b| if b == 0 { 5 } else { -5 }).collect();
        let full = depuncture(&llrs, rate);
        prop_assert_eq!(full.len(), coded.len());
        for (i, &l) in full.iter().enumerate() {
            if l != 0 {
                let bit = (l < 0) as u8;
                prop_assert_eq!(bit, coded[i], "position {}", i);
            }
        }
    }

    #[test]
    fn interleaver_roundtrip_random(mod_idx in 0usize..4, seed in 0u32..1000) {
        let m = [Modulation::Bpsk, Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64][mod_idx];
        let n = 48 * m.bits_per_carrier();
        let data: Vec<u8> = (0..n)
            .map(|i| (((i as u32).wrapping_add(seed).wrapping_mul(2654435761)) >> 9 & 1) as u8)
            .collect();
        prop_assert_eq!(deinterleave(&interleave(&data, m), m), data);
    }

    #[test]
    fn hard_demap_inverts_map_with_small_noise(
        mod_idx in 0usize..4,
        seed in 0u32..500,
        nre in -40i32..40,
        nim in -40i32..40,
    ) {
        let m = [Modulation::Bpsk, Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64][mod_idx];
        let nbits = m.bits_per_carrier();
        let bits: Vec<u8> = (0..nbits).map(|i| ((seed >> i) & 1) as u8).collect();
        let y = map_symbol(&bits, m);
        // Noise well below half the minimum constellation distance.
        let d_min_half = match m {
            Modulation::Bpsk => 0.5,
            Modulation::Qpsk => 0.353,
            Modulation::Qam16 => 0.158,
            Modulation::Qam64 => 0.077,
        };
        let noisy = y + Cplx::new(
            nre as f64 / 40.0 * d_min_half * 0.9,
            nim as f64 / 40.0 * d_min_half * 0.9,
        );
        prop_assert_eq!(demap_hard(noisy, m), bits);
    }

    #[test]
    fn map_bits_preserves_length(mod_idx in 0usize..4, n_syms in 1usize..30) {
        let m = [Modulation::Bpsk, Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64][mod_idx];
        let bits: Vec<u8> = (0..n_syms * m.bits_per_carrier()).map(|i| (i % 2) as u8).collect();
        prop_assert_eq!(map_bits(&bits, m).len(), n_syms);
    }

    #[test]
    fn signal_field_roundtrips_any_length(rate_idx in 0usize..8, octets in 0usize..=4095) {
        let r = RATES[rate_idx];
        let bits = signal_bits(r, octets);
        let (pr, plen) = parse_signal_bits(&bits).expect("self-generated SIGNAL parses");
        prop_assert_eq!(pr.mbps, r.mbps);
        prop_assert_eq!(plen, octets);
    }

    #[test]
    fn signal_symbol_decodes_through_modulation(rate_idx in 0usize..8, octets in 1usize..4000) {
        let r = RATES[rate_idx];
        let pts = signal_points(r, octets);
        let (pr, plen) = decode_signal(&pts).expect("clean SIGNAL decodes");
        prop_assert_eq!(pr.mbps, r.mbps);
        prop_assert_eq!(plen, octets);
    }

    #[test]
    fn single_bit_flip_never_passes_signal_parity(octets in 0usize..=4095, pos in 0usize..17) {
        let mut bits = signal_bits(RATES[0], octets);
        bits[pos] ^= 1;
        // Flipping exactly one of the parity-covered bits must break parity.
        prop_assert!(parse_signal_bits(&bits).is_none());
    }
}
