//! Object kinds: the configurable behaviours of PAE function units.
//!
//! A *configuration* in the XPP sense assigns each processing element a
//! behaviour (its "object") and wires objects together with data and event
//! channels. This module enumerates the object vocabulary of the simulator:
//!
//! * ALU objects (word arithmetic, one result per fire),
//! * register/flow objects (constants, merges, demuxes, gates, counters and
//!   event logic — the functions FREG/BREG registers provide in the XPP),
//! * memory objects (dual-ported RAM and FIFO modes of the RAM-PAEs),
//! * I/O objects (the streaming ports at the array edge).
//!
//! The execution semantics (token consumption/production rules) live in the
//! [`crate::array`] module; here we define the kinds, their port shapes and
//! the pure ALU evaluation functions.

use crate::word::Word;

/// Binary ALU operations (two data inputs, one data output).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum AluOp {
    /// Wrapping 24-bit addition.
    Add,
    /// Wrapping 24-bit subtraction (`in0 - in1`).
    Sub,
    /// 24×24→48-bit multiply, low 24 bits.
    Mul,
    /// 24×24→48-bit multiply, arithmetic right shift by the constant, then
    /// wrap to 24 bits (the multiplier's shift-extract stage).
    MulShr(u32),
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// `1` if `in0 < in1`, else `0`.
    Lt,
    /// `1` if `in0 == in1`, else `0`.
    Eq,
    /// Left shift of `in0` by `in1` (clamped to 0..=47).
    Shl,
    /// Arithmetic right shift of `in0` by `in1` (clamped to 0..=47).
    Shr,
}

impl AluOp {
    /// Evaluates the operation on two words.
    pub fn eval(self, a: Word, b: Word) -> Word {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.mul_shr(b, 0),
            AluOp::MulShr(s) => a.mul_shr(b, s),
            AluOp::And => a.and(b),
            AluOp::Or => a.or(b),
            AluOp::Xor => a.xor(b),
            AluOp::Min => {
                if a.value() <= b.value() {
                    a
                } else {
                    b
                }
            }
            AluOp::Max => {
                if a.value() >= b.value() {
                    a
                } else {
                    b
                }
            }
            AluOp::Lt => Word::new((a.value() < b.value()) as i32),
            AluOp::Eq => Word::new((a.value() == b.value()) as i32),
            AluOp::Shl => a.shl(b.value().clamp(0, 47) as u32),
            AluOp::Shr => a.shr(b.value().clamp(0, 47) as u32),
        }
    }

    /// True if the op uses the PAE multiplier (higher energy).
    pub fn uses_multiplier(self) -> bool {
        matches!(self, AluOp::Mul | AluOp::MulShr(_))
    }
}

/// Unary operations (one data input, one data output) — these model the
/// constant-operand registers of the ALU-PAEs and the simple functions of
/// the forward/backward registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum UnaryOp {
    /// Identity (a routing register / pipeline balancing stage).
    Pass,
    /// Wrapping negation.
    Neg,
    /// Absolute value (wraps for `WORD_MIN`).
    Abs,
    /// Left shift by a constant.
    ShlK(u32),
    /// Arithmetic right shift by a constant.
    ShrK(u32),
    /// Add a constant.
    AddK(Word),
    /// Multiply by a constant, then arithmetic right shift (Q-format scale).
    MulKShr(Word, u32),
    /// Bitwise AND with a constant mask.
    AndK(Word),
    /// Bitwise XOR with a constant.
    XorK(Word),
    /// `1` if the input equals the constant, else `0`.
    EqK(Word),
    /// `1` if the input is less than the constant, else `0`.
    LtK(Word),
    /// `1` if the input is greater than or equal to the constant, else `0`.
    GeK(Word),
}

impl UnaryOp {
    /// Evaluates the operation.
    pub fn eval(self, a: Word) -> Word {
        match self {
            UnaryOp::Pass => a,
            UnaryOp::Neg => a.wrapping_neg(),
            UnaryOp::Abs => {
                if a.value() < 0 {
                    a.wrapping_neg()
                } else {
                    a
                }
            }
            UnaryOp::ShlK(s) => a.shl(s),
            UnaryOp::ShrK(s) => a.shr(s),
            UnaryOp::AddK(k) => a.wrapping_add(k),
            UnaryOp::MulKShr(k, s) => a.mul_shr(k, s),
            UnaryOp::AndK(k) => a.and(k),
            UnaryOp::XorK(k) => a.xor(k),
            UnaryOp::EqK(k) => Word::new((a == k) as i32),
            UnaryOp::LtK(k) => Word::new((a.value() < k.value()) as i32),
            UnaryOp::GeK(k) => Word::new((a.value() >= k.value()) as i32),
        }
    }

    /// True if the op uses the PAE multiplier.
    pub fn uses_multiplier(self) -> bool {
        matches!(self, UnaryOp::MulKShr(..))
    }
}

/// Configuration of a [`ObjectKind::Counter`].
///
/// A counter emits `period` values `start, start+step, …` and then reloads.
/// When `gated` it waits for a token on its event input before each burst
/// (the mechanism used to sequence the FFT stages); otherwise it reloads
/// immediately. On emitting the last value of a burst it also emits a `true`
/// wrap event (if that output is connected).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CounterCfg {
    /// First value of each burst.
    pub start: i64,
    /// Increment per emission.
    pub step: i64,
    /// Number of values per burst (must be ≥ 1).
    pub period: u64,
    /// If true, a burst starts only after consuming a go event.
    pub gated: bool,
}

impl CounterCfg {
    /// An ungated modulo-`period` up-counter from zero.
    pub fn modulo(period: u64) -> Self {
        CounterCfg {
            start: 0,
            step: 1,
            period,
            gated: false,
        }
    }

    /// A gated burst counter from zero.
    pub fn gated_burst(period: u64) -> Self {
        CounterCfg {
            start: 0,
            step: 1,
            period,
            gated: true,
        }
    }
}

/// Depth of a RAM-PAE in words.
pub const RAM_WORDS: usize = 512;

/// The behaviour assigned to a processing element.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ObjectKind {
    /// Binary ALU operation: `in0, in1 → out0`.
    Alu(AluOp),
    /// Unary operation: `in0 → out0`.
    Unary(UnaryOp),
    /// Constant source: emits its value whenever the output has space.
    Const(Word),
    /// Burst/modulo counter: `[ev-in0 go] → out0 value, ev-out0 wrap`.
    Counter(CounterCfg),
    /// Consumes selector + both inputs, emits the selected one:
    /// `ev0 ? in1 : in0 → out0`.
    Select,
    /// Consumes selector + only the selected input: `ev0 ? in1 : in0 → out0`.
    Merge,
    /// Routes `in0` to `out0` (selector false) or `out1` (true). Routing to
    /// an unconnected output discards the token (a decimator).
    Demux,
    /// Pass-through (selector false) or crossed (true): `in0,in1 → out0,out1`.
    Swap,
    /// Passes `in0` when the event is true, discards it when false.
    Gate,
    /// Accumulate-and-dump: adds `in0` into an internal register every fire;
    /// when the event is true, emits the sum on `out0` and clears. Models an
    /// ALU with its BREG feedback path (single-cycle MAC loop).
    AccumDump,
    /// Converts a word to an event (`true` iff non-zero).
    ToEvent,
    /// Converts an event to a word (0 or 1).
    ToData,
    /// Event inverter.
    EventNot,
    /// Event AND.
    EventAnd,
    /// Event OR.
    EventOr,
    /// Dual-ported 512×24 RAM: `in0 rd_addr, in1 wr_addr, in2 wr_data →
    /// out0 rd_data`. Writes commit before reads within a cycle. Addresses
    /// wrap modulo 512.
    Ram {
        /// Initial contents (zero-padded to 512 words).
        preload: Vec<Word>,
    },
    /// RAM-PAE in FIFO mode. With `ring` set, the preloaded contents
    /// recirculate forever (the paper's "circular lookup tables, implemented
    /// as preloaded FIFOs") and the input port disappears.
    RamFifo {
        /// Maximum occupancy (≤ 512).
        depth: usize,
        /// Initial contents.
        preload: Vec<Word>,
        /// Recirculate contents instead of consuming them.
        ring: bool,
    },
    /// External data input port (named stream into the array).
    Input(String),
    /// External data output port.
    Output(String),
    /// External event input port.
    InputEvent(String),
    /// External event output port.
    OutputEvent(String),
}

/// Port counts of an object kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PortShape {
    /// Data input ports.
    pub din: usize,
    /// Data output ports.
    pub dout: usize,
    /// Event input ports.
    pub evin: usize,
    /// Event output ports.
    pub evout: usize,
}

/// The physical resource class an object occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlotClass {
    /// An ALU-PAE function unit (64 on the XPP-64A).
    Alu,
    /// A forward/backward register (2 per PAE).
    Reg,
    /// A RAM-PAE (16 on the XPP-64A).
    Ram,
    /// A streaming I/O channel (8 on the XPP-64A).
    Io,
}

impl ObjectKind {
    /// Port counts for this kind.
    pub fn shape(&self) -> PortShape {
        use ObjectKind::*;
        match self {
            Alu(_) => PortShape {
                din: 2,
                dout: 1,
                evin: 0,
                evout: 0,
            },
            Unary(_) => PortShape {
                din: 1,
                dout: 1,
                evin: 0,
                evout: 0,
            },
            Const(_) => PortShape {
                din: 0,
                dout: 1,
                evin: 0,
                evout: 0,
            },
            Counter(c) => PortShape {
                din: 0,
                dout: 1,
                evin: if c.gated { 1 } else { 0 },
                evout: 1,
            },
            Select | Merge => PortShape {
                din: 2,
                dout: 1,
                evin: 1,
                evout: 0,
            },
            Demux => PortShape {
                din: 1,
                dout: 2,
                evin: 1,
                evout: 0,
            },
            Swap => PortShape {
                din: 2,
                dout: 2,
                evin: 1,
                evout: 0,
            },
            Gate => PortShape {
                din: 1,
                dout: 1,
                evin: 1,
                evout: 0,
            },
            AccumDump => PortShape {
                din: 1,
                dout: 1,
                evin: 1,
                evout: 0,
            },
            ToEvent => PortShape {
                din: 1,
                dout: 0,
                evin: 0,
                evout: 1,
            },
            ToData => PortShape {
                din: 0,
                dout: 1,
                evin: 1,
                evout: 0,
            },
            EventNot => PortShape {
                din: 0,
                dout: 0,
                evin: 1,
                evout: 1,
            },
            EventAnd | EventOr => PortShape {
                din: 0,
                dout: 0,
                evin: 2,
                evout: 1,
            },
            Ram { .. } => PortShape {
                din: 3,
                dout: 1,
                evin: 0,
                evout: 0,
            },
            RamFifo { ring, .. } => PortShape {
                din: if *ring { 0 } else { 1 },
                dout: 1,
                evin: 0,
                evout: 0,
            },
            Input(_) => PortShape {
                din: 0,
                dout: 1,
                evin: 0,
                evout: 0,
            },
            Output(_) => PortShape {
                din: 1,
                dout: 0,
                evin: 0,
                evout: 0,
            },
            InputEvent(_) => PortShape {
                din: 0,
                dout: 0,
                evin: 0,
                evout: 1,
            },
            OutputEvent(_) => PortShape {
                din: 0,
                dout: 0,
                evin: 1,
                evout: 0,
            },
        }
    }

    /// Whether a given data-input port may legally stay unconnected.
    ///
    /// Only the RAM ports are optional: a read-only RAM leaves the write
    /// ports open and vice versa (validated pairwise at `build()`).
    pub fn data_input_optional(&self, _port: usize) -> bool {
        matches!(self, ObjectKind::Ram { .. })
    }

    /// The physical resource class this object consumes.
    pub fn slot_class(&self) -> SlotClass {
        use ObjectKind::*;
        match self {
            Alu(_) | AccumDump => SlotClass::Alu,
            Unary(op) if op.uses_multiplier() => SlotClass::Alu,
            Unary(_) | Const(_) | Counter(_) | Select | Merge | Demux | Swap | Gate | ToEvent
            | ToData | EventNot | EventAnd | EventOr => SlotClass::Reg,
            Ram { .. } | RamFifo { .. } => SlotClass::Ram,
            Input(_) | Output(_) | InputEvent(_) | OutputEvent(_) => SlotClass::Io,
        }
    }

    /// A short kind name for diagnostics and statistics.
    pub fn kind_name(&self) -> &'static str {
        use ObjectKind::*;
        match self {
            Alu(_) => "alu",
            Unary(_) => "unary",
            Const(_) => "const",
            Counter(_) => "counter",
            Select => "select",
            Merge => "merge",
            Demux => "demux",
            Swap => "swap",
            Gate => "gate",
            AccumDump => "accum",
            ToEvent => "to_event",
            ToData => "to_data",
            EventNot => "ev_not",
            EventAnd => "ev_and",
            EventOr => "ev_or",
            Ram { .. } => "ram",
            RamFifo { .. } => "fifo",
            Input(_) => "input",
            Output(_) => "output",
            InputEvent(_) => "input_ev",
            OutputEvent(_) => "output_ev",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_ops_evaluate() {
        let a = Word::new(12);
        let b = Word::new(-5);
        assert_eq!(AluOp::Add.eval(a, b).value(), 7);
        assert_eq!(AluOp::Sub.eval(a, b).value(), 17);
        assert_eq!(AluOp::Mul.eval(a, b).value(), -60);
        assert_eq!(AluOp::MulShr(2).eval(a, b).value(), -15);
        assert_eq!(AluOp::Min.eval(a, b).value(), -5);
        assert_eq!(AluOp::Max.eval(a, b).value(), 12);
        assert_eq!(AluOp::Lt.eval(a, b).value(), 0);
        assert_eq!(AluOp::Lt.eval(b, a).value(), 1);
        assert_eq!(AluOp::Eq.eval(a, a).value(), 1);
        assert_eq!(AluOp::Shl.eval(Word::new(1), Word::new(4)).value(), 16);
        assert_eq!(AluOp::Shr.eval(Word::new(-16), Word::new(2)).value(), -4);
        assert_eq!(AluOp::And.eval(Word::new(6), Word::new(3)).value(), 2);
        assert_eq!(AluOp::Or.eval(Word::new(6), Word::new(3)).value(), 7);
        assert_eq!(AluOp::Xor.eval(Word::new(6), Word::new(3)).value(), 5);
    }

    #[test]
    fn alu_shift_clamps_negative_amounts() {
        assert_eq!(AluOp::Shl.eval(Word::new(1), Word::new(-3)).value(), 1);
        assert_eq!(AluOp::Shr.eval(Word::new(8), Word::new(-1)).value(), 8);
    }

    #[test]
    fn unary_ops_evaluate() {
        assert_eq!(UnaryOp::Pass.eval(Word::new(9)).value(), 9);
        assert_eq!(UnaryOp::Neg.eval(Word::new(9)).value(), -9);
        assert_eq!(UnaryOp::Abs.eval(Word::new(-9)).value(), 9);
        assert_eq!(UnaryOp::Abs.eval(Word::new(9)).value(), 9);
        assert_eq!(UnaryOp::ShlK(3).eval(Word::new(2)).value(), 16);
        assert_eq!(UnaryOp::ShrK(1).eval(Word::new(-7)).value(), -4);
        assert_eq!(UnaryOp::AddK(Word::new(5)).eval(Word::new(-2)).value(), 3);
        assert_eq!(
            UnaryOp::MulKShr(Word::new(3), 1).eval(Word::new(5)).value(),
            7
        );
        assert_eq!(
            UnaryOp::AndK(Word::new(0xF)).eval(Word::new(0x12)).value(),
            2
        );
        assert_eq!(UnaryOp::XorK(Word::new(1)).eval(Word::new(3)).value(), 2);
        assert_eq!(UnaryOp::EqK(Word::new(7)).eval(Word::new(7)).value(), 1);
        assert_eq!(UnaryOp::EqK(Word::new(7)).eval(Word::new(8)).value(), 0);
        assert_eq!(UnaryOp::LtK(Word::new(0)).eval(Word::new(-1)).value(), 1);
        assert_eq!(UnaryOp::GeK(Word::new(0)).eval(Word::new(0)).value(), 1);
    }

    #[test]
    fn multiplier_classification() {
        assert!(AluOp::Mul.uses_multiplier());
        assert!(AluOp::MulShr(4).uses_multiplier());
        assert!(!AluOp::Add.uses_multiplier());
        assert!(UnaryOp::MulKShr(Word::ONE, 0).uses_multiplier());
        assert!(!UnaryOp::Pass.uses_multiplier());
    }

    #[test]
    fn shapes_are_consistent() {
        assert_eq!(
            ObjectKind::Alu(AluOp::Add).shape(),
            PortShape {
                din: 2,
                dout: 1,
                evin: 0,
                evout: 0
            }
        );
        let gated = ObjectKind::Counter(CounterCfg::gated_burst(8));
        assert_eq!(gated.shape().evin, 1);
        let free = ObjectKind::Counter(CounterCfg::modulo(8));
        assert_eq!(free.shape().evin, 0);
        assert_eq!(ObjectKind::Ram { preload: vec![] }.shape().din, 3);
        let ring = ObjectKind::RamFifo {
            depth: 4,
            preload: vec![],
            ring: true,
        };
        assert_eq!(ring.shape().din, 0);
        let fifo = ObjectKind::RamFifo {
            depth: 4,
            preload: vec![],
            ring: false,
        };
        assert_eq!(fifo.shape().din, 1);
    }

    #[test]
    fn slot_classes() {
        assert_eq!(ObjectKind::Alu(AluOp::Add).slot_class(), SlotClass::Alu);
        assert_eq!(ObjectKind::AccumDump.slot_class(), SlotClass::Alu);
        assert_eq!(
            ObjectKind::Unary(UnaryOp::MulKShr(Word::ONE, 0)).slot_class(),
            SlotClass::Alu
        );
        assert_eq!(
            ObjectKind::Unary(UnaryOp::Pass).slot_class(),
            SlotClass::Reg
        );
        assert_eq!(ObjectKind::Const(Word::ZERO).slot_class(), SlotClass::Reg);
        assert_eq!(
            ObjectKind::Ram { preload: vec![] }.slot_class(),
            SlotClass::Ram
        );
        assert_eq!(ObjectKind::Input("x".into()).slot_class(), SlotClass::Io);
    }

    #[test]
    fn kind_names_are_distinct_enough() {
        assert_eq!(ObjectKind::Select.kind_name(), "select");
        assert_eq!(ObjectKind::Merge.kind_name(), "merge");
        assert_ne!(
            ObjectKind::Input("a".into()).kind_name(),
            ObjectKind::Output("a".into()).kind_name()
        );
    }

    #[test]
    fn ram_inputs_are_optional_others_not() {
        assert!(ObjectKind::Ram { preload: vec![] }.data_input_optional(0));
        assert!(!ObjectKind::Alu(AluOp::Add).data_input_optional(0));
    }
}
