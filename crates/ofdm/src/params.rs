//! IEEE 802.11a / HiperLAN-2 PHY parameters.
//!
//! "The standards define various modulation schemes and code rates, which
//! specify data rates from 6 up to 54 Mbit/sec" (paper §3.2). This module
//! captures the eight mandatory/optional rate points and the OFDM timing
//! constants.

/// FFT length.
pub const FFT_LEN: usize = 64;

/// Cyclic-prefix (guard interval) length in samples.
pub const CP_LEN: usize = 16;

/// Samples per OFDM symbol including the guard interval.
pub const SYMBOL_LEN: usize = FFT_LEN + CP_LEN;

/// Data subcarriers per symbol.
pub const DATA_CARRIERS: usize = 48;

/// Pilot subcarriers per symbol.
pub const PILOT_CARRIERS: usize = 4;

/// Sample rate in Hz (20 MHz channelisation).
pub const SAMPLE_RATE_HZ: f64 = 20e6;

/// Subcarrier modulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Modulation {
    /// 1 bit per subcarrier.
    Bpsk,
    /// 2 bits per subcarrier.
    Qpsk,
    /// 4 bits per subcarrier.
    Qam16,
    /// 6 bits per subcarrier.
    Qam64,
}

impl Modulation {
    /// Coded bits per subcarrier (N_BPSC).
    pub fn bits_per_carrier(self) -> usize {
        match self {
            Modulation::Bpsk => 1,
            Modulation::Qpsk => 2,
            Modulation::Qam16 => 4,
            Modulation::Qam64 => 6,
        }
    }
}

/// Convolutional code rate after puncturing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodeRate {
    /// Rate 1/2 (no puncturing).
    R12,
    /// Rate 2/3.
    R23,
    /// Rate 3/4.
    R34,
}

impl CodeRate {
    /// Numerator/denominator of the rate.
    pub fn fraction(self) -> (usize, usize) {
        match self {
            CodeRate::R12 => (1, 2),
            CodeRate::R23 => (2, 3),
            CodeRate::R34 => (3, 4),
        }
    }
}

/// One PHY rate point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RateParams {
    /// Nominal data rate in Mbit/s.
    pub mbps: u32,
    /// Subcarrier modulation.
    pub modulation: Modulation,
    /// Code rate.
    pub code_rate: CodeRate,
}

impl RateParams {
    /// Coded bits per OFDM symbol (N_CBPS).
    pub fn coded_bits_per_symbol(self) -> usize {
        DATA_CARRIERS * self.modulation.bits_per_carrier()
    }

    /// Data bits per OFDM symbol (N_DBPS).
    pub fn data_bits_per_symbol(self) -> usize {
        let (num, den) = self.code_rate.fraction();
        self.coded_bits_per_symbol() * num / den
    }
}

/// The eight 802.11a rate points, 6–54 Mbit/s.
pub const RATES: [RateParams; 8] = [
    RateParams {
        mbps: 6,
        modulation: Modulation::Bpsk,
        code_rate: CodeRate::R12,
    },
    RateParams {
        mbps: 9,
        modulation: Modulation::Bpsk,
        code_rate: CodeRate::R34,
    },
    RateParams {
        mbps: 12,
        modulation: Modulation::Qpsk,
        code_rate: CodeRate::R12,
    },
    RateParams {
        mbps: 18,
        modulation: Modulation::Qpsk,
        code_rate: CodeRate::R34,
    },
    RateParams {
        mbps: 24,
        modulation: Modulation::Qam16,
        code_rate: CodeRate::R12,
    },
    RateParams {
        mbps: 36,
        modulation: Modulation::Qam16,
        code_rate: CodeRate::R34,
    },
    RateParams {
        mbps: 48,
        modulation: Modulation::Qam64,
        code_rate: CodeRate::R23,
    },
    RateParams {
        mbps: 54,
        modulation: Modulation::Qam64,
        code_rate: CodeRate::R34,
    },
];

/// Looks up a rate point by its Mbit/s value.
pub fn rate(mbps: u32) -> Option<RateParams> {
    RATES.iter().copied().find(|r| r.mbps == mbps)
}

/// The data-subcarrier indices (logical −26..26 without 0 and pilots),
/// in transmission order.
pub fn data_subcarriers() -> Vec<i32> {
    let pilots = [-21, -7, 7, 21];
    (-26..=26)
        .filter(|&k| k != 0 && !pilots.contains(&k))
        .collect()
}

/// The pilot subcarrier indices.
pub const PILOT_SUBCARRIERS: [i32; 4] = [-21, -7, 7, 21];

/// Converts a logical subcarrier index (−32..31) to an FFT bin (0..63).
pub fn subcarrier_to_bin(k: i32) -> usize {
    debug_assert!((-32..32).contains(&k));
    ((k + FFT_LEN as i32) % FFT_LEN as i32) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_table_matches_standard() {
        assert_eq!(rate(6).unwrap().data_bits_per_symbol(), 24);
        assert_eq!(rate(9).unwrap().data_bits_per_symbol(), 36);
        assert_eq!(rate(12).unwrap().data_bits_per_symbol(), 48);
        assert_eq!(rate(18).unwrap().data_bits_per_symbol(), 72);
        assert_eq!(rate(24).unwrap().data_bits_per_symbol(), 96);
        assert_eq!(rate(36).unwrap().data_bits_per_symbol(), 144);
        assert_eq!(rate(48).unwrap().data_bits_per_symbol(), 192);
        assert_eq!(rate(54).unwrap().data_bits_per_symbol(), 216);
        assert!(rate(11).is_none());
    }

    #[test]
    fn symbol_duration_is_4_us() {
        let t = SYMBOL_LEN as f64 / SAMPLE_RATE_HZ;
        assert!((t - 4e-6).abs() < 1e-12);
    }

    #[test]
    fn rates_give_nominal_throughput() {
        for r in RATES {
            let bits_per_sec = r.data_bits_per_symbol() as f64 / 4e-6;
            assert!((bits_per_sec / 1e6 - r.mbps as f64).abs() < 1e-9, "{r:?}");
        }
    }

    #[test]
    fn data_subcarrier_layout() {
        let d = data_subcarriers();
        assert_eq!(d.len(), DATA_CARRIERS);
        assert!(!d.contains(&0));
        for p in PILOT_SUBCARRIERS {
            assert!(!d.contains(&p));
        }
    }

    #[test]
    fn bin_mapping_wraps_negative() {
        assert_eq!(subcarrier_to_bin(1), 1);
        assert_eq!(subcarrier_to_bin(26), 26);
        assert_eq!(subcarrier_to_bin(-1), 63);
        assert_eq!(subcarrier_to_bin(-26), 38);
        assert_eq!(subcarrier_to_bin(0), 0);
    }
}
