//! FIR filtering, delay lines and sliding correlators.
//!
//! The rake path searcher and the OFDM preamble detector are both built on
//! sliding correlation, and the down-sampling front end of the OFDM receiver
//! is an FIR decimator; this module provides those primitives over both
//! integer and floating scalars.

use crate::complex::Cplx;

/// A real-coefficient FIR filter over complex integer samples, with an output
/// arithmetic right shift (the fixed-point equivalent of coefficient
/// normalisation).
///
/// # Example
///
/// ```
/// use sdr_dsp::{Cplx, filter::FirI32};
///
/// // A 2-tap boxcar with >>1: a simple half-band-ish smoother.
/// let mut fir = FirI32::new(vec![1, 1], 1);
/// let y: Vec<_> = [4, 8, 12].iter().map(|&v| fir.push(Cplx::new(v, 0))).collect();
/// assert_eq!(y[1], Cplx::new(6, 0)); // (4+8)/2
/// assert_eq!(y[2], Cplx::new(10, 0)); // (8+12)/2
/// ```
#[derive(Debug, Clone)]
pub struct FirI32 {
    taps: Vec<i32>,
    delay: Vec<Cplx<i32>>,
    pos: usize,
    shift: u32,
}

impl FirI32 {
    /// Creates a filter from its tap vector and output shift.
    ///
    /// # Panics
    ///
    /// Panics if `taps` is empty.
    pub fn new(taps: Vec<i32>, shift: u32) -> Self {
        assert!(!taps.is_empty(), "fir: at least one tap required");
        let len = taps.len();
        FirI32 {
            taps,
            delay: vec![Cplx::<i32>::ZERO; len],
            pos: 0,
            shift,
        }
    }

    /// Number of taps.
    pub fn len(&self) -> usize {
        self.taps.len()
    }

    /// True if the filter has exactly one tap (degenerate).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Pushes one sample and returns the filter output.
    pub fn push(&mut self, x: Cplx<i32>) -> Cplx<i32> {
        self.delay[self.pos] = x;
        let n = self.taps.len();
        let mut acc = Cplx::<i64>::ZERO;
        for (k, &t) in self.taps.iter().enumerate() {
            let idx = (self.pos + n - k) % n;
            let s = self.delay[idx];
            acc += Cplx::new(s.re as i64 * t as i64, s.im as i64 * t as i64);
        }
        self.pos = (self.pos + 1) % n;
        acc.shr(self.shift).narrow()
    }

    /// Resets the delay line to zero.
    pub fn reset(&mut self) {
        self.delay.iter_mut().for_each(|v| *v = Cplx::<i32>::ZERO);
        self.pos = 0;
    }
}

/// Decimates a sample stream by an integer factor, keeping sample 0, `m`,
/// `2m`, …
pub fn decimate<T: Copy>(x: &[T], m: usize) -> Vec<T> {
    assert!(m >= 1, "decimate: factor must be >= 1");
    x.iter().step_by(m).copied().collect()
}

/// Sliding cross-correlation of a complex integer stream against a reference
/// pattern: `y[n] = Σ_k x[n+k]·conj(ref[k])`, evaluated for every offset `n`
/// where the full pattern fits, with 64-bit accumulation and a final shift.
pub fn cross_correlate(x: &[Cplx<i32>], pattern: &[Cplx<i32>], shift: u32) -> Vec<Cplx<i64>> {
    if pattern.is_empty() || x.len() < pattern.len() {
        return Vec::new();
    }
    let n = x.len() - pattern.len() + 1;
    (0..n)
        .map(|off| {
            let mut acc = Cplx::<i64>::ZERO;
            for (k, &p) in pattern.iter().enumerate() {
                let s = x[off + k].widen();
                acc += s * p.conj().widen();
            }
            acc.shr(shift)
        })
        .collect()
}

/// Lag-`l` autocorrelation over a window of length `w`:
/// `y[n] = Σ_{k<w} x[n+k]·conj(x[n+k+l])` — the Schmidl-style metric used by
/// the OFDM preamble detector (the short training symbol repeats every 16
/// samples, so `l = 16` yields a plateau during the preamble).
pub fn autocorr_lag(x: &[Cplx<i32>], lag: usize, window: usize) -> Vec<Cplx<i64>> {
    if x.len() < lag + window {
        return Vec::new();
    }
    let n = x.len() - lag - window + 1;
    (0..n)
        .map(|off| {
            let mut acc = Cplx::<i64>::ZERO;
            for k in 0..window {
                acc += x[off + k].widen() * x[off + k + lag].conj().widen();
            }
            acc
        })
        .collect()
}

/// Sliding sum of squared magnitudes over a window (used to normalise the
/// autocorrelation metric).
pub fn sliding_energy(x: &[Cplx<i32>], window: usize) -> Vec<i64> {
    if x.len() < window || window == 0 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(x.len() - window + 1);
    let mut acc: i64 = x[..window].iter().map(|v| v.sqmag()).sum();
    out.push(acc);
    for n in window..x.len() {
        acc += x[n].sqmag() - x[n - window].sqmag();
        out.push(acc);
    }
    out
}

/// A fixed-length delay line returning the sample `depth` pushes ago
/// (zero-initialised).
#[derive(Debug, Clone)]
pub struct DelayLine<T> {
    buf: Vec<T>,
    pos: usize,
}

impl<T: Copy + Default> DelayLine<T> {
    /// Creates a delay of `depth` samples.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "delay line depth must be positive");
        DelayLine {
            buf: vec![T::default(); depth],
            pos: 0,
        }
    }

    /// Pushes a sample, returning the sample from `depth` pushes earlier.
    pub fn push(&mut self, x: T) -> T {
        let out = self.buf[self.pos];
        self.buf[self.pos] = x;
        self.pos = (self.pos + 1) % self.buf.len();
        out
    }

    /// The delay depth.
    pub fn depth(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fir_impulse_response_is_taps() {
        let mut fir = FirI32::new(vec![3, -2, 5], 0);
        let mut input = vec![Cplx::new(1, 0)];
        input.extend(std::iter::repeat_n(Cplx::<i32>::ZERO, 4));
        let y: Vec<i32> = input.iter().map(|&v| fir.push(v).re).collect();
        assert_eq!(&y[..3], &[3, -2, 5]);
        assert_eq!(&y[3..], &[0, 0]);
    }

    #[test]
    fn fir_reset_clears_state() {
        let mut fir = FirI32::new(vec![1, 1], 0);
        fir.push(Cplx::new(9, 9));
        fir.reset();
        assert_eq!(fir.push(Cplx::new(1, 0)), Cplx::new(1, 0));
    }

    #[test]
    fn decimate_keeps_every_mth() {
        assert_eq!(decimate(&[0, 1, 2, 3, 4, 5, 6], 3), vec![0, 3, 6]);
        assert_eq!(decimate(&[1, 2, 3], 1), vec![1, 2, 3]);
    }

    #[test]
    fn cross_correlation_peaks_at_alignment() {
        let pattern: Vec<Cplx<i32>> = [1, -1, 1, 1].iter().map(|&v| Cplx::new(v, 0)).collect();
        let mut x = vec![Cplx::<i32>::ZERO; 10];
        for (k, &p) in pattern.iter().enumerate() {
            x[4 + k] = p.scale(7);
        }
        let y = cross_correlate(&x, &pattern, 0);
        let peak = y
            .iter()
            .enumerate()
            .max_by_key(|(_, v)| v.sqmag())
            .unwrap()
            .0;
        assert_eq!(peak, 4);
        assert_eq!(y[4], Cplx::new(28, 0));
    }

    #[test]
    fn cross_correlation_of_short_input_is_empty() {
        let p = vec![Cplx::new(1, 0); 8];
        assert!(cross_correlate(&[Cplx::<i32>::ZERO; 4], &p, 0).is_empty());
    }

    #[test]
    fn autocorr_detects_periodicity() {
        // A period-4 sequence has |autocorr(lag=4)| equal to the window energy.
        let x: Vec<Cplx<i32>> = (0..32)
            .map(|n| Cplx::new([5, -3, 2, 7][n % 4], [1, 4, -2, 0][n % 4]))
            .collect();
        let y = autocorr_lag(&x, 4, 8);
        let e: i64 = x[..8].iter().map(|v| v.sqmag()).sum();
        assert_eq!(y[0], Cplx::new(e, 0));
    }

    #[test]
    fn sliding_energy_matches_direct_sum() {
        let x: Vec<Cplx<i32>> = (0..20).map(|n| Cplx::new(n, -n)).collect();
        let y = sliding_energy(&x, 5);
        for (off, &v) in y.iter().enumerate() {
            let direct: i64 = x[off..off + 5].iter().map(|s| s.sqmag()).sum();
            assert_eq!(v, direct);
        }
    }

    #[test]
    fn delay_line_delays_exactly() {
        let mut d = DelayLine::<i32>::new(3);
        let out: Vec<i32> = (1..=6).map(|v| d.push(v)).collect();
        assert_eq!(out, vec![0, 0, 0, 1, 2, 3]);
        assert_eq!(d.depth(), 3);
    }

    #[test]
    #[should_panic]
    fn delay_line_rejects_zero_depth() {
        DelayLine::<i32>::new(0);
    }
}
