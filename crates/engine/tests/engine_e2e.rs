//! Engine integration tests: the Fig. 10 reconfiguration served from the
//! configuration cache, pool backpressure, clean shutdown with in-flight
//! jobs, and a mixed-standard stress run.

use std::sync::Arc;

use sdr_engine::metrics::KernelKind;
use sdr_engine::{
    Engine, EngineConfig, Metrics, PoolConfig, Session, SessionState, ShardPool, Standard,
    SubmitError,
};

/// End to end on one worker: an OFDM session detects the preamble on
/// configuration 2a, swaps to 2b on the *same* array, and decodes its
/// frame; a second session then repeats the cycle and every configuration
/// comes out of the cache — two builds total, never a rebuild.
#[test]
fn ofdm_reconfiguration_is_served_from_the_cache() {
    let mut engine = Engine::new(EngineConfig {
        shards: 1,
        queue_depth: 8,
        cache_capacity: 8,
        ..EngineConfig::default()
    });
    let summary = engine.run(vec![Session::ofdm(0, 11), Session::ofdm(1, 12)]);

    for s in &summary.completed {
        assert_eq!(*s.state(), SessionState::Done, "session {} failed", s.id());
    }
    let snap = summary.snapshot;
    // Two distinct netlists (2a detector, 2b demodulator) were ever built…
    assert_eq!(
        snap.cache_misses, 2,
        "each configuration built exactly once"
    );
    // …yet both sessions activated both: the second session's activations
    // were cache hits (2a re-loaded from the cached netlist after the
    // first session's swap unloaded it; 2b still resident).
    assert!(
        snap.cache_hits >= 2,
        "second session not served from cache: {snap}"
    );
    assert!(snap.reconfigurations >= 1, "no 2a->2b swap recorded");
    assert!(
        snap.config_bus_cycles > 0,
        "loads must pay serial-bus cycles"
    );
    assert_eq!(snap.kernel_jobs[KernelKind::PreambleDetector.index()], 2);
    assert_eq!(snap.kernel_jobs[KernelKind::Demodulator.index()], 2);
}

/// A full shard queue rejects with `WouldBlock` and hands the session
/// back; the rejection is counted, and the queued sessions still run once
/// the shard resumes.
#[test]
fn full_shard_returns_would_block() {
    let metrics = Arc::new(Metrics::new());
    let pool = ShardPool::new(
        PoolConfig {
            shards: 1,
            queue_depth: 2,
            cache_capacity: 4,
            start_paused: true,
            ..PoolConfig::default()
        },
        Arc::clone(&metrics),
    );

    assert!(pool.submit(Session::wcdma(0, 1)).is_ok());
    assert!(pool.submit(Session::wcdma(1, 2)).is_ok());
    assert_eq!(pool.queue_depth(0), 2);
    match pool.submit(Session::wcdma(2, 3)) {
        Err(SubmitError::WouldBlock(s)) => assert_eq!(s.id(), 2, "same session handed back"),
        other => panic!("expected WouldBlock, got {other:?}"),
    }
    assert_eq!(metrics.snapshot().jobs_rejected, 1);
    assert_eq!(metrics.snapshot().queue_high_water, 2);

    pool.resume(0);
    let a = pool.recv().expect("first queued session steps");
    let b = pool.recv().expect("second queued session steps");
    assert_eq!(metrics.snapshot().jobs_run, 2);
    assert!(
        !a.is_terminal() && !b.is_terminal(),
        "one step each, not run to completion"
    );
}

/// Shutting down with queued jobs is clean: every in-flight session is
/// stepped exactly once by its worker while draining, then returned.
#[test]
fn shutdown_drains_in_flight_jobs() {
    let metrics = Arc::new(Metrics::new());
    let pool = ShardPool::new(
        PoolConfig {
            shards: 2,
            queue_depth: 8,
            cache_capacity: 4,
            start_paused: true,
            ..PoolConfig::default()
        },
        Arc::clone(&metrics),
    );
    for id in 0..6 {
        pool.submit(Session::wcdma(id, 10 + id)).unwrap();
    }

    let leftover = pool.shutdown();
    assert_eq!(leftover.len(), 6, "every in-flight session handed back");
    for s in &leftover {
        assert_eq!(*s.state(), SessionState::Searching, "stepped exactly once");
    }
    let snap = metrics.snapshot();
    assert_eq!(snap.jobs_run, 6);
    assert_eq!(snap.sessions_completed + snap.sessions_failed, 0);
}

/// Stress: 64 mixed sessions over 4 shards all reach `Done`, and the
/// metrics ledger stays consistent with what actually happened.
#[test]
fn stress_64_mixed_sessions_over_4_shards() {
    let mut engine = Engine::new(EngineConfig {
        shards: 4,
        queue_depth: 8, // small queues force re-queue traffic
        cache_capacity: 8,
        ..EngineConfig::default()
    });
    let sessions: Vec<Session> = (0..64)
        .map(|id| {
            if id % 2 == 0 {
                Session::wcdma(id, 1_000 + id)
            } else {
                Session::ofdm(id, 2_000 + id)
            }
        })
        .collect();
    let summary = engine.run(sessions);

    assert_eq!(
        summary.completed.len(),
        64,
        "every session reached a terminal state"
    );
    for s in &summary.completed {
        assert_eq!(
            *s.state(),
            SessionState::Done,
            "session {} ({:?}) failed",
            s.id(),
            s.standard()
        );
    }
    let wcdma = summary
        .completed
        .iter()
        .filter(|s| s.standard() == Standard::Wcdma)
        .count();
    assert_eq!(wcdma, 32);

    let snap = summary.snapshot;
    assert_eq!(snap.sessions_started, 64);
    assert_eq!(snap.sessions_completed, 64);
    assert_eq!(snap.sessions_failed, 0);
    // Every session takes exactly 3 steps (capture, acquire, demodulate).
    assert_eq!(snap.jobs_run, 3 * 64);
    // 4 distinct configurations, built at most once per shard.
    assert!(
        snap.cache_misses <= 16,
        "too many rebuilds: {}",
        snap.cache_misses
    );
    assert!(
        snap.cache_hits > snap.cache_misses,
        "cache mostly hits: {snap}"
    );
    assert!(snap.reconfigurations >= 1);
    assert!(snap.queue_high_water >= 1);
    // Each standard's kernels all ran.
    for kind in KernelKind::ALL {
        assert!(
            snap.kernel_jobs[kind.index()] > 0,
            "{} never ran",
            kind.name()
        );
        assert!(
            snap.kernel_cycles[kind.index()] > 0,
            "{} spent no cycles",
            kind.name()
        );
    }
    assert!(snap.cache_hit_rate() > 0.5);
}

/// More shards than sessions: idle shards must admit trivially instead of
/// panicking the EDF admission check.
#[test]
fn idle_shards_admit_trivially() {
    let mut engine = Engine::new(EngineConfig {
        shards: 8,
        ..EngineConfig::default()
    });
    let summary = engine.run(vec![Session::wcdma(0, 7), Session::ofdm(1, 8)]);
    assert_eq!(summary.done(), 2);
    assert_eq!(summary.admission.len(), 8);
    assert!(summary.admission_feasible());
}
