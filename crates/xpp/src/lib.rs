//! Cycle-level simulator of a PACT XPP-64A style coarse-grained
//! reconfigurable array (CGRA).
//!
//! This crate is the reconfigurable-hardware substrate of the `xpp-sdr`
//! reproduction of *"Reconfigurable Signal Processing in Wireless Terminals"*
//! (DATE 2003). It models the architecture the paper describes:
//!
//! * an **8×8 array of 24-bit ALU processing elements** ([`Word`]) with a
//!   column of eight 512×24-bit RAM elements on either side ([`Geometry`]),
//! * **token-based handshake dataflow**: objects fire when their inputs hold
//!   packets and their outputs have space, so pipelining and back-pressure
//!   emerge from the protocol ([`channel::Channel`]),
//! * **software-defined configurations**: a [`Netlist`] (built with
//!   [`NetlistBuilder`]) describes object behaviours and routing, playing the
//!   role of NML source code in the XPP tool flow,
//! * a **configuration manager** with runtime partial reconfiguration:
//!   configurations load over a serial bus, hold resources while resident,
//!   and can be removed to free PAEs for follow-on configurations
//!   ([`Array::configure`], [`Array::unload`]),
//! * **statistics and an energy/area model** calibrated to the paper's
//!   0.13 µm HCMOS9 implementation ([`ArrayStats`], [`power::EnergyModel`]).
//!
//! # Quick start
//!
//! ```
//! use xpp_array::{AluOp, Array, NetlistBuilder, Word};
//!
//! # fn main() -> Result<(), xpp_array::Error> {
//! // A multiply pipeline: y = (a*b) >> 4, running one result per clock
//! // cycle once the pipeline fills.
//! let mut nl = NetlistBuilder::new("mac");
//! let a = nl.input("a");
//! let b = nl.input("b");
//! let y = nl.alu(AluOp::MulShr(4), a, b);
//! nl.output("y", y);
//!
//! let mut array = Array::xpp64a();
//! let cfg = array.configure(&nl.build()?)?;
//! array.push_input(cfg, "a", (0..16).map(Word::new))?;
//! array.push_input(cfg, "b", (0..16).map(|_| Word::new(32)))?;
//! array.run_until_idle(1_000)?;
//! let y: Vec<i32> = array.drain_output(cfg, "y")?.iter().map(|w| w.value()).collect();
//! assert_eq!(y[3], 6); // (3*32) >> 4
//! # Ok(())
//! # }
//! ```

pub mod array;
pub mod channel;
pub mod compiled;
pub mod error;
#[cfg(feature = "faults")]
pub mod fault;
pub mod netlist;
pub mod object;
pub mod place;
pub mod power;
pub mod stats;
pub mod word;

pub use array::{Array, ConfigId, CONFIG_CYCLES_PER_OBJECT};
pub use compiled::CompiledConfig;
pub use error::{Error, Result};
pub use netlist::{
    CounterPorts, DataIn, DataOut, EvIn, EvOut, FifoPorts, Netlist, NetlistBuilder, NodeId,
    RamPorts, DEFAULT_CHANNEL_CAPACITY,
};
pub use object::{AluOp, CounterCfg, ObjectKind, SlotClass, UnaryOp, RAM_WORDS};
pub use place::{Geometry, Placement, ResourceCounts, ResourcePool};
pub use stats::ArrayStats;
pub use word::{Event, Word, WORD_BITS, WORD_MAX, WORD_MIN};
