//! The OFDM front-end configurations and the Fig. 10 runtime
//! reconfiguration scenario.
//!
//! Paper: "Modules contained in Configuration 1 are required to run
//! continuously and thus remain in the hardware. The resources of the
//! preamble detection (Configuration 2a) can be removed after execution.
//! The freed resources are then available for the demodulation tasks
//! contained in Configuration 2b."
//!
//! * **Configuration 1** — the 2:1 down-sampler plus the FFT-64 of Fig. 9
//!   ([`frontend_netlist`]); resident for the lifetime of the receiver.
//! * **Configuration 2a** — the lag-16 preamble-detection correlator
//!   ([`preamble_detector_netlist`]), bit-exact with
//!   [`autocorr_metric`](crate::rx::autocorr_metric).
//! * **Configuration 2b** — the QPSK demodulator
//!   ([`demodulator_netlist`]): derotation by streamed conjugate channel
//!   weights and sign slicing.
//!
//! [`ReconfigurableFrontend`] drives the scenario on one array: during
//! search, 2a occupies the last four RAM-PAEs (the FFT's lookup FIFOs take
//! twelve — the device is exactly full); once a frame is found, 2a is
//! removed and 2b loads into the freed PAEs.

use crate::rx::{AUTOCORR_LAG, AUTOCORR_PROD_SHIFT, AUTOCORR_WINDOW};
use crate::xpp_map::{split_iq, zip_iq};
use sdr_dsp::Cplx;
use xpp_array::{
    AluOp, Array, ConfigId, CounterCfg, Netlist, NetlistBuilder, ResourceCounts, Result, UnaryOp,
    Word,
};

/// Golden 2:1 decimating average: `out[k] = (x[2k] + x[2k+1]) >> 1`
/// per component (truncating) — the "down sampling" block of Fig. 8/10
/// reducing the 40 Msps ADC stream to the 20 Msps channel rate.
pub fn downsample2(x: &[Cplx<i32>]) -> Vec<Cplx<i32>> {
    x.chunks_exact(2)
        .map(|p| Cplx::new((p[0].re + p[1].re) >> 1, (p[0].im + p[1].im) >> 1))
        .collect()
}

/// Builds the down-sampler netlist alone (used by tests; the resident
/// configuration [`frontend_netlist`] embeds the same structure).
pub fn downsampler_netlist() -> Netlist {
    let mut nl = NetlistBuilder::new("fig10-downsampler");
    let i_in = nl.input("i_in");
    let q_in = nl.input("q_in");
    let (di, dq) = build_downsampler(&mut nl, i_in, q_in);
    nl.output("i_out", di);
    nl.output("q_out", dq);
    nl.build().expect("downsampler netlist is well formed")
}

fn build_downsampler(
    nl: &mut NetlistBuilder,
    i_in: xpp_array::DataOut,
    q_in: xpp_array::DataOut,
) -> (xpp_array::DataOut, xpp_array::DataOut) {
    let tog = nl.counter(CounterCfg::modulo(2));
    let tog_true = nl.unary(UnaryOp::GeK(Word::new(1)), tog.value);
    let tog_ev = nl.to_event(tog_true);
    let (i_even, i_odd) = nl.demux(tog_ev, i_in);
    let (q_even, q_odd) = nl.demux(tog_ev, q_in);
    let si = nl.alu(AluOp::Add, i_even, i_odd);
    let sq = nl.alu(AluOp::Add, q_even, q_odd);
    let di = nl.unary(UnaryOp::ShrK(1), si);
    let dq = nl.unary(UnaryOp::ShrK(1), sq);
    (di, dq)
}

/// Builds Configuration 1: down-sampler + FFT-64, the continuously-resident
/// modules of Fig. 10.
///
/// External ports: `i_in`/`q_in` (40 Msps), `ds_i`/`ds_q` (20 Msps, routed
/// to 2a or to the framing logic), `fft_i_in`/`fft_q_in` and
/// `fft_i_out`/`fft_q_out` (64-sample frames through the Fig. 9 kernel).
pub fn frontend_netlist(stage_shift: u32) -> Netlist {
    // Reuse the validated FFT netlist nodes by rebuilding within one
    // builder: simplest construction is to merge the two blocks manually —
    // the FFT builder is self-contained, so we wrap it as its own netlist
    // and splice the down-sampler alongside through shared construction.
    let mut nl = NetlistBuilder::new(format!("fig10-config1-s{stage_shift}"));
    nl.set_default_capacity(4);
    let i_in = nl.input("i_in");
    let q_in = nl.input("q_in");
    let (di, dq) = build_downsampler(&mut nl, i_in, q_in);
    nl.output("ds_i", di);
    nl.output("ds_q", dq);
    // The FFT block: replicate fft64_netlist's structure by instantiating
    // it as a sub-netlist is not supported; instead the scenario keeps the
    // FFT as part of this configuration by construction below.
    crate::xpp_map::fft64::build_fft64(
        &mut nl,
        stage_shift,
        "fft_i_in",
        "fft_q_in",
        "fft_i_out",
        "fft_q_out",
    );
    nl.build().expect("config1 netlist is well formed")
}

/// Builds Configuration 2a: the preamble-detection correlator. Bit-exact
/// with [`autocorr_metric`](crate::rx::autocorr_metric).
///
/// External ports: `i_in`/`q_in` (20 Msps) → `metric` (one word per
/// sample).
pub fn preamble_detector_netlist() -> Netlist {
    let mut nl = NetlistBuilder::new("fig10-config2a-detector");
    let i_in = nl.input("i_in");
    let q_in = nl.input("q_in");

    // Lag-16 delay lines (zero history).
    let lag_i = nl.fifo(AUTOCORR_LAG + 1, vec![Word::ZERO; AUTOCORR_LAG]);
    let lag_q = nl.fifo(AUTOCORR_LAG + 1, vec![Word::ZERO; AUTOCORR_LAG]);
    nl.wire(i_in, lag_i.input);
    nl.wire(q_in, lag_q.input);
    let i_d = lag_i.output;
    let q_d = lag_q.output;

    // p = x[n] · conj(x[n−16]) with per-product >> 6.
    let m1 = nl.alu(AluOp::MulShr(AUTOCORR_PROD_SHIFT), i_in, i_d);
    let m2 = nl.alu(AluOp::MulShr(AUTOCORR_PROD_SHIFT), q_in, q_d);
    let m3 = nl.alu(AluOp::MulShr(AUTOCORR_PROD_SHIFT), q_in, i_d);
    let m4 = nl.alu(AluOp::MulShr(AUTOCORR_PROD_SHIFT), i_in, q_d);
    let p_re = nl.alu(AluOp::Add, m1, m2);
    let p_im = nl.alu(AluOp::Sub, m3, m4);

    // Sliding window sum: s += p[n] − p[n−32] (running accumulator with a
    // feedback edge carrying an initial zero token).
    let mut windowed = Vec::new();
    for p in [p_re, p_im] {
        let delay = nl.fifo(AUTOCORR_WINDOW + 1, vec![Word::ZERO; AUTOCORR_WINDOW]);
        nl.wire(p, delay.input);
        let diff = nl.alu(AluOp::Sub, p, delay.output);
        let (acc_in0, acc_in1, acc_out) = nl.alu_deferred(AluOp::Add);
        nl.wire(diff, acc_in0);
        nl.wire_with(acc_out, acc_in1, 2, vec![Word::ZERO]);
        windowed.push(acc_out);
    }
    let abs_re = nl.unary(UnaryOp::Abs, windowed[0]);
    let abs_im = nl.unary(UnaryOp::Abs, windowed[1]);
    let metric = nl.alu(AluOp::Add, abs_re, abs_im);
    nl.output("metric", metric);
    nl.build().expect("detector netlist is well formed")
}

/// Builds Configuration 2b: the QPSK demodulator — derotation by the
/// conjugate channel weight (streamed per subcarrier from the DSP) and sign
/// slicing.
///
/// External ports: `i_in`/`q_in` (FFT outputs), `wi`/`wq` (Q9 weights) →
/// `b0`/`b1` (hard bits as 0/1 words).
pub fn demodulator_netlist() -> Netlist {
    let mut nl = NetlistBuilder::new("fig10-config2b-demodulator");
    let i_in = nl.input("i_in");
    let q_in = nl.input("q_in");
    let wi = nl.input("wi");
    let wq = nl.input("wq");

    // z = y·conj(w) >> 9 : re = i·wi + q·wq ; im = q·wi − i·wq.
    let p1 = nl.alu(AluOp::Mul, i_in, wi);
    let p2 = nl.alu(AluOp::Mul, q_in, wq);
    let p3 = nl.alu(AluOp::Mul, q_in, wi);
    let p4 = nl.alu(AluOp::Mul, i_in, wq);
    let re = nl.alu(AluOp::Add, p1, p2);
    let im = nl.alu(AluOp::Sub, p3, p4);
    let re = nl.unary(UnaryOp::ShrK(9), re);
    let im = nl.unary(UnaryOp::ShrK(9), im);
    let b0 = nl.unary(UnaryOp::LtK(Word::ZERO), re);
    let b1 = nl.unary(UnaryOp::LtK(Word::ZERO), im);
    nl.output("b0", b0);
    nl.output("b1", b1);
    nl.build().expect("demodulator netlist is well formed")
}

/// A log entry of the reconfiguration scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconfigEvent {
    /// What happened.
    pub action: String,
    /// Configuration-bus cycles consumed so far.
    pub config_cycles: u64,
    /// Free resources after the action.
    pub free: ResourceCounts,
}

/// Drives the Fig. 10 scenario on one array.
#[derive(Debug)]
pub struct ReconfigurableFrontend {
    array: Array,
    cfg1: ConfigId,
    cfg2a: Option<ConfigId>,
    cfg2b: Option<ConfigId>,
    log: Vec<ReconfigEvent>,
}

impl ReconfigurableFrontend {
    /// Loads Configuration 1 (resident) and 2a (search mode).
    ///
    /// # Errors
    ///
    /// Returns an error if placement fails.
    pub fn new(stage_shift: u32) -> Result<Self> {
        let mut array = Array::xpp64a();
        let cfg1 = array.configure(&frontend_netlist(stage_shift))?;
        let cfg2a = array.configure(&preamble_detector_netlist())?;
        array.connect(cfg1, "ds_i", cfg2a, "i_in")?;
        array.connect(cfg1, "ds_q", cfg2a, "q_in")?;
        let mut fe = ReconfigurableFrontend {
            array,
            cfg1,
            cfg2a: Some(cfg2a),
            cfg2b: None,
            log: Vec::new(),
        };
        fe.log("loaded config 1 (downsampler + FFT64) and 2a (preamble detector)");
        Ok(fe)
    }

    fn log(&mut self, action: &str) {
        self.log.push(ReconfigEvent {
            action: action.to_string(),
            config_cycles: self.array.stats().config_cycles,
            free: self.array.free_resources(),
        });
    }

    /// The scenario log.
    pub fn events(&self) -> &[ReconfigEvent] {
        &self.log
    }

    /// The underlying array.
    pub fn array(&self) -> &Array {
        &self.array
    }

    /// The resident configuration's handle.
    pub fn config1(&self) -> ConfigId {
        self.cfg1
    }

    /// True while the preamble detector is resident.
    pub fn searching(&self) -> bool {
        self.cfg2a.is_some()
    }

    /// Streams 40 Msps samples through the down-sampler into the detector,
    /// returning the metric stream (one value per 20 Msps sample).
    ///
    /// # Errors
    ///
    /// Returns an error if the detector is unloaded or the simulation
    /// stalls.
    pub fn search(&mut self, oversampled: &[Cplx<i32>]) -> Result<Vec<i32>> {
        let cfg2a = self.cfg2a.ok_or(xpp_array::Error::NoSuchConfig(0))?;
        let (i, q) = split_iq(oversampled);
        self.array.push_input(self.cfg1, "i_in", i)?;
        self.array.push_input(self.cfg1, "q_in", q)?;
        let expect = oversampled.len() / 2;
        let budget = 20 * oversampled.len() as u64 + 10_000;
        self.array
            .run_until_output(cfg2a, "metric", expect, budget)?;
        self.array.run_until_idle(10_000)?;
        Ok(self
            .array
            .drain_output(cfg2a, "metric")?
            .iter()
            .map(|w| w.value())
            .collect())
    }

    /// The Fig. 10 switch: removes 2a and loads the demodulator into the
    /// freed resources.
    ///
    /// # Errors
    ///
    /// Returns an error if already switched or placement fails.
    pub fn switch_to_demodulation(&mut self) -> Result<()> {
        let cfg2a = self.cfg2a.take().ok_or(xpp_array::Error::NoSuchConfig(0))?;
        self.array.unload(cfg2a)?;
        self.log("unloaded 2a: preamble-detector resources freed");
        let cfg2b = self.array.configure(&demodulator_netlist())?;
        // Drive the configuration bus until the demodulator is resident so
        // the event log captures the differential load cost.
        while !self.array.is_running(cfg2b) {
            self.array.step();
        }
        self.cfg2b = Some(cfg2b);
        self.log("loaded 2b (demodulator) into the freed resources");
        Ok(())
    }

    /// Runs one 64-sample frame through the resident FFT (the framing
    /// window is supplied by the dedicated-hardware side).
    ///
    /// # Errors
    ///
    /// Returns an error if the simulation stalls.
    pub fn fft(&mut self, frame: &[Cplx<i32>; 64]) -> Result<[Cplx<i32>; 64]> {
        let (i, q) = split_iq(frame);
        self.array.push_input(self.cfg1, "fft_i_in", i)?;
        self.array.push_input(self.cfg1, "fft_q_in", q)?;
        self.array
            .run_until_output(self.cfg1, "fft_i_out", 64, 20_000)?;
        self.array.run_until_idle(10_000)?;
        let i_out = self.array.drain_output(self.cfg1, "fft_i_out")?;
        let q_out = self.array.drain_output(self.cfg1, "fft_q_out")?;
        let flat = zip_iq(&i_out, &q_out);
        let mut buf = [Cplx::<i32>::ZERO; 64];
        buf.copy_from_slice(&flat[flat.len() - 64..]);
        Ok(buf)
    }

    /// Demodulates equaliser inputs through 2b: one `(y, w)` pair per
    /// subcarrier, returning `(b0, b1)` hard bits.
    ///
    /// # Errors
    ///
    /// Returns an error if 2b is not loaded or the simulation stalls.
    pub fn demodulate(
        &mut self,
        symbols: &[Cplx<i32>],
        weights: &[Cplx<i32>],
    ) -> Result<Vec<(u8, u8)>> {
        assert_eq!(symbols.len(), weights.len(), "one weight per subcarrier");
        let cfg2b = self.cfg2b.ok_or(xpp_array::Error::NoSuchConfig(0))?;
        let (i, q) = split_iq(symbols);
        let (wi, wq) = split_iq(weights);
        self.array.push_input(cfg2b, "i_in", i)?;
        self.array.push_input(cfg2b, "q_in", q)?;
        self.array.push_input(cfg2b, "wi", wi)?;
        self.array.push_input(cfg2b, "wq", wq)?;
        let budget = 20 * symbols.len() as u64 + 5_000;
        self.array
            .run_until_output(cfg2b, "b0", symbols.len(), budget)?;
        self.array.run_until_idle(5_000)?;
        let b0 = self.array.drain_output(cfg2b, "b0")?;
        let b1 = self.array.drain_output(cfg2b, "b1")?;
        Ok(b0
            .iter()
            .zip(&b1)
            .map(|(a, b)| (a.value() as u8, b.value() as u8))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rx::autocorr_metric;
    use xpp_array::Error;

    fn samples(n: usize, seed: i32) -> Vec<Cplx<i32>> {
        (0..n as i32)
            .map(|i| {
                Cplx::new(
                    ((i * 37 + seed * 11) % 1023) - 511,
                    ((i * 73 + seed * 5) % 1023) - 511,
                )
            })
            .collect()
    }

    #[test]
    fn downsampler_matches_golden() {
        let mut array = Array::xpp64a();
        let cfg = array.configure(&downsampler_netlist()).unwrap();
        let x = samples(128, 1);
        let (i, q) = split_iq(&x);
        array.push_input(cfg, "i_in", i).unwrap();
        array.push_input(cfg, "q_in", q).unwrap();
        array.run_until_idle(10_000).unwrap();
        let i_out = array.drain_output(cfg, "i_out").unwrap();
        let q_out = array.drain_output(cfg, "q_out").unwrap();
        assert_eq!(zip_iq(&i_out, &q_out), downsample2(&x));
    }

    #[test]
    fn detector_matches_golden_metric() {
        let mut array = Array::xpp64a();
        let cfg = array.configure(&preamble_detector_netlist()).unwrap();
        let x = samples(256, 3);
        let (i, q) = split_iq(&x);
        array.push_input(cfg, "i_in", i).unwrap();
        array.push_input(cfg, "q_in", q).unwrap();
        array.run_until_idle(20_000).unwrap();
        let metric: Vec<i32> = array
            .drain_output(cfg, "metric")
            .unwrap()
            .iter()
            .map(|w| w.value())
            .collect();
        assert_eq!(metric, autocorr_metric(&x));
    }

    #[test]
    fn demodulator_slices_derotated_symbols() {
        let mut array = Array::xpp64a();
        let cfg = array.configure(&demodulator_netlist()).unwrap();
        let y = samples(96, 7);
        let w = vec![Cplx::new(400, -200); 96];
        let (i, q) = split_iq(&y);
        let (wi, wq) = split_iq(&w);
        array.push_input(cfg, "i_in", i).unwrap();
        array.push_input(cfg, "q_in", q).unwrap();
        array.push_input(cfg, "wi", wi).unwrap();
        array.push_input(cfg, "wq", wq).unwrap();
        array.run_until_idle(20_000).unwrap();
        let b0 = array.drain_output(cfg, "b0").unwrap();
        let b1 = array.drain_output(cfg, "b1").unwrap();
        for k in 0..y.len() {
            let z = y[k].cmul_shr(w[k].conj(), 9);
            assert_eq!(b0[k].value(), (z.re < 0) as i32, "sym {k}");
            assert_eq!(b1[k].value(), (z.im < 0) as i32, "sym {k}");
        }
    }

    #[test]
    fn scenario_fills_the_device_then_swaps() {
        let mut fe = ReconfigurableFrontend::new(2).unwrap();
        // During search every RAM-PAE is occupied (12 FFT + 4 detector).
        assert_eq!(fe.array().free_resources().ram, 0);
        assert!(fe.searching());
        // A third configuration cannot fit now.
        let mut probe = NetlistBuilder::new("probe");
        let x = probe.input("x");
        let f = probe.fifo(4, vec![]);
        probe.wire(x, f.input);
        probe.output("y", f.output);
        let probe = probe.build().unwrap();
        match fe.array.configure(&probe) {
            Err(Error::PlacementFailed { resource, .. }) => assert_eq!(resource, "RAM slots"),
            other => panic!("expected RAM exhaustion, got {other:?}"),
        }
        fe.switch_to_demodulation().unwrap();
        assert!(!fe.searching());
        // 2a's four RAM-PAEs came back; 2b uses none.
        assert_eq!(fe.array().free_resources().ram, 4);
        assert_eq!(fe.events().len(), 3);
    }

    #[test]
    fn search_metric_flows_through_the_board_connection() {
        let mut fe = ReconfigurableFrontend::new(2).unwrap();
        // Oversampled (40 Msps) noise: metric of the downsampled stream.
        let over = samples(512, 9);
        let metric = fe.search(&over).unwrap();
        let golden = autocorr_metric(&downsample2(&over));
        assert_eq!(metric, golden);
    }

    #[test]
    fn resident_fft_works_before_and_after_the_swap() {
        use sdr_dsp::fft::Fft64Fixed;
        let mut fe = ReconfigurableFrontend::new(2).unwrap();
        let mut frame = [Cplx::<i32>::ZERO; 64];
        for (n, v) in frame.iter_mut().enumerate() {
            *v = Cplx::new((n as i32 * 31 % 1001) - 500, (n as i32 * 17 % 1001) - 500);
        }
        let golden = Fft64Fixed::with_stage_shift(2).run(&frame);
        assert_eq!(fe.fft(&frame).unwrap(), golden);
        fe.switch_to_demodulation().unwrap();
        assert_eq!(fe.fft(&frame).unwrap(), golden);
    }
}
