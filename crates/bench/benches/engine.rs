//! Engine throughput benches: whole terminal sessions per second through
//! the sharded worker pool, and the cost of a cached configuration
//! activation versus a cold build.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sdr_engine::{Engine, EngineConfig, Metrics, Session, WorkerArray};
use std::sync::Arc;

/// A mixed batch (half W-CDMA, half OFDM) run to completion.
fn mixed_batch(n: u64) -> Vec<Session> {
    (0..n)
        .map(|id| {
            if id % 2 == 0 {
                Session::wcdma(id, 100 + id)
            } else {
                Session::ofdm(id, 200 + id)
            }
        })
        .collect()
}

fn bench_engine_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_throughput");
    for (sessions, shards) in [(8u64, 2usize), (16, 4)] {
        g.bench_function(format!("{sessions}sessions_{shards}shards"), |b| {
            b.iter_batched(
                || {
                    (
                        Engine::new(EngineConfig {
                            shards,
                            ..EngineConfig::default()
                        }),
                        mixed_batch(sessions),
                    )
                },
                |(mut engine, batch)| {
                    let summary = engine.run(batch);
                    assert_eq!(summary.failed(), 0);
                    summary
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_activation_cache(c: &mut Criterion) {
    use sdr_wcdma::xpp_map::WcdmaKernel;
    let mut g = c.benchmark_group("engine_activation");
    g.bench_function("cold_build", |b| {
        b.iter_batched(
            || WorkerArray::new(8, Arc::new(Metrics::new())),
            |mut w| w.activate(WcdmaKernel::Descrambler).unwrap(),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("cached_reload", |b| {
        b.iter_batched(
            || {
                let mut w = WorkerArray::new(8, Arc::new(Metrics::new()));
                w.activate(WcdmaKernel::Descrambler).unwrap();
                w.deactivate(WcdmaKernel::Descrambler).unwrap();
                w
            },
            |mut w| w.activate(WcdmaKernel::Descrambler).unwrap(),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("resident_hit", |b| {
        let mut w = WorkerArray::new(8, Arc::new(Metrics::new()));
        w.activate(WcdmaKernel::Descrambler).unwrap();
        b.iter(|| w.activate(WcdmaKernel::Descrambler).unwrap())
    });
    g.finish();
}

criterion_group! {
    name = engine_benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engine_throughput, bench_activation_cache
}
criterion_main!(engine_benches);
