//! Sharded worker pool: each worker thread owns one simulated XPP array.
//!
//! Terminal sessions are submitted to a shard chosen by session id
//! (sticky affinity, so a terminal keeps hitting the same worker's
//! configuration cache). Each shard has a *bounded* queue: a full shard
//! rejects the submission with [`SubmitError::WouldBlock`] instead of
//! buffering unboundedly, which is the engine's backpressure signal.
//! Workers drain their queue into a deadline-ordered heap and always run
//! the most urgent session next (EDF dispatch, the runtime counterpart of
//! [`sdr_core::scheduler::schedule_edf`]).

use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TryRecvError, TrySendError};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

#[cfg(feature = "faults")]
use xpp_array::fault::{FaultInjector, FaultPlan};
use xpp_array::{Array, ConfigId, Error as XppError, Result as XppResult};

use crate::config_manager::{ConfigManager, ConfigStore, KernelSpec};
use crate::metrics::Metrics;
use crate::session::Session;

/// Supervision and recovery tuning shared by a pool's workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Kernel activation/run attempts before a fault error is surfaced to
    /// the session (each retry reloads the configuration from the shared
    /// [`ConfigStore`]). Clamped to at least 1.
    pub max_kernel_attempts: u32,
    /// Times a crashed session is re-dispatched to a restarted shard
    /// before it is dead-lettered.
    pub max_session_attempts: u32,
    /// Base delay between re-dispatches of a crashed session; doubles per
    /// attempt (exponential backoff).
    pub backoff: Duration,
    /// Extra array cycles granted to a configuration that has fired
    /// nothing before the watchdog declares it wedged and forces an
    /// unload + reload.
    pub watchdog_budget: u64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_kernel_attempts: 3,
            max_session_attempts: 3,
            backoff: Duration::from_millis(1),
            watchdog_budget: 2_000,
        }
    }
}

/// A worker's execution context: its private array plus the
/// [`ConfigManager`] driving that array's configuration lifecycle.
///
/// `activate` is the only way sessions load configurations, so every load
/// goes through the manager's tiers:
///
/// 1. **resident active** — the configuration is running on the array: free;
/// 2. **resident loading** — it was [`prefetch`](WorkerArray::prefetch)ed
///    earlier: pay only the residual bus cycles;
/// 3. **stored** — the compiled config is in the process-wide
///    [`ConfigStore`]: pay only the serial configuration bus;
/// 4. **cold** — build, compile and store it, then load.
///
/// When placement fails, the least recently used resident configuration
/// is unloaded and the load retried — the paper's Fig. 10 resource
/// recycling, applied automatically.
#[derive(Debug)]
pub struct WorkerArray {
    array: Array,
    cm: ConfigManager,
    metrics: Arc<Metrics>,
    policy: RecoveryPolicy,
}

impl WorkerArray {
    /// Creates a worker context around a fresh XPP-64A with its own
    /// private store (tests, benches, single-worker use).
    pub fn new(store_capacity: usize, metrics: Arc<Metrics>) -> Self {
        let store = Arc::new(ConfigStore::new(store_capacity));
        Self::with_store(store, metrics)
    }

    /// Creates a worker context drawing compiled configs from a shared
    /// process-wide store (what [`ShardPool`] workers use).
    pub fn with_store(store: Arc<ConfigStore>, metrics: Arc<Metrics>) -> Self {
        Self::with_policy(store, metrics, RecoveryPolicy::default())
    }

    /// Like [`with_store`](WorkerArray::with_store) with an explicit
    /// recovery policy (retry counts, watchdog budget).
    pub fn with_policy(
        store: Arc<ConfigStore>,
        metrics: Arc<Metrics>,
        policy: RecoveryPolicy,
    ) -> Self {
        WorkerArray {
            array: Array::xpp64a(),
            cm: ConfigManager::new(store, Arc::clone(&metrics)),
            metrics,
            policy,
        }
    }

    /// Attaches a shared fault injector to this worker's array. The
    /// injector's load ordinal is global across every array it is attached
    /// to, so a plan keeps advancing through worker restarts.
    #[cfg(feature = "faults")]
    pub fn attach_fault_injector(&mut self, injector: Arc<FaultInjector>) {
        self.array.attach_fault_injector(injector);
    }

    /// The underlying array, for driving I/O on an activated configuration.
    pub fn array_mut(&mut self) -> &mut Array {
        &mut self.array
    }

    /// Read-only view of the array (stats, placements).
    pub fn array(&self) -> &Array {
        &self.array
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The worker's configuration manager (lifecycle state, store access).
    pub fn config_manager(&self) -> &ConfigManager {
        &self.cm
    }

    /// The compiled-config store this worker draws from.
    pub fn store(&self) -> &Arc<ConfigStore> {
        self.cm.store()
    }

    /// Whether the kernel's configuration is currently on the array.
    pub fn is_resident(&self, name: &str) -> bool {
        self.cm.is_resident(name)
    }

    /// Ensures the kernel's configuration is loaded and running, and
    /// returns its handle. See the type docs for the activation tiers.
    ///
    /// Loads that fail with an injected fault (corrupted or aborted bus
    /// stream) are retried up to the policy's `max_kernel_attempts`: the
    /// faulted residue was already unloaded by the manager, so each retry
    /// is a clean reload from the shared store.
    ///
    /// # Errors
    ///
    /// Returns an error if placement fails even after unloading every
    /// other resident configuration, or a fault error once the retry
    /// budget is exhausted.
    pub fn activate(&mut self, spec: impl Into<KernelSpec>) -> XppResult<ConfigId> {
        let spec = spec.into();
        let attempts = self.policy.max_kernel_attempts.max(1);
        let mut attempt = 0;
        loop {
            attempt += 1;
            match self.cm.activate(&mut self.array, &spec) {
                Err(e) if e.is_fault() && attempt < attempts => {
                    // Detection was counted where the load failed; the
                    // reload we are about to do is the matching recovery.
                    Metrics::incr(&self.metrics.recoveries);
                }
                other => return other,
            }
        }
    }

    /// Runs a kernel body under the zero-fire watchdog: activates the
    /// configuration, runs `body`, and if the body times out without the
    /// configuration having fired a single object, grants it one extra
    /// `watchdog_budget` of cycles — still silent means the load is wedged
    /// (e.g. an injected stall), so the configuration is forcibly unloaded
    /// and the whole attempt retried from the store.
    ///
    /// # Errors
    ///
    /// Propagates the body's error, or [`XppError::ConfigWedged`] once a
    /// wedged configuration has exhausted the kernel retry budget.
    pub fn run_kernel<T>(
        &mut self,
        spec: impl Into<KernelSpec>,
        mut body: impl FnMut(&mut WorkerArray, ConfigId) -> XppResult<T>,
    ) -> XppResult<T> {
        let spec = spec.into();
        let attempts = self.policy.max_kernel_attempts.max(1);
        let mut attempt = 0;
        loop {
            attempt += 1;
            let cfg = self.activate(spec)?;
            let fires_before = self.array.config_fire_count(cfg);
            match body(self, cfg) {
                Err(e @ XppError::Timeout { .. }) => {
                    if !self.watchdog_wedged(cfg, fires_before) {
                        return Err(e);
                    }
                    Metrics::incr(&self.metrics.watchdog_kicks);
                    // Force the zombie off the array. Disposal surfaces
                    // the injected stall record (detected + recovered);
                    // the next attempt reloads from the store.
                    self.cm.deactivate(&mut self.array, &spec.config_name())?;
                    if attempt >= attempts {
                        return Err(XppError::ConfigWedged {
                            config: cfg.index(),
                        });
                    }
                }
                other => return other,
            }
        }
    }

    /// After a timeout: has the configuration fired anything, even when
    /// granted `watchdog_budget` extra cycles? No fires at all means the
    /// load completed but the objects never came alive.
    fn watchdog_wedged(&mut self, cfg: ConfigId, fires_before: u64) -> bool {
        if self.array.config_fire_count(cfg) != fires_before {
            return false;
        }
        self.array.run(self.policy.watchdog_budget);
        self.array.config_fire_count(cfg) == fires_before
    }

    /// Speculatively starts loading the kernel's configuration without
    /// waiting for it, so a later [`activate`](WorkerArray::activate) (or
    /// [`swap`](WorkerArray::swap)) pays only residual activation.
    /// Returns whether a prefetch was issued (`false` when already
    /// resident or the array is too full — prefetches never evict).
    ///
    /// # Errors
    ///
    /// Propagates array errors other than placement failure.
    pub fn prefetch(&mut self, spec: impl Into<KernelSpec>) -> XppResult<bool> {
        self.cm.prefetch(&mut self.array, &spec.into())
    }

    /// Unloads the kernel's configuration if resident; returns whether it
    /// was.
    ///
    /// # Errors
    ///
    /// Returns an error if the array rejects the unload.
    pub fn deactivate(&mut self, spec: impl Into<KernelSpec>) -> XppResult<bool> {
        let name = spec.into().config_name();
        self.cm.deactivate(&mut self.array, &name)
    }

    /// The Fig. 10 swap: unloads `from` (if resident) and activates `to`
    /// in the freed resources. Counted as a runtime reconfiguration when
    /// an unload actually happened; the array cycles the session waited
    /// on the swap are recorded in `reconfig_cycles` (~0 when `to` was
    /// prefetched).
    ///
    /// # Errors
    ///
    /// Returns an error if the unload or the activation fails.
    pub fn swap(
        &mut self,
        from: impl Into<KernelSpec>,
        to: impl Into<KernelSpec>,
    ) -> XppResult<ConfigId> {
        let cycles_before = self.array.stats().cycles;
        let unloaded = self.deactivate(from)?;
        if unloaded {
            Metrics::incr(&self.metrics.reconfigurations);
        }
        let id = self.activate(to)?;
        Metrics::add(
            &self.metrics.reconfig_cycles,
            self.array.stats().cycles - cycles_before,
        );
        Ok(id)
    }
}

/// Pool sizing and behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolConfig {
    /// Number of worker threads (each owning one array).
    pub shards: usize,
    /// Bounded depth of each shard's submission queue.
    pub queue_depth: usize,
    /// Compiled configurations the process-wide store may hold (shared by
    /// every worker).
    pub cache_capacity: usize,
    /// Start every worker paused (deterministic backpressure tests);
    /// resume with [`ShardPool::resume`].
    pub start_paused: bool,
    /// Supervision tuning: kernel/session retry budgets, crash backoff,
    /// watchdog cycle grant.
    pub recovery: RecoveryPolicy,
    /// Deterministic fault plan driven by one pool-wide injector shared
    /// across all shards (its load ordinal spans worker restarts). `None`
    /// injects nothing.
    #[cfg(feature = "faults")]
    pub fault_plan: Option<FaultPlan>,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            shards: 4,
            queue_depth: 32,
            cache_capacity: 8,
            start_paused: false,
            recovery: RecoveryPolicy::default(),
            #[cfg(feature = "faults")]
            fault_plan: None,
        }
    }
}

/// Why a submission was not accepted. The session is handed back so the
/// caller can retry or reroute it.
#[derive(Debug)]
pub enum SubmitError {
    /// The target shard's queue is full — backpressure.
    WouldBlock(Session),
    /// The pool has been shut down.
    Shutdown(Session),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::WouldBlock(s) => {
                write!(f, "shard queue full for session {}", s.id())
            }
            SubmitError::Shutdown(s) => {
                write!(f, "pool shut down; session {} rejected", s.id())
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Heap entry ordering sessions by (deadline, arrival) — earliest first.
struct QueuedSession {
    deadline: u64,
    seq: u64,
    session: Session,
}

impl QueuedSession {
    fn key(&self) -> (u64, u64) {
        (self.deadline, self.seq)
    }
}

impl PartialEq for QueuedSession {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for QueuedSession {}

impl PartialOrd for QueuedSession {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueuedSession {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest deadline.
        other.key().cmp(&self.key())
    }
}

#[derive(Debug, Default)]
struct PauseGate {
    paused: Mutex<bool>,
    unpaused: Condvar,
}

impl PauseGate {
    // A poisoned gate only means some thread panicked while holding the
    // lock; the bool inside is always valid, so recover it rather than
    // cascading the panic into pause/resume callers.
    fn set(&self, paused: bool) {
        *self.paused.lock().unwrap_or_else(PoisonError::into_inner) = paused;
        self.unpaused.notify_all();
    }

    fn wait_ready(&self) {
        let mut guard = self.paused.lock().unwrap_or_else(PoisonError::into_inner);
        while *guard {
            guard = self
                .unpaused
                .wait(guard)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

struct ShardHandle {
    queue: Option<SyncSender<Session>>,
    depth: Arc<AtomicU64>,
    pause: Arc<PauseGate>,
    worker: Option<JoinHandle<()>>,
}

/// The sharded worker pool.
pub struct ShardPool {
    shards: Vec<ShardHandle>,
    results: Receiver<Session>,
    metrics: Arc<Metrics>,
    #[cfg(feature = "faults")]
    injector: Option<Arc<FaultInjector>>,
}

impl ShardPool {
    /// Spawns `config.shards` workers, each with its own array and cache.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `queue_depth` is zero.
    pub fn new(config: PoolConfig, metrics: Arc<Metrics>) -> Self {
        assert!(config.shards > 0, "pool needs at least one shard");
        assert!(config.queue_depth > 0, "queue depth must be positive");
        let (results_tx, results) = mpsc::channel();
        // One compiled-config store for the whole pool: a kernel is built
        // and placed once per process, whichever shard first needs it.
        let store = Arc::new(ConfigStore::new(config.cache_capacity));
        #[cfg(feature = "faults")]
        let injector = config
            .fault_plan
            .clone()
            .map(|plan| Arc::new(FaultInjector::new(plan)));
        let shards = (0..config.shards)
            .map(|_| {
                let (tx, rx) = mpsc::sync_channel::<Session>(config.queue_depth);
                let depth = Arc::new(AtomicU64::new(0));
                let pause = Arc::new(PauseGate::default());
                pause.set(config.start_paused);
                let seed = WorkerSeed {
                    results: results_tx.clone(),
                    depth: Arc::clone(&depth),
                    pause: Arc::clone(&pause),
                    metrics: Arc::clone(&metrics),
                    store: Arc::clone(&store),
                    policy: config.recovery,
                    #[cfg(feature = "faults")]
                    injector: injector.clone(),
                };
                let worker = std::thread::spawn(move || worker_loop(rx, seed));
                ShardHandle {
                    queue: Some(tx),
                    depth,
                    pause,
                    worker: Some(worker),
                }
            })
            .collect();
        ShardPool {
            shards,
            results,
            metrics,
            #[cfg(feature = "faults")]
            injector,
        }
    }

    /// Folds the pool-wide injector's fire counters into the metrics
    /// registry, so `faults_injected` in a snapshot reflects every fault
    /// the plan has actually triggered so far. No-op without a plan (and
    /// compiled out entirely without the `faults` feature).
    pub fn sync_fault_metrics(&self) {
        #[cfg(feature = "faults")]
        if let Some(inj) = &self.injector {
            Metrics::raise_to(&self.metrics.faults_injected, inj.injected_total());
        }
    }

    /// Number of worker shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a session maps to (sticky affinity by id).
    pub fn shard_of(&self, session: &Session) -> usize {
        (session.id() % self.shards.len() as u64) as usize
    }

    /// Submits a session to its shard without blocking.
    ///
    /// # Errors
    ///
    /// [`SubmitError::WouldBlock`] hands the session back when the shard
    /// queue is full; [`SubmitError::Shutdown`] when the pool is closed.
    // The error variants carry the rejected `Session` back to the caller by
    // design, so the Err side is as large as a session.
    #[allow(clippy::result_large_err)]
    pub fn submit(&self, session: Session) -> Result<usize, SubmitError> {
        let shard = self.shard_of(&session);
        let handle = &self.shards[shard];
        let Some(queue) = handle.queue.as_ref() else {
            return Err(SubmitError::Shutdown(session));
        };
        // Count before sending: the worker decrements on receive, and the
        // receive may land before a post-send increment would.
        let depth = handle.depth.fetch_add(1, Ordering::Relaxed) + 1;
        match queue.try_send(session) {
            Ok(()) => {
                Metrics::raise_to(&self.metrics.queue_high_water, depth);
                Ok(shard)
            }
            Err(TrySendError::Full(s)) => {
                handle.depth.fetch_sub(1, Ordering::Relaxed);
                Metrics::incr(&self.metrics.jobs_rejected);
                Err(SubmitError::WouldBlock(s))
            }
            Err(TrySendError::Disconnected(s)) => {
                handle.depth.fetch_sub(1, Ordering::Relaxed);
                Err(SubmitError::Shutdown(s))
            }
        }
    }

    /// Blocks for the next session a worker finished stepping. Returns
    /// `None` only after shutdown, once every worker has exited.
    pub fn recv(&self) -> Option<Session> {
        self.results.recv().ok()
    }

    /// Pauses a shard: its worker finishes the current job, then idles.
    pub fn pause(&self, shard: usize) {
        self.shards[shard].pause.set(true);
    }

    /// Resumes a paused shard.
    pub fn resume(&self, shard: usize) {
        self.shards[shard].pause.set(false);
    }

    /// Current queued depth of a shard (approximate under concurrency).
    pub fn queue_depth(&self, shard: usize) -> u64 {
        self.shards[shard].depth.load(Ordering::Relaxed)
    }

    /// Closes the pool: stops accepting work, lets every worker drain its
    /// queue (each in-flight session is stepped once more), joins the
    /// workers, and returns the sessions that were still in flight.
    pub fn shutdown(mut self) -> Vec<Session> {
        self.close_and_join();
        let mut leftover = Vec::new();
        while let Ok(s) = self.results.try_recv() {
            leftover.push(s);
        }
        leftover
    }

    fn close_and_join(&mut self) {
        for shard in &mut self.shards {
            shard.queue = None; // disconnects the worker's receiver
            shard.pause.set(false); // a paused worker must wake to drain
        }
        for shard in &mut self.shards {
            if let Some(worker) = shard.worker.take() {
                // Supervised join: session panics are caught inside the
                // loop, so an Err here is a defect in the loop itself —
                // shutdown must still proceed shard by shard rather than
                // cascade the panic out of drop.
                let _ = worker.join();
            }
        }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

/// Everything needed to (re)build a shard's worker context — kept by the
/// worker thread itself so it can replace a crashed [`WorkerArray`]
/// without round-tripping through the pool.
struct WorkerSeed {
    results: mpsc::Sender<Session>,
    depth: Arc<AtomicU64>,
    pause: Arc<PauseGate>,
    metrics: Arc<Metrics>,
    store: Arc<ConfigStore>,
    policy: RecoveryPolicy,
    #[cfg(feature = "faults")]
    injector: Option<Arc<FaultInjector>>,
}

impl WorkerSeed {
    fn fresh_worker(&self) -> WorkerArray {
        #[allow(unused_mut)]
        let mut worker = WorkerArray::with_policy(
            Arc::clone(&self.store),
            Arc::clone(&self.metrics),
            self.policy,
        );
        #[cfg(feature = "faults")]
        if let Some(inj) = &self.injector {
            worker.attach_fault_injector(Arc::clone(inj));
        }
        worker
    }
}

fn worker_loop(rx: Receiver<Session>, seed: WorkerSeed) {
    let mut worker = seed.fresh_worker();
    let mut heap: BinaryHeap<QueuedSession> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut open = true;
    loop {
        seed.pause.wait_ready();
        loop {
            match rx.try_recv() {
                Ok(session) => {
                    seed.depth.fetch_sub(1, Ordering::Relaxed);
                    seq += 1;
                    heap.push(QueuedSession {
                        deadline: session.deadline(),
                        seq,
                        session,
                    });
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    open = false;
                    break;
                }
            }
        }
        let Some(queued) = heap.pop() else {
            if !open {
                return; // queue closed and drained: clean exit
            }
            match rx.recv() {
                Ok(session) => {
                    seed.depth.fetch_sub(1, Ordering::Relaxed);
                    seq += 1;
                    heap.push(QueuedSession {
                        deadline: session.deadline(),
                        seq,
                        session,
                    });
                }
                Err(_) => open = false,
            }
            continue;
        };
        let mut session = queued.session;
        // Supervised step: a panic (injected or genuine) is contained to
        // this one dispatch. AssertUnwindSafe is sound because both the
        // session and the worker are discarded-or-replaced on the panic
        // path rather than reused in their torn state: the session is
        // handed back marked crashed (the engine re-dispatches or
        // dead-letters it, it never resumes mid-kernel state), and the
        // worker — whose array may be mid-mutation — is dropped wholesale
        // and rebuilt from the seed.
        let stepped = catch_unwind(AssertUnwindSafe(|| session.step(&mut worker)));
        match stepped {
            Ok(()) => Metrics::incr(&seed.metrics.jobs_run),
            Err(_) => {
                // Pending fault records on the discarded array (e.g. a
                // stall nobody exercised yet) would vanish with it; count
                // their disposal so injected == detected still reconciles.
                let lost = worker.array_mut().take_injected_faults();
                Metrics::add(&seed.metrics.faults_detected, 1 + lost);
                Metrics::add(&seed.metrics.recoveries, lost);
                Metrics::incr(&seed.metrics.worker_restarts);
                worker = seed.fresh_worker();
                session.record_crash();
            }
        }
        // The engine side may already be gone (pool dropped mid-run);
        // the session's work is still done, only the hand-back is lost.
        let _ = seed.results.send(session);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdr_ofdm::xpp_map::OfdmKernel;
    use sdr_wcdma::xpp_map::WcdmaKernel;

    #[test]
    fn activation_tiers_resident_then_stored() {
        let metrics = Arc::new(Metrics::new());
        let mut w = WorkerArray::new(4, Arc::clone(&metrics));
        let a = w.activate(WcdmaKernel::Descrambler).unwrap();
        let b = w.activate(WcdmaKernel::Descrambler).unwrap();
        assert_eq!(a, b, "resident activation returns the same handle");
        assert_eq!(w.store().misses(), 1, "one build + compile");
        let snap = metrics.snapshot();
        assert_eq!((snap.cache_hits, snap.cache_misses), (1, 1));
        assert!(snap.config_bus_cycles > 0, "the load paid bus cycles");
    }

    #[test]
    fn swap_counts_a_reconfiguration_and_reuses_stored_configs() {
        let metrics = Arc::new(Metrics::new());
        let mut w = WorkerArray::new(4, Arc::clone(&metrics));
        w.activate(OfdmKernel::PreambleDetector).unwrap();
        w.swap(OfdmKernel::PreambleDetector, OfdmKernel::Demodulator)
            .unwrap();
        assert!(!w.is_resident("fig10-config2a-detector"));
        assert!(w.is_resident("fig10-config2b-demodulator"));
        // Swapping back: the detector config comes from the store.
        w.swap(OfdmKernel::Demodulator, OfdmKernel::PreambleDetector)
            .unwrap();
        assert_eq!(metrics.snapshot().reconfigurations, 2);
        assert_eq!(w.store().misses(), 2, "each kernel compiled exactly once");
        assert_eq!(w.store().hits(), 1, "re-activation served from the store");
    }

    #[test]
    fn swap_without_resident_source_still_activates() {
        let metrics = Arc::new(Metrics::new());
        let mut w = WorkerArray::new(4, Arc::clone(&metrics));
        w.swap(OfdmKernel::Demodulator, WcdmaKernel::Descrambler)
            .unwrap();
        assert!(w.is_resident("fig5-descrambler"));
        assert_eq!(
            metrics.snapshot().reconfigurations,
            0,
            "nothing was unloaded"
        );
    }

    #[test]
    fn prefetched_swap_pays_no_array_cycles() {
        let metrics = Arc::new(Metrics::new());
        let mut w = WorkerArray::new(4, Arc::clone(&metrics));
        w.activate(OfdmKernel::PreambleDetector).unwrap();
        assert!(w.prefetch(OfdmKernel::Demodulator).unwrap());
        // Run the detector long enough for the demodulator's bus load to
        // stream in the background.
        for _ in 0..1_000 {
            w.array_mut().step();
        }
        w.swap(OfdmKernel::PreambleDetector, OfdmKernel::Demodulator)
            .unwrap();
        let snap = metrics.snapshot();
        assert_eq!(snap.prefetch_hits, 1, "swap served from the prefetch");
        assert_eq!(
            snap.reconfig_cycles, 0,
            "a fully overlapped swap waits zero array cycles"
        );
    }

    #[test]
    fn workers_share_one_store_across_shards() {
        let metrics = Arc::new(Metrics::new());
        let store = Arc::new(ConfigStore::new(4));
        let mut w1 = WorkerArray::with_store(Arc::clone(&store), Arc::clone(&metrics));
        let mut w2 = WorkerArray::with_store(Arc::clone(&store), Arc::clone(&metrics));
        w1.activate(WcdmaKernel::Descrambler).unwrap();
        w2.activate(WcdmaKernel::Descrambler).unwrap();
        assert_eq!(store.misses(), 1, "second worker reused the compile");
        assert_eq!(store.hits(), 1);
    }
}
