//! Path searcher: coarse/fine pilot correlation over a sliding window.
//!
//! The paper (§3.1): "A path searcher performs a correlation of a fixed set
//! of pilot signals over a sliding window to detect the paths with the
//! strongest signal values... The path searcher divides itself into a coarse
//! and a fine searcher, with differing repetition intervals and accuracies."
//!
//! The search metric at a delay hypothesis δ is the non-coherent sum of
//! despread CPICH symbol energies — coherent within a pilot symbol,
//! non-coherent across symbols so slow phase rotation does not cancel.

use crate::rake::finger::{descramble, despread};
use crate::scrambling::ScramblingCode;
use crate::tx::CPICH_SF;
use sdr_dsp::Cplx;

/// A detected multipath component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathHit {
    /// Chip delay relative to the frame start.
    pub delay: usize,
    /// Non-coherent correlation energy.
    pub energy: i64,
}

/// Sliding-window pilot-correlation searcher.
///
/// With one sample per chip (the paper's 3.84 MHz sampling assumption) the
/// scrambling autocorrelation is delta-like, so a delay-decimated scan would
/// miss paths entirely. The coarse/fine split therefore trades *dwell time*,
/// not delay resolution: the coarse pass integrates few pilot symbols at
/// every delay, the fine pass re-examines the strongest candidates with the
/// full integration length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathSearcher {
    /// Number of delay hypotheses (chips) to scan.
    pub window: usize,
    /// CPICH symbols integrated per hypothesis in the coarse pass.
    pub coarse_symbols: usize,
    /// CPICH symbols integrated per candidate in the fine pass.
    pub fine_symbols: usize,
    /// Maximum number of paths to report.
    pub max_paths: usize,
}

impl Default for PathSearcher {
    fn default() -> Self {
        PathSearcher {
            window: 64,
            coarse_symbols: 1,
            fine_symbols: 4,
            max_paths: 4,
        }
    }
}

impl PathSearcher {
    /// Correlation energy at one delay hypothesis over `symbols` pilot
    /// symbols (0 if the buffer is too short).
    pub fn energy_at_with(
        &self,
        rx: &[Cplx<i32>],
        code: &ScramblingCode,
        delay: usize,
        symbols: usize,
    ) -> i64 {
        let n_chips = symbols * CPICH_SF;
        if delay + n_chips > rx.len() {
            return 0;
        }
        let descrambled = descramble(rx, code, delay, 0, n_chips);
        let pilots = despread(&descrambled, CPICH_SF, 0);
        pilots.iter().map(|p| p.sqmag()).sum()
    }

    /// Correlation energy at one delay with the fine integration length.
    pub fn energy_at(&self, rx: &[Cplx<i32>], code: &ScramblingCode, delay: usize) -> i64 {
        self.energy_at_with(rx, code, delay, self.fine_symbols)
    }

    /// Runs the coarse pass: short-dwell energies at every delay.
    pub fn coarse_scan(&self, rx: &[Cplx<i32>], code: &ScramblingCode) -> Vec<PathHit> {
        (0..self.window)
            .map(|delay| PathHit {
                delay,
                energy: self.energy_at_with(rx, code, delay, self.coarse_symbols),
            })
            .collect()
    }

    /// Full search: coarse scan at every delay, fine re-measurement of the
    /// strongest candidates, then peak selection.
    ///
    /// Reported paths are above 10% of the strongest peak, separated by at
    /// least 2 chips, strongest first, at most `max_paths`.
    pub fn search(&self, rx: &[Cplx<i32>], code: &ScramblingCode) -> Vec<PathHit> {
        let mut coarse = self.coarse_scan(rx, code);
        coarse.sort_by_key(|h| std::cmp::Reverse(h.energy));
        let candidates = coarse.into_iter().take(4 * self.max_paths);
        let mut fine: Vec<PathHit> = candidates
            .map(|h| PathHit {
                delay: h.delay,
                energy: self.energy_at_with(rx, code, h.delay, self.fine_symbols),
            })
            .collect();
        fine.sort_by_key(|h| std::cmp::Reverse(h.energy));
        let floor = fine.first().map(|h| h.energy / 10).unwrap_or(0);
        let mut picked: Vec<PathHit> = Vec::new();
        for hit in fine {
            if hit.energy <= floor {
                break;
            }
            if picked.iter().all(|p| p.delay.abs_diff(hit.delay) >= 2) {
                picked.push(hit);
                if picked.len() == self.max_paths {
                    break;
                }
            }
        }
        picked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{propagate, AdcConfig, CellLink, Path};
    use crate::tx::{CellConfig, CellTransmitter};

    fn make_rx(paths: Vec<Path>, sigma: f64) -> (Vec<Cplx<i32>>, ScramblingCode) {
        let cfg = CellConfig::default();
        let mut tx = CellTransmitter::new(cfg);
        // Enough chips for the search window plus the integration length.
        let n_chips = 3 * 1024;
        let bits: Vec<u8> = (0..2 * n_chips / cfg.dpch.sf)
            .map(|i| (i % 2) as u8)
            .collect();
        let signal = tx.transmit(&bits);
        let code = tx.scrambling_code().clone();
        let rx = propagate(
            &[(signal, CellLink::new(paths))],
            sigma,
            5,
            AdcConfig::default(),
        );
        (rx, code)
    }

    #[test]
    fn finds_single_path() {
        let (rx, code) = make_rx(vec![Path::new(12, Cplx::new(0.9, -0.3))], 0.02);
        let hits = PathSearcher::default().search(&rx, &code);
        assert!(!hits.is_empty());
        assert_eq!(hits[0].delay, 12);
    }

    #[test]
    fn finds_three_paths_in_order_of_strength() {
        // Gains kept small enough that the three-path superposition stays
        // inside the 12-bit ADC range (clipping would distort the energies).
        let (rx, code) = make_rx(
            vec![
                Path::new(3, Cplx::new(0.6, 0.0)),
                Path::new(20, Cplx::new(0.0, 0.4)),
                Path::new(41, Cplx::new(-0.25, 0.0)),
            ],
            0.02,
        );
        let searcher = PathSearcher {
            max_paths: 3,
            ..Default::default()
        };
        let hits = searcher.search(&rx, &code);
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].delay, 3);
        assert_eq!(hits[1].delay, 20);
        assert_eq!(hits[2].delay, 41);
        assert!(hits[0].energy > hits[1].energy && hits[1].energy > hits[2].energy);
    }

    #[test]
    fn rejects_other_cells_codes() {
        let (rx, _) = make_rx(vec![Path::new(5, Cplx::new(1.0, 0.0))], 0.0);
        let wrong = ScramblingCode::downlink(48);
        let searcher = PathSearcher::default();
        let own_energy = searcher.energy_at(&rx, &ScramblingCode::downlink(0), 5);
        let wrong_energy = searcher.energy_at(&rx, &wrong, 5);
        assert!(
            own_energy > 20 * wrong_energy,
            "{own_energy} vs {wrong_energy}"
        );
    }

    #[test]
    fn coarse_scan_covers_window_at_step() {
        let (rx, code) = make_rx(vec![Path::new(0, Cplx::new(1.0, 0.0))], 0.0);
        let searcher = PathSearcher {
            window: 32,
            ..Default::default()
        };
        let scan = searcher.coarse_scan(&rx, &code);
        assert_eq!(scan.len(), 32);
        assert!(scan.windows(2).all(|w| w[1].delay == w[0].delay + 1));
    }

    #[test]
    fn short_buffer_yields_zero_energy() {
        let code = ScramblingCode::downlink(0);
        let searcher = PathSearcher::default();
        assert_eq!(searcher.energy_at(&[Cplx::new(1, 1); 10], &code, 0), 0);
    }

    #[test]
    fn min_separation_suppresses_shoulders() {
        // A strong path has correlation shoulders at ±1 chip; the 2-chip
        // separation rule must not report them as distinct paths.
        let (rx, code) = make_rx(vec![Path::new(10, Cplx::new(1.0, 0.0))], 0.0);
        let searcher = PathSearcher {
            max_paths: 4,
            ..Default::default()
        };
        let hits = searcher.search(&rx, &code);
        for pair in hits.windows(2) {
            assert!(pair[0].delay.abs_diff(pair[1].delay) >= 2);
        }
    }
}
