//! Processing-power and data-rate requirement models (paper Figs. 1 and 2).
//!
//! Figure 1 charts MIPS demand per wireless access protocol; Figure 2 maps
//! each protocol's achievable data rate against terminal mobility. Both are
//! motivation-level models in the paper; here they are data the report
//! generator reproduces and the platform model checks itself against.

/// A wireless access protocol of the paper's landscape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Protocol {
    /// 2G GSM voice.
    Gsm,
    /// 2.5G packet data (GPRS/HSCSD).
    GprsHscsd,
    /// 2.75G EDGE.
    Edge,
    /// 3G UMTS/W-CDMA.
    Umts,
    /// OFDM wireless LAN (IEEE 802.11a / HIPERLAN/2).
    OfdmWlan,
}

/// All protocols in Fig. 1 order.
pub const PROTOCOLS: [Protocol; 5] = [
    Protocol::Gsm,
    Protocol::GprsHscsd,
    Protocol::Edge,
    Protocol::Umts,
    Protocol::OfdmWlan,
];

impl Protocol {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Gsm => "GSM",
            Protocol::GprsHscsd => "GPRS/HSCSD",
            Protocol::Edge => "EDGE",
            Protocol::Umts => "UMTS/W-CDMA",
            Protocol::OfdmWlan => "OFDM WLAN",
        }
    }

    /// Baseband processing demand in MIPS (paper Fig. 1: "Current GSM
    /// phones require approximately 10 MIPS. GPRS/HSCSD ... 100 MIPS.
    /// EDGE around 1000 MIPS. Potentially up to 10,000 MIPS ... UMTS.
    /// Wireless LAN protocols implementing OFDM require around 5000 MIPS").
    pub fn required_mips(self) -> f64 {
        match self {
            Protocol::Gsm => 10.0,
            Protocol::GprsHscsd => 100.0,
            Protocol::Edge => 1_000.0,
            Protocol::Umts => 10_000.0,
            Protocol::OfdmWlan => 5_000.0,
        }
    }

    /// Peak data rate in Mbit/s (paper Fig. 2 envelope).
    pub fn peak_rate_mbps(self) -> f64 {
        match self {
            Protocol::Gsm => 0.0096,
            Protocol::GprsHscsd => 0.057,
            Protocol::Edge => 0.2,
            Protocol::Umts => 2.0,
            Protocol::OfdmWlan => 54.0,
        }
    }

    /// The highest mobility class the protocol serves (Fig. 2's x…y axis).
    pub fn max_mobility(self) -> Mobility {
        match self {
            Protocol::Gsm | Protocol::GprsHscsd | Protocol::Edge | Protocol::Umts => {
                Mobility::Vehicular
            }
            Protocol::OfdmWlan => Mobility::Pedestrian,
        }
    }

    /// Data rate at a given mobility (the Fig. 2 trade-off: UMTS delivers
    /// 2 Mbit/s only when stationary, a few hundred kbit/s when moving).
    pub fn rate_at_mbps(self, mobility: Mobility) -> f64 {
        match (self, mobility) {
            (Protocol::Umts, Mobility::Stationary) => 2.0,
            (Protocol::Umts, Mobility::Pedestrian) => 0.384,
            (Protocol::Umts, Mobility::Vehicular) => 0.144,
            (Protocol::OfdmWlan, Mobility::Stationary) => 54.0,
            (Protocol::OfdmWlan, Mobility::Pedestrian) => 24.0,
            (Protocol::OfdmWlan, Mobility::Vehicular) => 0.0,
            (p, _) => p.peak_rate_mbps(),
        }
    }
}

/// Terminal mobility classes of Fig. 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Mobility {
    /// Indoors/outdoors stationary.
    Stationary,
    /// On foot.
    Pedestrian,
    /// In a car.
    Vehicular,
}

/// What a 200 MHz-class DSP of the era delivers (paper: "Modern
/// high-performance DSPs can provide around 1600 MIPS at clock speeds of
/// 200 MHz").
pub const DSP_MIPS_AT_200_MHZ: f64 = 1_600.0;

/// True if the protocol's demand exceeds a single DSP — the paper's core
/// argument for reconfigurable hardware.
pub fn exceeds_single_dsp(p: Protocol) -> bool {
    p.required_mips() > DSP_MIPS_AT_200_MHZ
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_values_match_the_paper() {
        assert_eq!(Protocol::Gsm.required_mips(), 10.0);
        assert_eq!(Protocol::GprsHscsd.required_mips(), 100.0);
        assert_eq!(Protocol::Edge.required_mips(), 1_000.0);
        assert_eq!(Protocol::Umts.required_mips(), 10_000.0);
        assert_eq!(Protocol::OfdmWlan.required_mips(), 5_000.0);
    }

    #[test]
    fn demand_is_monotone_across_generations() {
        let mips: Vec<f64> = [
            Protocol::Gsm,
            Protocol::GprsHscsd,
            Protocol::Edge,
            Protocol::Umts,
        ]
        .iter()
        .map(|p| p.required_mips())
        .collect();
        assert!(mips.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn the_papers_core_argument_holds() {
        // EDGE still fits a DSP; UMTS and OFDM WLAN do not.
        assert!(!exceeds_single_dsp(Protocol::Edge));
        assert!(exceeds_single_dsp(Protocol::Umts));
        assert!(exceeds_single_dsp(Protocol::OfdmWlan));
    }

    #[test]
    fn fig2_wlan_fast_but_immobile() {
        assert!(Protocol::OfdmWlan.peak_rate_mbps() > Protocol::Umts.peak_rate_mbps());
        assert!(Protocol::OfdmWlan.max_mobility() < Protocol::Umts.max_mobility());
        assert_eq!(Protocol::OfdmWlan.rate_at_mbps(Mobility::Vehicular), 0.0);
    }

    #[test]
    fn umts_rate_degrades_with_mobility() {
        let s = Protocol::Umts.rate_at_mbps(Mobility::Stationary);
        let p = Protocol::Umts.rate_at_mbps(Mobility::Pedestrian);
        let v = Protocol::Umts.rate_at_mbps(Mobility::Vehicular);
        assert!(s > p && p > v && v > 0.0);
    }
}
