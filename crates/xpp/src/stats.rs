//! Activity statistics gathered during simulation.

/// Counters accumulated over the lifetime of an [`crate::Array`].
///
/// These feed the energy model (every firing class has a distinct energy
/// cost) and the throughput/utilization numbers reported by the experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArrayStats {
    /// Simulated clock cycles.
    pub cycles: u64,
    /// ALU firings that did not use the multiplier.
    pub alu_fires: u64,
    /// ALU firings that used the multiplier.
    pub mul_fires: u64,
    /// Register-class firings (constants, merges, counters, gates, …).
    pub reg_fires: u64,
    /// RAM read-port firings.
    pub ram_reads: u64,
    /// RAM write-port firings.
    pub ram_writes: u64,
    /// FIFO firings (enqueue or dequeue).
    pub fifo_fires: u64,
    /// Words crossing the array boundary (either direction).
    pub io_words: u64,
    /// Event-network firings.
    pub event_fires: u64,
    /// Cycles the configuration bus spent loading.
    pub config_cycles: u64,
    /// Configuration words streamed over the bus (one word per busy bus
    /// cycle; kept separate from `config_cycles` so bus *occupancy* and
    /// bus *traffic* stay individually observable per array — the
    /// engine's batched dispatch reports words-per-session from this).
    pub config_words: u64,
    /// Configurations loaded to completion.
    pub configs_loaded: u64,
}

impl ArrayStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total firings of all classes.
    pub fn total_fires(&self) -> u64 {
        self.alu_fires
            + self.mul_fires
            + self.reg_fires
            + self.ram_reads
            + self.ram_writes
            + self.fifo_fires
            + self.io_words
            + self.event_fires
    }

    /// Average firings per cycle (a proxy for datapath utilization).
    pub fn fires_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total_fires() as f64 / self.cycles as f64
        }
    }

    /// Difference since an earlier snapshot (for per-phase measurement).
    pub fn delta_since(&self, earlier: &ArrayStats) -> ArrayStats {
        ArrayStats {
            cycles: self.cycles - earlier.cycles,
            alu_fires: self.alu_fires - earlier.alu_fires,
            mul_fires: self.mul_fires - earlier.mul_fires,
            reg_fires: self.reg_fires - earlier.reg_fires,
            ram_reads: self.ram_reads - earlier.ram_reads,
            ram_writes: self.ram_writes - earlier.ram_writes,
            fifo_fires: self.fifo_fires - earlier.fifo_fires,
            io_words: self.io_words - earlier.io_words,
            event_fires: self.event_fires - earlier.event_fires,
            config_cycles: self.config_cycles - earlier.config_cycles,
            config_words: self.config_words - earlier.config_words,
            configs_loaded: self.configs_loaded - earlier.configs_loaded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_rates() {
        let s = ArrayStats {
            cycles: 10,
            alu_fires: 5,
            mul_fires: 3,
            reg_fires: 2,
            ram_reads: 1,
            ram_writes: 1,
            fifo_fires: 4,
            io_words: 2,
            event_fires: 2,
            config_cycles: 7,
            config_words: 7,
            configs_loaded: 1,
        };
        assert_eq!(s.total_fires(), 20);
        assert!((s.fires_per_cycle() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_rate_is_zero() {
        assert_eq!(ArrayStats::new().fires_per_cycle(), 0.0);
    }

    #[test]
    fn delta_subtracts() {
        let a = ArrayStats {
            cycles: 5,
            alu_fires: 2,
            config_words: 3,
            ..Default::default()
        };
        let b = ArrayStats {
            cycles: 9,
            alu_fires: 7,
            config_words: 10,
            ..Default::default()
        };
        let d = b.delta_since(&a);
        assert_eq!(d.cycles, 4);
        assert_eq!(d.alu_fires, 5);
        assert_eq!(d.config_words, 7);
    }
}
