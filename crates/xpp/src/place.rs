//! Array geometry, resource accounting and placement.
//!
//! The XPP-64A provides an 8×8 array of ALU-PAEs with a column of eight
//! RAM-PAEs on either side, two routing registers per PAE, and four
//! dual-channel I/O ports. The placer here is deliberately simple: it
//! allocates *counts* of each resource class and a coarse routing budget,
//! which is exactly the quantity the paper reasons about (how many PAEs a
//! kernel occupies, whether two configurations fit simultaneously).

use crate::error::{Error, Result};
use crate::netlist::Netlist;
use crate::object::SlotClass;

/// Physical dimensions of an array instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Number of ALU processing elements (XPP-64A: 8×8 = 64).
    pub alu_paes: usize,
    /// Number of RAM processing elements (XPP-64A: 2×8 = 16).
    pub ram_paes: usize,
    /// Number of logical streaming I/O channels (XPP-64A: 4 dual-channel
    /// ports carrying packed 12-bit I/Q pairs = 16 logical streams).
    pub io_channels: usize,
    /// Routing registers per PAE (forward + backward register).
    pub regs_per_pae: usize,
    /// Routing segments per PAE (horizontal/vertical bus budget).
    pub routes_per_pae: usize,
}

impl Geometry {
    /// The XPP-64A geometry described in the paper.
    ///
    /// The device has four dual-channel I/O ports (8 physical word
    /// channels); the paper's receivers use 12-bit I and Q, which pack as a
    /// pair into one 24-bit word, so the simulator exposes 16 logical
    /// streams (one per I/Q component) to keep the kernel netlists readable.
    pub fn xpp64a() -> Self {
        Geometry {
            alu_paes: 64,
            ram_paes: 16,
            io_channels: 16,
            regs_per_pae: 2,
            routes_per_pae: 4,
        }
    }

    /// Total register slots.
    pub fn reg_slots(&self) -> usize {
        (self.alu_paes + self.ram_paes) * self.regs_per_pae
    }

    /// Total routing segments.
    pub fn route_slots(&self) -> usize {
        (self.alu_paes + self.ram_paes) * self.routes_per_pae
    }

    /// Total PAEs of both kinds.
    pub fn total_paes(&self) -> usize {
        self.alu_paes + self.ram_paes
    }
}

impl Default for Geometry {
    fn default() -> Self {
        Geometry::xpp64a()
    }
}

/// A bundle of resource quantities (one per class, plus routing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceCounts {
    /// ALU-PAE function units.
    pub alu: usize,
    /// Forward/backward registers.
    pub reg: usize,
    /// RAM-PAEs.
    pub ram: usize,
    /// I/O channels.
    pub io: usize,
    /// Routing segments (≈ one per channel).
    pub route: usize,
}

impl ResourceCounts {
    /// Resources required by a netlist.
    pub fn of_netlist(netlist: &Netlist) -> Self {
        let mut counts = ResourceCounts::default();
        for kind in netlist.kinds() {
            match kind.slot_class() {
                SlotClass::Alu => counts.alu += 1,
                SlotClass::Reg => counts.reg += 1,
                SlotClass::Ram => counts.ram += 1,
                SlotClass::Io => counts.io += 1,
            }
        }
        counts.route = netlist.edge_count();
        counts
    }

    /// Component-wise sum.
    pub fn plus(self, other: ResourceCounts) -> ResourceCounts {
        ResourceCounts {
            alu: self.alu + other.alu,
            reg: self.reg + other.reg,
            ram: self.ram + other.ram,
            io: self.io + other.io,
            route: self.route + other.route,
        }
    }

    /// Total PAE-equivalents held (ALU + RAM PAEs; registers and routes are
    /// sub-PAE resources).
    pub fn paes(&self) -> usize {
        self.alu + self.ram
    }
}

/// Tracks free resources on a live array.
#[derive(Debug, Clone)]
pub struct ResourcePool {
    total: ResourceCounts,
    free: ResourceCounts,
}

impl ResourcePool {
    /// A pool covering a whole (empty) array.
    pub fn new(geometry: Geometry) -> Self {
        let total = ResourceCounts {
            alu: geometry.alu_paes,
            reg: geometry.reg_slots(),
            ram: geometry.ram_paes,
            io: geometry.io_channels,
            route: geometry.route_slots(),
        };
        ResourcePool { total, free: total }
    }

    /// Currently free resources.
    pub fn free(&self) -> ResourceCounts {
        self.free
    }

    /// Total resources.
    pub fn total(&self) -> ResourceCounts {
        self.total
    }

    /// Attempts to reserve the requested resources.
    ///
    /// # Errors
    ///
    /// Returns [`Error::PlacementFailed`] naming the exhausted class.
    pub fn allocate(&mut self, need: ResourceCounts) -> Result<()> {
        let checks = [
            ("ALU slots", need.alu, self.free.alu),
            ("register slots", need.reg, self.free.reg),
            ("RAM slots", need.ram, self.free.ram),
            ("I/O channels", need.io, self.free.io),
            ("routing segments", need.route, self.free.route),
        ];
        for (name, needed, available) in checks {
            if needed > available {
                return Err(Error::PlacementFailed {
                    resource: name.to_string(),
                    needed,
                    available,
                });
            }
        }
        self.free.alu -= need.alu;
        self.free.reg -= need.reg;
        self.free.ram -= need.ram;
        self.free.io -= need.io;
        self.free.route -= need.route;
        Ok(())
    }

    /// Returns resources to the pool.
    ///
    /// # Panics
    ///
    /// Panics (debug) if more is released than was allocated.
    pub fn release(&mut self, counts: ResourceCounts) {
        self.free.alu += counts.alu;
        self.free.reg += counts.reg;
        self.free.ram += counts.ram;
        self.free.io += counts.io;
        self.free.route += counts.route;
        debug_assert!(self.free.alu <= self.total.alu);
        debug_assert!(self.free.reg <= self.total.reg);
        debug_assert!(self.free.ram <= self.total.ram);
        debug_assert!(self.free.io <= self.total.io);
        debug_assert!(self.free.route <= self.total.route);
    }

    /// Fraction of ALU-PAEs in use.
    pub fn alu_utilization(&self) -> f64 {
        if self.total.alu == 0 {
            0.0
        } else {
            (self.total.alu - self.free.alu) as f64 / self.total.alu as f64
        }
    }
}

/// The outcome of placing one netlist: what it holds on the array.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Configuration name.
    pub name: String,
    /// Resources held.
    pub counts: ResourceCounts,
    /// Number of objects.
    pub objects: usize,
}

impl Placement {
    /// Computes the placement footprint for a netlist.
    pub fn of(netlist: &Netlist) -> Self {
        Placement {
            name: netlist.name().to_string(),
            counts: ResourceCounts::of_netlist(netlist),
            objects: netlist.object_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NetlistBuilder;
    use crate::object::AluOp;
    use crate::word::Word;

    fn small_netlist() -> Netlist {
        let mut nl = NetlistBuilder::new("t");
        let a = nl.input("a");
        let k = nl.constant(Word::new(2));
        let y = nl.alu(AluOp::Mul, a, k);
        nl.output("y", y);
        nl.build().unwrap()
    }

    #[test]
    fn xpp64a_geometry_counts() {
        let g = Geometry::xpp64a();
        assert_eq!(g.alu_paes, 64);
        assert_eq!(g.ram_paes, 16);
        assert_eq!(g.io_channels, 16);
        assert_eq!(g.reg_slots(), 160);
        assert_eq!(g.total_paes(), 80);
    }

    #[test]
    fn netlist_requirements() {
        let counts = ResourceCounts::of_netlist(&small_netlist());
        assert_eq!(counts.alu, 1); // the multiplier
        assert_eq!(counts.reg, 1); // the constant
        assert_eq!(counts.io, 2); // in + out
        assert_eq!(counts.ram, 0);
        assert_eq!(counts.route, 3);
    }

    #[test]
    fn pool_allocates_and_releases() {
        let mut pool = ResourcePool::new(Geometry::xpp64a());
        let need = ResourceCounts {
            alu: 10,
            reg: 5,
            ram: 2,
            io: 4,
            route: 20,
        };
        pool.allocate(need).unwrap();
        assert_eq!(pool.free().alu, 54);
        assert!(pool.alu_utilization() > 0.15);
        pool.release(need);
        assert_eq!(pool.free(), pool.total());
        assert_eq!(pool.alu_utilization(), 0.0);
    }

    #[test]
    fn pool_rejects_overallocation_naming_resource() {
        let mut pool = ResourcePool::new(Geometry::xpp64a());
        let need = ResourceCounts {
            alu: 100,
            ..Default::default()
        };
        match pool.allocate(need) {
            Err(Error::PlacementFailed {
                resource,
                needed,
                available,
            }) => {
                assert_eq!(resource, "ALU slots");
                assert_eq!(needed, 100);
                assert_eq!(available, 64);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn failed_allocation_leaves_pool_untouched() {
        let mut pool = ResourcePool::new(Geometry::xpp64a());
        let need = ResourceCounts {
            alu: 2,
            io: 100,
            ..Default::default()
        };
        assert!(pool.allocate(need).is_err());
        assert_eq!(pool.free(), pool.total());
    }

    #[test]
    fn placement_footprint() {
        let p = Placement::of(&small_netlist());
        assert_eq!(p.objects, 4);
        assert_eq!(p.counts.paes(), 1);
        assert_eq!(p.name, "t");
    }

    #[test]
    fn counts_plus_adds_componentwise() {
        let a = ResourceCounts {
            alu: 1,
            reg: 2,
            ram: 3,
            io: 4,
            route: 5,
        };
        let b = ResourceCounts {
            alu: 10,
            reg: 20,
            ram: 30,
            io: 40,
            route: 50,
        };
        let c = a.plus(b);
        assert_eq!(
            c,
            ResourceCounts {
                alu: 11,
                reg: 22,
                ram: 33,
                io: 44,
                route: 55
            }
        );
    }
}
