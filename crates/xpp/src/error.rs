//! Error types for netlist construction, placement and simulation.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced by the `xpp-array` crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A required object input port was left unconnected at `build()`.
    UnconnectedInput {
        /// Object label (or kind name) with the dangling port.
        object: String,
        /// Port description, e.g. `"in1"` or `"ev0"`.
        port: String,
    },
    /// Two external ports of the same netlist share a name.
    DuplicatePortName(String),
    /// An input port was wired twice (channels are point-to-point).
    InputAlreadyConnected {
        /// Object label with the doubly-driven port.
        object: String,
        /// Port description.
        port: String,
    },
    /// A netlist refers to an external port name the configuration lacks.
    UnknownPort(String),
    /// The netlist needs more resources than the array has free.
    PlacementFailed {
        /// Resource class that ran out, e.g. `"ALU slots"`.
        resource: String,
        /// Number required by the netlist.
        needed: usize,
        /// Number currently free.
        available: usize,
    },
    /// The referenced configuration does not exist (or was unloaded).
    NoSuchConfig(u32),
    /// The configuration is still loading and cannot be used yet.
    ConfigLoading(u32),
    /// `run_until_idle` exceeded its cycle budget without quiescing.
    Timeout {
        /// Cycle budget that was exhausted.
        budget: u64,
    },
    /// A FIFO preload exceeds the RAM-PAE depth, or a RAM preload is too big.
    PreloadTooLarge {
        /// Object label.
        object: String,
        /// Requested preload length.
        requested: usize,
        /// Maximum supported.
        max: usize,
    },
    /// Initial tokens on an edge exceed the channel capacity.
    TooManyInitialTokens {
        /// Number of tokens requested.
        requested: usize,
        /// Channel capacity.
        capacity: usize,
    },
    /// The netlist contains no objects.
    EmptyNetlist,
    /// A load's configuration words arrived corrupted over the bus; the
    /// configuration never passes its wake-up check and must be reloaded.
    ConfigCorrupted {
        /// Configuration id of the poisoned load.
        config: u32,
    },
    /// A configuration load was aborted mid-stream, leaving an unusable
    /// half-configured shape that must be unloaded.
    LoadAborted {
        /// Configuration id of the abandoned load.
        config: u32,
    },
    /// A configuration reports running but fired zero objects within the
    /// watchdog's cycle budget — wedged, and must be reloaded.
    ConfigWedged {
        /// Configuration id of the wedged kernel.
        config: u32,
    },
}

impl Error {
    /// True for errors that represent detected runtime faults the
    /// supervision layer should recover from (reload / retry / dead-letter),
    /// as opposed to programming errors in netlist construction, placement
    /// or port wiring.
    pub fn is_fault(&self) -> bool {
        matches!(
            self,
            Error::ConfigCorrupted { .. } | Error::LoadAborted { .. } | Error::ConfigWedged { .. }
        )
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnconnectedInput { object, port } => {
                write!(f, "unconnected input port {port} on object {object}")
            }
            Error::DuplicatePortName(name) => {
                write!(f, "duplicate external port name {name:?}")
            }
            Error::InputAlreadyConnected { object, port } => {
                write!(f, "input port {port} on object {object} is already driven")
            }
            Error::UnknownPort(name) => write!(f, "no external port named {name:?}"),
            Error::PlacementFailed {
                resource,
                needed,
                available,
            } => write!(
                f,
                "placement failed: {needed} {resource} needed but only {available} free"
            ),
            Error::NoSuchConfig(id) => write!(f, "no configuration with id {id}"),
            Error::ConfigLoading(id) => {
                write!(f, "configuration {id} is still being loaded")
            }
            Error::Timeout { budget } => {
                write!(f, "array did not become idle within {budget} cycles")
            }
            Error::PreloadTooLarge {
                object,
                requested,
                max,
            } => write!(
                f,
                "preload of {requested} words on {object} exceeds the maximum of {max}"
            ),
            Error::TooManyInitialTokens {
                requested,
                capacity,
            } => write!(
                f,
                "{requested} initial tokens exceed the channel capacity of {capacity}"
            ),
            Error::EmptyNetlist => write!(f, "netlist contains no objects"),
            Error::ConfigCorrupted { config } => {
                write!(f, "configuration {config} arrived corrupted over the bus")
            }
            Error::LoadAborted { config } => {
                write!(f, "load of configuration {config} was aborted mid-stream")
            }
            Error::ConfigWedged { config } => {
                write!(
                    f,
                    "configuration {config} is wedged (running but firing nothing)"
                )
            }
        }
    }
}

impl StdError for Error {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_all_variants() {
        let variants = vec![
            Error::UnconnectedInput {
                object: "alu3".into(),
                port: "in1".into(),
            },
            Error::DuplicatePortName("x".into()),
            Error::InputAlreadyConnected {
                object: "a".into(),
                port: "in0".into(),
            },
            Error::UnknownPort("out".into()),
            Error::PlacementFailed {
                resource: "ALU slots".into(),
                needed: 9,
                available: 2,
            },
            Error::NoSuchConfig(3),
            Error::ConfigLoading(1),
            Error::Timeout { budget: 100 },
            Error::PreloadTooLarge {
                object: "ram".into(),
                requested: 600,
                max: 512,
            },
            Error::TooManyInitialTokens {
                requested: 5,
                capacity: 2,
            },
            Error::EmptyNetlist,
            Error::ConfigCorrupted { config: 7 },
            Error::LoadAborted { config: 7 },
            Error::ConfigWedged { config: 7 },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn fault_classification() {
        assert!(Error::ConfigCorrupted { config: 0 }.is_fault());
        assert!(Error::LoadAborted { config: 0 }.is_fault());
        assert!(Error::ConfigWedged { config: 0 }.is_fault());
        assert!(!Error::Timeout { budget: 10 }.is_fault());
        assert!(!Error::NoSuchConfig(0).is_fault());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Send + Sync + StdError>() {}
        assert_traits::<Error>();
    }
}
