//! Linear-feedback shift registers and bit utilities.
//!
//! Both standards lean on LFSRs: the 3GPP downlink scrambling codes are
//! degree-18 Gold codes, the 802.11a scrambler is the classic `x⁷+x⁴+1`
//! sequence, and the convolutional encoder is a shift register with two
//! parity taps. [`Lfsr`] implements the Fibonacci form all of these use.

/// A Fibonacci linear-feedback shift register over GF(2).
///
/// State is held in the low `degree` bits of a `u32`; bit `0` is the register
/// output (the oldest bit, `x^0` side) and feedback is the XOR of the state
/// bits selected by `taps` (a mask over the *state bits*, where bit `i`
/// corresponds to the delay element holding `x^i`'s coefficient).
///
/// The 3GPP 25.213 x-generator (`1 + X⁷ + X¹⁸`) is, in this convention,
/// `Lfsr::new(18, (1 << 7) | 1, 1)`.
///
/// # Example
///
/// ```
/// use sdr_dsp::bits::Lfsr;
///
/// // x^3 + x + 1, init 0b001 — a maximal-length sequence of period 7.
/// let mut l = Lfsr::new(3, 0b011, 0b001);
/// let seq: Vec<u8> = (0..7).map(|_| l.step()).collect();
/// assert_eq!(l.state(), 0b001); // back to the seed after one period
/// assert_eq!(seq.iter().filter(|&&b| b == 1).count(), 4); // balance property
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Lfsr {
    degree: u32,
    taps: u32,
    state: u32,
}

impl Lfsr {
    /// Creates an LFSR of the given degree with a feedback tap mask and an
    /// initial state.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is 0 or greater than 31, or if `init` does not fit
    /// in `degree` bits.
    pub fn new(degree: u32, taps: u32, init: u32) -> Self {
        assert!((1..=31).contains(&degree), "lfsr degree must be in 1..=31");
        assert!(
            init < (1 << degree),
            "initial state wider than the register"
        );
        Lfsr {
            degree,
            taps,
            state: init,
        }
    }

    /// The current register contents.
    pub fn state(&self) -> u32 {
        self.state
    }

    /// Overwrites the register contents.
    ///
    /// # Panics
    ///
    /// Panics if `state` does not fit in the register.
    pub fn set_state(&mut self, state: u32) {
        assert!(state < (1 << self.degree));
        self.state = state;
    }

    /// The output bit that the next [`step`](Self::step) will produce.
    #[inline]
    pub fn peek(&self) -> u8 {
        (self.state & 1) as u8
    }

    /// Advances the register one step and returns the output bit.
    #[inline]
    pub fn step(&mut self) -> u8 {
        let out = (self.state & 1) as u8;
        let fb = (self.state & self.taps).count_ones() & 1;
        self.state = (self.state >> 1) | (fb << (self.degree - 1));
        out
    }

    /// Returns the bit at delay `i` of the current state (bit 0 = output).
    #[inline]
    pub fn bit(&self, i: u32) -> u8 {
        debug_assert!(i < self.degree);
        ((self.state >> i) & 1) as u8
    }

    /// Generates `n` output bits.
    pub fn take_bits(&mut self, n: usize) -> Vec<u8> {
        (0..n).map(|_| self.step()).collect()
    }
}

/// Packs a slice of bits (LSB first) into a `u32`.
///
/// # Panics
///
/// Panics if more than 32 bits are supplied.
pub fn pack_lsb_first(bits: &[u8]) -> u32 {
    assert!(bits.len() <= 32);
    bits.iter()
        .enumerate()
        .fold(0u32, |acc, (i, &b)| acc | ((b as u32 & 1) << i))
}

/// Unpacks the low `n` bits of `v` into a vector, LSB first.
pub fn unpack_lsb_first(v: u32, n: usize) -> Vec<u8> {
    (0..n).map(|i| ((v >> i) & 1) as u8).collect()
}

/// XOR parity of a word (0 or 1).
#[inline]
pub fn parity(v: u32) -> u8 {
    (v.count_ones() & 1) as u8
}

/// Maps a bit to a BPSK symbol: `0 → +1`, `1 → -1`.
#[inline]
pub fn bpsk(bit: u8) -> i32 {
    1 - 2 * (bit as i32 & 1)
}

/// Counts positions where two bit slices differ.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn hamming_distance(a: &[u8], b: &[u8]) -> usize {
    assert_eq!(a.len(), b.len(), "hamming_distance: length mismatch");
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maximal_length_period() {
        // x^4 + x + 1 → period 15.
        let mut l = Lfsr::new(4, 0b0011, 1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..15 {
            assert!(seen.insert(l.state()));
            l.step();
        }
        assert_eq!(l.state(), 1);
    }

    #[test]
    fn zero_state_stays_zero() {
        let mut l = Lfsr::new(5, 0b00101, 0);
        for _ in 0..10 {
            assert_eq!(l.step(), 0);
        }
        assert_eq!(l.state(), 0);
    }

    #[test]
    #[should_panic]
    fn rejects_wide_init() {
        Lfsr::new(3, 0b011, 0b1000);
    }

    #[test]
    fn peek_matches_step() {
        let mut l = Lfsr::new(7, (1 << 3) | 1, 0x5A);
        for _ in 0..50 {
            let p = l.peek();
            assert_eq!(p, l.step());
        }
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let bits = vec![1, 0, 1, 1, 0, 0, 1];
        assert_eq!(unpack_lsb_first(pack_lsb_first(&bits), 7), bits);
        assert_eq!(pack_lsb_first(&bits), 0b1001101);
    }

    #[test]
    fn parity_and_bpsk() {
        assert_eq!(parity(0b1011), 1);
        assert_eq!(parity(0b1001), 0);
        assert_eq!(bpsk(0), 1);
        assert_eq!(bpsk(1), -1);
    }

    #[test]
    fn hamming_counts_differences() {
        assert_eq!(hamming_distance(&[0, 1, 1], &[1, 1, 0]), 2);
        assert_eq!(hamming_distance(&[], &[]), 0);
    }

    #[test]
    fn take_bits_length() {
        let mut l = Lfsr::new(9, (1 << 4) | 1, 1);
        assert_eq!(l.take_bits(100).len(), 100);
    }
}
