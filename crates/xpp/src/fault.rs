//! Deterministic, seeded fault injection for the configuration path.
//!
//! The simulator is bit-exact and deterministic, which makes it a poor
//! test bed for the *recovery* machinery a terminal needs in the field —
//! nothing ever goes wrong on its own. This module injects faults on a
//! seeded schedule so supervision layers can be driven through their
//! unhappy paths reproducibly:
//!
//! * [`FaultKind::CorruptConfig`] — the final configuration-bus words of a
//!   load arrive corrupted; the load ends in a faulted state and callers
//!   waiting on it see [`Error::ConfigCorrupted`](crate::Error::ConfigCorrupted).
//! * [`FaultKind::AbortLoad`] — the bus master drops the stream mid-load;
//!   surfaces as [`Error::LoadAborted`](crate::Error::LoadAborted).
//! * [`FaultKind::StallConfig`] — the load completes and reports running,
//!   but the objects are never enabled: the silent wrong state only a
//!   zero-fire watchdog can detect.
//! * [`FaultKind::WorkerPanic`] — the loader itself crashes (panics),
//!   exercising `catch_unwind` supervision above the array.
//!
//! Faults trigger by **load ordinal**: the injector counts every
//! [`configure_compiled`](crate::Array::configure_compiled) call across
//! all arrays it is attached to, and a [`FaultSpec`] fires (at most once)
//! when its `at_load` ordinal comes up. Sharing one injector across a
//! worker pool keeps the schedule stable even when a supervisor replaces
//! a crashed array mid-run — injector state lives outside the array.
//!
//! Everything here is behind the `faults` cargo feature, and an array
//! without an attached injector takes no fault path at all, so golden
//! equivalence is untouched when the layer is disabled.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use sdr_dsp::rng::Rng64;

/// The kinds of fault the injector can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The last configuration words of a load arrive corrupted; the
    /// configuration never passes its wake-up check and must be reloaded.
    CorruptConfig,
    /// The configuration-bus stream is dropped halfway through a load,
    /// leaving a half-configured, unusable shape behind.
    AbortLoad,
    /// The load completes and the array reports the configuration running,
    /// but its objects are never enabled — zero fires, no error.
    StallConfig,
    /// The loader panics, modelling a hard crash of the worker driving the
    /// array. Only a `catch_unwind` supervisor above the array survives it.
    WorkerPanic,
}

impl FaultKind {
    /// All kinds, in a stable order (used to index per-kind counters).
    pub const ALL: [FaultKind; 4] = [
        FaultKind::CorruptConfig,
        FaultKind::AbortLoad,
        FaultKind::StallConfig,
        FaultKind::WorkerPanic,
    ];

    fn index(self) -> usize {
        match self {
            FaultKind::CorruptConfig => 0,
            FaultKind::AbortLoad => 1,
            FaultKind::StallConfig => 2,
            FaultKind::WorkerPanic => 3,
        }
    }
}

/// One scheduled fault: `kind` strikes the `at_load`-th configuration load
/// (0-based, counted across every array sharing the injector).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// What goes wrong.
    pub kind: FaultKind,
    /// Which load it hits (global ordinal).
    pub at_load: u64,
}

/// A deterministic schedule of faults. Install one via
/// [`FaultInjector::new`] and [`Array::attach_fault_injector`]
/// (crate::Array::attach_fault_injector).
///
/// Two specs on the same ordinal shadow each other: the first in the list
/// fires, the rest never do (each load carries at most one fault).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// The scheduled faults, in priority order for same-ordinal shadowing.
    pub faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// A seeded pseudo-random plan of `count` recoverable faults (corrupt /
    /// abort / stall — never panics) spread over the first `horizon` loads.
    ///
    /// The same seed always yields the same plan. Callers wanting crash
    /// coverage push an explicit [`FaultKind::WorkerPanic`] spec on top.
    pub fn seeded(seed: u64, count: usize, horizon: u64) -> Self {
        const KINDS: [FaultKind; 3] = [
            FaultKind::CorruptConfig,
            FaultKind::AbortLoad,
            FaultKind::StallConfig,
        ];
        let mut rng = Rng64::seed_from_u64(seed);
        let horizon = horizon.max(1);
        let faults = (0..count)
            .map(|_| FaultSpec {
                kind: KINDS[(rng.next_u64() % KINDS.len() as u64) as usize],
                at_load: rng.next_u64() % horizon,
            })
            .collect();
        FaultPlan { faults }
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True if the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Thread-safe fault scheduler shared by every array of a worker pool.
///
/// `on_load` is called by the array at each configuration load; all state
/// is atomic so a supervisor can hand the same injector to a replacement
/// array after a crash without disturbing the schedule or the counters.
#[derive(Debug)]
pub struct FaultInjector {
    specs: Vec<(FaultSpec, AtomicBool)>,
    next_load: AtomicU64,
    injected: [AtomicU64; 4],
}

impl FaultInjector {
    /// Builds an injector from a plan.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            specs: plan
                .faults
                .into_iter()
                .map(|s| (s, AtomicBool::new(false)))
                .collect(),
            next_load: AtomicU64::new(0),
            injected: Default::default(),
        }
    }

    /// Consumes one load ordinal and returns the fault scheduled for it, if
    /// any. Each spec fires at most once; specs whose ordinal never comes
    /// up (or is shadowed by an earlier same-ordinal spec) never fire and
    /// are never counted as injected.
    pub fn on_load(&self) -> Option<FaultKind> {
        let ordinal = self.next_load.fetch_add(1, Ordering::Relaxed);
        for (spec, fired) in &self.specs {
            if spec.at_load == ordinal && !fired.swap(true, Ordering::Relaxed) {
                self.injected[spec.kind.index()].fetch_add(1, Ordering::Relaxed);
                return Some(spec.kind);
            }
        }
        None
    }

    /// Number of loads the injector has seen so far.
    pub fn loads_seen(&self) -> u64 {
        self.next_load.load(Ordering::Relaxed)
    }

    /// Number of faults of one kind actually injected so far.
    pub fn injected(&self, kind: FaultKind) -> u64 {
        self.injected[kind.index()].load(Ordering::Relaxed)
    }

    /// Total faults actually injected so far (all kinds).
    pub fn injected_total(&self) -> u64 {
        self.injected
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::seeded(42, 8, 100);
        let b = FaultPlan::seeded(42, 8, 100);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        assert!(a.faults.iter().all(|f| f.at_load < 100));
        assert!(a.faults.iter().all(|f| f.kind != FaultKind::WorkerPanic));
        let c = FaultPlan::seeded(43, 8, 100);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn specs_fire_once_at_their_ordinal() {
        let plan = FaultPlan {
            faults: vec![
                FaultSpec {
                    kind: FaultKind::AbortLoad,
                    at_load: 1,
                },
                FaultSpec {
                    kind: FaultKind::StallConfig,
                    at_load: 1, // shadowed: same ordinal as above
                },
                FaultSpec {
                    kind: FaultKind::CorruptConfig,
                    at_load: 3,
                },
            ],
        };
        let inj = FaultInjector::new(plan);
        assert_eq!(inj.on_load(), None); // load 0
        assert_eq!(inj.on_load(), Some(FaultKind::AbortLoad)); // load 1
        assert_eq!(inj.on_load(), None); // load 2 (shadowed spec stays dead)
        assert_eq!(inj.on_load(), Some(FaultKind::CorruptConfig)); // load 3
        assert_eq!(inj.on_load(), None); // load 4
        assert_eq!(inj.injected_total(), 2);
        assert_eq!(inj.injected(FaultKind::AbortLoad), 1);
        assert_eq!(inj.injected(FaultKind::StallConfig), 0);
        assert_eq!(inj.loads_seen(), 5);
    }

    #[test]
    fn empty_plan_injects_nothing() {
        let inj = FaultInjector::new(FaultPlan::default());
        for _ in 0..64 {
            assert_eq!(inj.on_load(), None);
        }
        assert_eq!(inj.injected_total(), 0);
    }
}
