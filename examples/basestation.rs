//! Base-station style multi-terminal run: N terminal sessions
//! (alternating W-CDMA rake and 802.11a OFDM) arriving as a Poisson
//! process and driven through the engine's async session front-end —
//! every waiting terminal is parked as a ~40-byte record and only a
//! bounded window is ever materialised over the worker shards.
//!
//! Every OFDM terminal exercises the paper's Fig. 10 runtime
//! reconfiguration (detector out, demodulator in) and every W-CDMA
//! terminal runs its descrambler/despreader on cached configurations, so
//! the final metrics show nonzero reconfiguration and cache-hit counts;
//! the `frontend` metrics line shows the parking lot working.
//!
//! Usage:
//! `cargo run --release --example basestation [--sessions N] [--shards M]
//!  [--arrays-per-shard K] [--arrival-rate R]`
//! where `R` is mean terminal arrivals per second at the 50 MHz modeled
//! array clock (defaults: 64 sessions, 4 shards, 1 array per shard,
//! 4000/s). Bare positional arguments `[sessions] [shards]
//! [arrays-per-shard]` are still accepted.

use xpp_sdr::dsp::rng::Rng64;
use xpp_sdr::engine::frontend::{Frontend, FrontendConfig};
use xpp_sdr::engine::{ParkedSession, Session};

/// Modeled array clock used to convert `--arrival-rate` (terminals/s)
/// into array-cycle interarrivals (BENCH_ARRAY.json's convention).
const ARRAY_CLOCK_HZ: f64 = 50.0e6;

struct Args {
    sessions: u64,
    shards: usize,
    arrays_per_shard: usize,
    /// Mean arrivals per second at the modeled array clock.
    arrival_rate: f64,
}

fn parse_args() -> Args {
    let mut args = Args {
        sessions: 64,
        shards: 4,
        arrays_per_shard: 1,
        arrival_rate: 4000.0,
    };
    let mut positional = 0usize;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut flag = |name: &str| -> Option<String> {
            if arg == name {
                Some(it.next().unwrap_or_else(|| {
                    eprintln!("{name} needs a value");
                    std::process::exit(2);
                }))
            } else {
                None
            }
        };
        if let Some(v) = flag("--sessions") {
            args.sessions = v.parse().expect("--sessions must be a number");
        } else if let Some(v) = flag("--shards") {
            args.shards = v.parse().expect("--shards must be a number");
        } else if let Some(v) = flag("--arrays-per-shard") {
            args.arrays_per_shard = v.parse().expect("--arrays-per-shard must be a number");
        } else if let Some(v) = flag("--arrival-rate") {
            args.arrival_rate = v.parse().expect("--arrival-rate must be a number");
        } else {
            // Legacy positional form: sessions shards arrays-per-shard.
            match positional {
                0 => args.sessions = arg.parse().expect("sessions must be a number"),
                1 => args.shards = arg.parse().expect("shards must be a number"),
                2 => {
                    args.arrays_per_shard = arg.parse().expect("arrays-per-shard must be a number")
                }
                _ => {
                    eprintln!("unexpected argument: {arg}");
                    std::process::exit(2);
                }
            }
            positional += 1;
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let mean_interarrival = ARRAY_CLOCK_HZ / args.arrival_rate;
    println!(
        "basestation: {} terminal sessions over {} shards x {} arrays, \
         Poisson arrivals at {}/s ({:.0} cycles mean interarrival)",
        args.sessions, args.shards, args.arrays_per_shard, args.arrival_rate, mean_interarrival
    );

    let mut fe = Frontend::new(FrontendConfig {
        shards: args.shards,
        arrays_per_shard: args.arrays_per_shard,
        parking_capacity: args.sessions as usize,
        ..FrontendConfig::default()
    });

    // Admit every terminal up front as a compact parked record; the
    // front-end materialises them in deadline order as capacity frees.
    let mut rng = Rng64::seed_from_u64(0xBA5E);
    let mut arrival = 0u64;
    for id in 0..args.sessions {
        let u = rng.next_f64().max(1e-12);
        arrival += (-mean_interarrival * u.ln()).ceil() as u64;
        let record = if id % 2 == 0 {
            ParkedSession::new_wcdma(id, 0xB5E + id, arrival)
        } else {
            ParkedSession::new_ofdm(id, 0x0FD + id, arrival)
        };
        fe.admit(record);
    }

    let summary = fe.run(&mut |_: &Session, _| None);

    println!("{}", summary.snapshot);
    println!(
        "peak resident {} sessions ({} peak parked, materialisation window {})",
        summary.peak_resident,
        summary.peak_parked,
        FrontendConfig::default().max_resident
    );
    match summary.p99_slack() {
        Some(slack) => println!(
            "p99 deadline slack {slack} cycles (min {}), shed rate {:.1}%",
            summary.min_slack().unwrap_or(slack),
            100.0 * summary.shed_rate()
        ),
        None => println!("p99 deadline slack n/a (no frames admitted)"),
    }
    println!(
        "done {}  failed {}  shed {}  dead-lettered {}",
        summary.done,
        summary.failed,
        summary.shed.len(),
        summary.dead_lettered
    );
    if summary.failed > 0 || summary.dead_lettered > 0 {
        std::process::exit(1);
    }
}
