//! The 802.11a block interleaver (two permutations per OFDM symbol,
//! §17.3.5.6).

use crate::params::Modulation;

/// Computes the interleaver permutation for one OFDM symbol: the output
/// position of the input bit at position `k`.
fn interleave_position(k: usize, n_cbps: usize, n_bpsc: usize) -> usize {
    let s = (n_bpsc / 2).max(1);
    // First permutation: adjacent coded bits land on non-adjacent carriers.
    let i = (n_cbps / 16) * (k % 16) + k / 16;
    // Second permutation: adjacent bits alternate between more and less
    // significant constellation positions.
    s * (i / s) + (i + n_cbps - (16 * i / n_cbps)) % s
}

/// Interleaves one OFDM symbol's worth of coded bits.
///
/// # Panics
///
/// Panics if `bits.len()` is not the symbol's coded-bit count.
pub fn interleave(bits: &[u8], modulation: Modulation) -> Vec<u8> {
    let n_bpsc = modulation.bits_per_carrier();
    let n_cbps = 48 * n_bpsc;
    assert_eq!(
        bits.len(),
        n_cbps,
        "interleave: exactly one symbol required"
    );
    let mut out = vec![0u8; n_cbps];
    for (k, &b) in bits.iter().enumerate() {
        out[interleave_position(k, n_cbps, n_bpsc)] = b;
    }
    out
}

/// Inverts [`interleave`] on one symbol of values (bits or LLRs).
///
/// # Panics
///
/// Panics if the length is not the symbol's coded-bit count.
pub fn deinterleave<T: Copy + Default>(values: &[T], modulation: Modulation) -> Vec<T> {
    let n_bpsc = modulation.bits_per_carrier();
    let n_cbps = 48 * n_bpsc;
    assert_eq!(
        values.len(),
        n_cbps,
        "deinterleave: exactly one symbol required"
    );
    let mut out = vec![T::default(); n_cbps];
    for k in 0..n_cbps {
        out[k] = values[interleave_position(k, n_cbps, n_bpsc)];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(n: usize) -> Vec<u8> {
        (0..n).map(|i| ((i * 7 + 3) % 2) as u8).collect()
    }

    #[test]
    fn roundtrip_all_modulations() {
        for m in [
            Modulation::Bpsk,
            Modulation::Qpsk,
            Modulation::Qam16,
            Modulation::Qam64,
        ] {
            let n = 48 * m.bits_per_carrier();
            let input = bits(n);
            let inter = interleave(&input, m);
            assert_ne!(inter, input, "{m:?} should permute");
            assert_eq!(deinterleave(&inter, m), input, "{m:?}");
        }
    }

    #[test]
    fn permutation_is_bijective() {
        for m in [
            Modulation::Bpsk,
            Modulation::Qpsk,
            Modulation::Qam16,
            Modulation::Qam64,
        ] {
            let n_bpsc = m.bits_per_carrier();
            let n = 48 * n_bpsc;
            let mut seen = vec![false; n];
            for k in 0..n {
                let j = interleave_position(k, n, n_bpsc);
                assert!(!seen[j], "collision at {j}");
                seen[j] = true;
            }
        }
    }

    #[test]
    fn adjacent_bits_separate_by_at_least_three_carriers() {
        // The design goal of the first permutation.
        let m = Modulation::Qpsk;
        let n_bpsc = m.bits_per_carrier();
        let n = 48 * n_bpsc;
        for k in 0..n - 1 {
            let c0 = interleave_position(k, n, n_bpsc) / n_bpsc;
            let c1 = interleave_position(k + 1, n, n_bpsc) / n_bpsc;
            assert!(c0 != c1, "adjacent coded bits on the same carrier");
        }
    }

    #[test]
    fn bpsk_known_value() {
        // For BPSK (N_CBPS=48): k=0 → i=0 → j=0; k=1 → i=3 → j=3.
        assert_eq!(interleave_position(0, 48, 1), 0);
        assert_eq!(interleave_position(1, 48, 1), 3);
        assert_eq!(interleave_position(16, 48, 1), 1);
    }

    #[test]
    #[should_panic]
    fn wrong_length_rejected() {
        interleave(&[0u8; 10], Modulation::Bpsk);
    }
}
