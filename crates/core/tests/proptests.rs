//! Property-based tests for the platform models.

use proptest::prelude::*;
use sdr_core::dsp::DspModel;
use sdr_core::scheduler::{schedule_edf, Job};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// EDF is optimal on a single resource: any implicit-deadline periodic
    /// set with total utilization ≤ 1 is schedulable, and any set with
    /// utilization > 1 must eventually miss.
    #[test]
    fn edf_feasibility_matches_utilization(
        specs in proptest::collection::vec((1u64..200, 1u64..8), 1..5),
    ) {
        // periods are multiples of 64 so the hyperperiod stays small.
        let jobs: Vec<Job> = specs
            .iter()
            .enumerate()
            .map(|(i, &(c, p_mult))| {
                let period = 64 * p_mult;
                Job::new(format!("j{i}"), c.min(period), period)
            })
            .collect();
        let u: f64 = jobs.iter().map(Job::utilization).sum();
        let hyper: u64 = 64 * specs.iter().map(|&(_, p)| p).product::<u64>().max(1);
        let report = schedule_edf(&jobs, 4 * hyper.min(100_000));
        if u <= 1.0 {
            prop_assert!(report.feasible(), "u={u} but misses: {:?}", report.misses);
        } else {
            prop_assert!(!report.feasible(), "u={u} yet no misses over the horizon");
        }
    }

    /// Busy time never exceeds the horizon and matches the timeline.
    #[test]
    fn edf_accounting_is_consistent(
        specs in proptest::collection::vec((1u64..100, 1u64..6), 1..4),
        horizon in 500u64..5_000,
    ) {
        let jobs: Vec<Job> = specs
            .iter()
            .enumerate()
            .map(|(i, &(c, p))| Job::new(format!("j{i}"), c.min(32 * p), 32 * p))
            .collect();
        let report = schedule_edf(&jobs, horizon);
        prop_assert!(report.busy <= horizon);
        let timeline_busy: u64 = report.timeline.iter().map(|s| s.len).sum();
        prop_assert_eq!(timeline_busy, report.busy);
        for s in &report.timeline {
            prop_assert!(s.start + s.len <= horizon + jobs.iter().map(|j| j.cycles).max().unwrap_or(0));
        }
    }

    /// DSP accounting is additive and utilization scales linearly.
    #[test]
    fn dsp_accounting_additive(charges in proptest::collection::vec(1u64..1_000_000, 1..20)) {
        let mut dsp = DspModel::new(1000.0, 100e6);
        for (i, &c) in charges.iter().enumerate() {
            dsp.charge(&format!("t{}", i % 3), c);
        }
        let total: u64 = charges.iter().sum();
        prop_assert_eq!(dsp.total_instructions(), total);
        let per_task: u64 = dsp.task_breakdown().values().sum();
        prop_assert_eq!(per_task, total);
        let window = 1.0;
        prop_assert!((dsp.demand_mips_over(window) - total as f64 / 1e6).abs() < 1e-9);
    }
}
