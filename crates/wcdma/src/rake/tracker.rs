//! Path tracker: "A path tracker is responsible for the tracking and the
//! resynchronization of the paths that are currently being received"
//! (paper §3.1).
//!
//! Between full searcher sweeps, each allocated finger's delay is compared
//! against its ±1-chip neighbours (an early–late gate on the pilot
//! correlation energy). A finger slides only after `hysteresis` consecutive
//! votes in the same direction, so noise cannot jitter the despreader
//! alignment; a finger whose energy collapses is flagged lost so control
//! software can trigger re-acquisition.

use crate::rake::searcher::{PathHit, PathSearcher};
use crate::scrambling::ScramblingCode;
use sdr_dsp::Cplx;

/// One tracked multipath component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackedPath {
    /// Current delay in chips.
    pub delay: usize,
    /// Most recent on-time correlation energy.
    pub energy: i64,
    /// Consecutive early(−)/late(+) votes.
    votes: i32,
    /// True while the path is considered alive.
    pub alive: bool,
}

impl TrackedPath {
    /// Creates a tracked path at a searcher hit.
    pub fn from_hit(hit: PathHit) -> Self {
        TrackedPath {
            delay: hit.delay,
            energy: hit.energy,
            votes: 0,
            alive: true,
        }
    }
}

/// The early–late delay tracker for a set of fingers.
#[derive(Debug, Clone)]
pub struct PathTracker {
    paths: Vec<TrackedPath>,
    /// Consecutive same-direction votes required before sliding one chip.
    pub hysteresis: i32,
    /// A path whose energy falls below `peak/lost_div` is marked lost.
    pub lost_div: i64,
    /// Measurement parameters (dwell length reuses the searcher's fine
    /// integration).
    pub searcher: PathSearcher,
}

impl PathTracker {
    /// Starts tracking the given searcher hits.
    pub fn new(hits: &[PathHit], searcher: PathSearcher) -> Self {
        PathTracker {
            paths: hits.iter().copied().map(TrackedPath::from_hit).collect(),
            hysteresis: 2,
            lost_div: 16,
            searcher,
        }
    }

    /// The tracked paths.
    pub fn paths(&self) -> &[TrackedPath] {
        &self.paths
    }

    /// Current delays of the live paths.
    pub fn delays(&self) -> Vec<usize> {
        self.paths
            .iter()
            .filter(|p| p.alive)
            .map(|p| p.delay)
            .collect()
    }

    /// Runs one tracking update against a fresh receive buffer (one slot's
    /// worth, frame-aligned like the searcher's input).
    pub fn update(&mut self, rx: &[Cplx<i32>], code: &ScramblingCode) {
        let peak = self.paths.iter().map(|p| p.energy).max().unwrap_or(0);
        for p in &mut self.paths {
            let on_time = self.searcher.energy_at(rx, code, p.delay);
            let early = if p.delay > 0 {
                self.searcher.energy_at(rx, code, p.delay - 1)
            } else {
                0
            };
            let late = self.searcher.energy_at(rx, code, p.delay + 1);
            // At chip-spaced sampling the correlation is delta-like: a
            // one-chip drift zeroes the on-time cell while a neighbour holds
            // the energy, so path-loss is judged on the gate's best cell.
            let best = on_time.max(early).max(late);
            p.energy = on_time;
            if best < peak / self.lost_div.max(1) {
                p.alive = false;
                continue;
            }
            p.alive = true;
            if early > on_time && early >= late {
                p.votes = if p.votes < 0 { p.votes - 1 } else { -1 };
            } else if late > on_time {
                p.votes = if p.votes > 0 { p.votes + 1 } else { 1 };
            } else {
                p.votes = 0;
            }
            if p.votes <= -self.hysteresis {
                p.delay -= 1;
                p.votes = 0;
            } else if p.votes >= self.hysteresis {
                p.delay += 1;
                p.votes = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{propagate, AdcConfig, CellLink, Path};
    use crate::tx::{CellConfig, CellTransmitter};

    fn slot_at_delay(delay: usize, seed: u64) -> (Vec<Cplx<i32>>, ScramblingCode) {
        let cfg = CellConfig::default();
        let mut tx = CellTransmitter::new(cfg);
        let bits: Vec<u8> = (0..2 * 2048 / cfg.dpch.sf).map(|i| (i % 2) as u8).collect();
        let signal = tx.transmit(&bits);
        let code = tx.scrambling_code().clone();
        let link = CellLink::new(vec![Path::new(delay, Cplx::new(0.8, 0.2))]);
        (
            propagate(&[(signal, link)], 0.03, seed, AdcConfig::default()),
            code,
        )
    }

    #[test]
    fn stable_path_stays_locked() {
        let (rx, code) = slot_at_delay(10, 1);
        let hit = PathHit {
            delay: 10,
            energy: 0,
        };
        let mut tracker = PathTracker::new(&[hit], PathSearcher::default());
        for seed in 0..4 {
            let (rx2, _) = slot_at_delay(10, seed + 2);
            tracker.update(&rx2, &code);
        }
        tracker.update(&rx, &code);
        assert_eq!(tracker.delays(), vec![10]);
        assert!(tracker.paths()[0].energy > 0);
    }

    #[test]
    fn drifting_path_is_followed_with_hysteresis() {
        let code = ScramblingCode::downlink(0);
        let hit = PathHit {
            delay: 10,
            energy: 0,
        };
        let mut tracker = PathTracker::new(&[hit], PathSearcher::default());
        // The channel delay moves 10 → 11 (terminal motion of one chip).
        for seed in 0..2 {
            let (rx, _) = slot_at_delay(11, 40 + seed);
            tracker.update(&rx, &code);
        }
        assert_eq!(tracker.delays(), vec![11], "tracker should have slid late");
        // And it does not overshoot on further slots at 11.
        let (rx, _) = slot_at_delay(11, 50);
        tracker.update(&rx, &code);
        assert_eq!(tracker.delays(), vec![11]);
    }

    #[test]
    fn drift_back_early_is_followed() {
        let code = ScramblingCode::downlink(0);
        let mut tracker = PathTracker::new(
            &[PathHit {
                delay: 12,
                energy: 0,
            }],
            PathSearcher::default(),
        );
        for seed in 0..2 {
            let (rx, _) = slot_at_delay(11, 60 + seed);
            tracker.update(&rx, &code);
        }
        assert_eq!(tracker.delays(), vec![11]);
    }

    #[test]
    fn single_noisy_slot_does_not_move_the_finger() {
        let code = ScramblingCode::downlink(0);
        let mut tracker = PathTracker::new(
            &[PathHit {
                delay: 10,
                energy: 0,
            }],
            PathSearcher::default(),
        );
        // One slot at 11 (a fade/glitch), then back at 10: hysteresis = 2
        // means no slide happens.
        let (rx, _) = slot_at_delay(11, 70);
        tracker.update(&rx, &code);
        assert_eq!(tracker.delays(), vec![10]);
        let (rx, _) = slot_at_delay(10, 71);
        tracker.update(&rx, &code);
        assert_eq!(tracker.delays(), vec![10]);
    }

    #[test]
    fn vanished_path_is_marked_lost() {
        let code = ScramblingCode::downlink(0);
        let mut tracker = PathTracker::new(
            &[
                PathHit {
                    delay: 10,
                    energy: 0,
                },
                PathHit {
                    delay: 30,
                    energy: 0,
                },
            ],
            PathSearcher::default(),
        );
        // Only the delay-10 path is actually present.
        let (rx, _) = slot_at_delay(10, 80);
        tracker.update(&rx, &code);
        tracker.update(&rx, &code);
        assert_eq!(tracker.delays(), vec![10]);
        assert!(!tracker.paths()[1].alive);
    }
}
