//! Seeded chaos runs: a mixed W-CDMA/OFDM workload driven under a
//! deterministic [`FaultPlan`] must terminate every session in an
//! accounted-for state, with the fault ledger reconciling exactly —
//! every fault the injector fired was detected somewhere, and every
//! detection was answered by a recovery or a dead-letter.

use sdr_engine::{Engine, EngineConfig, RecoveryPolicy, Session, SessionState};
use xpp_array::fault::{FaultKind, FaultPlan, FaultSpec};

/// Injected worker panics print through the default hook from worker
/// threads (the harness cannot capture them); silence the hook so chaos
/// output stays readable. Safe to call from every test in this binary.
fn quiet_panics() {
    std::panic::set_hook(Box::new(|info| {
        // Test threads are named after their test; pool workers are
        // unnamed, and theirs are the (expected) injected panics.
        if std::thread::current().name().is_some() {
            eprintln!("{info}");
        }
    }));
}

fn mixed_sessions(n: u64) -> Vec<Session> {
    (0..n)
        .map(|id| {
            if id % 2 == 0 {
                Session::wcdma(id, 1_000 + id)
            } else {
                Session::ofdm(id, 2_000 + id)
            }
        })
        .collect()
}

/// One full chaos run: seeded recoverable faults plus an explicit worker
/// panic, every invariant checked.
fn chaos_run(seed: u64) {
    chaos_run_with(seed, 1);
}

/// Same invariants, parameterised over the shard gang size so the batched
/// dispatcher runs under the identical fault ledger checks.
fn chaos_run_with(seed: u64, arrays_per_shard: usize) {
    quiet_panics();
    // Always at least one crash, so shard restart + re-dispatch is
    // exercised on every seed (seeded() samples only recoverable kinds).
    // First in the list so no same-ordinal seeded spec can shadow it, and
    // at ordinal 1 because the workload shares configurations heavily —
    // lockstep sessions only load each kernel about once per shard, so
    // only the earliest ordinals are guaranteed to come up.
    let mut faults = vec![FaultSpec {
        kind: FaultKind::WorkerPanic,
        at_load: 1,
    }];
    faults.extend(FaultPlan::seeded(seed, 6, 8).faults);
    let plan = FaultPlan { faults };
    let injected_planned = plan.faults.len();
    let mut engine = Engine::new(EngineConfig {
        shards: 2,
        arrays_per_shard,
        queue_depth: 16,
        cache_capacity: 8,
        recovery: RecoveryPolicy {
            max_kernel_attempts: 4,
            ..RecoveryPolicy::default()
        },
        fault_plan: Some(plan),
        ..EngineConfig::default()
    });
    let summary = engine.run(mixed_sessions(24));

    // Every session terminated, none hung, none reported wrong bits: a
    // platform fault may cost a session (dead-letter) but never corrupts
    // a surviving one's payload.
    assert_eq!(summary.completed.len(), 24, "seed {seed}: sessions lost");
    for s in &summary.completed {
        match s.state() {
            SessionState::Done | SessionState::Shed | SessionState::DeadLettered(_) => {}
            other => panic!("seed {seed}: session {} ended {:?}", s.id(), other),
        }
    }
    assert_eq!(
        summary.done() + summary.shed() + summary.dead_lettered(),
        24,
        "seed {seed}: outcome accounting"
    );

    let snap = &summary.snapshot;
    // The plan actually fired (the guaranteed-ordinal panic at minimum),
    // and the ledger reconciles.
    assert!(
        snap.faults_injected > 0,
        "seed {seed}: no faults fired — plan or horizon is wrong"
    );
    assert!(
        snap.faults_injected <= injected_planned as u64,
        "seed {seed}: injector fired more than the plan holds"
    );
    assert_eq!(
        snap.faults_injected, snap.faults_detected,
        "seed {seed}: injected faults went undetected (or double-counted): {snap}"
    );
    assert!(
        snap.faults_detected <= snap.recoveries + snap.dead_letters,
        "seed {seed}: detections unanswered: {snap}"
    );
    assert!(
        snap.recoveries >= snap.faults_detected.saturating_sub(snap.dead_letters),
        "seed {seed}: recovery ledger inconsistent: {snap}"
    );
    assert!(
        snap.worker_restarts >= 1,
        "seed {seed}: the planned panic never restarted a shard"
    );
    assert_eq!(
        snap.sessions_completed,
        summary.done() as u64,
        "seed {seed}: completion counter drift"
    );
}

#[test]
fn chaos_seed_1() {
    chaos_run(1);
}

#[test]
fn chaos_seed_2() {
    chaos_run(2);
}

#[test]
fn chaos_seed_3() {
    chaos_run(3);
}

/// The batched gang dispatcher under chaos: crash containment rebuilds
/// only the struck member, but the fault ledger must reconcile exactly
/// the same way it does for single-array shards.
#[test]
fn chaos_gang_seed_1() {
    chaos_run_with(1, 3);
}

#[test]
fn chaos_gang_seed_2() {
    chaos_run_with(2, 3);
}

/// Gang dispatch stays deterministic per seed: one dispatcher thread owns
/// the whole gang, so with fixed dispatch windows (paused waves) the load
/// order — and therefore the fault ledger — replays exactly.
#[test]
fn chaos_gang_is_deterministic_per_seed() {
    use sdr_engine::{Metrics, PoolConfig, ShardPool};
    use std::sync::Arc;

    quiet_panics();
    let run = |seed: u64| {
        let metrics = Arc::new(Metrics::new());
        let pool = ShardPool::new(
            PoolConfig {
                shards: 1, // one shard: a single total load order
                arrays_per_shard: 4,
                queue_depth: 32,
                cache_capacity: 8,
                start_paused: true,
                // seeded() samples only recoverable kinds, so faults are
                // absorbed inside the worker and sessions always come back
                // (terminal or ready for the next wave).
                fault_plan: Some(FaultPlan::seeded(seed, 5, 10)),
                ..PoolConfig::default()
            },
            Arc::clone(&metrics),
        );
        let mut wave = mixed_sessions(8);
        let mut terminal = 0u64;
        while !wave.is_empty() {
            let n = wave.len();
            for s in wave.drain(..) {
                pool.submit(s).expect("queue has room");
            }
            pool.resume(0);
            for _ in 0..n {
                let s = pool.recv().expect("worker alive");
                if !s.is_terminal() {
                    wave.push(s);
                } else {
                    terminal += 1;
                }
            }
            pool.pause(0);
        }
        let snap = metrics.snapshot();
        drop(pool);
        (
            terminal,
            snap.faults_injected,
            snap.faults_detected,
            snap.batches_dispatched,
            snap.batch_warm_hits,
            snap.config_words_streamed,
        )
    };
    assert_eq!(run(11), run(11));
}

/// Identical seeds must produce identical fault ledgers — the whole point
/// of a *seeded* chaos harness is replayability.
#[test]
fn chaos_is_deterministic_per_seed() {
    quiet_panics();
    let run = |seed: u64| {
        let plan = FaultPlan::seeded(seed, 5, 10);
        let mut engine = Engine::new(EngineConfig {
            shards: 1, // one shard: a single total load order
            queue_depth: 32,
            cache_capacity: 8,
            fault_plan: Some(plan),
            ..EngineConfig::default()
        });
        let summary = engine.run(mixed_sessions(8));
        let s = summary.snapshot;
        (
            summary.done(),
            summary.dead_lettered(),
            s.faults_injected,
            s.faults_detected,
        )
    };
    assert_eq!(run(9), run(9));
}

/// A worker that crashes on every early load dead-letters its session
/// after the configured number of re-dispatches instead of retrying
/// forever — and the shard itself survives to serve other sessions.
#[test]
fn repeated_crashes_dead_letter_the_session() {
    quiet_panics();
    let plan = FaultPlan {
        faults: (0..16)
            .map(|at_load| FaultSpec {
                kind: FaultKind::WorkerPanic,
                at_load,
            })
            .collect(),
    };
    let mut engine = Engine::new(EngineConfig {
        shards: 1,
        queue_depth: 8,
        cache_capacity: 8,
        recovery: RecoveryPolicy {
            max_session_attempts: 1,
            ..RecoveryPolicy::default()
        },
        fault_plan: Some(plan),
        ..EngineConfig::default()
    });
    let summary = engine.run(mixed_sessions(2));

    assert_eq!(summary.dead_lettered(), 2, "both sessions give up");
    let snap = &summary.snapshot;
    assert_eq!(snap.dead_letters, 2);
    // Each session: crash, one retry, crash again, dead-letter.
    assert_eq!(snap.session_retries, 2);
    assert_eq!(snap.worker_restarts, 4);
    assert_eq!(snap.faults_injected, snap.faults_detected);
}

/// Overload shedding: with a one-deep queue and a zero backlog budget,
/// admission pressure sheds the least-urgent waiting sessions with an
/// explicit `Shed` outcome — sessions are dropped, never lost.
#[test]
fn admission_pressure_sheds_latest_deadline_sessions() {
    let mut engine = Engine::new(EngineConfig {
        shards: 1,
        queue_depth: 1,
        cache_capacity: 8,
        shed_backlog: 0,
        ..EngineConfig::default()
    });
    let summary = engine.run(mixed_sessions(12));

    assert_eq!(summary.completed.len(), 12, "dropped sessions must surface");
    assert_eq!(summary.done() + summary.shed(), 12, "no other outcome");
    assert!(
        summary.shed() >= 1,
        "a 1-deep queue must shed under 12 offers"
    );
    assert_eq!(summary.snapshot.sessions_shed, summary.shed() as u64);
    // Shed sessions were dropped before finishing — terminal, not Done,
    // and the completion counter only reflects sessions that truly ran.
    assert_eq!(
        summary.snapshot.sessions_completed,
        summary.done() as u64,
        "shed sessions must not count as completed"
    );
}

/// The golden-equivalence regression for the engine layer: with the
/// fault machinery *compiled in* but no plan attached, a fault-free run
/// keeps the exact step count and fault counters of the seed build.
#[test]
fn no_plan_changes_nothing() {
    let mut engine = Engine::new(EngineConfig {
        shards: 2,
        queue_depth: 8,
        cache_capacity: 8,
        ..EngineConfig::default() // fault_plan: None
    });
    let summary = engine.run(mixed_sessions(16));
    assert_eq!(summary.done(), 16);
    let snap = &summary.snapshot;
    assert_eq!(snap.jobs_run, 3 * 16, "exact step count as without faults");
    assert_eq!(snap.faults_injected, 0);
    assert_eq!(snap.faults_detected, 0);
    assert_eq!(snap.worker_restarts, 0);
    assert_eq!(snap.dead_letters, 0);
    assert_eq!(snap.watchdog_kicks, 0);
}
