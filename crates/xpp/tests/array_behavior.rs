//! Behavioural tests of the array runtime: pipelining, dataflow control
//! structures, memory objects, configuration management and the protection
//! rules the paper highlights.

use xpp_array::{
    AluOp, Array, CounterCfg, Error, Geometry, Netlist, NetlistBuilder, UnaryOp, Word,
    CONFIG_CYCLES_PER_OBJECT,
};

fn words(vals: impl IntoIterator<Item = i32>) -> Vec<Word> {
    vals.into_iter().map(Word::new).collect()
}

fn values(words: &[Word]) -> Vec<i32> {
    words.iter().map(|w| w.value()).collect()
}

/// `out = (a + b) >> 1` over a stream.
fn averager() -> Netlist {
    let mut nl = NetlistBuilder::new("avg");
    let a = nl.input("a");
    let b = nl.input("b");
    let sum = nl.alu(AluOp::Add, a, b);
    let y = nl.unary(UnaryOp::ShrK(1), sum);
    nl.output("y", y);
    nl.build().unwrap()
}

#[test]
fn streaming_pipeline_end_to_end() {
    let mut array = Array::xpp64a();
    let cfg = array.configure(&averager()).unwrap();
    array.push_input(cfg, "a", words([10, 20, 30])).unwrap();
    array.push_input(cfg, "b", words([2, 4, 6])).unwrap();
    array.run_until_idle(1_000).unwrap();
    assert_eq!(
        values(&array.drain_output(cfg, "y").unwrap()),
        vec![6, 12, 18]
    );
}

#[test]
fn pipeline_sustains_one_token_per_cycle() {
    // After the pipeline fills, each extra input costs exactly one cycle.
    let mut array = Array::xpp64a();
    let cfg = array.configure(&averager()).unwrap();
    let n = 256;
    array.push_input(cfg, "a", (0..n).map(Word::new)).unwrap();
    array.push_input(cfg, "b", (0..n).map(Word::new)).unwrap();
    // Let loading finish first so we time only the streaming.
    while !array.is_running(cfg) {
        array.step();
    }
    let start = array.stats().cycles;
    array
        .run_until_output(cfg, "y", n as usize, 10_000)
        .unwrap();
    let cycles = array.stats().cycles - start;
    // 4-object pipeline latency + n tokens; allow small slack.
    assert!(
        cycles <= n as u64 + 16,
        "pipeline throughput below 1/cycle: {cycles} cycles for {n} tokens"
    );
}

#[test]
fn capacity_one_halves_throughput() {
    let mut nl = NetlistBuilder::new("cap1");
    nl.set_default_capacity(1);
    let a = nl.input("a");
    let y0 = nl.unary(UnaryOp::Pass, a);
    let y1 = nl.unary(UnaryOp::Pass, y0);
    let y2 = nl.unary(UnaryOp::Pass, y1);
    nl.output("y", y2);
    let mut array = Array::xpp64a();
    let cfg = array.configure(&nl.build().unwrap()).unwrap();
    let n = 128;
    array.push_input(cfg, "a", (0..n).map(Word::new)).unwrap();
    while !array.is_running(cfg) {
        array.step();
    }
    let start = array.stats().cycles;
    array
        .run_until_output(cfg, "y", n as usize, 10_000)
        .unwrap();
    let cycles = array.stats().cycles - start;
    // Capacity-1 channels cannot sustain 1 token/cycle: expect ~2n.
    assert!(
        cycles >= 2 * n as u64 - 8,
        "expected halved throughput, got {cycles}"
    );
}

#[test]
fn accumulator_with_dump_control() {
    // Sum groups of 4 samples: counter → EqK(3) → event controls dump.
    let mut nl = NetlistBuilder::new("acc4");
    let x = nl.input("x");
    let c = nl.counter(CounterCfg::modulo(4));
    let last = nl.unary(UnaryOp::EqK(Word::new(3)), c.value);
    let dump = nl.to_event(last);
    let sum = nl.accum_dump(x, dump);
    nl.output("sum", sum);
    let mut array = Array::xpp64a();
    let cfg = array.configure(&nl.build().unwrap()).unwrap();
    array
        .push_input(cfg, "x", words([1, 2, 3, 4, 10, 20, 30, 40]))
        .unwrap();
    array.run_until_idle(1_000).unwrap();
    assert_eq!(
        values(&array.drain_output(cfg, "sum").unwrap()),
        vec![10, 100]
    );
}

#[test]
fn feedback_accumulator_with_initial_token() {
    // A raw ALU feedback loop: running sum (no dump).
    let mut nl = NetlistBuilder::new("runsum");
    let x = nl.input("x");
    let (in0, in1, out) = nl.alu_deferred(AluOp::Add);
    nl.wire(x, in0);
    nl.wire_with(out, in1, 2, vec![Word::ZERO]);
    nl.output("y", out);
    let mut array = Array::xpp64a();
    let cfg = array.configure(&nl.build().unwrap()).unwrap();
    array.push_input(cfg, "x", words([1, 2, 3, 4])).unwrap();
    array.run_until_idle(1_000).unwrap();
    assert_eq!(
        values(&array.drain_output(cfg, "y").unwrap()),
        vec![1, 3, 6, 10]
    );
}

#[test]
fn counter_emits_modulo_sequence_with_wrap_events() {
    let mut nl = NetlistBuilder::new("cnt");
    let c = nl.counter(CounterCfg::modulo(3));
    nl.output("v", c.value);
    nl.output_event("wrap", c.wrap);
    let mut array = Array::xpp64a();
    let cfg = array.configure(&nl.build().unwrap()).unwrap();
    // Counter free-runs; run a fixed number of cycles then inspect.
    array.run(40);
    let v = values(&array.drain_output(cfg, "v").unwrap());
    assert!(v.len() >= 9);
    assert_eq!(&v[..6], &[0, 1, 2, 0, 1, 2]);
    let wraps = array.drain_output_events(cfg, "wrap").unwrap();
    assert!(wraps.iter().all(|&w| w));
    // One wrap per 3 values.
    assert!(wraps.len() >= v.len() / 3 - 1);
}

#[test]
fn gated_counter_bursts_on_go() {
    let mut nl = NetlistBuilder::new("burst");
    let go = nl.input_event("go");
    let c = nl.counter(CounterCfg::gated_burst(4));
    nl.wire_ev(go, c.go.unwrap());
    nl.output("v", c.value);
    let mut array = Array::xpp64a();
    let cfg = array.configure(&nl.build().unwrap()).unwrap();
    array.run_until_idle(1_000).unwrap();
    assert!(array.drain_output(cfg, "v").unwrap().is_empty());
    array.push_input_events(cfg, "go", [true]).unwrap();
    array.run_until_idle(1_000).unwrap();
    assert_eq!(
        values(&array.drain_output(cfg, "v").unwrap()),
        vec![0, 1, 2, 3]
    );
    array.push_input_events(cfg, "go", [true, true]).unwrap();
    array.run_until_idle(1_000).unwrap();
    assert_eq!(array.drain_output(cfg, "v").unwrap().len(), 8);
}

#[test]
fn demux_decimates_and_discards() {
    // Keep every second sample: counter LSB selects; out0 (sel=false) kept,
    // out1 unconnected → discarded.
    let mut nl = NetlistBuilder::new("dec2");
    let x = nl.input("x");
    let c = nl.counter(CounterCfg::modulo(2));
    let sel = nl.to_event(c.value);
    let (keep, _drop) = nl.demux(sel, x);
    nl.output("y", keep);
    let mut array = Array::xpp64a();
    let cfg = array.configure(&nl.build().unwrap()).unwrap();
    array
        .push_input(cfg, "x", words([10, 11, 12, 13, 14, 15]))
        .unwrap();
    array.run_until_idle(1_000).unwrap();
    assert_eq!(
        values(&array.drain_output(cfg, "y").unwrap()),
        vec![10, 12, 14]
    );
}

#[test]
fn merge_selects_between_streams() {
    let mut nl = NetlistBuilder::new("mrg");
    let a = nl.input("a");
    let b = nl.input("b");
    let c = nl.counter(CounterCfg::modulo(2));
    let sel = nl.to_event(c.value);
    let y = nl.merge(sel, a, b);
    nl.output("y", y);
    let mut array = Array::xpp64a();
    let cfg = array.configure(&nl.build().unwrap()).unwrap();
    array.push_input(cfg, "a", words([1, 2, 3])).unwrap();
    array.push_input(cfg, "b", words([100, 200, 300])).unwrap();
    array.run_until_idle(1_000).unwrap();
    // sel alternates 0,1,0,1,... → a,b,a,b,...
    assert_eq!(
        values(&array.drain_output(cfg, "y").unwrap()),
        vec![1, 100, 2, 200, 3, 300]
    );
}

#[test]
fn swap_crosses_streams() {
    let mut nl = NetlistBuilder::new("swp");
    let a = nl.input("a");
    let b = nl.input("b");
    let c = nl.counter(CounterCfg::modulo(2));
    let sel = nl.to_event(c.value);
    let (x, y) = nl.swap(sel, a, b);
    nl.output("x", x);
    nl.output("y", y);
    let mut array = Array::xpp64a();
    let cfg = array.configure(&nl.build().unwrap()).unwrap();
    array.push_input(cfg, "a", words([1, 2])).unwrap();
    array.push_input(cfg, "b", words([10, 20])).unwrap();
    array.run_until_idle(1_000).unwrap();
    assert_eq!(values(&array.drain_output(cfg, "x").unwrap()), vec![1, 20]);
    assert_eq!(values(&array.drain_output(cfg, "y").unwrap()), vec![10, 2]);
}

#[test]
fn ring_fifo_recirculates_lookup_table() {
    let mut nl = NetlistBuilder::new("lut");
    let x = nl.input("x");
    let lut = nl.ring_fifo(words([5, 6, 7]));
    let y = nl.alu(AluOp::Add, x, lut);
    nl.output("y", y);
    let mut array = Array::xpp64a();
    let cfg = array.configure(&nl.build().unwrap()).unwrap();
    array
        .push_input(cfg, "x", words([0, 0, 0, 0, 0, 0, 0]))
        .unwrap();
    array.run_until_idle(1_000).unwrap();
    assert_eq!(
        values(&array.drain_output(cfg, "y").unwrap()),
        vec![5, 6, 7, 5, 6, 7, 5]
    );
}

#[test]
fn ram_read_only_lookup() {
    let mut nl = NetlistBuilder::new("rom");
    let addr = nl.input("addr");
    let ram = nl.ram(words([100, 101, 102, 103]));
    nl.wire(addr, ram.rd_addr);
    nl.output("q", ram.rd_data);
    let mut array = Array::xpp64a();
    let cfg = array.configure(&nl.build().unwrap()).unwrap();
    array.push_input(cfg, "addr", words([3, 0, 2])).unwrap();
    array.run_until_idle(1_000).unwrap();
    assert_eq!(
        values(&array.drain_output(cfg, "q").unwrap()),
        vec![103, 100, 102]
    );
}

#[test]
fn ram_write_then_read() {
    let mut nl = NetlistBuilder::new("mem");
    let wa = nl.input("wa");
    let wd = nl.input("wd");
    let ra = nl.input("ra");
    let ram = nl.ram(vec![]);
    nl.wire(wa, ram.wr_addr);
    nl.wire(wd, ram.wr_data);
    nl.wire(ra, ram.rd_addr);
    nl.output("q", ram.rd_data);
    let mut array = Array::xpp64a();
    let cfg = array.configure(&nl.build().unwrap()).unwrap();
    array.push_input(cfg, "wa", words([7, 8])).unwrap();
    array.push_input(cfg, "wd", words([70, 80])).unwrap();
    array.run_until_idle(1_000).unwrap();
    array.push_input(cfg, "ra", words([8, 7])).unwrap();
    array.run_until_idle(1_000).unwrap();
    assert_eq!(values(&array.drain_output(cfg, "q").unwrap()), vec![80, 70]);
}

#[test]
fn ram_based_multibank_accumulator() {
    // The despreader pattern: per-finger partial sums held in RAM.
    // Two interleaved "fingers": acc[i % 2] += x; emit both at the end.
    let mut nl = NetlistBuilder::new("bankacc");
    let x = nl.input("x");
    let ram = nl.ram(vec![]);
    let rd_ctr = nl.counter(CounterCfg::modulo(2));
    nl.wire(rd_ctr.value, ram.rd_addr);
    let sum = nl.alu(AluOp::Add, ram.rd_data, x);
    let wr_ctr = nl.counter(CounterCfg::modulo(2));
    nl.wire(wr_ctr.value, ram.wr_addr);
    // Tap the sum both back into RAM and to the output (we just observe the
    // running per-bank sums at the output).
    nl.wire(sum, ram.wr_data);
    nl.output("y", sum);
    let mut array = Array::xpp64a();
    let cfg = array.configure(&nl.build().unwrap()).unwrap();
    array
        .push_input(cfg, "x", words([1, 10, 2, 20, 3, 30]))
        .unwrap();
    array.run_until_idle(2_000).unwrap();
    // Bank0 sums 1,2,3 → 1,3,6; bank1 sums 10,20,30 → 10,30,60; interleaved.
    assert_eq!(
        values(&array.drain_output(cfg, "y").unwrap()),
        vec![1, 10, 3, 30, 6, 60]
    );
}

#[test]
fn select_consumes_both_inputs() {
    let mut nl = NetlistBuilder::new("sel");
    let a = nl.input("a");
    let b = nl.input("b");
    let c = nl.counter(CounterCfg::modulo(2));
    let sel = nl.to_event(c.value);
    let y = nl.select(sel, a, b);
    nl.output("y", y);
    let mut array = Array::xpp64a();
    let cfg = array.configure(&nl.build().unwrap()).unwrap();
    array.push_input(cfg, "a", words([1, 2])).unwrap();
    array.push_input(cfg, "b", words([10, 20])).unwrap();
    array.run_until_idle(1_000).unwrap();
    // Both a and b consumed each fire; outputs alternate a,b.
    assert_eq!(values(&array.drain_output(cfg, "y").unwrap()), vec![1, 20]);
}

#[test]
fn gate_passes_only_on_true() {
    let mut nl = NetlistBuilder::new("gate");
    let x = nl.input("x");
    let en = nl.input("en");
    let ev = nl.to_event(en);
    let y = nl.gate(ev, x);
    nl.output("y", y);
    let mut array = Array::xpp64a();
    let cfg = array.configure(&nl.build().unwrap()).unwrap();
    array.push_input(cfg, "x", words([1, 2, 3, 4])).unwrap();
    array.push_input(cfg, "en", words([1, 0, 1, 0])).unwrap();
    array.run_until_idle(1_000).unwrap();
    assert_eq!(values(&array.drain_output(cfg, "y").unwrap()), vec![1, 3]);
}

// ---- configuration management ----------------------------------------

#[test]
fn loading_takes_config_bus_cycles() {
    let netlist = averager();
    let objects = netlist.object_count() as u64;
    let mut array = Array::xpp64a();
    let cfg = array.configure(&netlist).unwrap();
    assert!(!array.is_running(cfg));
    array.run(objects * CONFIG_CYCLES_PER_OBJECT - 1);
    assert!(!array.is_running(cfg));
    array.run(1);
    assert!(array.is_running(cfg));
    assert_eq!(array.stats().configs_loaded, 1);
    assert_eq!(
        array.stats().config_cycles,
        objects * CONFIG_CYCLES_PER_OBJECT
    );
}

#[test]
fn sequential_loads_share_the_config_bus() {
    let mut array = Array::xpp64a();
    let c1 = array.configure(&averager()).unwrap();
    let c2 = array.configure(&averager()).unwrap();
    let per = averager().object_count() as u64 * CONFIG_CYCLES_PER_OBJECT;
    array.run(per);
    assert!(array.is_running(c1));
    assert!(!array.is_running(c2)); // still waiting on the bus
    array.run(per);
    assert!(array.is_running(c2));
}

#[test]
fn unload_frees_resources_for_follow_on_config() {
    // Fill the array with a config that uses most ALUs, then check that a
    // second big config fails while the first is resident and succeeds after
    // it is removed (Fig. 10's differential reconfiguration).
    fn big(name: &str, alus: usize) -> Netlist {
        let mut nl = NetlistBuilder::new(name);
        let mut x = nl.input("x");
        for _ in 0..alus {
            let k = nl.constant(Word::ONE);
            x = nl.alu(AluOp::Add, x, k);
        }
        nl.output("y", x);
        nl.build().unwrap()
    }
    let mut array = Array::xpp64a();
    let c1 = array.configure(&big("a", 40)).unwrap();
    match array.configure(&big("b", 40)) {
        Err(Error::PlacementFailed { resource, .. }) => assert_eq!(resource, "ALU slots"),
        other => panic!("expected placement failure, got {other:?}"),
    }
    array.unload(c1).unwrap();
    assert!(array.configure(&big("b", 40)).is_ok());
}

#[test]
fn resident_configs_cannot_be_overwritten() {
    // The protection rule: resources held by a live configuration are never
    // reassigned, so both configs run concurrently and independently.
    let mut array = Array::xpp64a();
    let c1 = array.configure(&averager()).unwrap();
    let c2 = array.configure(&averager()).unwrap();
    array.push_input(c1, "a", words([1])).unwrap();
    array.push_input(c1, "b", words([3])).unwrap();
    array.push_input(c2, "a", words([10])).unwrap();
    array.push_input(c2, "b", words([30])).unwrap();
    array.run_until_idle(1_000).unwrap();
    assert_eq!(values(&array.drain_output(c1, "y").unwrap()), vec![2]);
    assert_eq!(values(&array.drain_output(c2, "y").unwrap()), vec![20]);
}

#[test]
fn stale_config_ids_are_rejected() {
    let mut array = Array::xpp64a();
    let cfg = array.configure(&averager()).unwrap();
    array.unload(cfg).unwrap();
    assert!(matches!(array.unload(cfg), Err(Error::NoSuchConfig(_))));
    assert!(matches!(
        array.push_input(cfg, "a", words([1])),
        Err(Error::NoSuchConfig(_))
    ));
    assert!(matches!(
        array.drain_output(cfg, "y"),
        Err(Error::NoSuchConfig(_))
    ));
    assert!(matches!(array.placement(cfg), Err(Error::NoSuchConfig(_))));
}

#[test]
fn unknown_ports_are_rejected() {
    let mut array = Array::xpp64a();
    let cfg = array.configure(&averager()).unwrap();
    assert!(matches!(
        array.push_input(cfg, "nope", words([1])),
        Err(Error::UnknownPort(_))
    ));
    // Direction mismatch is also an unknown port.
    assert!(matches!(
        array.drain_output(cfg, "a"),
        Err(Error::UnknownPort(_))
    ));
}

#[test]
fn cross_config_connection_streams_tokens() {
    let mut scale = NetlistBuilder::new("scale");
    let x = scale.input("x");
    let y = scale.unary(UnaryOp::MulKShr(Word::new(3), 0), x);
    scale.output("y", y);

    let mut offset = NetlistBuilder::new("offset");
    let x2 = offset.input("x");
    let y2 = offset.unary(UnaryOp::AddK(Word::new(100)), x2);
    offset.output("y", y2);

    let mut array = Array::xpp64a();
    let c1 = array.configure(&scale.build().unwrap()).unwrap();
    let c2 = array.configure(&offset.build().unwrap()).unwrap();
    array.connect(c1, "y", c2, "x").unwrap();
    array.push_input(c1, "x", words([1, 2, 3])).unwrap();
    array.run_until_idle(1_000).unwrap();
    assert_eq!(
        values(&array.drain_output(c2, "y").unwrap()),
        vec![103, 106, 109]
    );
}

#[test]
fn utilization_reflects_residency() {
    let mut array = Array::xpp64a();
    assert_eq!(array.alu_utilization(), 0.0);
    let cfg = array.configure(&averager()).unwrap();
    assert!(array.alu_utilization() > 0.0);
    array.unload(cfg).unwrap();
    assert_eq!(array.alu_utilization(), 0.0);
}

#[test]
fn run_until_idle_times_out_on_livelock() {
    // A free-running counter draining into an output port never idles.
    let mut nl = NetlistBuilder::new("live");
    let c = nl.counter(CounterCfg::modulo(1_000_000));
    nl.output("v", c.value);
    let mut array = Array::xpp64a();
    let _ = array.configure(&nl.build().unwrap()).unwrap();
    assert!(matches!(
        array.run_until_idle(500),
        Err(Error::Timeout { budget: 500 })
    ));
}

#[test]
fn placement_reports_counts() {
    let mut array = Array::xpp64a();
    let cfg = array.configure(&averager()).unwrap();
    let p = array.placement(cfg).unwrap();
    assert_eq!(p.objects, 5);
    assert_eq!(p.counts.alu, 1); // the Add
    assert_eq!(p.counts.reg, 1); // the ShrK
    assert_eq!(p.counts.io, 3);
    assert_eq!(array.config_name(cfg).unwrap(), "avg");
}

#[test]
fn custom_geometry_limits_resources() {
    let tiny = Geometry {
        alu_paes: 1,
        ram_paes: 0,
        io_channels: 3,
        regs_per_pae: 2,
        routes_per_pae: 8,
    };
    let mut array = Array::with_geometry(tiny);
    // averager needs 1 alu + 1 reg + 3 io — fits exactly.
    let cfg = array.configure(&averager()).unwrap();
    array.push_input(cfg, "a", words([4])).unwrap();
    array.push_input(cfg, "b", words([6])).unwrap();
    array.run_until_idle(1_000).unwrap();
    assert_eq!(values(&array.drain_output(cfg, "y").unwrap()), vec![5]);
    // Nothing else fits.
    assert!(array.configure(&averager()).is_err());
}

#[test]
fn stats_track_firing_classes() {
    let mut array = Array::xpp64a();
    let cfg = array.configure(&averager()).unwrap();
    array.push_input(cfg, "a", words([1, 2])).unwrap();
    array.push_input(cfg, "b", words([3, 4])).unwrap();
    array.run_until_idle(1_000).unwrap();
    let s = array.stats();
    assert_eq!(s.alu_fires, 2); // two adds
    assert_eq!(s.reg_fires, 2); // two shifts
    assert_eq!(s.io_words, 6); // 4 in + 2 out
    assert!(s.cycles > 0);
    assert!(array.config_fire_count(cfg) >= 10);
}
