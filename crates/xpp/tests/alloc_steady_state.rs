//! Steady-state stepping must not touch the heap: once the scheduler's
//! ready lists and dirty-commit lists have reached their high-water
//! capacity, `Array::step`/`Array::run` perform zero allocations. This is
//! the zero-alloc guarantee of the event-driven stepping rewrite, enforced
//! with a counting global allocator.
//!
//! This file intentionally contains a single test: the allocation counter
//! is process-global, and a concurrently running test would make the
//! steady-state window non-quiet.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use xpp_array::{Array, CounterCfg, NetlistBuilder, UnaryOp, Word};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// A free-running netlist with no external outputs: counters drive a demux
/// whose data outputs are left unconnected, so tokens are produced,
/// steered, and discarded forever without any queue growing. Every object
/// class on the hot path fires each cycle (counter, unary compare,
/// to_event, demux), which exercises the ready list, the dirty-commit
/// lists, and the self-rewake path.
fn free_running_array() -> Array {
    let mut nl = NetlistBuilder::new("free-running");
    let data = nl.counter(CounterCfg::modulo(17));
    let sel_src = nl.counter(CounterCfg::modulo(3));
    let hi = nl.unary(UnaryOp::GeK(Word::new(1)), sel_src.value);
    let sel = nl.to_event(hi);
    let _ = nl.demux(sel, data.value);
    let mut array = Array::xpp64a();
    let cfg = array.configure(&nl.build().unwrap()).unwrap();
    while !array.is_running(cfg) {
        array.step();
    }
    array
}

#[test]
fn steady_state_stepping_does_not_allocate() {
    let mut array = free_running_array();
    // Warm-up: let every scratch vector (ready list, fire buffer, dirty
    // lists, board buffers) reach its high-water capacity.
    array.run(10_000);
    let stats_before = array.stats();

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    array.run(10_000);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "Array::run allocated in steady state ({} heap allocations over 10k cycles)",
        after - before
    );

    // The window actually did work — the array was live, not idle.
    let stats_after = array.stats();
    assert!(stats_after.total_fires() > stats_before.total_fires() + 10_000);
}
