//! The rake descrambler on the array (paper Fig. 5).
//!
//! The dedicated-hardware code generator streams the scrambling code as a
//! 2-bit representation; on the array, merges select `±1` constants from the
//! code bits ("packed constants" in the figure) and a four-multiplier
//! complex multiplication forms `rx · conj(S)`:
//!
//! ```text
//! y_re = i·c1 + q·c2        y_im = q·c1 − i·c2
//! ```
//!
//! with `c1 = 1−2·cᵢ`, `c2 = 1−2·c_q`.

use crate::scrambling::ScramblingCode;
use crate::xpp_map::{split_iq, zip_iq};
use sdr_dsp::Cplx;
use xpp_array::{AluOp, Array, ConfigId, Netlist, NetlistBuilder, Result, Word};

/// Builds the Fig. 5 descrambler netlist.
///
/// External ports: data in `i_in`/`q_in` (12-bit samples), code bits
/// `ci`/`cq` (words 0/1), data out `i_out`/`q_out`.
pub fn descrambler_netlist() -> Netlist {
    let mut nl = NetlistBuilder::new("fig5-descrambler");
    let i_in = nl.input("i_in");
    let q_in = nl.input("q_in");
    let ci = nl.input("ci");
    let cq = nl.input("cq");

    // 2-bit code → ±1 constants via merges (bit 0 → +1, bit 1 → −1).
    // Each merge owns its constant pair (the figure's "packed constants"):
    // a merge consumes only the selected input, so a constant shared between
    // merges would jam its broadcast channel and deadlock the pipeline.
    let plus_i = nl.constant(Word::ONE);
    let minus_i = nl.constant(Word::new(-1));
    let plus_q = nl.constant(Word::ONE);
    let minus_q = nl.constant(Word::new(-1));
    let sel_i = nl.to_event(ci);
    let sel_q = nl.to_event(cq);
    let c1 = nl.merge(sel_i, plus_i, minus_i);
    let c2 = nl.merge(sel_q, plus_q, minus_q);

    // Complex multiplication by conj(S) = c1 − j·c2.
    let p1 = nl.alu(AluOp::Mul, i_in, c1);
    let p2 = nl.alu(AluOp::Mul, q_in, c2);
    let p3 = nl.alu(AluOp::Mul, q_in, c1);
    let p4 = nl.alu(AluOp::Mul, i_in, c2);
    let y_re = nl.alu(AluOp::Add, p1, p2);
    let y_im = nl.alu(AluOp::Sub, p3, p4);
    nl.output("i_out", y_re);
    nl.output("q_out", y_im);
    nl.build().expect("descrambler netlist is well formed")
}

/// A descrambler running on its own array instance.
///
/// # Example
///
/// ```
/// use sdr_wcdma::scrambling::ScramblingCode;
/// use sdr_wcdma::rake::finger::descramble;
/// use sdr_wcdma::xpp_map::ArrayDescrambler;
/// use sdr_dsp::Cplx;
///
/// # fn main() -> Result<(), xpp_array::Error> {
/// let code = ScramblingCode::downlink(3);
/// let rx: Vec<Cplx<i32>> = (0..32).map(|i| Cplx::new(100 + i, -i)).collect();
/// let mut hw = ArrayDescrambler::new()?;
/// let out = hw.process(&rx, &code, 0, 0, 32)?;
/// assert_eq!(out, descramble(&rx, &code, 0, 0, 32)); // bit-exact
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ArrayDescrambler {
    array: Array,
    cfg: ConfigId,
}

impl ArrayDescrambler {
    /// Instantiates the descrambler on a fresh XPP-64A.
    ///
    /// # Errors
    ///
    /// Returns an error if placement fails (cannot happen on an empty
    /// XPP-64A).
    pub fn new() -> Result<Self> {
        let mut array = Array::xpp64a();
        let cfg = array.configure(&descrambler_netlist())?;
        Ok(ArrayDescrambler { array, cfg })
    }

    /// Descrambles `n` chips starting at `rx[delay]` with code phase
    /// `phase` — the same contract as the golden
    /// [`descramble`](crate::rake::finger::descramble).
    ///
    /// # Errors
    ///
    /// Returns an error if the simulation stalls (never happens for valid
    /// streams).
    ///
    /// # Panics
    ///
    /// Panics if `delay + n` exceeds the buffer.
    pub fn process(
        &mut self,
        rx: &[Cplx<i32>],
        code: &ScramblingCode,
        delay: usize,
        phase: usize,
        n: usize,
    ) -> Result<Vec<Cplx<i32>>> {
        assert!(delay + n <= rx.len(), "descramble window exceeds buffer");
        let (i, q) = split_iq(&rx[delay..delay + n]);
        let bits: Vec<(u8, u8)> = (0..n).map(|k| code.chip_bits(phase + k)).collect();
        self.array.push_input(self.cfg, "i_in", i)?;
        self.array.push_input(self.cfg, "q_in", q)?;
        self.array
            .push_input(self.cfg, "ci", bits.iter().map(|b| Word::new(b.0 as i32)))?;
        self.array
            .push_input(self.cfg, "cq", bits.iter().map(|b| Word::new(b.1 as i32)))?;
        self.array
            .run_until_output(self.cfg, "i_out", n, 16 * n as u64 + 1_000)?;
        self.array.run_until_idle(1_000)?;
        let i_out = self.array.drain_output(self.cfg, "i_out")?;
        let q_out = self.array.drain_output(self.cfg, "q_out")?;
        Ok(zip_iq(&i_out, &q_out))
    }

    /// The underlying array (for stats and placement inspection).
    pub fn array(&self) -> &Array {
        &self.array
    }

    /// The configuration handle.
    pub fn config(&self) -> ConfigId {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rake::finger::descramble;

    fn ramp(n: usize) -> Vec<Cplx<i32>> {
        (0..n as i32)
            .map(|i| Cplx::new((i * 37 % 4095) - 2047, (i * 91 % 4095) - 2047))
            .collect()
    }

    #[test]
    fn matches_golden_bit_exact() {
        let code = ScramblingCode::downlink(7);
        let rx = ramp(256);
        let mut hw = ArrayDescrambler::new().unwrap();
        let out = hw.process(&rx, &code, 0, 0, 256).unwrap();
        assert_eq!(out, descramble(&rx, &code, 0, 0, 256));
    }

    #[test]
    fn matches_golden_with_delay_and_phase() {
        let code = ScramblingCode::downlink(19);
        let rx = ramp(128);
        let mut hw = ArrayDescrambler::new().unwrap();
        let out = hw.process(&rx, &code, 10, 5, 100).unwrap();
        assert_eq!(out, descramble(&rx, &code, 10, 5, 100));
    }

    #[test]
    fn resource_footprint_is_small() {
        let netlist = descrambler_netlist();
        let hw = ArrayDescrambler::new().unwrap();
        let p = hw.array().placement(hw.config()).unwrap();
        assert_eq!(p.objects, netlist.object_count());
        assert_eq!(p.counts.alu, 6); // 4 muls + add + sub
        assert!(p.counts.reg <= 8);
        assert_eq!(p.counts.io, 6);
    }

    #[test]
    fn sustains_streaming_throughput() {
        let code = ScramblingCode::downlink(0);
        let rx = ramp(512);
        let mut hw = ArrayDescrambler::new().unwrap();
        let before = hw.array().stats().cycles;
        hw.process(&rx, &code, 0, 0, 512).unwrap();
        let cycles = hw.array().stats().cycles - before;
        // Pipelined: ~1 chip per cycle plus latency and load time.
        assert!(
            cycles < 512 + 200,
            "descrambler too slow: {cycles} cycles for 512 chips"
        );
    }

    #[test]
    fn consecutive_blocks_reuse_configuration() {
        let code = ScramblingCode::downlink(2);
        let rx = ramp(64);
        let mut hw = ArrayDescrambler::new().unwrap();
        let a = hw.process(&rx, &code, 0, 0, 64).unwrap();
        let b = hw.process(&rx, &code, 0, 0, 64).unwrap();
        assert_eq!(a, b);
        assert_eq!(hw.array().stats().configs_loaded, 1);
    }
}
