//! Netlist construction: the software description of a configuration.
//!
//! A [`Netlist`] plays the role of the NML source in the XPP tool flow: it
//! names a set of objects and the token channels between them. The
//! [`NetlistBuilder`] offers typed handles so data and event networks cannot
//! be confused, supports feedback edges carrying initial tokens (dataflow
//! loops), and validates connectivity at [`NetlistBuilder::build`].

use crate::error::{Error, Result};
use crate::object::{AluOp, CounterCfg, ObjectKind, UnaryOp, RAM_WORDS};
use crate::word::Word;

/// Default capacity of a channel: an output register plus one forward
/// register, which is what sustains one token per cycle through a pipeline.
pub const DEFAULT_CHANNEL_CAPACITY: usize = 2;

/// Identifies an object inside one netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

/// A data output port handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DataOut {
    pub(crate) node: usize,
    pub(crate) port: usize,
}

/// A data input port handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DataIn {
    pub(crate) node: usize,
    pub(crate) port: usize,
}

/// An event output port handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EvOut {
    pub(crate) node: usize,
    pub(crate) port: usize,
}

/// An event input port handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EvIn {
    pub(crate) node: usize,
    pub(crate) port: usize,
}

/// Handles to the four ports of a RAM object.
#[derive(Debug, Clone, Copy)]
pub struct RamPorts {
    /// Read-address input.
    pub rd_addr: DataIn,
    /// Write-address input.
    pub wr_addr: DataIn,
    /// Write-data input.
    pub wr_data: DataIn,
    /// Read-data output.
    pub rd_data: DataOut,
    /// The underlying node.
    pub node: NodeId,
}

/// Handles to the ports of a (non-ring) FIFO object.
#[derive(Debug, Clone, Copy)]
pub struct FifoPorts {
    /// Enqueue input.
    pub input: DataIn,
    /// Dequeue output.
    pub output: DataOut,
    /// The underlying node.
    pub node: NodeId,
}

/// Handles to a counter's outputs.
#[derive(Debug, Clone, Copy)]
pub struct CounterPorts {
    /// The value stream.
    pub value: DataOut,
    /// `true` event emitted with the last value of each burst.
    pub wrap: EvOut,
    /// Go input (present only for gated counters).
    pub go: Option<EvIn>,
    /// The underlying node.
    pub node: NodeId,
}

#[derive(Debug, Clone)]
pub(crate) struct NodeSpec {
    pub(crate) kind: ObjectKind,
    pub(crate) label: String,
}

#[derive(Debug, Clone)]
pub(crate) struct EdgeSpec {
    pub(crate) from: (usize, usize),
    pub(crate) to: (usize, usize),
    pub(crate) capacity: usize,
    pub(crate) initial: Vec<Word>,
}

#[derive(Debug, Clone)]
pub(crate) struct EvEdgeSpec {
    pub(crate) from: (usize, usize),
    pub(crate) to: (usize, usize),
    pub(crate) capacity: usize,
    pub(crate) initial: Vec<bool>,
}

/// A validated configuration description, ready to be loaded onto an
/// [`crate::Array`].
#[derive(Debug, Clone)]
pub struct Netlist {
    pub(crate) name: String,
    pub(crate) nodes: Vec<NodeSpec>,
    pub(crate) data_edges: Vec<EdgeSpec>,
    pub(crate) ev_edges: Vec<EvEdgeSpec>,
}

impl Netlist {
    /// The configuration name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of objects.
    pub fn object_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of channels (data + event).
    pub fn edge_count(&self) -> usize {
        self.data_edges.len() + self.ev_edges.len()
    }

    /// Iterates over the object kinds (for resource accounting).
    pub fn kinds(&self) -> impl Iterator<Item = &ObjectKind> {
        self.nodes.iter().map(|n| &n.kind)
    }
}

/// Builds a [`Netlist`] incrementally.
///
/// # Example
///
/// ```
/// use xpp_array::{AluOp, NetlistBuilder, Word};
///
/// # fn main() -> Result<(), xpp_array::Error> {
/// let mut nl = NetlistBuilder::new("scale-add");
/// let a = nl.input("a");
/// let b = nl.input("b");
/// let scaled = nl.alu(AluOp::MulShr(1), a, b);
/// nl.output("y", scaled);
/// let netlist = nl.build()?;
/// assert_eq!(netlist.object_count(), 4); // 2 inputs, 1 alu, 1 output
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NetlistBuilder {
    name: String,
    nodes: Vec<NodeSpec>,
    data_edges: Vec<EdgeSpec>,
    ev_edges: Vec<EvEdgeSpec>,
    default_capacity: usize,
}

impl NetlistBuilder {
    /// Starts an empty netlist with the given configuration name.
    pub fn new(name: impl Into<String>) -> Self {
        NetlistBuilder {
            name: name.into(),
            nodes: Vec::new(),
            data_edges: Vec::new(),
            ev_edges: Vec::new(),
            default_capacity: DEFAULT_CHANNEL_CAPACITY,
        }
    }

    /// Overrides the capacity used by [`wire`](Self::wire) and the
    /// convenience constructors (the channel-capacity ablation experiment).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn set_default_capacity(&mut self, capacity: usize) {
        assert!(capacity >= 1, "channel capacity must be at least 1");
        self.default_capacity = capacity;
    }

    fn push(&mut self, kind: ObjectKind) -> usize {
        let label = format!("{}{}", kind.kind_name(), self.nodes.len());
        self.nodes.push(NodeSpec { kind, label });
        self.nodes.len() - 1
    }

    /// Attaches a human-readable label to a node (used in diagnostics).
    pub fn set_label(&mut self, node: NodeId, label: impl Into<String>) {
        self.nodes[node.0].label = label.into();
    }

    // ---- wiring -------------------------------------------------------

    /// Connects a data output to a data input with the default capacity.
    pub fn wire(&mut self, from: DataOut, to: DataIn) {
        self.wire_with(from, to, self.default_capacity, Vec::new());
    }

    /// Connects a data output to a data input with explicit capacity and
    /// initial tokens (feedback loops require at least one initial token).
    pub fn wire_with(&mut self, from: DataOut, to: DataIn, capacity: usize, initial: Vec<Word>) {
        self.data_edges.push(EdgeSpec {
            from: (from.node, from.port),
            to: (to.node, to.port),
            capacity,
            initial,
        });
    }

    /// Connects an event output to an event input.
    pub fn wire_ev(&mut self, from: EvOut, to: EvIn) {
        self.wire_ev_with(from, to, self.default_capacity, Vec::new());
    }

    /// Connects an event output to an event input with explicit capacity and
    /// initial tokens.
    pub fn wire_ev_with(&mut self, from: EvOut, to: EvIn, capacity: usize, initial: Vec<bool>) {
        self.ev_edges.push(EvEdgeSpec {
            from: (from.node, from.port),
            to: (to.node, to.port),
            capacity,
            initial,
        });
    }

    // ---- I/O ----------------------------------------------------------

    /// Adds an external data input port.
    pub fn input(&mut self, name: impl Into<String>) -> DataOut {
        let n = self.push(ObjectKind::Input(name.into()));
        DataOut { node: n, port: 0 }
    }

    /// Adds an external data output port fed by `src`.
    pub fn output(&mut self, name: impl Into<String>, src: DataOut) {
        let n = self.push(ObjectKind::Output(name.into()));
        self.wire(src, DataIn { node: n, port: 0 });
    }

    /// Adds an external event input port.
    pub fn input_event(&mut self, name: impl Into<String>) -> EvOut {
        let n = self.push(ObjectKind::InputEvent(name.into()));
        EvOut { node: n, port: 0 }
    }

    /// Adds an external event output port fed by `src`.
    pub fn output_event(&mut self, name: impl Into<String>, src: EvOut) {
        let n = self.push(ObjectKind::OutputEvent(name.into()));
        self.wire_ev(src, EvIn { node: n, port: 0 });
    }

    // ---- compute objects ---------------------------------------------

    /// Adds a constant source.
    pub fn constant(&mut self, value: Word) -> DataOut {
        let n = self.push(ObjectKind::Const(value));
        DataOut { node: n, port: 0 }
    }

    /// Adds a binary ALU object wired to two sources.
    pub fn alu(&mut self, op: AluOp, a: DataOut, b: DataOut) -> DataOut {
        let n = self.push(ObjectKind::Alu(op));
        self.wire(a, DataIn { node: n, port: 0 });
        self.wire(b, DataIn { node: n, port: 1 });
        DataOut { node: n, port: 0 }
    }

    /// Adds a binary ALU object with unwired inputs (for feedback loops).
    pub fn alu_deferred(&mut self, op: AluOp) -> (DataIn, DataIn, DataOut) {
        let n = self.push(ObjectKind::Alu(op));
        (
            DataIn { node: n, port: 0 },
            DataIn { node: n, port: 1 },
            DataOut { node: n, port: 0 },
        )
    }

    /// Adds a unary object wired to a source.
    pub fn unary(&mut self, op: UnaryOp, a: DataOut) -> DataOut {
        let n = self.push(ObjectKind::Unary(op));
        self.wire(a, DataIn { node: n, port: 0 });
        DataOut { node: n, port: 0 }
    }

    /// Adds a chain of `n` pass registers (pipeline balancing delay).
    pub fn delay(&mut self, mut src: DataOut, n: usize) -> DataOut {
        for _ in 0..n {
            src = self.unary(UnaryOp::Pass, src);
        }
        src
    }

    /// Adds a counter.
    ///
    /// # Panics
    ///
    /// Panics if the counter period is zero.
    pub fn counter(&mut self, cfg: CounterCfg) -> CounterPorts {
        assert!(cfg.period >= 1, "counter period must be at least 1");
        let gated = cfg.gated;
        let n = self.push(ObjectKind::Counter(cfg));
        CounterPorts {
            value: DataOut { node: n, port: 0 },
            wrap: EvOut { node: n, port: 0 },
            go: if gated {
                Some(EvIn { node: n, port: 0 })
            } else {
                None
            },
            node: NodeId(n),
        }
    }

    /// Adds a select (consumes both inputs, emits `sel ? b : a`).
    pub fn select(&mut self, sel: EvOut, a: DataOut, b: DataOut) -> DataOut {
        let n = self.push(ObjectKind::Select);
        self.wire(a, DataIn { node: n, port: 0 });
        self.wire(b, DataIn { node: n, port: 1 });
        self.wire_ev(sel, EvIn { node: n, port: 0 });
        DataOut { node: n, port: 0 }
    }

    /// Adds a merge (consumes only the selected input).
    pub fn merge(&mut self, sel: EvOut, a: DataOut, b: DataOut) -> DataOut {
        let n = self.push(ObjectKind::Merge);
        self.wire(a, DataIn { node: n, port: 0 });
        self.wire(b, DataIn { node: n, port: 1 });
        self.wire_ev(sel, EvIn { node: n, port: 0 });
        DataOut { node: n, port: 0 }
    }

    /// Adds a merge with unwired data inputs (for feedback loops).
    pub fn merge_deferred(&mut self, sel: EvOut) -> (DataIn, DataIn, DataOut) {
        let n = self.push(ObjectKind::Merge);
        self.wire_ev(sel, EvIn { node: n, port: 0 });
        (
            DataIn { node: n, port: 0 },
            DataIn { node: n, port: 1 },
            DataOut { node: n, port: 0 },
        )
    }

    /// Adds a demux: routes input to output 0 (sel false) or 1 (sel true).
    /// Unconnected outputs discard.
    pub fn demux(&mut self, sel: EvOut, a: DataOut) -> (DataOut, DataOut) {
        let n = self.push(ObjectKind::Demux);
        self.wire(a, DataIn { node: n, port: 0 });
        self.wire_ev(sel, EvIn { node: n, port: 0 });
        (DataOut { node: n, port: 0 }, DataOut { node: n, port: 1 })
    }

    /// Adds a swap: straight through on sel false, crossed on sel true.
    pub fn swap(&mut self, sel: EvOut, a: DataOut, b: DataOut) -> (DataOut, DataOut) {
        let n = self.push(ObjectKind::Swap);
        self.wire(a, DataIn { node: n, port: 0 });
        self.wire(b, DataIn { node: n, port: 1 });
        self.wire_ev(sel, EvIn { node: n, port: 0 });
        (DataOut { node: n, port: 0 }, DataOut { node: n, port: 1 })
    }

    /// Adds a gate: passes data when the event is true, discards otherwise.
    pub fn gate(&mut self, ev: EvOut, a: DataOut) -> DataOut {
        let n = self.push(ObjectKind::Gate);
        self.wire(a, DataIn { node: n, port: 0 });
        self.wire_ev(ev, EvIn { node: n, port: 0 });
        DataOut { node: n, port: 0 }
    }

    /// Adds an accumulate-and-dump object.
    pub fn accum_dump(&mut self, data: DataOut, dump: EvOut) -> DataOut {
        let n = self.push(ObjectKind::AccumDump);
        self.wire(data, DataIn { node: n, port: 0 });
        self.wire_ev(dump, EvIn { node: n, port: 0 });
        DataOut { node: n, port: 0 }
    }

    /// Converts a data stream to an event stream (`true` iff non-zero).
    pub fn to_event(&mut self, a: DataOut) -> EvOut {
        let n = self.push(ObjectKind::ToEvent);
        self.wire(a, DataIn { node: n, port: 0 });
        EvOut { node: n, port: 0 }
    }

    /// Converts an event stream to a 0/1 data stream.
    pub fn to_data(&mut self, ev: EvOut) -> DataOut {
        let n = self.push(ObjectKind::ToData);
        self.wire_ev(ev, EvIn { node: n, port: 0 });
        DataOut { node: n, port: 0 }
    }

    /// Inverts an event stream.
    pub fn ev_not(&mut self, ev: EvOut) -> EvOut {
        let n = self.push(ObjectKind::EventNot);
        self.wire_ev(ev, EvIn { node: n, port: 0 });
        EvOut { node: n, port: 0 }
    }

    /// ANDs two event streams.
    pub fn ev_and(&mut self, a: EvOut, b: EvOut) -> EvOut {
        let n = self.push(ObjectKind::EventAnd);
        self.wire_ev(a, EvIn { node: n, port: 0 });
        self.wire_ev(b, EvIn { node: n, port: 1 });
        EvOut { node: n, port: 0 }
    }

    /// ORs two event streams.
    pub fn ev_or(&mut self, a: EvOut, b: EvOut) -> EvOut {
        let n = self.push(ObjectKind::EventOr);
        self.wire_ev(a, EvIn { node: n, port: 0 });
        self.wire_ev(b, EvIn { node: n, port: 1 });
        EvOut { node: n, port: 0 }
    }

    // ---- memory objects ------------------------------------------------

    /// Adds a dual-ported RAM with initial contents (≤ 512 words).
    pub fn ram(&mut self, preload: Vec<Word>) -> RamPorts {
        let n = self.push(ObjectKind::Ram { preload });
        RamPorts {
            rd_addr: DataIn { node: n, port: 0 },
            wr_addr: DataIn { node: n, port: 1 },
            wr_data: DataIn { node: n, port: 2 },
            rd_data: DataOut { node: n, port: 0 },
            node: NodeId(n),
        }
    }

    /// Adds a FIFO with a depth limit and initial contents.
    pub fn fifo(&mut self, depth: usize, preload: Vec<Word>) -> FifoPorts {
        let n = self.push(ObjectKind::RamFifo {
            depth,
            preload,
            ring: false,
        });
        FifoPorts {
            input: DataIn { node: n, port: 0 },
            output: DataOut { node: n, port: 0 },
            node: NodeId(n),
        }
    }

    /// Adds a circular preloaded lookup FIFO: its contents stream out
    /// repeatedly, forever (the paper's twiddle/address lookup tables).
    pub fn ring_fifo(&mut self, contents: Vec<Word>) -> DataOut {
        let depth = contents.len();
        let n = self.push(ObjectKind::RamFifo {
            depth,
            preload: contents,
            ring: true,
        });
        DataOut { node: n, port: 0 }
    }

    // ---- validation -----------------------------------------------------

    /// Validates the netlist and freezes it.
    ///
    /// # Errors
    ///
    /// Returns an error if the netlist is empty, an external port name is
    /// duplicated, a required input is unconnected or doubly driven, a RAM
    /// write port pair is only half-connected, a preload exceeds the RAM
    /// depth, or initial tokens exceed a channel's capacity.
    pub fn build(self) -> Result<Netlist> {
        if self.nodes.is_empty() {
            return Err(Error::EmptyNetlist);
        }
        // External port names must be unique within the netlist.
        let mut names = std::collections::HashSet::new();
        for node in &self.nodes {
            let name = match &node.kind {
                ObjectKind::Input(n)
                | ObjectKind::Output(n)
                | ObjectKind::InputEvent(n)
                | ObjectKind::OutputEvent(n) => Some(n.clone()),
                _ => None,
            };
            if let Some(n) = name {
                if !names.insert(n.clone()) {
                    return Err(Error::DuplicatePortName(n));
                }
            }
        }
        // Preload sizes.
        for node in &self.nodes {
            match &node.kind {
                ObjectKind::Ram { preload } if preload.len() > RAM_WORDS => {
                    return Err(Error::PreloadTooLarge {
                        object: node.label.clone(),
                        requested: preload.len(),
                        max: RAM_WORDS,
                    });
                }
                ObjectKind::RamFifo { depth, preload, .. } => {
                    let max = (*depth).min(RAM_WORDS);
                    if preload.len() > max || *depth > RAM_WORDS {
                        return Err(Error::PreloadTooLarge {
                            object: node.label.clone(),
                            requested: preload.len().max(*depth),
                            max: RAM_WORDS,
                        });
                    }
                }
                _ => {}
            }
        }
        // Initial tokens must fit their channel.
        for e in &self.data_edges {
            if e.initial.len() > e.capacity {
                return Err(Error::TooManyInitialTokens {
                    requested: e.initial.len(),
                    capacity: e.capacity,
                });
            }
        }
        for e in &self.ev_edges {
            if e.initial.len() > e.capacity {
                return Err(Error::TooManyInitialTokens {
                    requested: e.initial.len(),
                    capacity: e.capacity,
                });
            }
        }
        // Input connectivity: exactly one driver per connected input;
        // required inputs must be connected.
        let mut data_in_driven = std::collections::HashMap::new();
        for e in &self.data_edges {
            let count = data_in_driven.entry(e.to).or_insert(0usize);
            *count += 1;
            if *count > 1 {
                let node = &self.nodes[e.to.0];
                return Err(Error::InputAlreadyConnected {
                    object: node.label.clone(),
                    port: format!("in{}", e.to.1),
                });
            }
        }
        let mut ev_in_driven = std::collections::HashMap::new();
        for e in &self.ev_edges {
            let count = ev_in_driven.entry(e.to).or_insert(0usize);
            *count += 1;
            if *count > 1 {
                let node = &self.nodes[e.to.0];
                return Err(Error::InputAlreadyConnected {
                    object: node.label.clone(),
                    port: format!("ev{}", e.to.1),
                });
            }
        }
        for (i, node) in self.nodes.iter().enumerate() {
            let shape = node.kind.shape();
            for p in 0..shape.din {
                let connected = data_in_driven.contains_key(&(i, p));
                if !connected && !node.kind.data_input_optional(p) {
                    return Err(Error::UnconnectedInput {
                        object: node.label.clone(),
                        port: format!("in{p}"),
                    });
                }
            }
            for p in 0..shape.evin {
                if !ev_in_driven.contains_key(&(i, p)) {
                    return Err(Error::UnconnectedInput {
                        object: node.label.clone(),
                        port: format!("ev{p}"),
                    });
                }
            }
            // RAM write ports must be connected pairwise.
            if matches!(node.kind, ObjectKind::Ram { .. }) {
                let wa = data_in_driven.contains_key(&(i, 1));
                let wd = data_in_driven.contains_key(&(i, 2));
                if wa != wd {
                    return Err(Error::UnconnectedInput {
                        object: node.label.clone(),
                        port: if wa {
                            "in2 (wr_data)".into()
                        } else {
                            "in1 (wr_addr)".into()
                        },
                    });
                }
            }
        }
        Ok(Netlist {
            name: self.name,
            nodes: self.nodes,
            data_edges: self.data_edges,
            ev_edges: self.ev_edges,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_pipeline_builds() {
        let mut nl = NetlistBuilder::new("t");
        let a = nl.input("a");
        let b = nl.constant(Word::new(3));
        let y = nl.alu(AluOp::Add, a, b);
        nl.output("y", y);
        let netlist = nl.build().unwrap();
        assert_eq!(netlist.name(), "t");
        assert_eq!(netlist.object_count(), 4);
        assert_eq!(netlist.edge_count(), 3);
    }

    #[test]
    fn empty_netlist_rejected() {
        assert_eq!(
            NetlistBuilder::new("e").build().unwrap_err(),
            Error::EmptyNetlist
        );
    }

    #[test]
    fn unconnected_alu_input_rejected() {
        let mut nl = NetlistBuilder::new("t");
        let a = nl.input("a");
        let (in0, _in1, _out) = nl.alu_deferred(AluOp::Add);
        nl.wire(a, in0);
        assert!(matches!(nl.build(), Err(Error::UnconnectedInput { .. })));
    }

    #[test]
    fn double_driven_input_rejected() {
        let mut nl = NetlistBuilder::new("t");
        let a = nl.input("a");
        let b = nl.input("b");
        let (in0, in1, _out) = nl.alu_deferred(AluOp::Add);
        nl.wire(a, in0);
        nl.wire(b, in0);
        nl.wire(b, in1);
        assert!(matches!(
            nl.build(),
            Err(Error::InputAlreadyConnected { .. })
        ));
    }

    #[test]
    fn duplicate_port_names_rejected() {
        let mut nl = NetlistBuilder::new("t");
        let a = nl.input("x");
        nl.output("x", a);
        assert_eq!(
            nl.build().unwrap_err(),
            Error::DuplicatePortName("x".into())
        );
    }

    #[test]
    fn half_connected_ram_write_rejected() {
        let mut nl = NetlistBuilder::new("t");
        let addr = nl.input("addr");
        let ram = nl.ram(vec![]);
        nl.wire(addr, ram.wr_addr);
        // rd unused, wr_data missing.
        assert!(matches!(nl.build(), Err(Error::UnconnectedInput { .. })));
    }

    #[test]
    fn read_only_ram_accepted() {
        let mut nl = NetlistBuilder::new("t");
        let addr = nl.input("addr");
        let ram = nl.ram(vec![Word::new(7)]);
        nl.wire(addr, ram.rd_addr);
        nl.output("q", ram.rd_data);
        assert!(nl.build().is_ok());
    }

    #[test]
    fn oversized_preload_rejected() {
        let mut nl = NetlistBuilder::new("t");
        let addr = nl.input("addr");
        let ram = nl.ram(vec![Word::ZERO; 600]);
        nl.wire(addr, ram.rd_addr);
        nl.output("q", ram.rd_data);
        assert!(matches!(nl.build(), Err(Error::PreloadTooLarge { .. })));
    }

    #[test]
    fn initial_tokens_must_fit_capacity() {
        let mut nl = NetlistBuilder::new("t");
        let a = nl.input("a");
        let (in0, in1, out) = nl.alu_deferred(AluOp::Add);
        nl.wire(a, in0);
        nl.wire_with(out, in1, 2, vec![Word::ZERO; 3]);
        assert!(matches!(
            nl.build(),
            Err(Error::TooManyInitialTokens { .. })
        ));
    }

    #[test]
    fn feedback_loop_with_initial_token_builds() {
        let mut nl = NetlistBuilder::new("acc");
        let a = nl.input("a");
        let (in0, in1, out) = nl.alu_deferred(AluOp::Add);
        nl.wire(a, in0);
        nl.wire_with(out, in1, 2, vec![Word::ZERO]);
        nl.output("sum", out);
        assert!(nl.build().is_ok());
    }

    #[test]
    fn counter_handles_match_gating() {
        let mut nl = NetlistBuilder::new("c");
        let free = nl.counter(CounterCfg::modulo(4));
        assert!(free.go.is_none());
        let gated = nl.counter(CounterCfg::gated_burst(4));
        assert!(gated.go.is_some());
        nl.output("v", free.value);
        // Gated counter's go must be wired.
        let start = nl.input_event("go");
        nl.wire_ev(start, gated.go.unwrap());
        nl.output("w", gated.value);
        assert!(nl.build().is_ok());
    }

    #[test]
    fn gated_counter_without_go_rejected() {
        let mut nl = NetlistBuilder::new("c");
        let gated = nl.counter(CounterCfg::gated_burst(4));
        nl.output("w", gated.value);
        assert!(matches!(nl.build(), Err(Error::UnconnectedInput { .. })));
    }

    #[test]
    fn labels_can_be_set() {
        let mut nl = NetlistBuilder::new("t");
        let c = nl.counter(CounterCfg::modulo(8));
        nl.set_label(c.node, "chip-counter");
        nl.output("v", c.value);
        let netlist = nl.build().unwrap();
        assert!(netlist.nodes.iter().any(|n| n.label == "chip-counter"));
    }
}
